package tamperdetect_test

import (
	"fmt"
	"net/netip"

	"tamperdetect"
	"tamperdetect/internal/packet"
)

// ExampleClassifier_Classify classifies one connection record — a
// handshake, a request, and a forged RST+ACK burst — against the
// taxonomy.
func ExampleClassifier_Classify() {
	conn := &tamperdetect.Connection{
		SrcIP:   netip.MustParseAddr("203.0.113.7"),
		DstIP:   netip.MustParseAddr("192.0.2.80"),
		SrcPort: 51000, DstPort: 443, IPVersion: 4,
		TotalPackets: 5, LastActivity: 1, CloseTime: 40,
		Packets: []tamperdetect.PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 1000, IPID: 700, TTL: 52, HasOptions: true},
			{Timestamp: 0, Flags: packet.FlagsACK, Seq: 1001, IPID: 701, TTL: 52},
			{Timestamp: 1, Flags: packet.FlagsPSHACK, Seq: 1001, Ack: 9001, IPID: 702, TTL: 52, PayloadLen: 220},
			{Timestamp: 1, Flags: packet.FlagsRSTACK, Seq: 1221, Ack: 9001, IPID: 48313, TTL: 38},
			{Timestamp: 1, Flags: packet.FlagsRSTACK, Seq: 1221, Ack: 9001, IPID: 5621, TTL: 38},
		},
	}
	cl := tamperdetect.NewClassifier(tamperdetect.DefaultConfig())
	res := cl.Classify(conn)
	fmt.Println(res.Signature)
	fmt.Println(res.Stage)
	fmt.Println(res.PossiblyTampered)
	// Output:
	// PSH → RST+ACK;RST+ACK
	// Post-PSH
	// true
}

// ExampleReconstruct restores arrival order from headers when the
// 1-second timestamps leave the log order ambiguous.
func ExampleReconstruct() {
	conn := &tamperdetect.Connection{
		Packets: []tamperdetect.PacketRecord{
			// Logged out of order within one second.
			{Timestamp: 0, Flags: packet.FlagsPSHACK, Seq: 101, PayloadLen: 50},
			{Timestamp: 0, Flags: packet.FlagsRST, Seq: 151},
			{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100},
			{Timestamp: 0, Flags: packet.FlagsACK, Seq: 101},
		},
	}
	for _, p := range tamperdetect.Reconstruct(conn) {
		fmt.Println(p.Flags)
	}
	// Output:
	// SYN
	// ACK
	// PSH+ACK
	// RST
}

// ExampleSignature_Stage shows the Table 1 stage grouping.
func ExampleSignature_Stage() {
	fmt.Println(tamperdetect.SigACKTimeout.Stage())
	fmt.Println(tamperdetect.SigDataRSTACK.Stage())
	fmt.Println(len(tamperdetect.AllSignatures()))
	// Output:
	// Post-ACK
	// Post-Data
	// 19
}
