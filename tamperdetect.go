// Package tamperdetect passively detects connection tampering from
// server-side packet captures, implementing the tampering-signature
// taxonomy and classifier of "Global, Passive Detection of Connection
// Tampering" (SIGCOMM 2023).
//
// The library classifies each observed TCP connection — given only its
// inbound packets, 1-second timestamps, and a 10-packet capture window
// — into one of 19 tampering signatures (RST injection and packet-drop
// patterns at four connection stages), "not tampering", or an
// uncovered anomaly, and computes the supporting evidence the paper
// validates with: IP-ID and TTL deltas of suspected injected packets
// and scanner fingerprints.
//
// Quick start (batch):
//
//	cl := tamperdetect.NewClassifier(tamperdetect.DefaultConfig())
//	conns, err := tamperdetect.ReadCaptureFile("sample.tdcap")
//	...
//	for _, conn := range conns {
//		res := cl.Classify(conn)
//		if res.Signature.IsTampering() {
//			fmt.Println(res.Signature, res.Domain)
//		}
//	}
//
// Quick start (streaming): Stream classifies a capture of any size in
// constant memory through a backpressured worker pool, calling the
// sink from a single goroutine:
//
//	f, _ := os.Open("sample.tdcap")
//	defer f.Close()
//	counts, err := tamperdetect.Stream(context.Background(), f,
//		tamperdetect.StreamConfig{Ordered: true},
//		func(it tamperdetect.StreamItem) error {
//			if it.Res.Signature.IsTampering() {
//				fmt.Println(it.Res.Signature, it.Res.Domain)
//			}
//			return nil
//		})
//	fmt.Println(counts.Classified, "classified,", counts.Tampering, "tampering")
//
// The internal packages provide the full reproduction substrate: a
// wire-accurate packet codec (internal/packet), TLS/HTTP trigger
// parsers, TCP endpoint simulators, DPI middlebox models of known
// censors, the capture pipeline, a global traffic scenario generator,
// and the analysis code regenerating every table and figure of the
// paper (run cmd/paperbench).
package tamperdetect

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/geo"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/telemetry"
)

// Re-exported core types: the classifier's public surface.
type (
	// Signature is one of the 19 tampering signatures (Table 1), or
	// SigNotTampering / SigOtherAnomalous.
	Signature = core.Signature
	// Stage is the connection stage a signature belongs to.
	Stage = core.Stage
	// Result is a classified connection.
	Result = core.Result
	// Evidence holds injection-evidence metrics and scanner
	// fingerprints.
	Evidence = core.Evidence
	// Protocol is the application protocol of a connection.
	Protocol = core.Protocol
	// Config tunes the classifier.
	Config = core.Config
	// Classifier applies the signature taxonomy.
	Classifier = core.Classifier
	// Connection is one sampled connection's inbound record.
	Connection = capture.Connection
	// PacketRecord is one logged inbound packet.
	PacketRecord = capture.PacketRecord

	// StreamConfig tunes the streaming classification pipeline used by
	// Stream: worker count, channel depth, ordered delivery, and an
	// optional live Metrics sink.
	StreamConfig = pipeline.Config
	// StreamItem is one classified connection delivered by Stream.
	StreamItem = pipeline.Item
	// StreamCounts is the pipeline's per-stage counter snapshot:
	// decoded, classified, tampering, delivered, errors, dropped.
	StreamCounts = pipeline.Counts
	// StreamMetrics holds live per-stage counters observable while a
	// Stream is in flight (pass one via StreamConfig.Metrics).
	StreamMetrics = pipeline.Metrics
	// StreamTelemetry is the full pipeline instrument set — per-stage
	// latency histograms, queue-depth gauges, per-signature and
	// per-disposition counters, capture throughput — registered in a
	// MetricsRegistry (pass one via StreamConfig.Telemetry). Build
	// with NewStreamTelemetry; serve with ServeMetrics.
	StreamTelemetry = pipeline.Telemetry
	// MetricsRegistry holds registered instruments and writes
	// Prometheus text (WritePrometheus) or JSON (WriteJSON)
	// expositions.
	MetricsRegistry = telemetry.Registry
	// MetricsServer serves a MetricsRegistry over HTTP: /metrics,
	// /metrics.json, /healthz, /debug/vars, /debug/pprof/.
	MetricsServer = telemetry.Server

	// Aggregator is one incrementally computed paper table: records
	// stream in via Add, independently built aggregators combine via
	// Merge (the multi-PoP rollup), and Finalize renders the table.
	// Every finalized table is a pure function of the record multiset,
	// so worker count, shard partitioning, and merge order never change
	// the output.
	Aggregator = analysis.Aggregator
	// AggMulti composes aggregators so one streaming pass fills all of
	// them.
	AggMulti = analysis.Multi
	// AnalysisRecord is one classified connection with its aggregation
	// keys (country, ASN, IP version, hour, client key, ports).
	AnalysisRecord = analysis.Record
	// GeoDB is the synthetic IP→(country, AS) plan aggregation keys
	// come from. May be nil when geography does not matter.
	GeoDB = geo.DB
)

// Aggregator implementations and their finalized tables, re-exported
// so StreamAnalyze results can be type-asserted and finalized outside
// this module. Each *Agg type's typed finalize method computes the
// corresponding paper table.
type (
	StageStatsAgg         = analysis.StageStatsAgg         // §4.1 — Stats() StageStats
	SignatureByCountryAgg = analysis.SignatureByCountryAgg // Fig 4 — Table()
	CountryBySignatureAgg = analysis.CountryBySignatureAgg // Fig 1 — Table()
	ASNViewAgg            = analysis.ASNViewAgg            // Fig 5 — View(country)
	TimeSeriesAgg         = analysis.TimeSeriesAgg         // Figs 6/8/9 — Series()
	IPVersionAgg          = analysis.IPVersionAgg          // Fig 7a — Table()
	ProtocolAgg           = analysis.ProtocolAgg           // Fig 7b — Table()
	EvidenceAgg           = analysis.EvidenceAgg           // Figs 2/3 — CDFs()
	ScannerAgg            = analysis.ScannerAgg            // §4.2 — Stats()
	DomainAgg             = analysis.DomainAgg             // Tables 2/3, §5.5
	OverlapAgg            = analysis.OverlapAgg            // Fig 10 — Matrix()
	StabilityAgg          = analysis.StabilityAgg          // §6 — Report()
	RobustnessAgg         = analysis.RobustnessAgg         // FP matrix — Grade()

	StageStats           = analysis.StageStats
	CountryDistribution  = analysis.CountryDistribution
	SignatureComposition = analysis.SignatureComposition
	ASNStat              = analysis.ASNStat
	SeriesPoint          = analysis.SeriesPoint
	VersionComparison    = analysis.VersionComparison
	ProtocolComparison   = analysis.ProtocolComparison
	EvidenceCDFs         = analysis.EvidenceCDFs
	ScannerStats         = analysis.ScannerStats
	CategoryTable        = analysis.CategoryTable
	ListCoverageRow      = analysis.ListCoverageRow
	OverlapMatrix        = analysis.OverlapMatrix
	StabilityRow         = analysis.StabilityRow
	RobustnessGrade      = analysis.RobustnessGrade
)

// ErrStopStream may be returned by a Stream sink to stop the pipeline
// early without error.
var ErrStopStream = pipeline.ErrStop

// Signature constants, re-exported for matching on results.
const (
	SigNotTampering = core.SigNotTampering

	SigSYNTimeout   = core.SigSYNTimeout
	SigSYNRST       = core.SigSYNRST
	SigSYNRSTACK    = core.SigSYNRSTACK
	SigSYNRSTRSTACK = core.SigSYNRSTRSTACK

	SigACKTimeout      = core.SigACKTimeout
	SigACKRST          = core.SigACKRST
	SigACKRSTRST       = core.SigACKRSTRST
	SigACKRSTACK       = core.SigACKRSTACK
	SigACKRSTACKRSTACK = core.SigACKRSTACKRSTACK

	SigPSHTimeout      = core.SigPSHTimeout
	SigPSHRST          = core.SigPSHRST
	SigPSHRSTACK       = core.SigPSHRSTACK
	SigPSHRSTRSTACK    = core.SigPSHRSTRSTACK
	SigPSHRSTACKRSTACK = core.SigPSHRSTACKRSTACK
	SigPSHRSTEqRST     = core.SigPSHRSTEqRST
	SigPSHRSTNeqRST    = core.SigPSHRSTNeqRST
	SigPSHRSTRSTZero   = core.SigPSHRSTRSTZero

	SigDataRST    = core.SigDataRST
	SigDataRSTACK = core.SigDataRSTACK

	SigOtherAnomalous = core.SigOtherAnomalous
)

// Stage constants.
const (
	StageNone     = core.StageNone
	StagePostSYN  = core.StagePostSYN
	StagePostACK  = core.StagePostACK
	StagePostPSH  = core.StagePostPSH
	StagePostData = core.StagePostData
	StageOther    = core.StageOther
)

// DefaultConfig returns the paper's deployment parameters: 3-second
// inactivity threshold, 10-packet capture window.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewClassifier builds a classifier; it is safe for concurrent use.
func NewClassifier(cfg Config) *Classifier { return core.NewClassifier(cfg) }

// AllSignatures lists the 19 tampering signatures in Table 1 order.
func AllSignatures() []Signature { return core.AllSignatures() }

// Reconstruct restores likely arrival order of a connection's packets
// from headers, despite 1-second timestamp granularity.
func Reconstruct(c *Connection) []PacketRecord { return capture.Reconstruct(c) }

// ReadCapture streams connection records from a TDCAP capture.
func ReadCapture(r io.Reader) ([]*Connection, error) {
	return capture.NewReader(r).ReadAll()
}

// ReadCaptureFile loads a TDCAP capture file.
func ReadCaptureFile(path string) ([]*Connection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tamperdetect: %w", err)
	}
	defer f.Close()
	conns, err := ReadCapture(f)
	if err != nil {
		return conns, fmt.Errorf("tamperdetect: reading %s: %w", path, err)
	}
	return conns, nil
}

// NewMetricsRegistry returns an empty instrument registry for
// ServeMetrics or caller-side instruments alongside NewStreamTelemetry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewStreamTelemetry registers the streaming pipeline's instrument set
// in reg (nil gets a private registry) and returns the handle to pass
// as StreamConfig.Telemetry. One StreamTelemetry may be shared across
// sequential or concurrent Stream / StreamAnalyze calls; its counters
// and histograms accumulate. The hot path stays allocation-free with
// telemetry attached.
//
//	tel := tamperdetect.NewStreamTelemetry(nil)
//	srv, _ := tamperdetect.ServeMetrics("127.0.0.1:9090", tel.Registry())
//	defer srv.Close()
//	counts, err := tamperdetect.Stream(ctx, f,
//		tamperdetect.StreamConfig{Telemetry: tel}, nil)
func NewStreamTelemetry(reg *MetricsRegistry) *StreamTelemetry {
	return pipeline.NewTelemetry(reg)
}

// ServeMetrics starts an HTTP server exposing reg on addr (host:port;
// port 0 picks an ephemeral port — see MetricsServer.Addr). Close the
// returned server to shut it down gracefully.
func ServeMetrics(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return telemetry.NewServer(addr, reg)
}

// Stream decodes TDCAP connection records incrementally from r and
// classifies them through a backpressured worker pool, delivering each
// classified connection to fn from a single goroutine. It processes
// captures of any size in constant memory and blocks until the
// pipeline has drained — on EOF, on error, or on ctx cancellation.
// fn may be nil to only count, and may return ErrStopStream to stop
// early without error.
func Stream(ctx context.Context, r io.Reader, cfg StreamConfig, fn func(StreamItem) error) (StreamCounts, error) {
	return pipeline.Stream(ctx, r, cfg, fn)
}

// Aggregator constructors, re-exported from internal/analysis. Each
// returns a concrete aggregator whose typed finalize methods (Stats,
// Table, View, Series, CDFs, Matrix, Report, …) compute the
// corresponding paper table; Finalize returns the same value as `any`.
var (
	// NewStageStatsAgg aggregates the §4.1 stage breakdown.
	NewStageStatsAgg = analysis.NewStageStatsAgg
	// NewSignatureByCountryAgg aggregates Figure 4.
	NewSignatureByCountryAgg = analysis.NewSignatureByCountryAgg
	// NewCountryBySignatureAgg aggregates Figure 1.
	NewCountryBySignatureAgg = analysis.NewCountryBySignatureAgg
	// NewASNViewAgg aggregates Figure 5 for every country at once.
	NewASNViewAgg = analysis.NewASNViewAgg
	// NewTimeSeriesAgg aggregates a Figures 6/8/9 longitudinal series.
	NewTimeSeriesAgg = analysis.NewTimeSeriesAgg
	// NewIPVersionAgg aggregates Figure 7a.
	NewIPVersionAgg = analysis.NewIPVersionAgg
	// NewProtocolAgg aggregates Figure 7b.
	NewProtocolAgg = analysis.NewProtocolAgg
	// NewEvidenceAgg aggregates the Figures 2/3 evidence CDFs.
	NewEvidenceAgg = analysis.NewEvidenceAgg
	// NewScannerAgg aggregates the §4.2 scanner fingerprints.
	NewScannerAgg = analysis.NewScannerAgg
	// NewDomainAgg aggregates the per-domain counts behind Tables 2/3
	// and the §5.5 observation set.
	NewDomainAgg = analysis.NewDomainAgg
	// NewOverlapAgg aggregates the Figure 10 overlap matrix.
	NewOverlapAgg = analysis.NewOverlapAgg
	// NewStabilityAgg aggregates the §6 stability report.
	NewStabilityAgg = analysis.NewStabilityAgg
	// NewRobustnessAgg aggregates one impairment grade's
	// false-positive cell.
	NewRobustnessAgg = analysis.NewRobustnessAgg
)

// StreamAnalyze streams a TDCAP capture through the classification
// pipeline and aggregates every record incrementally: each pipeline
// worker owns a private aggregator shard (built by fresh) and a
// private geo lookup cache, records are added lock-free from the
// worker that classified them, and the shards merge into the returned
// aggregator when the stream ends. Memory stays constant in capture
// size — nothing is buffered beyond the pipeline's bounded queues and
// the aggregator state itself.
//
//	agg, counts, err := tamperdetect.StreamAnalyze(ctx, f,
//		tamperdetect.StreamConfig{Workers: 8}, nil,
//		func() tamperdetect.Aggregator { return tamperdetect.NewStageStatsAgg() })
//	stats := agg.(*tamperdetect.StageStatsAgg).Stats()
//
// fresh must return a new identically-parameterised aggregator on
// every call (use AggMulti to fill several tables in one pass); db may
// be nil, leaving country/AS keys empty. The result is byte-identical
// across worker counts: aggregators are pure functions of the record
// multiset.
func StreamAnalyze(ctx context.Context, r io.Reader, cfg StreamConfig, db *GeoDB, fresh func() Aggregator) (Aggregator, StreamCounts, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		cfg.Workers = workers
	}
	sharded := analysis.NewSharded(db, workers, fresh)
	prev := cfg.Observe
	cfg.Observe = func(worker int, it StreamItem) {
		sharded.Observe(worker, it)
		if prev != nil {
			prev(worker, it)
		}
	}
	counts, err := pipeline.Stream(ctx, r, cfg, nil)
	if err != nil {
		return nil, counts, err
	}
	agg, err := sharded.Merged()
	return agg, counts, err
}

// WriteCaptureFile stores connection records as a TDCAP capture file.
func WriteCaptureFile(path string, conns []*Connection) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tamperdetect: %w", err)
	}
	defer func() {
		// Single close for every path; a close failure after a clean
		// flush is a real write error and must surface.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("tamperdetect: closing %s: %w", path, cerr)
		}
	}()
	w := capture.NewWriter(f)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			return fmt.Errorf("tamperdetect: writing %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("tamperdetect: flushing %s: %w", path, err)
	}
	return nil
}
