// Package tamperdetect passively detects connection tampering from
// server-side packet captures, implementing the tampering-signature
// taxonomy and classifier of "Global, Passive Detection of Connection
// Tampering" (SIGCOMM 2023).
//
// The library classifies each observed TCP connection — given only its
// inbound packets, 1-second timestamps, and a 10-packet capture window
// — into one of 19 tampering signatures (RST injection and packet-drop
// patterns at four connection stages), "not tampering", or an
// uncovered anomaly, and computes the supporting evidence the paper
// validates with: IP-ID and TTL deltas of suspected injected packets
// and scanner fingerprints.
//
// Quick start:
//
//	cl := tamperdetect.NewClassifier(tamperdetect.DefaultConfig())
//	conns, err := tamperdetect.ReadCaptureFile("sample.tdcap")
//	...
//	for _, conn := range conns {
//		res := cl.Classify(conn)
//		if res.Signature.IsTampering() {
//			fmt.Println(res.Signature, res.Domain)
//		}
//	}
//
// The internal packages provide the full reproduction substrate: a
// wire-accurate packet codec (internal/packet), TLS/HTTP trigger
// parsers, TCP endpoint simulators, DPI middlebox models of known
// censors, the capture pipeline, a global traffic scenario generator,
// and the analysis code regenerating every table and figure of the
// paper (run cmd/paperbench).
package tamperdetect

import (
	"fmt"
	"io"
	"os"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
)

// Re-exported core types: the classifier's public surface.
type (
	// Signature is one of the 19 tampering signatures (Table 1), or
	// SigNotTampering / SigOtherAnomalous.
	Signature = core.Signature
	// Stage is the connection stage a signature belongs to.
	Stage = core.Stage
	// Result is a classified connection.
	Result = core.Result
	// Evidence holds injection-evidence metrics and scanner
	// fingerprints.
	Evidence = core.Evidence
	// Protocol is the application protocol of a connection.
	Protocol = core.Protocol
	// Config tunes the classifier.
	Config = core.Config
	// Classifier applies the signature taxonomy.
	Classifier = core.Classifier
	// Connection is one sampled connection's inbound record.
	Connection = capture.Connection
	// PacketRecord is one logged inbound packet.
	PacketRecord = capture.PacketRecord
)

// Signature constants, re-exported for matching on results.
const (
	SigNotTampering = core.SigNotTampering

	SigSYNTimeout   = core.SigSYNTimeout
	SigSYNRST       = core.SigSYNRST
	SigSYNRSTACK    = core.SigSYNRSTACK
	SigSYNRSTRSTACK = core.SigSYNRSTRSTACK

	SigACKTimeout      = core.SigACKTimeout
	SigACKRST          = core.SigACKRST
	SigACKRSTRST       = core.SigACKRSTRST
	SigACKRSTACK       = core.SigACKRSTACK
	SigACKRSTACKRSTACK = core.SigACKRSTACKRSTACK

	SigPSHTimeout      = core.SigPSHTimeout
	SigPSHRST          = core.SigPSHRST
	SigPSHRSTACK       = core.SigPSHRSTACK
	SigPSHRSTRSTACK    = core.SigPSHRSTRSTACK
	SigPSHRSTACKRSTACK = core.SigPSHRSTACKRSTACK
	SigPSHRSTEqRST     = core.SigPSHRSTEqRST
	SigPSHRSTNeqRST    = core.SigPSHRSTNeqRST
	SigPSHRSTRSTZero   = core.SigPSHRSTRSTZero

	SigDataRST    = core.SigDataRST
	SigDataRSTACK = core.SigDataRSTACK

	SigOtherAnomalous = core.SigOtherAnomalous
)

// Stage constants.
const (
	StageNone     = core.StageNone
	StagePostSYN  = core.StagePostSYN
	StagePostACK  = core.StagePostACK
	StagePostPSH  = core.StagePostPSH
	StagePostData = core.StagePostData
	StageOther    = core.StageOther
)

// DefaultConfig returns the paper's deployment parameters: 3-second
// inactivity threshold, 10-packet capture window.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewClassifier builds a classifier; it is safe for concurrent use.
func NewClassifier(cfg Config) *Classifier { return core.NewClassifier(cfg) }

// AllSignatures lists the 19 tampering signatures in Table 1 order.
func AllSignatures() []Signature { return core.AllSignatures() }

// Reconstruct restores likely arrival order of a connection's packets
// from headers, despite 1-second timestamp granularity.
func Reconstruct(c *Connection) []PacketRecord { return capture.Reconstruct(c) }

// ReadCapture streams connection records from a TDCAP capture.
func ReadCapture(r io.Reader) ([]*Connection, error) {
	return capture.NewReader(r).ReadAll()
}

// ReadCaptureFile loads a TDCAP capture file.
func ReadCaptureFile(path string) ([]*Connection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tamperdetect: %w", err)
	}
	defer f.Close()
	conns, err := ReadCapture(f)
	if err != nil {
		return conns, fmt.Errorf("tamperdetect: reading %s: %w", path, err)
	}
	return conns, nil
}

// WriteCaptureFile stores connection records as a TDCAP capture file.
func WriteCaptureFile(path string, conns []*Connection) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tamperdetect: %w", err)
	}
	w := capture.NewWriter(f)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			f.Close()
			return fmt.Errorf("tamperdetect: writing %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("tamperdetect: flushing %s: %w", path, err)
	}
	return f.Close()
}
