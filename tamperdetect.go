// Package tamperdetect passively detects connection tampering from
// server-side packet captures, implementing the tampering-signature
// taxonomy and classifier of "Global, Passive Detection of Connection
// Tampering" (SIGCOMM 2023).
//
// The library classifies each observed TCP connection — given only its
// inbound packets, 1-second timestamps, and a 10-packet capture window
// — into one of 19 tampering signatures (RST injection and packet-drop
// patterns at four connection stages), "not tampering", or an
// uncovered anomaly, and computes the supporting evidence the paper
// validates with: IP-ID and TTL deltas of suspected injected packets
// and scanner fingerprints.
//
// Quick start (batch):
//
//	cl := tamperdetect.NewClassifier(tamperdetect.DefaultConfig())
//	conns, err := tamperdetect.ReadCaptureFile("sample.tdcap")
//	...
//	for _, conn := range conns {
//		res := cl.Classify(conn)
//		if res.Signature.IsTampering() {
//			fmt.Println(res.Signature, res.Domain)
//		}
//	}
//
// Quick start (streaming): Stream classifies a capture of any size in
// constant memory through a backpressured worker pool, calling the
// sink from a single goroutine:
//
//	f, _ := os.Open("sample.tdcap")
//	defer f.Close()
//	counts, err := tamperdetect.Stream(context.Background(), f,
//		tamperdetect.StreamConfig{Ordered: true},
//		func(it tamperdetect.StreamItem) error {
//			if it.Res.Signature.IsTampering() {
//				fmt.Println(it.Res.Signature, it.Res.Domain)
//			}
//			return nil
//		})
//	fmt.Println(counts.Classified, "classified,", counts.Tampering, "tampering")
//
// The internal packages provide the full reproduction substrate: a
// wire-accurate packet codec (internal/packet), TLS/HTTP trigger
// parsers, TCP endpoint simulators, DPI middlebox models of known
// censors, the capture pipeline, a global traffic scenario generator,
// and the analysis code regenerating every table and figure of the
// paper (run cmd/paperbench).
package tamperdetect

import (
	"context"
	"fmt"
	"io"
	"os"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/pipeline"
)

// Re-exported core types: the classifier's public surface.
type (
	// Signature is one of the 19 tampering signatures (Table 1), or
	// SigNotTampering / SigOtherAnomalous.
	Signature = core.Signature
	// Stage is the connection stage a signature belongs to.
	Stage = core.Stage
	// Result is a classified connection.
	Result = core.Result
	// Evidence holds injection-evidence metrics and scanner
	// fingerprints.
	Evidence = core.Evidence
	// Protocol is the application protocol of a connection.
	Protocol = core.Protocol
	// Config tunes the classifier.
	Config = core.Config
	// Classifier applies the signature taxonomy.
	Classifier = core.Classifier
	// Connection is one sampled connection's inbound record.
	Connection = capture.Connection
	// PacketRecord is one logged inbound packet.
	PacketRecord = capture.PacketRecord

	// StreamConfig tunes the streaming classification pipeline used by
	// Stream: worker count, channel depth, ordered delivery, and an
	// optional live Metrics sink.
	StreamConfig = pipeline.Config
	// StreamItem is one classified connection delivered by Stream.
	StreamItem = pipeline.Item
	// StreamCounts is the pipeline's per-stage counter snapshot:
	// decoded, classified, tampering, delivered, errors, dropped.
	StreamCounts = pipeline.Counts
	// StreamMetrics holds live per-stage counters observable while a
	// Stream is in flight (pass one via StreamConfig.Metrics).
	StreamMetrics = pipeline.Metrics
)

// ErrStopStream may be returned by a Stream sink to stop the pipeline
// early without error.
var ErrStopStream = pipeline.ErrStop

// Signature constants, re-exported for matching on results.
const (
	SigNotTampering = core.SigNotTampering

	SigSYNTimeout   = core.SigSYNTimeout
	SigSYNRST       = core.SigSYNRST
	SigSYNRSTACK    = core.SigSYNRSTACK
	SigSYNRSTRSTACK = core.SigSYNRSTRSTACK

	SigACKTimeout      = core.SigACKTimeout
	SigACKRST          = core.SigACKRST
	SigACKRSTRST       = core.SigACKRSTRST
	SigACKRSTACK       = core.SigACKRSTACK
	SigACKRSTACKRSTACK = core.SigACKRSTACKRSTACK

	SigPSHTimeout      = core.SigPSHTimeout
	SigPSHRST          = core.SigPSHRST
	SigPSHRSTACK       = core.SigPSHRSTACK
	SigPSHRSTRSTACK    = core.SigPSHRSTRSTACK
	SigPSHRSTACKRSTACK = core.SigPSHRSTACKRSTACK
	SigPSHRSTEqRST     = core.SigPSHRSTEqRST
	SigPSHRSTNeqRST    = core.SigPSHRSTNeqRST
	SigPSHRSTRSTZero   = core.SigPSHRSTRSTZero

	SigDataRST    = core.SigDataRST
	SigDataRSTACK = core.SigDataRSTACK

	SigOtherAnomalous = core.SigOtherAnomalous
)

// Stage constants.
const (
	StageNone     = core.StageNone
	StagePostSYN  = core.StagePostSYN
	StagePostACK  = core.StagePostACK
	StagePostPSH  = core.StagePostPSH
	StagePostData = core.StagePostData
	StageOther    = core.StageOther
)

// DefaultConfig returns the paper's deployment parameters: 3-second
// inactivity threshold, 10-packet capture window.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewClassifier builds a classifier; it is safe for concurrent use.
func NewClassifier(cfg Config) *Classifier { return core.NewClassifier(cfg) }

// AllSignatures lists the 19 tampering signatures in Table 1 order.
func AllSignatures() []Signature { return core.AllSignatures() }

// Reconstruct restores likely arrival order of a connection's packets
// from headers, despite 1-second timestamp granularity.
func Reconstruct(c *Connection) []PacketRecord { return capture.Reconstruct(c) }

// ReadCapture streams connection records from a TDCAP capture.
func ReadCapture(r io.Reader) ([]*Connection, error) {
	return capture.NewReader(r).ReadAll()
}

// ReadCaptureFile loads a TDCAP capture file.
func ReadCaptureFile(path string) ([]*Connection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tamperdetect: %w", err)
	}
	defer f.Close()
	conns, err := ReadCapture(f)
	if err != nil {
		return conns, fmt.Errorf("tamperdetect: reading %s: %w", path, err)
	}
	return conns, nil
}

// Stream decodes TDCAP connection records incrementally from r and
// classifies them through a backpressured worker pool, delivering each
// classified connection to fn from a single goroutine. It processes
// captures of any size in constant memory and blocks until the
// pipeline has drained — on EOF, on error, or on ctx cancellation.
// fn may be nil to only count, and may return ErrStopStream to stop
// early without error.
func Stream(ctx context.Context, r io.Reader, cfg StreamConfig, fn func(StreamItem) error) (StreamCounts, error) {
	return pipeline.Stream(ctx, r, cfg, fn)
}

// WriteCaptureFile stores connection records as a TDCAP capture file.
func WriteCaptureFile(path string, conns []*Connection) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tamperdetect: %w", err)
	}
	defer func() {
		// Single close for every path; a close failure after a clean
		// flush is a real write error and must surface.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("tamperdetect: closing %s: %w", path, cerr)
		}
	}()
	w := capture.NewWriter(f)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			return fmt.Errorf("tamperdetect: writing %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("tamperdetect: flushing %s: %w", path, err)
	}
	return nil
}
