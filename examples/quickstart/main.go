// Quickstart: classify a handful of hand-built connection records with
// the public API — the minimal end-to-end use of the library.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"net/netip"

	"tamperdetect"
	"tamperdetect/internal/packet"
)

func main() {
	cl := tamperdetect.NewClassifier(tamperdetect.DefaultConfig())

	// A connection observed at a server: handshake, a TLS ClientHello,
	// then two forged RST+ACKs — the classic GFW tear-down burst.
	gfwVictim := &tamperdetect.Connection{
		SrcIP:   netip.MustParseAddr("203.0.113.7"),
		DstIP:   netip.MustParseAddr("192.0.2.80"),
		SrcPort: 51000, DstPort: 443, IPVersion: 4,
		TotalPackets: 5, LastActivity: 2, CloseTime: 40,
		Packets: []tamperdetect.PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 1000, IPID: 700, TTL: 52, HasOptions: true},
			{Timestamp: 0, Flags: packet.FlagsACK, Seq: 1001, IPID: 701, TTL: 52},
			{Timestamp: 1, Flags: packet.FlagsPSHACK, Seq: 1001, Ack: 9001, IPID: 702, TTL: 52, PayloadLen: 220},
			{Timestamp: 1, Flags: packet.FlagsRSTACK, Seq: 1221, Ack: 9001, IPID: 48313, TTL: 38},
			{Timestamp: 2, Flags: packet.FlagsRSTACK, Seq: 1221, Ack: 9001, IPID: 5621, TTL: 38},
		},
	}

	// A clean connection: request, response ACKs, graceful FIN.
	clean := &tamperdetect.Connection{
		SrcIP:   netip.MustParseAddr("198.51.100.9"),
		DstIP:   netip.MustParseAddr("192.0.2.80"),
		SrcPort: 52000, DstPort: 443, IPVersion: 4,
		TotalPackets: 5, LastActivity: 1, CloseTime: 40,
		Packets: []tamperdetect.PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 5000, IPID: 100, TTL: 57, HasOptions: true},
			{Timestamp: 0, Flags: packet.FlagsACK, Seq: 5001, IPID: 101, TTL: 57},
			{Timestamp: 0, Flags: packet.FlagsPSHACK, Seq: 5001, IPID: 102, TTL: 57, PayloadLen: 180},
			{Timestamp: 1, Flags: packet.FlagsACK, Seq: 5181, IPID: 103, TTL: 57},
			{Timestamp: 1, Flags: packet.FlagsFINACK, Seq: 5181, IPID: 104, TTL: 57},
		},
	}

	// A silently-dropped ClientHello: handshake completes, then nothing
	// (Iran-style SNI filtering).
	dropped := &tamperdetect.Connection{
		SrcIP:   netip.MustParseAddr("203.0.113.200"),
		DstIP:   netip.MustParseAddr("192.0.2.80"),
		SrcPort: 53000, DstPort: 443, IPVersion: 4,
		TotalPackets: 2, LastActivity: 0, CloseTime: 40,
		Packets: []tamperdetect.PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 7000, IPID: 300, TTL: 44, HasOptions: true},
			{Timestamp: 0, Flags: packet.FlagsACK, Seq: 7001, IPID: 301, TTL: 44},
		},
	}

	for _, conn := range []*tamperdetect.Connection{gfwVictim, clean, dropped} {
		res := cl.Classify(conn)
		fmt.Printf("%s:%d\n", conn.SrcIP, conn.SrcPort)
		fmt.Printf("  signature:         %s\n", res.Signature)
		fmt.Printf("  stage:             %s\n", res.Stage)
		fmt.Printf("  possibly tampered: %v\n", res.PossiblyTampered)
		if res.Signature.IsTampering() && res.Evidence.IPIDValid {
			fmt.Printf("  injection evidence: max IP-ID delta %d, max TTL delta %d\n",
				res.Evidence.MaxIPIDDelta, res.Evidence.MaxTTLDelta)
		}
		fmt.Println()
	}
}
