// Iran2022 reproduces the paper's §5.6 case study at example scale: a
// 17-day scenario around the September 2022 protests, showing how
// passive signature match rates track a censorship escalation — the
// shift toward ⟨SYN → RST⟩ / ⟨SYN;ACK → ∅⟩ / ⟨SYN;ACK → RST+ACK⟩, and
// the concentration on the dominant (mobile) ISPs.
//
// Run with: go run ./examples/iran2022 [-total 20000]
package main

import (
	"flag"
	"fmt"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/core"
	"tamperdetect/internal/workload"
)

func main() {
	total := flag.Int("total", 20000, "connections to simulate across the 17 days")
	flag.Parse()

	scen, err := workload.Iran2022Scenario(*total, 2022)
	if err != nil {
		fmt.Println("building scenario:", err)
		return
	}
	conns := scen.Run(0)
	recs := analysis.Analyze(conns, scen.Geo, core.NewClassifier(core.DefaultConfig()), 0)
	fmt.Printf("simulated %d connections from Iran over 17 days\n\n", len(recs))

	// Daily match rates for the protest-era signatures.
	sigs := []core.Signature{core.SigSYNRST, core.SigSYNTimeout, core.SigACKTimeout, core.SigACKRSTACK}
	fmt.Printf("%-6s", "day")
	for _, s := range sigs {
		fmt.Printf(" %18.18s", s.String())
	}
	fmt.Printf(" %10s\n", "any match")
	for day := 0; day < 17; day++ {
		var total int
		counts := make([]int, len(sigs))
		matched := 0
		for i := range recs {
			if recs[i].Hour/24 != day {
				continue
			}
			total++
			if recs[i].Res.Signature.IsTampering() {
				matched++
			}
			for j, s := range sigs {
				if recs[i].Res.Signature == s {
					counts[j]++
				}
			}
		}
		if total == 0 {
			continue
		}
		fmt.Printf("%-6d", day)
		for j := range sigs {
			fmt.Printf(" %17.1f%%", 100*float64(counts[j])/float64(total))
		}
		fmt.Printf(" %9.1f%%\n", 100*float64(matched)/float64(total))
	}

	// The AS view: the dominant ISPs carry the bulk of tampering.
	fmt.Println()
	fmt.Print(analysis.RenderASNView("IR", analysis.ASNView(recs, "IR")))
}
