// Censorlab: define a custom tampering middlebox, run real simulated
// TCP connections through it, and inspect what a passive server-side
// observer sees — the workflow for studying a new censor's fingerprint
// before it appears in the Table 1 taxonomy.
//
// The custom censor here injects one RST+ACK and two bare RSTs with a
// fixed exotic TTL, a combination no profile ships with.
//
// Run with: go run ./examples/censorlab
package main

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"time"

	"tamperdetect"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/middlebox"
	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/tcpsim"
	"tamperdetect/internal/tlswire"
)

func main() {
	// A custom policy: trigger on any SNI containing "leaks", drop
	// nothing, inject a mixed burst.
	custom := middlebox.Policy{
		Name:        "my-censor",
		Stage:       middlebox.StageFirstData,
		MatchDomain: func(d string) bool { return contains(d, "leaks") },
		Actions: []middlebox.Action{{
			ToServer: []middlebox.InjectSpec{
				{Flags: packet.FlagsRSTACK, Count: 1, Ack: middlebox.AckEcho, IPID: middlebox.IPIDRandom, TTL: middlebox.TTLFixed, TTLValue: 33},
				{Flags: packet.FlagsRST, Count: 2, Ack: middlebox.AckEcho, IPID: middlebox.IPIDRandom, TTL: middlebox.TTLFixed, TTLValue: 33},
			},
			ToClient: []middlebox.InjectSpec{
				{Flags: packet.FlagsRSTACK, Count: 1, Ack: middlebox.AckEcho, IPID: middlebox.IPIDRandom, TTL: middlebox.TTLFixed, TTLValue: 33},
			},
		}},
	}

	for _, domain := range []string{"leaks-archive.example", "weather.example"} {
		res, seq := observe(custom, domain)
		fmt.Printf("request for %q:\n", domain)
		fmt.Printf("  server-side packet sequence: %s\n", seq)
		fmt.Printf("  classified: %s (stage %s, domain %q)\n",
			res.Signature, res.Stage, res.Domain)
		if res.Signature.IsTampering() {
			fmt.Printf("  evidence: max IP-ID delta %d, max TTL delta %d\n",
				res.Evidence.MaxIPIDDelta, res.Evidence.MaxTTLDelta)
		}
		fmt.Println()
	}
}

// observe runs one connection through the censor and classifies it.
func observe(policy middlebox.Policy, domain string) (tamperdetect.Result, string) {
	sim := netsim.NewSim(0)
	rng := rand.New(rand.NewPCG(42, 42))
	cprof := tcpsim.NetProfile{
		LocalIP:    netip.MustParseAddr("203.0.113.50"),
		RemoteIP:   netip.MustParseAddr("192.0.2.80"),
		LocalPort:  40123,
		RemotePort: 443,
		InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: 2500,
		Window: 64240, SYNOptions: true,
	}
	sprof := tcpsim.NetProfile{
		LocalIP: cprof.RemoteIP, RemoteIP: cprof.LocalIP,
		LocalPort: 443, RemotePort: 40123,
		InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: 9000,
		Window: 65535, SYNOptions: true,
	}
	hello := tlswire.BuildClientHello(tlswire.ClientHelloSpec{ServerName: domain})
	cli := tcpsim.NewClient(sim, tcpsim.ClientConfig{
		Net:      cprof,
		Segments: []tcpsim.Segment{{Data: hello}},
	}, rng)
	srv := tcpsim.NewServer(sim, tcpsim.ServerConfig{Net: sprof}, rng)
	engine := middlebox.NewEngine([]middlebox.Policy{policy}, rng, sim.Now)

	path := netsim.NewPath(sim, netsim.PathConfig{
		Segments: []netsim.Segment{
			{Delay: 25 * time.Millisecond, Hops: 6},
			{Delay: 35 * time.Millisecond, Hops: 8},
		},
		Middleboxes: []netsim.Middlebox{engine},
	}, cli, srv)

	sampler := capture.NewSampler(capture.DefaultConfig())
	path.Tap = sampler.Inbound
	cli.Attach(path.SendFromClient)
	srv.Attach(path.SendFromServer)
	cli.Start()
	sim.Run(0)
	conns := sampler.Drain(sim.Now().Add(30 * time.Second))

	cl := tamperdetect.NewClassifier(tamperdetect.DefaultConfig())
	seq := ""
	for i, p := range tamperdetect.Reconstruct(conns[0]) {
		if i > 0 {
			seq += " "
		}
		seq += p.Flags.String()
	}
	return cl.Classify(conns[0]), seq
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
