// Listaudit reproduces §5.5's measurement workflow as a standalone
// tool: run a global scenario, extract the domains passive detection
// finds tampered in each region, and audit how much of that set each
// active-measurement test list would have covered — including the
// substring best case.
//
// Run with: go run ./examples/listaudit [-total 30000]
package main

import (
	"flag"
	"fmt"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/testlists"
	"tamperdetect/internal/workload"
)

func main() {
	total := flag.Int("total", 30000, "connections to simulate")
	threshold := flag.Int("threshold", 2, "per-domain match threshold")
	flag.Parse()

	scen, err := workload.BuildScenario("listaudit", *total, 7*24, 55)
	if err != nil {
		fmt.Println("building scenario:", err)
		return
	}
	conns := scen.Run(0)
	recs := analysis.Analyze(conns, scen.Geo, core.NewClassifier(core.DefaultConfig()), 0)

	sensitive := func(d *domains.Domain) bool {
		switch d.Category {
		case domains.AdultThemes, domains.News, domains.SocialNetworks, domains.Chat:
			return true
		default:
			return false
		}
	}
	suite := testlists.BuildSuite(scen.Universe, sensitive, testlists.DefaultBuildConfig())

	regions := []string{"", "CN", "IR", "RU", "IN"}
	for _, reg := range regions {
		name := reg
		if name == "" {
			name = "Global"
		}
		tampered := analysis.TamperedDomains(recs, reg, *threshold)
		fmt.Printf("%s: %d tampered domains observed passively\n", name, len(tampered))
		if len(tampered) == 0 {
			continue
		}
		for _, l := range []*testlists.List{
			suite.CitizenLab, suite.GreatfireAll, suite.Tranco100K, suite.Tranco1M,
		} {
			exact := testlists.Coverage(l, tampered, false)
			sub := testlists.Coverage(l, tampered, true)
			fmt.Printf("  %-16s exact %5.1f%%   substring best-case %5.1f%%\n",
				l.Name, 100*exact, 100*sub)
		}
		// What the lists miss is the actionable output: candidates for
		// test-list maintainers.
		curated := testlists.Union("curated", suite.CitizenLab, suite.GreatfireAll)
		missed := 0
		example := ""
		for _, d := range tampered {
			if !curated.ContainsExact(d) {
				missed++
				if example == "" {
					example = d
				}
			}
		}
		fmt.Printf("  curated lists miss %d/%d domains (e.g. %s)\n\n", missed, len(tampered), example)
	}
}
