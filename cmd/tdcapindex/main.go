// Command tdcapindex builds a segment-index sidecar for a legacy TDCAP
// capture, making it shard-scannable by tamperscan without rewriting
// the capture itself. It scans the whole file once, recording every
// Nth record boundary, and writes the checksummed index to a .tdx file
// next to the capture (see internal/capture's index format).
//
// Usage:
//
//	tdcapindex [-interval N] [-o out.tdx] capture.tdcap
//
// -interval sets the index granularity in records (default 1024). The
// sidecar records the capture's exact byte size, so a capture that is
// appended to or rewritten after indexing is detected as stale at load
// time and scanned single-threaded; rerun tdcapindex to refresh it.
//
// Captures whose trailing footer already carries an index do not need
// a sidecar; tdcapindex still works on them (the footer is skipped at
// its record boundary like any stream consumer would) but says so.
//
// Exit status: 0 on success, 1 on failure (unreadable, corrupt, or
// empty capture — an index over zero records has no segments to hand
// to shards, so refusing beats writing a useless sidecar), 2 on usage
// errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/logx"
)

func main() {
	interval := flag.Int("interval", capture.DefaultIndexInterval, "records per index point")
	out := flag.String("o", "", "output sidecar path (default: <capture>.tdx)")
	logFormat := flag.String("log-format", logx.FormatText, "structured log format on stderr: text or json")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: tdcapindex [-interval N] [-o out.tdx] capture.tdcap

Builds a .tdx segment-index sidecar so tamperscan can shard the scan
across independent readers. The capture file itself is not modified.
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	log, err := logx.New(os.Stderr, *logFormat, logx.NewRunID(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdcapindex:", err)
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *out, *interval); err != nil {
		log.Error("indexing failed", "path", flag.Arg(0), "err", err.Error())
		os.Exit(1)
	}
}

func run(path, out string, interval int) error {
	if interval < 1 {
		return fmt.Errorf("-interval %d: want >= 1", interval)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if !fi.Mode().IsRegular() {
		return fmt.Errorf("%s is not a regular file; a sidecar index needs a stable capture size", path)
	}
	idx, err := capture.BuildIndex(bufio.NewReaderSize(f, 1<<20), interval)
	if err != nil {
		return fmt.Errorf("scanning %s: %w", path, err)
	}
	if idx.Records == 0 {
		return fmt.Errorf("%s holds no records; nothing to index", path)
	}
	// Stat again after the full scan: a capture that changed size while
	// being indexed would get a sidecar that is stale on arrival.
	after, err := f.Stat()
	if err != nil {
		return err
	}
	if after.Size() != fi.Size() {
		return fmt.Errorf("%s changed size during indexing (%d -> %d bytes); is it still being written?",
			path, fi.Size(), after.Size())
	}
	idx.FileSize = fi.Size()
	if out == "" {
		out = capture.SidecarPath(path)
	}
	if err := os.WriteFile(out, capture.EncodeSidecar(idx), 0o644); err != nil {
		return err
	}
	fmt.Printf("indexed %s: %d records, %d index points (interval %d), wrote %s\n",
		path, idx.Records, len(idx.Offsets), idx.Interval, out)
	if hasFooter(f, fi.Size()) {
		fmt.Printf("note: %s already carries an index footer; tamperscan prefers the footer over the sidecar\n", path)
	}
	return nil
}

// hasFooter reports whether the capture already ends in an index
// footer (written by an indexing trafficgen).
func hasFooter(f *os.File, size int64) bool {
	_, err := capture.ReadFooterIndex(f, size)
	return err == nil
}
