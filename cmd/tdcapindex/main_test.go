package main

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"tamperdetect"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/packet"
)

func sampleConns(n int) []*tamperdetect.Connection {
	out := make([]*tamperdetect.Connection, n)
	for i := range out {
		out[i] = &tamperdetect.Connection{
			SrcIP: netip.AddrFrom4([4]byte{20, 0, byte(i >> 8), byte(i)}), DstIP: netip.MustParseAddr("192.0.2.80"),
			SrcPort: uint16(40000 + i), DstPort: 443, IPVersion: 4,
			TotalPackets: 1, LastActivity: 1, CloseTime: 30,
			Packets: []tamperdetect.PacketRecord{
				{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, TTL: 54, IPID: 1, HasOptions: true},
			},
		}
	}
	return out
}

func TestBuildsSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tdcap")
	conns := sampleConns(37)
	if err := tamperdetect.WriteCaptureFile(path, conns); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", 8); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The sidecar must load through FindIndex against the capture and
	// describe exactly its records, segmentable end to end.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := capture.FindIndex(f, fi.Size(), path)
	if err != nil {
		t.Fatalf("FindIndex: %v", err)
	}
	if idx.Records != len(conns) || idx.Interval != 8 || idx.FileSize != fi.Size() {
		t.Fatalf("index %+v, want %d records at interval 8, file size %d", idx, len(conns), fi.Size())
	}
	if _, err := capture.NewSegmentedSource(f, fi.Size(), idx, 4); err != nil {
		t.Fatalf("NewSegmentedSource over sidecar index: %v", err)
	}

	// Appending to the capture must make the sidecar stale, not wrong.
	if err := os.WriteFile(path, append(mustRead(t, path), 0xC0), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	fi2, err := f2.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := capture.FindIndex(f2, fi2.Size(), path); err == nil {
		t.Fatal("stale sidecar accepted after the capture grew")
	}
}

func TestRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.tdcap")
	if err := tamperdetect.WriteCaptureFile(empty, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, "", 8); err == nil {
		t.Error("empty capture indexed")
	}
	if _, err := os.Stat(capture.SidecarPath(empty)); !os.IsNotExist(err) {
		t.Error("sidecar written for an empty capture")
	}
	if err := run(empty, "", 0); err == nil {
		t.Error("interval 0 accepted")
	}
	junk := filepath.Join(dir, "junk.tdcap")
	if err := os.WriteFile(junk, []byte("not a capture at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(junk, "", 8); err == nil {
		t.Error("junk input indexed")
	}
	if err := run(filepath.Join(dir, "missing.tdcap"), "", 8); err == nil {
		t.Error("missing input indexed")
	}
}

func TestCustomOutputPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, sampleConns(5)); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "elsewhere.tdx")
	if err := run(path, out, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := capture.DecodeSidecar(data)
	if err != nil {
		t.Fatalf("DecodeSidecar: %v", err)
	}
	if idx.Records != 5 {
		t.Errorf("index %+v, want 5 records", idx)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Clone(data)
}
