// Command trafficgen runs a synthetic global traffic scenario through
// the full simulation stack (TCP endpoints, censor middleboxes, the
// sampled capture pipeline) and writes the resulting connection records
// as a TDCAP capture file consumable by tamperscan.
//
// Usage:
//
//	trafficgen [-scenario global|iran2022] [-total N] [-hours H]
//	           [-seed S] [-workers W] [-impair grade]
//	           [-config scenario.json] -o out.tdcap
//
// With -config, the scenario (countries, censor styles, coverage, and
// temporal knobs) is loaded from a JSON file; see
// internal/workload/config.go for the schema and style names.
//
// -impair degrades every simulated path with a named fault grade from
// internal/faults (clean, lossy, hostile): burst loss, duplication,
// reordering, jitter, corruption. It overrides the config file's
// "impairment" field when both are given.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tamperdetect"
	"tamperdetect/internal/faults"
	"tamperdetect/internal/profiling"
	"tamperdetect/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "global", "scenario: global or iran2022")
	config := flag.String("config", "", "JSON scenario file (overrides -scenario)")
	total := flag.Int("total", 50000, "total connections to simulate")
	hours := flag.Int("hours", 14*24, "scenario duration in hours (global scenario)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = all cores)")
	impair := flag.String("impair", "", "link-impairment grade (clean|lossy|hostile)")
	out := flag.String("o", "capture.tdcap", "output capture path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
	runErr := run(*scenario, *config, *total, *hours, *seed, *workers, *impair, *out)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", runErr)
		os.Exit(1)
	}
}

func run(scenario, config string, total, hours int, seed uint64, workers int, impair, out string) error {
	var s *workload.Scenario
	var err error
	switch {
	case config != "":
		s, err = workload.LoadScenarioFile(config)
	case scenario == "global":
		s, err = workload.BuildScenario("global", total, hours, seed)
	case scenario == "iran2022":
		s, err = workload.Iran2022Scenario(total, seed)
	default:
		return fmt.Errorf("unknown scenario %q (want global or iran2022)", scenario)
	}
	if err != nil {
		return err
	}
	if impair != "" {
		if s.Impairments, err = faults.Grade(impair); err != nil {
			return err
		}
	}
	start := time.Now()
	conns := s.Run(workers)
	fmt.Printf("simulated %d connections over %d scenario-hours in %v\n",
		len(conns), s.Hours, time.Since(start).Round(time.Millisecond))
	if err := tamperdetect.WriteCaptureFile(out, conns); err != nil {
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, fi.Size())
	return nil
}
