// Command trafficgen runs a synthetic global traffic scenario through
// the full simulation stack (TCP endpoints, censor middleboxes, the
// sampled capture pipeline) and writes the resulting connection records
// as a TDCAP capture file consumable by tamperscan.
//
// Usage:
//
//	trafficgen [-scenario global|<preset>] [-total N] [-hours H]
//	           [-seed S] [-workers W] [-impair grade] [-index N]
//	           [-config scenario.json] [-metrics-addr host:port]
//	           [-trace-out t.trace] [-trace-in t.trace]
//	           -o out.tdcap
//
// -scenario accepts "global" (the full hardcoded country table) or any
// embedded preset name (e.g. iran2022, default-diurnal; run with
// -scenario list to print them). Presets carry their own total/hours
// defaults; -total and -hours override them only when given
// explicitly on the command line.
//
// -index appends a segment index footer recording every Nth record
// boundary (default 1024), which lets tamperscan shard the scan across
// independent readers; -index 0 writes a legacy unindexed capture
// (cmd/tdcapindex can build a sidecar index for those later).
//
// With -config, the scenario (countries, censor styles, coverage, and
// temporal knobs) is loaded from a JSON file; see
// internal/workload/config.go for the schema and style names.
//
// -trace-out records the expanded arrival stream (every virtual-time
// arrival plus its drawn connection parameters) to a compact
// CRC-guarded trace file; -trace-in replays such a trace against the
// same scenario and seed, reproducing the TDCAP byte for byte — a
// regression harness for the generator (see internal/workload/trace.go).
//
// -impair degrades every simulated path with a named fault grade from
// internal/faults (clean, lossy, hostile): burst loss, duplication,
// reordering, jitter, corruption. It overrides the config file's
// "impairment" field when both are given.
//
// -metrics-addr serves Prometheus (/metrics), JSON (/metrics.json),
// health (/healthz), and pprof (/debug/pprof/) endpoints for the
// duration of the run; fault-injection event counters
// (tamperdetect_faults_events_total) are exposed there and a summary
// is printed after the run when impairments are active.
//
// -cpuprofile/-memprofile/-blockprofile/-mutexprofile write Go pprof
// profiles of the simulation; block and mutex profiling are armed only
// when their flags are given.
//
// Connections are written to the capture file as they are simulated,
// so SIGINT/SIGTERM stop the run gracefully: in-flight simulations
// drain, the file is flushed as a VALID partial capture of everything
// simulated so far, and the run summary still prints. An interrupted
// run exits 1 with a message naming the partial file.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"log/slog"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/faults"
	"tamperdetect/internal/logx"
	"tamperdetect/internal/profiling"
	"tamperdetect/internal/telemetry"
	"tamperdetect/internal/workload"
)

// logger is the process-wide structured logger. main replaces it once
// -log-format is parsed; tests exercising run() keep this default.
var logger = slog.Default()

func main() {
	scenario := flag.String("scenario", "global", "scenario: global, an embedded preset name, or list")
	config := flag.String("config", "", "JSON scenario file (overrides -scenario)")
	total := flag.Int("total", 50000, "total connections to simulate")
	hours := flag.Int("hours", 14*24, "scenario duration in hours (global scenario)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = all cores)")
	impair := flag.String("impair", "", "link-impairment grade (clean|lossy|hostile)")
	out := flag.String("o", "capture.tdcap", "output capture path")
	index := flag.Int("index", capture.DefaultIndexInterval, "segment index granularity in records (0 = no index footer)")
	traceOut := flag.String("trace-out", "", "record the arrival trace (expanded spec stream) to this file")
	traceIn := flag.String("trace-in", "", "replay a recorded arrival trace instead of expanding the scenario (must match its scenario/seed)")
	verify := flag.Bool("verify", false, "re-scan the written capture and confirm every record is structurally valid")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address for the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this path")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile to this path")
	logFormat := flag.String("log-format", logx.FormatText, "structured log format on stderr: text or json")
	flag.Parse()

	// Presets carry their own total/hours defaults; the flags override
	// them only when the user actually set them.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !explicit["total"] {
		*total = 0
	}
	if !explicit["hours"] {
		*hours = 0
	}
	if *scenario == "list" {
		fmt.Println("global")
		for _, n := range workload.PresetNames() {
			fmt.Println(n)
		}
		return
	}

	log, err := logx.New(os.Stderr, *logFormat, logx.NewRunID(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
	logger = log

	stopProf, err := profiling.Start(profiling.Config{
		CPUProfile:   *cpuprofile,
		MemProfile:   *memprofile,
		BlockProfile: *blockprofile,
		MutexProfile: *mutexprofile,
	})
	if err != nil {
		log.Error("profiling setup failed", "err", err.Error())
		os.Exit(1)
	}
	ctx, stopSig := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSig()
	runErr := run(ctx, *scenario, *config, *total, *hours, *seed, *workers, *impair, *out, *metricsAddr, *traceOut, *traceIn, *verify, *index)
	if err := stopProf(); err != nil {
		log.Warn("profile write failed", "err", err.Error())
	}
	if runErr != nil {
		log.Error("generation failed", "err", runErr.Error())
		os.Exit(1)
	}
}

func run(ctx context.Context, scenario, config string, total, hours int, seed uint64, workers int, impair, out, metricsAddr, traceOut, traceIn string, verify bool, index int) error {
	if index < 0 {
		return fmt.Errorf("-index %d: want >= 0", index)
	}
	var s *workload.Scenario
	var err error
	switch {
	case config != "":
		s, err = workload.LoadScenarioFile(config)
	case scenario == "global":
		if total <= 0 {
			total = 50000
		}
		if hours <= 0 {
			hours = 14 * 24
		}
		s, err = workload.BuildScenario("global", total, hours, seed)
	default:
		// Any embedded preset name; total/hours are zero unless the
		// flags were given explicitly, in which case they override the
		// preset's defaults.
		s, err = workload.PresetScenario(scenario, total, hours, seed)
	}
	if err != nil {
		return err
	}
	if impair != "" {
		if s.Impairments, err = faults.Grade(impair); err != nil {
			return err
		}
	}

	// Fault-injection events are counted whenever impairments are
	// active; with -metrics-addr they are also exposed live.
	var fstats faults.Stats
	s.Impairments.Stats = &fstats
	if metricsAddr != "" {
		reg := telemetry.NewRegistry()
		fstats.Register(reg)
		srv, err := telemetry.NewServer(metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		logger.Info("serving metrics", "url", srv.URL()+"/metrics")
	}

	// The spec stream either replays a recorded arrival trace or
	// expands the scenario's arrival processes; -trace-out records the
	// expansion for later byte-identical replay.
	var specs []workload.ConnSpec
	if traceIn != "" {
		tf, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		specs, err = workload.ReadTrace(tf, s)
		tf.Close()
		if err != nil {
			return err
		}
		logger.Info("replaying recorded arrival trace", "arrivals", len(specs), "path", traceIn)
	} else {
		specs = s.SpecsSharded(workers)
	}
	if traceOut != "" {
		tf, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := workload.WriteTrace(tf, s, specs); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		logger.Info("recorded arrival trace", "arrivals", len(specs), "path", traceOut)
	}

	// Connections stream from the simulator straight into the capture
	// writer — nothing buffers the whole run, and a SIGINT/SIGTERM
	// leaves a valid capture of everything simulated so far.
	start := time.Now()
	src := s.StreamSpecs(specs, workers)
	defer src.Close()
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := capture.NewWriter(f)
	if index > 0 {
		if err := w.EnableIndex(index); err != nil {
			f.Close()
			return err
		}
	}
	written := 0
	interrupted := false
loop:
	for {
		select {
		case <-ctx.Done():
			interrupted = true
			break loop
		default:
		}
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return err
		}
		if err := w.Write(c); err != nil {
			f.Close()
			return err
		}
		written++
	}
	src.Close()
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("simulated %d connections over %d scenario-hours in %v\n",
		written, s.Hours, time.Since(start).Round(time.Millisecond))
	if delivered := fstats.Delivered.Load(); delivered > 0 {
		fmt.Printf("impairment events: delivered=%d lost=%d dup=%d reordered=%d corrupted=%d truncated=%d\n",
			delivered, fstats.Lost.Load(), fstats.Duplicated.Load(),
			fstats.Reordered.Load(), fstats.Corrupted.Load(), fstats.Truncated.Load())
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, fi.Size())
	if verify {
		n, err := verifyCapture(out)
		if err != nil {
			return fmt.Errorf("verify %s: %w", out, err)
		}
		if n != written {
			return fmt.Errorf("verify %s: scanned %d records, wrote %d", out, n, written)
		}
		fmt.Printf("verified %s: %d records scan clean\n", out, n)
	}
	if interrupted {
		return fmt.Errorf("interrupted: %s is a valid partial capture of the %d connections simulated before the signal", out, written)
	}
	return nil
}

// verifyCapture re-reads a written capture with the raw-record
// scanner (the parallel pipeline's front end) and returns how many
// structurally valid records it holds; any truncation or corruption
// surfaces as an error. This catches writer bugs and torn writes at
// generation time instead of at first scan.
func verifyCapture(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := capture.NewScanner(bufio.NewReaderSize(f, 1<<20))
	var slab []byte
	for {
		next, err := sc.Next(slab[:0])
		slab = next
		if err == io.EOF {
			return sc.Count(), nil
		}
		if err != nil {
			return sc.Count(), err
		}
	}
}
