package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tamperdetect"
	"tamperdetect/internal/capture"
)

func TestRunGlobal(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.tdcap")
	if err := run(context.Background(), "global", "", 500, 6, 3, 2, "", out, "", true, 64); err != nil {
		t.Fatalf("run: %v", err)
	}
	conns, err := tamperdetect.ReadCaptureFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(conns) < 450 {
		t.Errorf("capture has %d connections", len(conns))
	}
	// The default run writes an index footer that describes exactly the
	// records in the file.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := capture.FindIndex(f, fi.Size(), out)
	if err != nil {
		t.Fatalf("FindIndex on trafficgen output: %v", err)
	}
	if idx.Records != len(conns) || idx.Interval != 64 {
		t.Errorf("index %+v, want %d records at interval 64", idx, len(conns))
	}
}

func TestRunIran(t *testing.T) {
	out := filepath.Join(t.TempDir(), "i.tdcap")
	if err := run(context.Background(), "iran2022", "", 400, 0, 3, 2, "lossy", out, "", true, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunConfig(t *testing.T) {
	cfg := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(cfg, []byte(`{"total":200,"hours":6,"countries":[{"code":"AA","share":1,"blocked_seek_base":0.3,"styles":{"gfw":1}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "c.tdcap")
	if err := run(context.Background(), "", cfg, 0, 0, 0, 2, "", out, "", false, capture.DefaultIndexInterval); err != nil {
		t.Fatalf("run(config): %v", err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run(context.Background(), "nope", "", 10, 1, 1, 1, "", filepath.Join(t.TempDir(), "x"), "", false, 0); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run(context.Background(), "global", "", 10, 1, 1, 1, "nope", filepath.Join(t.TempDir(), "x"), "", false, 0); err == nil {
		t.Error("unknown impairment grade accepted")
	}
}

// TestRunWithMetricsServer exercises the -metrics-addr wiring
// end-to-end: the server must start on an ephemeral port, the
// impaired run must count fault events, and shutdown must not wedge.
func TestRunWithMetricsServer(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.tdcap")
	if err := run(context.Background(), "global", "", 300, 6, 3, 2, "lossy", out, "127.0.0.1:0", false, 0); err != nil {
		t.Fatalf("run with metrics server: %v", err)
	}
	if _, err := tamperdetect.ReadCaptureFile(out); err != nil {
		t.Fatal(err)
	}
}

// TestRunInterrupted: a cancelled context (the signal path) still
// leaves a valid — possibly empty — capture file and reports the
// interruption as an error naming it.
func TestRunInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := filepath.Join(t.TempDir(), "p.tdcap")
	err := run(ctx, "global", "", 500, 6, 3, 2, "", out, "", false, 64)
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want an interrupted message", err)
	}
	// Whatever was written must still scan as a structurally valid
	// capture.
	if _, err := verifyCapture(out); err != nil {
		t.Fatalf("partial capture damaged: %v", err)
	}
}
