package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tamperdetect"
	"tamperdetect/internal/analysis"
	"tamperdetect/internal/capture"
)

func TestRunGlobal(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.tdcap")
	if err := run(context.Background(), "global", "", 500, 6, 3, 2, "", out, "", "", "", true, 64); err != nil {
		t.Fatalf("run: %v", err)
	}
	conns, err := tamperdetect.ReadCaptureFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(conns) < 450 {
		t.Errorf("capture has %d connections", len(conns))
	}
	// The default run writes an index footer that describes exactly the
	// records in the file.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := capture.FindIndex(f, fi.Size(), out)
	if err != nil {
		t.Fatalf("FindIndex on trafficgen output: %v", err)
	}
	if idx.Records != len(conns) || idx.Interval != 64 {
		t.Errorf("index %+v, want %d records at interval 64", idx, len(conns))
	}
}

func TestRunIran(t *testing.T) {
	out := filepath.Join(t.TempDir(), "i.tdcap")
	if err := run(context.Background(), "iran2022", "", 400, 0, 3, 2, "lossy", out, "", "", "", true, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunConfig(t *testing.T) {
	cfg := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(cfg, []byte(`{"total":200,"hours":6,"countries":[{"code":"AA","share":1,"blocked_seek_base":0.3,"styles":{"gfw":1}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "c.tdcap")
	if err := run(context.Background(), "", cfg, 0, 0, 0, 2, "", out, "", "", "", false, capture.DefaultIndexInterval); err != nil {
		t.Fatalf("run(config): %v", err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run(context.Background(), "nope", "", 10, 1, 1, 1, "", filepath.Join(t.TempDir(), "x"), "", "", "", false, 0); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run(context.Background(), "global", "", 10, 1, 1, 1, "nope", filepath.Join(t.TempDir(), "x"), "", "", "", false, 0); err == nil {
		t.Error("unknown impairment grade accepted")
	}
}

// TestRunDeterministicAcrossWorkers is the virtual-time determinism
// contract end to end: the same preset and seed must produce a
// byte-identical TDCAP regardless of worker count or repetition —
// the property scripts/check.sh gates on the full-size scenario.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	outs := make([][]byte, 0, 3)
	for i, workers := range []int{1, 4, 4} {
		out := filepath.Join(dir, fmt.Sprintf("d%d.tdcap", i))
		if err := run(context.Background(), "iran2022", "", 500, 24, 5, workers, "", out, "", "", "", false, 64); err != nil {
			t.Fatalf("run workers=%d: %v", workers, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, data)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Error("workers=1 and workers=4 captures differ")
	}
	if !bytes.Equal(outs[1], outs[2]) {
		t.Error("two workers=4 runs differ")
	}
}

// TestRunVirtualWindowCoverage: capture timestamps from the
// event-queue generator must span the whole virtual window — every
// scenario hour populated, at sub-hour (1-second) resolution.
func TestRunVirtualWindowCoverage(t *testing.T) {
	const hours = 48
	out := filepath.Join(t.TempDir(), "w.tdcap")
	if err := run(context.Background(), "iran2022", "", 4000, hours, 11, 0, "", out, "", "", "", false, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	conns, err := tamperdetect.ReadCaptureFile(out)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]analysis.Record, 0, len(conns))
	for _, c := range conns {
		if len(c.Packets) == 0 {
			continue
		}
		ts := c.Packets[0].Timestamp
		recs = append(recs, analysis.Record{Time: ts, Hour: int(ts / 3600)})
	}
	if err := analysis.ComputeTimeSpan(recs).CoversWindow(hours); err != nil {
		t.Errorf("virtual window not covered: %v", err)
	}
}

// TestRunTraceRecordReplay: -trace-out records the arrival stream and
// -trace-in replays it to a byte-identical capture; a trace from a
// different seed is rejected.
func TestRunTraceRecordReplay(t *testing.T) {
	dir := t.TempDir()
	out1 := filepath.Join(dir, "a.tdcap")
	out2 := filepath.Join(dir, "b.tdcap")
	trace := filepath.Join(dir, "a.trace")
	if err := run(context.Background(), "iran2022", "", 400, 24, 3, 2, "", out1, "", trace, "", false, 64); err != nil {
		t.Fatalf("record run: %v", err)
	}
	if err := run(context.Background(), "iran2022", "", 400, 24, 3, 4, "", out2, "", "", trace, false, 64); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("trace replay produced a different capture than the recording run")
	}
	// A different seed must refuse the trace.
	if err := run(context.Background(), "iran2022", "", 400, 24, 9, 2, "", out2, "", "", trace, false, 64); err == nil {
		t.Error("trace accepted against a different seed")
	}
}

// TestRunWithMetricsServer exercises the -metrics-addr wiring
// end-to-end: the server must start on an ephemeral port, the
// impaired run must count fault events, and shutdown must not wedge.
func TestRunWithMetricsServer(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.tdcap")
	if err := run(context.Background(), "global", "", 300, 6, 3, 2, "lossy", out, "127.0.0.1:0", "", "", false, 0); err != nil {
		t.Fatalf("run with metrics server: %v", err)
	}
	if _, err := tamperdetect.ReadCaptureFile(out); err != nil {
		t.Fatal(err)
	}
}

// TestRunInterrupted: a cancelled context (the signal path) still
// leaves a valid — possibly empty — capture file and reports the
// interruption as an error naming it.
func TestRunInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := filepath.Join(t.TempDir(), "p.tdcap")
	err := run(ctx, "global", "", 500, 6, 3, 2, "", out, "", "", "", false, 64)
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want an interrupted message", err)
	}
	// Whatever was written must still scan as a structurally valid
	// capture.
	if _, err := verifyCapture(out); err != nil {
		t.Fatalf("partial capture damaged: %v", err)
	}
}
