// Command popmerge is the fleet-mode merge service: it accepts
// per-epoch aggregator snapshots pushed by tamperscan -push clients,
// deduplicates them by (pop, epoch) — an ACK-lost retransmission can
// never double-count — and serves the continuously-updated global
// paper report.
//
// Endpoints (all on one listener):
//
//	POST /v1/push   one snapshot frame (see internal/fleet)
//	GET  /report    the merged global paper report (plain text)
//	GET  /v1/status merge stats, per-PoP liveness, epoch progress
//	GET  /metrics   Prometheus exposition   (internal/telemetry)
//	GET  /healthz   liveness probe
//
// Epochs close on a quorum of distinct PoPs (-quorum) and/or a
// deadline after their first frame (-epoch-deadline); frames for a
// closed epoch follow the -late policy: "merge" (default — stragglers
// still count, surfaced in /v1/status) or "drop" (counted, never an
// error). A PoP silent for longer than -stale-after shows as stale in
// /v1/status.
//
// Usage:
//
//	popmerge [-addr host:port] [-quorum N] [-epoch-deadline D]
//	         [-late merge|drop] [-stale-after D]
//
// popmerge runs until SIGINT/SIGTERM, then shuts the listener down
// gracefully and prints the final merge stats to stderr.
//
// Exit status: 0 on a clean (signalled) shutdown, 2 on usage or
// startup errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/fleet"
	"tamperdetect/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// testHookServing is invoked with the bound address once the listener
// is up; tests use it to reach a :0 server and then signal shutdown.
var testHookServing = func(addr string) {}

func run(args []string, errw *os.File) int {
	fs := flag.NewFlagSet("popmerge", flag.ContinueOnError)
	fs.SetOutput(errw)
	addr := fs.String("addr", ":7343", "listen address (host:port; :0 picks a free port)")
	quorum := fs.Int("quorum", 0, "close an epoch once this many distinct PoPs reported (0 = never)")
	deadline := fs.Duration("epoch-deadline", 0, "close an epoch this long after its first frame (0 = never)")
	late := fs.String("late", "merge", "closed-epoch policy: merge or drop")
	staleAfter := fs.Duration("stale-after", 5*time.Minute, "mark a PoP stale after this much silence")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(errw, "popmerge: unexpected arguments")
		fs.Usage()
		return 2
	}
	var policy fleet.LatePolicy
	switch *late {
	case "merge":
		policy = fleet.LateMerge
	case "drop":
		policy = fleet.LateDrop
	default:
		fmt.Fprintf(errw, "popmerge: -late must be merge or drop, got %q\n", *late)
		return 2
	}

	merger, err := fleet.NewMerger(fleet.MergerConfig{
		Fresh:         analysis.NewFleetAggs,
		Quorum:        *quorum,
		EpochDeadline: *deadline,
		Late:          policy,
		StaleAfter:    *staleAfter,
	})
	if err != nil {
		fmt.Fprintf(errw, "popmerge: %v\n", err)
		return 2
	}

	reg := telemetry.NewRegistry()
	merger.RegisterMetrics(reg)
	srv, err := telemetry.NewServerWith(*addr, reg, merger.Handler())
	if err != nil {
		fmt.Fprintf(errw, "popmerge: %v\n", err)
		return 2
	}
	fmt.Fprintf(errw, "popmerge: serving on %s (push to %s/v1/push)\n", srv.Addr(), srv.URL())
	testHookServing(srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	srv.Close()
	st := merger.Stats()
	fmt.Fprintf(errw,
		"popmerge: shut down: accepted=%d duplicates=%d late_merged=%d late_dropped=%d rejected=%d\n",
		st.Accepted, st.Duplicates, st.LateMerged, st.LateDropped, st.Rejected)
	return 0
}
