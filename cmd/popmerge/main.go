// Command popmerge is the fleet-mode merge service: it accepts
// per-epoch aggregator snapshots pushed by tamperscan -push clients,
// deduplicates them by (pop, epoch) — an ACK-lost retransmission can
// never double-count — and serves the continuously-updated global
// paper report.
//
// Endpoints (all on one listener):
//
//	POST /v1/push       one snapshot frame (see internal/fleet)
//	GET  /report        the merged global paper report (plain text)
//	GET  /v1/status     merge stats, per-PoP liveness, epoch progress
//	GET  /metrics       Prometheus exposition   (internal/telemetry)
//	GET  /healthz       liveness probe
//	GET  /debug/tracez  live span rings (text or ?format=json)
//
// Every v3 frame carries the pushing scan's trace context, so the
// validate/merge spans popmerge emits land in the pusher's trace —
// one distributed trace covers both sides of the hop. Logs go to
// stderr through log/slog (-log-format text|json) stamped with this
// process's run_id; rejected or undecodable frames leave structured
// events in the flight recorder, which is dumped to stderr at
// shutdown when nonempty.
//
// Epochs close on a quorum of distinct PoPs (-quorum) and/or a
// deadline after their first frame (-epoch-deadline); frames for a
// closed epoch follow the -late policy: "merge" (default — stragglers
// still count, surfaced in /v1/status) or "drop" (counted, never an
// error). A PoP silent for longer than -stale-after shows as stale in
// /v1/status.
//
// Usage:
//
//	popmerge [-addr host:port] [-quorum N] [-epoch-deadline D]
//	         [-late merge|drop] [-stale-after D] [-log-format text|json]
//
// popmerge runs until SIGINT/SIGTERM, then shuts the listener down
// gracefully and prints the final merge stats to stderr.
//
// Exit status: 0 on a clean (signalled) shutdown, 2 on usage or
// startup errors.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/fleet"
	"tamperdetect/internal/logx"
	"tamperdetect/internal/telemetry"
	"tamperdetect/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// testHookServing is invoked with the bound address once the listener
// is up; tests use it to reach a :0 server and then signal shutdown.
var testHookServing = func(addr string) {}

func run(args []string, errw *os.File) int {
	fs := flag.NewFlagSet("popmerge", flag.ContinueOnError)
	fs.SetOutput(errw)
	addr := fs.String("addr", ":7343", "listen address (host:port; :0 picks a free port)")
	quorum := fs.Int("quorum", 0, "close an epoch once this many distinct PoPs reported (0 = never)")
	deadline := fs.Duration("epoch-deadline", 0, "close an epoch this long after its first frame (0 = never)")
	late := fs.String("late", "merge", "closed-epoch policy: merge or drop")
	staleAfter := fs.Duration("stale-after", 5*time.Minute, "mark a PoP stale after this much silence")
	logFormat := fs.String("log-format", logx.FormatText, "structured log format on stderr: text or json")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(errw, "popmerge: unexpected arguments")
		fs.Usage()
		return 2
	}
	var policy fleet.LatePolicy
	switch *late {
	case "merge":
		policy = fleet.LateMerge
	case "drop":
		policy = fleet.LateDrop
	default:
		fmt.Fprintf(errw, "popmerge: -late must be merge or drop, got %q\n", *late)
		return 2
	}

	// The run ID doubles as the merger's own trace ID — the fallback
	// for untraced v1/v2 frames; v3 frames override it with the
	// pushing scan's, joining the two processes in one trace.
	fl := trace.NewFlight(trace.DefaultFlightEvents)
	runID := logx.NewRunID()
	log, err := logx.New(errw, *logFormat, runID, fl)
	if err != nil {
		fmt.Fprintf(errw, "popmerge: %v\n", err)
		return 2
	}
	tracer := trace.New(trace.Config{TraceID: runID, Flight: fl})

	merger, err := fleet.NewMerger(fleet.MergerConfig{
		Fresh:         analysis.NewFleetAggs,
		Quorum:        *quorum,
		EpochDeadline: *deadline,
		Late:          policy,
		StaleAfter:    *staleAfter,
		Tracer:        tracer,
	})
	if err != nil {
		log.Error("merger construction failed", "err", err.Error())
		return 2
	}

	reg := telemetry.NewRegistry()
	merger.RegisterMetrics(reg)
	routes := merger.Handler()
	routes["/debug/tracez"] = trace.TracezHandler(tracer)
	srv, err := telemetry.NewServerWith(*addr, reg, routes)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err.Error())
		return 2
	}
	log.Info("serving", "addr", srv.Addr(), "push", srv.URL()+"/v1/push", "tracez", srv.URL()+"/debug/tracez")
	testHookServing(srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	srv.Close()
	st := merger.Stats()
	log.Info("shut down",
		"accepted", st.Accepted, "duplicates", st.Duplicates,
		"late_merged", st.LateMerged, "late_dropped", st.LateDropped, "rejected", st.Rejected)
	// A lifetime with rejected or undecodable frames leaves evidence in
	// the flight recorder; surface it rather than exiting silently.
	if len(fl.Events()) > 0 {
		var buf bytes.Buffer
		if err := fl.Dump(&buf, "shutdown"); err == nil {
			errw.Write(buf.Bytes())
		}
	}
	return 0
}
