package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/core"
	"tamperdetect/internal/fleet"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/workload"
)

// TestServePushReportShutdown boots the real service on :0, pushes a
// frame, reads the report and health endpoints, then delivers SIGTERM
// and requires a clean exit with the final stats line.
func TestServePushReportShutdown(t *testing.T) {
	scen, err := workload.BuildScenario("popmerge-test", 600, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewClassifier(core.DefaultConfig())
	agg := analysis.NewFleetAggs()
	n := int64(0)
	for _, c := range scen.Run(0) {
		rec := analysis.NewRecord(c, scen.Geo, cl.Classify(c))
		agg.Add(&rec)
		n++
	}
	want := analysis.RenderFleetReport(agg)
	frame, err := fleet.EncodeSnapshot("ams01", 0, 0, agg, pipeline.Counts{Decoded: n, Classified: n})
	if err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan string, 1)
	old := testHookServing
	testHookServing = func(addr string) { addrCh <- addr }
	defer func() { testHookServing = old }()

	errFile, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	exitCh := make(chan int, 1)
	go func() { exitCh <- run([]string{"-addr", "127.0.0.1:0", "-quorum", "2"}, errFile) }()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/push", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	pushBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(pushBody), "accepted") {
		t.Fatalf("push: %d %s", resp.StatusCode, pushBody)
	}

	for _, path := range []string{"/report", "/v1/status", "/healthz", "/metrics", "/debug/tracez"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		if path == "/report" && string(body) != want {
			t.Errorf("/report diverges from the single-process render")
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitCh:
		if code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no graceful shutdown after SIGTERM")
	}
	errFile.Seek(0, io.SeekStart)
	out, _ := io.ReadAll(errFile)
	if !strings.Contains(string(out), "accepted=1") {
		t.Errorf("final stats line missing: %s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if code := run([]string{"-late", "nonsense"}, null); code != 2 {
		t.Errorf("bad -late exit = %d, want 2", code)
	}
	if code := run([]string{"stray"}, null); code != 2 {
		t.Errorf("stray arg exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:bad"}, null); code != 2 {
		t.Errorf("bad addr exit = %d, want 2", code)
	}
}
