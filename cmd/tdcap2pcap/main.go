// Command tdcap2pcap exports a TDCAP capture to a libpcap file
// (LINKTYPE_RAW) so the sampled inbound packets can be inspected with
// Wireshark or tcpdump. Packets are re-serialized from the recorded
// header fields; payloads are the captured (possibly truncated)
// prefixes, so TCP checksums are recomputed over what is present.
//
// The export is faithful but not byte-identical to the original wire
// traffic: payloads beyond the capture's per-packet cap are absent,
// TCP options are not recorded, and packets are emitted in
// reconstructed (not necessarily exact) arrival order. Re-ingesting
// the pcap with tamperscan reproduces classification within a few
// percent.
//
// Usage:
//
//	tdcap2pcap [-progress interval] capture.tdcap out.pcap
//
// -progress prints a one-line packets/connections snapshot to stderr
// on the given interval while the export runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"tamperdetect"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/pcap"
	"tamperdetect/internal/telemetry"
)

// minTimestamp finds the earliest record timestamp for rebasing.
func minTimestamp(conns []*tamperdetect.Connection) int64 {
	min := int64(0)
	found := false
	for _, c := range conns {
		for i := range c.Packets {
			if !found || c.Packets[i].Timestamp < min {
				min = c.Packets[i].Timestamp
				found = true
			}
		}
	}
	return min
}

func main() {
	progress := flag.Duration("progress", 0, "print a progress line to stderr on this interval (0 = off)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tdcap2pcap [-progress interval] capture.tdcap out.pcap")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *progress); err != nil {
		fmt.Fprintln(os.Stderr, "tdcap2pcap:", err)
		os.Exit(1)
	}
}

func run(in, out string, progress time.Duration) error {
	conns, err := tamperdetect.ReadCaptureFile(in)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := pcap.NewWriter(f, 0)
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	var packets, exported atomic.Int64
	if progress > 0 {
		rep := telemetry.StartReporter(os.Stderr, progress, func() string {
			return fmt.Sprintf("tdcap2pcap: progress connections=%d/%d packets=%d",
				exported.Load(), len(conns), packets.Load())
		})
		defer rep.Stop()
	}
	base := minTimestamp(conns)
	for _, conn := range conns {
		// Export in reconstructed (likely arrival) order: the TDCAP log
		// order may be shuffled within seconds (§3.2), and downstream
		// consumers — including re-ingestion through the sampler —
		// expect wire order. Within a second, spread packets by 1 µs so
		// Wireshark shows the sequence.
		recs := tamperdetect.Reconstruct(conn)
		for i := range recs {
			rec := &recs[i]
			tcp := packet.TCP{
				SrcPort: conn.SrcPort, DstPort: conn.DstPort,
				Seq: rec.Seq, Ack: rec.Ack,
				Flags: rec.Flags, Window: rec.Window,
			}
			var err error
			if conn.IPVersion == 6 {
				ip := packet.IPv6{
					NextHeader: 6, HopLimit: rec.TTL,
					SrcIP: conn.SrcIP, DstIP: conn.DstIP,
				}
				tcp.SetNetworkLayerForChecksum(&ip)
				err = packet.SerializeLayers(buf, opts, &ip, &tcp, packet.Payload(rec.Payload))
			} else {
				ip := packet.IPv4{
					TTL: rec.TTL, ID: rec.IPID, Protocol: 6,
					SrcIP: conn.SrcIP, DstIP: conn.DstIP,
				}
				tcp.SetNetworkLayerForChecksum(&ip)
				err = packet.SerializeLayers(buf, opts, &ip, &tcp, packet.Payload(rec.Payload))
			}
			if err != nil {
				return fmt.Errorf("serializing packet: %w", err)
			}
			if err := w.Write((rec.Timestamp-base)*1e9+int64(i)*1000, buf.Bytes()); err != nil {
				return err
			}
			packets.Add(1)
		}
		exported.Add(1)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets from %d connections to %s\n", packets.Load(), len(conns), out)
	return nil
}
