// Command tdcap2pcap exports a TDCAP capture to a libpcap file
// (LINKTYPE_RAW) so the sampled inbound packets can be inspected with
// Wireshark or tcpdump. Packets are re-serialized from the recorded
// header fields; payloads are the captured (possibly truncated)
// prefixes, so TCP checksums are recomputed over what is present.
//
// The export is faithful but not byte-identical to the original wire
// traffic: payloads beyond the capture's per-packet cap are absent,
// TCP options are not recorded, and packets are emitted in
// reconstructed (not necessarily exact) arrival order. Re-ingesting
// the pcap with tamperscan reproduces classification within a few
// percent.
//
// Usage:
//
//	tdcap2pcap [-progress interval] capture.tdcap out.pcap
//	tdcap2pcap -scan-only capture.tdcap
//
// -progress logs a packets/connections snapshot on the given interval
// while the export runs; all stderr output goes through the shared
// structured logger (-log-format text|json). -scan-only skips the
// pcap export and just validates the capture with the raw-record
// scanner, printing the record and byte counts — a fast structural
// integrity check for large captures.
//
// SIGINT/SIGTERM stop either mode gracefully: the export flushes a
// valid pcap of the packets written so far (the scan reports how far
// it got) and the process exits 1 with an "interrupted" message naming
// the partial output.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"tamperdetect"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/logx"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/pcap"
	"tamperdetect/internal/telemetry"
)

// logger is the process-wide structured logger; main replaces it once
// -log-format is parsed.
var logger = slog.Default()

// minTimestamp finds the earliest record timestamp for rebasing.
func minTimestamp(conns []*tamperdetect.Connection) int64 {
	min := int64(0)
	found := false
	for _, c := range conns {
		for i := range c.Packets {
			if !found || c.Packets[i].Timestamp < min {
				min = c.Packets[i].Timestamp
				found = true
			}
		}
	}
	return min
}

func main() {
	progress := flag.Duration("progress", 0, "print a progress line to stderr on this interval (0 = off)")
	scanOnly := flag.Bool("scan-only", false, "validate the capture's structure with the raw-record scanner; no pcap is written")
	logFormat := flag.String("log-format", logx.FormatText, "structured log format on stderr: text or json")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tdcap2pcap [-progress interval] capture.tdcap out.pcap")
		fmt.Fprintln(os.Stderr, "       tdcap2pcap -scan-only capture.tdcap")
		flag.PrintDefaults()
	}
	flag.Parse()
	log, err := logx.New(os.Stderr, *logFormat, logx.NewRunID(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdcap2pcap:", err)
		os.Exit(2)
	}
	logger = log
	ctx, stopSig := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSig()
	if *scanOnly {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		if err := scanOnlyRun(ctx, flag.Arg(0)); err != nil {
			logger.Error("scan failed", "err", err.Error())
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(ctx, flag.Arg(0), flag.Arg(1), *progress); err != nil {
		logger.Error("export failed", "err", err.Error())
		os.Exit(1)
	}
}

// scanOnlyRun walks the capture with capture.Scanner — boundary checks
// only, no field decode, no buffering of the whole file — and reports
// what it found. Any truncation or corruption fails with the record
// count reached, so the bad offset region is easy to locate.
func scanOnlyRun(ctx context.Context, in string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := capture.NewScanner(bufio.NewReaderSize(f, 1<<20))
	var slab []byte
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("interrupted after %d valid records (%d bytes)", sc.Count(), sc.BytesRead())
		default:
		}
		next, err := sc.Next(slab[:0])
		slab = next
		if err == io.EOF {
			fmt.Printf("%s: %d records, %d bytes, structure OK\n", in, sc.Count(), sc.BytesRead())
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: damaged after %d valid records (%d bytes): %w",
				in, sc.Count(), sc.BytesRead(), err)
		}
	}
}

func run(ctx context.Context, in, out string, progress time.Duration) error {
	conns, err := tamperdetect.ReadCaptureFile(in)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := pcap.NewWriter(f, 0)
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	var packets, exported atomic.Int64
	if progress > 0 {
		total := len(conns)
		rep := telemetry.StartReporterFunc(progress, func() {
			logger.Info("progress",
				"connections", exported.Load(), "total", total, "packets", packets.Load())
		})
		defer rep.Stop()
	}
	base := minTimestamp(conns)
	interrupted := false
	for _, conn := range conns {
		// A signal mid-export flushes what has been written: every
		// packet emitted so far is complete, so the truncated pcap stays
		// structurally valid.
		select {
		case <-ctx.Done():
			interrupted = true
		default:
		}
		if interrupted {
			break
		}
		// Export in reconstructed (likely arrival) order: the TDCAP log
		// order may be shuffled within seconds (§3.2), and downstream
		// consumers — including re-ingestion through the sampler —
		// expect wire order. Within a second, spread packets by 1 µs so
		// Wireshark shows the sequence.
		recs := tamperdetect.Reconstruct(conn)
		for i := range recs {
			rec := &recs[i]
			tcp := packet.TCP{
				SrcPort: conn.SrcPort, DstPort: conn.DstPort,
				Seq: rec.Seq, Ack: rec.Ack,
				Flags: rec.Flags, Window: rec.Window,
			}
			var err error
			if conn.IPVersion == 6 {
				ip := packet.IPv6{
					NextHeader: 6, HopLimit: rec.TTL,
					SrcIP: conn.SrcIP, DstIP: conn.DstIP,
				}
				tcp.SetNetworkLayerForChecksum(&ip)
				err = packet.SerializeLayers(buf, opts, &ip, &tcp, packet.Payload(rec.Payload))
			} else {
				ip := packet.IPv4{
					TTL: rec.TTL, ID: rec.IPID, Protocol: 6,
					SrcIP: conn.SrcIP, DstIP: conn.DstIP,
				}
				tcp.SetNetworkLayerForChecksum(&ip)
				err = packet.SerializeLayers(buf, opts, &ip, &tcp, packet.Payload(rec.Payload))
			}
			if err != nil {
				return fmt.Errorf("serializing packet: %w", err)
			}
			if err := w.Write((rec.Timestamp-base)*1e9+int64(i)*1000, buf.Bytes()); err != nil {
				return err
			}
			packets.Add(1)
		}
		exported.Add(1)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets from %d connections to %s\n", packets.Load(), exported.Load(), out)
	if interrupted {
		return fmt.Errorf("interrupted: %s is a valid pcap of the %d connections exported before the signal (of %d)",
			out, exported.Load(), len(conns))
	}
	return nil
}
