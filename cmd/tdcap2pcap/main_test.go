package main

import (
	"context"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tamperdetect"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/pcap"
)

func TestExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.tdcap")
	out := filepath.Join(dir, "out.pcap")
	conns := []*tamperdetect.Connection{{
		SrcIP: netip.MustParseAddr("20.0.0.2"), DstIP: netip.MustParseAddr("192.0.2.80"),
		SrcPort: 41000, DstPort: 443, IPVersion: 4,
		TotalPackets: 3, LastActivity: 100, CloseTime: 130,
		Packets: []tamperdetect.PacketRecord{
			// Deliberately logged out of order: the exporter must emit
			// reconstructed order (SYN first).
			{Timestamp: 100, Flags: packet.FlagsPSHACK, Seq: 101, PayloadLen: 5, Payload: []byte("hello"), TTL: 50, IPID: 3},
			{Timestamp: 100, Flags: packet.FlagsSYN, Seq: 100, TTL: 50, IPID: 2, HasOptions: true},
		},
	}}
	if err := tamperdetect.WriteCaptureFile(in, conns); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), in, out, time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("pcap packets = %d, want 2", len(pkts))
	}
	// First exported packet must be the SYN (reconstructed order), and
	// it must parse back with identical header fields.
	p := packet.NewSummaryParser()
	var s packet.Summary
	if err := p.Parse(pkts[0].Data, &s); err != nil {
		t.Fatal(err)
	}
	if !s.Flags.Has(packet.FlagSYN) || s.Seq != 100 || s.TTL != 50 {
		t.Errorf("first packet = %+v, want the SYN", s)
	}
	if err := p.Parse(pkts[1].Data, &s); err != nil {
		t.Fatal(err)
	}
	if string(s.Payload) != "hello" {
		t.Errorf("payload = %q", s.Payload)
	}
	// Checksums must verify after re-serialization.
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(pkts[1].Data); err != nil {
		t.Fatal(err)
	}
	seg := append([]byte(nil), ip.LayerPayload()...)
	if !packet.VerifyChecksum(ip.SrcIP, ip.DstIP, seg) {
		t.Error("exported TCP checksum does not verify")
	}
}

func TestExportMissingInput(t *testing.T) {
	if err := run(context.Background(), "/nonexistent.tdcap", filepath.Join(t.TempDir(), "o.pcap"), 0); err == nil {
		t.Error("missing input accepted")
	}
}

func TestScanOnly(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.tdcap")
	conns := []*tamperdetect.Connection{{
		SrcIP: netip.MustParseAddr("20.0.0.2"), DstIP: netip.MustParseAddr("192.0.2.80"),
		SrcPort: 41000, DstPort: 443, IPVersion: 4,
		TotalPackets: 1, LastActivity: 1, CloseTime: 2,
		Packets: []tamperdetect.PacketRecord{
			{Timestamp: 1, Flags: packet.FlagsSYN, Seq: 100, TTL: 50},
		},
	}}
	if err := tamperdetect.WriteCaptureFile(in, conns); err != nil {
		t.Fatal(err)
	}
	if err := scanOnlyRun(context.Background(), in); err != nil {
		t.Fatalf("scanOnlyRun on a valid capture: %v", err)
	}
	// Truncate the tail: scan-only must fail, naming the damage.
	data, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.tdcap")
	if err := os.WriteFile(bad, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := scanOnlyRun(context.Background(), bad); err == nil {
		t.Error("scanOnlyRun accepted a truncated capture")
	}
	if err := scanOnlyRun(context.Background(), filepath.Join(dir, "missing.tdcap")); err == nil {
		t.Error("scanOnlyRun accepted a missing file")
	}
}

// TestRunInterrupted: a cancelled context (the signal path) still
// flushes a readable pcap and reports the interruption.
func TestRunInterrupted(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.tdcap")
	out := filepath.Join(dir, "out.pcap")
	conns := []*tamperdetect.Connection{{
		SrcIP: netip.MustParseAddr("20.0.0.2"), DstIP: netip.MustParseAddr("192.0.2.80"),
		SrcPort: 41000, DstPort: 443, IPVersion: 4,
		TotalPackets: 1, LastActivity: 1, CloseTime: 2,
		Packets: []tamperdetect.PacketRecord{
			{Timestamp: 1, Flags: packet.FlagsSYN, Seq: 100, TTL: 50, IPID: 2},
		},
	}}
	if err := tamperdetect.WriteCaptureFile(in, conns); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, in, out, 0)
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want an interrupted message", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := pcap.NewReader(f); err != nil {
		t.Fatalf("partial pcap unreadable: %v", err)
	}
}
