package main

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"tamperdetect"
	"tamperdetect/internal/analysis"
	"tamperdetect/internal/fleet"
	"tamperdetect/internal/pipeline"
)

// testMergerServer boots a merger behind an httptest server and
// returns both.
func testMergerServer(t *testing.T) (*fleet.Merger, *httptest.Server) {
	t.Helper()
	m, err := fleet.NewMerger(fleet.MergerConfig{Fresh: analysis.NewFleetAggs})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	for pat, h := range m.Handler() {
		mux.Handle(pat, h)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return m, srv
}

// fastPush shrinks the pusher's backoff for the duration of a test so
// retry exhaustion against a dead merger takes milliseconds.
func fastPush(t *testing.T) {
	t.Helper()
	old := testHookPusherConfig
	testHookPusherConfig = func(c *fleet.PusherConfig) {
		c.BaseBackoff = time.Millisecond
		c.MaxBackoff = 4 * time.Millisecond
		c.MaxAttempts = 2
		c.Timeout = 2 * time.Second
	}
	t.Cleanup(func() { testHookPusherConfig = old })
}

// TestRunPush: a -push scan delivers its snapshot to a live merger and
// the merger's counts match the scan.
func TestRunPush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, sampleConns()); err != nil {
		t.Fatal(err)
	}
	m, srv := testMergerServer(t)
	err := run(path, options{workers: 2, pushURL: srv.URL, pop: "test01"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st := m.Stats(); st.Accepted != 1 {
		t.Errorf("merger accepted %d frames, want 1", st.Accepted)
	}
	status := m.Status()
	if status.Counts.Delivered != int64(len(sampleConns())) {
		t.Errorf("merged Delivered = %d, want %d", status.Counts.Delivered, len(sampleConns()))
	}
	if len(status.PoPs) != 1 || status.PoPs[0].PoP != "test01" {
		t.Errorf("PoPs = %+v, want the named vantage", status.PoPs)
	}
}

// TestRunPushSpillAndResume: a scan against a dead merger spills its
// frame; the next scan resumes it into a live merger alongside its own.
func TestRunPushSpillAndResume(t *testing.T) {
	fastPush(t)
	path := filepath.Join(t.TempDir(), "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, sampleConns()); err != nil {
		t.Fatal(err)
	}
	spill := t.TempDir()

	// Phase 1: nothing listens on the push URL; the frame must land on
	// disk and the scan itself must still succeed.
	if err := run(path, options{workers: 1, pushURL: "http://127.0.0.1:1", pop: "test01", pushSpill: spill}); err != nil {
		t.Fatalf("run against dead merger: %v", err)
	}
	files, err := os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("spill dir holds %d files, want 1", len(files))
	}

	// Phase 2: live merger; the resumed frame and the new scan's frame
	// both arrive, and the spill dir empties.
	m, srv := testMergerServer(t)
	if err := run(path, options{workers: 1, pushURL: srv.URL, pop: "test01", pushSpill: spill}); err != nil {
		t.Fatalf("run with resume: %v", err)
	}
	if st := m.Stats(); st.Accepted != 2 {
		t.Errorf("merger accepted %d frames, want 2 (resumed + fresh)", st.Accepted)
	}
	files, err = os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("%d spill files left after resume", len(files))
	}
}

// TestRunSignalPartial: SIGTERM mid-scan drains the pipeline, prints
// the partial report, and surfaces the partial-results error (exit 3),
// with the already-scanned prefix still pushed to the merger.
func TestRunSignalPartial(t *testing.T) {
	m, srv := testMergerServer(t)

	// Feed the scan over a pipe that never reaches EOF: records go in,
	// then the scan blocks until the signal arrives.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	defer pw.Close()
	oldStdin := os.Stdin
	os.Stdin = pr
	defer func() { os.Stdin = oldStdin }()

	// Enough records to fill several pipeline batches: a mid-stream scan
	// only hands full batches to the workers, so the classified prefix
	// must span at least one.
	var conns []*tamperdetect.Connection
	for i := 0; i < 4*pipeline.DefaultBatchSize; i++ {
		conns = append(conns, sampleConns()...)
	}
	capPath := filepath.Join(t.TempDir(), "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(capPath, conns); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(capPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(raw); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- run("-", options{workers: 1, pushURL: srv.URL, pop: "sig01"}) }()

	// Give the pipeline time to classify the prefix, then interrupt.
	time.Sleep(500 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scan did not stop after SIGTERM")
	}
	var pe *partialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *partialError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to wrap context.Canceled", err)
	}
	if st := m.Stats(); st.Accepted != 1 {
		t.Errorf("merger accepted %d frames after interrupt, want 1", st.Accepted)
	}
}
