package main

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"tamperdetect"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/pcap"
	"tamperdetect/internal/pipeline"
)

func sampleConns() []*tamperdetect.Connection {
	return []*tamperdetect.Connection{{
		SrcIP: netip.MustParseAddr("20.0.0.1"), DstIP: netip.MustParseAddr("192.0.2.80"),
		SrcPort: 40000, DstPort: 443, IPVersion: 4,
		TotalPackets: 3, LastActivity: 1, CloseTime: 30,
		Packets: []tamperdetect.PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, TTL: 54, IPID: 1, HasOptions: true},
			{Timestamp: 0, Flags: packet.FlagsACK, Seq: 101, TTL: 54, IPID: 2},
			{Timestamp: 1, Flags: packet.FlagsRSTACK, Seq: 101, Ack: 7, TTL: 200, IPID: 50000},
		},
	}}
}

// drainSource collects a streaming source, failing on any non-EOF
// error. TDCAP paths come back from openSource as a raw reader for
// the parallel scan pipeline; wrap those in a ReaderSource so either
// format drains the same way.
func drainSource(t *testing.T, path string) []*tamperdetect.Connection {
	t.Helper()
	src, tdcap, _, cleanup, err := openSource(path)
	if err != nil {
		t.Fatalf("openSource: %v", err)
	}
	defer cleanup()
	if tdcap != nil {
		src = pipeline.NewReaderSource(tdcap)
	}
	var conns []*tamperdetect.Connection
	for {
		c, err := src.Next()
		if err == io.EOF {
			return conns
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		conns = append(conns, c)
	}
}

func TestOpenSourceTDCAP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, sampleConns()); err != nil {
		t.Fatal(err)
	}
	conns := drainSource(t, path)
	if len(conns) != 1 || len(conns[0].Packets) != 3 {
		t.Errorf("loaded %d conns", len(conns))
	}
}

func TestLoadCapturePcap(t *testing.T) {
	// Build a raw-IP pcap with one inbound flow plus an outbound packet
	// that the sampler must ignore.
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, 0)
	mk := func(src, dst string, sport, dport uint16, flags packet.TCPFlags, seq uint32) []byte {
		ip := packet.IPv4{TTL: 60, ID: 9, Protocol: 6,
			SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst)}
		tcp := packet.TCP{SrcPort: sport, DstPort: dport, Seq: seq, Flags: flags, Window: 1000}
		tcp.SetNetworkLayerForChecksum(&ip)
		sb := packet.NewSerializeBuffer()
		if err := packet.SerializeLayers(sb, packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}, &ip, &tcp); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, sb.Len())
		copy(out, sb.Bytes())
		return out
	}
	if err := w.Write(0, mk("20.0.0.5", "192.0.2.80", 40000, 443, packet.FlagsSYN, 100)); err != nil {
		t.Fatal(err)
	}
	// Outbound SYN+ACK: ignored by the inbound-only sampler.
	if err := w.Write(1e6, mk("192.0.2.80", "20.0.0.5", 443, 40000, packet.FlagsSYNACK, 900)); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(2e6, mk("20.0.0.5", "192.0.2.80", 40000, 443, packet.FlagsACK, 101)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.pcap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	conns := drainSource(t, path)
	if len(conns) != 1 {
		t.Fatalf("conns = %d, want 1", len(conns))
	}
	if conns[0].TotalPackets != 2 {
		t.Errorf("inbound packets = %d, want 2 (SYN+ACK excluded)", conns[0].TotalPackets)
	}
}

func TestOpenSourceErrors(t *testing.T) {
	if _, _, _, _, err := openSource("/nonexistent"); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("neither format at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := openSource(path); err == nil {
		t.Error("junk file accepted")
	}
}

func TestRunReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, sampleConns()); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		if err := run(path, options{verbose: true, tamperedOnly: true, workers: workers}); err != nil {
			t.Fatalf("run(workers=%d): %v", workers, err)
		}
	}
	// Both matcher engines and both decode paths must scan cleanly.
	if err := run(path, options{classifier: "legacy", workers: 2}); err != nil {
		t.Fatalf("run(-classifier legacy): %v", err)
	}
	if err := run(path, options{seqDecode: true, workers: 2}); err != nil {
		t.Fatalf("run(-seq-decode): %v", err)
	}
	if err := run(path, options{classifier: "nonsense"}); err == nil {
		t.Fatal("run accepted an unknown -classifier")
	}
}

func TestRunPartialOnCorruptTail(t *testing.T) {
	// A good record followed by a corrupt tail must still produce a
	// report, and the error must be the partial-results kind so main
	// exits 3 rather than 1.
	path := filepath.Join(t.TempDir(), "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, sampleConns()); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// 0xC0 is the connection-record marker; 0x07 is an invalid IP
	// version byte, so decoding fails right after the good prefix.
	bad := append(append([]byte(nil), good...), 0xC0, 0x07)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(path, options{workers: 1})
	if err == nil {
		t.Fatal("corrupt tail scanned without error")
	}
	var pe *partialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *partialError", err, err)
	}

	// A capture that is corrupt from the first record has no partial
	// results to report: plain error, exit 1.
	allBad := filepath.Join(t.TempDir(), "bad.tdcap")
	if err := os.WriteFile(allBad, append(good[:8:8], 0xC0, 0x07), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(allBad, options{workers: 1})
	if err == nil {
		t.Fatal("fully corrupt capture scanned without error")
	}
	if errors.As(err, &pe) {
		t.Fatalf("err = %v is partial, want plain error when nothing was scanned", err)
	}
}
