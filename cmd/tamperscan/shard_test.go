package main

// End-to-end tests for the sharded ingest wiring: auto-detection of
// indexed captures, report parity with the single-scanner path, and —
// the correctness contract — that a missing, damaged, stale, or lying
// index degrades to the single-scanner scan with a warning, never to
// wrong output.

import (
	"bytes"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tamperdetect"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/packet"
)

// manyConns builds a capture worth sharding: n connections with a mix
// of clean and tampered flows.
func manyConns(n int) []*tamperdetect.Connection {
	out := make([]*tamperdetect.Connection, n)
	for i := range out {
		c := &tamperdetect.Connection{
			SrcIP:   netip.AddrFrom4([4]byte{20, byte(i >> 16), byte(i >> 8), byte(i)}),
			DstIP:   netip.MustParseAddr("192.0.2.80"),
			SrcPort: uint16(30000 + i%30000), DstPort: 443, IPVersion: 4,
			TotalPackets: 2, LastActivity: 1, CloseTime: 30,
			Packets: []tamperdetect.PacketRecord{
				{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, TTL: 54, IPID: 1, HasOptions: true},
				{Timestamp: 1, Flags: packet.FlagsACK, Seq: 101, TTL: 54, IPID: 2},
			},
		}
		if i%5 == 0 {
			c.Packets = append(c.Packets, tamperdetect.PacketRecord{
				Timestamp: 1, Flags: packet.FlagsRSTACK, Seq: 101, Ack: 7, TTL: 200, IPID: 50000,
			})
			c.TotalPackets = 3
		}
		out[i] = c
	}
	return out
}

// writeIndexed writes conns as an indexed capture file.
func writeIndexed(t *testing.T, path string, conns []*tamperdetect.Connection, interval int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := capture.NewWriter(f)
	if err := w.EnableIndex(interval); err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// capturedRun invokes run with stdout and stderr captured.
func capturedRun(t *testing.T, path string, opts options) (stdout, stderr string, err error) {
	t.Helper()
	grab := func(f **os.File) (*os.File, func() string) {
		old := *f
		pr, pw, perr := os.Pipe()
		if perr != nil {
			t.Fatal(perr)
		}
		*f = pw
		ch := make(chan string, 1)
		go func() {
			var buf bytes.Buffer
			io.Copy(&buf, pr)
			ch <- buf.String()
		}()
		return old, func() string {
			pw.Close()
			*f = old
			return <-ch
		}
	}
	_, outDone := grab(&os.Stdout)
	_, errDone := grab(&os.Stderr)
	err = run(path, opts)
	return outDone(), errDone(), err
}

// TestRunShardedParity: the sharded scan of an indexed capture must
// print the byte-identical report of the forced single-scanner scan,
// at explicit shard counts and in auto mode.
func TestRunShardedParity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tdcap")
	conns := manyConns(3000)
	writeIndexed(t, path, conns, 16)

	single, _, err := capturedRun(t, path, options{shards: 1, workers: 2})
	if err != nil {
		t.Fatalf("single-scanner run: %v", err)
	}
	if !strings.Contains(single, "connections:       3000") {
		t.Fatalf("single-scanner report did not cover the capture:\n%s", single)
	}
	for _, shards := range []int{0, 2, 4} {
		got, stderr, err := capturedRun(t, path, options{shards: shards, workers: 2})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got != single {
			t.Errorf("shards=%d: report differs from single-scanner output\n--- sharded\n%s--- single\n%s", shards, got, single)
		}
		if strings.Contains(stderr, "WARN") {
			t.Errorf("shards=%d: unexpected warning:\n%s", shards, stderr)
		}
	}
}

// TestRunShardedFallsBackWithoutIndex: -shards on an unindexed capture
// warns and scans single-threaded; the report is still complete.
func TestRunShardedFallsBackWithoutIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.tdcap")
	conns := manyConns(200)
	if err := tamperdetect.WriteCaptureFile(path, conns); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := capturedRun(t, path, options{shards: 4, workers: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr, "no segment index") {
		t.Errorf("no fallback warning on stderr:\n%s", stderr)
	}
	if !strings.Contains(stdout, "connections:       200") {
		t.Errorf("fallback scan incomplete:\n%s", stdout)
	}
	// Auto mode on an unindexed capture is the mundane case: silent.
	_, stderr, err = capturedRun(t, path, options{workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stderr, "WARN") {
		t.Errorf("auto mode warned about a plain capture:\n%s", stderr)
	}
}

// TestRunShardedFallsBackOnDamagedSidecar: a corrupt sidecar index is
// reported and ignored; the scan completes single-threaded.
func TestRunShardedFallsBackOnDamagedSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tdcap")
	conns := manyConns(200)
	if err := tamperdetect.WriteCaptureFile(path, conns); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(capture.SidecarPath(path), []byte("TDXSDC01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := capturedRun(t, path, options{shards: 4, workers: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr, "WARN") || !strings.Contains(stderr, "single-threaded") {
		t.Errorf("damaged sidecar did not warn:\n%s", stderr)
	}
	if !strings.Contains(stdout, "connections:       200") {
		t.Errorf("fallback scan incomplete:\n%s", stdout)
	}
}

// TestRunShardedRescanOnLyingIndex is the strongest fallback contract:
// a checksum-valid sidecar that undercounts records passes every load
// check and only betrays itself at a seam mid-run. The sharded results
// must be discarded and the whole capture rescanned single-threaded —
// the final report identical to a never-sharded run.
func TestRunShardedRescanOnLyingIndex(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tdcap")
	conns := manyConns(400)
	if err := tamperdetect.WriteCaptureFile(path, conns); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := capture.BuildIndex(bytes.NewReader(data), 1)
	if err != nil {
		t.Fatal(err)
	}
	idx.Offsets = idx.Offsets[:len(idx.Offsets)-1]
	idx.Records--
	idx.FileSize = int64(len(data))
	if err := os.WriteFile(capture.SidecarPath(path), capture.EncodeSidecar(idx), 0o644); err != nil {
		t.Fatal(err)
	}

	single, _, err := capturedRun(t, path, options{shards: 1, workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := capturedRun(t, path, options{shards: 4, workers: 2})
	if err != nil {
		t.Fatalf("run over lying index: %v", err)
	}
	if !strings.Contains(stderr, "rescanning single-threaded") {
		t.Errorf("mid-run index betrayal did not trigger the rescan warning:\n%s", stderr)
	}
	// The report must be the complete 400-connection one, not the
	// 399 records the lying index admitted to.
	if !strings.Contains(stdout, "connections:       400") || stdout != single {
		t.Errorf("rescan report differs from the single-scanner report:\n--- rescan\n%s--- single\n%s", stdout, single)
	}
}

// A seam shifted into the middle of a record passes the sidecar's
// upfront validation (counts and file size stay honest) and can slip
// past boundary re-validation, surfacing downstream as a generic
// decode error instead of ErrBadIndex. Any sharded scan error must
// distrust the index and rescan — otherwise the lie becomes a wrong
// partial report.
func TestRunShardedRescanOnMidRecordSeam(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tdcap")
	conns := manyConns(400)
	if err := tamperdetect.WriteCaptureFile(path, conns); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Interval 100 over 400 records yields exactly 4 index points, so
	// a 4-shard placement must use every point as a seam — including
	// the shifted one.
	idx, err := capture.BuildIndex(bytes.NewReader(data), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Offsets) != 4 {
		t.Fatalf("want 4 index points, got %d", len(idx.Offsets))
	}
	idx.Offsets[2] += 7
	idx.FileSize = int64(len(data))
	if err := os.WriteFile(capture.SidecarPath(path), capture.EncodeSidecar(idx), 0o644); err != nil {
		t.Fatal(err)
	}

	single, _, err := capturedRun(t, path, options{shards: 1, workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := capturedRun(t, path, options{shards: 4, workers: 2})
	if err != nil {
		t.Fatalf("run over mid-record seam: %v", err)
	}
	if !strings.Contains(stderr, "rescanning single-threaded") {
		t.Errorf("mid-record seam did not trigger the rescan warning:\n%s", stderr)
	}
	if !strings.Contains(stdout, "connections:       400") || stdout != single {
		t.Errorf("rescan report differs from the single-scanner report:\n--- rescan\n%s--- single\n%s", stdout, single)
	}
}
