package main

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"tamperdetect"
	"tamperdetect/internal/telemetry"
)

// TestMetricsAddrServesExposition is the scripts/check.sh metrics
// gate: run tamperscan with -metrics-addr on a fixture capture, scrape
// /metrics and /healthz through the test hook (which fires after the
// scan completes, before the server shuts down), fail on unparseable
// exposition or non-200 health, and verify server shutdown leaks no
// goroutines.
func TestMetricsAddrServesExposition(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	path := filepath.Join(t.TempDir(), "x.tdcap")
	var conns []*tamperdetect.Connection
	for i := 0; i < 40; i++ {
		conns = append(conns, sampleConns()...)
	}
	if err := tamperdetect.WriteCaptureFile(path, conns); err != nil {
		t.Fatal(err)
	}

	scrape := func(url string) (int, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return resp.StatusCode, string(body)
	}

	var scraped bool
	testHookBeforeMetricsShutdown = func(addr string) {
		scraped = true
		base := "http://" + addr

		status, body := scrape(base + "/healthz")
		if status != http.StatusOK {
			t.Errorf("/healthz status = %d, want 200 (body %q)", status, body)
		}
		if !strings.Contains(body, `"status"`) || !strings.Contains(body, "ok") {
			t.Errorf("/healthz body = %q", body)
		}

		status, body = scrape(base + "/metrics")
		if status != http.StatusOK {
			t.Fatalf("/metrics status = %d", status)
		}
		if err := telemetry.ValidateExposition(strings.NewReader(body)); err != nil {
			t.Fatalf("/metrics exposition invalid: %v\n%s", err, body)
		}
		// The acceptance surface: stage latency histograms, queue-depth
		// gauge, per-signature counters, capture throughput.
		for _, want := range []string{
			`tamperdetect_pipeline_stage_latency_ns_bucket{stage="classify",le="+Inf"}`,
			`tamperdetect_pipeline_stage_latency_ns_bucket{stage="decode",le="+Inf"}`,
			`tamperdetect_pipeline_queue_depth_records{queue="decoded"}`,
			`tamperdetect_pipeline_signature_total`,
			`tamperdetect_capture_bytes_total`,
			fmt.Sprintf(`tamperdetect_pipeline_records_total{stage="classified"} %d`, len(conns)),
		} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}

		if status, body = scrape(base + "/metrics.json"); status != http.StatusOK || !strings.Contains(body, "tamperdetect_pipeline_stage_latency_ns") {
			t.Errorf("/metrics.json status=%d body=%.120q", status, body)
		}
	}
	defer func() { testHookBeforeMetricsShutdown = nil }()

	if err := run(path, options{workers: 2, metricsAddr: "127.0.0.1:0"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !scraped {
		t.Fatal("metrics server never came up (test hook not invoked)")
	}

	// Goroutine-leak check for server shutdown: the serve goroutine and
	// the HTTP client's transport goroutines must settle away.
	deadline := time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= goroutinesBefore {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after metrics server shutdown: before=%d after=%d\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProgressReporter: -progress emits at least the final snapshot
// line even for a scan shorter than the interval.
func TestProgressReporter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, sampleConns()); err != nil {
		t.Fatal(err)
	}
	// The reporter writes to os.Stderr, which a test cannot trivially
	// capture without races; this exercises the wiring end to end and
	// relies on the telemetry package's reporter tests for content.
	if err := run(path, options{workers: 1, progress: time.Hour}); err != nil {
		t.Fatalf("run with -progress: %v", err)
	}
}
