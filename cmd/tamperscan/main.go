// Command tamperscan classifies a capture file against the 19
// tampering signatures and prints a report: the signature histogram,
// stage breakdown, per-signature evidence summaries, and (with -v)
// per-connection verdicts.
//
// Input may be a TDCAP connection capture (written by trafficgen) or a
// classic libpcap file (LINKTYPE_RAW or Ethernet); the format is
// auto-detected. For pcap input, packets are run through the paper's
// sampling pipeline first (inbound-only flow records, 10-packet cap,
// 1-second timestamps).
//
// Either way the capture streams through the classification pipeline
// (internal/pipeline): connections are decoded incrementally, fanned
// across a classifier worker pool, and tallied into one report shard
// per worker; the shards merge when the stream drains. Arbitrarily
// large captures scan in bounded memory.
//
// Usage:
//
//	tamperscan [-v] [-tampered-only] [-workers N] [-shards N]
//	           [-classifier dfa|legacy] [-seq-decode]
//	           [-metrics-addr host:port] [-progress interval]
//	           capture.{tdcap,pcap}
//
// TDCAP input streams through the parallel decode pipeline: a scanner
// goroutine finds record boundaries and the worker pool decodes and
// classifies (-seq-decode restores single-goroutine decoding). The
// classifier is the compiled signature DFA by default; -classifier
// legacy selects the multi-pass reference matcher it is differentially
// tested against.
//
// When the capture is a seekable file with a segment index — a footer
// written by trafficgen, or a .tdx sidecar from tdcapindex — the scan
// shards into independent readers, one per index segment, removing the
// single-scanner bottleneck. -shards picks the shard count (0 = auto:
// one per worker when an index exists; 1 = force the single-scanner
// path). A missing, stale, or damaged index is never trusted: the scan
// warns and falls back to the single-scanner path, and if the index
// betrays its promises mid-run (a seam that is not a record boundary)
// the sharded results are discarded and the whole capture is rescanned
// single-threaded, so output never depends on index integrity.
//
// With -metrics-addr, an introspection HTTP server runs for the
// duration of the scan: /metrics (Prometheus text), /metrics.json,
// /healthz, /debug/vars, /debug/pprof/*, and /debug/tracez (recent
// spans, per-stage latency percentiles, slowest spans — see
// internal/telemetry and internal/trace). With -progress, a pipeline
// snapshot is logged on the given interval.
//
// Diagnostics are structured: every stderr line goes through log/slog
// (-log-format text|json) stamped with a per-run correlation ID, which
// doubles as the scan's root trace ID. -trace-profile FILE records the
// scan's spans and exports them as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto); -trace-sample N controls per-record
// span sampling (deterministic head sampling by record index, so the
// sampled set is reproducible across runs and -workers counts). A
// fixed-size flight recorder always runs, holding the last spans and
// warn-level events; on a signal interrupt or a sharded-scan rescan it
// dumps to stderr as JSON lines (and to -flight-out FILE when set) for
// post-mortem triage.
//
// With -push URL, the scan doubles as a fleet PoP: classified
// connections also feed the full fleet aggregator set, and per-epoch
// delta snapshots are pushed to a popmerge service (internal/fleet) —
// periodically on -push-interval, and always once at scan end. The
// push client retries with capped jittered backoff; -push-spill names
// a directory where undeliverable frames survive a merger outage and
// are resumed by the next -push run. -pop names this vantage (default
// the hostname).
//
// SIGINT/SIGTERM cancel the scan gracefully: the pipeline drains, the
// partial report prints, pending pushes flush, and the process exits 3
// (the partial-results code).
//
// Exit status: 0 on a clean scan, 1 on failure, 2 on usage errors, and
// 3 when the scan ended early — input truncated or corrupt partway
// through, or interrupted by a signal — with the report for the
// scanned prefix still printed.
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"tamperdetect"
	"tamperdetect/internal/analysis"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/logx"
	"tamperdetect/internal/netsim"
	"tamperdetect/internal/pcap"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/stats"
	"tamperdetect/internal/telemetry"
	"tamperdetect/internal/trace"
)

// options carries the command's flags into run.
type options struct {
	verbose      bool
	tamperedOnly bool
	workers      int
	shards       int           // 0 = auto (index-driven), 1 = force single-scanner
	metricsAddr  string        // "" = no metrics server
	progress     time.Duration // 0 = no progress lines
	classifier   string        // "dfa" (default) or "legacy"
	seqDecode    bool          // force the single-goroutine decode path
	pushURL      string        // "" = no fleet push
	pop          string        // PoP name for pushed snapshots
	pushInterval time.Duration // 0 = single epoch at scan end
	pushSpill    string        // "" = no spill directory
	logFormat    string        // "text" (default) or "json"
	traceProfile string        // "" = no Chrome trace export
	traceSample  int           // per-record span sampling interval; <0 = default
	flightOut    string        // "" = flight dumps go to stderr only
}

// matcherMode maps the -classifier flag to the engine selector.
func matcherMode(name string) (core.MatcherMode, error) {
	switch name {
	case "", "dfa":
		return core.MatcherDFA, nil
	case "legacy":
		return core.MatcherLegacy, nil
	}
	return 0, fmt.Errorf("unknown -classifier %q (want dfa or legacy)", name)
}

func main() {
	var opts options
	flag.BoolVar(&opts.verbose, "v", false, "print each connection's verdict")
	flag.BoolVar(&opts.tamperedOnly, "tampered-only", false, "with -v, print only tampered connections")
	flag.IntVar(&opts.workers, "workers", 0, "classifier parallelism (0 = all cores)")
	flag.IntVar(&opts.shards, "shards", 0, "independent scan shards over an indexed capture (0 = auto, 1 = single scanner)")
	flag.StringVar(&opts.metricsAddr, "metrics-addr", "", "serve /metrics, /healthz, /debug/pprof on this host:port for the scan's duration")
	flag.DurationVar(&opts.progress, "progress", 0, "print a one-line pipeline snapshot to stderr on this interval (e.g. 2s; 0 = off)")
	flag.StringVar(&opts.classifier, "classifier", "dfa", "signature matcher: dfa (compiled automaton) or legacy (multi-pass oracle)")
	flag.BoolVar(&opts.seqDecode, "seq-decode", false, "decode TDCAP records on a single goroutine instead of in the worker pool")
	flag.StringVar(&opts.pushURL, "push", "", "push per-epoch fleet snapshots to this popmerge base URL")
	flag.StringVar(&opts.pop, "pop", "", "PoP name stamped on pushed snapshots (default: hostname)")
	flag.DurationVar(&opts.pushInterval, "push-interval", 0, "push a delta snapshot on this interval (0 = one snapshot at scan end)")
	flag.StringVar(&opts.pushSpill, "push-spill", "", "spill undeliverable push frames to this directory and resume them next run")
	flag.StringVar(&opts.logFormat, "log-format", logx.FormatText, "structured log format on stderr: text or json")
	flag.StringVar(&opts.traceProfile, "trace-profile", "", "export the scan's spans as Chrome trace-event JSON to this file")
	flag.IntVar(&opts.traceSample, "trace-sample", trace.DefaultSampleEvery, "emit per-record spans for every Nth record (0 = batch spans only)")
	flag.StringVar(&opts.flightOut, "flight-out", "", "also write flight-recorder dumps to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: tamperscan [-v] [-tampered-only] [-workers N] [-shards N] [-classifier dfa|legacy] [-seq-decode] [-metrics-addr host:port] [-progress interval]
                  [-log-format text|json] [-trace-profile file] [-trace-sample N] [-flight-out file]
                  [-push URL [-pop name] [-push-interval D] [-push-spill dir]] capture.{tdcap,pcap}

exit status:
  0  clean scan
  1  failure (unreadable input, no records scanned)
  2  usage error
  3  scan ended early — input truncated or corrupt partway through, or
     interrupted by SIGINT/SIGTERM; the report for the scanned prefix
     was still printed
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), opts); err != nil {
		fmt.Fprintln(os.Stderr, "tamperscan:", err)
		// A truncated or corrupt capture that still yielded results
		// exits 3, distinct from total failure (1) and usage (2), so
		// callers can keep the partial report while noticing the damage.
		if errors.As(err, new(*partialError)) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// partialError marks a scan that ended mid-stream — damaged input or a
// signal — after producing a partial report.
type partialError struct{ err error }

func (e *partialError) Error() string {
	if errors.Is(e.err, context.Canceled) {
		return "interrupted (partial results above)"
	}
	return fmt.Sprintf("input damaged after %s (partial results above)", e.err)
}

func (e *partialError) Unwrap() error { return e.err }

// report accumulates the scan statistics. It implements
// analysis.Aggregator, so the pipeline feeds one shard per classifier
// worker through the Observe hook (no lock, no ordering requirement)
// and the shards merge into the printed report when the stream drains.
// The -v per-connection listing stays in the ordered sink, which is
// the only part of the output that needs decode order.
type report struct {
	total       int
	counts      [core.NumSignatures]int
	stages      [core.NumStages]int
	possibly    int
	evidenceBig map[tamperdetect.Signature]int
	evidenceAll map[tamperdetect.Signature]int
}

func newReport() analysis.Aggregator {
	return &report{
		evidenceBig: map[tamperdetect.Signature]int{},
		evidenceAll: map[tamperdetect.Signature]int{},
	}
}

// Add tallies one classified connection.
func (rep *report) Add(r *analysis.Record) {
	res := r.Res
	rep.total++
	rep.counts[res.Signature]++
	if res.PossiblyTampered {
		rep.possibly++
		rep.stages[res.Stage]++
	}
	if res.Signature.IsTampering() && res.Evidence.IPIDValid {
		rep.evidenceAll[res.Signature]++
		if res.Evidence.MaxIPIDDelta > 100 {
			rep.evidenceBig[res.Signature]++
		}
	}
}

// Merge folds another worker's shard into this one.
func (rep *report) Merge(other analysis.Aggregator) error {
	o, ok := other.(*report)
	if !ok {
		return fmt.Errorf("tamperscan: cannot merge %T into *report", other)
	}
	rep.total += o.total
	rep.possibly += o.possibly
	for s := range rep.counts {
		rep.counts[s] += o.counts[s]
	}
	for st := range rep.stages {
		rep.stages[st] += o.stages[st]
	}
	for s, n := range o.evidenceAll {
		rep.evidenceAll[s] += n
	}
	for s, n := range o.evidenceBig {
		rep.evidenceBig[s] += n
	}
	return nil
}

// Finalize returns the merged report itself.
func (rep *report) Finalize() any { return rep }

// verbosePrinter is the ordered pipeline sink behind -v: one line per
// connection, in decode order.
func verbosePrinter(tamperedOnly bool) pipeline.Sink {
	return func(it pipeline.Item) error {
		res := it.Res
		if tamperedOnly && !res.Signature.IsTampering() {
			return nil
		}
		domain := res.Domain
		if domain == "" {
			domain = "-"
		}
		fmt.Printf("%s:%d -> :%d  %-26s %-9s proto=%s domain=%s\n",
			it.Conn.SrcIP, it.Conn.SrcPort, it.Conn.DstPort,
			res.Signature, res.Stage, res.Protocol, domain)
		return nil
	}
}

func (rep *report) print() {
	fmt.Printf("connections:       %d\n", rep.total)
	fmt.Printf("possibly tampered: %d (%.1f%%)\n", rep.possibly,
		stats.Percent(stats.Ratio(rep.possibly, rep.total)))
	fmt.Println("\nsignature histogram:")
	type row struct {
		sig tamperdetect.Signature
		n   int
	}
	var rows []row
	for s := tamperdetect.Signature(0); s < core.NumSignatures; s++ {
		if rep.counts[s] > 0 {
			rows = append(rows, row{s, rep.counts[s]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		evid := ""
		if n := rep.evidenceAll[r.sig]; n > 0 {
			evid = fmt.Sprintf("  (IP-ID delta >100 in %.0f%%)",
				stats.Percent(stats.Ratio(rep.evidenceBig[r.sig], n)))
		}
		fmt.Printf("  %-28s %8d  %5.1f%%%s\n", r.sig, r.n,
			stats.Percent(stats.Ratio(r.n, rep.total)), evid)
	}
	fmt.Println("\nstage breakdown of possibly-tampered:")
	for st := core.StagePostSYN; st <= core.StageOther; st++ {
		if rep.stages[st] > 0 {
			fmt.Printf("  %-10s %8d  %5.1f%%\n", st, rep.stages[st],
				stats.Percent(stats.Ratio(rep.stages[st], rep.possibly)))
		}
	}
}

// testHookBeforeMetricsShutdown, when non-nil, is invoked with the
// metrics server's bound address after the scan finishes but before
// the server shuts down. The scripts/check.sh metrics gate test uses
// it to scrape /metrics and /healthz at a deterministic point.
var testHookBeforeMetricsShutdown func(addr string)

func run(path string, opts options) error {
	matcher, err := matcherMode(opts.classifier)
	if err != nil {
		return err
	}
	if opts.shards < 0 {
		return fmt.Errorf("-shards %d: want >= 0", opts.shards)
	}
	// The flight recorder, correlation ID, and tracer always exist:
	// batch-level span emission is allocation-free (pinned by the
	// stream_trace_overhead gate), and a crash dump must be available
	// even on runs that never asked for tracing. The run ID doubles as
	// the root trace ID, so log lines and spans join on one key.
	fl := trace.NewFlight(trace.DefaultFlightEvents)
	runID := logx.NewRunID()
	log, err := logx.New(os.Stderr, opts.logFormat, runID, fl)
	if err != nil {
		return err
	}
	sample := opts.traceSample
	if sample < 0 {
		sample = 0
	}
	tcfg := trace.Config{TraceID: runID, SampleEvery: sample, Flight: fl}
	if opts.traceProfile != "" {
		tcfg.MaxProfile = 1 << 20
	}
	tracer := trace.New(tcfg)

	// dumpFlight writes the flight recorder (recent warn+ events and
	// the span rings) as JSON lines to stderr and, when set, to
	// -flight-out. Reasons name the trigger: signal-shutdown,
	// sharded-rescan.
	dumpFlight := func(reason string) {
		var buf bytes.Buffer
		if err := fl.Dump(&buf, reason); err != nil {
			return
		}
		os.Stderr.Write(buf.Bytes())
		if opts.flightOut != "" {
			if werr := os.WriteFile(opts.flightOut, buf.Bytes(), 0o644); werr != nil {
				log.Warn("flight dump write failed", "path", opts.flightOut, "err", werr)
			}
		}
	}

	src, tdcap, file, cleanup, err := openSource(path)
	if err != nil {
		return err
	}
	defer cleanup()
	w := opts.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}

	// Telemetry is constructed only when something will read it — the
	// metrics server or the progress reporter — so a bare scan keeps
	// zero overhead.
	var m pipeline.Metrics
	var tel *pipeline.Telemetry
	if opts.metricsAddr != "" {
		tel = pipeline.NewTelemetry(nil)
		srv, err := telemetry.NewServerWith(opts.metricsAddr, tel.Registry(),
			map[string]http.Handler{"/debug/tracez": trace.TracezHandler(tracer)})
		if err != nil {
			return err
		}
		log.Info("serving metrics", "url", srv.URL()+"/metrics", "tracez", srv.URL()+"/debug/tracez")
		defer func() {
			if testHookBeforeMetricsShutdown != nil {
				testHookBeforeMetricsShutdown(srv.Addr())
			}
			srv.Close()
		}()
	}
	if opts.progress > 0 {
		prev := m.Snapshot()
		prevAt := time.Now()
		rep := telemetry.StartReporterFunc(opts.progress, func() {
			d := m.Delta(prev)
			now := time.Now()
			rate := float64(d.Delivered) / now.Sub(prevAt).Seconds()
			prev, prevAt = m.Snapshot(), now
			s := m.Snapshot()
			log.Info("progress",
				"decoded", s.Decoded, "classified", s.Classified,
				"tampering", s.Tampering, "delivered", s.Delivered,
				"errors", s.Errors, "rate", int64(rate))
		})
		defer rep.Stop()
	}

	// SIGINT/SIGTERM cancel the pipeline's context: the workers drain,
	// the merged partial report still prints, and the push queue still
	// flushes (against its own deadline) before exit.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	coreCfg := core.DefaultConfig()
	coreCfg.Matcher = matcher

	// scanOnce runs one full classify-aggregate-push cycle over one
	// work placement: sharded over an indexed capture's segments,
	// single-scanner TDCAP, or a pcap source. Aggregators are created
	// fresh per call so a discarded sharded attempt cannot leak into
	// the fallback rescan's report. The report aggregates per worker
	// through the Observe hook (no geo plan: a scan keys nothing by
	// country); the sink only exists for -v, and ordered delivery
	// keeps its listing deterministic across worker and shard counts.
	scanOnce := func(seg *capture.SegmentedSource) (*report, error, error) {
		nworkers := w
		if seg != nil {
			// Sharded runs use one worker per shard at minimum; size the
			// per-worker observer shards to the resolved total.
			nworkers = pipeline.ShardWorkers(w, seg.Segments())
		}
		sharded := analysis.NewSharded(nil, nworkers, newReport)
		var sink pipeline.Sink
		if opts.verbose {
			sink = verbosePrinter(opts.tamperedOnly)
		}
		observe := sharded.Observe
		var fp *fleetPush
		if opts.pushURL != "" {
			var err error
			fp, err = newFleetPush(opts, &m, tracer, log)
			if err != nil {
				return nil, nil, err
			}
			observe = func(worker int, it pipeline.Item) {
				sharded.Observe(worker, it)
				fp.observe(it)
			}
		}
		cfg := pipeline.Config{
			Workers: w, Ordered: true, Observe: observe,
			Metrics: &m, Telemetry: tel, Tracer: tracer,
			Classifier:       core.NewClassifier(coreCfg),
			SequentialDecode: opts.seqDecode,
		}
		var runErr error
		switch {
		case seg != nil:
			_, runErr = pipeline.ShardedScan(ctx, seg, cfg, sink)
		case tdcap != nil:
			// TDCAP input goes through Stream so the parallel scanner
			// decodes in the worker pool; pcap input keeps its
			// incremental sampler source, whose decode cost lives in
			// the sampler anyway.
			_, runErr = pipeline.Stream(ctx, tdcap, cfg, sink)
		default:
			_, runErr = pipeline.Run(ctx, src, cfg, sink)
		}
		merged, err := sharded.Merged()
		if err != nil {
			return nil, nil, err
		}
		rep := merged.(*report)
		// A sharded attempt that errors for any reason other than
		// cancellation is discarded and rerun single-threaded (see the
		// caller), so its partial epoch must not be pushed.
		willRescan := seg != nil && runErr != nil && ctx.Err() == nil
		if fp != nil && !willRescan {
			if err := fp.finish(); err != nil {
				log.Warn("fleet push incomplete", "err", err)
			}
		}
		return rep, runErr, nil
	}

	var rep *report
	var runErr error
	if seg := segmentedSource(tdcap != nil, file, path, opts.shards, w, log); seg != nil {
		rep, runErr, err = scanOnce(seg)
		if err != nil {
			return err
		}
		if runErr != nil && ctx.Err() == nil {
			// Any scan error under a sharded placement is treated as index
			// distrust: a seam that passes the boundary re-validation can
			// still land mid-record and surface as a generic decode error,
			// so ErrBadIndex alone is not a reliable signal. The whole
			// capture is rescanned single-threaded from the start (the
			// sharded attempt read via ReadAt only, so the streaming
			// reader is still at offset zero); if the input itself is
			// damaged, the rescan reproduces the error over the true
			// record stream and the partial-report path below applies.
			// Cancellation is the one exception: the user asked to stop.
			log.Warn("sharded scan failed; discarding results and rescanning single-threaded", "err", runErr.Error())
			dumpFlight("sharded-rescan")
			rep, runErr, err = scanOnce(nil)
			if err != nil {
				return err
			}
		}
	} else if rep, runErr, err = scanOnce(nil); err != nil {
		return err
	}
	// Read the interrupt state before stop(): NotifyContext's stop
	// cancels the context itself, so checking afterwards would dump the
	// flight recorder on every clean run.
	interrupted := ctx.Err() != nil
	stop()
	if interrupted {
		dumpFlight("signal-shutdown")
	}
	if opts.traceProfile != "" {
		if dropped := tracer.ProfileDropped(); dropped > 0 {
			log.Warn("trace profile truncated", "dropped_spans", dropped)
		}
		if err := trace.WriteChromeFile(opts.traceProfile, tracer); err != nil {
			log.Warn("trace profile export failed", "path", opts.traceProfile, "err", err.Error())
		} else {
			log.Info("trace profile written", "path", opts.traceProfile)
		}
	}
	if runErr != nil {
		if rep.total == 0 {
			return runErr
		}
		// Truncated/corrupt tail (or a signal) after a good prefix:
		// report what was classified, then surface the early end with a
		// distinct exit code.
		log.Warn("scan ended early; reporting the scanned prefix", "err", runErr.Error(), "connections", rep.total)
		rep.print()
		return &partialError{err: runErr}
	}
	rep.print()
	return nil
}

// openSource auto-detects TDCAP vs pcap input; "-" reads a stream
// (either format) from stdin. TDCAP input comes back as the raw
// reader (second return) so run can use the parallel scan pipeline;
// pcap comes back as a connection source (first return). When the
// input is a regular TDCAP file, the open *os.File also comes back
// (third return) so the sharded path can read segments via ReadAt —
// which never moves the file offset, so the streaming reader stays
// usable for the fallback path.
func openSource(path string) (pipeline.Source, io.Reader, *os.File, func(), error) {
	var r io.Reader
	var file *os.File
	cleanup := func() {}
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		cleanup = func() { f.Close() }
		if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() {
			file = f
		}
		r = f
	}
	br := bufio.NewReader(r)
	magic, err := br.Peek(8)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, fmt.Errorf("reading %s: %w", path, err)
	}
	if string(magic[:5]) == "TDCAP" {
		return nil, br, file, cleanup, nil
	}
	src, err := newPcapSource(br)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	return src, nil, nil, cleanup, nil
}

// segmentedSource decides whether this scan can shard: TDCAP input, a
// seekable file, a loadable index, and -shards != 1. Every reason it
// cannot is at worst a stderr warning — the single-scanner path is
// always available and always correct — but an index that exists and
// cannot be trusted is reported unconditionally, while the mundane
// "no index" case only warns when -shards > 1 asked for sharding
// explicitly.
func segmentedSource(isTDCAP bool, f *os.File, path string, shards, workers int, log *slog.Logger) *capture.SegmentedSource {
	if !isTDCAP || shards == 1 {
		return nil
	}
	explicit := shards > 1
	quiet := func(msg string, args ...any) {
		if explicit {
			log.Warn(msg, args...)
		}
	}
	if f == nil {
		quiet("sharded ingest needs a seekable capture file; scanning single-threaded")
		return nil
	}
	fi, err := f.Stat()
	if err != nil {
		quiet("capture stat failed; scanning single-threaded", "path", path, "err", err.Error())
		return nil
	}
	idx, err := capture.FindIndex(f, fi.Size(), path)
	if err != nil {
		if errors.Is(err, capture.ErrNoIndex) {
			quiet("no segment index (build one with tdcapindex); scanning single-threaded", "path", path)
		} else {
			log.Warn("segment index unusable; scanning single-threaded", "path", path, "err", err.Error())
		}
		return nil
	}
	if shards == 0 {
		shards = workers
	}
	seg, err := capture.NewSegmentedSource(f, fi.Size(), idx, shards)
	if err != nil {
		log.Warn("sharded source unavailable; scanning single-threaded", "path", path, "err", err.Error())
		return nil
	}
	return seg
}

// pcapSource runs raw packets through the paper's sampling pipeline as
// they are read, emitting connection records incrementally: long-idle
// flows are evicted every 300 s of capture time, and the remainder is
// drained at EOF. Both directions may be present in the file; the
// sampler keeps only inbound (client→server) packets, keyed by each
// flow's initial SYN, exactly as the deployment does.
type pcapSource struct {
	ch  chan *capture.Connection
	err error // set before ch closes
}

func newPcapSource(r io.Reader) (*pcapSource, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	s := &pcapSource{ch: make(chan *capture.Connection, 64)}
	go func() {
		defer close(s.ch)
		sampler := capture.NewSampler(capture.DefaultConfig())
		emit := func(conns []*capture.Connection) {
			for _, c := range conns {
				s.ch <- c
			}
		}
		var first, last, lastSweep int64 = -1, 0, 0
		for {
			p, err := pr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				s.err = err
				return
			}
			if len(p.Data) == 0 {
				continue
			}
			if first < 0 {
				first = p.TimestampNanos
			}
			last = p.TimestampNanos
			// Rebase to the capture's own epoch so record timestamps are
			// small offsets, like the simulator's.
			at := netsim.Time(p.TimestampNanos - first)
			sampler.Inbound(at, p.Data)
			// Periodically evict long-idle flows so arbitrarily large
			// captures stream in bounded memory.
			if sec := at.Unix(); sec-lastSweep >= 300 {
				lastSweep = sec
				emit(sampler.DrainIdle(at, 120))
			}
		}
		closeAt := netsim.Time(last - first).Add(60e9)
		emit(sampler.Drain(closeAt))
	}()
	return s, nil
}

// Next yields the next sampled connection.
func (s *pcapSource) Next() (*capture.Connection, error) {
	c, ok := <-s.ch
	if !ok {
		if s.err != nil {
			return nil, s.err
		}
		return nil, io.EOF
	}
	return c, nil
}
