// Command tamperscan classifies a capture file against the 19
// tampering signatures and prints a report: the signature histogram,
// stage breakdown, per-signature evidence summaries, and (with -v)
// per-connection verdicts.
//
// Input may be a TDCAP connection capture (written by trafficgen) or a
// classic libpcap file (LINKTYPE_RAW or Ethernet); the format is
// auto-detected. For pcap input, packets are run through the paper's
// sampling pipeline first (inbound-only flow records, 10-packet cap,
// 1-second timestamps).
//
// Usage:
//
//	tamperscan [-v] [-tampered-only] capture.{tdcap,pcap}
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"tamperdetect"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/netsim"
	"tamperdetect/internal/pcap"
	"tamperdetect/internal/stats"
)

func main() {
	verbose := flag.Bool("v", false, "print each connection's verdict")
	tamperedOnly := flag.Bool("tampered-only", false, "with -v, print only tampered connections")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tamperscan [-v] [-tampered-only] capture.tdcap\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verbose, *tamperedOnly); err != nil {
		fmt.Fprintln(os.Stderr, "tamperscan:", err)
		os.Exit(1)
	}
}

func run(path string, verbose, tamperedOnly bool) error {
	conns, err := loadCapture(path)
	if err != nil {
		return err
	}
	cl := tamperdetect.NewClassifier(tamperdetect.DefaultConfig())

	var counts [core.NumSignatures]int
	var stages [core.NumStages]int
	possibly := 0
	evidenceBig := map[tamperdetect.Signature]int{}
	evidenceAll := map[tamperdetect.Signature]int{}
	for _, conn := range conns {
		res := cl.Classify(conn)
		counts[res.Signature]++
		if res.PossiblyTampered {
			possibly++
			stages[res.Stage]++
		}
		if res.Signature.IsTampering() && res.Evidence.IPIDValid {
			evidenceAll[res.Signature]++
			if res.Evidence.MaxIPIDDelta > 100 {
				evidenceBig[res.Signature]++
			}
		}
		if verbose && (!tamperedOnly || res.Signature.IsTampering()) {
			domain := res.Domain
			if domain == "" {
				domain = "-"
			}
			fmt.Printf("%s:%d -> :%d  %-26s %-9s proto=%s domain=%s\n",
				conn.SrcIP, conn.SrcPort, conn.DstPort,
				res.Signature, res.Stage, res.Protocol, domain)
		}
	}

	fmt.Printf("connections:       %d\n", len(conns))
	fmt.Printf("possibly tampered: %d (%.1f%%)\n", possibly,
		stats.Percent(stats.Ratio(possibly, len(conns))))
	fmt.Println("\nsignature histogram:")
	type row struct {
		sig tamperdetect.Signature
		n   int
	}
	var rows []row
	for s := tamperdetect.Signature(0); s < core.NumSignatures; s++ {
		if counts[s] > 0 {
			rows = append(rows, row{s, counts[s]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		evid := ""
		if n := evidenceAll[r.sig]; n > 0 {
			evid = fmt.Sprintf("  (IP-ID delta >100 in %.0f%%)",
				stats.Percent(stats.Ratio(evidenceBig[r.sig], n)))
		}
		fmt.Printf("  %-28s %8d  %5.1f%%%s\n", r.sig, r.n,
			stats.Percent(stats.Ratio(r.n, len(conns))), evid)
	}
	fmt.Println("\nstage breakdown of possibly-tampered:")
	for st := core.StagePostSYN; st <= core.StageOther; st++ {
		if stages[st] > 0 {
			fmt.Printf("  %-10s %8d  %5.1f%%\n", st, stages[st],
				stats.Percent(stats.Ratio(stages[st], possibly)))
		}
	}
	return nil
}

// loadCapture auto-detects TDCAP vs pcap input; "-" reads a stream
// (either format) from stdin.
func loadCapture(path string) ([]*tamperdetect.Connection, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReader(r)
	magic, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	if string(magic[:5]) == "TDCAP" {
		return tamperdetect.ReadCapture(br)
	}
	return ingestPcap(br)
}

// ingestPcap runs raw packets through the paper's sampling pipeline,
// producing connection records. Both directions may be present in the
// file; the sampler keeps only inbound (client→server) packets, keyed
// by each flow's initial SYN, exactly as the deployment does.
func ingestPcap(r io.Reader) ([]*tamperdetect.Connection, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	sampler := capture.NewSampler(capture.DefaultConfig())
	var conns []*tamperdetect.Connection
	var first, last, lastSweep int64 = -1, 0, 0
	for {
		p, err := pr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(p.Data) == 0 {
			continue
		}
		if first < 0 {
			first = p.TimestampNanos
		}
		last = p.TimestampNanos
		// Rebase to the capture's own epoch so record timestamps are
		// small offsets, like the simulator's.
		at := netsim.Time(p.TimestampNanos - first)
		sampler.Inbound(at, p.Data)
		// Periodically evict long-idle flows so arbitrarily large
		// captures stream in bounded memory.
		if sec := at.Unix(); sec-lastSweep >= 300 {
			lastSweep = sec
			conns = append(conns, sampler.DrainIdle(at, 120)...)
		}
	}
	closeAt := netsim.Time(last - first).Add(60e9)
	return append(conns, sampler.Drain(closeAt)...), nil
}
