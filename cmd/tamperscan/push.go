package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/fleet"
	"tamperdetect/internal/geo"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/trace"
)

// fleetPush feeds classified connections into the full fleet
// aggregator set and ships per-epoch delta snapshots to a popmerge
// service. Each pushed frame covers only the records classified since
// the previous push, so the merger's (pop, epoch) dedup makes an
// ACK-lost retransmission idempotent and the global report equals the
// merge of the distinct frames.
type fleetPush struct {
	pusher  *fleet.Pusher
	pop     string
	metrics *pipeline.Metrics
	tracer  *trace.Tracer
	log     *slog.Logger
	epochN  int32 // interned "push.epoch" span name

	interval time.Duration

	mu        sync.Mutex
	agg       analysis.Multi
	geo       *geo.Cache
	n         int // records in the open epoch
	lastEpoch uint64
	haveEpoch bool
	seq       uint64
	prev      pipeline.Counts // pipeline counts already pushed

	stopTick chan struct{}
	tickDone chan struct{}
}

// pushEpochSpan names the span that anchors each pushed epoch's trace
// across the fleet hop (see fleet.SpanFleetValidate/SpanFleetMerge).
const pushEpochSpan = "push.epoch"

// testHookPusherConfig, when non-nil, adjusts the pusher config before
// construction; tests use it to shrink backoff so retry-exhaustion
// paths run in milliseconds.
var testHookPusherConfig func(*fleet.PusherConfig)

// newFleetPush builds the push side of a scan: the fleet pusher
// (resuming any spilled frames from a previous outage), the live
// aggregator, and — when interval > 0 — the periodic epoch ticker.
func newFleetPush(opts options, m *pipeline.Metrics, tracer *trace.Tracer, log *slog.Logger) (*fleetPush, error) {
	pop := opts.pop
	if pop == "" {
		if host, err := os.Hostname(); err == nil && host != "" {
			pop = host
		} else {
			pop = "pop-local"
		}
	}
	cfg := fleet.PusherConfig{
		URL:      opts.pushURL,
		SpillDir: opts.pushSpill,
	}
	if testHookPusherConfig != nil {
		testHookPusherConfig(&cfg)
	}
	p, err := fleet.NewPusher(cfg)
	if err != nil {
		return nil, err
	}
	fp := &fleetPush{
		pusher:   p,
		pop:      pop,
		metrics:  m,
		tracer:   tracer,
		log:      log.With("pop", pop),
		epochN:   tracer.NameID(pushEpochSpan),
		interval: opts.pushInterval,
		agg:      analysis.NewFleetAggs(),
		geo:      geo.NewCache(nil),
	}
	if opts.pushSpill != "" {
		n, err := p.Resume()
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("resuming spilled frames: %w", err)
		}
		if n > 0 {
			fp.log.Info("resumed spilled push frames", "frames", n, "dir", opts.pushSpill)
		}
	}
	if opts.pushInterval > 0 {
		fp.stopTick = make(chan struct{})
		fp.tickDone = make(chan struct{})
		go fp.tick(opts.pushInterval)
	}
	return fp, nil
}

// observe is chained after the report shards' Observe hook; it runs
// sequentially per worker but concurrently across workers, hence the
// lock. A scan has no geo plan, so records carry no country/ASN — the
// fleet tables that key on them stay empty, harmlessly.
func (fp *fleetPush) observe(it pipeline.Item) {
	if it.Err != nil {
		return
	}
	fp.mu.Lock()
	rec := analysis.NewRecord(it.Conn, fp.geo, it.Res)
	fp.agg.Add(&rec)
	fp.n++
	fp.mu.Unlock()
}

// tick pushes an epoch on every interval until stopped.
func (fp *fleetPush) tick(interval time.Duration) {
	defer close(fp.tickDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := fp.pushEpoch(false); err != nil {
				fp.log.Warn("epoch push failed", "err", err.Error())
			}
		case <-fp.stopTick:
			return
		}
	}
}

// nextEpochLocked derives the frame's epoch from the wall clock — the
// index of the interval-wide window for periodic pushes, nanoseconds
// for one-shot scans — bumped monotonically so every frame this run is
// distinct. Time-based epochs keep separate scans of the same PoP out
// of each other's (pop, epoch) dedup space: only a true retransmission
// of the same frame reads as a duplicate at the merger.
func (fp *fleetPush) nextEpochLocked() uint64 {
	e := uint64(time.Now().UnixNano())
	if fp.interval > 0 {
		e /= uint64(fp.interval)
	}
	if fp.haveEpoch && e <= fp.lastEpoch {
		e = fp.lastEpoch + 1
	}
	fp.lastEpoch, fp.haveEpoch = e, true
	return e
}

// pushEpoch snapshots and resets the open epoch's aggregate, frames it
// with the pipeline-count delta, and queues it for delivery. Empty
// interior epochs are skipped; the final one is always pushed so a
// merger tracking liveness sees the scan complete.
func (fp *fleetPush) pushEpoch(final bool) error {
	fp.mu.Lock()
	if fp.n == 0 && !final {
		fp.mu.Unlock()
		return nil
	}
	agg := fp.agg
	fp.agg = analysis.NewFleetAggs()
	fp.n = 0
	counts := fp.metrics.Delta(fp.prev)
	fp.prev = fp.prev.Add(counts)
	epoch := fp.nextEpochLocked()
	seq := fp.seq
	fp.seq++
	fp.mu.Unlock()

	// The epoch span is the cross-PoP trace anchor: its ID rides the v3
	// envelope, and the merger parents its validate/merge spans to it,
	// so one trace covers both sides of the push.
	spanID := fp.tracer.NewSpanID()
	start := time.Now().UnixNano()
	frame, err := fleet.EncodeSnapshotTraced(fp.pop, epoch, seq, agg, counts,
		fleet.TraceContext{TraceID: fp.tracer.TraceID(), SpanID: spanID})
	if err != nil {
		return err
	}
	err = fp.pusher.Push(frame)
	fp.tracer.EmitShared(trace.SpanRec{
		TraceID: fp.tracer.TraceID(), SpanID: spanID, Parent: fp.tracer.Root(),
		NameID: fp.epochN, Start: start, Dur: time.Now().UnixNano() - start,
		Worker: -1, Shard: -1, Record: -1, Count: 1,
	})
	return err
}

// finish pushes the final epoch, flushes the queue against its own
// deadline (a signalled scan still drains its pushes), and reports the
// delivery stats. It returns an error only when frames were lost —
// failed outright with nowhere to spill.
func (fp *fleetPush) finish() error {
	if fp.stopTick != nil {
		close(fp.stopTick)
		<-fp.tickDone
	}
	pushErr := fp.pushEpoch(true)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	flushErr := fp.pusher.Flush(ctx)
	fp.pusher.Close()
	st := fp.pusher.Stats()
	fp.log.Info("push summary",
		"delivered", st.Delivered, "retries", st.Retries,
		"spilled", st.Spilled, "resumed", st.Resumed, "failed", st.Failed)
	if pushErr != nil {
		return pushErr
	}
	if flushErr != nil {
		return fmt.Errorf("flushing push queue: %w", flushErr)
	}
	if st.Failed > 0 {
		return fmt.Errorf("%d frame(s) undeliverable and not spilled (set -push-spill to survive merger outages)", st.Failed)
	}
	return nil
}
