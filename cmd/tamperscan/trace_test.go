package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tamperdetect"
	"tamperdetect/internal/analysis"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/fleet"
	"tamperdetect/internal/trace"
)

// TestRunTraceProfileExport: a -trace-profile scan writes a Chrome
// trace-event file that passes the strict validator (parseable JSON,
// known phases, per-thread spans strictly nested) and contains the
// pipeline's stage spans.
func TestRunTraceProfileExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, manyConns(300)); err != nil {
		t.Fatal(err)
	}
	profile := filepath.Join(dir, "scan.trace.json")
	if err := run(path, options{workers: 2, traceProfile: profile, traceSample: 32}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(profile)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if err := trace.ValidateChrome(data); err != nil {
		t.Fatalf("exported profile invalid: %v", err)
	}
	for _, name := range []string{`"scan"`, `"decode"`, `"classify"`, `"sink"`, `"decode.record"`} {
		if !bytes.Contains(data, []byte(name)) {
			t.Errorf("profile missing %s spans", name)
		}
	}
}

// TestRunLogFormatJSON: under -log-format json every stderr line is a
// parseable JSON object carrying the run correlation ID — warnings
// included — so a scraping supervisor never sees free-text.
func TestRunLogFormatJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, manyConns(50)); err != nil {
		t.Fatal(err)
	}
	// -shards on an unindexed capture forces a fallback warning.
	_, stderr, err := capturedRun(t, path, options{workers: 2, shards: 4, logFormat: "json", progress: time.Hour})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(stderr), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no stderr output")
	}
	sawWarn := false
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line not JSON: %v\n%s", err, line)
		}
		if s, _ := rec["run_id"].(string); len(s) != 16 {
			t.Fatalf("line missing run_id: %s", line)
		}
		if rec["level"] == "WARN" {
			sawWarn = true
		}
	}
	if !sawWarn {
		t.Error("expected a no-segment-index warning in JSON stderr")
	}
}

// TestRunFlightDumpOnRescan: a lying index that betrays itself mid-run
// triggers the discard-and-rescan path, which must dump the flight
// recorder — the warning that caused it included — to stderr and to
// -flight-out.
func TestRunFlightDumpOnRescan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, manyConns(400)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := capture.BuildIndex(bytes.NewReader(data), 1)
	if err != nil {
		t.Fatal(err)
	}
	idx.Offsets = idx.Offsets[:len(idx.Offsets)-1]
	idx.Records--
	idx.FileSize = int64(len(data))
	if err := os.WriteFile(capture.SidecarPath(path), capture.EncodeSidecar(idx), 0o644); err != nil {
		t.Fatal(err)
	}
	flightOut := filepath.Join(dir, "flight.jsonl")
	_, stderr, err := capturedRun(t, path, options{workers: 2, shards: 4, flightOut: flightOut})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr, `"kind":"flight_recorder"`) ||
		!strings.Contains(stderr, `"reason":"sharded-rescan"`) {
		t.Errorf("no flight dump on stderr:\n%s", stderr)
	}
	dump, err := os.ReadFile(flightOut)
	if err != nil {
		t.Fatalf("-flight-out not written: %v", err)
	}
	var header struct {
		Kind   string `json:"kind"`
		Reason string `json:"reason"`
	}
	first, _, _ := strings.Cut(string(dump), "\n")
	if err := json.Unmarshal([]byte(first), &header); err != nil {
		t.Fatalf("flight dump header not JSON: %v\n%s", err, first)
	}
	if header.Kind != "flight_recorder" || header.Reason != "sharded-rescan" {
		t.Errorf("flight header = %+v", header)
	}
	if !strings.Contains(string(dump), "rescanning single-threaded") {
		t.Error("flight dump missing the warning event that triggered it")
	}
}

// TestRunPushTraced is the fleet-tracing e2e through the real CLI
// path: a -push scan ships v3 frames through a lossy seeded chaos
// transport to a live popmerge; the merger's validate and merge spans
// must share the scan's trace, parented to the scan's epoch push span.
func TestRunPushTraced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tdcap")
	if err := tamperdetect.WriteCaptureFile(path, manyConns(120)); err != nil {
		t.Fatal(err)
	}
	mergeTracer := trace.New(trace.Config{TraceID: 0x4004, MaxProfile: 1 << 12})
	m, err := fleet.NewMerger(fleet.MergerConfig{Fresh: analysis.NewFleetAggs, Tracer: mergeTracer})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	for pat, h := range m.Handler() {
		mux.Handle(pat, h)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	grade, _ := fleet.ChaosGrade("lossy")
	old := testHookPusherConfig
	testHookPusherConfig = func(c *fleet.PusherConfig) {
		c.Client = &http.Client{Transport: fleet.NewChaosTransport(nil, grade, 11)}
		c.Timeout = 2 * time.Second
		c.BaseBackoff = time.Millisecond
		c.MaxBackoff = 5 * time.Millisecond
		c.MaxAttempts = 20
		c.Seed = 11
	}
	defer func() { testHookPusherConfig = old }()

	if err := run(path, options{workers: 2, pushURL: srv.URL, pop: "trace01"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if st := m.Stats(); st.Accepted == 0 {
		t.Fatalf("merger accepted nothing: %+v", st)
	}
	var traceID, parent uint64
	var validates, merges int
	for _, s := range mergeTracer.TakeProfile() {
		switch s.Name {
		case fleet.SpanFleetValidate:
			validates++
		case fleet.SpanFleetMerge:
			merges++
		default:
			continue
		}
		if s.TraceID == 0x4004 || s.TraceID == 0 {
			t.Fatalf("%s span did not adopt the scan's trace: %x", s.Name, s.TraceID)
		}
		if traceID == 0 {
			traceID, parent = s.TraceID, s.Parent
		}
		if s.TraceID != traceID || s.Parent != parent {
			t.Fatalf("span %s trace/parent %x/%x, want %x/%x (one epoch, one trace)",
				s.Name, s.TraceID, s.Parent, traceID, parent)
		}
	}
	if validates == 0 || merges == 0 {
		t.Fatalf("merge-side spans missing: validate=%d merge=%d", validates, merges)
	}
	if parent == 0 {
		t.Error("merge-side spans have no parent epoch span")
	}
}
