package main

import (
	"testing"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/faults"
)

// TestRunExperiments smoke-runs every experiment at tiny scale; each
// must complete without error (output goes to stdout).
func TestRunExperiments(t *testing.T) {
	for _, exp := range experiments {
		if exp == "all" {
			continue // covered by the individual runs; "all" is slow
		}
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 3000, 48, 7, 2, 2, 0, ""); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 10, 1, 1, 1, 1, 0, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("table1", 10, 1, 1, 1, 1, 0, "nope"); err == nil {
		t.Error("unknown impairment grade accepted")
	}
}

// TestMaxRecordsCapsDataset checks -maxrecords stops the shared
// dataset stream early: the aggregated total may overshoot the cap by
// at most the pipeline's bounded in-flight window, but must stay well
// below the full run.
func TestMaxRecordsCapsDataset(t *testing.T) {
	full, err := buildDataset(6000, 48, 7, 2, 0, faults.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fullTotal := full.aggs[aggStages].(*analysis.StageStatsAgg).Stats().Total
	capped, err := buildDataset(6000, 48, 7, 2, 200, faults.Config{})
	if err != nil {
		t.Fatal(err)
	}
	total := capped.aggs[aggStages].(*analysis.StageStatsAgg).Stats().Total
	if total < 200 {
		t.Errorf("capped run aggregated %d records, want >= 200", total)
	}
	if total >= fullTotal {
		t.Errorf("cap had no effect: capped %d >= full %d", total, fullTotal)
	}
}

// TestDatasetDeterministicAcrossWorkers checks the one-pass dataset is
// a pure function of the scenario: worker count cannot change a table.
func TestDatasetDeterministicAcrossWorkers(t *testing.T) {
	ds1, err := buildDataset(3000, 48, 7, 1, 0, faults.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ds4, err := buildDataset(3000, 48, 7, 4, 0, faults.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := ds1.aggs[aggStages].(*analysis.StageStatsAgg).Stats()
	s4 := ds4.aggs[aggStages].(*analysis.StageStatsAgg).Stats()
	if s1 != s4 {
		t.Errorf("stage stats differ across worker counts:\n1: %+v\n4: %+v", s1, s4)
	}
	m1 := analysis.RenderOverlapMatrix(ds1.aggs[aggOverlap].(*analysis.OverlapAgg).Matrix())
	m4 := analysis.RenderOverlapMatrix(ds4.aggs[aggOverlap].(*analysis.OverlapAgg).Matrix())
	if m1 != m4 {
		t.Error("overlap matrix differs across worker counts")
	}
}
