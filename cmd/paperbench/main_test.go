package main

import (
	"bytes"
	"context"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/faults"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/telemetry"
)

// TestRunExperiments smoke-runs every experiment at tiny scale; each
// must complete without error (output goes to stdout).
func TestRunExperiments(t *testing.T) {
	for _, exp := range experiments {
		if exp == "all" {
			continue // covered by the individual runs; "all" is slow
		}
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(context.Background(), exp, "", 3000, 48, 7, 2, 2, 0, "", "", 0, instruments{}); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "nope", "", 10, 1, 1, 1, 1, 0, "", "", 0, instruments{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(context.Background(), "table1", "", 10, 1, 1, 1, 1, 0, "nope", "", 0, instruments{}); err == nil {
		t.Error("unknown impairment grade accepted")
	}
}

// TestMaxRecordsCapsDataset checks -maxrecords stops the shared
// dataset stream early: the aggregated total may overshoot the cap by
// at most the pipeline's bounded in-flight window, but must stay well
// below the full run.
func TestMaxRecordsCapsDataset(t *testing.T) {
	full, err := buildDataset(context.Background(), "", 6000, 48, 7, 2, 0, faults.Config{}, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	fullTotal := full.aggs[aggStages].(*analysis.StageStatsAgg).Stats().Total
	capped, err := buildDataset(context.Background(), "", 6000, 48, 7, 2, 200, faults.Config{}, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	total := capped.aggs[aggStages].(*analysis.StageStatsAgg).Stats().Total
	if total < 200 {
		t.Errorf("capped run aggregated %d records, want >= 200", total)
	}
	if total >= fullTotal {
		t.Errorf("cap had no effect: capped %d >= full %d", total, fullTotal)
	}
}

// TestDatasetDeterministicAcrossWorkers checks the one-pass dataset is
// a pure function of the scenario: worker count cannot change a table.
func TestDatasetDeterministicAcrossWorkers(t *testing.T) {
	ds1, err := buildDataset(context.Background(), "", 3000, 48, 7, 1, 0, faults.Config{}, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	ds4, err := buildDataset(context.Background(), "", 3000, 48, 7, 4, 0, faults.Config{}, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := ds1.aggs[aggStages].(*analysis.StageStatsAgg).Stats()
	s4 := ds4.aggs[aggStages].(*analysis.StageStatsAgg).Stats()
	if s1 != s4 {
		t.Errorf("stage stats differ across worker counts:\n1: %+v\n4: %+v", s1, s4)
	}
	m1 := analysis.RenderOverlapMatrix(ds1.aggs[aggOverlap].(*analysis.OverlapAgg).Matrix())
	m4 := analysis.RenderOverlapMatrix(ds4.aggs[aggOverlap].(*analysis.OverlapAgg).Matrix())
	if m1 != m4 {
		t.Error("overlap matrix differs across worker counts")
	}
}

// TestRunInstrumented runs an experiment with the full observability
// hooks attached: the shared dataset stream must feed the telemetry
// block and the registry must expose a valid scrape afterwards.
func TestRunInstrumented(t *testing.T) {
	ins := instruments{tel: pipeline.NewTelemetry(nil), fstats: &faults.Stats{}}
	ins.fstats.Register(ins.tel.Registry())
	if err := run(context.Background(), "table1", "", 2000, 24, 7, 2, 2, 0, "lossy", "", 0, ins); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := ins.tel.Metrics().Snapshot().Classified; got == 0 {
		t.Error("telemetry metrics saw no classified records")
	}
	if ins.fstats.Delivered.Load() == 0 {
		t.Error("impaired run counted no delivered fault events")
	}
	var buf bytes.Buffer
	if err := ins.tel.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"tamperdetect_pipeline_stage_latency_ns_bucket",
		`tamperdetect_faults_events_total{event="lost"}`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestCaptureDataset: -capture aggregates the shared dataset from a
// TDCAP file through the sharded ingest path, and the resulting tables
// are identical to the forced single-scanner scan of the same capture.
func TestCaptureDataset(t *testing.T) {
	dir := t.TempDir()
	writeCap := func(path string, indexed bool) {
		t.Helper()
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := capture.NewWriter(f)
		if indexed {
			if err := w.EnableIndex(32); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2000; i++ {
			c := &capture.Connection{
				SrcIP:   netip.AddrFrom4([4]byte{20, 0, byte(i >> 8), byte(i)}),
				DstIP:   netip.MustParseAddr("192.0.2.80"),
				SrcPort: uint16(30000 + i), DstPort: 443, IPVersion: 4,
				TotalPackets: 2, LastActivity: 1, CloseTime: 30,
				Packets: []capture.PacketRecord{
					{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, TTL: 54, IPID: 1, HasOptions: true},
					{Timestamp: 1, Flags: packet.FlagsACK, Seq: 101, TTL: 54, IPID: 2},
				},
			}
			if i%4 == 0 {
				c.Packets = append(c.Packets, capture.PacketRecord{
					Timestamp: 1, Flags: packet.FlagsRSTACK, Seq: 101, Ack: 7, TTL: 200, IPID: 50000,
				})
				c.TotalPackets = 3
			}
			if err := w.Write(c); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "x.tdcap")
	writeCap(path, true)

	single, err := buildCaptureDataset(context.Background(), path, 2, 1, 0, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := buildCaptureDataset(context.Background(), path, 2, 4, 0, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := single.aggs[aggStages].(*analysis.StageStatsAgg).Stats()
	s4 := sharded.aggs[aggStages].(*analysis.StageStatsAgg).Stats()
	if s1.Total != 2000 {
		t.Errorf("single-scanner dataset total = %d, want 2000", s1.Total)
	}
	if s1 != s4 {
		t.Errorf("stage stats differ between single and sharded capture scans:\n1: %+v\n4: %+v", s1, s4)
	}
	m1 := analysis.RenderOverlapMatrix(single.aggs[aggOverlap].(*analysis.OverlapAgg).Matrix())
	m4 := analysis.RenderOverlapMatrix(sharded.aggs[aggOverlap].(*analysis.OverlapAgg).Matrix())
	if m1 != m4 {
		t.Error("overlap matrix differs between single and sharded capture scans")
	}

	// The flag wires through run for dataset-backed experiments...
	if err := run(context.Background(), "table1", "", 0, 0, 0, 2, 2, 0, "", path, 0, instruments{}); err != nil {
		t.Fatalf("run(table1, -capture): %v", err)
	}
	// ...and rejects the ones that need generator metadata.
	for _, exp := range []string{"table2", "fig8", "all"} {
		if err := run(context.Background(), exp, "", 0, 0, 0, 2, 2, 0, "", path, 0, instruments{}); err == nil {
			t.Errorf("run(%s, -capture) accepted", exp)
		}
	}

	// A seam shifted mid-record passes upfront index validation and can
	// surface as a generic decode error rather than ErrBadIndex; the
	// sharded scan must still discard and rescan to the full dataset.
	// The footer index outranks sidecars, so the lie rides an
	// unindexed copy of the capture.
	lying := filepath.Join(dir, "lying.tdcap")
	writeCap(lying, false)
	data, err := os.ReadFile(lying)
	if err != nil {
		t.Fatal(err)
	}
	// Interval 500 over 2000 records yields exactly 4 index points, so
	// the 4-shard placement must seat a seam on the shifted one.
	idx, err := capture.BuildIndex(bytes.NewReader(data), 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Offsets) != 4 {
		t.Fatalf("want 4 index points, got %d", len(idx.Offsets))
	}
	idx.Offsets[2] += 7
	idx.FileSize = int64(len(data))
	if err := os.WriteFile(capture.SidecarPath(lying), capture.EncodeSidecar(idx), 0o644); err != nil {
		t.Fatal(err)
	}
	lied, err := buildCaptureDataset(context.Background(), lying, 2, 4, 0, instruments{})
	if err != nil {
		t.Fatalf("capture scan over mid-record seam: %v", err)
	}
	if got := lied.aggs[aggStages].(*analysis.StageStatsAgg).Stats(); got != s1 {
		t.Errorf("mid-record seam changed the dataset:\nlied: %+v\ntrue: %+v", got, s1)
	}
}
