package main

import "testing"

// TestRunExperiments smoke-runs every experiment at tiny scale; each
// must complete without error (output goes to stdout).
func TestRunExperiments(t *testing.T) {
	for _, exp := range experiments {
		if exp == "all" {
			continue // covered by the individual runs; "all" is slow
		}
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 3000, 48, 7, 2, 2, ""); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 10, 1, 1, 1, 1, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("table1", 10, 1, 1, 1, 1, "nope"); err == nil {
		t.Error("unknown impairment grade accepted")
	}
}
