package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/faults"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/telemetry"
)

// TestRunExperiments smoke-runs every experiment at tiny scale; each
// must complete without error (output goes to stdout).
func TestRunExperiments(t *testing.T) {
	for _, exp := range experiments {
		if exp == "all" {
			continue // covered by the individual runs; "all" is slow
		}
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(context.Background(), exp, 3000, 48, 7, 2, 2, 0, "", instruments{}); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "nope", 10, 1, 1, 1, 1, 0, "", instruments{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(context.Background(), "table1", 10, 1, 1, 1, 1, 0, "nope", instruments{}); err == nil {
		t.Error("unknown impairment grade accepted")
	}
}

// TestMaxRecordsCapsDataset checks -maxrecords stops the shared
// dataset stream early: the aggregated total may overshoot the cap by
// at most the pipeline's bounded in-flight window, but must stay well
// below the full run.
func TestMaxRecordsCapsDataset(t *testing.T) {
	full, err := buildDataset(context.Background(), 6000, 48, 7, 2, 0, faults.Config{}, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	fullTotal := full.aggs[aggStages].(*analysis.StageStatsAgg).Stats().Total
	capped, err := buildDataset(context.Background(), 6000, 48, 7, 2, 200, faults.Config{}, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	total := capped.aggs[aggStages].(*analysis.StageStatsAgg).Stats().Total
	if total < 200 {
		t.Errorf("capped run aggregated %d records, want >= 200", total)
	}
	if total >= fullTotal {
		t.Errorf("cap had no effect: capped %d >= full %d", total, fullTotal)
	}
}

// TestDatasetDeterministicAcrossWorkers checks the one-pass dataset is
// a pure function of the scenario: worker count cannot change a table.
func TestDatasetDeterministicAcrossWorkers(t *testing.T) {
	ds1, err := buildDataset(context.Background(), 3000, 48, 7, 1, 0, faults.Config{}, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	ds4, err := buildDataset(context.Background(), 3000, 48, 7, 4, 0, faults.Config{}, instruments{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := ds1.aggs[aggStages].(*analysis.StageStatsAgg).Stats()
	s4 := ds4.aggs[aggStages].(*analysis.StageStatsAgg).Stats()
	if s1 != s4 {
		t.Errorf("stage stats differ across worker counts:\n1: %+v\n4: %+v", s1, s4)
	}
	m1 := analysis.RenderOverlapMatrix(ds1.aggs[aggOverlap].(*analysis.OverlapAgg).Matrix())
	m4 := analysis.RenderOverlapMatrix(ds4.aggs[aggOverlap].(*analysis.OverlapAgg).Matrix())
	if m1 != m4 {
		t.Error("overlap matrix differs across worker counts")
	}
}

// TestRunInstrumented runs an experiment with the full observability
// hooks attached: the shared dataset stream must feed the telemetry
// block and the registry must expose a valid scrape afterwards.
func TestRunInstrumented(t *testing.T) {
	ins := instruments{tel: pipeline.NewTelemetry(nil), fstats: &faults.Stats{}}
	ins.fstats.Register(ins.tel.Registry())
	if err := run(context.Background(), "table1", 2000, 24, 7, 2, 2, 0, "lossy", ins); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := ins.tel.Metrics().Snapshot().Classified; got == 0 {
		t.Error("telemetry metrics saw no classified records")
	}
	if ins.fstats.Delivered.Load() == 0 {
		t.Error("impaired run counted no delivered fault events")
	}
	var buf bytes.Buffer
	if err := ins.tel.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"tamperdetect_pipeline_stage_latency_ns_bucket",
		`tamperdetect_faults_events_total{event="lost"}`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
