// Command paperbench regenerates every table and figure of the paper's
// evaluation from a synthetic scenario run: Table 1's stage statistics,
// Figures 1-10, Tables 2-3, and the §4.1/§4.2 validation numbers. Each
// experiment is a subcommand; "all" runs the whole set over one shared
// dataset.
//
// Usage:
//
//	paperbench [-total N] [-hours H] [-seed S] [-workers W]
//	           [-threshold T] <experiment>
//
// Experiments: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7a fig7b
// table2 table3 fig8 fig9 fig10 scanners stability evasion
// groundtruth robustness all
//
// -impair applies a named link-impairment grade (internal/faults:
// clean, lossy, hostile) to the scenario simulation, exercising the
// detector over degraded but untampered paths. The robustness
// experiment ignores -impair: it sweeps a benign scenario across every
// grade and prints the per-signature false-positive matrix.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/faults"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/profiling"
	"tamperdetect/internal/stats"
	"tamperdetect/internal/testlists"
	"tamperdetect/internal/workload"
)

var experiments = []string{
	"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"fig7a", "fig7b", "table2", "table3", "fig8", "fig9", "fig10",
	"scanners", "stability", "evasion", "groundtruth", "robustness",
	"all",
}

func main() {
	total := flag.Int("total", 60000, "connections in the global scenario")
	hours := flag.Int("hours", 14*24, "scenario hours (two weeks, as in the paper)")
	seed := flag.Uint64("seed", 2023, "deterministic seed")
	workers := flag.Int("workers", 0, "parallelism (0 = all cores)")
	threshold := flag.Int("threshold", 3, "per-domain match threshold for Tables 2-3 (paper: 100/day at CDN scale)")
	impair := flag.String("impair", "", "link-impairment grade applied to the scenario (clean|lossy|hostile)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paperbench [flags] <%s>\n", strings.Join(experiments, "|"))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	runErr := run(flag.Arg(0), *total, *hours, *seed, *workers, *threshold, *impair)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", runErr)
		os.Exit(1)
	}
}

// dataset bundles one scenario run and its classification.
type dataset struct {
	scen  *workload.Scenario
	conns []*capture.Connection
	recs  []analysis.Record
}

// buildDataset streams the scenario simulation through the
// classification pipeline: connections are classified and turned into
// analysis records as they are simulated, instead of materialising the
// full []*capture.Connection before classification starts. (The
// dataset still retains conns/recs because the experiments aggregate
// them many ways.)
func buildDataset(total, hours int, seed uint64, workers int, imp faults.Config) (*dataset, error) {
	s, err := workload.BuildScenario("paperbench", total, hours, seed)
	if err != nil {
		return nil, err
	}
	s.Impairments = imp
	start := time.Now()
	src := s.Stream(workers)
	defer src.Close()
	ds := &dataset{scen: s, conns: make([]*capture.Connection, 0, total)}
	counts, err := pipeline.Run(context.Background(), src,
		pipeline.Config{Workers: workers, Ordered: true},
		func(it pipeline.Item) error {
			ds.conns = append(ds.conns, it.Conn)
			ds.recs = append(ds.recs, analysis.NewRecord(it.Conn, s.Geo, it.Res))
			return nil
		})
	if err != nil {
		return nil, err
	}
	fmt.Printf("# dataset: %d connections, %d scenario-hours, streamed in %v\n\n",
		counts.Delivered, s.Hours, time.Since(start).Round(time.Millisecond))
	return ds, nil
}

func run(exp string, total, hours int, seed uint64, workers, threshold int, impair string) error {
	known := false
	for _, e := range experiments {
		if e == exp {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	var imp faults.Config
	var err error
	if impair != "" {
		if imp, err = faults.Grade(impair); err != nil {
			return err
		}
	}

	var ds *dataset
	// fig8 (the Iran case study) and robustness build their own
	// scenarios; everything else shares one dataset.
	if exp != "fig8" && exp != "robustness" {
		ds, err = buildDataset(total, hours, seed, workers, imp)
		if err != nil {
			return err
		}
	}

	runOne := func(name string) error {
		fmt.Printf("== %s ==\n", name)
		switch name {
		case "table1":
			fmt.Print(analysis.RenderStageStats(analysis.ComputeStageStats(ds.recs)))
		case "fig1":
			fmt.Print(analysis.RenderSignatureComposition(analysis.CountryBySignature(ds.recs)))
		case "fig2":
			cdfs := analysis.ComputeEvidenceCDFs(ds.recs, 1000)
			fmt.Print(analysis.RenderEvidenceCDF("Figure 2: max |IP-ID delta| (IPv4)", cdfs.IPID,
				[]float64{0, 1, 10, 100, 1000, 10000}))
		case "fig3":
			cdfs := analysis.ComputeEvidenceCDFs(ds.recs, 1000)
			fmt.Print(analysis.RenderEvidenceCDF("Figure 3: max |TTL delta|", cdfs.TTL,
				[]float64{0, 1, 5, 20, 60, 150}))
		case "fig4":
			fmt.Print(analysis.RenderCountryDistribution(analysis.SignatureByCountry(ds.recs), 50))
		case "fig5":
			for _, c := range []string{"TM", "CN", "IR", "RU", "UA", "PK", "MX", "US", "DE"} {
				view := analysis.ASNView(ds.recs, c)
				if len(view) > 0 {
					fmt.Print(analysis.RenderASNView(c, view))
				}
			}
		case "fig6":
			for _, c := range []string{"CN", "DE", "GB", "IN", "IR", "RU", "US"} {
				c := c
				series := analysis.TimeSeries(ds.recs, 4,
					func(r *analysis.Record) bool { return r.Country == c },
					analysis.PostACKPSHMatch)
				fmt.Print(analysis.RenderTimeSeries("Figure 6: "+c+" (Post-ACK+Post-PSH, 4h buckets)", series))
			}
		case "fig7a":
			rows, slope := analysis.IPVersionCompare(ds.recs, 50)
			fmt.Print(analysis.RenderVersionComparison(rows, slope))
		case "fig7b":
			rows, slope := analysis.ProtocolCompare(ds.recs, 30)
			fmt.Print(analysis.RenderProtocolComparison(rows, slope))
		case "table2":
			for _, region := range []string{"", "CN", "DE", "GB", "IN", "IR", "KR", "MX", "PE", "RU", "US"} {
				t := analysis.ComputeCategoryTable(ds.recs, ds.scen.Universe, region, threshold)
				fmt.Print(analysis.RenderCategoryTable(t, 3))
			}
		case "table3":
			suite := testlists.BuildSuite(ds.scen.Universe, sensitiveDomain, testlists.DefaultBuildConfig())
			regions := []string{"", "CN", "IN", "IR", "KR", "MX", "PE", "RU", "US"}
			rows := analysis.ListCoverageTable(ds.recs, suite, regions, threshold)
			fmt.Print(analysis.RenderListCoverage(rows, regions))
		case "fig8":
			s, err := workload.Iran2022Scenario(total, seed)
			if err != nil {
				return err
			}
			s.Impairments = imp
			conns := s.Run(workers)
			recs := analysis.Analyze(conns, s.Geo, core.NewClassifier(core.DefaultConfig()), workers)
			fmt.Printf("# iran2022: %d connections over 17 days\n", len(recs))
			for _, sig := range []core.Signature{core.SigSYNRST, core.SigACKTimeout, core.SigACKRSTACK, core.SigSYNTimeout} {
				sig := sig
				series := analysis.TimeSeries(recs, 12, nil,
					func(r *analysis.Record) bool { return r.Res.Signature == sig })
				fmt.Print(analysis.RenderTimeSeries("Figure 8: "+sig.String()+" (12h buckets)", series))
			}
		case "fig9":
			for _, sig := range []core.Signature{core.SigSYNRST, core.SigPSHRST, core.SigDataRST, core.SigDataRSTACK} {
				sig := sig
				series := analysis.TimeSeries(ds.recs, 6, nil,
					func(r *analysis.Record) bool { return r.Res.Signature == sig })
				fmt.Print(analysis.RenderTimeSeries("Figure 9: "+sig.String()+" (6h buckets)", series))
			}
		case "fig10":
			fmt.Print(analysis.RenderOverlapMatrix(analysis.ComputeOverlapMatrix(ds.recs)))
		case "groundtruth":
			// Extension: score the classifier against the generator's
			// intent — the oracle unavailable in the wild.
			s, err := workload.BuildScenario("groundtruth", total/4, 48, seed)
			if err != nil {
				return err
			}
			fmt.Print(workload.RenderGroundTruth(workload.ValidateGroundTruth(s, 0, workers)))
		case "evasion":
			// §6's thought experiment: run the global scenario's CN
			// share against an evasive censor and report how much
			// tampering the passive detector still sees.
			fmt.Println(renderEvasion(total/10, seed))
		case "stability":
			fmt.Print(analysis.RenderStability(analysis.StabilityReport(ds.recs, 30)))
		case "robustness":
			// False-positive harness: a scenario with no tampering and no
			// benign anomalies, swept across every impairment grade. Any
			// tampering verdict is by construction a false positive.
			n := total / 5
			if n < 1000 {
				n = 1000
			}
			s, err := workload.BenignScenario("robustness", n, 24, seed)
			if err != nil {
				return err
			}
			start := time.Now()
			outs, err := workload.RobustnessSweep(s, faults.GradeNames(), workers)
			if err != nil {
				return err
			}
			rows := make([]analysis.RobustnessGrade, len(outs))
			for i, o := range outs {
				rows[i] = analysis.TallyRobustness(o.Grade, o.EffectiveLoss, o.Signatures)
			}
			fmt.Printf("# robustness: %d benign connections per grade, %v\n\n",
				n, time.Since(start).Round(time.Millisecond))
			fmt.Print(analysis.RenderRobustnessMatrix(rows))
		case "scanners":
			fmt.Print(analysis.RenderScannerStats(analysis.ComputeScannerStats(ds.recs, ds.conns)))
			// §5.1 companion stat: the share of tampering restricted to
			// the robust Post-ACK/Post-PSH subset.
			matched, robust := 0, 0
			for i := range ds.recs {
				if ds.recs[i].Res.Signature.IsTampering() {
					matched++
					if ds.recs[i].Res.Signature.PostACKOrPSH() {
						robust++
					}
				}
			}
			fmt.Printf("Post-ACK/Post-PSH share of matches: %.1f%%\n",
				stats.Percent(stats.Ratio(robust, matched)))
		}
		fmt.Println()
		return nil
	}

	if exp == "all" {
		for _, e := range experiments {
			if e == "all" {
				continue
			}
			if e == "fig8" {
				// fig8 builds its own dataset below.
			}
			if err := runOne(e); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(exp)
}

// renderEvasion measures the §6 blind spot: connections censored by
// the drop-and-impersonate strategy classify as Not Tampering.
func renderEvasion(conns int, seed uint64) string {
	if conns < 200 {
		conns = 200
	}
	s, err := workload.BuildScenario("evasion", conns, 24, seed)
	if err != nil {
		return err.Error()
	}
	specs := s.Specs()
	cl := core.NewClassifier(core.DefaultConfig())
	detected, censored := 0, 0
	for i := range specs {
		spec := &specs[i]
		if !spec.Blocked || spec.Domain == nil || spec.Behavior != 0 {
			continue
		}
		censored++
		conn := workload.SimulateEvasive(spec, s.Universe)
		if conn == nil {
			continue
		}
		if cl.Classify(conn).Signature.IsTampering() {
			detected++
		}
	}
	return fmt.Sprintf("evasive censorship of %d blocked connections: %d detected (%.1f%%)"+
		" — the paper's §6 prediction: drop-and-impersonate defeats passive detection",
		censored, detected, stats.Percent(stats.Ratio(detected, censored)))
}

// sensitiveDomain marks the categories curated censorship lists target.
func sensitiveDomain(d *domains.Domain) bool {
	switch d.Category {
	case domains.AdultThemes, domains.News, domains.SocialNetworks, domains.Chat:
		return true
	default:
		return false
	}
}
