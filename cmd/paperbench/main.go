// Command paperbench regenerates every table and figure of the paper's
// evaluation from a synthetic scenario run: Table 1's stage statistics,
// Figures 1-10, Tables 2-3, and the §4.1/§4.2 validation numbers. Each
// experiment is a subcommand; "all" runs the whole set over one shared
// dataset.
//
// Usage:
//
//	paperbench [-total N] [-hours H] [-seed S] [-workers W]
//	           [-classifier dfa|legacy] [-threshold T] [-maxrecords N]
//	           <experiment>
//
// Experiments: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7a fig7b
// table2 table3 fig8 fig9 fig10 scanners stability evasion
// groundtruth robustness all
//
// The shared dataset is built in ONE streaming pass: connections flow
// from the simulator through the classification pipeline, and every
// experiment's aggregator ingests each record as it is classified —
// nothing buffers the capture, so peak memory is constant in -total.
// Each pipeline worker owns a private shard of the aggregator set; the
// shards merge when the stream drains, exactly as per-PoP aggregates
// merge into the paper's global tables.
//
// -impair applies a named link-impairment grade (internal/faults:
// clean, lossy, hostile) to the scenario simulation, exercising the
// detector over degraded but untampered paths. The robustness
// experiment ignores -impair: it sweeps a benign scenario across every
// grade and prints the per-signature false-positive matrix.
//
// -maxrecords stops the stream after roughly N classified connections
// (the cap is checked at delivery, so in-flight batches may push the
// aggregated total slightly past it). It exists to smoke-test the
// one-pass machinery quickly on large -total values.
//
// -capture replaces the simulated shared dataset with a TDCAP capture
// file: the capture streams through the same classify-and-aggregate
// pass, and when it carries a segment index (trafficgen footer or
// tdcapindex sidecar) the scan shards into independent readers —
// -shards picks the count (0 = one per worker, 1 = single scanner). A
// missing or untrustworthy index falls back to the single-scanner path
// exactly as tamperscan does. Captures carry no scenario metadata, so
// experiments that need the generator's domain universe or their own
// simulated scenario (table2, table3, fig8, groundtruth, evasion,
// robustness, all) reject -capture, and country attribution is absent
// from the rendered tables.
//
// -metrics-addr serves the run's pipeline telemetry (stage latency
// histograms, per-signature counters, queue gauges) plus health and
// pprof endpoints while the experiments execute; -progress prints a
// one-line counter snapshot to stderr on the given interval.
// -cpuprofile/-memprofile/-blockprofile/-mutexprofile write Go pprof
// profiles; block and mutex profiling are armed only when requested.
//
// SIGINT/SIGTERM stop a run gracefully: the dataset stream drains, the
// worker shards merge, and the experiments render over whatever was
// classified before the signal — marked as a partial dataset — before
// the process exits 1.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/faults"
	"tamperdetect/internal/logx"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/profiling"
	"tamperdetect/internal/stats"
	"tamperdetect/internal/telemetry"
	"tamperdetect/internal/testlists"
	"tamperdetect/internal/workload"
)

// instruments carries the optional observability hooks through run —
// a pipeline telemetry block shared by every experiment's stream and
// the fault-event counters attached to impaired scenarios — plus the
// classifier every experiment's pipeline uses (nil = default, the
// compiled signature DFA). The zero value disables the hooks.
type instruments struct {
	tel        *pipeline.Telemetry
	fstats     *faults.Stats
	classifier *core.Classifier
}

var experiments = []string{
	"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"fig7a", "fig7b", "table2", "table3", "fig8", "fig9", "fig10",
	"scanners", "stability", "evasion", "groundtruth", "robustness",
	"all",
}

// logger is the process-wide structured logger; main replaces it once
// -log-format is parsed. Tests exercising run() keep this default.
var logger = slog.Default()

func main() {
	total := flag.Int("total", 60000, "connections in the global scenario")
	hours := flag.Int("hours", 14*24, "scenario hours (two weeks, as in the paper)")
	scenario := flag.String("scenario", "", "build the shared dataset from this embedded preset instead of the global table")
	seed := flag.Uint64("seed", 2023, "deterministic seed")
	workers := flag.Int("workers", 0, "parallelism (0 = all cores)")
	classifier := flag.String("classifier", "dfa", "signature matcher: dfa (compiled automaton) or legacy (multi-pass oracle)")
	threshold := flag.Int("threshold", 3, "per-domain match threshold for Tables 2-3 (paper: 100/day at CDN scale)")
	maxRecords := flag.Int("maxrecords", 0, "stop the shared dataset stream after roughly N connections (0 = all)")
	capturePath := flag.String("capture", "", "aggregate the shared dataset from this TDCAP capture instead of simulating")
	shards := flag.Int("shards", 0, "independent scan shards over an indexed -capture (0 = one per worker, 1 = single scanner)")
	impair := flag.String("impair", "", "link-impairment grade applied to the scenario (clean|lossy|hostile)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address for the run")
	progress := flag.Duration("progress", 0, "print a progress line to stderr on this interval (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this path")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile to this path")
	logFormat := flag.String("log-format", logx.FormatText, "structured log format on stderr: text or json")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paperbench [flags] <%s>\n", strings.Join(experiments, "|"))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *scenario != "" {
		// A preset carries its own total/hours; the flags override them
		// only when given explicitly on the command line.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["total"] {
			*total = 0
		}
		if !explicit["hours"] {
			*hours = 0
		}
	}
	log, err := logx.New(os.Stderr, *logFormat, logx.NewRunID(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(2)
	}
	logger = log
	stopProf, err := profiling.Start(profiling.Config{
		CPUProfile:   *cpuprofile,
		MemProfile:   *memprofile,
		BlockProfile: *blockprofile,
		MutexProfile: *mutexprofile,
	})
	if err != nil {
		logger.Error("profiling setup failed", "err", err.Error())
		os.Exit(1)
	}

	var ins instruments
	coreCfg := core.DefaultConfig()
	switch *classifier {
	case "", "dfa":
		coreCfg.Matcher = core.MatcherDFA
	case "legacy":
		coreCfg.Matcher = core.MatcherLegacy
	default:
		logger.Error("unknown -classifier (want dfa or legacy)", "classifier", *classifier)
		os.Exit(2)
	}
	ins.classifier = core.NewClassifier(coreCfg)
	var srv *telemetry.Server
	var rep *telemetry.Reporter
	if *metricsAddr != "" || *progress > 0 {
		ins.tel = pipeline.NewTelemetry(nil)
		ins.fstats = &faults.Stats{}
		ins.fstats.Register(ins.tel.Registry())
	}
	if *metricsAddr != "" {
		if srv, err = telemetry.NewServer(*metricsAddr, ins.tel.Registry()); err != nil {
			logger.Error("listen failed", "addr", *metricsAddr, "err", err.Error())
			os.Exit(1)
		}
		logger.Info("serving metrics", "url", srv.URL()+"/metrics")
	}
	if *progress > 0 {
		m := ins.tel.Metrics()
		rep = telemetry.StartReporterFunc(*progress, func() {
			c := m.Snapshot()
			logger.Info("progress",
				"decoded", c.Decoded, "classified", c.Classified,
				"tampering", c.Tampering, "delivered", c.Delivered)
		})
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	runErr := run(ctx, flag.Arg(0), *scenario, *total, *hours, *seed, *workers, *threshold, *maxRecords, *impair, *capturePath, *shards, ins)
	stopSig()
	if rep != nil {
		rep.Stop()
	}
	if srv != nil {
		srv.Close()
	}
	if err := stopProf(); err != nil {
		logger.Warn("profile write failed", "err", err.Error())
	}
	if runErr != nil {
		logger.Error("experiment failed", "err", runErr.Error())
		os.Exit(1)
	}
}

// The shared dataset's aggregator set, one slot per experiment input.
// newPaperAggs builds it in this order; dataset accessors index into
// the merged result. Time-series slots follow the fixed slots: fig6's
// per-country series first, then fig9's per-signature series.
const (
	aggStages       = iota // table1
	aggComposition         // fig1
	aggEvidence            // fig2 + fig3
	aggDistribution        // fig4
	aggASN                 // fig5
	aggIPVersion           // fig7a
	aggProtocol            // fig7b
	aggDomains             // table2 + table3
	aggOverlap             // fig10
	aggStability           // stability
	aggScanners            // scanners
	aggSeries              // fig6 then fig9 series
)

var (
	fig5Countries = []string{"TM", "CN", "IR", "RU", "UA", "PK", "MX", "US", "DE"}
	fig6Countries = []string{"CN", "DE", "GB", "IN", "IR", "RU", "US"}
	fig8Sigs      = []core.Signature{core.SigSYNRST, core.SigACKTimeout, core.SigACKRSTACK, core.SigSYNTimeout}
	fig9Sigs      = []core.Signature{core.SigSYNRST, core.SigPSHRST, core.SigDataRST, core.SigDataRSTACK}
)

// newPaperAggs builds one fresh shard of every aggregator the shared
// experiments read, in the slot order above.
func newPaperAggs() analysis.Multi {
	m := analysis.Multi{
		analysis.NewStageStatsAgg(),
		analysis.NewCountryBySignatureAgg(),
		analysis.NewEvidenceAgg(1000),
		analysis.NewSignatureByCountryAgg(),
		analysis.NewASNViewAgg(),
		analysis.NewIPVersionAgg(50),
		analysis.NewProtocolAgg(30),
		analysis.NewDomainAgg(),
		analysis.NewOverlapAgg(),
		analysis.NewStabilityAgg(30),
		analysis.NewScannerAgg(),
	}
	for _, c := range fig6Countries {
		c := c
		m = append(m, analysis.NewTimeSeriesAgg(4,
			func(r *analysis.Record) bool { return r.Country == c },
			analysis.PostACKPSHMatch))
	}
	for _, sig := range fig9Sigs {
		sig := sig
		m = append(m, analysis.NewTimeSeriesAgg(6, nil,
			func(r *analysis.Record) bool { return r.Res.Signature == sig }))
	}
	return m
}

// dataset is one scenario's merged aggregator set. It retains no
// connections and no records — only the constant-size aggregator
// state every experiment renders from.
type dataset struct {
	scen    *workload.Scenario
	aggs    analysis.Multi
	partial bool // stream interrupted by a signal; tables cover a prefix
}

func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// buildDataset streams the scenario simulation through the
// classification pipeline and aggregates every experiment's tables in
// that single pass: each worker adds the records it classifies to its
// private aggregator shard, and the shards merge once the stream
// drains. maxRecords > 0 stops the stream early (approximately — see
// the -maxrecords flag doc).
func buildDataset(ctx context.Context, scenario string, total, hours int, seed uint64, workers, maxRecords int, imp faults.Config, ins instruments) (*dataset, error) {
	var s *workload.Scenario
	var err error
	if scenario != "" {
		s, err = workload.PresetScenario(scenario, total, hours, seed)
	} else {
		s, err = workload.BuildScenario("paperbench", total, hours, seed)
	}
	if err != nil {
		return nil, err
	}
	s.Impairments = imp
	start := time.Now()
	w := resolveWorkers(workers)
	sharded := analysis.NewSharded(s.Geo, w, func() analysis.Aggregator { return newPaperAggs() })
	src := s.Stream(workers)
	defer src.Close()
	var sink pipeline.Sink
	if maxRecords > 0 {
		delivered := 0
		sink = func(pipeline.Item) error {
			if delivered++; delivered >= maxRecords {
				return pipeline.ErrStop
			}
			return nil
		}
	}
	counts, runErr := pipeline.Run(ctx, src,
		pipeline.Config{Workers: w, Observe: sharded.Observe, Telemetry: ins.tel, Classifier: ins.classifier}, sink)
	// A signal cancels the stream; if anything was classified, the
	// merged shards still make a usable (partial) dataset to render.
	partial := runErr != nil && errors.Is(runErr, context.Canceled) && counts.Classified > 0
	if runErr != nil && !partial {
		return nil, runErr
	}
	merged, err := sharded.Merged()
	if err != nil {
		return nil, err
	}
	mark := ""
	if partial {
		mark = " — INTERRUPTED, tables cover this partial prefix"
	}
	fmt.Printf("# dataset: %d connections, %d scenario-hours, one-pass aggregation in %v%s\n\n",
		counts.Classified, s.Hours, time.Since(start).Round(time.Millisecond), mark)
	return &dataset{scen: s, aggs: merged.(analysis.Multi), partial: partial}, nil
}

// buildCaptureDataset streams a TDCAP capture through the same
// classify-and-aggregate pass as buildDataset. A seekable capture with
// a segment index shards into independent scanners; a capture without
// a trustworthy index streams through the single scanner, and an index
// that betrays its promises mid-run is discarded and the capture
// rescanned single-threaded, so the aggregates never depend on index
// integrity. The dataset carries no scenario (scen == nil): run
// rejects the experiments that need generator metadata before calling
// this, and country attribution is absent from the tables.
func buildCaptureDataset(ctx context.Context, path string, workers, shards, maxRecords int, ins instruments) (*dataset, error) {
	if shards < 0 {
		return nil, fmt.Errorf("-shards %d: want >= 0", shards)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	start := time.Now()
	w := resolveWorkers(workers)

	// scanOnce builds fresh aggregators (and a fresh -maxrecords cap) so
	// a discarded sharded attempt cannot leak into the fallback rescan.
	// The sharded path reads via ReadAt only, which never moves the file
	// offset, so the fallback's streaming read still starts at byte 0.
	scanOnce := func(seg *capture.SegmentedSource) (analysis.Multi, pipeline.Counts, error) {
		nworkers := w
		if seg != nil {
			nworkers = pipeline.ShardWorkers(w, seg.Segments())
		}
		sharded := analysis.NewSharded(nil, nworkers, func() analysis.Aggregator { return newPaperAggs() })
		var sink pipeline.Sink
		if maxRecords > 0 {
			delivered := 0
			sink = func(pipeline.Item) error {
				if delivered++; delivered >= maxRecords {
					return pipeline.ErrStop
				}
				return nil
			}
		}
		cfg := pipeline.Config{Workers: w, Observe: sharded.Observe, Telemetry: ins.tel, Classifier: ins.classifier}
		var counts pipeline.Counts
		var runErr error
		if seg != nil {
			counts, runErr = pipeline.ShardedScan(ctx, seg, cfg, sink)
		} else {
			counts, runErr = pipeline.Stream(ctx, bufio.NewReaderSize(f, 1<<20), cfg, sink)
		}
		if runErr != nil {
			return nil, counts, runErr
		}
		merged, err := sharded.Merged()
		if err != nil {
			return nil, counts, err
		}
		return merged.(analysis.Multi), counts, nil
	}

	seg := segmentCapture(f, path, shards, w)
	placement := "single scanner"
	if seg != nil {
		placement = fmt.Sprintf("%d shards", seg.Segments())
		if seg.Segments() == 1 {
			placement = "1 shard"
		}
	}
	aggs, counts, runErr := scanOnce(seg)
	if seg != nil && runErr != nil && ctx.Err() == nil {
		// Any sharded scan error means the index cannot be trusted — a
		// lying seam can surface as a generic decode error rather than
		// ErrBadIndex — so the single-scanner rescan is the arbiter: it
		// either yields the full dataset or reproduces a genuine input
		// error over the true record stream.
		logger.Warn("sharded scan failed; discarding results and rescanning single-threaded", "err", runErr.Error())
		placement = "single scanner after index fallback"
		aggs, counts, runErr = scanOnce(nil)
	}
	if runErr != nil {
		// Unlike the simulator's one-shot stream, the capture is durable:
		// an interrupted or damaged scan is simply an error and the run
		// can be repeated, so no partial-dataset rendering here.
		return nil, fmt.Errorf("scanning %s: %w", path, runErr)
	}
	fmt.Printf("# dataset: %d connections from %s (%s), one-pass aggregation in %v\n\n",
		counts.Classified, path, placement, time.Since(start).Round(time.Millisecond))
	return &dataset{scen: nil, aggs: aggs, partial: false}, nil
}

// segmentCapture decides whether the capture scan can shard, exactly
// like tamperscan: a regular file, a loadable index, shards != 1. Any
// reason it cannot is at worst a warning — the single-scanner path is
// always correct — but an index that exists and fails validation is
// reported unconditionally, while plain "no index" warns only when
// sharding was requested explicitly.
func segmentCapture(f *os.File, path string, shards, workers int) *capture.SegmentedSource {
	if shards == 1 {
		return nil
	}
	warn := func(always bool, format string, args ...any) {
		if always || shards > 1 {
			logger.Warn(fmt.Sprintf(format, args...))
		}
	}
	fi, err := f.Stat()
	if err != nil || !fi.Mode().IsRegular() {
		warn(false, "sharded ingest needs a regular capture file; scanning single-threaded")
		return nil
	}
	idx, err := capture.FindIndex(f, fi.Size(), path)
	if err != nil {
		if errors.Is(err, capture.ErrNoIndex) {
			warn(false, "%s has no segment index (build one with tdcapindex); scanning single-threaded", path)
		} else {
			warn(true, "%v; scanning single-threaded", err)
		}
		return nil
	}
	if shards == 0 {
		shards = workers
	}
	seg, err := capture.NewSegmentedSource(f, fi.Size(), idx, shards)
	if err != nil {
		warn(true, "%v; scanning single-threaded", err)
		return nil
	}
	return seg
}

func run(ctx context.Context, exp, scenario string, total, hours int, seed uint64, workers, threshold, maxRecords int, impair, capturePath string, shards int, ins instruments) error {
	known := false
	for _, e := range experiments {
		if e == exp {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	var imp faults.Config
	var err error
	if impair != "" {
		if imp, err = faults.Grade(impair); err != nil {
			return err
		}
	}
	imp.Stats = ins.fstats // nil-safe: a nil Stats counts nothing

	if capturePath != "" {
		// A capture has no generator metadata: no domain universe for the
		// list-coverage tables, no scenario for the case studies.
		switch exp {
		case "table2", "table3", "fig8", "groundtruth", "evasion", "robustness", "all":
			return fmt.Errorf("%s needs a simulated scenario; it cannot run over -capture", exp)
		}
	}

	var ds *dataset
	// fig8 (the Iran case study) and robustness build their own
	// scenarios; everything else shares one dataset.
	if exp != "fig8" && exp != "robustness" {
		if capturePath != "" {
			ds, err = buildCaptureDataset(ctx, capturePath, workers, shards, maxRecords, ins)
		} else {
			ds, err = buildDataset(ctx, scenario, total, hours, seed, workers, maxRecords, imp, ins)
		}
		if err != nil {
			return err
		}
	}

	runOne := func(name string) error {
		fmt.Printf("== %s ==\n", name)
		switch name {
		case "table1":
			fmt.Print(analysis.RenderStageStats(ds.aggs[aggStages].(*analysis.StageStatsAgg).Stats()))
		case "fig1":
			fmt.Print(analysis.RenderSignatureComposition(ds.aggs[aggComposition].(*analysis.CountryBySignatureAgg).Table()))
		case "fig2":
			cdfs := ds.aggs[aggEvidence].(*analysis.EvidenceAgg).CDFs()
			fmt.Print(analysis.RenderEvidenceCDF("Figure 2: max |IP-ID delta| (IPv4)", cdfs.IPID,
				[]float64{0, 1, 10, 100, 1000, 10000}))
		case "fig3":
			cdfs := ds.aggs[aggEvidence].(*analysis.EvidenceAgg).CDFs()
			fmt.Print(analysis.RenderEvidenceCDF("Figure 3: max |TTL delta|", cdfs.TTL,
				[]float64{0, 1, 5, 20, 60, 150}))
		case "fig4":
			fmt.Print(analysis.RenderCountryDistribution(ds.aggs[aggDistribution].(*analysis.SignatureByCountryAgg).Table(), 50))
		case "fig5":
			asn := ds.aggs[aggASN].(*analysis.ASNViewAgg)
			for _, c := range fig5Countries {
				view := asn.View(c)
				if len(view) > 0 {
					fmt.Print(analysis.RenderASNView(c, view))
				}
			}
		case "fig6":
			for i, c := range fig6Countries {
				series := ds.aggs[aggSeries+i].(*analysis.TimeSeriesAgg).Series()
				fmt.Print(analysis.RenderTimeSeries("Figure 6: "+c+" (Post-ACK+Post-PSH, 4h buckets)", series))
			}
		case "fig7a":
			rows, slope := ds.aggs[aggIPVersion].(*analysis.IPVersionAgg).Table()
			fmt.Print(analysis.RenderVersionComparison(rows, slope))
		case "fig7b":
			rows, slope := ds.aggs[aggProtocol].(*analysis.ProtocolAgg).Table()
			fmt.Print(analysis.RenderProtocolComparison(rows, slope))
		case "table2":
			dom := ds.aggs[aggDomains].(*analysis.DomainAgg)
			for _, region := range []string{"", "CN", "DE", "GB", "IN", "IR", "KR", "MX", "PE", "RU", "US"} {
				fmt.Print(analysis.RenderCategoryTable(dom.CategoryTable(ds.scen.Universe, region, threshold), 3))
			}
		case "table3":
			suite := testlists.BuildSuite(ds.scen.Universe, sensitiveDomain, testlists.DefaultBuildConfig())
			regions := []string{"", "CN", "IN", "IR", "KR", "MX", "PE", "RU", "US"}
			rows := ds.aggs[aggDomains].(*analysis.DomainAgg).ListCoverage(suite, regions, threshold)
			fmt.Print(analysis.RenderListCoverage(rows, regions))
		case "fig8":
			s, err := workload.Iran2022Scenario(total, seed)
			if err != nil {
				return err
			}
			s.Impairments = imp
			w := resolveWorkers(workers)
			sharded := analysis.NewSharded(s.Geo, w, func() analysis.Aggregator {
				m := analysis.Multi{}
				for _, sig := range fig8Sigs {
					sig := sig
					m = append(m, analysis.NewTimeSeriesAgg(12, nil,
						func(r *analysis.Record) bool { return r.Res.Signature == sig }))
				}
				return m
			})
			src := s.Stream(workers)
			counts, err := pipeline.Run(ctx, src,
				pipeline.Config{Workers: w, Observe: sharded.Observe, Telemetry: ins.tel, Classifier: ins.classifier}, nil)
			src.Close()
			if err != nil {
				return err
			}
			merged, err := sharded.Merged()
			if err != nil {
				return err
			}
			fmt.Printf("# iran2022: %d connections over 17 days\n", counts.Classified)
			for i, sig := range fig8Sigs {
				series := merged.(analysis.Multi)[i].(*analysis.TimeSeriesAgg).Series()
				fmt.Print(analysis.RenderTimeSeries("Figure 8: "+sig.String()+" (12h buckets)", series))
			}
		case "fig9":
			for i, sig := range fig9Sigs {
				series := ds.aggs[aggSeries+len(fig6Countries)+i].(*analysis.TimeSeriesAgg).Series()
				fmt.Print(analysis.RenderTimeSeries("Figure 9: "+sig.String()+" (6h buckets)", series))
			}
		case "fig10":
			fmt.Print(analysis.RenderOverlapMatrix(ds.aggs[aggOverlap].(*analysis.OverlapAgg).Matrix()))
		case "groundtruth":
			// Extension: score the classifier against the generator's
			// intent — the oracle unavailable in the wild.
			s, err := workload.BuildScenario("groundtruth", total/4, 48, seed)
			if err != nil {
				return err
			}
			fmt.Print(workload.RenderGroundTruth(workload.ValidateGroundTruth(s, 0, workers)))
		case "evasion":
			// §6's thought experiment: run the global scenario's CN
			// share against an evasive censor and report how much
			// tampering the passive detector still sees.
			fmt.Println(renderEvasion(total/10, seed))
		case "stability":
			fmt.Print(analysis.RenderStability(ds.aggs[aggStability].(*analysis.StabilityAgg).Report()))
		case "robustness":
			// False-positive harness: a scenario with no tampering and no
			// benign anomalies, swept across every impairment grade — each
			// grade one streaming pass into a RobustnessAgg per worker. Any
			// tampering verdict is by construction a false positive.
			n := total / 5
			if n < 1000 {
				n = 1000
			}
			s, err := workload.BenignScenario("robustness", n, 24, seed)
			if err != nil {
				return err
			}
			start := time.Now()
			specs := s.Specs()
			w := resolveWorkers(workers)
			var rows []analysis.RobustnessGrade
			for _, grade := range faults.GradeNames() {
				grade := grade
				gradeImp, err := faults.Grade(grade)
				if err != nil {
					return err
				}
				sweep := *s
				sweep.Impairments = gradeImp
				sharded := analysis.NewSharded(nil, w, func() analysis.Aggregator {
					return analysis.NewRobustnessAgg(grade, gradeImp.EffectiveLoss())
				})
				src := sweep.StreamSpecs(specs, workers)
				counts, err := pipeline.Run(ctx, src,
					pipeline.Config{Workers: w, Observe: sharded.Observe, Telemetry: ins.tel, Classifier: ins.classifier}, nil)
				src.Close()
				if err != nil {
					return err
				}
				if counts.Classified == 0 {
					return fmt.Errorf("robustness: grade %q produced no classified connections", grade)
				}
				merged, err := sharded.Merged()
				if err != nil {
					return err
				}
				rows = append(rows, merged.(*analysis.RobustnessAgg).Grade())
			}
			fmt.Printf("# robustness: %d benign connections per grade, %v\n\n",
				n, time.Since(start).Round(time.Millisecond))
			fmt.Print(analysis.RenderRobustnessMatrix(rows))
		case "scanners":
			sc := ds.aggs[aggScanners].(*analysis.ScannerAgg)
			fmt.Print(analysis.RenderScannerStats(sc.Stats()))
			// §5.1 companion stat: the share of tampering restricted to
			// the robust Post-ACK/Post-PSH subset.
			fmt.Printf("Post-ACK/Post-PSH share of matches: %.1f%%\n",
				stats.Percent(stats.Ratio(sc.PostACKPSHMatches, sc.TamperingMatches)))
		}
		fmt.Println()
		return nil
	}

	if exp == "all" {
		for _, e := range experiments {
			if e == "all" {
				continue
			}
			if err := runOne(e); err != nil {
				return err
			}
		}
	} else if err := runOne(exp); err != nil {
		return err
	}
	if ds != nil && ds.partial {
		return fmt.Errorf("interrupted: the tables above cover only the dataset classified before the signal")
	}
	return nil
}

// renderEvasion measures the §6 blind spot: connections censored by
// the drop-and-impersonate strategy classify as Not Tampering.
func renderEvasion(conns int, seed uint64) string {
	if conns < 200 {
		conns = 200
	}
	s, err := workload.BuildScenario("evasion", conns, 24, seed)
	if err != nil {
		return err.Error()
	}
	specs := s.Specs()
	cl := core.NewClassifier(core.DefaultConfig())
	detected, censored := 0, 0
	for i := range specs {
		spec := &specs[i]
		if !spec.Blocked || spec.Domain == nil || spec.Behavior != 0 {
			continue
		}
		censored++
		conn := workload.SimulateEvasive(spec, s.Universe)
		if conn == nil {
			continue
		}
		if cl.Classify(conn).Signature.IsTampering() {
			detected++
		}
	}
	return fmt.Sprintf("evasive censorship of %d blocked connections: %d detected (%.1f%%)"+
		" — the paper's §6 prediction: drop-and-impersonate defeats passive detection",
		censored, detected, stats.Percent(stats.Ratio(detected, censored)))
}

// sensitiveDomain marks the categories curated censorship lists target.
func sensitiveDomain(d *domains.Domain) bool {
	switch d.Category {
	case domains.AdultThemes, domains.News, domains.SocialNetworks, domains.Chat:
		return true
	default:
		return false
	}
}
