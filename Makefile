# Verification tiers. Tier 1 is the fast always-green gate; tier 2
# adds go vet and the race detector over the full test suite
# (including the pipeline's concurrency tests) and is the bar for any
# PR touching concurrent code.

.PHONY: tier1 tier2 check bench

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race ./...

check: tier1 tier2

bench:
	go test -run=NONE -bench=. -benchmem ./...
