# Verification tiers. Tier 1 is the fast always-green gate; tier 2
# adds go vet and the race detector over the full test suite
# (including the pipeline's concurrency tests) and is the bar for any
# PR touching concurrent code. fuzz-smoke gives every Fuzz target a
# short (~10s) mutation budget on top of its seeded corpus.

.PHONY: tier1 tier2 check fuzz-smoke bench bench-all

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race ./...

fuzz-smoke:
	./scripts/fuzz_smoke.sh

check: tier1 tier2

# bench records the streaming-pipeline perf trajectory: median of
# BENCH_COUNT runs of BenchmarkStreamPipeline, written to
# BENCH_pipeline.json (schema in EXPERIMENTS.md).
bench:
	./scripts/bench.sh

# bench-all runs every benchmark in the repo (paper tables, ablations,
# codec) without JSON aggregation.
bench-all:
	go test -run=NONE -bench=. -benchmem ./...
