package tamperdetect

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tamperdetect/internal/packet"
	"tamperdetect/internal/telemetry"
)

func sample() *Connection {
	return &Connection{
		SrcIP: netip.MustParseAddr("20.0.0.7"), DstIP: netip.MustParseAddr("192.0.2.80"),
		SrcPort: 40000, DstPort: 443, IPVersion: 4,
		TotalPackets: 4, LastActivity: 1, CloseTime: 30,
		Packets: []PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, IPID: 10, TTL: 54, HasOptions: true},
			{Timestamp: 0, Flags: packet.FlagsACK, Seq: 101, IPID: 11, TTL: 54},
			{Timestamp: 1, Flags: packet.FlagsPSHACK, Seq: 101, IPID: 12, TTL: 54, PayloadLen: 100},
			{Timestamp: 1, Flags: packet.FlagsRSTACK, Seq: 201, Ack: 1, IPID: 40000, TTL: 200},
		},
	}
}

func TestPublicClassify(t *testing.T) {
	cl := NewClassifier(DefaultConfig())
	res := cl.Classify(sample())
	if res.Signature != SigPSHRSTACK {
		t.Errorf("signature = %v, want PSH → RST+ACK", res.Signature)
	}
	if res.Stage != StagePostPSH {
		t.Errorf("stage = %v", res.Stage)
	}
	if !res.Signature.IsTampering() {
		t.Error("IsTampering false")
	}
	if res.Evidence.MaxIPIDDelta < 1000 {
		t.Errorf("evidence delta = %d", res.Evidence.MaxIPIDDelta)
	}
}

func TestPublicCaptureRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tdcap")
	in := []*Connection{sample(), sample()}
	if err := WriteCaptureFile(path, in); err != nil {
		t.Fatalf("WriteCaptureFile: %v", err)
	}
	out, err := ReadCaptureFile(path)
	if err != nil {
		t.Fatalf("ReadCaptureFile: %v", err)
	}
	if len(out) != 2 || out[0].SrcPort != 40000 || len(out[0].Packets) != 4 {
		t.Errorf("round trip mismatch: %d conns", len(out))
	}
}

func TestPublicReconstruct(t *testing.T) {
	c := sample()
	// Scramble within second 1.
	c.Packets[2], c.Packets[3] = c.Packets[3], c.Packets[2]
	recs := Reconstruct(c)
	if !recs[3].Flags.IsRST() {
		t.Error("RST not restored to last position")
	}
}

func TestPublicAllSignatures(t *testing.T) {
	if got := len(AllSignatures()); got != 19 {
		t.Errorf("AllSignatures = %d, want 19", got)
	}
}

func TestReadCaptureFileMissing(t *testing.T) {
	if _, err := ReadCaptureFile("/nonexistent/path.tdcap"); err == nil {
		t.Error("missing file did not error")
	}
}

func TestPublicStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tdcap")
	in := []*Connection{sample(), sample(), sample()}
	if err := WriteCaptureFile(path, in); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var sigs []Signature
	counts, err := Stream(context.Background(), f, StreamConfig{Workers: 4, Ordered: true},
		func(it StreamItem) error {
			sigs = append(sigs, it.Res.Signature)
			return nil
		})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if counts.Classified != 3 || counts.Tampering != 3 || counts.Dropped != 0 {
		t.Errorf("counts = %+v", counts)
	}
	for i, sig := range sigs {
		if sig != SigPSHRSTACK {
			t.Errorf("connection %d: signature %v, want PSH → RST+ACK", i, sig)
		}
	}
}

func TestPublicStreamStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tdcap")
	in := []*Connection{sample(), sample(), sample(), sample()}
	if err := WriteCaptureFile(path, in); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seen := 0
	counts, err := Stream(context.Background(), f, StreamConfig{Ordered: true},
		func(it StreamItem) error {
			seen++
			return ErrStopStream
		})
	if err != nil {
		t.Fatalf("ErrStopStream surfaced: %v", err)
	}
	if seen != 1 || counts.Delivered != 0 {
		t.Errorf("seen=%d counts=%+v", seen, counts)
	}
}

func TestWriteCaptureFileErrors(t *testing.T) {
	// Creating over a directory must fail up front.
	dir := t.TempDir()
	if err := WriteCaptureFile(dir, []*Connection{sample()}); err == nil {
		t.Error("writing over a directory succeeded")
	}
	// A failing flush (no space on /dev/full) must surface exactly one
	// error and still close the file.
	if _, statErr := os.Stat("/dev/full"); statErr == nil {
		err := WriteCaptureFile("/dev/full", []*Connection{sample()})
		if err == nil {
			t.Error("write to /dev/full succeeded")
		}
	}
}

// TestPublicStreamTelemetry exercises the exported observability
// surface end to end: a telemetry-instrumented Stream, the registry's
// Prometheus exposition, and the HTTP metrics server.
func TestPublicStreamTelemetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tdcap")
	var conns []*Connection
	for i := 0; i < 50; i++ {
		conns = append(conns, sample())
	}
	if err := WriteCaptureFile(path, conns); err != nil {
		t.Fatal(err)
	}

	reg := NewMetricsRegistry()
	tel := NewStreamTelemetry(reg)
	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counts, err := Stream(context.Background(), f, StreamConfig{Telemetry: tel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Classified != int64(len(conns)) {
		t.Fatalf("classified %d of %d", counts.Classified, len(conns))
	}

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	want := fmt.Sprintf(`tamperdetect_pipeline_records_total{stage="classified"} %d`, len(conns))
	if !strings.Contains(string(body), want) {
		t.Errorf("exposition missing %q", want)
	}
}
