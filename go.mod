module tamperdetect

go 1.22
