#!/bin/sh
# Fuzz smoke pass: run every Fuzz target briefly (~10s each) so the
# corpus-seeded paths and a short burst of mutations stay green in CI
# without a dedicated fuzzing job. Run from the repo root:
#
#	./scripts/fuzz_smoke.sh [fuzztime]
#
# The optional argument overrides the per-target fuzz budget
# (go test -fuzztime syntax, default 10s).
set -eu

fuzztime="${1:-10s}"

# Each entry is "package:FuzzTarget". go test allows only one fuzz
# target per invocation, so they run sequentially.
targets="
./internal/capture:FuzzCodecReader
./internal/capture:FuzzRecordScanner
./internal/capture:FuzzSegmentIndex
./internal/core:FuzzDFAClassifierParity
./internal/pcap:FuzzReader
./internal/packet:FuzzSummaryParse
./internal/packet:FuzzDecrementTTL
./internal/tlswire:FuzzParseSNI
./internal/tlswire:FuzzBuildParse
./internal/httpwire:FuzzParseRequest
./internal/analysis:FuzzMergeAssociativity
./internal/analysis:FuzzSnapshotCodec
./internal/fleet:FuzzEnvelope
./internal/fleet:FuzzTraceEnvelope
./internal/telemetry:FuzzHistogramMergeAssociativity
"

for t in $targets; do
	pkg="${t%%:*}"
	fn="${t##*:}"
	echo "== $pkg $fn ($fuzztime) =="
	go test "$pkg" -run="^$fn\$" -fuzz="^$fn\$" -fuzztime="$fuzztime"
done

echo "fuzz smoke passed"
