#!/bin/sh
# Perf-trajectory harness: runs the streaming-pipeline benchmark
# (BenchmarkStreamPipeline, workers {1,4,16} x batch {1,64}), the
# decode-parallel benchmark (BenchmarkDecodeParallel, scan vs seq
# front end at workers {1,4,16}), the sharded-ingest benchmark
# (BenchmarkShardedIngest, single-scanner baseline vs segment-index
# shards {1,2,4,8}), the geo-lookup cache benchmark
# (BenchmarkGeoLookup, cached vs uncached), the telemetry cost
# benchmark (BenchmarkStreamTelemetryOverhead, telemetry off vs on),
# the tracing cost benchmark (BenchmarkStreamTraceOverhead, tracer
# off vs attached with per-record sampling off),
# and the virtual-time generator benchmark (BenchmarkLongitudinalGen,
# arrival expansion + simulation + TDCAP encode over 48h and 336h
# windows)
# BENCH_COUNT times and aggregates the per-cell medians into
# BENCH_pipeline.json via scripts/benchjson — the recorded numbers
# EXPERIMENTS.md's Performance section tracks across PRs. Run from
# anywhere:
#
#	./scripts/bench.sh
#
# Environment knobs:
#	BENCH_COUNT     repetitions to take the median over (default 5)
#	BENCH_TIME      -benchtime per stream-pipeline run (default 10x;
#	                check.sh smokes with 1x)
#	GEO_BENCH_TIME  -benchtime per geo-lookup run (default 500000x)
#	BENCH_OUT       output path (default BENCH_pipeline.json in the
#	                repo root)
set -eu

COUNT="${BENCH_COUNT:-5}"
BENCHTIME="${BENCH_TIME:-10x}"
GEOTIME="${GEO_BENCH_TIME:-500000x}"
OUT="${BENCH_OUT:-BENCH_pipeline.json}"

cd "$(dirname "$0")/.."

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The stream benchmark's op is a whole pipeline run, so a handful of
# iterations suffice; the geo lookup's op is ~tens of nanoseconds and
# needs its own much larger iteration budget (GEO_BENCH_TIME).
echo "== go test -bench BenchmarkStreamPipeline -benchtime $BENCHTIME -count $COUNT =="
go test -run '^$' -bench 'BenchmarkStreamPipeline' -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$tmp"

echo "== go test -bench BenchmarkDecodeParallel -benchtime $BENCHTIME -count $COUNT =="
go test -run '^$' -bench 'BenchmarkDecodeParallel' -benchtime "$BENCHTIME" -count "$COUNT" . | tee -a "$tmp"

echo "== go test -bench BenchmarkShardedIngest -benchtime $BENCHTIME -count $COUNT =="
go test -run '^$' -bench 'BenchmarkShardedIngest' -benchtime "$BENCHTIME" -count "$COUNT" . | tee -a "$tmp"

echo "== go test -bench BenchmarkGeoLookup -benchtime $GEOTIME -count $COUNT =="
go test -run '^$' -bench 'BenchmarkGeoLookup' -benchtime "$GEOTIME" -count "$COUNT" . | tee -a "$tmp"

echo "== go test -bench BenchmarkStreamTelemetryOverhead -benchtime $BENCHTIME -count $COUNT =="
go test -run '^$' -bench 'BenchmarkStreamTelemetryOverhead' -benchtime "$BENCHTIME" -count "$COUNT" . | tee -a "$tmp"

echo "== go test -bench BenchmarkStreamTraceOverhead -benchtime $BENCHTIME -count $COUNT =="
go test -run '^$' -bench 'BenchmarkStreamTraceOverhead' -benchtime "$BENCHTIME" -count "$COUNT" . | tee -a "$tmp"

echo "== go test -bench BenchmarkLongitudinalGen -benchtime $BENCHTIME -count $COUNT =="
go test -run '^$' -bench 'BenchmarkLongitudinalGen' -benchtime "$BENCHTIME" -count "$COUNT" . | tee -a "$tmp"

go run ./scripts/benchjson -o "$OUT" <"$tmp"
echo "wrote $OUT"
