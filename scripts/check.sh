#!/bin/sh
# Tier-2 verification: static vetting, the full test suite under the
# race detector (the pipeline's concurrency tests are written to be
# meaningful only under -race), the robustness false-positive gate at
# its full 10k-connection scale, and a fuzz smoke pass. Run from the
# repo root:
#
#	./scripts/check.sh
set -eu

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./... =="
go test -race ./...

# Re-run the robustness false-positive gate (10k benign connections
# per grade) focused and uncached, so a flake in the broad -race pass
# cannot mask it and its pass/fail is visible on its own line.
echo "== robustness false-positive gate (full scale) =="
go test ./internal/workload/ -run 'TestLossyGradeZeroFalsePositives' -count=1

# Aggregation parity gate: the full paper surface rendered via the
# legacy batch functions, the streaming pipeline at 1/4/16 workers,
# and a 5-PoP shard-and-merge (both merge orders) must be
# byte-identical. This is the tentpole invariant of the incremental
# aggregation subsystem; run it focused and uncached.
echo "== batch / streaming / PoP-merge parity gate =="
go test ./internal/analysis/ -run 'TestParityStreamingMatchesBatch|TestParityPoPMergeMatchesBatch' -count=1

# Pipeline metric sanity: after any run, delivered <= classified <=
# decoded and the dropped counter accounts exactly for the gap.
echo "== pipeline metrics monotonicity gate =="
go test ./internal/pipeline/ -run 'TestMetricsMonotonicity' -count=1

# DFA classifier differential gate: the compiled signature automaton
# must match the legacy multi-pass matcher Result-for-Result over the
# exhaustive event-sequence enumeration (lengths 0-6), the canonical
# signature table, and the fixture corpus. Run focused and uncached so
# its pass/fail is visible on its own line.
echo "== DFA classifier differential gate =="
go test ./internal/core/ -run 'TestDFAMatchesLegacy|TestDFASignatureTable' -count=1

# Decode scaling gate: the parallel decode path at 16 workers must
# ingest >=2x the records/sec of 1 worker. The test skips (loudly)
# on hosts with <4 CPUs — parallel speedup needs parallel hardware —
# so this line is a no-op on single-core CI but binding anywhere real.
echo "== decode parallel scaling gate =="
TAMPERDETECT_SCALING_GATE=1 go test ./internal/pipeline/ -run 'TestDecodeParallelScalingGate' -count=1 -v | grep -E 'SKIP|PASS|FAIL|ok ' || true
TAMPERDETECT_SCALING_GATE=1 go test ./internal/pipeline/ -run 'TestDecodeParallelScalingGate' -count=1 >/dev/null

# Sharded ingest parity gate: the segment-index multi-reader scan
# must deliver byte-identical aggregates to the single scanner at
# shards {1,2,4,8} x ordered {on,off}, survive a corrupt record with
# exactly the good-prefix union, and refuse a lying index (seam
# violations surface as ErrBadIndex; any sharded scan error at all
# triggers the tamperscan/paperbench discard-and-rescan). The
# end-to-end fallback contract — a bad index warns and never changes
# tamperscan's output — runs alongside.
echo "== sharded ingest parity + fallback gate =="
go test ./internal/pipeline/ -run 'TestShardedScanParity|TestShardedScanCorruptSegment|TestShardedScanLyingSeamOffset|TestShardedScanSeamUndercount' -count=1
go test ./cmd/tamperscan/ -run 'TestRunShardedParity|TestRunShardedFallsBack|TestRunShardedRescan' -count=1

# Sharded scaling gate: 8 shards must ingest >=2x the records/sec of
# 1 shard. Like the decode gate, it skips (loudly) on hosts with <4
# CPUs, so the line is a no-op on single-core CI but binding anywhere
# with real parallelism.
echo "== sharded ingest scaling gate =="
TAMPERDETECT_SCALING_GATE=1 go test ./internal/pipeline/ -run 'TestShardedIngestScalingGate' -count=1 -v | grep -E 'SKIP|PASS|FAIL|ok ' || true
TAMPERDETECT_SCALING_GATE=1 go test ./internal/pipeline/ -run 'TestShardedIngestScalingGate' -count=1 >/dev/null

# Raw-record scanner parity gate: the slab scanner front end must
# agree with the sequential Reader on every truncation and byte
# corruption of the fixture capture (same record counts, same error
# classes) — the invariant tamperscan's exit-3 behaviour rests on.
echo "== scanner/reader parity gate =="
go test ./internal/capture/ -run 'TestScannerMatchesReader|TestScannerTruncationParity|TestScannerCorruptionParity' -count=1

# Telemetry gate: run tamperscan with -metrics-addr over a fixture
# capture, scrape /metrics and /healthz live (the gate test fails on
# unparseable exposition or non-200 health), and verify the metrics
# server shuts down without leaking goroutines. The telemetry
# package's own shutdown-leak test runs alongside for the standalone
# server path.
echo "== telemetry exposition + shutdown gate =="
go test ./cmd/tamperscan/ -run 'TestMetricsAddrServesExposition' -count=1
go test ./internal/telemetry/ -run 'TestServerShutdownNoGoroutineLeak|TestServerEndpoints' -count=1

# Tracing gate: the span engine's whole contract, focused and
# uncached. The sampled span set must be deterministic across worker
# counts {1,4,16}; the hot path with sampling off must add zero
# allocations per record; a live /debug/tracez scrape racing a
# graceful shutdown must neither tear nor leak goroutines; the Chrome
# trace-event export written by tamperscan -trace-profile must pass
# the strict validator (valid JSON, known phases, per-thread spans
# strictly nested); and the cross-PoP e2e — tamperscan -push through
# a lossy chaos transport into a live popmerge — must land the
# merger's validate/merge spans in the pushing scan's trace.
echo "== tracing: determinism + hot-path allocs + tracez race gate =="
go test ./internal/pipeline/ -run 'TestTraceSampledSetDeterministic|TestTraceHotPathAllocationFree|TestTraceTracezScrapeDuringShutdown' -count=1
echo "== tracing: Chrome export validity + cross-PoP propagation gate =="
go test ./cmd/tamperscan/ -run 'TestRunTraceProfileExport|TestRunPushTraced|TestRunFlightDumpOnRescan' -count=1
go test ./internal/fleet/ -run 'TestFleetTraceContextPropagation|TestEnvelopeMixedFleetParity' -count=1

# Fleet chaos-parity gate: 20 in-process PoPs (19 concurrent + one
# straggler past the quorum close) push per-epoch snapshots through a
# fault-injecting transport — drops, duplicates, truncations, 5xxs —
# into a live popmerge handler under the "lossy" grade. The merged
# report must be byte-identical to the single-process run, and a
# re-push of an already-ACKed frame must change nothing. The snapshot
# round-trip/merge-equivalence and (pop, epoch) idempotency property
# tests run alongside, focused and uncached.
echo "== fleet chaos parity gate (20 PoPs, lossy) =="
go test ./internal/fleet/ -run 'TestChaosParity20PoPs/lossy|TestMergerIdempotent|TestMergerOrderAndDuplicationInvariance' -count=1
go test ./internal/analysis/ -run 'TestSnapshotRoundTripParity|TestSnapshotRestoreIsMerge' -count=1

# Scenario preset gate: every embedded preset must parse, validate,
# and assemble; the codec must reject unknown fields, out-of-range
# intensities, and malformed phase tables; and a preset expanded twice
# must yield identical spec streams. Run focused and uncached.
echo "== scenario preset validation gate =="
go test ./internal/workload/ -run 'TestPresetsValid|TestPresetRoundTrip|TestPresetSpecsDeterministic|TestScenarioFileRejections' -count=1

# Arrival trace record/replay gate: a recorded trace must replay to a
# byte-identical capture and refuse mismatched scenarios or corrupted
# frames.
echo "== arrival trace record/replay gate =="
go test ./internal/workload/ -run 'TestTraceRoundTrip|TestTraceRejects' -count=1
go test ./cmd/trafficgen/ -run 'TestRunTraceRecordReplay' -count=1

# Virtual-time determinism gate, at full paper scale: the 14-day-class
# iran2022 preset (408 virtual hours) must generate in under 60
# seconds of wall-clock, two same-seed runs at different worker counts
# must be byte-identical, and the capture timestamps must span the
# whole virtual window at 1-second granularity (the in-tree
# TestRunVirtualWindowCoverage / TestRunDeterministicAcrossWorkers
# cover the same contracts at test scale).
echo "== virtual-time determinism gate (full-scale iran2022) =="
go test ./cmd/trafficgen/ -run 'TestRunDeterministicAcrossWorkers|TestRunVirtualWindowCoverage' -count=1
det_dir="$(mktemp -d)"
go build -o "$det_dir/trafficgen" ./cmd/trafficgen
det_start="$(date +%s)"
"$det_dir/trafficgen" -scenario iran2022 -seed 2022 -workers 2 -o "$det_dir/a.tdcap" >/dev/null
det_end="$(date +%s)"
"$det_dir/trafficgen" -scenario iran2022 -seed 2022 -workers 8 -o "$det_dir/b.tdcap" >/dev/null
cmp "$det_dir/a.tdcap" "$det_dir/b.tdcap"
det_elapsed=$((det_end - det_start))
if [ "$det_elapsed" -ge 60 ]; then
	echo "FAIL: full-scale iran2022 generation took ${det_elapsed}s (acceptance bound: < 60s)" >&2
	rm -rf "$det_dir"
	exit 1
fi
echo "full-scale iran2022 generated in ${det_elapsed}s, runs byte-identical"
rm -rf "$det_dir"

# Smoke the perf harness: one short benchmark iteration, then assert
# the aggregator produced well-formed JSON. No timing assertions —
# shared CI machines make those flaky; the recorded trajectory is
# refreshed manually via `make bench`.
echo "== bench harness smoke =="
bench_out="$(mktemp)"
BENCH_COUNT=1 BENCH_TIME=1x BENCH_OUT="$bench_out" ./scripts/bench.sh >/dev/null
go run ./scripts/benchjson -validate "$bench_out"
rm -f "$bench_out"

echo "== fuzz smoke =="
./scripts/fuzz_smoke.sh

echo "tier-2 checks passed"
