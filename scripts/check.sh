#!/bin/sh
# Tier-2 verification: static vetting plus the full test suite under
# the race detector (the pipeline's concurrency tests are written to
# be meaningful only under -race). Run from the repo root:
#
#	./scripts/check.sh
set -eu

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./... =="
go test -race ./...

echo "tier-2 checks passed"
