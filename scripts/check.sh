#!/bin/sh
# Tier-2 verification: static vetting, the full test suite under the
# race detector (the pipeline's concurrency tests are written to be
# meaningful only under -race), the robustness false-positive gate at
# its full 10k-connection scale, and a fuzz smoke pass. Run from the
# repo root:
#
#	./scripts/check.sh
set -eu

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./... =="
go test -race ./...

# Re-run the robustness false-positive gate (10k benign connections
# per grade) focused and uncached, so a flake in the broad -race pass
# cannot mask it and its pass/fail is visible on its own line.
echo "== robustness false-positive gate (full scale) =="
go test ./internal/workload/ -run 'TestLossyGradeZeroFalsePositives' -count=1

# Aggregation parity gate: the full paper surface rendered via the
# legacy batch functions, the streaming pipeline at 1/4/16 workers,
# and a 5-PoP shard-and-merge (both merge orders) must be
# byte-identical. This is the tentpole invariant of the incremental
# aggregation subsystem; run it focused and uncached.
echo "== batch / streaming / PoP-merge parity gate =="
go test ./internal/analysis/ -run 'TestParityStreamingMatchesBatch|TestParityPoPMergeMatchesBatch' -count=1

# Pipeline metric sanity: after any run, delivered <= classified <=
# decoded and the dropped counter accounts exactly for the gap.
echo "== pipeline metrics monotonicity gate =="
go test ./internal/pipeline/ -run 'TestMetricsMonotonicity' -count=1

# Telemetry gate: run tamperscan with -metrics-addr over a fixture
# capture, scrape /metrics and /healthz live (the gate test fails on
# unparseable exposition or non-200 health), and verify the metrics
# server shuts down without leaking goroutines. The telemetry
# package's own shutdown-leak test runs alongside for the standalone
# server path.
echo "== telemetry exposition + shutdown gate =="
go test ./cmd/tamperscan/ -run 'TestMetricsAddrServesExposition' -count=1
go test ./internal/telemetry/ -run 'TestServerShutdownNoGoroutineLeak|TestServerEndpoints' -count=1

# Smoke the perf harness: one short benchmark iteration, then assert
# the aggregator produced well-formed JSON. No timing assertions —
# shared CI machines make those flaky; the recorded trajectory is
# refreshed manually via `make bench`.
echo "== bench harness smoke =="
bench_out="$(mktemp)"
BENCH_COUNT=1 BENCH_TIME=1x BENCH_OUT="$bench_out" ./scripts/bench.sh >/dev/null
go run ./scripts/benchjson -validate "$bench_out"
rm -f "$bench_out"

echo "== fuzz smoke =="
./scripts/fuzz_smoke.sh

echo "tier-2 checks passed"
