#!/bin/sh
# Tier-2 verification: static vetting, the full test suite under the
# race detector (the pipeline's concurrency tests are written to be
# meaningful only under -race), the robustness false-positive gate at
# its full 10k-connection scale, and a fuzz smoke pass. Run from the
# repo root:
#
#	./scripts/check.sh
set -eu

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./... =="
go test -race ./...

# Re-run the robustness false-positive gate (10k benign connections
# per grade) focused and uncached, so a flake in the broad -race pass
# cannot mask it and its pass/fail is visible on its own line.
echo "== robustness false-positive gate (full scale) =="
go test ./internal/workload/ -run 'TestLossyGradeZeroFalsePositives' -count=1

echo "== fuzz smoke =="
./scripts/fuzz_smoke.sh

echo "tier-2 checks passed"
