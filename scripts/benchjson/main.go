// Command benchjson turns `go test -bench BenchmarkStreamPipeline`
// output into the machine-readable perf trajectory BENCH_pipeline.json
// (see EXPERIMENTS.md's Performance section for the schema and the
// recorded before/after numbers). It reads bench output on stdin —
// typically several -count runs — and writes, per workers×batch cell,
// the median of each custom metric the benchmark reports: conns/sec,
// ns/record, B/record, allocs/record. BenchmarkGeoLookup lines, when
// present, additionally record the geo range-cache delta as a
// geo_lookup section (uncached vs cached ns/op and their ratio);
// BenchmarkDecodeParallel and BenchmarkShardedIngest lines record the
// decode_parallel and sharded_ingest grids with their scaling ratios.
//
// Usage:
//
//	go test -run '^$' -bench StreamPipeline -count 5 . | benchjson -o BENCH_pipeline.json
//	benchjson -validate BENCH_pipeline.json
//
// -validate re-reads a previously written file and exits non-zero
// unless it is well-formed and covers at least one cell with positive
// throughput; scripts/check.sh uses it as the smoke gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Workers         int     `json:"workers"`
	Batch           int     `json:"batch"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	NsPerRecord     float64 `json:"ns_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// geoLookup records the per-record source-address resolution delta:
// raw binary search vs the per-worker range cache the streaming
// aggregators put in front of it (BenchmarkGeoLookup).
type geoLookup struct {
	UncachedNsPerOp float64 `json:"uncached_ns_per_op"`
	CachedNsPerOp   float64 `json:"cached_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// telemetryCell is one mode of BenchmarkStreamTelemetryOverhead in the
// same per-record units the workers×batch cells use.
type telemetryCell struct {
	RecordsPerSec   float64 `json:"records_per_sec"`
	NsPerRecord     float64 `json:"ns_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// telemetryOverhead records what an observability subsystem costs on
// the streaming hot path: the identical run with instruments detached
// vs attached. throughput_ratio is on/off (1.0 = free; the contract
// in EXPERIMENTS.md is >= 0.95); extra_allocs_per_record must stay
// ~0. The same shape records both the telemetry and the tracing
// (BenchmarkStreamTraceOverhead) deltas.
type telemetryOverhead struct {
	Off                  telemetryCell `json:"off"`
	On                   telemetryCell `json:"on"`
	ThroughputRatio      float64       `json:"throughput_ratio"`
	ExtraAllocsPerRecord float64       `json:"extra_allocs_per_record"`
}

// decodeParallelCell is one path×workers cell of
// BenchmarkDecodeParallel: path "scan" is the scanner + decode-in-
// worker front end (Stream's default), path "seq" the single-goroutine
// decode source it replaced.
type decodeParallelCell struct {
	Path            string  `json:"path"`
	Workers         int     `json:"workers"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	NsPerRecord     float64 `json:"ns_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// decodeParallel summarizes the decode-parallel grid. ScalingX is
// scan-path workers=16 throughput over workers=1 (the scaling gate's
// metric — meaningful only on multi-core hosts, so NumCPU is recorded
// beside it); SpeedupAt1 is scan/seq at workers=1, the work-placement
// win that shows even on one core.
type decodeParallel struct {
	NumCPU     int                  `json:"num_cpu"`
	Cells      []decodeParallelCell `json:"cells"`
	ScalingX   float64              `json:"scan_workers16_over_1"`
	SpeedupAt1 float64              `json:"scan_over_seq_workers1"`
}

// shardedIngestCell is one cell of BenchmarkShardedIngest: path "scan"
// is the single-scanner Stream baseline at 1 worker (shards recorded
// as 1), path "sharded" the segment-index multi-reader ShardedScan at
// the given shard count with the worker pool sized to match.
type shardedIngestCell struct {
	Path            string  `json:"path"`
	Shards          int     `json:"shards"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	NsPerRecord     float64 `json:"ns_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// shardedIngest summarizes the sharded-ingest grid. Shards8Over1 is
// sharded throughput at 8 shards over 1 shard (the scaling gate's
// metric, meaningful only with cores to spread over, so NumCPU is
// recorded beside it); Shards1OverScan is sharded-at-1 over the scan
// baseline — the cost of the segment indirection itself, which must
// stay ~1.0 even on a single-core host.
type shardedIngest struct {
	NumCPU          int                 `json:"num_cpu"`
	Cells           []shardedIngestCell `json:"cells"`
	Shards8Over1    float64             `json:"shards8_over_1"`
	Shards1OverScan float64             `json:"shards1_over_scan"`
}

// longitudinalGenCell is one preset×hours cell of
// BenchmarkLongitudinalGen: the virtual-time generator end to end
// (arrival expansion, packet simulation, TDCAP encode) over a long
// scenario window.
type longitudinalGenCell struct {
	Preset             string  `json:"preset"`
	Hours              int     `json:"hours"`
	ConnsPerSec        float64 `json:"conns_per_sec"`
	NsPerRecord        float64 `json:"ns_per_record"`
	VirtualHoursPerSec float64 `json:"virtual_hours_per_sec"`
}

// longitudinalGen summarizes the generator grid. The validator
// enforces the paper-scale contract on the recorded numbers: any
// >=336-hour cell must sustain enough virtual-hours/sec to generate a
// 14-day window in under a minute.
type longitudinalGen struct {
	Cells []longitudinalGenCell `json:"cells"`
}

type report struct {
	Benchmark       string             `json:"benchmark"`
	GoVersion       string             `json:"go_version"`
	CPU             string             `json:"cpu,omitempty"`
	Runs            int                `json:"runs"`
	Results         []result           `json:"results"`
	GeoLookup       *geoLookup         `json:"geo_lookup,omitempty"`
	Telemetry       *telemetryOverhead `json:"stream_telemetry_overhead,omitempty"`
	TraceOverhead   *telemetryOverhead `json:"stream_trace_overhead,omitempty"`
	DecodeParallel  *decodeParallel    `json:"decode_parallel,omitempty"`
	ShardedIngest   *shardedIngest     `json:"sharded_ingest,omitempty"`
	LongitudinalGen *longitudinalGen   `json:"longitudinal_gen,omitempty"`
}

var (
	nameRe      = regexp.MustCompile(`^BenchmarkStreamPipeline/workers=(\d+)/batch=(\d+)(?:-\d+)?$`)
	geoRe       = regexp.MustCompile(`^BenchmarkGeoLookup/mode=(cached|uncached)(?:-\d+)?$`)
	telemetryRe = regexp.MustCompile(`^BenchmarkStreamTelemetryOverhead/telemetry=(on|off)(?:-\d+)?$`)
	traceRe     = regexp.MustCompile(`^BenchmarkStreamTraceOverhead/trace=(on|off)(?:-\d+)?$`)
	decodeRe    = regexp.MustCompile(`^BenchmarkDecodeParallel/path=(scan|seq)/workers=(\d+)(?:-\d+)?$`)
	shardedRe   = regexp.MustCompile(`^BenchmarkShardedIngest/path=(scan|sharded)/(?:workers|shards)=(\d+)(?:-\d+)?$`)
	longGenRe   = regexp.MustCompile(`^BenchmarkLongitudinalGen/preset=([A-Za-z0-9_-]+)/hours=(\d+)(?:-\d+)?$`)
)

func main() {
	out := flag.String("o", "BENCH_pipeline.json", "output JSON path")
	validate := flag.String("validate", "", "validate an existing JSON file instead of aggregating")
	flag.Parse()

	if *validate != "" {
		if err := validateFile(*validate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid\n", *validate)
		return
	}

	rep, err := aggregate(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

type cell struct{ workers, batch int }

func aggregate(src *os.File) (*report, error) {
	samples := map[cell]map[string][]float64{}
	geoSamples := map[string][]float64{}
	telSamples := map[string]map[string][]float64{}
	trSamples := map[string]map[string][]float64{}
	type dpCell struct {
		path    string
		workers int
	}
	dpSamples := map[dpCell]map[string][]float64{}
	type siCell struct {
		path   string
		shards int
	}
	siSamples := map[siCell]map[string][]float64{}
	type lgCell struct {
		preset string
		hours  int
	}
	lgSamples := map[lgCell]map[string][]float64{}
	rep := &report{Benchmark: "BenchmarkStreamPipeline", GoVersion: runtime.Version()}
	runs := 0
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		if g := geoRe.FindStringSubmatch(fields[0]); g != nil {
			// Geo lines carry the standard ns/op pair right after the
			// iteration count.
			for i := 2; i+1 < len(fields); i += 2 {
				if fields[i+1] != "ns/op" {
					continue
				}
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					geoSamples[g[1]] = append(geoSamples[g[1]], v)
				}
			}
			continue
		}
		if tm := telemetryRe.FindStringSubmatch(fields[0]); tm != nil {
			if telSamples[tm[1]] == nil {
				telSamples[tm[1]] = map[string][]float64{}
			}
			for i := 2; i+1 < len(fields); i += 2 {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					telSamples[tm[1]][fields[i+1]] = append(telSamples[tm[1]][fields[i+1]], v)
				}
			}
			continue
		}
		if tm := traceRe.FindStringSubmatch(fields[0]); tm != nil {
			if trSamples[tm[1]] == nil {
				trSamples[tm[1]] = map[string][]float64{}
			}
			for i := 2; i+1 < len(fields); i += 2 {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					trSamples[tm[1]][fields[i+1]] = append(trSamples[tm[1]][fields[i+1]], v)
				}
			}
			continue
		}
		if dm := decodeRe.FindStringSubmatch(fields[0]); dm != nil {
			w, _ := strconv.Atoi(dm[2])
			c := dpCell{dm[1], w}
			if dpSamples[c] == nil {
				dpSamples[c] = map[string][]float64{}
			}
			for i := 2; i+1 < len(fields); i += 2 {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					dpSamples[c][fields[i+1]] = append(dpSamples[c][fields[i+1]], v)
				}
			}
			continue
		}
		if sm := shardedRe.FindStringSubmatch(fields[0]); sm != nil {
			// The scan baseline's "workers=1" suffix lands in the same
			// capture group as a shard count; record it as shards=1.
			n, _ := strconv.Atoi(sm[2])
			c := siCell{sm[1], n}
			if siSamples[c] == nil {
				siSamples[c] = map[string][]float64{}
			}
			for i := 2; i+1 < len(fields); i += 2 {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					siSamples[c][fields[i+1]] = append(siSamples[c][fields[i+1]], v)
				}
			}
			continue
		}
		if lg := longGenRe.FindStringSubmatch(fields[0]); lg != nil {
			h, _ := strconv.Atoi(lg[2])
			c := lgCell{lg[1], h}
			if lgSamples[c] == nil {
				lgSamples[c] = map[string][]float64{}
			}
			for i := 2; i+1 < len(fields); i += 2 {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					lgSamples[c][fields[i+1]] = append(lgSamples[c][fields[i+1]], v)
				}
			}
			continue
		}
		m := nameRe.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		workers, _ := strconv.Atoi(m[1])
		batch, _ := strconv.Atoi(m[2])
		c := cell{workers, batch}
		if samples[c] == nil {
			samples[c] = map[string][]float64{}
		}
		// After the name and iteration count, bench lines are
		// value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			samples[c][fields[i+1]] = append(samples[c][fields[i+1]], v)
		}
		if n := len(samples[c]["conns/sec"]); n > runs {
			runs = n
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no BenchmarkStreamPipeline lines on stdin")
	}
	rep.Runs = runs
	for c, units := range samples {
		rep.Results = append(rep.Results, result{
			Workers:         c.workers,
			Batch:           c.batch,
			RecordsPerSec:   median(units["conns/sec"]),
			NsPerRecord:     median(units["ns/record"]),
			BytesPerRecord:  median(units["B/record"]),
			AllocsPerRecord: median(units["allocs/record"]),
		})
	}
	sort.Slice(rep.Results, func(i, j int) bool {
		a, b := rep.Results[i], rep.Results[j]
		if a.Workers != b.Workers {
			return a.Workers < b.Workers
		}
		return a.Batch < b.Batch
	})
	if u, c := median(geoSamples["uncached"]), median(geoSamples["cached"]); u > 0 && c > 0 {
		rep.GeoLookup = &geoLookup{UncachedNsPerOp: u, CachedNsPerOp: c, Speedup: u / c}
	}
	telCell := func(mode string) telemetryCell {
		units := telSamples[mode]
		return telemetryCell{
			RecordsPerSec:   median(units["conns/sec"]),
			NsPerRecord:     median(units["ns/record"]),
			BytesPerRecord:  median(units["B/record"]),
			AllocsPerRecord: median(units["allocs/record"]),
		}
	}
	if off, on := telCell("off"), telCell("on"); off.RecordsPerSec > 0 && on.RecordsPerSec > 0 {
		rep.Telemetry = &telemetryOverhead{
			Off:                  off,
			On:                   on,
			ThroughputRatio:      on.RecordsPerSec / off.RecordsPerSec,
			ExtraAllocsPerRecord: on.AllocsPerRecord - off.AllocsPerRecord,
		}
	}
	trCell := func(mode string) telemetryCell {
		units := trSamples[mode]
		return telemetryCell{
			RecordsPerSec:   median(units["conns/sec"]),
			NsPerRecord:     median(units["ns/record"]),
			BytesPerRecord:  median(units["B/record"]),
			AllocsPerRecord: median(units["allocs/record"]),
		}
	}
	if off, on := trCell("off"), trCell("on"); off.RecordsPerSec > 0 && on.RecordsPerSec > 0 {
		rep.TraceOverhead = &telemetryOverhead{
			Off:                  off,
			On:                   on,
			ThroughputRatio:      on.RecordsPerSec / off.RecordsPerSec,
			ExtraAllocsPerRecord: on.AllocsPerRecord - off.AllocsPerRecord,
		}
	}
	if len(dpSamples) > 0 {
		dp := &decodeParallel{NumCPU: runtime.NumCPU()}
		for c, units := range dpSamples {
			dp.Cells = append(dp.Cells, decodeParallelCell{
				Path:            c.path,
				Workers:         c.workers,
				RecordsPerSec:   median(units["conns/sec"]),
				NsPerRecord:     median(units["ns/record"]),
				BytesPerRecord:  median(units["B/record"]),
				AllocsPerRecord: median(units["allocs/record"]),
			})
		}
		sort.Slice(dp.Cells, func(i, j int) bool {
			a, b := dp.Cells[i], dp.Cells[j]
			if a.Path != b.Path {
				return a.Path < b.Path // scan before seq
			}
			return a.Workers < b.Workers
		})
		at := func(path string, workers int) float64 {
			for _, c := range dp.Cells {
				if c.Path == path && c.Workers == workers {
					return c.RecordsPerSec
				}
			}
			return 0
		}
		if one := at("scan", 1); one > 0 {
			dp.ScalingX = at("scan", 16) / one
			if seq := at("seq", 1); seq > 0 {
				dp.SpeedupAt1 = one / seq
			}
		}
		rep.DecodeParallel = dp
	}
	if len(siSamples) > 0 {
		si := &shardedIngest{NumCPU: runtime.NumCPU()}
		for c, units := range siSamples {
			si.Cells = append(si.Cells, shardedIngestCell{
				Path:            c.path,
				Shards:          c.shards,
				RecordsPerSec:   median(units["conns/sec"]),
				NsPerRecord:     median(units["ns/record"]),
				BytesPerRecord:  median(units["B/record"]),
				AllocsPerRecord: median(units["allocs/record"]),
			})
		}
		sort.Slice(si.Cells, func(i, j int) bool {
			a, b := si.Cells[i], si.Cells[j]
			if a.Path != b.Path {
				return a.Path < b.Path // scan before sharded
			}
			return a.Shards < b.Shards
		})
		at := func(path string, shards int) float64 {
			for _, c := range si.Cells {
				if c.Path == path && c.Shards == shards {
					return c.RecordsPerSec
				}
			}
			return 0
		}
		if one := at("sharded", 1); one > 0 {
			si.Shards8Over1 = at("sharded", 8) / one
			if scan := at("scan", 1); scan > 0 {
				si.Shards1OverScan = one / scan
			}
		}
		rep.ShardedIngest = si
	}
	if len(lgSamples) > 0 {
		lg := &longitudinalGen{}
		for c, units := range lgSamples {
			lg.Cells = append(lg.Cells, longitudinalGenCell{
				Preset:             c.preset,
				Hours:              c.hours,
				ConnsPerSec:        median(units["conns/sec"]),
				NsPerRecord:        median(units["ns/record"]),
				VirtualHoursPerSec: median(units["virtual-hours/sec"]),
			})
		}
		sort.Slice(lg.Cells, func(i, j int) bool {
			a, b := lg.Cells[i], lg.Cells[j]
			if a.Preset != b.Preset {
				return a.Preset < b.Preset
			}
			return a.Hours < b.Hours
		})
		rep.LongitudinalGen = lg
	}
	return rep, nil
}

// median is the benchstat-style robust aggregate: the middle sample
// (or midpoint of the middle two), so a single noisy run cannot skew
// the recorded trajectory.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func validateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Benchmark == "" || rep.Runs < 1 || len(rep.Results) == 0 {
		return fmt.Errorf("%s: missing benchmark name, runs, or results", path)
	}
	for _, r := range rep.Results {
		if r.Workers < 1 || r.Batch < 1 {
			return fmt.Errorf("%s: result with invalid workers=%d batch=%d", path, r.Workers, r.Batch)
		}
		if r.RecordsPerSec <= 0 || r.NsPerRecord <= 0 {
			return fmt.Errorf("%s: workers=%d batch=%d has non-positive throughput", path, r.Workers, r.Batch)
		}
		if r.AllocsPerRecord < 0 || r.BytesPerRecord < 0 {
			return fmt.Errorf("%s: workers=%d batch=%d has negative allocation metrics", path, r.Workers, r.Batch)
		}
	}
	if g := rep.GeoLookup; g != nil {
		if g.UncachedNsPerOp <= 0 || g.CachedNsPerOp <= 0 || g.Speedup <= 0 {
			return fmt.Errorf("%s: geo_lookup has non-positive timings", path)
		}
	}
	if t := rep.Telemetry; t != nil {
		if t.Off.RecordsPerSec <= 0 || t.On.RecordsPerSec <= 0 || t.ThroughputRatio <= 0 {
			return fmt.Errorf("%s: stream_telemetry_overhead has non-positive throughput", path)
		}
	}
	if t := rep.TraceOverhead; t != nil {
		if t.Off.RecordsPerSec <= 0 || t.On.RecordsPerSec <= 0 || t.ThroughputRatio <= 0 {
			return fmt.Errorf("%s: stream_trace_overhead has non-positive throughput", path)
		}
		// The tracing hot-path contract: batch spans into lock-free
		// rings cost <=5% throughput and no per-record allocations.
		// Only enforced with enough runs for the median to hold.
		if rep.Runs >= 3 && t.ThroughputRatio < 0.95 {
			return fmt.Errorf("%s: stream_trace_overhead throughput ratio %.3f (gate requires >= 0.95)", path, t.ThroughputRatio)
		}
		if rep.Runs >= 3 && t.ExtraAllocsPerRecord > 0.05 {
			return fmt.Errorf("%s: stream_trace_overhead adds %.3f allocs/record (gate requires ~0)", path, t.ExtraAllocsPerRecord)
		}
	}
	if d := rep.DecodeParallel; d != nil {
		if len(d.Cells) == 0 || d.NumCPU < 1 {
			return fmt.Errorf("%s: decode_parallel is empty", path)
		}
		for _, c := range d.Cells {
			if (c.Path != "scan" && c.Path != "seq") || c.Workers < 1 || c.RecordsPerSec <= 0 {
				return fmt.Errorf("%s: decode_parallel cell path=%q workers=%d invalid", path, c.Path, c.Workers)
			}
		}
		// The scaling contract is enforced where the hardware can show
		// it; on a multi-core recording host a regressed ratio is a
		// stale or broken recording.
		if d.NumCPU >= 4 && d.ScalingX > 0 && d.ScalingX < 2 {
			return fmt.Errorf("%s: decode_parallel scan workers=16 is only %.2fx workers=1 on a %d-CPU host (gate requires >=2x)",
				path, d.ScalingX, d.NumCPU)
		}
	}
	if s := rep.ShardedIngest; s != nil {
		if len(s.Cells) == 0 || s.NumCPU < 1 {
			return fmt.Errorf("%s: sharded_ingest is empty", path)
		}
		for _, c := range s.Cells {
			if (c.Path != "scan" && c.Path != "sharded") || c.Shards < 1 || c.RecordsPerSec <= 0 {
				return fmt.Errorf("%s: sharded_ingest cell path=%q shards=%d invalid", path, c.Path, c.Shards)
			}
		}
		// Multi-core recording hosts must show the shard scaling the
		// feature exists for; a lower ratio is a stale or broken
		// recording.
		if s.NumCPU >= 4 && s.Shards8Over1 > 0 && s.Shards8Over1 < 2 {
			return fmt.Errorf("%s: sharded_ingest shards=8 is only %.2fx shards=1 on a %d-CPU host (gate requires >=2x)",
				path, s.Shards8Over1, s.NumCPU)
		}
		// On a single-core host sharding cannot win, but the segment
		// indirection must also not cost anything real: shards=1 must
		// stay within 5% of the plain scan path. Only enforced with
		// enough runs for the median to mean something.
		if s.NumCPU == 1 && rep.Runs >= 3 && s.Shards1OverScan > 0 && s.Shards1OverScan < 0.95 {
			return fmt.Errorf("%s: sharded_ingest shards=1 runs at %.2fx the scan path on a 1-CPU host (gate requires >=0.95x)",
				path, s.Shards1OverScan)
		}
	}
	if l := rep.LongitudinalGen; l != nil {
		if len(l.Cells) == 0 {
			return fmt.Errorf("%s: longitudinal_gen is empty", path)
		}
		for _, c := range l.Cells {
			if c.Preset == "" || c.Hours < 1 || c.ConnsPerSec <= 0 || c.VirtualHoursPerSec <= 0 {
				return fmt.Errorf("%s: longitudinal_gen cell preset=%q hours=%d invalid", path, c.Preset, c.Hours)
			}
			// The acceptance contract of the virtual-time generator: a
			// 14-day window must generate in under a minute, i.e. any
			// paper-scale cell must sustain >= 336/60 virtual-hours/sec.
			if c.Hours >= 336 && c.VirtualHoursPerSec < 336.0/60 {
				return fmt.Errorf("%s: longitudinal_gen preset=%s hours=%d sustains only %.2f virtual-hours/sec (a 14-day window would exceed 60 s)",
					path, c.Preset, c.Hours, c.VirtualHoursPerSec)
			}
		}
	}
	return nil
}
