package tlswire

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildParseRoundTrip(t *testing.T) {
	hello := BuildClientHello(ClientHelloSpec{ServerName: "blocked.example.com"})
	got, err := ParseSNI(hello)
	if err != nil {
		t.Fatalf("ParseSNI: %v", err)
	}
	if got != "blocked.example.com" {
		t.Errorf("SNI = %q, want %q", got, "blocked.example.com")
	}
}

func TestBuildWithSessionIDAndCiphers(t *testing.T) {
	spec := ClientHelloSpec{
		ServerName:   "a.example",
		SessionID:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
		CipherSuites: []uint16{0x1301},
	}
	hello := BuildClientHello(spec)
	got, err := ParseSNI(hello)
	if err != nil || got != "a.example" {
		t.Fatalf("SNI = %q, %v", got, err)
	}
}

func TestNoSNI(t *testing.T) {
	hello := BuildClientHello(ClientHelloSpec{})
	if _, err := ParseSNI(hello); err != ErrNoSNI {
		t.Errorf("err = %v, want ErrNoSNI", err)
	}
}

func TestLooksLikeClientHello(t *testing.T) {
	hello := BuildClientHello(ClientHelloSpec{ServerName: "x.example"})
	if !LooksLikeClientHello(hello) {
		t.Error("built hello not recognized")
	}
	if LooksLikeClientHello(hello[:5]) {
		t.Error("5-byte prefix should not be recognized")
	}
	if LooksLikeClientHello([]byte("GET / HTTP/1.1\r\n")) {
		t.Error("HTTP recognized as ClientHello")
	}
	if LooksLikeClientHello(nil) {
		t.Error("nil recognized as ClientHello")
	}
}

func TestParseSNITruncated(t *testing.T) {
	hello := BuildClientHello(ClientHelloSpec{ServerName: "very-long-domain-name.example.org"})
	// The SNI extension is emitted first; even an aggressively truncated
	// capture that still contains the full name must parse.
	for cut := len(hello); cut > 0; cut-- {
		got, err := ParseSNI(hello[:cut])
		if err == nil && got == "very-long-domain-name.example.org" {
			continue // full name recovered
		}
		if err == nil && !strings.HasPrefix("very-long-domain-name.example.org", got) {
			t.Fatalf("cut=%d: got unrelated name %q", cut, got)
		}
		// Once errors start appearing, shorter prefixes may also error;
		// the key property is no garbage names, checked above.
	}
	// A capture holding everything through the full SNI name must succeed.
	full := BuildClientHello(ClientHelloSpec{ServerName: "short.example"})
	// Find the name bytes and cut immediately after them.
	idx := strings.Index(string(full), "short.example")
	if idx < 0 {
		t.Fatal("name not found in wire bytes")
	}
	got, err := ParseSNI(full[:idx+len("short.example")])
	if err != nil || got != "short.example" {
		t.Errorf("truncated-after-name parse = %q, %v", got, err)
	}
}

func TestParseSNIRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte{22},
		[]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"),
		{22, 3, 1, 0, 5, 2, 0, 0, 1, 0}, // ServerHello, not ClientHello
	}
	for i, c := range cases {
		if _, err := ParseSNI(c); err == nil {
			t.Errorf("case %d: ParseSNI accepted garbage", i)
		}
	}
}

// TestParseSNIQuick property-tests that any hostname round-trips and
// that random mutations never panic.
func TestParseSNIQuick(t *testing.T) {
	f := func(rnd [32]byte, nameBytes []byte) bool {
		// Build a printable name from arbitrary bytes.
		name := make([]byte, 0, len(nameBytes)%64)
		for _, b := range nameBytes {
			if len(name) >= 63 {
				break
			}
			name = append(name, 'a'+b%26)
		}
		if len(name) == 0 {
			name = []byte("x")
		}
		hello := BuildClientHello(ClientHelloSpec{ServerName: string(name), Random: rnd})
		got, err := ParseSNI(hello)
		return err == nil && got == string(name)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestParseSNINeverPanics feeds truncations and bit flips of a valid
// hello; the parser must return errors, not panic.
func TestParseSNINeverPanics(t *testing.T) {
	hello := BuildClientHello(ClientHelloSpec{ServerName: "panic-proof.example"})
	for cut := 0; cut <= len(hello); cut++ {
		_, _ = ParseSNI(hello[:cut])
	}
	for i := range hello {
		mut := append([]byte{}, hello...)
		mut[i] ^= 0xff
		_, _ = ParseSNI(mut)
	}
}

func BenchmarkBuildClientHello(b *testing.B) {
	spec := ClientHelloSpec{ServerName: "www.example.com"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = BuildClientHello(spec)
	}
}

func BenchmarkParseSNI(b *testing.B) {
	hello := BuildClientHello(ClientHelloSpec{ServerName: "www.example.com"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSNI(hello); err != nil {
			b.Fatal(err)
		}
	}
}
