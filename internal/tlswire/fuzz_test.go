package tlswire

import "testing"

// FuzzParseSNI exercises the ClientHello parser with arbitrary bytes;
// it must never panic and must round-trip its own builder output.
func FuzzParseSNI(f *testing.F) {
	f.Add(BuildClientHello(ClientHelloSpec{ServerName: "seed.example"}))
	f.Add(BuildClientHello(ClientHelloSpec{}))
	f.Add([]byte{22, 3, 1, 0, 5, 1, 0, 0, 1, 0})
	f.Add([]byte("GET / HTTP/1.1\r\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sni, err := ParseSNI(data)
		if err == nil && len(sni) > len(data) {
			t.Fatalf("SNI %q longer than input", sni)
		}
	})
}

// FuzzBuildParse checks build→parse identity over arbitrary name bytes.
func FuzzBuildParse(f *testing.F) {
	f.Add([]byte("example.com"), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, nameRaw, sid []byte) {
		name := make([]byte, 0, 64)
		for _, b := range nameRaw {
			if len(name) >= 63 {
				break
			}
			name = append(name, 'a'+b%26)
		}
		if len(name) == 0 {
			return
		}
		hello := BuildClientHello(ClientHelloSpec{ServerName: string(name), SessionID: sid})
		got, err := ParseSNI(hello)
		if err != nil {
			t.Fatalf("ParseSNI(built): %v", err)
		}
		if got != string(name) {
			t.Fatalf("round trip %q -> %q", name, got)
		}
	})
}
