// Package tlswire builds and parses the single TLS message that matters
// to connection-tampering analysis: the ClientHello, whose cleartext
// Server Name Indication (SNI) extension is the dominant trigger for
// HTTPS blocking (paper §2.1).
//
// The builder emits a wire-accurate TLS 1.2/1.3-compatible ClientHello
// record; the parser extracts the SNI from arbitrary (possibly
// truncated) captured bytes, because the capture pipeline stores at most
// the first packets of a connection and a ClientHello may be split.
package tlswire

import (
	"encoding/binary"
	"errors"
)

// TLS record and handshake constants.
const (
	RecordTypeHandshake   = 22
	HandshakeClientHello  = 1
	VersionTLS10          = 0x0301
	VersionTLS12          = 0x0303
	ExtensionServerName   = 0
	ExtensionSupportedVer = 43
	sniHostNameType       = 0
)

// Parse errors.
var (
	ErrNotHandshake   = errors.New("tlswire: not a TLS handshake record")
	ErrNotClientHello = errors.New("tlswire: not a ClientHello")
	ErrTruncated      = errors.New("tlswire: truncated message")
	ErrNoSNI          = errors.New("tlswire: no server_name extension")
)

// ClientHelloSpec describes the ClientHello to build.
type ClientHelloSpec struct {
	ServerName   string   // SNI; empty omits the extension
	Random       [32]byte // client random
	SessionID    []byte   // up to 32 bytes
	CipherSuites []uint16 // defaults to a modern set if empty
	ALPN         []string // ignored unless non-empty (kept minimal)
}

var defaultCiphers = []uint16{0x1301, 0x1302, 0x1303, 0xc02f, 0xc030}

// BuildClientHello serializes a TLS handshake record containing a
// ClientHello per the spec.
func BuildClientHello(spec ClientHelloSpec) []byte {
	ciphers := spec.CipherSuites
	if len(ciphers) == 0 {
		ciphers = defaultCiphers
	}

	// Extensions.
	var ext []byte
	if spec.ServerName != "" {
		name := []byte(spec.ServerName)
		// server_name extension: list length (2) + type (1) + name length (2) + name
		sni := make([]byte, 0, 5+len(name))
		sni = append16(sni, uint16(3+len(name)))
		sni = append(sni, sniHostNameType)
		sni = append16(sni, uint16(len(name)))
		sni = append(sni, name...)
		ext = append16(ext, ExtensionServerName)
		ext = append16(ext, uint16(len(sni)))
		ext = append(ext, sni...)
	}
	// supported_versions advertising TLS 1.3 and 1.2, so middleboxes
	// that look for it see a realistic hello.
	sv := []byte{4, 0x03, 0x04, 0x03, 0x03}
	ext = append16(ext, ExtensionSupportedVer)
	ext = append16(ext, uint16(len(sv)))
	ext = append(ext, sv...)

	// ClientHello body.
	body := make([]byte, 0, 128+len(ext))
	body = append16(body, VersionTLS12)
	body = append(body, spec.Random[:]...)
	sid := spec.SessionID
	if len(sid) > 32 {
		sid = sid[:32]
	}
	body = append(body, byte(len(sid)))
	body = append(body, sid...)
	body = append16(body, uint16(2*len(ciphers)))
	for _, c := range ciphers {
		body = append16(body, c)
	}
	body = append(body, 1, 0) // compression methods: null only
	body = append16(body, uint16(len(ext)))
	body = append(body, ext...)

	// Handshake header.
	hs := make([]byte, 0, 4+len(body))
	hs = append(hs, HandshakeClientHello)
	hs = append(hs, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	hs = append(hs, body...)

	// Record header.
	rec := make([]byte, 0, 5+len(hs))
	rec = append(rec, RecordTypeHandshake)
	rec = append16(rec, VersionTLS10) // legacy record version
	rec = append16(rec, uint16(len(hs)))
	rec = append(rec, hs...)
	return rec
}

func append16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

// LooksLikeClientHello reports whether data plausibly begins with a TLS
// ClientHello record, tolerating truncation after the first 6 bytes.
// This is the check the paper runs on SYN payloads (§4.1: "only 0.02% of
// SYN packets contained a valid TLS Client Hello").
func LooksLikeClientHello(data []byte) bool {
	if len(data) < 6 {
		return false
	}
	return data[0] == RecordTypeHandshake &&
		data[1] == 0x03 && data[2] <= 0x04 &&
		data[5] == HandshakeClientHello
}

// ParseSNI extracts the server name from a captured ClientHello. It
// tolerates records truncated by the capture pipeline: if the SNI
// extension itself is present in the captured prefix it is returned even
// when the record claims more bytes than were captured.
func ParseSNI(data []byte) (string, error) {
	name, err := SNIBytes(data)
	if err != nil {
		return "", err
	}
	return string(name), nil
}

// SNIBytes is the allocation-free core of ParseSNI: the returned name
// is a subslice of data (aliasing it — copy before reuse), which lets
// the classification hot path intern repeated domains instead of
// allocating a string per connection.
func SNIBytes(data []byte) ([]byte, error) {
	if len(data) < 5 || data[0] != RecordTypeHandshake {
		return nil, ErrNotHandshake
	}
	body := data[5:]
	if len(body) < 4 || body[0] != HandshakeClientHello {
		return nil, ErrNotClientHello
	}
	p := body[4:] // skip handshake header
	// client_version(2) + random(32)
	if len(p) < 35 {
		return nil, ErrTruncated
	}
	p = p[34:]
	// session id
	sidLen := int(p[0])
	if len(p) < 1+sidLen+2 {
		return nil, ErrTruncated
	}
	p = p[1+sidLen:]
	// cipher suites
	csLen := int(binary.BigEndian.Uint16(p))
	if len(p) < 2+csLen+1 {
		return nil, ErrTruncated
	}
	p = p[2+csLen:]
	// compression methods
	cmLen := int(p[0])
	if len(p) < 1+cmLen+2 {
		return nil, ErrTruncated
	}
	p = p[1+cmLen:]
	// extensions
	extLen := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if extLen < len(p) {
		p = p[:extLen]
	}
	for len(p) >= 4 {
		typ := binary.BigEndian.Uint16(p)
		l := int(binary.BigEndian.Uint16(p[2:]))
		p = p[4:]
		if l > len(p) {
			// Truncated extension: only usable if it is the SNI and
			// enough of the name survived.
			if typ == ExtensionServerName {
				return parseSNIExtension(p)
			}
			return nil, ErrTruncated
		}
		if typ == ExtensionServerName {
			return parseSNIExtension(p[:l])
		}
		p = p[l:]
	}
	return nil, ErrNoSNI
}

// parseSNIExtension parses the server_name extension body, tolerating a
// truncated tail. The returned name aliases p.
func parseSNIExtension(p []byte) ([]byte, error) {
	if len(p) < 5 {
		return nil, ErrTruncated
	}
	// list length (2), then entry: type(1) + length(2) + name
	if p[2] != sniHostNameType {
		return nil, ErrNoSNI
	}
	nameLen := int(binary.BigEndian.Uint16(p[3:5]))
	name := p[5:]
	if nameLen <= len(name) {
		name = name[:nameLen]
	} else if len(name) == 0 {
		return nil, ErrTruncated
	}
	return name, nil
}
