// Package simtime is the shared discrete-event virtual-time core: a
// heap-backed event queue with a deterministic clock and cancellable
// timers. It was extracted verbatim from internal/netsim (which keeps
// type aliases, so per-connection simulation semantics are
// byte-identical — pinned by workload's TestSimCorpusGolden) so that
// the workload layer can schedule *connection arrivals* on the same
// engine the packet-level simulator uses for retransmission timers:
// one clock abstraction spans everything from a 14-day scenario window
// down to a sub-millisecond RTO, and capture timestamps fall out of
// virtual time instead of being painted on.
//
// An Engine is single-threaded by design: determinism comes from the
// (time, schedule-order) total order of its queue, so two runs with
// the same seed replay the exact same event sequence. Run one Engine
// per goroutine.
package simtime

import (
	"container/heap"
	"time"
)

// Time is virtual time, in nanoseconds since scenario start.
type Time int64

// Add shifts the time by a standard duration.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Seconds returns the time in (floating point) seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Unix returns the whole-second timestamp the capture pipeline records
// (the paper's 1-second granularity).
func (t Time) Unix() int64 { return int64(t) / 1e9 }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tiebreaker preserving schedule order
	fn   func()
	dead bool
	idx  int
}

// Timer handles allow cancelling a scheduled event (e.g. a TCP
// retransmission timer that was answered).
type Timer struct{ ev *event }

// Stop cancels the timer if it has not fired. Safe to call repeatedly
// and on a zero Timer.
func (t Timer) Stop() {
	if t.ev != nil {
		t.ev.dead = true
	}
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; run one Engine per goroutine.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
	// Steps counts processed events, a cheap runaway guard for tests.
	Steps int
}

// New returns an engine starting at the given virtual time.
func New(start Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (s *Engine) Now() Time { return s.now }

// Schedule runs fn after d of virtual time and returns a cancellable
// handle. A negative d schedules immediately.
func (s *Engine) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt runs fn at the given absolute virtual time and returns a
// cancellable handle. A time in the past schedules at the current
// instant (the event still runs, after already-queued events at now).
func (s *Engine) ScheduleAt(at Time, fn func()) Timer {
	if at < s.now {
		at = s.now
	}
	s.seq++
	ev := &event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.queue, ev)
	return Timer{ev: ev}
}

// Run processes events until the queue is empty or maxSteps events have
// run (0 means no limit). It returns the number of events processed.
func (s *Engine) Run(maxSteps int) int {
	n := 0
	for len(s.queue) > 0 {
		if maxSteps > 0 && n >= maxSteps {
			break
		}
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		ev.fn()
		n++
		s.Steps++
	}
	return n
}

// RunUntil processes events with at ≤ deadline, advancing the clock to
// the deadline afterwards.
func (s *Engine) RunUntil(deadline Time) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		ev.fn()
		s.Steps++
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of live events still queued.
func (s *Engine) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
