package simtime

import (
	"testing"
	"time"
)

func TestEventOrderAndClock(t *testing.T) {
	s := New(0)
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() {
		order = append(order, 2)
		if s.Now() != Time(20*time.Millisecond) {
			t.Errorf("Now = %d inside event at 20ms", s.Now())
		}
	})
	if n := s.Run(0); n != 3 {
		t.Fatalf("Run processed %d events", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Errorf("final Now = %d", s.Now())
	}
}

// TestTieBreakPreservesScheduleOrder pins the determinism contract:
// events at the same instant run in the order they were scheduled.
func TestTieBreakPreservesScheduleOrder(t *testing.T) {
	s := New(0)
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order not FIFO: %v", order)
		}
	}
}

func TestScheduleAt(t *testing.T) {
	s := New(Time(5 * time.Second))
	var at []Time
	s.ScheduleAt(Time(7*time.Second), func() { at = append(at, s.Now()) })
	// Past deadlines clamp to now instead of rewinding the clock.
	s.ScheduleAt(Time(time.Second), func() { at = append(at, s.Now()) })
	s.Run(0)
	if len(at) != 2 || at[0] != Time(5*time.Second) || at[1] != Time(7*time.Second) {
		t.Fatalf("fire times = %v", at)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(0)
	fired := false
	tm := s.Schedule(time.Millisecond, func() { fired = true })
	tm.Stop()
	tm.Stop() // idempotent
	(Timer{}).Stop()
	if n := s.Run(0); n != 0 || fired {
		t.Fatalf("cancelled event ran (n=%d fired=%v)", n, fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(0)
	var fired []int
	s.Schedule(time.Second, func() { fired = append(fired, 1) })
	s.Schedule(3*time.Second, func() { fired = append(fired, 3) })
	s.RunUntil(Time(2 * time.Second))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != Time(2*time.Second) {
		t.Errorf("Now = %d after RunUntil", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run(0)
	if len(fired) != 2 || s.Now() != Time(3*time.Second) {
		t.Fatalf("fired = %v, Now = %d", fired, s.Now())
	}
}

func TestMaxStepsGuard(t *testing.T) {
	s := New(0)
	var reschedule func()
	reschedule = func() { s.Schedule(time.Millisecond, reschedule) }
	s.Schedule(0, reschedule)
	if n := s.Run(100); n != 100 {
		t.Fatalf("Run(100) processed %d", n)
	}
	if s.Steps != 100 {
		t.Errorf("Steps = %d", s.Steps)
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(90*time.Second + 500*time.Millisecond)
	if tm.Unix() != 90 {
		t.Errorf("Unix = %d", tm.Unix())
	}
	if tm.Seconds() != 90.5 {
		t.Errorf("Seconds = %f", tm.Seconds())
	}
	if tm.Add(500*time.Millisecond) != Time(91*time.Second) {
		t.Errorf("Add broken")
	}
}
