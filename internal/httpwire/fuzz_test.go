package httpwire

import "testing"

// FuzzParseRequest exercises the HTTP parser with arbitrary bytes.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: x.example\r\n\r\n"))
	f.Add([]byte("POST"))
	f.Add([]byte("\x16\x03\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		if req.Method == "" {
			t.Fatal("parsed request with empty method")
		}
		if len(req.Host) > len(data) {
			t.Fatal("host longer than input")
		}
	})
}
