package httpwire

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildParseRoundTrip(t *testing.T) {
	raw := BuildRequest("GET", "news.example.com", "/politics?id=7", map[string]string{"User-Agent": "probe/1.0"})
	req, err := ParseRequest(raw)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if req.Method != "GET" || req.Target != "/politics?id=7" || req.Proto != "HTTP/1.1" {
		t.Errorf("request line = %q %q %q", req.Method, req.Target, req.Proto)
	}
	if req.Host != "news.example.com" {
		t.Errorf("Host = %q", req.Host)
	}
	if req.Headers["user-agent"] != "probe/1.0" {
		t.Errorf("User-Agent = %q", req.Headers["user-agent"])
	}
	if !req.Complete {
		t.Error("Complete = false for full request")
	}
}

func TestBuildDefaults(t *testing.T) {
	raw := BuildRequest("", "h.example", "", nil)
	req, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Target != "/" {
		t.Errorf("defaults = %q %q, want GET /", req.Method, req.Target)
	}
}

func TestParseTruncated(t *testing.T) {
	raw := BuildRequest("GET", "host.example", "/x", nil)
	// Cut right after the Host header value: host must still parse.
	idx := strings.Index(string(raw), "host.example") + len("host.example")
	req, err := ParseRequest(raw[:idx])
	if err != nil {
		t.Fatalf("ParseRequest(truncated): %v", err)
	}
	if req.Host != "host.example" {
		t.Errorf("Host = %q from truncated capture", req.Host)
	}
	if req.Complete {
		t.Error("Complete = true for truncated request")
	}
}

func TestLooksLikeRequest(t *testing.T) {
	yes := [][]byte{
		[]byte("GET / HTTP/1.1\r\n"),
		[]byte("POST /submit HTTP/1.1\r\n"),
		[]byte("GE"), // truncated method prefix
	}
	no := [][]byte{
		nil,
		[]byte("\x16\x03\x01\x02\x00\x01"), // TLS
		[]byte("HELO smtp.example"),
		[]byte("GETX / HTTP/1.1"),
	}
	for _, c := range yes {
		if !LooksLikeRequest(c) {
			t.Errorf("LooksLikeRequest(%q) = false", c)
		}
	}
	for _, c := range no {
		if LooksLikeRequest(c) {
			t.Errorf("LooksLikeRequest(%q) = true", c)
		}
	}
}

func TestHostOf(t *testing.T) {
	raw := BuildRequest("GET", "target.example.org", "/", nil)
	if got := HostOf(raw); got != "target.example.org" {
		t.Errorf("HostOf = %q", got)
	}
	if got := HostOf([]byte("\x16\x03\x01")); got != "" {
		t.Errorf("HostOf(TLS) = %q, want empty", got)
	}
}

func TestParseRejectsNonHTTP(t *testing.T) {
	if _, err := ParseRequest([]byte("\x16\x03\x01 TLS bytes")); err != ErrNotHTTP {
		t.Errorf("err = %v, want ErrNotHTTP", err)
	}
}

func TestHeaderCaseInsensitive(t *testing.T) {
	raw := []byte("GET / HTTP/1.1\r\nHOST: upper.example\r\n\r\n")
	req, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if req.Host != "upper.example" {
		t.Errorf("Host = %q, want upper.example", req.Host)
	}
}

// TestParseQuick property-tests that any host and path round-trip.
func TestParseQuick(t *testing.T) {
	f := func(hostBytes, pathBytes []byte) bool {
		host := sanitize(hostBytes, 40)
		if host == "" {
			host = "h"
		}
		path := "/" + sanitize(pathBytes, 40)
		raw := BuildRequest("GET", host, path, nil)
		req, err := ParseRequest(raw)
		return err == nil && req.Host == host && req.Target == path && req.Complete
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(b []byte, max int) string {
	out := make([]byte, 0, max)
	for _, c := range b {
		if len(out) >= max {
			break
		}
		out = append(out, 'a'+c%26)
	}
	return string(out)
}

// TestParseNeverPanics exercises truncations of a real request.
func TestParseNeverPanics(t *testing.T) {
	raw := BuildRequest("POST", "x.example", "/p", map[string]string{"A": "b"})
	for cut := 0; cut <= len(raw); cut++ {
		_, _ = ParseRequest(raw[:cut])
	}
}

func BenchmarkParseRequest(b *testing.B) {
	raw := BuildRequest("GET", "bench.example.com", "/path/to/resource", map[string]string{"User-Agent": "bench"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}
