// Package httpwire builds and parses cleartext HTTP/1.x requests — the
// other tampering trigger visible to middleboxes (paper §2.1: forbidden
// domain names in Host headers, keywords in GET requests).
//
// It is deliberately not net/http: the classifier must parse *partial*
// requests from truncated captures and must never normalize away the
// raw bytes a middlebox would have matched on.
package httpwire

import (
	"bytes"
	"errors"
	"strings"
)

// Request is a parsed (possibly partial) HTTP/1.x request.
type Request struct {
	Method  string
	Target  string // request-target as sent, e.g. "/news?id=3"
	Proto   string // e.g. "HTTP/1.1"
	Host    string // Host header value, if captured
	Headers map[string]string
	// Complete reports whether the full header block (terminating
	// CRLFCRLF) was present in the captured bytes.
	Complete bool
}

// Parse errors.
var (
	ErrNotHTTP = errors.New("httpwire: does not start with an HTTP method")
)

// BuildRequest serializes a simple HTTP/1.1 GET-style request.
func BuildRequest(method, host, target string, headers map[string]string) []byte {
	var b strings.Builder
	if method == "" {
		method = "GET"
	}
	if target == "" {
		target = "/"
	}
	b.WriteString(method)
	b.WriteByte(' ')
	b.WriteString(target)
	b.WriteString(" HTTP/1.1\r\nHost: ")
	b.WriteString(host)
	b.WriteString("\r\n")
	for k, v := range headers {
		b.WriteString(k)
		b.WriteString(": ")
		b.WriteString(v)
		b.WriteString("\r\n")
	}
	b.WriteString("\r\n")
	return []byte(b.String())
}

// methods we accept as the start of a request line. Middleboxes
// typically match these token prefixes too.
var methods = []string{"GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "CONNECT", "PATCH", "TRACE"}

// LooksLikeRequest reports whether data plausibly begins with an HTTP
// request line. Used for SYN-payload analysis (§4.1) and protocol
// classification of captured data packets. It never allocates: this
// runs once per captured payload on the classification hot path.
func LooksLikeRequest(data []byte) bool {
	if len(data) == 0 {
		return false
	}
	for _, m := range methods {
		if len(data) > len(m) && data[len(m)] == ' ' && string(data[:len(m)]) == m {
			return true
		}
		// A truncated capture may cut mid-method; accept a prefix of a
		// method only if the data is shorter than the method itself.
		if len(data) < len(m) && string(data) == m[:len(data)] {
			return true
		}
	}
	return false
}

// ParseRequest parses as much of an HTTP request as the captured bytes
// allow. A request line alone yields Method/Target/Proto; a Host header
// in the captured prefix yields Host even if the header block is
// incomplete.
func ParseRequest(data []byte) (*Request, error) {
	if !LooksLikeRequest(data) {
		return nil, ErrNotHTTP
	}
	s := string(data)
	req := &Request{Headers: make(map[string]string)}
	head, _, complete := strings.Cut(s, "\r\n\r\n")
	req.Complete = complete
	lines := strings.Split(head, "\r\n")
	// Request line.
	parts := strings.SplitN(lines[0], " ", 3)
	req.Method = parts[0]
	if len(parts) > 1 {
		req.Target = parts[1]
	}
	if len(parts) > 2 {
		req.Proto = parts[2]
	}
	// Headers; the final line may be truncated mid-header, which we
	// keep only if it already has a colon.
	for _, line := range lines[1:] {
		k, v, ok := strings.Cut(line, ":")
		if !ok || k == "" {
			continue
		}
		key := strings.ToLower(strings.TrimSpace(k))
		val := strings.TrimSpace(v)
		req.Headers[key] = val
		if key == "host" {
			req.Host = val
		}
	}
	return req, nil
}

// HostOf is a convenience that extracts only the Host header (the
// middlebox trigger) from captured request bytes, or "" if absent.
func HostOf(data []byte) string {
	return string(HostBytes(data))
}

var (
	crlfcrlf = []byte("\r\n\r\n")
	hostKey  = []byte("host")
)

// HostBytes is the allocation-free core of HostOf: it returns the Host
// header value as a subslice of data, or nil if absent. The hot
// classification path interns the result instead of paying a string
// allocation per captured payload; the returned slice aliases data and
// must be copied before data is reused.
func HostBytes(data []byte) []byte {
	if !LooksLikeRequest(data) {
		return nil
	}
	head := data
	if i := bytes.Index(data, crlfcrlf); i >= 0 {
		head = data[:i]
	}
	// Walk header lines past the request line, mirroring ParseRequest:
	// keys compare case-insensitively and a later Host header wins. The
	// final line may be truncated mid-header, which counts only if its
	// colon survived.
	var host []byte
	first := true
	for len(head) > 0 {
		line := head
		if i := bytes.Index(head, crlfcrlf[:2]); i >= 0 {
			line, head = head[:i], head[i+2:]
		} else {
			head = nil
		}
		if first {
			first = false
			continue
		}
		c := bytes.IndexByte(line, ':')
		if c <= 0 {
			continue
		}
		if bytes.EqualFold(bytes.TrimSpace(line[:c]), hostKey) {
			host = bytes.TrimSpace(line[c+1:])
		}
	}
	return host
}
