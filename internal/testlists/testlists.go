// Package testlists models the active-measurement test lists the paper
// evaluates in §5.5 (Table 3): popularity rankings (Tranco, Majestic)
// and curated censorship lists (Citizen Lab, GreatFire), plus the
// coverage computation — what fraction of passively-observed tampered
// domains each list would have caught, by exact eTLD+1 match and by the
// substring best case.
package testlists

import (
	"math/rand/v2"
	"sort"
	"strings"

	"tamperdetect/internal/domains"
)

// List is a named set of test-list entries (registrable domains).
type List struct {
	Name    string
	Entries []string
	set     map[string]bool
}

// NewList builds a list and its lookup set.
func NewList(name string, entries []string) *List {
	l := &List{Name: name, Entries: entries, set: make(map[string]bool, len(entries))}
	for _, e := range entries {
		l.set[ETLDPlusOne(e)] = true
	}
	return l
}

// Len reports the number of entries.
func (l *List) Len() int { return len(l.Entries) }

// ContainsExact reports whether the domain's eTLD+1 is in the list.
func (l *List) ContainsExact(domain string) bool {
	return l.set[ETLDPlusOne(domain)]
}

// ContainsSubstring reports whether the domain appears as a substring
// of any list entry or vice versa — the §5.5 "best case" accounting for
// censors that over-block on substrings (e.g. Turkmenistan's wn.com).
func (l *List) ContainsSubstring(domain string) bool {
	d := ETLDPlusOne(domain)
	if l.set[d] {
		return true
	}
	for _, e := range l.Entries {
		if strings.Contains(e, d) || strings.Contains(d, e) {
			return true
		}
	}
	return false
}

// Union merges lists into one.
func Union(name string, lists ...*List) *List {
	var entries []string
	seen := map[string]bool{}
	for _, l := range lists {
		for _, e := range l.Entries {
			if !seen[e] {
				seen[e] = true
				entries = append(entries, e)
			}
		}
	}
	return NewList(name, entries)
}

// multiSuffixes are the multi-label public suffixes our universe and
// tests use; everything else is treated as a single-label TLD.
var multiSuffixes = map[string]bool{
	"co.uk": true, "com.cn": true, "com.br": true, "co.kr": true,
	"com.tr": true, "org.uk": true,
}

// ETLDPlusOne reduces a hostname to its registrable domain: the public
// suffix plus one label. Unknown suffixes are assumed single-label.
func ETLDPlusOne(host string) string {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	labels := strings.Split(host, ".")
	if len(labels) <= 2 {
		return host
	}
	// Check a two-label public suffix.
	last2 := strings.Join(labels[len(labels)-2:], ".")
	if multiSuffixes[last2] && len(labels) >= 3 {
		return strings.Join(labels[len(labels)-3:], ".")
	}
	return last2
}

// BuildConfig controls synthetic list construction from a domain
// universe.
type BuildConfig struct {
	Seed uint64
	// PopularityNoise perturbs ranks when building top-K lists, so the
	// lists imperfectly track true popularity as real rankings do.
	PopularityNoise float64
	// CuratedCoverage is the probability that a sensitive-category
	// domain makes it onto a curated censorship list (test lists are
	// incomplete — the paper's central finding in §5.5).
	CuratedCoverage float64
}

// DefaultBuildConfig mirrors the real lists' character.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{Seed: 7, PopularityNoise: 0.35, CuratedCoverage: 0.4}
}

// Suite is the set of lists Table 3 evaluates.
type Suite struct {
	Tranco1K, Tranco10K, Tranco100K, Tranco1M         *List
	Majestic1K, Majestic10K, Majestic100K, Majestic1M *List
	GreatfireAll, Greatfire30d                        *List
	CitizenLab, CitizenLabGlobal                      *List
	// CitizenLabCountry maps country code → country-specific list.
	CitizenLabCountry map[string]*List
}

// Lists returns the suite rows in Table 3 order (excluding unions,
// which callers build with Union).
func (s *Suite) Lists() []*List {
	return []*List{
		s.Tranco1K, s.Tranco10K, s.Tranco100K, s.Tranco1M,
		s.Majestic1K, s.Majestic10K, s.Majestic100K, s.Majestic1M,
		s.GreatfireAll, s.Greatfire30d, s.CitizenLab, s.CitizenLabGlobal,
	}
}

// BuildSuite constructs the synthetic analogue of the Table 3 lists
// over a universe. Scale: our universe is ~1000× smaller than the
// million-domain web, so the Tranco/Majestic tier sizes are divided by
// 1000 (1K→top 0.1% etc.) while keeping their relative ordering.
func BuildSuite(u *domains.Universe, sensitive func(*domains.Domain) bool, cfg BuildConfig) *Suite {
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x715cf))
	all := u.All()
	n := len(all)

	// Noisy popularity orderings for Tranco and Majestic.
	trancoOrder := noisyOrder(all, rng, cfg.PopularityNoise)
	majesticOrder := noisyOrder(all, rng, cfg.PopularityNoise*1.8)

	tier := func(order []string, k int) []string {
		if k > len(order) {
			k = len(order)
		}
		return order[:k]
	}
	// Scaled tiers: 1K→n/1000 ... 1M→n (bounded below at 10).
	scale := func(k int) int {
		v := n * k / 1_000_000
		if v < 10 {
			v = 10
		}
		if v > n {
			v = n
		}
		return v
	}

	s := &Suite{
		Tranco1K:          NewList("Tranco_1K", tier(trancoOrder, scale(1_000))),
		Tranco10K:         NewList("Tranco_10K", tier(trancoOrder, scale(10_000))),
		Tranco100K:        NewList("Tranco_100K", tier(trancoOrder, scale(100_000))),
		Tranco1M:          NewList("Tranco_1M", tier(trancoOrder, scale(1_000_000))),
		Majestic1K:        NewList("Majestic_1K", tier(majesticOrder, scale(1_000))),
		Majestic10K:       NewList("Majestic_10K", tier(majesticOrder, scale(10_000))),
		Majestic100K:      NewList("Majestic_100K", tier(majesticOrder, scale(100_000))),
		Majestic1M:        NewList("Majestic_1M", tier(majesticOrder, scale(400_000))),
		CitizenLabCountry: make(map[string]*List),
	}

	// Curated lists: sample sensitive domains with imperfect coverage.
	// A slice of entries is stored as truncated fragments (mirroring
	// real lists that carry keyword-ish entries like "wn.com", §5.5):
	// they miss exact eTLD+1 matching but are caught by the substring
	// best case.
	var gfAll, gf30, cl, clGlobal []string
	entryForm := func(name string) string {
		if rng.Float64() < 0.15 && len(name) > 6 {
			return name[2:]
		}
		return name
	}
	for i := range all {
		d := &all[i]
		if !sensitive(d) {
			continue
		}
		if rng.Float64() < cfg.CuratedCoverage {
			gfAll = append(gfAll, entryForm(d.Name))
			if rng.Float64() < 0.1 {
				gf30 = append(gf30, entryForm(d.Name))
			}
		}
		if rng.Float64() < cfg.CuratedCoverage*0.35 {
			cl = append(cl, entryForm(d.Name))
			if rng.Float64() < 0.06 {
				clGlobal = append(clGlobal, entryForm(d.Name))
			}
		}
	}
	s.GreatfireAll = NewList("Greatfire_all", gfAll)
	s.Greatfire30d = NewList("Greatfire_30d", gf30)
	s.CitizenLab = NewList("Citizenlab", cl)
	s.CitizenLabGlobal = NewList("Citizenlab_global", clGlobal)
	return s
}

// AddCountryList installs a country-specific Citizen Lab list.
func (s *Suite) AddCountryList(country string, entries []string) {
	s.CitizenLabCountry[country] = NewList("Citizenlab_"+country, entries)
}

// noisyOrder returns domain names ordered by true rank perturbed with
// multiplicative noise.
func noisyOrder(all []domains.Domain, rng *rand.Rand, noise float64) []string {
	type ranked struct {
		name string
		key  float64
	}
	rs := make([]ranked, len(all))
	for i := range all {
		jitter := 1 + (rng.Float64()*2-1)*noise
		if jitter < 0.05 {
			jitter = 0.05
		}
		rs[i] = ranked{name: all[i].Name, key: float64(all[i].GlobalRank) * jitter}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].key < rs[j].key })
	out := make([]string, len(rs))
	for i := range rs {
		out[i] = rs[i].name
	}
	return out
}

// Coverage computes the fraction of tampered domains a list contains.
// substring selects the §5.5 best-case matching. It returns 0 coverage
// for an empty observation set.
func Coverage(l *List, tampered []string, substring bool) float64 {
	if len(tampered) == 0 {
		return 0
	}
	hit := 0
	for _, d := range tampered {
		if substring {
			if l.ContainsSubstring(d) {
				hit++
			}
		} else if l.ContainsExact(d) {
			hit++
		}
	}
	return float64(hit) / float64(len(tampered))
}
