package testlists

import (
	"testing"

	"tamperdetect/internal/domains"
)

func TestETLDPlusOne(t *testing.T) {
	cases := map[string]string{
		"www.blocked.example":   "blocked.example",
		"blocked.example":       "blocked.example",
		"a.b.c.blocked.example": "blocked.example",
		"news.bbc.co.uk":        "bbc.co.uk",
		"bbc.co.uk":             "bbc.co.uk",
		"WWW.UPPER.Example":     "upper.example",
		"trailing.dot.example.": "dot.example",
		"single":                "single",
		"shop.taobao.com.cn":    "taobao.com.cn",
	}
	for in, want := range cases {
		if got := ETLDPlusOne(in); got != want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestListExactMatch(t *testing.T) {
	l := NewList("t", []string{"blocked.example", "bbc.co.uk"})
	if !l.ContainsExact("www.blocked.example") {
		t.Error("subdomain of listed domain not matched")
	}
	if !l.ContainsExact("news.bbc.co.uk") {
		t.Error("multi-suffix subdomain not matched")
	}
	if l.ContainsExact("other.example") {
		t.Error("unlisted domain matched")
	}
}

func TestListSubstringMatch(t *testing.T) {
	l := NewList("t", []string{"wn.com"})
	// The Turkmenistan over-blocking case: cnn.com... our synthetic
	// equivalent: any domain containing the entry as substring.
	if !l.ContainsSubstring("wn.com") {
		t.Error("exact entry not substring-matched")
	}
	if !l.ContainsSubstring("newswn.com") {
		t.Error("superstring domain not matched")
	}
	l2 := NewList("t2", []string{"deep.blocked.example"})
	if !l2.ContainsSubstring("blocked.example") {
		t.Error("domain contained in entry not matched")
	}
	if l2.ContainsSubstring("unrelated.example") {
		t.Error("unrelated domain substring-matched")
	}
}

func TestUnion(t *testing.T) {
	a := NewList("a", []string{"x.example", "y.example"})
	b := NewList("b", []string{"y.example", "z.example"})
	u := Union("u", a, b)
	if u.Len() != 3 {
		t.Errorf("union size = %d, want 3", u.Len())
	}
	for _, d := range []string{"x.example", "y.example", "z.example"} {
		if !u.ContainsExact(d) {
			t.Errorf("union missing %s", d)
		}
	}
}

func sensitiveByCat(d *domains.Domain) bool {
	return d.Category == domains.AdultThemes || d.Category == domains.News
}

func buildSuite(t *testing.T) (*Suite, *domains.Universe) {
	t.Helper()
	cfg := domains.DefaultConfig()
	cfg.PerCategory = 300
	u := domains.Generate(cfg)
	s := BuildSuite(u, sensitiveByCat, DefaultBuildConfig())
	return s, u
}

func TestSuiteTierSizes(t *testing.T) {
	s, u := buildSuite(t)
	if s.Tranco1K.Len() >= s.Tranco10K.Len() {
		t.Error("Tranco tiers not increasing")
	}
	if s.Tranco1M.Len() != u.Size() {
		t.Errorf("Tranco_1M = %d, want full universe %d", s.Tranco1M.Len(), u.Size())
	}
	if s.Majestic1K.Len() == 0 || s.GreatfireAll.Len() == 0 || s.CitizenLab.Len() == 0 {
		t.Error("empty list in suite")
	}
	// Curated lists are incomplete by construction.
	sensCount := 0
	for _, d := range u.All() {
		d := d
		if sensitiveByCat(&d) {
			sensCount++
		}
	}
	if s.GreatfireAll.Len() >= sensCount {
		t.Errorf("GreatFire %d ≥ sensitive %d; should be incomplete", s.GreatfireAll.Len(), sensCount)
	}
}

func TestSuiteTiersNested(t *testing.T) {
	s, _ := buildSuite(t)
	for _, e := range s.Tranco1K.Entries {
		if !s.Tranco10K.ContainsExact(e) {
			t.Fatalf("Tranco_1K entry %q missing from Tranco_10K", e)
		}
	}
}

func TestCoverage(t *testing.T) {
	l := NewList("t", []string{"a.example", "b.example"})
	tampered := []string{"a.example", "b.example", "c.example", "d.example"}
	if got := Coverage(l, tampered, false); got != 0.5 {
		t.Errorf("coverage = %f, want 0.5", got)
	}
	if got := Coverage(l, nil, false); got != 0 {
		t.Errorf("empty coverage = %f, want 0", got)
	}
}

func TestCoverageSubstringAtLeastExact(t *testing.T) {
	s, u := buildSuite(t)
	var tampered []string
	for _, d := range u.Categories(domains.AdultThemes)[:100] {
		tampered = append(tampered, d.Name)
	}
	for _, l := range s.Lists() {
		exact := Coverage(l, tampered, false)
		sub := Coverage(l, tampered, true)
		if sub < exact {
			t.Errorf("%s: substring coverage %.3f < exact %.3f", l.Name, sub, exact)
		}
	}
}

func TestPopularListsCoverPopularDomains(t *testing.T) {
	s, u := buildSuite(t)
	// The most popular domains should be largely in the biggest tier
	// and less so in the smallest.
	var top []string
	for _, d := range u.All()[:20] {
		top = append(top, d.Name)
	}
	big := Coverage(s.Tranco1M, top, false)
	small := Coverage(s.Tranco1K, top, false)
	if big != 1.0 {
		t.Errorf("Tranco_1M coverage of top-20 = %f, want 1", big)
	}
	if small >= 1.0 {
		t.Errorf("Tranco_1K covers all top-20 despite noise; suspicious (%f)", small)
	}
}

func TestAddCountryList(t *testing.T) {
	s, _ := buildSuite(t)
	s.AddCountryList("IR", []string{"protest.example"})
	l := s.CitizenLabCountry["IR"]
	if l == nil || !l.ContainsExact("protest.example") {
		t.Error("country list not installed")
	}
}
