package core

import (
	"net/netip"
	"testing"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/httpwire"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/tlswire"
)

// rec builds a PacketRecord tersely.
func rec(ts int64, flags packet.TCPFlags, seq, ack uint32, payloadLen int) capture.PacketRecord {
	return capture.PacketRecord{Timestamp: ts, Flags: flags, Seq: seq, Ack: ack, PayloadLen: payloadLen, TTL: 54, IPID: 100}
}

// conn wraps records into a Connection with sensible metadata.
func conn(closeTime int64, recs ...capture.PacketRecord) *capture.Connection {
	c := &capture.Connection{
		SrcIP: netip.MustParseAddr("20.0.0.1"), DstIP: netip.MustParseAddr("192.0.2.80"),
		SrcPort: 40000, DstPort: 443, IPVersion: 4,
		Packets: recs, TotalPackets: len(recs), CloseTime: closeTime,
	}
	if len(recs) > 0 {
		c.LastActivity = recs[len(recs)-1].Timestamp
	}
	return c
}

var cl = NewClassifier(DefaultConfig())

func classify(t *testing.T, c *capture.Connection) Result {
	t.Helper()
	return cl.Classify(c)
}

func TestGracefulNotTampering(t *testing.T) {
	c := conn(30,
		rec(0, packet.FlagsSYN, 100, 0, 0),
		rec(0, packet.FlagsACK, 101, 501, 0),
		rec(0, packet.FlagsPSHACK, 101, 501, 200),
		rec(0, packet.FlagsACK, 301, 1701, 0),
		rec(1, packet.FlagsFINACK, 301, 1701, 0),
	)
	r := classify(t, c)
	if r.Signature != SigNotTampering || r.PossiblyTampered {
		t.Errorf("graceful close classified %v (tampered=%v)", r.Signature, r.PossiblyTampered)
	}
}

func TestOngoingConnectionNotTampering(t *testing.T) {
	// 10 packets recorded, more beyond the cap, no FIN, no RST, no gap:
	// an ongoing long connection.
	recs := []capture.PacketRecord{
		rec(0, packet.FlagsSYN, 100, 0, 0),
		rec(0, packet.FlagsACK, 101, 501, 0),
	}
	seq := uint32(101)
	for i := 0; i < 8; i++ {
		recs = append(recs, rec(int64(i/4), packet.FlagsPSHACK, seq, 501, 100))
		seq += 100
	}
	c := conn(60, recs...)
	c.TotalPackets = 25
	c.LastActivity = 58
	r := classify(t, c)
	if r.PossiblyTampered {
		t.Errorf("ongoing connection flagged tampered: %v", r.Signature)
	}
}

func TestPostSYNSignatures(t *testing.T) {
	syn := rec(0, packet.FlagsSYN, 100, 0, 0)
	cases := []struct {
		name string
		tail []capture.PacketRecord
		want Signature
	}{
		{"timeout", nil, SigSYNTimeout},
		{"rst", []capture.PacketRecord{rec(0, packet.FlagsRST, 101, 0, 0)}, SigSYNRST},
		{"rstack", []capture.PacketRecord{rec(0, packet.FlagsRSTACK, 0, 101, 0)}, SigSYNRSTACK},
		{"multi-rst", []capture.PacketRecord{rec(0, packet.FlagsRST, 101, 0, 0), rec(0, packet.FlagsRST, 101, 0, 0)}, SigSYNRST},
		{"rst+rstack", []capture.PacketRecord{rec(0, packet.FlagsRST, 101, 0, 0), rec(0, packet.FlagsRSTACK, 0, 101, 0)}, SigSYNRSTRSTACK},
	}
	for _, tc := range cases {
		c := conn(30, append([]capture.PacketRecord{syn}, tc.tail...)...)
		r := classify(t, c)
		if r.Signature != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, r.Signature, tc.want)
		}
		if !r.PossiblyTampered {
			t.Errorf("%s: not flagged possibly tampered", tc.name)
		}
		if r.Stage != StagePostSYN {
			t.Errorf("%s: stage = %v", tc.name, r.Stage)
		}
	}
}

func TestPostACKSignatures(t *testing.T) {
	prefix := []capture.PacketRecord{
		rec(0, packet.FlagsSYN, 100, 0, 0),
		rec(0, packet.FlagsACK, 101, 501, 0),
	}
	cases := []struct {
		name string
		tail []capture.PacketRecord
		want Signature
	}{
		{"timeout", nil, SigACKTimeout},
		{"one-rst", []capture.PacketRecord{rec(0, packet.FlagsRST, 101, 0, 0)}, SigACKRST},
		{"two-rst", []capture.PacketRecord{rec(0, packet.FlagsRST, 101, 0, 0), rec(0, packet.FlagsRST, 101, 0, 0)}, SigACKRSTRST},
		{"one-rstack", []capture.PacketRecord{rec(0, packet.FlagsRSTACK, 101, 501, 0)}, SigACKRSTACK},
		{"two-rstack", []capture.PacketRecord{rec(0, packet.FlagsRSTACK, 101, 501, 0), rec(0, packet.FlagsRSTACK, 101, 501, 0)}, SigACKRSTACKRSTACK},
		{"mixed-goes-other", []capture.PacketRecord{rec(0, packet.FlagsRST, 101, 0, 0), rec(0, packet.FlagsRSTACK, 101, 501, 0)}, SigOtherAnomalous},
	}
	for _, tc := range cases {
		c := conn(30, append(append([]capture.PacketRecord{}, prefix...), tc.tail...)...)
		r := classify(t, c)
		if r.Signature != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, r.Signature, tc.want)
		}
	}
}

func TestPostPSHSignatures(t *testing.T) {
	prefix := []capture.PacketRecord{
		rec(0, packet.FlagsSYN, 100, 0, 0),
		rec(0, packet.FlagsACK, 101, 501, 0),
		rec(0, packet.FlagsPSHACK, 101, 501, 300),
	}
	mk := func(tails ...capture.PacketRecord) *capture.Connection {
		return conn(30, append(append([]capture.PacketRecord{}, prefix...), tails...)...)
	}
	cases := []struct {
		name string
		c    *capture.Connection
		want Signature
	}{
		{"timeout", mk(), SigPSHTimeout},
		{"one-rst", mk(rec(0, packet.FlagsRST, 401, 777, 0)), SigPSHRST},
		{"one-rstack", mk(rec(0, packet.FlagsRSTACK, 401, 501, 0)), SigPSHRSTACK},
		{"rst-then-rstack", mk(rec(0, packet.FlagsRST, 401, 0, 0), rec(0, packet.FlagsRSTACK, 401, 501, 0)), SigPSHRSTRSTACK},
		{"double-rstack", mk(rec(0, packet.FlagsRSTACK, 401, 501, 0), rec(0, packet.FlagsRSTACK, 401, 501, 0)), SigPSHRSTACKRSTACK},
		{"rst-eq", mk(rec(0, packet.FlagsRST, 401, 501, 0), rec(0, packet.FlagsRST, 401, 501, 0)), SigPSHRSTEqRST},
		{"rst-neq", mk(rec(0, packet.FlagsRST, 401, 501, 0), rec(0, packet.FlagsRST, 401, 1961, 0)), SigPSHRSTNeqRST},
		{"rst-zero", mk(rec(0, packet.FlagsRST, 401, 501, 0), rec(0, packet.FlagsRST, 401, 0, 0)), SigPSHRSTRSTZero},
		{"three-rst-eq", mk(rec(0, packet.FlagsRST, 401, 501, 0), rec(0, packet.FlagsRST, 401, 501, 0), rec(0, packet.FlagsRST, 401, 501, 0)), SigPSHRSTEqRST},
	}
	for _, tc := range cases {
		r := classify(t, tc.c)
		if r.Signature != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, r.Signature, tc.want)
		}
		if tc.want.Stage() != StagePostPSH {
			t.Errorf("%s: want-signature stage = %v", tc.name, tc.want.Stage())
		}
	}
}

func TestPostDataSignatures(t *testing.T) {
	prefix := []capture.PacketRecord{
		rec(0, packet.FlagsSYN, 100, 0, 0),
		rec(0, packet.FlagsACK, 101, 501, 0),
		rec(0, packet.FlagsPSHACK, 101, 501, 300),
		rec(0, packet.FlagsACK, 401, 2001, 0),
		rec(1, packet.FlagsPSHACK, 401, 2001, 200),
	}
	mk := func(tails ...capture.PacketRecord) *capture.Connection {
		return conn(30, append(append([]capture.PacketRecord{}, prefix...), tails...)...)
	}
	r := classify(t, mk(rec(1, packet.FlagsRST, 601, 0, 0)))
	if r.Signature != SigDataRST {
		t.Errorf("data-rst: got %v", r.Signature)
	}
	r = classify(t, mk(rec(1, packet.FlagsRSTACK, 601, 2001, 0)))
	if r.Signature != SigDataRSTACK {
		t.Errorf("data-rstack: got %v", r.Signature)
	}
	// Timeout after multiple data packets is uncovered (no Table 1 row).
	r = classify(t, mk())
	if r.Signature != SigOtherAnomalous || !r.PossiblyTampered {
		t.Errorf("data-timeout: got %v tampered=%v", r.Signature, r.PossiblyTampered)
	}
}

func TestOtherAnomalousPrefixes(t *testing.T) {
	cases := []struct {
		name string
		c    *capture.Connection
	}{
		{"double-syn", conn(30,
			rec(0, packet.FlagsSYN, 100, 0, 0),
			rec(1, packet.FlagsSYN, 100, 0, 0),
			rec(1, packet.FlagsRST, 101, 0, 0))},
		{"syn-ack-ack", conn(30,
			rec(0, packet.FlagsSYN, 100, 0, 0),
			rec(0, packet.FlagsACK, 101, 501, 0),
			rec(0, packet.FlagsACK, 101, 501, 0))},
		{"data-after-rst", conn(30,
			rec(0, packet.FlagsSYN, 100, 0, 0),
			rec(0, packet.FlagsACK, 101, 501, 0),
			rec(1, packet.FlagsRST, 101, 0, 0),
			rec(2, packet.FlagsPSHACK, 101, 501, 50))},
		{"no-syn", conn(30,
			rec(0, packet.FlagsPSHACK, 500, 1, 100),
			rec(0, packet.FlagsRST, 600, 0, 0))},
	}
	for _, tc := range cases {
		r := classify(t, tc.c)
		if r.Signature != SigOtherAnomalous {
			t.Errorf("%s: got %v, want Other", tc.name, r.Signature)
		}
		if !r.PossiblyTampered {
			t.Errorf("%s: not flagged possibly tampered", tc.name)
		}
	}
}

func TestTrailingSilenceRequiresThreeSeconds(t *testing.T) {
	// 2 s of trailing silence: not yet tampered.
	c := conn(2,
		rec(0, packet.FlagsSYN, 100, 0, 0))
	if r := classify(t, c); r.PossiblyTampered {
		t.Errorf("2s silence flagged: %v", r.Signature)
	}
	// 3 s: flagged.
	c = conn(3, rec(0, packet.FlagsSYN, 100, 0, 0))
	if r := classify(t, c); !r.PossiblyTampered || r.Signature != SigSYNTimeout {
		t.Errorf("3s silence: got %v", r.Signature)
	}
}

func TestInternalGapFlagged(t *testing.T) {
	// SYN, ACK, then a 5-second gap before a retransmitted ACK: the
	// paper's inactivity condition applies within the window too.
	c := conn(8,
		rec(0, packet.FlagsSYN, 100, 0, 0),
		rec(0, packet.FlagsACK, 101, 501, 0),
		rec(5, packet.FlagsACK, 101, 501, 0),
	)
	r := classify(t, c)
	if !r.PossiblyTampered {
		t.Error("internal 5s gap not flagged")
	}
}

func TestDomainExtractionTLS(t *testing.T) {
	hello := tlswire.BuildClientHello(tlswire.ClientHelloSpec{ServerName: "sni.blocked.example"})
	c := conn(30,
		rec(0, packet.FlagsSYN, 100, 0, 0),
		rec(0, packet.FlagsACK, 101, 501, 0),
		capture.PacketRecord{Timestamp: 0, Flags: packet.FlagsPSHACK, Seq: 101, Ack: 501, PayloadLen: len(hello), Payload: hello},
		rec(0, packet.FlagsRST, 101+uint32(len(hello)), 0, 0),
	)
	r := classify(t, c)
	if r.Domain != "sni.blocked.example" || r.Protocol != ProtoTLS {
		t.Errorf("domain/proto = %q/%v", r.Domain, r.Protocol)
	}
	if r.Signature != SigPSHRST {
		t.Errorf("signature = %v", r.Signature)
	}
}

func TestDomainExtractionHTTP(t *testing.T) {
	req := httpwire.BuildRequest("GET", "host.blocked.example", "/x", nil)
	c := conn(30,
		rec(0, packet.FlagsSYN, 100, 0, 0),
		rec(0, packet.FlagsACK, 101, 501, 0),
		capture.PacketRecord{Timestamp: 0, Flags: packet.FlagsPSHACK, Seq: 101, Ack: 501, PayloadLen: len(req), Payload: req},
	)
	c.DstPort = 80
	r := classify(t, c)
	if r.Domain != "host.blocked.example" || r.Protocol != ProtoHTTP {
		t.Errorf("domain/proto = %q/%v", r.Domain, r.Protocol)
	}
}

func TestProtocolFromPortWhenNoPayload(t *testing.T) {
	c := conn(30, rec(0, packet.FlagsSYN, 100, 0, 0), rec(0, packet.FlagsACK, 101, 501, 0))
	r := classify(t, c)
	if r.Protocol != ProtoTLS {
		t.Errorf("port-443 protocol = %v, want TLS", r.Protocol)
	}
	if r.Domain != "" {
		t.Errorf("domain = %q for dropped trigger, want empty", r.Domain)
	}
}

func TestEmptyConnection(t *testing.T) {
	c := conn(30)
	r := classify(t, c)
	if r.Signature != SigNotTampering || r.PossiblyTampered {
		t.Errorf("empty connection: %v", r.Signature)
	}
}

func TestSignatureStageMapping(t *testing.T) {
	for _, s := range AllSignatures() {
		if !s.IsTampering() {
			t.Errorf("%v not reported as tampering", s)
		}
		if s.Stage() == StageNone || s.Stage() == StageOther {
			t.Errorf("%v maps to stage %v", s, s.Stage())
		}
	}
	if SigNotTampering.IsTampering() || SigOtherAnomalous.IsTampering() {
		t.Error("non-signatures reported as tampering")
	}
	if got := len(AllSignatures()); got != 19 {
		t.Errorf("AllSignatures() = %d entries, want 19 (Table 1)", got)
	}
	if !SigACKRST.PostACKOrPSH() || !SigPSHTimeout.PostACKOrPSH() {
		t.Error("PostACKOrPSH false for Post-ACK/Post-PSH signatures")
	}
	if SigSYNRST.PostACKOrPSH() || SigDataRST.PostACKOrPSH() {
		t.Error("PostACKOrPSH true outside Post-ACK/Post-PSH")
	}
}

func TestSignatureNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for s := Signature(0); s < NumSignatures; s++ {
		n := s.String()
		if seen[n] {
			t.Errorf("duplicate signature name %q", n)
		}
		seen[n] = true
	}
}
