package core

// This file provides an alternative, declarative formulation of the
// Table 1 taxonomy: a rule table scanned linearly, mirroring how the
// paper presents the signatures ("X → Y" rows) and how one would add a
// newly-discovered signature without touching control flow. The
// switch-based matcher in classifier.go is the optimized form; the
// TestRuleTableAgreesWithSwitch property test pins them together and
// BenchmarkClassifierDispatch (bench_test.go) measures the cost of the
// flexibility.

// TailSummary condenses a connection's tear-down tail for rule
// evaluation.
type TailSummary struct {
	// Bare counts RST packets without ACK; WithACK counts RST+ACK.
	Bare    int
	WithACK int
	// BareAcks holds the acknowledgment fields of the bare RSTs.
	BareAcks []uint32
}

// acksAllEqual reports whether every bare-RST ack matches the first.
func (t *TailSummary) acksAllEqual() bool {
	for _, a := range t.BareAcks[1:] {
		if a != t.BareAcks[0] {
			return false
		}
	}
	return true
}

// acksMixedZero reports whether some but not all acks are zero.
func (t *TailSummary) acksMixedZero() bool {
	zero, nonzero := 0, 0
	for _, a := range t.BareAcks {
		if a == 0 {
			zero++
		} else {
			nonzero++
		}
	}
	return zero > 0 && nonzero > 0
}

// SignatureRule is one row of the declarative taxonomy.
type SignatureRule struct {
	Signature Signature
	Stage     Stage
	// Match inspects the tail; rules are evaluated in table order and
	// the first match wins.
	Match func(t *TailSummary) bool
}

// RuleTable is the Table 1 taxonomy in declarative form, ordered so
// that more specific rules precede general ones within each stage.
var RuleTable = []SignatureRule{
	// Post-SYN.
	{SigSYNTimeout, StagePostSYN, func(t *TailSummary) bool { return t.Bare == 0 && t.WithACK == 0 }},
	{SigSYNRSTRSTACK, StagePostSYN, func(t *TailSummary) bool { return t.Bare > 0 && t.WithACK > 0 }},
	{SigSYNRSTACK, StagePostSYN, func(t *TailSummary) bool { return t.WithACK > 0 }},
	{SigSYNRST, StagePostSYN, func(t *TailSummary) bool { return t.Bare > 0 }},

	// Post-ACK. Mixed bare/with-ACK tails match no row (→ Other).
	{SigACKTimeout, StagePostACK, func(t *TailSummary) bool { return t.Bare == 0 && t.WithACK == 0 }},
	{SigACKRST, StagePostACK, func(t *TailSummary) bool { return t.Bare == 1 && t.WithACK == 0 }},
	{SigACKRSTRST, StagePostACK, func(t *TailSummary) bool { return t.Bare > 1 && t.WithACK == 0 }},
	{SigACKRSTACK, StagePostACK, func(t *TailSummary) bool { return t.Bare == 0 && t.WithACK == 1 }},
	{SigACKRSTACKRSTACK, StagePostACK, func(t *TailSummary) bool { return t.Bare == 0 && t.WithACK > 1 }},

	// Post-PSH.
	{SigPSHTimeout, StagePostPSH, func(t *TailSummary) bool { return t.Bare == 0 && t.WithACK == 0 }},
	{SigPSHRSTRSTACK, StagePostPSH, func(t *TailSummary) bool { return t.Bare > 0 && t.WithACK > 0 }},
	{SigPSHRSTACKRSTACK, StagePostPSH, func(t *TailSummary) bool { return t.WithACK >= 2 }},
	{SigPSHRSTACK, StagePostPSH, func(t *TailSummary) bool { return t.WithACK == 1 }},
	{SigPSHRST, StagePostPSH, func(t *TailSummary) bool { return t.Bare == 1 }},
	{SigPSHRSTRSTZero, StagePostPSH, func(t *TailSummary) bool { return t.Bare > 1 && t.acksMixedZero() }},
	{SigPSHRSTEqRST, StagePostPSH, func(t *TailSummary) bool { return t.Bare > 1 && t.acksAllEqual() }},
	{SigPSHRSTNeqRST, StagePostPSH, func(t *TailSummary) bool { return t.Bare > 1 }},

	// Post-multiple-data. Timeouts match no row (→ uncovered).
	{SigDataRSTACK, StagePostData, func(t *TailSummary) bool { return t.WithACK > 0 }},
	{SigDataRST, StagePostData, func(t *TailSummary) bool { return t.Bare > 0 }},
}

// MatchRuleTable applies the declarative taxonomy for a stage and tail,
// returning SigOtherAnomalous when no rule matches.
func MatchRuleTable(stage Stage, t *TailSummary) Signature {
	for i := range RuleTable {
		r := &RuleTable[i]
		if r.Stage != stage {
			continue
		}
		if r.Match(t) {
			return r.Signature
		}
	}
	return SigOtherAnomalous
}
