package core

import (
	"sync"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/packet"
)

// MatcherMode selects the signature-matching engine inside Classifier.
type MatcherMode int

const (
	// MatcherDFA (the default) classifies each record in one pass: the
	// 19 Table 1 signatures plus the stage taxonomy are compiled once,
	// at startup, into a merged decision automaton over per-packet
	// events, so matching costs one table lookup per packet instead of
	// a prefix walk plus per-signature tail scans.
	MatcherDFA MatcherMode = iota
	// MatcherLegacy is the original multi-pass matcher (prefix walk,
	// tail split, per-signature counting). It is retained verbatim as
	// the differential-testing oracle; the DFA must agree with it on
	// every input (see dfa_test.go and FuzzDFAClassifierParity).
	MatcherLegacy
)

// The DFA's input alphabet. Each reconstructed packet maps to exactly
// one event; the mapping captures everything the legacy classifier
// ever inspects about a packet (flag predicates, payload presence,
// and — for bare RSTs — how its ack number relates to the first bare
// RST's), so a state machine over these events can reproduce the
// legacy verdict exactly.
type dfaEvent uint8

const (
	evSYN      dfaEvent = iota // pure SYN (no ACK/RST/FIN), no payload
	evSYNData                  // pure SYN carrying payload
	evPureACK                  // handshake ACK: ACK, no SYN/RST/FIN/PSH, no payload
	evAckEmpty                 // ACK without payload, but PSH set (non-pure)
	evAckData                  // ACK (no SYN/FIN) with payload
	evData                     // payload without a plain ACK (e.g. SYN+ACK data)
	evEmpty                    // no payload, no plain ACK (e.g. SYN+ACK)
	evFINEmpty                 // FIN (no RST), no payload
	evFINData                  // FIN (no RST) with payload
	evRSTACK                   // RST+ACK
	evRSTZero                  // bare RST, ack == 0
	evRSTEq                    // bare RST, nonzero ack equal to the first nonzero bare ack
	evRSTNe                    // bare RST, nonzero ack differing from the first
	numDFAEvents
)

// eventOf maps one packet to its event. reg/haveReg carry the first
// nonzero bare-RST ack across the record (the one piece of per-record
// context the alphabet needs, kept in the caller so the automaton's
// state space stays finite).
func eventOf(p *capture.PacketRecord, reg *uint32, haveReg *bool) dfaEvent {
	f := p.Flags
	if f.IsRST() {
		if f.Has(packet.FlagACK) {
			return evRSTACK
		}
		a := p.Ack
		if a == 0 {
			return evRSTZero
		}
		if !*haveReg {
			*haveReg, *reg = true, a
			return evRSTEq
		}
		if a == *reg {
			return evRSTEq
		}
		return evRSTNe
	}
	data := p.PayloadLen > 0
	if f.Has(packet.FlagSYN) && !f.HasAny(packet.FlagACK|packet.FlagFIN) {
		if data {
			return evSYNData
		}
		return evSYN
	}
	if f.Has(packet.FlagFIN) {
		if data {
			return evFINData
		}
		return evFINEmpty
	}
	if f.Has(packet.FlagACK) && !f.Has(packet.FlagSYN) {
		if data {
			return evAckData
		}
		if !f.Has(packet.FlagPSH) {
			return evPureACK
		}
		return evAckEmpty
	}
	if data {
		return evData
	}
	return evEmpty
}

// absState is the abstract classifier state the compiler enumerates:
// everything the legacy verdict depends on, quotiented down to what
// still distinguishes outcomes (counts saturate at 2, the bare-RST
// ack pattern collapses to five classes, FIN is dropped once an RST
// makes it irrelevant). BFS over stepAbs from the zero state reaches
// ~10^2 states; the runtime DFA is the resulting transition table.
type absState struct {
	// pos tracks the canonical prefix: 0 start, 1 [SYN], 2 [SYN,ACK],
	// 3 [SYN,ACK,data], 4 [SYN,ACK,data,...], 5 non-canonical.
	pos    uint8
	fin    bool // FIN seen (meaningful only while no RST seen)
	tail   bool // at least one RST seen; prefix frozen
	broken bool // non-RST packet after an RST: SigOtherAnomalous
	bare   uint8 // bare RSTs in the tail: 0, 1, 2 (==2 means >=2)
	wack   uint8 // RST+ACKs in the tail: 0, 1, 2 (==2 means >=2)
	ack    uint8 // bare-RST ack pattern (ackNone..ackMixed)
}

// Bare-RST ack patterns, mirroring classifyMultiRST's taxonomy.
const (
	ackNone  = iota // no bare RST yet
	ackZero         // all bare acks zero
	ackEq           // all bare acks nonzero and equal
	ackNe           // all bare acks nonzero, not all equal
	ackMixed        // both zero and nonzero bare acks
)

func ackStep(a uint8, e dfaEvent) uint8 {
	switch a {
	case ackNone:
		if e == evRSTZero {
			return ackZero
		}
		return ackEq
	case ackZero:
		if e == evRSTZero {
			return ackZero
		}
		return ackMixed
	case ackEq:
		switch e {
		case evRSTZero:
			return ackMixed
		case evRSTEq:
			return ackEq
		default:
			return ackNe
		}
	case ackNe:
		if e == evRSTZero {
			return ackMixed
		}
		return ackNe
	default:
		return ackMixed
	}
}

func posStep(pos uint8, e dfaEvent) uint8 {
	switch pos {
	case 0:
		// First packet must be a pure SYN (payload irrelevant).
		if e == evSYN || e == evSYNData {
			return 1
		}
	case 1:
		// Second must be the handshake's pure ACK.
		if e == evPureACK {
			return 2
		}
	case 2:
		// Third must carry payload; flags are irrelevant here.
		if e == evSYNData || e == evAckData || e == evData || e == evFINData {
			return 3
		}
	case 3, 4:
		// Further packets must be plain ACKs or more data: ACK set,
		// no SYN/FIN/RST.
		if e == evPureACK || e == evAckEmpty || e == evAckData {
			return 4
		}
	}
	return 5
}

func stepAbs(s absState, e dfaEvent) absState {
	if s.broken {
		return s
	}
	switch e {
	case evRSTACK:
		s.tail, s.fin = true, false
		if s.wack < 2 {
			s.wack++
		}
		return s
	case evRSTZero, evRSTEq, evRSTNe:
		s.tail, s.fin = true, false
		if s.bare < 2 {
			s.bare++
		}
		s.ack = ackStep(s.ack, e)
		return s
	}
	if s.tail {
		// Non-RST traffic after the tear-down started: non-canonical.
		return absState{tail: true, broken: true}
	}
	if e == evFINEmpty || e == evFINData {
		s.fin = true
	}
	s.pos = posStep(s.pos, e)
	return s
}

// verdictOf maps a final abstract state to the legacy (stage,
// signature) pair for a possibly-tampered record. It is the compiled
// image of classifyPrefix + matchSignature + classifyMultiRST.
func verdictOf(s absState) (Stage, Signature) {
	if s.broken {
		return StageOther, SigOtherAnomalous
	}
	var stage Stage
	switch s.pos {
	case 1:
		stage = StagePostSYN
	case 2:
		stage = StagePostACK
	case 3:
		stage = StagePostPSH
	case 4:
		stage = StagePostData
	default:
		// Empty or non-canonical prefix (including an RST as the very
		// first packet).
		return StageOther, SigOtherAnomalous
	}
	bare, wack := s.bare, s.wack
	var sig Signature
	switch stage {
	case StagePostSYN:
		switch {
		case bare == 0 && wack == 0:
			sig = SigSYNTimeout
		case bare > 0 && wack > 0:
			sig = SigSYNRSTRSTACK
		case wack > 0:
			sig = SigSYNRSTACK
		default:
			sig = SigSYNRST
		}
	case StagePostACK:
		switch {
		case bare == 0 && wack == 0:
			sig = SigACKTimeout
		case bare > 0 && wack > 0:
			sig = SigOtherAnomalous // no mixed Post-ACK signature in Table 1
		case bare == 1:
			sig = SigACKRST
		case bare > 1:
			sig = SigACKRSTRST
		case wack == 1:
			sig = SigACKRSTACK
		default:
			sig = SigACKRSTACKRSTACK
		}
	case StagePostPSH:
		switch {
		case bare == 0 && wack == 0:
			sig = SigPSHTimeout
		case bare > 0 && wack > 0:
			sig = SigPSHRSTRSTACK
		case wack >= 2:
			sig = SigPSHRSTACKRSTACK
		case wack == 1:
			sig = SigPSHRSTACK
		case bare == 1:
			sig = SigPSHRST
		case s.ack == ackMixed:
			sig = SigPSHRSTRSTZero
		case s.ack == ackNe:
			sig = SigPSHRSTNeqRST
		default:
			sig = SigPSHRSTEqRST
		}
	case StagePostData:
		switch {
		case bare == 0 && wack == 0:
			// Table 1 has no ⟨PSH+ACK;Data → ∅⟩ signature; the stage is
			// still reported (§4.1's uncovered remainder).
			sig = SigOtherAnomalous
		case wack > 0:
			sig = SigDataRSTACK
		default:
			sig = SigDataRST
		}
	}
	return stage, sig
}

// dfaInfo is the per-state verdict, precomputed at compile time so the
// runtime does one lookup after the event loop.
type dfaInfo struct {
	stage  Stage
	sig    Signature
	hasRST bool
	hasFIN bool
}

// dfa is the compiled automaton: a dense transition table over the
// event alphabet plus the per-state verdicts. State 0 is the start.
type dfa struct {
	next [][numDFAEvents]uint16
	info []dfaInfo
}

// compiledDFA builds the automaton once, on first use, and shares it
// between every Classifier (it is immutable after construction).
var compiledDFA = sync.OnceValue(buildDFA)

// buildDFA enumerates the reachable abstract states breadth-first and
// freezes the transition table and verdicts.
func buildDFA() *dfa {
	ids := map[absState]uint16{}
	var states []absState
	add := func(s absState) uint16 {
		if id, ok := ids[s]; ok {
			return id
		}
		id := uint16(len(states))
		ids[s] = id
		states = append(states, s)
		return id
	}
	add(absState{})
	d := &dfa{}
	for i := 0; i < len(states); i++ {
		var row [numDFAEvents]uint16
		for e := dfaEvent(0); e < numDFAEvents; e++ {
			row[e] = add(stepAbs(states[i], e))
		}
		d.next = append(d.next, row)
	}
	for _, s := range states {
		stage, sig := verdictOf(s)
		d.info = append(d.info, dfaInfo{
			stage:  stage,
			sig:    sig,
			hasRST: s.tail,
			hasFIN: s.fin,
		})
	}
	return d
}

// classifyDFA is ClassifyWith on the compiled automaton: one pass over
// the reconstructed packets computes the final state (carrying the
// signature and stage), the RST/FIN disposition bits, and the
// inactivity gap; the surrounding disposition logic, evidence, and
// domain extraction are shared with the legacy path unchanged.
func (cl *Classifier) classifyDFA(conn *capture.Connection, s *Scratch) Result {
	s.recs = capture.ReconstructInto(conn, s.recs)
	recs := s.recs
	res := Result{Signature: SigNotTampering, Stage: StageNone}
	res.Domain, res.Protocol = domainAndProtocol(conn, recs, s)

	if len(recs) == 0 {
		return res
	}

	d := cl.dfa
	var reg uint32
	haveReg := false
	state := d.next[0][eventOf(&recs[0], &reg, &haveReg)]
	gap := false
	prev := recs[0].Timestamp
	for i := 1; i < len(recs); i++ {
		p := &recs[i]
		if p.Timestamp-prev >= cl.cfg.InactivityThreshold {
			gap = true
		}
		prev = p.Timestamp
		state = d.next[state][eventOf(p, &reg, &haveReg)]
	}
	inf := &d.info[state]

	trailing := conn.TotalPackets < cl.cfg.MaxPackets &&
		conn.CloseTime-conn.LastActivity >= cl.cfg.InactivityThreshold

	res.Evidence = computeEvidence(recs)
	res.Evidence.IPIDValid = conn.IPVersion == 4

	if inf.hasFIN && !inf.hasRST {
		// Graceful termination.
		return res
	}
	if !inf.hasRST && !gap && !trailing {
		// Completed the window without anomaly (ongoing or graceful).
		return res
	}

	res.PossiblyTampered = true
	res.Stage, res.Signature = inf.stage, inf.sig
	return res
}
