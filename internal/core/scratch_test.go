package core

import (
	"testing"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/packet"
)

// scratchCases builds a connection mix spanning the taxonomy: graceful,
// timeout, single/multi RST tails, anomalous orders.
func scratchCases() []*capture.Connection {
	return []*capture.Connection{
		conn(200,
			rec(100, packet.FlagsSYN, 1000, 0, 0),
			rec(100, packet.FlagACK, 1001, 501, 0),
			rec(101, packet.FlagsPSHACK, 1001, 501, 200),
			rec(102, packet.FlagsFINACK, 1201, 501, 0)),
		conn(200,
			rec(100, packet.FlagsSYN, 1000, 0, 0),
			rec(100, packet.FlagsRSTACK, 0, 1001, 0)),
		conn(200,
			rec(100, packet.FlagsSYN, 1000, 0, 0),
			rec(100, packet.FlagACK, 1001, 501, 0),
			rec(101, packet.FlagsPSHACK, 1001, 501, 200),
			rec(101, packet.FlagsRST, 1201, 0, 0),
			rec(101, packet.FlagsRST, 1201, 777, 0)),
		conn(200,
			rec(100, packet.FlagsSYN, 1000, 0, 0)),
		conn(200,
			rec(100, packet.FlagsPSHACK, 1001, 501, 200),
			rec(101, packet.FlagsRST, 1201, 0, 0)),
	}
}

// TestClassifyWithMatchesClassify pins that the scratch-reusing entry
// point is behaviourally identical to Classify across repeated reuse of
// one Scratch.
func TestClassifyWithMatchesClassify(t *testing.T) {
	cl := NewClassifier(DefaultConfig())
	cases := scratchCases()
	var s Scratch
	for round := 0; round < 3; round++ {
		for i, c := range cases {
			want := cl.Classify(c)
			got := cl.ClassifyWith(c, &s)
			if got != want {
				t.Errorf("round %d case %d: ClassifyWith = %+v, Classify = %+v", round, i, got, want)
			}
		}
	}
}

// TestClassifyWithSteadyStateAllocs pins the hot-path contract: with a
// warmed Scratch, classification of payload-free records is
// allocation-free.
func TestClassifyWithSteadyStateAllocs(t *testing.T) {
	cl := NewClassifier(DefaultConfig())
	c := conn(200,
		rec(100, packet.FlagsSYN, 1000, 0, 0),
		rec(100, packet.FlagACK, 1001, 501, 0),
		rec(101, packet.FlagsPSHACK, 1001, 501, 200),
		rec(101, packet.FlagsRST, 1201, 0, 0),
		rec(101, packet.FlagsRST, 1201, 777, 0))
	var s Scratch
	cl.ClassifyWith(c, &s) // warm the scratch
	allocs := testing.AllocsPerRun(64, func() {
		cl.ClassifyWith(c, &s)
	})
	if allocs > 0 {
		t.Errorf("ClassifyWith steady state: %.1f allocs/record, want 0", allocs)
	}
}
