package core

import (
	"testing"
	"testing/quick"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/packet"
)

// TestRuleTableAgreesWithSwitch property-tests that the declarative
// rule table and the optimized switch matcher classify every possible
// tail identically across all stages.
func TestRuleTableAgreesWithSwitch(t *testing.T) {
	stages := []Stage{StagePostSYN, StagePostACK, StagePostPSH, StagePostData}
	f := func(nBare, nWithACK uint8, ackSel []bool, stagePick uint8) bool {
		stage := stages[int(stagePick)%len(stages)]
		bare := int(nBare % 5)
		withACK := int(nWithACK % 5)
		// Build a concrete tail.
		var tail []capture.PacketRecord
		var acks []uint32
		for i := 0; i < bare; i++ {
			ack := uint32(501)
			if i < len(ackSel) && ackSel[i] {
				ack = 0
			} else if i%2 == 1 && len(ackSel) > 0 && ackSel[0] {
				ack = 1961
			}
			acks = append(acks, ack)
			tail = append(tail, capture.PacketRecord{Flags: packet.FlagsRST, Ack: ack})
		}
		for i := 0; i < withACK; i++ {
			tail = append(tail, capture.PacketRecord{Flags: packet.FlagsRSTACK, Ack: 501})
		}
		want := matchSignature(stage, tail, new(Scratch))
		got := MatchRuleTable(stage, &TailSummary{Bare: bare, WithACK: withACK, BareAcks: acks})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRuleTableCoversAllSignatures checks every Table 1 signature is
// producible by the rule table.
func TestRuleTableCoversAllSignatures(t *testing.T) {
	seen := map[Signature]bool{}
	for _, r := range RuleTable {
		seen[r.Signature] = true
	}
	for _, sig := range AllSignatures() {
		if !seen[sig] {
			t.Errorf("signature %v has no rule", sig)
		}
	}
	if len(RuleTable) != 19 {
		t.Errorf("rule table has %d rows, want 19", len(RuleTable))
	}
}

func TestRuleTableSpecificCases(t *testing.T) {
	cases := []struct {
		name  string
		stage Stage
		tail  TailSummary
		want  Signature
	}{
		{"psh-zero-ack-pair", StagePostPSH, TailSummary{Bare: 2, BareAcks: []uint32{501, 0}}, SigPSHRSTRSTZero},
		{"psh-all-zero-acks", StagePostPSH, TailSummary{Bare: 2, BareAcks: []uint32{0, 0}}, SigPSHRSTEqRST},
		{"psh-neq", StagePostPSH, TailSummary{Bare: 3, BareAcks: []uint32{1, 2, 3}}, SigPSHRSTNeqRST},
		{"ack-mixed-is-other", StagePostACK, TailSummary{Bare: 1, WithACK: 1, BareAcks: []uint32{5}}, SigOtherAnomalous},
		{"data-timeout-uncovered", StagePostData, TailSummary{}, SigOtherAnomalous},
		{"syn-both", StagePostSYN, TailSummary{Bare: 2, WithACK: 1, BareAcks: []uint32{1, 2}}, SigSYNRSTRSTACK},
	}
	for _, tc := range cases {
		if got := MatchRuleTable(tc.stage, &tc.tail); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}
