package core

import (
	"testing"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/packet"
)

func TestEvidenceInjectedIPID(t *testing.T) {
	// Client counter IP-IDs 100,101,102; injected RST with IP-ID 40000.
	recs := []capture.PacketRecord{
		{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, IPID: 100, TTL: 54},
		{Timestamp: 0, Flags: packet.FlagsACK, Seq: 101, IPID: 101, TTL: 54},
		{Timestamp: 0, Flags: packet.FlagsPSHACK, Seq: 101, IPID: 102, TTL: 54, PayloadLen: 10},
		{Timestamp: 0, Flags: packet.FlagsRST, Seq: 111, IPID: 40000, TTL: 61},
	}
	ev := computeEvidence(recs)
	if ev.MaxIPIDDelta != 40000-102 {
		t.Errorf("MaxIPIDDelta = %d, want %d", ev.MaxIPIDDelta, 40000-102)
	}
	if ev.MinIPIDDelta != 1 {
		t.Errorf("MinIPIDDelta = %d, want 1", ev.MinIPIDDelta)
	}
	if ev.MaxTTLDelta != 7 {
		t.Errorf("MaxTTLDelta = %d, want 7", ev.MaxTTLDelta)
	}
	if ev.MinTTLDelta != 0 {
		t.Errorf("MinTTLDelta = %d, want 0", ev.MinTTLDelta)
	}
}

func TestEvidenceBaselineNoRST(t *testing.T) {
	recs := []capture.PacketRecord{
		{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, IPID: 500, TTL: 54},
		{Timestamp: 0, Flags: packet.FlagsACK, Seq: 101, IPID: 501, TTL: 54},
		{Timestamp: 1, Flags: packet.FlagsPSHACK, Seq: 101, IPID: 502, TTL: 54, PayloadLen: 10},
	}
	ev := computeEvidence(recs)
	if ev.MaxIPIDDelta != 1 || ev.MaxTTLDelta != 0 {
		t.Errorf("baseline maxima = %d/%d, want 1/0", ev.MaxIPIDDelta, ev.MaxTTLDelta)
	}
}

func TestEvidenceMultipleRSTsUseWorst(t *testing.T) {
	recs := []capture.PacketRecord{
		{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, IPID: 10, TTL: 54},
		{Timestamp: 0, Flags: packet.FlagsRST, Seq: 101, IPID: 11, TTL: 54},
		{Timestamp: 0, Flags: packet.FlagsRST, Seq: 101, IPID: 30000, TTL: 200},
	}
	ev := computeEvidence(recs)
	if ev.MaxIPIDDelta != 30000-10 {
		t.Errorf("MaxIPIDDelta = %d, want %d (worst RST vs preceding non-RST)", ev.MaxIPIDDelta, 30000-10)
	}
	if ev.MaxTTLDelta != 146 {
		t.Errorf("MaxTTLDelta = %d, want 146", ev.MaxTTLDelta)
	}
}

func TestZMapFingerprint(t *testing.T) {
	recs := []capture.PacketRecord{
		{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 1, IPID: 54321, TTL: 250, HasOptions: false},
		{Timestamp: 0, Flags: packet.FlagsRST, Seq: 2, IPID: 54321, TTL: 250},
	}
	ev := computeEvidence(recs)
	if !ev.ZMapFingerprint {
		t.Error("ZMap fingerprint not detected")
	}
	if !ev.HighTTL || !ev.NoSYNOptions {
		t.Errorf("HighTTL=%v NoSYNOptions=%v, want true/true", ev.HighTTL, ev.NoSYNOptions)
	}
	// A SYN with options is not ZMap even at IP-ID 54321.
	recs[0].HasOptions = true
	ev = computeEvidence(recs)
	if ev.ZMapFingerprint {
		t.Error("ZMap fingerprint with TCP options present")
	}
}

func TestSYNPayloadEvidence(t *testing.T) {
	recs := []capture.PacketRecord{
		{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 1, PayloadLen: 120, HasOptions: true, TTL: 54},
	}
	ev := computeEvidence(recs)
	if ev.SYNPayloadLen != 120 {
		t.Errorf("SYNPayloadLen = %d, want 120", ev.SYNPayloadLen)
	}
}

func TestEvidenceEmpty(t *testing.T) {
	ev := computeEvidence(nil)
	if ev.MaxIPIDDelta != 0 || ev.MinIPIDDelta != 0 {
		t.Errorf("empty evidence = %+v", ev)
	}
}

func TestEvidenceIPv6Invalidated(t *testing.T) {
	c := conn(30,
		rec(0, packet.FlagsSYN, 100, 0, 0),
		rec(0, packet.FlagsACK, 101, 501, 0),
	)
	c.IPVersion = 6
	r := cl.Classify(c)
	if r.Evidence.IPIDValid {
		t.Error("IPIDValid true for IPv6 connection")
	}
}
