// Package core implements the paper's primary contribution: the
// comprehensive set of tampering signatures (Table 1) and the passive
// classifier that applies them to sampled connection records, plus the
// §4.2/§4.3 validation heuristics (scanner fingerprints, IP-ID and TTL
// injection evidence).
package core

// Stage is how far a connection progressed before the tampering event —
// the row groups of Table 1.
type Stage int

// Connection stages.
const (
	// StageNone marks connections with no tampering event.
	StageNone Stage = iota
	// StagePostSYN: mid-handshake, only a single SYN seen.
	StagePostSYN
	// StagePostACK: immediately post-handshake (SYN then pure ACK).
	StagePostACK
	// StagePostPSH: after the first data packet.
	StagePostPSH
	// StagePostData: after multiple data packets.
	StagePostData
	// StageOther: a possibly-tampered connection whose prefix fits no
	// canonical stage (the paper's uncovered 2.3%, §4.1).
	StageOther
	NumStages
)

// String names the stage as in the paper.
func (s Stage) String() string {
	switch s {
	case StageNone:
		return "None"
	case StagePostSYN:
		return "Post-SYN"
	case StagePostACK:
		return "Post-ACK"
	case StagePostPSH:
		return "Post-PSH"
	case StagePostData:
		return "Post-Data"
	case StageOther:
		return "Other"
	default:
		return "Invalid"
	}
}

// Signature is one of the 19 tampering signatures of Table 1, or one of
// the two non-signature outcomes (NotTampering, OtherAnomalous).
type Signature int

// Table 1 signatures, in table order.
const (
	// SigNotTampering marks connections with no tampering indication.
	SigNotTampering Signature = iota

	// Post-SYN signatures.
	SigSYNTimeout   // ⟨SYN → ∅⟩
	SigSYNRST       // ⟨SYN → RST⟩
	SigSYNRSTACK    // ⟨SYN → RST+ACK⟩
	SigSYNRSTRSTACK // ⟨SYN → RST;RST+ACK⟩

	// Post-ACK signatures.
	SigACKTimeout      // ⟨SYN;ACK → ∅⟩
	SigACKRST          // ⟨SYN;ACK → RST⟩ (exactly one)
	SigACKRSTRST       // ⟨SYN;ACK → RST;RST⟩ (more than one)
	SigACKRSTACK       // ⟨SYN;ACK → RST+ACK⟩ (exactly one)
	SigACKRSTACKRSTACK // ⟨SYN;ACK → RST+ACK;RST+ACK⟩ (more than one)

	// Post-PSH signatures.
	SigPSHTimeout      // ⟨PSH+ACK → ∅⟩
	SigPSHRST          // ⟨PSH+ACK → RST⟩ (exactly one)
	SigPSHRSTACK       // ⟨PSH+ACK → RST+ACK⟩ (exactly one)
	SigPSHRSTRSTACK    // ⟨PSH+ACK → RST;RST+ACK⟩
	SigPSHRSTACKRSTACK // ⟨PSH+ACK → RST+ACK;RST+ACK⟩
	SigPSHRSTEqRST     // ⟨PSH+ACK → RST=RST⟩ (same ack numbers)
	SigPSHRSTNeqRST    // ⟨PSH+ACK → RST≠RST⟩ (different ack numbers)
	SigPSHRSTRSTZero   // ⟨PSH+ACK → RST;RST₀⟩ (one ack number zero)

	// Post-multiple-data-packet signatures.
	SigDataRST    // ⟨PSH+ACK;Data → RST⟩
	SigDataRSTACK // ⟨PSH+ACK;Data → RST+ACK⟩

	// SigOtherAnomalous marks possibly-tampered connections matching no
	// signature.
	SigOtherAnomalous

	NumSignatures
)

var signatureNames = [NumSignatures]string{
	"Not Tampering",
	"SYN → ∅",
	"SYN → RST",
	"SYN → RST+ACK",
	"SYN → RST;RST+ACK",
	"SYN;ACK → ∅",
	"SYN;ACK → RST",
	"SYN;ACK → RST;RST",
	"SYN;ACK → RST+ACK",
	"SYN;ACK → RST+ACK;RST+ACK",
	"PSH → ∅",
	"PSH → RST",
	"PSH → RST+ACK",
	"PSH → RST;RST+ACK",
	"PSH → RST+ACK;RST+ACK",
	"PSH → RST=RST",
	"PSH → RST≠RST",
	"PSH → RST;RST₀",
	"PSH;Data → RST",
	"PSH;Data → RST+ACK",
	"Other",
}

// String returns the paper's notation for the signature.
func (s Signature) String() string {
	if s < 0 || s >= NumSignatures {
		return "Invalid"
	}
	return signatureNames[s]
}

// Stage returns the Table 1 row group the signature belongs to.
func (s Signature) Stage() Stage {
	switch {
	case s >= SigSYNTimeout && s <= SigSYNRSTRSTACK:
		return StagePostSYN
	case s >= SigACKTimeout && s <= SigACKRSTACKRSTACK:
		return StagePostACK
	case s >= SigPSHTimeout && s <= SigPSHRSTRSTZero:
		return StagePostPSH
	case s == SigDataRST || s == SigDataRSTACK:
		return StagePostData
	case s == SigOtherAnomalous:
		return StageOther
	default:
		return StageNone
	}
}

// IsTampering reports whether the signature is one of the 19 tampering
// signatures (excluding NotTampering and OtherAnomalous).
func (s Signature) IsTampering() bool {
	return s > SigNotTampering && s < SigOtherAnomalous
}

// AllSignatures lists the 19 tampering signatures in Table 1 order.
func AllSignatures() []Signature {
	out := make([]Signature, 0, 19)
	for s := SigSYNTimeout; s < SigOtherAnomalous; s++ {
		out = append(out, s)
	}
	return out
}

// PostACKOrPSH reports whether the signature belongs to the Post-ACK or
// Post-PSH groups — the subset §5 restricts several analyses to because
// they are least affected by SYN floods and Happy Eyeballs (§4.2).
func (s Signature) PostACKOrPSH() bool {
	st := s.Stage()
	return st == StagePostACK || st == StagePostPSH
}
