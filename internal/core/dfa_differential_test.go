package core_test

// The differential battery for the compiled signature automaton: the
// DFA matcher (MatcherDFA) must produce a Result identical — same
// signature, stage, disposition, domain, and evidence — to the legacy
// multi-pass matcher (MatcherLegacy) on every input. Coverage comes
// from three directions: exhaustive enumeration of packet-archetype
// sequences (full alphabet to length 4, reduced alphabets to length
// 6, each under five connection contexts), a table of every
// signature's canonical and truncated forms with pinned expectations,
// and the full fixture corpus from the workload generator. The fuzz
// target FuzzDFAClassifierParity extends the same oracle check to
// arbitrary inputs.

import (
	"net/netip"
	"testing"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/workload"
)

// The packet archetypes. Together they hit every event class the
// automaton distinguishes, plus redundant flag combinations that must
// collapse to the same class (pshData vs ackData, synAck vs bare
// empty).
var archetypes = []capture.PacketRecord{
	{Flags: packet.FlagSYN},                                   // pure SYN
	{Flags: packet.FlagSYN, PayloadLen: 3},                    // SYN with payload
	{Flags: packet.FlagACK},                                   // handshake ACK
	{Flags: packet.FlagPSH | packet.FlagACK, PayloadLen: 120}, // data
	{Flags: packet.FlagACK, PayloadLen: 60},                   // data, no PSH
	{Flags: packet.FlagPSH | packet.FlagACK},                  // empty PSH+ACK
	{Flags: packet.FlagSYN | packet.FlagACK},                  // SYN+ACK
	{Flags: packet.FlagSYN | packet.FlagACK, PayloadLen: 40},  // SYN+ACK data
	{Flags: packet.FlagFIN | packet.FlagACK},                  // FIN
	{Flags: packet.FlagFIN | packet.FlagACK, PayloadLen: 10},  // FIN data
	{Flags: packet.FlagRST},                                   // bare RST, ack 0
	{Flags: packet.FlagRST, Ack: 500},                         // bare RST, ack A
	{Flags: packet.FlagRST, Ack: 700},                         // bare RST, ack B
	{Flags: packet.FlagRST | packet.FlagACK, Ack: 600},        // RST+ACK
}

// Reduced alphabets for the longer lengths, where the full product
// space is too large: length 5 drops the redundant data/SYN variants,
// length 6 keeps one representative per prefix role plus every RST
// kind (the tail taxonomy is where depth matters).
var (
	archesLen5 = []capture.PacketRecord{
		{Flags: packet.FlagSYN},
		{Flags: packet.FlagACK},
		{Flags: packet.FlagPSH | packet.FlagACK, PayloadLen: 120},
		{Flags: packet.FlagPSH | packet.FlagACK},
		{Flags: packet.FlagFIN | packet.FlagACK},
		{Flags: packet.FlagRST},
		{Flags: packet.FlagRST, Ack: 500},
		{Flags: packet.FlagRST, Ack: 700},
		{Flags: packet.FlagRST | packet.FlagACK, Ack: 600},
	}
	archesLen6 = []capture.PacketRecord{
		{Flags: packet.FlagSYN},
		{Flags: packet.FlagACK},
		{Flags: packet.FlagPSH | packet.FlagACK, PayloadLen: 120},
		{Flags: packet.FlagRST},
		{Flags: packet.FlagRST, Ack: 500},
		{Flags: packet.FlagRST, Ack: 700},
		{Flags: packet.FlagRST | packet.FlagACK, Ack: 600},
	}
)

// Connection contexts: the same packet sequence is judged under each,
// varying the disposition inputs (trailing silence, internal gap,
// filled packet cap, IP version) that gate PossiblyTampered.
const numContexts = 5

// buildConn materialises a sequence under one context. Timestamps
// strictly increase (so reconstruction preserves the given order) and
// IPID/TTL vary per position so the evidence fields are nontrivial.
func buildConn(seq []capture.PacketRecord, ctx int) *capture.Connection {
	c := &capture.Connection{
		SrcIP:   netip.MustParseAddr("192.0.2.1"),
		DstIP:   netip.MustParseAddr("198.51.100.9"),
		SrcPort: 40000, DstPort: 443, IPVersion: 4,
	}
	if ctx == 4 {
		c.SrcIP = netip.MustParseAddr("2001:db8::1")
		c.DstIP = netip.MustParseAddr("2001:db8::2")
		c.IPVersion = 6
	}
	c.Packets = append(c.Packets, seq...)
	last := int64(0)
	for i := range c.Packets {
		p := &c.Packets[i]
		p.Timestamp = int64(i)
		if ctx == 2 && i >= len(c.Packets)/2 {
			p.Timestamp += 5 // internal >=3s gap
		}
		p.IPID = uint16(100 + 37*i)
		p.TTL = byte(64 + i)
		p.Seq = uint32(1000 + 100*i)
		last = p.Timestamp
	}
	c.TotalPackets = len(c.Packets)
	c.LastActivity = last
	c.CloseTime = last
	switch ctx {
	case 1:
		c.CloseTime = last + 10 // trailing silence
	case 3:
		c.TotalPackets = 10 // cap filled: trailing silence doesn't count
		c.CloseTime = last + 10
	}
	return c
}

type diffPair struct {
	dfa, legacy *core.Classifier
	ds, ls      core.Scratch
}

func newDiffPair() *diffPair {
	return &diffPair{
		dfa:    core.NewClassifier(core.Config{Matcher: core.MatcherDFA}),
		legacy: core.NewClassifier(core.Config{Matcher: core.MatcherLegacy}),
	}
}

// check classifies conn with both engines and fails on any divergence.
func (d *diffPair) check(t *testing.T, conn *capture.Connection, seq []capture.PacketRecord) core.Result {
	t.Helper()
	got := d.dfa.ClassifyWith(conn, &d.ds)
	want := d.legacy.ClassifyWith(conn, &d.ls)
	if got != want {
		t.Fatalf("DFA and legacy diverge on %v:\n  dfa:    %+v\n  legacy: %+v", describe(seq), got, want)
	}
	return got
}

func describe(seq []capture.PacketRecord) []string {
	out := make([]string, len(seq))
	for i, p := range seq {
		out[i] = p.Flags.String()
		if p.PayloadLen > 0 {
			out[i] += "+data"
		}
	}
	return out
}

// TestDFAMatchesLegacyExhaustive enumerates every archetype sequence
// up to length 6 (full alphabet to length 4, reduced beyond) under
// every context and asserts Result identity.
func TestDFAMatchesLegacyExhaustive(t *testing.T) {
	d := newDiffPair()
	sigs := map[core.Signature]bool{}
	total := 0
	run := func(alphabet []capture.PacketRecord, length int) {
		idx := make([]int, length)
		seq := make([]capture.PacketRecord, length)
		for {
			for i, a := range idx {
				seq[i] = alphabet[a]
			}
			for ctx := 0; ctx < numContexts; ctx++ {
				res := d.check(t, buildConn(seq, ctx), seq)
				sigs[res.Signature] = true
				total++
			}
			// Odometer increment.
			i := length - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(alphabet) {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				return
			}
		}
	}
	maxFull := 4
	if testing.Short() {
		maxFull = 3
	}
	for length := 0; length <= maxFull; length++ {
		run(archetypes, length)
	}
	if !testing.Short() {
		run(archesLen5, 5)
		run(archesLen6, 6)
	}
	t.Logf("compared %d classifications, %d distinct signatures", total, len(sigs))
	// The enumeration must actually exercise the taxonomy: nearly every
	// signature should appear (SigOtherAnomalous and the timeouts
	// included). The -short run stops at length 3, too shallow for the
	// multi-RST tails, so the floor only applies to the full run.
	if !testing.Short() && len(sigs) < 18 {
		t.Errorf("only %d distinct signatures reached; enumeration too shallow", len(sigs))
	}
}

// TestDFAMatchesLegacyCorpus replays the full fixture corpus (the
// seeded workload generator, with its middleboxes and impairments)
// through both engines.
func TestDFAMatchesLegacyCorpus(t *testing.T) {
	total := 20000
	if testing.Short() {
		total = 3000
	}
	s, err := workload.BuildScenario("dfa-differential", total, 72, 977)
	if err != nil {
		t.Fatal(err)
	}
	conns := s.Run(0)
	if len(conns) < total/2 {
		t.Fatalf("scenario produced only %d connections", len(conns))
	}
	d := newDiffPair()
	sigs := map[core.Signature]bool{}
	for _, c := range conns {
		res := d.check(t, c, c.Packets)
		sigs[res.Signature] = true
	}
	t.Logf("corpus: %d connections, %d distinct signatures", len(conns), len(sigs))
}

// TestDFASignatureTable pins every signature's canonical form and key
// truncated variants: both engines must agree with the expectation,
// not merely with each other.
func TestDFASignatureTable(t *testing.T) {
	syn := capture.PacketRecord{Flags: packet.FlagSYN}
	ack := capture.PacketRecord{Flags: packet.FlagACK}
	dat := capture.PacketRecord{Flags: packet.FlagPSH | packet.FlagACK, PayloadLen: 100}
	rst := func(a uint32) capture.PacketRecord { return capture.PacketRecord{Flags: packet.FlagRST, Ack: a} }
	rak := capture.PacketRecord{Flags: packet.FlagRST | packet.FlagACK, Ack: 600}
	fin := capture.PacketRecord{Flags: packet.FlagFIN | packet.FlagACK}

	// ctx 0 = plain, 1 = trailing silence (for the timeout rows).
	cases := []struct {
		name  string
		seq   []capture.PacketRecord
		ctx   int
		sig   core.Signature
		stage core.Stage
		poss  bool
	}{
		// Canonical forms, one per Table 1 signature.
		{"syn-timeout", []capture.PacketRecord{syn}, 1, core.SigSYNTimeout, core.StagePostSYN, true},
		{"syn-rst", []capture.PacketRecord{syn, rst(5)}, 0, core.SigSYNRST, core.StagePostSYN, true},
		{"syn-rstack", []capture.PacketRecord{syn, rak}, 0, core.SigSYNRSTACK, core.StagePostSYN, true},
		{"syn-rst-rstack", []capture.PacketRecord{syn, rst(5), rak}, 0, core.SigSYNRSTRSTACK, core.StagePostSYN, true},
		{"ack-timeout", []capture.PacketRecord{syn, ack}, 1, core.SigACKTimeout, core.StagePostACK, true},
		{"ack-rst", []capture.PacketRecord{syn, ack, rst(5)}, 0, core.SigACKRST, core.StagePostACK, true},
		{"ack-rst-rst", []capture.PacketRecord{syn, ack, rst(5), rst(5)}, 0, core.SigACKRSTRST, core.StagePostACK, true},
		{"ack-rstack", []capture.PacketRecord{syn, ack, rak}, 0, core.SigACKRSTACK, core.StagePostACK, true},
		{"ack-rstack-rstack", []capture.PacketRecord{syn, ack, rak, rak}, 0, core.SigACKRSTACKRSTACK, core.StagePostACK, true},
		{"psh-timeout", []capture.PacketRecord{syn, ack, dat}, 1, core.SigPSHTimeout, core.StagePostPSH, true},
		{"psh-rst", []capture.PacketRecord{syn, ack, dat, rst(5)}, 0, core.SigPSHRST, core.StagePostPSH, true},
		{"psh-rstack", []capture.PacketRecord{syn, ack, dat, rak}, 0, core.SigPSHRSTACK, core.StagePostPSH, true},
		{"psh-rstack-rstack", []capture.PacketRecord{syn, ack, dat, rak, rak}, 0, core.SigPSHRSTACKRSTACK, core.StagePostPSH, true},
		{"psh-rst-rstack", []capture.PacketRecord{syn, ack, dat, rst(5), rak}, 0, core.SigPSHRSTRSTACK, core.StagePostPSH, true},
		{"psh-rst-eq-rst", []capture.PacketRecord{syn, ack, dat, rst(5), rst(5)}, 0, core.SigPSHRSTEqRST, core.StagePostPSH, true},
		{"psh-rst-neq-rst", []capture.PacketRecord{syn, ack, dat, rst(5), rst(7)}, 0, core.SigPSHRSTNeqRST, core.StagePostPSH, true},
		{"psh-rst-rst-zero", []capture.PacketRecord{syn, ack, dat, rst(5), rst(0)}, 0, core.SigPSHRSTRSTZero, core.StagePostPSH, true},
		{"data-rst", []capture.PacketRecord{syn, ack, dat, ack, rst(5)}, 0, core.SigDataRST, core.StagePostData, true},
		{"data-rstack", []capture.PacketRecord{syn, ack, dat, ack, rak}, 0, core.SigDataRSTACK, core.StagePostData, true},

		// Truncated / non-canonical variants.
		{"empty", nil, 1, core.SigNotTampering, core.StageNone, false},
		{"syn-no-anomaly", []capture.PacketRecord{syn}, 0, core.SigNotTampering, core.StageNone, false},
		{"handshake-only", []capture.PacketRecord{syn, ack, dat, ack}, 0, core.SigNotTampering, core.StageNone, false},
		{"graceful-fin", []capture.PacketRecord{syn, ack, dat, fin}, 1, core.SigNotTampering, core.StageNone, false},
		{"bare-rst-first", []capture.PacketRecord{rst(5)}, 0, core.SigOtherAnomalous, core.StageOther, true},
		{"no-handshake-ack", []capture.PacketRecord{syn, dat, rst(5)}, 0, core.SigOtherAnomalous, core.StageOther, true},
		{"no-syn", []capture.PacketRecord{ack, dat, rst(5)}, 0, core.SigOtherAnomalous, core.StageOther, true},
		{"data-after-rst", []capture.PacketRecord{syn, ack, dat, rst(5), dat}, 0, core.SigOtherAnomalous, core.StageOther, true},
		{"post-data-timeout", []capture.PacketRecord{syn, ack, dat, ack}, 1, core.SigOtherAnomalous, core.StagePostData, true},
		{"mixed-post-ack-tail", []capture.PacketRecord{syn, ack, rst(5), rak}, 0, core.SigOtherAnomalous, core.StagePostACK, true},
	}

	d := newDiffPair()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := buildConn(tc.seq, tc.ctx)
			res := d.check(t, conn, tc.seq)
			if res.Signature != tc.sig || res.Stage != tc.stage || res.PossiblyTampered != tc.poss {
				t.Errorf("got sig=%s stage=%s possibly=%v, want sig=%s stage=%s possibly=%v",
					res.Signature, res.Stage, res.PossiblyTampered, tc.sig, tc.stage, tc.poss)
			}
		})
	}
}

// connFromFuzz decodes an arbitrary byte string into a connection:
// one context byte, then five bytes per packet (raw flags, payload
// size, ack selector, timestamp delta, header entropy). Every byte
// string yields a valid connection, so the fuzzer explores flag
// combinations the archetype alphabet does not contain (URG/ECE/CWR,
// SYN+FIN, RST+FIN, arbitrary ack values).
func connFromFuzz(data []byte) *capture.Connection {
	if len(data) == 0 {
		return nil
	}
	ctl, pkts := data[0], data[1:]
	n := len(pkts) / 5
	if n > 12 {
		n = 12
	}
	c := &capture.Connection{
		SrcIP:   netip.MustParseAddr("192.0.2.7"),
		DstIP:   netip.MustParseAddr("203.0.113.3"),
		SrcPort: 41000, DstPort: 443, IPVersion: 4,
	}
	if ctl&1 != 0 {
		c.SrcIP = netip.MustParseAddr("2001:db8::7")
		c.DstIP = netip.MustParseAddr("2001:db8::3")
		c.IPVersion = 6
	}
	ts := int64(0)
	for i := 0; i < n; i++ {
		b := pkts[i*5 : i*5+5]
		ts += int64(b[3] % 5) // deltas 0..4 straddle the 3s threshold
		var ackv uint32
		switch b[2] % 4 {
		case 0:
			ackv = 0
		case 1:
			ackv = 500
		case 2:
			ackv = 700
		default:
			ackv = uint32(b[2])
		}
		c.Packets = append(c.Packets, capture.PacketRecord{
			Timestamp:  ts,
			Flags:      packet.TCPFlags(b[0]),
			Seq:        uint32(b[4]) * 13,
			Ack:        ackv,
			IPID:       uint16(b[4]) << 3,
			TTL:        b[4],
			PayloadLen: int(b[1] % 4),
		})
	}
	c.TotalPackets = len(c.Packets)
	if ctl&2 != 0 {
		c.TotalPackets = 10
	}
	c.LastActivity = ts
	c.CloseTime = ts
	if ctl&4 != 0 {
		c.CloseTime = ts + 10
	}
	return c
}

// FuzzDFAClassifierParity fuzzes the oracle property directly: for
// any generated connection, the DFA and legacy matchers return the
// identical Result.
func FuzzDFAClassifierParity(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{4, 2, 0, 0, 0, 0})                                        // lone SYN, trailing silence
	f.Add([]byte{0, 2, 0, 0, 0, 0, 16, 0, 0, 0, 1, 4, 0, 1, 0, 2})        // SYN ACK RST
	f.Add([]byte{1, 2, 0, 0, 1, 0, 16, 0, 0, 0, 1, 24, 2, 0, 0, 2, 20, 0, 1, 0, 3}) // v6 handshake + data + RST+ACK
	f.Add([]byte{6, 4, 0, 0, 4, 0, 1, 0, 0, 0, 5})                        // gaps + FIN
	dfa := core.NewClassifier(core.Config{Matcher: core.MatcherDFA})
	legacy := core.NewClassifier(core.Config{Matcher: core.MatcherLegacy})
	f.Fuzz(func(t *testing.T, data []byte) {
		conn := connFromFuzz(data)
		if conn == nil {
			return
		}
		var ds, ls core.Scratch
		got := dfa.ClassifyWith(conn, &ds)
		want := legacy.ClassifyWith(conn, &ls)
		if got != want {
			t.Fatalf("DFA and legacy diverge:\n  conn:   %+v\n  dfa:    %+v\n  legacy: %+v", conn, got, want)
		}
	})
}
