package core

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/httpwire"
	"tamperdetect/internal/middlebox"
	"tamperdetect/internal/netsim"
	"tamperdetect/internal/tcpsim"
	"tamperdetect/internal/tlswire"
)

// This file is the keystone test of the reproduction: it runs real
// client/server TCP state machines over the simulated network through
// each censor profile, captures inbound packets under the paper's
// collection constraints (1 s timestamps, 10-packet cap, inbound only,
// shuffled within seconds), and asserts that the classifier recovers
// the exact Table 1 signature the profile models.

// endToEnd simulates one connection through the policies and classifies it.
func endToEnd(t *testing.T, policies []middlebox.Policy, seed uint64, segs []tcpsim.Segment, behavior tcpsim.Behavior) Result {
	t.Helper()
	sim := netsim.NewSim(0)
	rng := rand.New(rand.NewPCG(seed, seed*31+7))
	cprof := tcpsim.NetProfile{
		LocalIP:    netip.MustParseAddr("20.0.5.9"),
		RemoteIP:   netip.MustParseAddr("192.0.2.80"),
		LocalPort:  41000,
		RemotePort: 443,
		InitialTTL: 64,
		IPID:       tcpsim.IPIDCounter,
		IPIDValue:  uint16(rng.IntN(60000)),
		Window:     64240,
		SYNOptions: true,
	}
	sprof := tcpsim.NetProfile{
		LocalIP: cprof.RemoteIP, RemoteIP: cprof.LocalIP,
		LocalPort: 443, RemotePort: 41000,
		InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: uint16(rng.IntN(60000)),
		Window: 65535, SYNOptions: true,
	}
	cli := tcpsim.NewClient(sim, tcpsim.ClientConfig{Net: cprof, Segments: segs, Behavior: behavior}, rng)
	srv := tcpsim.NewServer(sim, tcpsim.ServerConfig{Net: sprof}, rng)
	eng := middlebox.NewEngine(policies, rng, sim.Now)
	path := netsim.NewPath(sim, netsim.PathConfig{
		Segments:    []netsim.Segment{{Delay: 30 * time.Millisecond, Hops: 5}, {Delay: 40 * time.Millisecond, Hops: 7}},
		Middleboxes: []netsim.Middlebox{eng},
	}, cli, srv)
	scfg := capture.DefaultConfig()
	scfg.ShuffleWithinSecond = rand.New(rand.NewPCG(seed^0xf00d, seed))
	sampler := capture.NewSampler(scfg)
	path.Tap = sampler.Inbound
	cli.Attach(path.SendFromClient)
	srv.Attach(path.SendFromServer)
	cli.Start()
	sim.Run(200000)
	// Close the window well after the last activity.
	conns := sampler.Drain(sim.Now().Add(60 * time.Second))
	if len(conns) != 1 {
		t.Fatalf("sampled %d connections, want 1", len(conns))
	}
	return NewClassifier(DefaultConfig()).Classify(conns[0])
}

func tlsSeg(domain string) []tcpsim.Segment {
	return []tcpsim.Segment{{Data: tlswire.BuildClientHello(tlswire.ClientHelloSpec{ServerName: domain})}}
}

func httpSeg(domain string) []tcpsim.Segment {
	return []tcpsim.Segment{{Data: httpwire.BuildRequest("GET", domain, "/", nil)}}
}

func anyDomain(string) bool { return true }
func anyIP(netip.Addr) bool { return true }

func TestEndToEndNormalConnection(t *testing.T) {
	r := endToEnd(t, nil, 1, tlsSeg("ok.example"), tcpsim.BehaviorNormal)
	if r.Signature != SigNotTampering || r.PossiblyTampered {
		t.Errorf("clean connection → %v (tampered=%v)", r.Signature, r.PossiblyTampered)
	}
	if r.Domain != "ok.example" || r.Protocol != ProtoTLS {
		t.Errorf("domain/proto = %q/%v", r.Domain, r.Protocol)
	}
}

func TestEndToEndGFW(t *testing.T) {
	// Across seeds, the GFW profile must always produce Post-PSH
	// signatures, specifically the burst family it models.
	wantSet := map[Signature]bool{
		SigPSHRSTACKRSTACK: true,
		SigPSHRSTRSTACK:    true,
		SigPSHRSTRSTZero:   true,
		SigPSHRST:          true,
		SigPSHRSTEqRST:     true, // burst of equal-ack bare RSTs after loss
	}
	got := map[Signature]int{}
	for seed := uint64(1); seed <= 30; seed++ {
		r := endToEnd(t, []middlebox.Policy{middlebox.GFW(anyDomain)}, seed, tlsSeg("blocked.cn"), tcpsim.BehaviorNormal)
		if !wantSet[r.Signature] {
			t.Fatalf("seed %d: GFW → %v", seed, r.Signature)
		}
		got[r.Signature]++
		if r.Domain != "blocked.cn" {
			t.Fatalf("seed %d: domain %q not recovered (GFW forwards the trigger)", seed, r.Domain)
		}
		if r.Stage != StagePostPSH {
			t.Fatalf("seed %d: stage %v", seed, r.Stage)
		}
	}
	if len(got) < 3 {
		t.Errorf("GFW variants collapsed to %v", got)
	}
}

func TestEndToEndIran(t *testing.T) {
	got := map[Signature]int{}
	for seed := uint64(1); seed <= 30; seed++ {
		r := endToEnd(t, []middlebox.Policy{middlebox.IranDPI(anyDomain)}, seed, tlsSeg("protest.ir"), tcpsim.BehaviorNormal)
		switch r.Signature {
		case SigACKTimeout, SigACKRSTACK, SigACKRSTACKRSTACK:
			got[r.Signature]++
		default:
			t.Fatalf("seed %d: Iran → %v", seed, r.Signature)
		}
		if r.Domain != "" {
			t.Fatalf("seed %d: domain %q visible despite drop", seed, r.Domain)
		}
	}
	if got[SigACKTimeout] == 0 {
		t.Error("silent-drop variant never seen")
	}
	if got[SigACKRSTACK]+got[SigACKRSTACKRSTACK] == 0 {
		t.Error("RST+ACK variants never seen")
	}
}

func TestEndToEndTurkmenistanHTTP(t *testing.T) {
	r := endToEnd(t, []middlebox.Policy{middlebox.HTTPReset(anyDomain)}, 3, httpSeg("blocked.tm"), tcpsim.BehaviorNormal)
	if r.Signature != SigACKRST {
		t.Errorf("HTTPReset → %v, want SYN;ACK → RST", r.Signature)
	}
}

func TestEndToEndKoreaAckGuess(t *testing.T) {
	r := endToEnd(t, []middlebox.Policy{middlebox.AckGuessingRST(anyDomain, true)}, 5, tlsSeg("kr.example"), tcpsim.BehaviorNormal)
	if r.Signature != SigPSHRSTNeqRST {
		t.Errorf("AckGuessingRST → %v, want PSH → RST≠RST", r.Signature)
	}
	if r.Evidence.MaxTTLDelta == 0 {
		t.Error("randomized-TTL injection left no TTL evidence")
	}
}

func TestEndToEndEnterpriseFirewall(t *testing.T) {
	segs := []tcpsim.Segment{
		{Data: httpwire.BuildRequest("GET", "intra.example", "/fine", nil)},
		{Data: httpwire.BuildRequest("GET", "intra.example", "/banned-word", nil), AfterResponse: true},
	}
	r := endToEnd(t, []middlebox.Policy{middlebox.EnterpriseFirewall("banned-word", true)}, 7, segs, tcpsim.BehaviorNormal)
	if r.Signature != SigDataRSTACK {
		t.Errorf("EnterpriseFirewall → %v, want PSH;Data → RST+ACK", r.Signature)
	}
	if r.Stage != StagePostData {
		t.Errorf("stage = %v", r.Stage)
	}
}

func TestEndToEndIPBlackhole(t *testing.T) {
	r := endToEnd(t, []middlebox.Policy{middlebox.IPBlackhole(anyIP)}, 9, tlsSeg("x.example"), tcpsim.BehaviorNormal)
	if r.Signature != SigSYNTimeout {
		t.Errorf("IPBlackhole → %v, want SYN → ∅", r.Signature)
	}
}

func TestEndToEndIPResetVariants(t *testing.T) {
	r := endToEnd(t, []middlebox.Policy{middlebox.IPReset(anyIP, false, 1)}, 11, tlsSeg("x.example"), tcpsim.BehaviorNormal)
	if r.Signature != SigSYNRST {
		t.Errorf("IPReset(RST) → %v, want SYN → RST", r.Signature)
	}
	r = endToEnd(t, []middlebox.Policy{middlebox.IPReset(anyIP, true, 2)}, 13, tlsSeg("x.example"), tcpsim.BehaviorNormal)
	if r.Signature != SigSYNRSTACK {
		t.Errorf("IPReset(RST+ACK) → %v, want SYN → RST+ACK", r.Signature)
	}
	r = endToEnd(t, []middlebox.Policy{middlebox.GFWIPBlock(anyIP)}, 15, tlsSeg("x.example"), tcpsim.BehaviorNormal)
	if r.Signature != SigSYNRSTRSTACK {
		t.Errorf("GFWIPBlock → %v, want SYN → RST;RST+ACK", r.Signature)
	}
}

func TestEndToEndTSPUVariantSignatures(t *testing.T) {
	wants := map[int]Signature{
		0: SigPSHTimeout,
		1: SigPSHRST,
		2: SigPSHRSTEqRST,
		3: SigACKRSTACK,
		4: SigPSHRSTACK,
	}
	for variant, want := range wants {
		r := endToEnd(t, []middlebox.Policy{middlebox.TSPUVariant(anyDomain, variant)}, uint64(17+variant), tlsSeg("ru.example"), tcpsim.BehaviorNormal)
		if r.Signature != want {
			t.Errorf("TSPU variant %d → %v, want %v", variant, r.Signature, want)
		}
	}
}

func TestEndToEndScannerLooksLikeSYNRST(t *testing.T) {
	// The §4.2 false-positive source: a ZMap-style scanner matches
	// ⟨SYN → RST⟩ but carries the scanner fingerprint.
	sim := uint64(21)
	r := func() Result {
		prof := tcpsim.NetProfile{
			LocalIP:   netip.MustParseAddr("20.0.9.9"),
			RemoteIP:  netip.MustParseAddr("192.0.2.80"),
			LocalPort: 42000, RemotePort: 443,
			InitialTTL: 255, IPID: tcpsim.IPIDFixed, IPIDValue: 54321,
			Window: 65535, SYNOptions: false,
		}
		s := netsim.NewSim(0)
		rng := rand.New(rand.NewPCG(sim, sim))
		cli := tcpsim.NewClient(s, tcpsim.ClientConfig{Net: prof, Behavior: tcpsim.BehaviorScanner}, rng)
		srv := tcpsim.NewServer(s, tcpsim.ServerConfig{Net: tcpsim.NetProfile{
			LocalIP: prof.RemoteIP, RemoteIP: prof.LocalIP, LocalPort: 443, RemotePort: 42000,
			InitialTTL: 64, Window: 65535, SYNOptions: true,
		}}, rng)
		path := netsim.NewPath(s, netsim.PathConfig{Segments: []netsim.Segment{{Delay: 10 * time.Millisecond, Hops: 9}}}, cli, srv)
		sampler := capture.NewSampler(capture.DefaultConfig())
		path.Tap = sampler.Inbound
		cli.Attach(path.SendFromClient)
		srv.Attach(path.SendFromServer)
		cli.Start()
		s.Run(0)
		conns := sampler.Drain(s.Now().Add(30 * time.Second))
		return NewClassifier(DefaultConfig()).Classify(conns[0])
	}()
	if r.Signature != SigSYNRST {
		t.Fatalf("scanner → %v, want SYN → RST", r.Signature)
	}
	if !r.Evidence.ZMapFingerprint || !r.Evidence.HighTTL {
		t.Errorf("scanner fingerprints missing: %+v", r.Evidence)
	}
}

func TestEndToEndHappyEyeballs(t *testing.T) {
	r := endToEnd(t, nil, 23, nil, tcpsim.BehaviorHappyEyeballsReset)
	if r.Signature != SigSYNRST {
		t.Errorf("HE reset → %v, want SYN → RST", r.Signature)
	}
	if r.Evidence.ZMapFingerprint {
		t.Error("normal client flagged as ZMap")
	}
	r = endToEnd(t, nil, 25, nil, tcpsim.BehaviorHappyEyeballsDrop)
	if r.Signature != SigSYNTimeout {
		t.Errorf("HE drop → %v, want SYN → ∅", r.Signature)
	}
}

func TestEndToEndAnomalousClients(t *testing.T) {
	r := endToEnd(t, nil, 27, nil, tcpsim.BehaviorRedundantACK)
	if r.Signature != SigOtherAnomalous {
		t.Errorf("redundant-ACK client → %v, want Other", r.Signature)
	}
	r = endToEnd(t, nil, 29, nil, tcpsim.BehaviorStallHandshake)
	if r.Signature != SigACKTimeout {
		t.Errorf("stalled client → %v, want SYN;ACK → ∅ (benign false positive)", r.Signature)
	}
}

func TestEndToEndIPIDEvidenceSeparation(t *testing.T) {
	// Injected tear-downs must show large IP-ID deltas; clean
	// connections must not.
	rTampered := endToEnd(t, []middlebox.Policy{middlebox.GFW(anyDomain)}, 31, tlsSeg("cn.example"), tcpsim.BehaviorNormal)
	rClean := endToEnd(t, nil, 33, tlsSeg("ok.example"), tcpsim.BehaviorNormal)
	// Two identical client ACKs within one second are genuinely
	// unorderable from headers (the paper's baseline is ">95% ≤ 1",
	// not 100%), so a clean connection may show a delta of 2.
	if rClean.Evidence.MaxIPIDDelta > 2 {
		t.Errorf("clean MaxIPIDDelta = %d, want ≤2", rClean.Evidence.MaxIPIDDelta)
	}
	if rTampered.Evidence.MaxIPIDDelta <= 1 {
		t.Errorf("tampered MaxIPIDDelta = %d, want >1 (random injector IP-ID)", rTampered.Evidence.MaxIPIDDelta)
	}
}

func TestEndToEndIPv6(t *testing.T) {
	sim := netsim.NewSim(0)
	rng := rand.New(rand.NewPCG(35, 35))
	cprof := tcpsim.NetProfile{
		LocalIP:   netip.MustParseAddr("2600:1::9"),
		RemoteIP:  netip.MustParseAddr("2600:ffff::80"),
		LocalPort: 43000, RemotePort: 443,
		InitialTTL: 64, Window: 64240, SYNOptions: true,
	}
	sprof := tcpsim.NetProfile{
		LocalIP: cprof.RemoteIP, RemoteIP: cprof.LocalIP,
		LocalPort: 443, RemotePort: 43000,
		InitialTTL: 64, Window: 65535, SYNOptions: true,
	}
	cli := tcpsim.NewClient(sim, tcpsim.ClientConfig{Net: cprof, Segments: tlsSeg("v6.blocked")}, rng)
	srv := tcpsim.NewServer(sim, tcpsim.ServerConfig{Net: sprof}, rng)
	eng := middlebox.NewEngine([]middlebox.Policy{middlebox.GFW(anyDomain)}, rng, sim.Now)
	path := netsim.NewPath(sim, netsim.PathConfig{
		Segments:    []netsim.Segment{{Delay: 20 * time.Millisecond, Hops: 4}, {Delay: 20 * time.Millisecond, Hops: 4}},
		Middleboxes: []netsim.Middlebox{eng},
	}, cli, srv)
	sampler := capture.NewSampler(capture.DefaultConfig())
	path.Tap = sampler.Inbound
	cli.Attach(path.SendFromClient)
	srv.Attach(path.SendFromServer)
	cli.Start()
	sim.Run(0)
	conns := sampler.Drain(sim.Now().Add(30 * time.Second))
	r := NewClassifier(DefaultConfig()).Classify(conns[0])
	if r.Stage != StagePostPSH || !r.Signature.IsTampering() {
		t.Errorf("IPv6 GFW → %v/%v", r.Stage, r.Signature)
	}
	if r.Evidence.IPIDValid {
		t.Error("IPv6 evidence claims valid IP-ID")
	}
	if r.Domain != "v6.blocked" {
		t.Errorf("v6 domain = %q", r.Domain)
	}
}

// endToEndMB is endToEnd with an arbitrary middlebox.
func endToEndMB(t *testing.T, mb netsim.Middlebox, seed uint64, segs []tcpsim.Segment) Result {
	t.Helper()
	sim := netsim.NewSim(0)
	rng := rand.New(rand.NewPCG(seed, seed*31+7))
	cprof := tcpsim.NetProfile{
		LocalIP:    netip.MustParseAddr("20.0.5.9"),
		RemoteIP:   netip.MustParseAddr("192.0.2.80"),
		LocalPort:  41000,
		RemotePort: 443,
		InitialTTL: 64,
		IPID:       tcpsim.IPIDCounter,
		IPIDValue:  uint16(rng.IntN(60000)),
		Window:     64240,
		SYNOptions: true,
	}
	sprof := tcpsim.NetProfile{
		LocalIP: cprof.RemoteIP, RemoteIP: cprof.LocalIP,
		LocalPort: 443, RemotePort: 41000,
		InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: uint16(rng.IntN(60000)),
		Window: 65535, SYNOptions: true,
	}
	cli := tcpsim.NewClient(sim, tcpsim.ClientConfig{Net: cprof, Segments: segs}, rng)
	srv := tcpsim.NewServer(sim, tcpsim.ServerConfig{Net: sprof}, rng)
	path := netsim.NewPath(sim, netsim.PathConfig{
		Segments:    []netsim.Segment{{Delay: 30 * time.Millisecond, Hops: 5}, {Delay: 40 * time.Millisecond, Hops: 7}},
		Middleboxes: []netsim.Middlebox{mb},
	}, cli, srv)
	scfg := capture.DefaultConfig()
	scfg.ShuffleWithinSecond = rand.New(rand.NewPCG(seed^0xf00d, seed))
	sampler := capture.NewSampler(scfg)
	path.Tap = sampler.Inbound
	cli.Attach(path.SendFromClient)
	srv.Attach(path.SendFromServer)
	cli.Start()
	sim.Run(200000)
	conns := sampler.Drain(sim.Now().Add(60 * time.Second))
	if len(conns) != 1 {
		t.Fatalf("sampled %d connections, want 1", len(conns))
	}
	return NewClassifier(DefaultConfig()).Classify(conns[0])
}

// TestEndToEndEvasiveCensorBlindSpot verifies the §6 thought
// experiment: the "ideal" censor — dropping server→client while
// impersonating the client toward the server — defeats passive
// detection. The censored connection classifies as Not Tampering.
func TestEndToEndEvasiveCensorBlindSpot(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ev := middlebox.NewEvasiveCensor(anyDomain)
		r := endToEndMB(t, ev, seed, tlsSeg("hidden-block.example"))
		if r.Signature != SigNotTampering || r.PossiblyTampered {
			t.Errorf("seed %d: evasive censorship detected as %v (the paper predicts a blind spot)", seed, r.Signature)
		}
		if r.Domain != "hidden-block.example" {
			t.Errorf("seed %d: domain = %q", seed, r.Domain)
		}
	}
}

// TestEndToEndResidualSecondConnection checks that residual punishment
// of a follow-up connection classifies as ⟨SYN → RST⟩ — how Appendix
// B's "residual blocking" hypothesis would surface in the data.
func TestEndToEndResidualFirstConnection(t *testing.T) {
	pol := middlebox.GFW(anyDomain)
	pol.ResidualSeconds = 90
	r := endToEnd(t, []middlebox.Policy{pol}, 41, tlsSeg("res.example"), tcpsim.BehaviorNormal)
	if r.Stage != StagePostPSH || !r.Signature.IsTampering() {
		t.Errorf("first connection → %v/%v", r.Stage, r.Signature)
	}
}

// TestMiddleboxPositionIndistinguishable demonstrates §3.4: the data
// says who was affected, not where the tampering happened. The same
// censor deployed near the client versus near the server produces the
// same signature; only the TTL evidence shifts (which cannot be
// resolved to a location without path knowledge).
func TestMiddleboxPositionIndistinguishable(t *testing.T) {
	run := func(nearClient bool) Result {
		sim := netsim.NewSim(0)
		rng := rand.New(rand.NewPCG(51, 52))
		cprof := tcpsim.NetProfile{
			LocalIP:   netip.MustParseAddr("20.0.5.9"),
			RemoteIP:  netip.MustParseAddr("192.0.2.80"),
			LocalPort: 41000, RemotePort: 443,
			InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: 500,
			Window: 64240, SYNOptions: true,
		}
		sprof := tcpsim.NetProfile{
			LocalIP: cprof.RemoteIP, RemoteIP: cprof.LocalIP,
			LocalPort: 443, RemotePort: 41000,
			InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: 900,
			Window: 65535, SYNOptions: true,
		}
		cli := tcpsim.NewClient(sim, tcpsim.ClientConfig{Net: cprof, Segments: tlsSeg("pos.example")}, rng)
		srv := tcpsim.NewServer(sim, tcpsim.ServerConfig{Net: sprof}, rng)
		eng := middlebox.NewEngine([]middlebox.Policy{middlebox.GFW(anyDomain)}, rng, sim.Now)
		segs := []netsim.Segment{
			{Delay: 10 * time.Millisecond, Hops: 2},
			{Delay: 40 * time.Millisecond, Hops: 12},
		}
		if !nearClient {
			segs[0], segs[1] = netsim.Segment{Delay: 40 * time.Millisecond, Hops: 12},
				netsim.Segment{Delay: 10 * time.Millisecond, Hops: 2}
		}
		path := netsim.NewPath(sim, netsim.PathConfig{Segments: segs, Middleboxes: []netsim.Middlebox{eng}}, cli, srv)
		sampler := capture.NewSampler(capture.DefaultConfig())
		path.Tap = sampler.Inbound
		cli.Attach(path.SendFromClient)
		srv.Attach(path.SendFromServer)
		cli.Start()
		sim.Run(0)
		conns := sampler.Drain(sim.Now().Add(30 * time.Second))
		return NewClassifier(DefaultConfig()).Classify(conns[0])
	}
	near := run(true)
	far := run(false)
	if near.Signature != far.Signature {
		t.Errorf("position changed the signature: %v vs %v", near.Signature, far.Signature)
	}
	if !near.Signature.IsTampering() {
		t.Fatalf("censor not detected: %v", near.Signature)
	}
	// The injected packets traverse different hop counts, so the TTL
	// evidence differs — but nothing in the record localizes the box.
	if near.Evidence.MaxTTLDelta == far.Evidence.MaxTTLDelta {
		t.Logf("note: TTL deltas coincide (%d); position leaves at most this trace", near.Evidence.MaxTTLDelta)
	}
}
