package core

import (
	"testing"

	"tamperdetect/internal/capture"
)

// TestDFACompiles pins the automaton's shape: it must build, stay
// small (the abstract state space is meant to collapse to ~10^2
// states), and have a verdict row for every state.
func TestDFACompiles(t *testing.T) {
	d := compiledDFA()
	if len(d.next) == 0 || len(d.next) != len(d.info) {
		t.Fatalf("malformed DFA: %d transition rows, %d info rows", len(d.next), len(d.info))
	}
	if len(d.next) > 1000 {
		t.Errorf("DFA has %d states; the abstract-state canonicalisation has regressed", len(d.next))
	}
	t.Logf("DFA: %d states x %d events", len(d.next), numDFAEvents)
	for st, row := range d.next {
		for e, to := range row {
			if int(to) >= len(d.next) {
				t.Fatalf("state %d event %d transitions to nonexistent state %d", st, e, to)
			}
		}
	}
}

// TestAckStepMatchesClassifyMultiRST drives the ack-class state
// machine and the legacy classifyMultiRST over the same ack vectors:
// the final class must map to the signature classifyMultiRST picks.
func TestAckStepMatchesClassifyMultiRST(t *testing.T) {
	vectors := [][]uint32{
		{0}, {5}, {0, 0}, {5, 5}, {5, 7}, {0, 5}, {5, 0},
		{5, 0, 7}, {0, 5, 5}, {5, 0, 5}, {5, 7, 5}, {5, 7, 0},
		{0, 0, 0}, {1, 2, 3}, {7, 7, 7}, {0, 0, 9},
	}
	for _, acks := range vectors {
		// Drive the event encoder + ack class exactly as classifyDFA
		// would for a run of bare RSTs.
		var reg uint32
		haveReg := false
		cls := uint8(ackNone)
		for _, a := range acks {
			p := capture.PacketRecord{Flags: 0x04, Ack: a} // bare RST
			cls = ackStep(cls, eventOf(&p, &reg, &haveReg))
		}
		var fromClass Signature
		switch cls {
		case ackMixed:
			fromClass = SigPSHRSTRSTZero
		case ackNe:
			fromClass = SigPSHRSTNeqRST
		default:
			fromClass = SigPSHRSTEqRST
		}
		var s Scratch
		s.acks = append(s.acks[:0], acks...)
		if want := classifyMultiRST(s.acks); fromClass != want {
			t.Errorf("acks %v: ack-class gives %s, classifyMultiRST gives %s", acks, fromClass, want)
		}
	}
}

// TestMatcherModeSelectsEngine pins that the flag actually switches
// engines: MatcherLegacy must leave the DFA unbuilt on the classifier.
func TestMatcherModeSelectsEngine(t *testing.T) {
	if cl := NewClassifier(Config{Matcher: MatcherLegacy}); cl.dfa != nil {
		t.Error("MatcherLegacy classifier carries a DFA")
	}
	if cl := NewClassifier(Config{}); cl.dfa == nil {
		t.Error("default classifier has no DFA (MatcherDFA should be the zero value)")
	}
	if cl := NewClassifier(Config{Matcher: MatcherDFA}); cl.dfa == nil {
		t.Error("MatcherDFA classifier has no DFA")
	}
}
