package core

import (
	"tamperdetect/internal/capture"
	"tamperdetect/internal/httpwire"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/tlswire"
)

// Protocol is the application protocol the connection attempted.
type Protocol int

// Protocols.
const (
	ProtoUnknown Protocol = iota
	ProtoTLS
	ProtoHTTP
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtoTLS:
		return "TLS"
	case ProtoHTTP:
		return "HTTP"
	default:
		return "Unknown"
	}
}

// Result is the classifier's verdict on one connection.
type Result struct {
	Signature Signature
	Stage     Stage
	// PossiblyTampered reflects the §4.1 superset condition: a RST was
	// seen, or the connection showed ≥3 s of inactivity without a FIN
	// handshake within the recorded window.
	PossiblyTampered bool
	// Domain is the SNI or Host observed in the connection's data, if
	// any ("" when the trigger was dropped before the server, §3.4).
	Domain string
	// Protocol classifies the connection's application protocol.
	Protocol Protocol
	// Evidence carries the §4.2/§4.3 validation metrics.
	Evidence Evidence
}

// Config tunes classification.
type Config struct {
	// InactivityThreshold is the silence (seconds) that marks a
	// non-FIN-terminated connection possibly tampered (paper: 3 s).
	InactivityThreshold int64
	// MaxPackets is the capture's per-connection packet cap (paper: 10);
	// connections that filled the cap without anomaly are "ongoing".
	MaxPackets int
	// Matcher selects the signature-matching engine: the single-pass
	// compiled automaton (MatcherDFA, the zero value) or the original
	// multi-pass matcher (MatcherLegacy), retained as the differential-
	// testing oracle. Both produce identical Results on every input.
	Matcher MatcherMode
}

// DefaultConfig matches the paper's deployment.
func DefaultConfig() Config {
	return Config{InactivityThreshold: 3, MaxPackets: 10}
}

// Classifier applies the tampering signatures to connection records.
// It is stateless apart from configuration and safe for concurrent use.
type Classifier struct {
	cfg Config
	// dfa is the compiled signature automaton, shared by every
	// classifier (built once, immutable); nil under MatcherLegacy.
	dfa *dfa
}

// NewClassifier builds a classifier.
func NewClassifier(cfg Config) *Classifier {
	if cfg.InactivityThreshold == 0 {
		cfg.InactivityThreshold = 3
	}
	if cfg.MaxPackets == 0 {
		cfg.MaxPackets = 10
	}
	cl := &Classifier{cfg: cfg}
	if cfg.Matcher == MatcherDFA {
		cl.dfa = compiledDFA()
	}
	return cl
}

// Scratch holds reusable per-call working storage for ClassifyWith: the
// reconstructed packet order, the bare-RST ack list, and an intern
// table for extracted domains (traffic concentrates on a small set of
// names, so steady state reuses one string per distinct domain). A
// Scratch must not be shared between concurrent calls; give each
// worker its own.
type Scratch struct {
	recs    []capture.PacketRecord
	acks    []uint32
	domains map[string]string
}

// maxInternedDomains bounds the intern table so hostile captures full
// of unique names cannot grow it without limit; overflow names are
// still returned, just not cached.
const maxInternedDomains = 1 << 14

// internDomain returns b as a string, reusing a previously interned
// copy when one exists. The compiler elides the allocation for the
// map lookup's string(b) key, so hits are allocation-free.
func (s *Scratch) internDomain(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if v, ok := s.domains[string(b)]; ok {
		return v
	}
	v := string(b)
	if s.domains == nil {
		s.domains = make(map[string]string, 64)
	}
	if len(s.domains) < maxInternedDomains {
		s.domains[v] = v
	}
	return v
}

// Classify reconstructs packet order and applies the Table 1 taxonomy.
// It allocates fresh working storage per call and is therefore safe for
// concurrent use; hot loops should prefer ClassifyWith with a
// per-worker Scratch.
func (cl *Classifier) Classify(conn *capture.Connection) Result {
	var s Scratch
	return cl.ClassifyWith(conn, &s)
}

// ClassifyWith is Classify with caller-owned working storage: the
// reconstruction buffer and ack list live in s and are reused across
// calls, making the steady-state classification allocation-free.
func (cl *Classifier) ClassifyWith(conn *capture.Connection, s *Scratch) Result {
	if cl.dfa != nil {
		return cl.classifyDFA(conn, s)
	}
	return cl.classifyLegacy(conn, s)
}

// classifyLegacy is the original multi-pass classifier: reconstruct,
// scan for RST/FIN/gaps, split at the first RST, walk the prefix into
// a stage, then count the tail against each stage's signature table.
// It is the ground truth the DFA is differentially tested against; do
// not modify one without the other.
func (cl *Classifier) classifyLegacy(conn *capture.Connection, s *Scratch) Result {
	s.recs = capture.ReconstructInto(conn, s.recs)
	recs := s.recs
	res := Result{Signature: SigNotTampering, Stage: StageNone}
	res.Domain, res.Protocol = domainAndProtocol(conn, recs, s)

	if len(recs) == 0 {
		return res
	}

	hasRST, hasFIN := false, false
	for i := range recs {
		if recs[i].Flags.IsRST() {
			hasRST = true
		}
		if recs[i].Flags.Has(packet.FlagFIN) {
			hasFIN = true
		}
	}

	// Inactivity: an internal ≥3 s gap between recorded packets, or
	// trailing silence between the last activity and the window close
	// for connections that never filled the packet cap.
	gap := false
	for i := 1; i < len(recs); i++ {
		if recs[i].Timestamp-recs[i-1].Timestamp >= cl.cfg.InactivityThreshold {
			gap = true
			break
		}
	}
	trailing := conn.TotalPackets < cl.cfg.MaxPackets &&
		conn.CloseTime-conn.LastActivity >= cl.cfg.InactivityThreshold

	res.Evidence = computeEvidence(recs)
	res.Evidence.IPIDValid = conn.IPVersion == 4

	if hasFIN && !hasRST {
		// Graceful termination.
		return res
	}
	if !hasRST && !gap && !trailing {
		// Completed the window without anomaly (ongoing or graceful).
		return res
	}

	res.PossiblyTampered = true

	// Split the record into the pre-tampering prefix and the tear-down
	// tail. The tampering point is the first RST (for injection) or
	// the end of the record (for drops).
	firstRST := -1
	for i := range recs {
		if recs[i].Flags.IsRST() {
			firstRST = i
			break
		}
	}
	var pre, tail []capture.PacketRecord
	if firstRST >= 0 {
		pre, tail = recs[:firstRST], recs[firstRST:]
		// Anything non-RST after the first RST makes the sequence
		// non-canonical (e.g. data racing past the tear-down).
		for i := range tail {
			if !tail[i].Flags.IsRST() {
				res.Signature, res.Stage = SigOtherAnomalous, StageOther
				return res
			}
		}
	} else {
		pre, tail = recs, nil
	}

	stage := classifyPrefix(pre)
	if stage == StageOther {
		res.Signature, res.Stage = SigOtherAnomalous, StageOther
		return res
	}
	// The stage reflects the canonical prefix even when the tail fits
	// no signature (e.g. a Post-Data timeout): §4.1 counts those
	// connections inside their stage's uncovered remainder.
	res.Stage = stage
	res.Signature = matchSignature(stage, tail, s)
	return res
}

// classifyPrefix maps a pre-tampering packet sequence onto a canonical
// stage: [SYN] / [SYN,ACK] / [SYN,ACK,data] / [SYN,ACK,data,...].
func classifyPrefix(pre []capture.PacketRecord) Stage {
	if len(pre) == 0 {
		return StageOther
	}
	if !isSYN(&pre[0]) {
		return StageOther
	}
	if len(pre) == 1 {
		return StagePostSYN
	}
	// Second packet must be the handshake's pure ACK.
	if !isPureACK(&pre[1]) {
		return StageOther
	}
	if len(pre) == 2 {
		return StagePostACK
	}
	// Third packet must be the first data packet.
	if pre[2].PayloadLen == 0 {
		return StageOther
	}
	if len(pre) == 3 {
		return StagePostPSH
	}
	// Everything further must be client ACKs or more data.
	for i := 3; i < len(pre); i++ {
		f := pre[i].Flags
		if f.HasAny(packet.FlagSYN|packet.FlagFIN) || f.IsRST() {
			return StageOther
		}
		if !f.Has(packet.FlagACK) {
			return StageOther
		}
	}
	return StagePostData
}

func isSYN(p *capture.PacketRecord) bool {
	return p.Flags.Has(packet.FlagSYN) && !p.Flags.HasAny(packet.FlagACK|packet.FlagRST|packet.FlagFIN)
}

func isPureACK(p *capture.PacketRecord) bool {
	return p.Flags.Has(packet.FlagACK) &&
		!p.Flags.HasAny(packet.FlagSYN|packet.FlagRST|packet.FlagFIN|packet.FlagPSH) &&
		p.PayloadLen == 0
}

// matchSignature applies the Table 1 tail taxonomy for the given stage.
// tail holds only RST-type packets (possibly none, meaning a timeout).
func matchSignature(stage Stage, tail []capture.PacketRecord, s *Scratch) Signature {
	var bare, withACK int
	s.acks = s.acks[:0]
	for i := range tail {
		if tail[i].Flags.IsRSTACK() {
			withACK++
		} else {
			bare++
			s.acks = append(s.acks, tail[i].Ack)
		}
	}
	bareAcks := s.acks

	switch stage {
	case StagePostSYN:
		switch {
		case bare == 0 && withACK == 0:
			return SigSYNTimeout
		case bare > 0 && withACK > 0:
			return SigSYNRSTRSTACK
		case withACK > 0:
			return SigSYNRSTACK
		default:
			return SigSYNRST
		}
	case StagePostACK:
		switch {
		case bare == 0 && withACK == 0:
			return SigACKTimeout
		case bare > 0 && withACK > 0:
			return SigOtherAnomalous // no mixed Post-ACK signature in Table 1
		case bare == 1:
			return SigACKRST
		case bare > 1:
			return SigACKRSTRST
		case withACK == 1:
			return SigACKRSTACK
		default:
			return SigACKRSTACKRSTACK
		}
	case StagePostPSH:
		switch {
		case bare == 0 && withACK == 0:
			return SigPSHTimeout
		case bare > 0 && withACK > 0:
			return SigPSHRSTRSTACK
		case withACK >= 2:
			return SigPSHRSTACKRSTACK
		case withACK == 1:
			return SigPSHRSTACK
		case bare == 1:
			return SigPSHRST
		default:
			return classifyMultiRST(bareAcks)
		}
	case StagePostData:
		switch {
		case bare == 0 && withACK == 0:
			// Table 1 has no ⟨PSH+ACK;Data → ∅⟩ signature; such
			// connections stay uncovered (the 69.2% coverage of §4.1).
			return SigOtherAnomalous
		case withACK > 0:
			return SigDataRSTACK
		default:
			return SigDataRST
		}
	default:
		return SigOtherAnomalous
	}
}

// classifyMultiRST distinguishes the multi-bare-RST Post-PSH signatures
// by their acknowledgment numbers (Table 1 rows RST=RST, RST≠RST,
// RST;RST₀).
func classifyMultiRST(acks []uint32) Signature {
	zero, nonzero := 0, 0
	for _, a := range acks {
		if a == 0 {
			zero++
		} else {
			nonzero++
		}
	}
	if zero > 0 && nonzero > 0 {
		return SigPSHRSTRSTZero
	}
	same := true
	for _, a := range acks[1:] {
		if a != acks[0] {
			same = false
			break
		}
	}
	if same {
		return SigPSHRSTEqRST
	}
	return SigPSHRSTNeqRST
}

// domainAndProtocol extracts the SNI/Host and classifies the protocol
// from the connection's captured payloads and destination port. The
// byte-slice parsers plus s's intern table keep this allocation-free
// once the (small) working set of domains has been seen.
func domainAndProtocol(conn *capture.Connection, recs []capture.PacketRecord, s *Scratch) (string, Protocol) {
	proto := ProtoUnknown
	switch conn.DstPort {
	case 443:
		proto = ProtoTLS
	case 80:
		proto = ProtoHTTP
	}
	for i := range recs {
		p := recs[i].Payload
		if len(p) == 0 {
			continue
		}
		if tlswire.LooksLikeClientHello(p) {
			if sni, err := tlswire.SNIBytes(p); err == nil {
				return s.internDomain(sni), ProtoTLS
			}
			return "", ProtoTLS
		}
		if httpwire.LooksLikeRequest(p) {
			if host := httpwire.HostBytes(p); len(host) > 0 {
				return s.internDomain(host), ProtoHTTP
			}
			return "", ProtoHTTP
		}
	}
	return "", proto
}
