package core

import (
	"tamperdetect/internal/capture"
)

// Evidence holds the §4.2 scanner fingerprints and §4.3 injection
// indicators computed per connection.
type Evidence struct {
	// IPIDValid is false for IPv6 connections (no IP-ID field).
	IPIDValid bool
	// MaxIPIDDelta is the maximum absolute IP-ID change between each
	// tear-down packet and the preceding non-RST packet (Figure 2); for
	// connections without RSTs it is the maximum delta between
	// consecutive packets.
	MaxIPIDDelta int
	// MinIPIDDelta is the minimum absolute IP-ID change between
	// consecutive non-RST packets — the §4.3 baseline check.
	MinIPIDDelta int
	// MaxTTLDelta and MinTTLDelta mirror the IP-ID metrics for the TTL
	// / hop-limit field (Figure 3). MaxTTLDelta is signed change
	// magnitude.
	MaxTTLDelta int
	MinTTLDelta int
	// ZMapFingerprint marks the §4.2 scanner signature: SYN with IP-ID
	// 54321 and no TCP options.
	ZMapFingerprint bool
	// HighTTL marks a SYN arriving with TTL ≥ 200.
	HighTTL bool
	// NoSYNOptions marks a SYN without TCP options.
	NoSYNOptions bool
	// SYNPayloadLen is the payload length riding on the SYN (§4.1).
	SYNPayloadLen int
}

// zmapIPID is the fixed IP Identification value ZMap stamps on probes
// (Hiesgen et al., §4.2).
const zmapIPID = 54321

// highTTLThreshold is the §4.2 scanner heuristic threshold.
const highTTLThreshold = 200

// computeEvidence derives the evidence metrics from reconstructed
// records.
func computeEvidence(recs []capture.PacketRecord) Evidence {
	if len(recs) == 0 {
		return Evidence{IPIDValid: true}
	}
	ev := Evidence{MinIPIDDelta: -1, MinTTLDelta: -1, MaxIPIDDelta: 0, MaxTTLDelta: 0}
	// The SYN-based fingerprints.
	if syn := &recs[0]; isSYN(syn) {
		ev.SYNPayloadLen = syn.PayloadLen
		ev.NoSYNOptions = !syn.HasOptions
		ev.HighTTL = syn.TTL >= highTTLThreshold
		ev.ZMapFingerprint = syn.IPID == zmapIPID && !syn.HasOptions
	}
	// IPv6 captures record IPID 0 everywhere; detect by all-zero IPIDs
	// being meaningless only when the caller knows the version, so the
	// classifier sets IPIDValid from the connection. Here we assume
	// valid and let Classify fix it up.
	ev.IPIDValid = true

	// Baselines over consecutive non-RST (client) packets.
	prevClient := -1
	for i := range recs {
		if recs[i].Flags.IsRST() {
			continue
		}
		if prevClient >= 0 {
			dID := absDiff16(recs[i].IPID, recs[prevClient].IPID)
			dTTL := absDiff8(recs[i].TTL, recs[prevClient].TTL)
			if ev.MinIPIDDelta < 0 || dID < ev.MinIPIDDelta {
				ev.MinIPIDDelta = dID
			}
			if ev.MinTTLDelta < 0 || dTTL < ev.MinTTLDelta {
				ev.MinTTLDelta = dTTL
			}
		}
		prevClient = i
	}

	// Injection evidence: each RST versus the preceding non-RST packet.
	sawRST := false
	for i := range recs {
		if !recs[i].Flags.IsRST() {
			continue
		}
		sawRST = true
		// Find the preceding non-RST packet.
		j := i - 1
		for j >= 0 && recs[j].Flags.IsRST() {
			j--
		}
		if j < 0 {
			continue
		}
		if d := absDiff16(recs[i].IPID, recs[j].IPID); d > ev.MaxIPIDDelta {
			ev.MaxIPIDDelta = d
		}
		if d := absDiff8(recs[i].TTL, recs[j].TTL); d > ev.MaxTTLDelta {
			ev.MaxTTLDelta = d
		}
	}
	if !sawRST {
		// No tear-down packets: the maxima are the consecutive-packet
		// maxima (the Figure 2/3 "Not Tampering" baseline).
		prev := -1
		for i := range recs {
			if prev >= 0 {
				if d := absDiff16(recs[i].IPID, recs[prev].IPID); d > ev.MaxIPIDDelta {
					ev.MaxIPIDDelta = d
				}
				if d := absDiff8(recs[i].TTL, recs[prev].TTL); d > ev.MaxTTLDelta {
					ev.MaxTTLDelta = d
				}
			}
			prev = i
		}
	}
	if ev.MinIPIDDelta < 0 {
		ev.MinIPIDDelta = 0
	}
	if ev.MinTTLDelta < 0 {
		ev.MinTTLDelta = 0
	}
	return ev
}

func absDiff16(a, b uint16) int {
	d := int(a) - int(b)
	if d < 0 {
		return -d
	}
	return d
}

func absDiff8(a, b uint8) int {
	d := int(a) - int(b)
	if d < 0 {
		return -d
	}
	return d
}
