// Package logx is the CLIs' shared structured-logging setup: every
// binary logs through log/slog with a selectable -log-format
// (human text or machine-parseable JSON lines), stamps every record
// with the per-run correlation ID — the same 64-bit value the tracing
// layer uses as its root trace ID, so logs and spans join on one key —
// and optionally tees warnings and errors into the trace flight
// recorder, turning the warn-and-fallback paths (stale index, push
// retry, late straggler) into post-mortem evidence automatically.
package logx

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"time"

	"tamperdetect/internal/trace"
)

// Formats accepted by New (the -log-format flag values).
const (
	FormatText = "text"
	FormatJSON = "json"
)

// NewRunID draws a random 64-bit per-run correlation ID (never 0).
func NewRunID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// rand.Read cannot realistically fail; fall back to the clock
		// rather than aborting a scan over a log ID.
		return uint64(time.Now().UnixNano()) | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// FormatRunID renders a correlation ID the way every log line and
// span dump does.
func FormatRunID(id uint64) string { return fmt.Sprintf("%016x", id) }

// New builds a logger writing to w in the given format ("text" or
// "json"), stamped with run_id. When fl is non-nil, records at
// Warn and above are also appended to the flight recorder.
func New(w io.Writer, format string, runID uint64, fl *trace.Flight) (*slog.Logger, error) {
	var h slog.Handler
	opts := &slog.HandlerOptions{Level: slog.LevelInfo}
	switch format {
	case FormatText, "":
		h = slog.NewTextHandler(w, opts)
	case FormatJSON:
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("logx: unknown log format %q (want %q or %q)", format, FormatText, FormatJSON)
	}
	if fl != nil {
		h = &flightHandler{inner: h, flight: fl}
	}
	return slog.New(h).With("run_id", FormatRunID(runID)), nil
}

// flightHandler tees Warn+ records into the flight recorder while
// delegating everything to the wrapped handler.
type flightHandler struct {
	inner  slog.Handler
	flight *trace.Flight
	attrs  []slog.Attr
}

func (h *flightHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *flightHandler) Handle(ctx context.Context, r slog.Record) error {
	if r.Level >= slog.LevelWarn {
		attrs := make([]trace.Attr, 0, len(h.attrs)+r.NumAttrs())
		for _, a := range h.attrs {
			attrs = append(attrs, trace.A(a.Key, a.Value.String()))
		}
		r.Attrs(func(a slog.Attr) bool {
			attrs = append(attrs, trace.A(a.Key, a.Value.String()))
			return true
		})
		h.flight.Record(r.Level.String(), r.Message, attrs...)
	}
	return h.inner.Handle(ctx, r)
}

func (h *flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(append([]slog.Attr{}, h.attrs...), attrs...)
	return &flightHandler{inner: h.inner.WithAttrs(attrs), flight: h.flight, attrs: merged}
}

func (h *flightHandler) WithGroup(name string) slog.Handler {
	return &flightHandler{inner: h.inner.WithGroup(name), flight: h.flight, attrs: h.attrs}
}
