package logx

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tamperdetect/internal/trace"
)

func TestRunIDsDistinctAndNonZero(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == 0 || b == 0 {
		t.Fatal("zero run ID")
	}
	if a == b {
		t.Fatalf("two run IDs collided: %x", a)
	}
	if len(FormatRunID(a)) != 16 {
		t.Fatalf("FormatRunID(%x) = %q", a, FormatRunID(a))
	}
}

func TestJSONFormatMachineParseable(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, FormatJSON, 0xbeef, nil)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("scan complete", "records", 42)
	log.Warn("index stale", "path", "x.tdx")
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line not JSON: %v (%s)", err, line)
		}
		if rec["run_id"] != "000000000000beef" {
			t.Fatalf("missing run_id: %s", line)
		}
	}
}

func TestTextFormatCarriesRunID(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, FormatText, 0xbeef, nil)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello")
	if !strings.Contains(buf.String(), "run_id=000000000000beef") {
		t.Fatalf("text line missing run_id: %s", buf.String())
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	if _, err := New(&bytes.Buffer{}, "yaml", 1, nil); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestWarningsTeeIntoFlightRecorder(t *testing.T) {
	fl := trace.NewFlight(8)
	var buf bytes.Buffer
	log, err := New(&buf, FormatJSON, 1, fl)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("not recorded")
	log.Warn("sharded scan failed", "err", "bad index")
	sub := log.With("pop", "ams1")
	sub.Error("push failed", "attempt", 3)

	evs := fl.Events()
	if len(evs) != 2 {
		t.Fatalf("flight recorded %d events, want 2 (Warn+): %+v", len(evs), evs)
	}
	if evs[0].Msg != "sharded scan failed" || evs[0].Level != "WARN" {
		t.Fatalf("bad first event: %+v", evs[0])
	}
	found := false
	for _, a := range evs[1].Attrs {
		if a.Key == "pop" && a.Value == "ams1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("With-attr not carried into flight event: %+v", evs[1])
	}
	// stderr output still happened for all three
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("logger wrote %d lines, want 3", got)
	}
}
