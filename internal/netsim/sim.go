// Package netsim is a discrete-event network simulator. It provides a
// virtual clock with cancellable timers and a Path abstraction that
// carries raw IP packets between a client and a server through a chain
// of middleboxes, decrementing TTLs per hop exactly as routers would.
//
// The simulator exists because the paper's substrate — real user TCP
// connections traversing real tampering middleboxes into a CDN edge —
// is not reproducible; see DESIGN.md §2. Everything above this package
// (middlebox DPI, TCP endpoints, the capture tap) operates on genuine
// serialized packets, so the classifier under test sees wire-accurate
// inputs.
//
// The clock itself lives in internal/simtime: the event queue, Time,
// and Timer were extracted there (PR 9) so the workload layer can
// schedule scenario-scale connection arrivals on the same engine that
// drives packet-level timers here. The aliases below keep every
// existing call site — and the per-connection event order, pinned by
// workload's TestSimCorpusGolden — exactly as it was.
package netsim

import "tamperdetect/internal/simtime"

// Time is virtual simulation time, in nanoseconds since scenario start.
type Time = simtime.Time

// Timer handles allow cancelling a scheduled event (e.g. a TCP
// retransmission timer that was answered).
type Timer = simtime.Timer

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; run one Sim per goroutine.
type Sim = simtime.Engine

// NewSim returns a simulator starting at the given virtual time.
func NewSim(start Time) *Sim {
	return simtime.New(start)
}
