// Package netsim is a discrete-event network simulator. It provides a
// virtual clock with cancellable timers and a Path abstraction that
// carries raw IP packets between a client and a server through a chain
// of middleboxes, decrementing TTLs per hop exactly as routers would.
//
// The simulator exists because the paper's substrate — real user TCP
// connections traversing real tampering middleboxes into a CDN edge —
// is not reproducible; see DESIGN.md §2. Everything above this package
// (middlebox DPI, TCP endpoints, the capture tap) operates on genuine
// serialized packets, so the classifier under test sees wire-accurate
// inputs.
package netsim

import (
	"container/heap"
	"time"
)

// Time is virtual simulation time, in nanoseconds since scenario start.
type Time int64

// Duration converts a standard duration to simulator time units.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Seconds returns the time in (floating point) seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Unix returns the whole-second timestamp the capture pipeline records
// (the paper's 1-second granularity).
func (t Time) Unix() int64 { return int64(t) / 1e9 }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tiebreaker preserving schedule order
	fn   func()
	dead bool
	idx  int
}

// Timer handles allow cancelling a scheduled event (e.g. a TCP
// retransmission timer that was answered).
type Timer struct{ ev *event }

// Stop cancels the timer if it has not fired. Safe to call repeatedly
// and on a zero Timer.
func (t Timer) Stop() {
	if t.ev != nil {
		t.ev.dead = true
	}
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; run one Sim per goroutine.
type Sim struct {
	now   Time
	queue eventQueue
	seq   uint64
	// Steps counts processed events, a cheap runaway guard for tests.
	Steps int
}

// NewSim returns a simulator starting at the given virtual time.
func NewSim(start Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Schedule runs fn after d of virtual time and returns a cancellable
// handle. A negative d schedules immediately.
func (s *Sim) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	s.seq++
	ev := &event{at: s.now.Add(d), seq: s.seq, fn: fn}
	heap.Push(&s.queue, ev)
	return Timer{ev: ev}
}

// Run processes events until the queue is empty or maxSteps events have
// run (0 means no limit). It returns the number of events processed.
func (s *Sim) Run(maxSteps int) int {
	n := 0
	for len(s.queue) > 0 {
		if maxSteps > 0 && n >= maxSteps {
			break
		}
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		ev.fn()
		n++
		s.Steps++
	}
	return n
}

// RunUntil processes events with at ≤ deadline, advancing the clock to
// the deadline afterwards.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		ev.fn()
		s.Steps++
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of live events still queued.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
