package netsim

import (
	"net/netip"
	"testing"
	"time"

	"tamperdetect/internal/packet"
)

func v4Packet(t testing.TB, ttl uint8, flags packet.TCPFlags) []byte {
	t.Helper()
	ip := packet.IPv4{TTL: ttl, ID: 100, Protocol: 6,
		SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("10.0.0.2")}
	tcp := packet.TCP{SrcPort: 1111, DstPort: 443, Flags: flags}
	tcp.SetNetworkLayerForChecksum(&ip)
	buf := packet.NewSerializeBuffer()
	if err := packet.SerializeLayers(buf, packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}, &ip, &tcp); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func ttlOf(t testing.TB, data []byte) uint8 {
	t.Helper()
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return ip.TTL
}

// recorder is an Endpoint that stores arrivals with their times.
type recorder struct {
	sim   *Sim
	pkts  [][]byte
	times []Time
}

func (r *recorder) Recv(data []byte) {
	r.pkts = append(r.pkts, data)
	r.times = append(r.times, r.sim.Now())
}

// passMB forwards everything and counts packets per direction.
type passMB struct{ c2s, s2c int }

func (m *passMB) Process(dir Direction, data []byte, inject func(Direction, []byte)) bool {
	if dir == ClientToServer {
		m.c2s++
	} else {
		m.s2c++
	}
	return true
}

func TestPathDelayAndTTL(t *testing.T) {
	s := NewSim(0)
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	mb := &passMB{}
	p := NewPath(s, PathConfig{
		Segments:    []Segment{{Delay: 10 * time.Millisecond, Hops: 4}, {Delay: 20 * time.Millisecond, Hops: 6}},
		Middleboxes: []Middlebox{mb},
	}, cli, srv)

	p.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	s.Run(0)

	if len(srv.pkts) != 1 {
		t.Fatalf("server got %d packets, want 1", len(srv.pkts))
	}
	if got := ttlOf(t, srv.pkts[0]); got != 54 {
		t.Errorf("TTL at server = %d, want 54 (64-10)", got)
	}
	if srv.times[0] != Time(30*time.Millisecond) {
		t.Errorf("arrival at %v, want 30ms", srv.times[0])
	}
	if mb.c2s != 1 {
		t.Errorf("middlebox saw %d c2s packets, want 1", mb.c2s)
	}
}

func TestPathServerToClient(t *testing.T) {
	s := NewSim(0)
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	mb := &passMB{}
	p := NewPath(s, PathConfig{
		Segments:    []Segment{{Delay: time.Millisecond, Hops: 2}, {Delay: time.Millisecond, Hops: 3}},
		Middleboxes: []Middlebox{mb},
	}, cli, srv)

	p.SendFromServer(v4Packet(t, 128, packet.FlagsSYNACK))
	s.Run(0)
	if len(cli.pkts) != 1 {
		t.Fatalf("client got %d packets, want 1", len(cli.pkts))
	}
	if got := ttlOf(t, cli.pkts[0]); got != 123 {
		t.Errorf("TTL at client = %d, want 123", got)
	}
	if mb.s2c != 1 {
		t.Errorf("middlebox saw %d s2c packets, want 1", mb.s2c)
	}
}

// dropMB drops client->server packets after the first.
type dropMB struct{ seen int }

func (m *dropMB) Process(dir Direction, data []byte, inject func(Direction, []byte)) bool {
	if dir != ClientToServer {
		return true
	}
	m.seen++
	return m.seen <= 1
}

func TestPathDrop(t *testing.T) {
	s := NewSim(0)
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	p := NewPath(s, PathConfig{
		Segments:    []Segment{{Delay: time.Millisecond, Hops: 1}, {Delay: time.Millisecond, Hops: 1}},
		Middleboxes: []Middlebox{&dropMB{}},
	}, cli, srv)
	p.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	p.SendFromClient(v4Packet(t, 64, packet.FlagsACK))
	s.Run(0)
	if len(srv.pkts) != 1 {
		t.Fatalf("server got %d packets, want 1 (second dropped)", len(srv.pkts))
	}
}

// injectMB injects one RST toward the server when it sees a PSH.
type injectMB struct{ t *testing.T }

func (m *injectMB) Process(dir Direction, data []byte, inject func(Direction, []byte)) bool {
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		m.t.Fatalf("mb decode: %v", err)
	}
	var tcp packet.TCP
	if err := tcp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		m.t.Fatalf("mb tcp decode: %v", err)
	}
	if tcp.Flags.Has(packet.FlagPSH) {
		inject(ClientToServer, v4Packet(m.t, 250, packet.FlagsRST))
		inject(ServerToClient, v4Packet(m.t, 250, packet.FlagsRST))
	}
	return true
}

func TestPathInjectBothDirections(t *testing.T) {
	s := NewSim(0)
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	p := NewPath(s, PathConfig{
		Segments:    []Segment{{Delay: 5 * time.Millisecond, Hops: 3}, {Delay: 7 * time.Millisecond, Hops: 5}},
		Middleboxes: []Middlebox{&injectMB{t: t}},
	}, cli, srv)

	p.SendFromClient(v4Packet(t, 64, packet.FlagsPSHACK))
	s.Run(0)

	if len(srv.pkts) != 2 {
		t.Fatalf("server got %d packets, want PSH + injected RST", len(srv.pkts))
	}
	// Injected RST traverses only the middlebox->server segment: 5 hops.
	if got := ttlOf(t, srv.pkts[1]); got != 245 {
		t.Errorf("injected RST TTL at server = %d, want 245 (250-5)", got)
	}
	// Original packet went through 3+5=8 hops.
	if got := ttlOf(t, srv.pkts[0]); got != 56 {
		t.Errorf("forwarded PSH TTL = %d, want 56", got)
	}
	if len(cli.pkts) != 1 {
		t.Fatalf("client got %d packets, want injected RST", len(cli.pkts))
	}
	// Injected toward client traverses middlebox->client: 3 hops.
	if got := ttlOf(t, cli.pkts[0]); got != 247 {
		t.Errorf("injected RST TTL at client = %d, want 247", got)
	}
	// Timing: PSH forwarded arrives at 12ms; RST injected at 5ms + 7ms = 12ms too,
	// but scheduled after, so it must arrive second.
	if !(srv.times[1] >= srv.times[0]) {
		t.Errorf("injected RST arrived before the triggering PSH")
	}
}

func TestPathTap(t *testing.T) {
	s := NewSim(0)
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	p := NewPath(s, PathConfig{Segments: []Segment{{Delay: time.Millisecond, Hops: 1}}}, cli, srv)
	var tapped int
	p.Tap = func(at Time, data []byte) { tapped++ }
	p.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	p.SendFromServer(v4Packet(t, 64, packet.FlagsSYNACK))
	s.Run(0)
	if tapped != 1 {
		t.Errorf("tap saw %d packets, want 1 (inbound only)", tapped)
	}
}

func TestPathTTLExpiry(t *testing.T) {
	s := NewSim(0)
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	p := NewPath(s, PathConfig{Segments: []Segment{{Delay: time.Millisecond, Hops: 10}}}, cli, srv)
	p.SendFromClient(v4Packet(t, 5, packet.FlagsSYN)) // expires mid-path
	s.Run(0)
	if len(srv.pkts) != 0 {
		t.Error("expired packet delivered")
	}
}

func TestPathDown(t *testing.T) {
	s := NewSim(0)
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	p := NewPath(s, PathConfig{Segments: []Segment{{Delay: time.Millisecond, Hops: 1}}}, cli, srv)
	p.Down = true
	p.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	s.Run(0)
	if len(srv.pkts) != 0 {
		t.Error("packet delivered on a down path")
	}
}

func TestPathLoss(t *testing.T) {
	s := NewSim(0)
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	p := NewPath(s, PathConfig{
		Segments: []Segment{{Delay: time.Millisecond, Hops: 1}},
		Loss:     1.0,
		Rand:     func() float64 { return 0.5 },
	}, cli, srv)
	p.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	s.Run(0)
	if len(srv.pkts) != 0 {
		t.Error("packet survived 100% loss")
	}
}

func TestPathConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched segments/middleboxes did not panic")
		}
	}()
	NewPath(NewSim(0), PathConfig{Segments: []Segment{{}}, Middleboxes: []Middlebox{&passMB{}}}, nil, nil)
}
