package netsim

import (
	"testing"
	"time"

	"tamperdetect/internal/packet"
)

// tagMB records traversal order and optionally drops or injects.
type tagMB struct {
	name string
	log  *[]string
	drop bool
}

func (m *tagMB) Process(dir Direction, data []byte, inject func(Direction, []byte)) bool {
	*m.log = append(*m.log, m.name+":"+dir.String())
	return !m.drop
}

func TestTwoMiddleboxChainOrder(t *testing.T) {
	s := NewSim(0)
	var log []string
	a := &tagMB{name: "a", log: &log}
	b := &tagMB{name: "b", log: &log}
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	p := NewPath(s, PathConfig{
		Segments: []Segment{
			{Delay: time.Millisecond, Hops: 1},
			{Delay: time.Millisecond, Hops: 1},
			{Delay: time.Millisecond, Hops: 1},
		},
		Middleboxes: []Middlebox{a, b},
	}, cli, srv)
	p.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	s.Run(0)
	if len(log) != 2 || log[0] != "a:client->server" || log[1] != "b:client->server" {
		t.Errorf("traversal = %v, want a then b", log)
	}
	if len(srv.pkts) != 1 {
		t.Fatalf("server packets = %d", len(srv.pkts))
	}
	// TTL decremented by all three segments' hops.
	if got := ttlOf(t, srv.pkts[0]); got != 61 {
		t.Errorf("TTL = %d, want 61", got)
	}

	// Reverse direction traverses b first.
	log = nil
	p.SendFromServer(v4Packet(t, 64, packet.FlagsSYNACK))
	s.Run(0)
	if len(log) != 2 || log[0] != "b:server->client" || log[1] != "a:server->client" {
		t.Errorf("reverse traversal = %v, want b then a", log)
	}
}

func TestSecondMiddleboxDropHidesFromServerNotFirst(t *testing.T) {
	s := NewSim(0)
	var log []string
	a := &tagMB{name: "a", log: &log}
	b := &tagMB{name: "b", log: &log, drop: true}
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	p := NewPath(s, PathConfig{
		Segments: []Segment{
			{Delay: time.Millisecond, Hops: 1},
			{Delay: time.Millisecond, Hops: 1},
			{Delay: time.Millisecond, Hops: 1},
		},
		Middleboxes: []Middlebox{a, b},
	}, cli, srv)
	p.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	s.Run(0)
	if len(srv.pkts) != 0 {
		t.Error("packet delivered past a dropping second middlebox")
	}
	// The first middlebox still saw it.
	if len(log) != 2 {
		t.Errorf("log = %v, want both middleboxes to observe", log)
	}
}

// injectAtFirst injects toward the client from the first middlebox.
type injectAtFirst struct{ t *testing.T }

func (m *injectAtFirst) Process(dir Direction, data []byte, inject func(Direction, []byte)) bool {
	if dir == ClientToServer {
		inject(ServerToClient, v4Packet(m.t, 200, packet.FlagsRST))
	}
	return true
}

func TestInjectionFromFirstOfTwoMiddleboxes(t *testing.T) {
	// The injected packet must traverse only the first segment back to
	// the client — and the second middlebox must not see it.
	s := NewSim(0)
	var log []string
	second := &tagMB{name: "second", log: &log}
	srv := &recorder{sim: s}
	cli := &recorder{sim: s}
	p := NewPath(s, PathConfig{
		Segments: []Segment{
			{Delay: time.Millisecond, Hops: 2},
			{Delay: time.Millisecond, Hops: 3},
			{Delay: time.Millisecond, Hops: 4},
		},
		Middleboxes: []Middlebox{&injectAtFirst{t: t}, second},
	}, cli, srv)
	p.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	s.Run(0)
	if len(cli.pkts) != 1 {
		t.Fatalf("client packets = %d, want injected RST", len(cli.pkts))
	}
	if got := ttlOf(t, cli.pkts[0]); got != 198 {
		t.Errorf("injected TTL at client = %d, want 198 (200-2)", got)
	}
	for _, l := range log {
		if l == "second:server->client" {
			t.Error("second middlebox saw a client-bound injection from the first")
		}
	}
	// The original packet still made it through both boxes.
	if len(srv.pkts) != 1 {
		t.Errorf("server packets = %d", len(srv.pkts))
	}
}

func TestPathIndependentFlows(t *testing.T) {
	// Two paths sharing one sim do not interfere.
	s := NewSim(0)
	srv1, srv2 := &recorder{sim: s}, &recorder{sim: s}
	cli1, cli2 := &recorder{sim: s}, &recorder{sim: s}
	p1 := NewPath(s, PathConfig{Segments: []Segment{{Delay: time.Millisecond, Hops: 1}}}, cli1, srv1)
	p2 := NewPath(s, PathConfig{Segments: []Segment{{Delay: 2 * time.Millisecond, Hops: 1}}}, cli2, srv2)
	p1.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	p2.SendFromClient(v4Packet(t, 64, packet.FlagsSYN))
	s.Run(0)
	if len(srv1.pkts) != 1 || len(srv2.pkts) != 1 {
		t.Errorf("deliveries = %d/%d, want 1/1", len(srv1.pkts), len(srv2.pkts))
	}
	if srv1.times[0] != Time(time.Millisecond) || srv2.times[0] != Time(2*time.Millisecond) {
		t.Errorf("arrival times = %v/%v", srv1.times[0], srv2.times[0])
	}
}
