package netsim

import (
	"time"

	"tamperdetect/internal/packet"
)

// Direction of packet travel on a path.
type Direction int

// Path directions.
const (
	ClientToServer Direction = iota
	ServerToClient
)

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction { return 1 - d }

// String names the direction.
func (d Direction) String() string {
	if d == ClientToServer {
		return "client->server"
	}
	return "server->client"
}

// Endpoint receives raw IP packets delivered by a path.
type Endpoint interface {
	// Recv handles a packet that arrived at this endpoint. The slice
	// is owned by the endpoint after the call.
	Recv(data []byte)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(data []byte)

// Recv implements Endpoint.
func (f EndpointFunc) Recv(data []byte) { f(data) }

// Middlebox observes and may tamper with packets traversing a path
// position. Implementations decode the raw bytes themselves — the path
// hands over exactly what is on the wire at that hop.
type Middlebox interface {
	// Process is called when a packet reaches the middlebox. Returning
	// false drops the packet. inject sends a forged packet onward from
	// the middlebox's position in the given direction; injected bytes
	// are owned by the path afterwards.
	Process(dir Direction, data []byte, inject func(dir Direction, data []byte)) (forward bool)
}

// Segment is one stretch of a path: a propagation delay and the number
// of router hops traversed (each hop decrements the TTL).
type Segment struct {
	Delay time.Duration
	Hops  uint8
}

// Delivery is one copy of a packet a SegmentHook lets onto a segment.
// ExtraDelay is added to the segment's propagation delay, so a hook
// can jitter, reorder (large extra delay), or duplicate (two
// deliveries) traffic. Deliveries that share or mutate bytes must use
// distinct backing arrays: the path decrements TTLs in place.
type Delivery struct {
	Data       []byte
	ExtraDelay time.Duration
}

// SegmentHook intercepts every packet entering a path segment, in
// either direction, and decides what actually traverses it: return an
// empty slice to drop the packet, one Delivery to pass (possibly
// delayed or corrupted), or several to duplicate. Hooks model benign
// link pathologies — loss, reordering, duplication, jitter, bit
// corruption — as opposed to Middlebox, which models intentional
// tampering at a specific position.
type SegmentHook func(now Time, dir Direction, data []byte) []Delivery

// PathConfig describes a client↔server path with optional middleboxes.
// Segments has exactly len(Middleboxes)+1 entries: client—mb1—…—server.
type PathConfig struct {
	Segments    []Segment
	Middleboxes []Middlebox
	// Loss is the independent per-segment packet loss probability in
	// [0,1); Rand supplies the randomness when Loss > 0.
	Loss float64
	Rand func() float64
	// Hook, when set, filters every packet entering any segment (after
	// the legacy Loss draw); see SegmentHook.
	Hook SegmentHook
}

// Path carries packets between a client and a server endpoint through
// middleboxes, applying per-segment delay and TTL decrements. A Tap, if
// set, observes every packet that arrives at the server (the CDN edge's
// inbound logging position, per paper §3.2: only inbound packets are
// logged).
type Path struct {
	sim    *Sim
	cfg    PathConfig
	client Endpoint
	server Endpoint
	// Tap observes packets arriving at the server, before the server
	// endpoint handles them.
	Tap func(at Time, data []byte)
	// Down, when true, drops everything in both directions (used to
	// model shutdown-style outages).
	Down bool
}

// NewPath wires a client and server together. cfg.Segments must have
// len(cfg.Middleboxes)+1 entries; NewPath panics otherwise, since this
// is a static topology error.
func NewPath(sim *Sim, cfg PathConfig, client, server Endpoint) *Path {
	if len(cfg.Segments) != len(cfg.Middleboxes)+1 {
		panic("netsim: PathConfig needs len(Segments) == len(Middleboxes)+1")
	}
	return &Path{sim: sim, cfg: cfg, client: client, server: server}
}

// SendFromClient injects a packet at the client end of the path.
func (p *Path) SendFromClient(data []byte) { p.send(ClientToServer, 0, data) }

// SendFromServer injects a packet at the server end of the path.
func (p *Path) SendFromServer(data []byte) { p.send(ServerToClient, 0, data) }

// position semantics: positions are segment indexes in the direction of
// travel. For ClientToServer, position i means "about to traverse
// cfg.Segments[i]"; after the last segment the packet reaches the
// server. ServerToClient mirrors this from the other end.

func (p *Path) send(dir Direction, pos int, data []byte) {
	if p.Down {
		return
	}
	if p.cfg.Loss > 0 && p.cfg.Rand != nil && p.cfg.Rand() < p.cfg.Loss {
		return
	}
	if p.cfg.Hook != nil {
		for _, d := range p.cfg.Hook(p.sim.Now(), dir, data) {
			p.deliver(dir, pos, d.Data, d.ExtraDelay)
		}
		return
	}
	p.deliver(dir, pos, data, 0)
}

// deliver carries one packet copy across the segment at pos, applying
// the segment delay plus any hook-imposed extra delay.
func (p *Path) deliver(dir Direction, pos int, data []byte, extra time.Duration) {
	seg := p.segmentAt(dir, pos)
	p.sim.Schedule(seg.Delay+extra, func() {
		if p.Down {
			return
		}
		if !packet.DecrementTTL(data, seg.Hops) {
			return // TTL expired in transit
		}
		next := pos + 1
		if next == len(p.cfg.Segments) {
			p.arrive(dir, data)
			return
		}
		mb := p.middleboxAt(dir, next)
		// Injections are dispatched after the forwarding decision so a
		// forged packet never overtakes the packet that triggered it —
		// matching off-path injectors, which race behind the original.
		type injection struct {
			dir  Direction
			data []byte
		}
		var injected []injection
		forward := mb.Process(dir, data, func(injDir Direction, inj []byte) {
			injected = append(injected, injection{injDir, inj})
		})
		if forward {
			p.send(dir, next, data)
		}
		for _, in := range injected {
			p.injectFrom(dir, next, in.dir, in.data)
		}
	})
}

// injectFrom sends a forged packet from the middlebox boundary at
// travel-position next (in the original packet's direction dir), going
// in injDir.
func (p *Path) injectFrom(dir Direction, next int, injDir Direction, inj []byte) {
	// Convert the position to the injected packet's own direction.
	// In direction dir, boundary "next" has next segments behind it and
	// len-next segments ahead.
	var pos int
	if injDir == dir {
		pos = next
	} else {
		pos = len(p.cfg.Segments) - next
	}
	p.send(injDir, pos, inj)
}

func (p *Path) segmentAt(dir Direction, pos int) Segment {
	if dir == ClientToServer {
		return p.cfg.Segments[pos]
	}
	return p.cfg.Segments[len(p.cfg.Segments)-1-pos]
}

func (p *Path) middleboxAt(dir Direction, next int) Middlebox {
	// After traversing segment index pos (direction-relative), the
	// packet is at middlebox boundary "next" (1-based from the sender).
	if dir == ClientToServer {
		return p.cfg.Middleboxes[next-1]
	}
	return p.cfg.Middleboxes[len(p.cfg.Middleboxes)-next]
}

func (p *Path) arrive(dir Direction, data []byte) {
	if dir == ClientToServer {
		if p.Tap != nil {
			p.Tap(p.sim.Now(), data)
		}
		p.server.Recv(data)
		return
	}
	p.client.Recv(data)
}
