package netsim

import (
	"testing"
	"time"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim(0)
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	s.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", got)
	}
	if s.Now() != Time(3*time.Second) {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
}

func TestSimSameTimeFIFO(t *testing.T) {
	s := NewSim(0)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", got)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(0)
	var fired []Time
	s.Schedule(time.Second, func() {
		fired = append(fired, s.Now())
		s.Schedule(2*time.Second, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run(0)
	if len(fired) != 2 || fired[0] != Time(time.Second) || fired[1] != Time(3*time.Second) {
		t.Errorf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewSim(0)
	fired := false
	tm := s.Schedule(time.Second, func() { fired = true })
	tm.Stop()
	tm.Stop() // idempotent
	s.Run(0)
	if fired {
		t.Error("stopped timer fired")
	}
	var zero Timer
	zero.Stop() // must not panic
}

func TestRunUntil(t *testing.T) {
	s := NewSim(0)
	var got []int
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(5*time.Second, func() { got = append(got, 5) })
	s.RunUntil(Time(2 * time.Second))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("got = %v, want [1]", got)
	}
	if s.Now() != Time(2*time.Second) {
		t.Errorf("Now = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.Run(0)
	if len(got) != 2 {
		t.Errorf("final got = %v", got)
	}
}

func TestRunMaxSteps(t *testing.T) {
	s := NewSim(0)
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		s.Schedule(time.Millisecond, reschedule)
	}
	s.Schedule(0, reschedule)
	ran := s.Run(50)
	if ran != 50 || n != 50 {
		t.Errorf("ran=%d n=%d, want 50", ran, n)
	}
}

func TestNegativeDelay(t *testing.T) {
	s := NewSim(Time(time.Hour))
	fired := Time(0)
	s.Schedule(-time.Second, func() { fired = s.Now() })
	s.Run(0)
	if fired != Time(time.Hour) {
		t.Errorf("negative delay fired at %v, want now", fired)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1_500_000_000) // 1.5 s
	if tm.Unix() != 1 {
		t.Errorf("Unix = %d, want 1", tm.Unix())
	}
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", tm.Seconds())
	}
	if tm.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Errorf("Add wrong")
	}
}
