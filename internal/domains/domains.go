// Package domains provides the synthetic domain universe: named
// domains with subject categories, Zipf-like popularity, and protocol
// (HTTP/HTTPS) shares. The paper's substrate — millions of real
// customer domains plus a commercial categorisation vendor (§5.4) — is
// substituted with a generated universe whose category structure drives
// the same analyses (Table 2's categories, Table 3's test lists).
package domains

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Category is a domain subject category, matching the vocabulary in
// Table 2 of the paper.
type Category int

// Categories. The order fixes deterministic generation.
const (
	AdultThemes Category = iota
	ContentServers
	Technology
	Business
	Advertisements
	Chat
	Education
	Gaming
	LoginScreens
	HobbiesInterests
	News
	SocialNetworks
	NumCategories
)

var categoryNames = [NumCategories]string{
	"Adult Themes", "Content Servers", "Technology", "Business",
	"Advertisements", "Chat", "Education", "Gaming", "Login Screens",
	"Hobbies & Interests", "News", "Social Networks",
}

var categorySlugs = [NumCategories]string{
	"adult", "cdn", "tech", "biz", "ads", "chat", "edu", "game",
	"login", "hobby", "news", "social",
}

// String returns the category's display name.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return "Unknown"
	}
	return categoryNames[c]
}

// AllCategories lists every category.
func AllCategories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Domain is one synthetic website.
type Domain struct {
	// Name is the registrable domain (eTLD+1), e.g. "tech0042.example".
	Name string
	// Category is the vendor-assigned subject category.
	Category Category
	// GlobalRank is the 1-based popularity rank across the universe
	// (1 = most popular); test lists are built from it.
	GlobalRank int
	// CatRank is the 1-based popularity rank within the category.
	CatRank int
	// HTTPSShare is the fraction of requests using TLS (vs cleartext
	// HTTP) for this domain.
	HTTPSShare float64
}

// Universe is the full set of synthetic domains.
type Universe struct {
	domains []Domain
	byCat   [NumCategories][]*Domain
	byName  map[string]*Domain
	// zipfCum holds, per category, cumulative Zipf weights over the
	// category's rank order for O(log n) sampling.
	zipfCum [NumCategories][]float64
}

// Config shapes universe generation.
type Config struct {
	// PerCategory is the number of domains generated per category.
	PerCategory int
	// ZipfExponent shapes within-category popularity (≈1 is web-like).
	ZipfExponent float64
	// HTTPSBase is the typical HTTPS share (individual domains jitter
	// around it; a slice of domains is HTTP-heavy).
	HTTPSBase float64
	Seed      uint64
}

// DefaultConfig is a universe sized for the experiments: 12 categories
// × 1500 domains.
func DefaultConfig() Config {
	return Config{PerCategory: 1500, ZipfExponent: 1.05, HTTPSBase: 0.85, Seed: 1}
}

// Generate builds a deterministic universe from the config.
func Generate(cfg Config) *Universe {
	if cfg.PerCategory <= 0 {
		cfg.PerCategory = 1500
	}
	if cfg.ZipfExponent <= 0 {
		cfg.ZipfExponent = 1.05
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xd0ba1))
	total := cfg.PerCategory * int(NumCategories)
	u := &Universe{
		domains: make([]Domain, 0, total),
		byName:  make(map[string]*Domain, total),
	}
	// Interleave categories so global ranks spread categories evenly,
	// with jitter so no category systematically outranks another.
	slots := make([]slot, 0, total)
	for c := Category(0); c < NumCategories; c++ {
		for i := 0; i < cfg.PerCategory; i++ {
			// Within-category order is the category rank; the global
			// sort key mixes rank with noise.
			slots = append(slots, slot{cat: c, i: i, key: float64(i) + rng.Float64()*float64(cfg.PerCategory)/10})
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].key < slots[j].key })
	for rank, s := range slots {
		httpsShare := cfg.HTTPSBase + (rng.Float64()-0.5)*0.2
		// A tail of HTTP-heavy domains (legacy cleartext sites).
		if rng.Float64() < 0.12 {
			httpsShare = rng.Float64() * 0.3
		}
		if httpsShare < 0 {
			httpsShare = 0
		}
		if httpsShare > 1 {
			httpsShare = 1
		}
		d := Domain{
			Name:       fmt.Sprintf("%s%04d.example", categorySlugs[s.cat], s.i),
			Category:   s.cat,
			GlobalRank: rank + 1,
			CatRank:    s.i + 1,
			HTTPSShare: httpsShare,
		}
		u.domains = append(u.domains, d)
	}
	for i := range u.domains {
		d := &u.domains[i]
		u.byCat[d.Category] = append(u.byCat[d.Category], d)
		u.byName[d.Name] = d
	}
	// Category lists must be in category-rank order for Zipf sampling.
	for c := range u.byCat {
		lst := u.byCat[c]
		for i := 1; i < len(lst); i++ {
			j := i
			for j > 0 && lst[j-1].CatRank > lst[j].CatRank {
				lst[j-1], lst[j] = lst[j], lst[j-1]
				j--
			}
		}
		cum := make([]float64, len(lst))
		acc := 0.0
		for i := range lst {
			acc += 1.0 / math.Pow(float64(i+1), cfg.ZipfExponent)
			cum[i] = acc
		}
		u.zipfCum[c] = cum
	}
	return u
}

// slot is a generation work item: one future domain.
type slot struct {
	cat Category
	i   int
	key float64
}

// All returns every domain, ordered by global rank.
func (u *Universe) All() []Domain { return u.domains }

// Size returns the number of domains.
func (u *Universe) Size() int { return len(u.domains) }

// ByName resolves a domain, or nil.
func (u *Universe) ByName(name string) *Domain { return u.byName[name] }

// Categories returns the category's domains in category-rank order.
func (u *Universe) Categories(c Category) []*Domain { return u.byCat[c] }

// CategoryProfile weights categories for one country's request mix.
type CategoryProfile [NumCategories]float64

// Normalize scales the profile to sum to one (uniform if all-zero).
func (p *CategoryProfile) Normalize() {
	total := 0.0
	for _, w := range p {
		total += w
	}
	if total == 0 {
		for i := range p {
			p[i] = 1.0 / float64(NumCategories)
		}
		return
	}
	for i := range p {
		p[i] /= total
	}
}

// Sample draws a domain: category by profile weight, then domain within
// category by Zipf rank.
func (u *Universe) Sample(rng *rand.Rand, profile *CategoryProfile) *Domain {
	r := rng.Float64()
	cat := Category(0)
	for c := Category(0); c < NumCategories; c++ {
		if r < profile[c] {
			cat = c
			break
		}
		r -= profile[c]
		cat = c
	}
	cum := u.zipfCum[cat]
	lst := u.byCat[cat]
	x := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lst[lo]
}
