package domains

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func testUniverse(t *testing.T) *Universe {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PerCategory = 200
	return Generate(cfg)
}

func TestGenerateSizes(t *testing.T) {
	u := testUniverse(t)
	if u.Size() != 200*int(NumCategories) {
		t.Errorf("Size = %d, want %d", u.Size(), 200*int(NumCategories))
	}
	for _, c := range AllCategories() {
		if got := len(u.Categories(c)); got != 200 {
			t.Errorf("%v has %d domains, want 200", c, got)
		}
	}
}

func TestGlobalRanksUniqueAndDense(t *testing.T) {
	u := testUniverse(t)
	seen := make([]bool, u.Size()+1)
	for _, d := range u.All() {
		if d.GlobalRank < 1 || d.GlobalRank > u.Size() {
			t.Fatalf("rank %d out of range", d.GlobalRank)
		}
		if seen[d.GlobalRank] {
			t.Fatalf("duplicate rank %d", d.GlobalRank)
		}
		seen[d.GlobalRank] = true
	}
}

func TestCatRankOrder(t *testing.T) {
	u := testUniverse(t)
	for _, c := range AllCategories() {
		lst := u.Categories(c)
		for i, d := range lst {
			if d.CatRank != i+1 {
				t.Fatalf("%v[%d].CatRank = %d", c, i, d.CatRank)
			}
		}
	}
}

func TestByName(t *testing.T) {
	u := testUniverse(t)
	d := u.All()[0]
	got := u.ByName(d.Name)
	if got == nil || got.Name != d.Name {
		t.Errorf("ByName(%q) = %v", d.Name, got)
	}
	if u.ByName("nonexistent.example") != nil {
		t.Error("ByName(nonexistent) != nil")
	}
}

func TestNamesAreValidAndUnique(t *testing.T) {
	u := testUniverse(t)
	seen := map[string]bool{}
	for _, d := range u.All() {
		if seen[d.Name] {
			t.Fatalf("duplicate name %q", d.Name)
		}
		seen[d.Name] = true
		if !strings.HasSuffix(d.Name, ".example") || strings.Count(d.Name, ".") != 1 {
			t.Fatalf("unexpected name shape %q", d.Name)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerCategory = 50
	a, b := Generate(cfg), Generate(cfg)
	for i := range a.All() {
		if a.All()[i] != b.All()[i] {
			t.Fatalf("universes diverge at %d", i)
		}
	}
}

func TestSampleRespectsProfile(t *testing.T) {
	u := testUniverse(t)
	rng := rand.New(rand.NewPCG(1, 2))
	var p CategoryProfile
	p[AdultThemes] = 0.7
	p[News] = 0.3
	p.Normalize()
	counts := map[Category]int{}
	for i := 0; i < 10000; i++ {
		counts[u.Sample(rng, &p).Category]++
	}
	if counts[AdultThemes] < 6500 || counts[AdultThemes] > 7500 {
		t.Errorf("AdultThemes sampled %d/10000, want ≈7000", counts[AdultThemes])
	}
	if counts[News] < 2500 || counts[News] > 3500 {
		t.Errorf("News sampled %d/10000, want ≈3000", counts[News])
	}
	for c, n := range counts {
		if c != AdultThemes && c != News && n > 0 {
			t.Errorf("unexpected category %v sampled %d times", c, n)
		}
	}
}

func TestSampleZipfSkew(t *testing.T) {
	u := testUniverse(t)
	rng := rand.New(rand.NewPCG(3, 4))
	var p CategoryProfile
	p[Technology] = 1
	p.Normalize()
	rankCounts := map[int]int{}
	for i := 0; i < 20000; i++ {
		rankCounts[u.Sample(rng, &p).CatRank]++
	}
	// Rank 1 must dominate rank 100 heavily under Zipf.
	if rankCounts[1] < 5*rankCounts[100]+1 {
		t.Errorf("rank1=%d rank100=%d; Zipf skew too weak", rankCounts[1], rankCounts[100])
	}
}

func TestNormalizeZeroProfile(t *testing.T) {
	var p CategoryProfile
	p.Normalize()
	total := 0.0
	for _, w := range p {
		total += w
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("zero profile normalizes to %f", total)
	}
}

func TestHTTPSShareBounds(t *testing.T) {
	u := testUniverse(t)
	httpHeavy := 0
	for _, d := range u.All() {
		if d.HTTPSShare < 0 || d.HTTPSShare > 1 {
			t.Fatalf("HTTPSShare %f out of bounds", d.HTTPSShare)
		}
		if d.HTTPSShare < 0.3 {
			httpHeavy++
		}
	}
	// The generator plants an HTTP-heavy tail.
	if httpHeavy == 0 {
		t.Error("no HTTP-heavy domains generated")
	}
}

func TestCategoryString(t *testing.T) {
	if AdultThemes.String() != "Adult Themes" {
		t.Errorf("AdultThemes = %q", AdultThemes.String())
	}
	if Category(99).String() != "Unknown" {
		t.Errorf("out-of-range category = %q", Category(99).String())
	}
}
