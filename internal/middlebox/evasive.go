package middlebox

import (
	"net/netip"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
)

// EvasiveCensor implements the §6 thought experiment: the "ideal
// tampering strategy" that defeats passive server-side detection. On
// trigger it:
//
//   - drops every server→client packet (the client gets nothing), and
//   - keeps impersonating the client toward the server: it ACKs the
//     server's data, completes a graceful FIN handshake, and swallows
//     the real client's subsequent packets (retransmissions, resets)
//     so the server never sees anything anomalous.
//
// The paper notes this is only possible for in-path middleboxes with
// drop capability, which is rare in practice (§2.1, §6); the library
// includes it so the detector's blind spot is testable — a connection
// censored this way classifies as Not Tampering.
type EvasiveCensor struct {
	// MatchDomain gates the trigger, as in Policy.
	MatchDomain DomainMatcher

	parser *packet.SummaryParser
	flows  map[flowKey]*evasiveFlow
}

type evasiveFlow struct {
	triggered bool
	// impersonation state toward the server
	clientIP netip.Addr
	serverIP netip.Addr
	cport    uint16
	sport    uint16
	v6       bool
	ttl      uint8
	ipid     uint16
	sndNxt   uint32 // next sequence we (as the client) would send
	finSent  bool
}

// NewEvasiveCensor builds the evasive middlebox.
func NewEvasiveCensor(match DomainMatcher) *EvasiveCensor {
	return &EvasiveCensor{
		MatchDomain: match,
		parser:      packet.NewSummaryParser(),
		flows:       make(map[flowKey]*evasiveFlow),
	}
}

// Process implements netsim.Middlebox.
func (e *EvasiveCensor) Process(dir netsim.Direction, data []byte, inject func(netsim.Direction, []byte)) bool {
	var s packet.Summary
	if err := e.parser.Parse(data, &s); err != nil {
		return true
	}
	var key flowKey
	fromClient := dir == netsim.ClientToServer
	if fromClient {
		key = flowKey{client: s.SrcIP, server: s.DstIP, cport: s.SrcPort, sport: s.DstPort}
	} else {
		key = flowKey{client: s.DstIP, server: s.SrcIP, cport: s.DstPort, sport: s.SrcPort}
	}
	fl := e.flows[key]
	if fl == nil {
		fl = &evasiveFlow{}
		e.flows[key] = fl
	}

	if !fl.triggered {
		if fromClient && s.PayloadLen > 0 {
			domain := DomainOf(s.Payload)
			if domain != "" && e.MatchDomain != nil && e.MatchDomain(domain) {
				fl.triggered = true
				fl.clientIP, fl.serverIP = s.SrcIP, s.DstIP
				fl.cport, fl.sport = s.SrcPort, s.DstPort
				fl.v6 = s.IPVersion == 6
				fl.ttl = s.TTL // mid-path TTL; close enough to blend in
				fl.ipid = s.IPID + 1
				fl.sndNxt = s.Seq + uint32(s.PayloadLen)
				// The trigger itself is forwarded: the server must see a
				// perfectly ordinary request.
				return true
			}
		}
		return true
	}

	// Triggered. Client side goes dark in both directions, while we
	// play the client toward the server.
	if fromClient {
		// Swallow everything further from the real client
		// (retransmissions, FINs, RSTs born of its timeout).
		return false
	}
	// Server→client: drop, but keep the server happy.
	e.impersonate(&s, inject)
	return false
}

// impersonate reacts to a server packet as a live client would.
func (e *EvasiveCensor) impersonate(s *packet.Summary, inject func(netsim.Direction, []byte)) {
	key := flowKey{client: s.DstIP, server: s.SrcIP, cport: s.DstPort, sport: s.SrcPort}
	fl := e.flows[key]
	if fl == nil || !fl.triggered {
		return
	}
	prof := forgeProfile{
		srcIP: fl.clientIP, dstIP: fl.serverIP,
		sport: fl.cport, dport: fl.sport,
		ttl: fl.ttl, ipid: fl.ipid, v6: fl.v6,
	}
	fl.ipid++
	w := newForgeWire(prof)
	switch {
	case s.Flags.Has(packet.FlagFIN):
		ack := s.Seq + uint32(s.PayloadLen) + 1
		inject(netsim.ClientToServer, w.build(packet.FlagsACK, fl.sndNxt, ack, nil))
		if !fl.finSent {
			fl.finSent = true
			prof.ipid = fl.ipid
			fl.ipid++
			w2 := newForgeWire(prof)
			inject(netsim.ClientToServer, w2.build(packet.FlagsFINACK, fl.sndNxt, ack, nil))
			fl.sndNxt++
		}
	case s.PayloadLen > 0:
		ack := s.Seq + uint32(s.PayloadLen)
		inject(netsim.ClientToServer, w.build(packet.FlagsACK, fl.sndNxt, ack, nil))
		if !fl.finSent {
			// Close gracefully after consuming the response, exactly
			// like a satisfied client.
			fl.finSent = true
			prof.ipid = fl.ipid
			fl.ipid++
			w2 := newForgeWire(prof)
			inject(netsim.ClientToServer, w2.build(packet.FlagsFINACK, fl.sndNxt, ack, nil))
			fl.sndNxt++
		}
	}
}
