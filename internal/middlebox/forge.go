package middlebox

import (
	"net/netip"

	"tamperdetect/internal/packet"
)

// forgeProfile is the network identity an injected packet claims.
type forgeProfile struct {
	srcIP, dstIP netip.Addr
	sport, dport uint16
	ttl          uint8
	ipid         uint16
	v6           bool
}

// tcpWireProfile derives the spoofed identity from the triggering
// packet: toward the server the forgery claims to be the client, toward
// the client it claims to be the server.
func tcpWireProfile(s *packet.Summary, toServer bool, ttl uint8, ipid uint16) forgeProfile {
	p := forgeProfile{ttl: ttl, ipid: ipid, v6: s.IPVersion == 6}
	if toServer {
		p.srcIP, p.dstIP = s.SrcIP, s.DstIP
		p.sport, p.dport = s.SrcPort, s.DstPort
	} else {
		p.srcIP, p.dstIP = s.DstIP, s.SrcIP
		p.sport, p.dport = s.DstPort, s.SrcPort
	}
	return p
}

// forgeWire serializes forged tear-down segments through the packet
// package's pooled buffers, so each injection costs one exact-size
// allocation for the returned wire bytes.
type forgeWire struct {
	prof forgeProfile
}

func newForgeWire(prof forgeProfile) *forgeWire {
	return &forgeWire{prof: prof}
}

// build serializes a forged segment with the given flags, sequence,
// and acknowledgment numbers, and an optional payload (block pages).
// Injected packets carry no options and a zero window for tear-downs —
// the shape real injectors emit — while payload-bearing injections use
// a plausible window.
func (w *forgeWire) build(flags packet.TCPFlags, seq, ack uint32, payload []byte) []byte {
	var window uint16
	if len(payload) > 0 {
		window = 65535
	}
	tcp := packet.TCP{
		SrcPort: w.prof.sport,
		DstPort: w.prof.dport,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
		Window:  window,
	}
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	var out []byte
	var err error
	if w.prof.v6 {
		ip := packet.IPv6{
			NextHeader: 6,
			HopLimit:   w.prof.ttl,
			SrcIP:      w.prof.srcIP,
			DstIP:      w.prof.dstIP,
		}
		tcp.SetNetworkLayerForChecksum(&ip)
		out, err = packet.AppendLayers(nil, opts, &ip, &tcp, packet.Payload(payload))
	} else {
		ip := packet.IPv4{
			TTL:      w.prof.ttl,
			ID:       w.prof.ipid,
			Protocol: 6,
			SrcIP:    w.prof.srcIP,
			DstIP:    w.prof.dstIP,
		}
		tcp.SetNetworkLayerForChecksum(&ip)
		out, err = packet.AppendLayers(nil, opts, &ip, &tcp, packet.Payload(payload))
	}
	if err != nil {
		panic("middlebox: forge serialize failed: " + err.Error())
	}
	return out
}
