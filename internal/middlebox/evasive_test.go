package middlebox

import (
	"math/rand/v2"
	"net/netip"
	"strings"
	"testing"
	"time"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/tcpsim"
	"tamperdetect/internal/tlswire"
)

// runConnWith simulates one connection through an arbitrary middlebox
// and returns the inbound summaries at the server.
func runConnWith(t *testing.T, mb netsim.Middlebox, seed uint64, segments []tcpsim.Segment, behavior tcpsim.Behavior) []packet.Summary {
	t.Helper()
	sim := netsim.NewSim(0)
	return runConnOn(t, sim, mb, seed, 40000, segments, behavior)
}

// runConnOn runs a connection on an existing simulator (so middlebox
// state can be shared across connections).
func runConnOn(t *testing.T, sim *netsim.Sim, mb netsim.Middlebox, seed uint64, srcPort uint16, segments []tcpsim.Segment, behavior tcpsim.Behavior) []packet.Summary {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x77))
	cprof := tcpsim.NetProfile{
		LocalIP:    netip.MustParseAddr("203.0.113.10"),
		RemoteIP:   netip.MustParseAddr("192.0.2.80"),
		LocalPort:  srcPort,
		RemotePort: 443,
		InitialTTL: 64,
		IPID:       tcpsim.IPIDCounter,
		IPIDValue:  uint16(1000 + seed),
		Window:     64240,
		SYNOptions: true,
	}
	sprof := tcpsim.NetProfile{
		LocalIP: cprof.RemoteIP, RemoteIP: cprof.LocalIP,
		LocalPort: 443, RemotePort: srcPort,
		InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: uint16(30000 + seed),
		Window: 65535, SYNOptions: true,
	}
	cli := tcpsim.NewClient(sim, tcpsim.ClientConfig{Net: cprof, Segments: segments, Behavior: behavior}, rng)
	srv := tcpsim.NewServer(sim, tcpsim.ServerConfig{Net: sprof}, rng)
	path := netsim.NewPath(sim, netsim.PathConfig{
		Segments:    []netsim.Segment{{Delay: 15 * time.Millisecond, Hops: 4}, {Delay: 25 * time.Millisecond, Hops: 6}},
		Middleboxes: []netsim.Middlebox{mb},
	}, cli, srv)
	var seen []packet.Summary
	parser := packet.NewSummaryParser()
	path.Tap = func(at netsim.Time, data []byte) {
		var s packet.Summary
		if err := parser.Parse(data, &s); err != nil {
			t.Fatalf("tap parse: %v", err)
		}
		seen = append(seen, s)
	}
	cli.Attach(path.SendFromClient)
	srv.Attach(path.SendFromServer)
	cli.Start()
	sim.Run(200000)
	return seen
}

func TestEvasiveCensorLooksGraceful(t *testing.T) {
	// The §6 ideal censor: the server-side record of a censored
	// connection must be indistinguishable from a graceful exchange —
	// handshake, request, acknowledgments, FIN handshake, no RSTs, no
	// gaps.
	ev := NewEvasiveCensor(func(d string) bool { return d == "blocked.example" })
	seen := runConnWith(t, ev, 3, tlsSegment("blocked.example"), tcpsim.BehaviorNormal)
	fs := flagString(seen)
	if !strings.HasPrefix(fs, "SYN ACK PSH+ACK") {
		t.Fatalf("prefix = %q", fs)
	}
	for _, s := range seen {
		if s.Flags.IsRST() {
			t.Fatalf("evasive censor leaked a RST: %q", fs)
		}
	}
	if !strings.Contains(fs, "FIN+ACK") {
		t.Errorf("no graceful FIN at the server: %q", fs)
	}
}

func TestEvasiveCensorPassesUnblocked(t *testing.T) {
	ev := NewEvasiveCensor(func(d string) bool { return d == "blocked.example" })
	seen := runConnWith(t, ev, 5, tlsSegment("fine.example"), tcpsim.BehaviorNormal)
	fs := flagString(seen)
	if !strings.Contains(fs, "FIN") {
		t.Errorf("unblocked connection broken by evasive censor: %q", fs)
	}
}

func TestEvasiveCensorClientStarved(t *testing.T) {
	// The client must never receive the response: the server sees
	// exactly one copy of the request data (no retransmissions leak
	// through) while the impersonator supplies the ACKs.
	ev := NewEvasiveCensor(func(string) bool { return true })
	seen := runConnWith(t, ev, 7, tlsSegment("x.example"), tcpsim.BehaviorNormal)
	dataPkts := 0
	for _, s := range seen {
		if s.PayloadLen > 0 {
			dataPkts++
		}
	}
	if dataPkts != 1 {
		t.Errorf("server saw %d data packets, want exactly the forwarded trigger", dataPkts)
	}
}

// sharedEngineRunner runs multiple connections through one Engine with
// a shared virtual clock, for residual-censorship tests.
func sharedEngineRunner(t *testing.T, policies []Policy) (*Engine, func(startSec int64, segments []tcpsim.Segment) []packet.Summary) {
	t.Helper()
	sim := netsim.NewSim(0)
	eng := NewEngine(policies, rand.New(rand.NewPCG(9, 9)), sim.Now)
	port := uint16(41000)
	seed := uint64(100)
	mk := func(startSec int64, segments []tcpsim.Segment) []packet.Summary {
		// Advance the shared clock to the connection's start time.
		sim.RunUntil(netsim.Time(startSec) * netsim.Time(time.Second))
		port++
		seed++
		return runConnOn(t, sim, eng, seed, port, segments, tcpsim.BehaviorNormal)
	}
	return eng, mk
}

func TestResidualCensorship(t *testing.T) {
	// A policy with ResidualSeconds: the first connection triggers on
	// content; a second connection from the same client is killed at
	// the SYN even for an innocuous domain; a third, after expiry,
	// flows normally.
	pol := GFW(func(d string) bool { return d == "blocked.example" })
	pol.ResidualSeconds = 90
	_, mk := sharedEngineRunner(t, []Policy{pol})

	first := mk(0, tlsSegment("blocked.example"))
	if !strings.Contains(flagString(first), "RST") {
		t.Fatalf("first connection not tampered: %q", flagString(first))
	}
	second := mk(10, tlsSegment("innocent.example"))
	if fs := flagString(second); !strings.HasPrefix(fs, "SYN RST") {
		t.Errorf("residual punishment missing: second connection = %q", fs)
	}
	third := mk(300, tlsSegment("innocent.example"))
	if fs := flagString(third); strings.Contains(fs, "RST") {
		t.Errorf("residual censorship did not expire: %q", fs)
	}
}

func TestResidualDisabledByDefault(t *testing.T) {
	pol := GFW(func(d string) bool { return d == "blocked.example" })
	_, mk := sharedEngineRunner(t, []Policy{pol})
	_ = mk(0, tlsSegment("blocked.example"))
	second := mk(10, tlsSegment("innocent.example"))
	if fs := flagString(second); strings.Contains(fs, "RST") {
		t.Errorf("punishment without ResidualSeconds: %q", fs)
	}
}

func TestEvasiveCensorNonIPPassthrough(t *testing.T) {
	ev := NewEvasiveCensor(func(string) bool { return true })
	ok := ev.Process(netsim.ClientToServer, []byte("junk"), func(netsim.Direction, []byte) {
		t.Fatal("injected on junk input")
	})
	if !ok {
		t.Error("non-IP data dropped")
	}
}

func TestBlockPageInjector(t *testing.T) {
	// Server side: ⟨PSH+ACK → RST⟩, as footnote 2 predicts — the block
	// page itself travels toward the client and is invisible here.
	pol := BlockPageInjector(func(d string) bool { return d == "blocked.example" }, "")
	eng := NewEngine([]Policy{pol}, rand.New(rand.NewPCG(4, 4)), nil)
	seen := runConnWith(t, eng, 11, tlsSegment("blocked.example"), tcpsim.BehaviorNormal)
	fs := flagString(seen)
	if !strings.HasPrefix(fs, "SYN ACK PSH+ACK RST") {
		t.Errorf("server-side sequence = %q, want SYN ACK PSH+ACK RST prefix", fs)
	}
	// Three injections: the 403 page, its FIN, and the server-side RST.
	if eng.Injected != 3 {
		t.Errorf("injected = %d, want 3", eng.Injected)
	}
}

func TestBlockPageForgeCarriesPayload(t *testing.T) {
	// The injected block page toward the client must carry the HTTP
	// body and a FIN at the right sequence offset.
	pol := BlockPageInjector(func(string) bool { return true }, "HTTP/1.1 403 F\r\n\r\nX")
	eng := NewEngine([]Policy{pol}, rand.New(rand.NewPCG(5, 5)), nil)
	var toClient [][]byte
	trigger := buildTriggerPacket(t, "any.example")
	eng.Process(netsim.ClientToServer, trigger, func(dir netsim.Direction, data []byte) {
		if dir == netsim.ServerToClient {
			toClient = append(toClient, data)
		}
	})
	if len(toClient) != 2 {
		t.Fatalf("client-bound injections = %d, want page + FIN", len(toClient))
	}
	p := packet.NewSummaryParser()
	var page, fin packet.Summary
	if err := p.Parse(toClient[0], &page); err != nil {
		t.Fatal(err)
	}
	if err := p.Parse(toClient[1], &fin); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(page.Payload), "HTTP/1.1 403") {
		t.Errorf("block page payload = %q", page.Payload)
	}
	if !fin.Flags.Has(packet.FlagFIN) {
		t.Errorf("second injection flags = %v, want FIN", fin.Flags)
	}
	if fin.Seq != page.Seq+uint32(page.PayloadLen) {
		t.Errorf("FIN seq = %d, want page end %d", fin.Seq, page.Seq+uint32(page.PayloadLen))
	}
}

// buildTriggerPacket serializes a client PSH+ACK carrying a ClientHello.
func buildTriggerPacket(t *testing.T, domain string) []byte {
	t.Helper()
	hello := tlswire.BuildClientHello(tlswire.ClientHelloSpec{ServerName: domain})
	ip := packet.IPv4{TTL: 58, ID: 77, Protocol: 6,
		SrcIP: netip.MustParseAddr("203.0.113.4"), DstIP: netip.MustParseAddr("192.0.2.80")}
	tcp := packet.TCP{SrcPort: 45000, DstPort: 443, Seq: 5000, Ack: 9000,
		Flags: packet.FlagsPSHACK, Window: 64240}
	tcp.SetNetworkLayerForChecksum(&ip)
	buf := packet.NewSerializeBuffer()
	if err := packet.SerializeLayers(buf, packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&ip, &tcp, packet.Payload(hello)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}
