package middlebox

import (
	"net/netip"

	"tamperdetect/internal/packet"
)

// This file encodes the censor behaviours the paper observes or cites,
// as policy constructors. Each profile produces the packet sequences
// behind specific Table 1 signatures; the mapping is noted per profile.
//
// The profiles are parameterized by matcher functions so scenarios can
// decide *what* is blocked while the profile decides *how*.

// DomainMatcher gates content triggers.
type DomainMatcher func(domain string) bool

// IPMatcher gates destination-IP triggers.
type IPMatcher func(dst netip.Addr) bool

// rstBurst is shorthand for an InjectSpec with common defaults.
func rstBurst(flags packet.TCPFlags, count int, ack AckMode, ttl uint8) InjectSpec {
	return InjectSpec{Flags: flags, Count: count, Ack: ack, IPID: IPIDRandom, TTL: TTLFixed, TTLValue: ttl}
}

// GFW models China's Great Firewall: off-path, forwards the triggering
// packet, and injects bursts of tear-down packets to both ends. The
// multi-packet bursts with mixed RST / RST+ACK types reproduce
// ⟨PSH+ACK → RST+ACK;RST+ACK⟩, ⟨PSH+ACK → RST;RST+ACK⟩,
// ⟨PSH+ACK → RST;RST₀⟩ and ⟨PSH+ACK → RST⟩ (§4.1, Bock et al.).
func GFW(match DomainMatcher) Policy {
	return Policy{
		Name:        "gfw",
		Stage:       StageFirstData,
		MatchDomain: match,
		Actions: []Action{
			{ // triple RST+ACK, the classic GFW burst
				Weight:   0.40,
				ToServer: []InjectSpec{rstBurst(packet.FlagsRSTACK, 3, AckEcho, 64)},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRSTACK, 3, AckEcho, 64)},
			},
			{ // RST then RST+ACKs (the "double censor" stack)
				Weight: 0.30,
				ToServer: []InjectSpec{
					rstBurst(packet.FlagsRST, 1, AckEcho, 64),
					rstBurst(packet.FlagsRSTACK, 2, AckEcho, 64),
				},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRSTACK, 2, AckEcho, 64)},
			},
			{ // two bare RSTs, second with a zeroed ack field
				Weight: 0.18,
				ToServer: []InjectSpec{
					rstBurst(packet.FlagsRST, 1, AckEcho, 64),
					rstBurst(packet.FlagsRST, 1, AckZero, 64),
				},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRST, 1, AckEcho, 64)},
			},
			{ // single RST (burst truncated by loss or older boxes)
				Weight:   0.12,
				ToServer: []InjectSpec{rstBurst(packet.FlagsRST, 1, AckEcho, 64)},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRST, 1, AckEcho, 64)},
			},
		},
	}
}

// GFWIPBlock models the GFW's IP-level blocking of known endpoints:
// triggers on the SYN and injects both a RST and a RST+ACK, producing
// ⟨SYN → RST;RST+ACK⟩ (Bock et al. 2021).
func GFWIPBlock(match IPMatcher) Policy {
	return Policy{
		Name:    "gfw-ip",
		Stage:   StageSYN,
		MatchIP: match,
		Actions: []Action{{
			ToServer: []InjectSpec{
				rstBurst(packet.FlagsRST, 1, AckEcho, 64),
				rstBurst(packet.FlagsRSTACK, 1, AckEcho, 64),
			},
			ToClient: []InjectSpec{
				rstBurst(packet.FlagsRST, 1, AckEcho, 64),
				rstBurst(packet.FlagsRSTACK, 1, AckEcho, 64),
			},
		}},
	}
}

// IranDPI models Iran's filtering as observed by Aryan et al. and
// Basso: the offending ClientHello is dropped in-path; some deployments
// additionally inject RST+ACKs toward the server. Because the first
// data packet never arrives, the server-side view is
// ⟨SYN;ACK → ∅⟩, ⟨SYN;ACK → RST+ACK⟩, or
// ⟨SYN;ACK → RST+ACK;RST+ACK⟩.
func IranDPI(match DomainMatcher) Policy {
	return Policy{
		Name:        "iran-dpi",
		Stage:       StageFirstData,
		MatchDomain: match,
		Actions: []Action{
			{Weight: 0.55, DropTriggering: true, Blackhole: true}, // silent drop
			{
				Weight: 0.25, DropTriggering: true, Blackhole: true,
				ToServer: []InjectSpec{rstBurst(packet.FlagsRSTACK, 1, AckEcho, 128)},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRSTACK, 1, AckEcho, 128)},
			},
			{
				Weight: 0.20, DropTriggering: true, Blackhole: true,
				ToServer: []InjectSpec{rstBurst(packet.FlagsRSTACK, 2, AckEcho, 128)},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRSTACK, 1, AckEcho, 128)},
			},
		},
	}
}

// HTTPReset models Turkmenistan-style HTTP blocking (Nourin et al.):
// the offending request is dropped and exactly one bare RST is sent to
// the server — ⟨SYN;ACK → RST⟩ at the server, in huge volumes.
func HTTPReset(match DomainMatcher) Policy {
	return Policy{
		Name:        "http-reset",
		Stage:       StageFirstData,
		MatchDomain: match,
		Actions: []Action{{
			DropTriggering: true, Blackhole: true,
			ToServer: []InjectSpec{rstBurst(packet.FlagsRST, 1, AckEcho, 255)},
			ToClient: []InjectSpec{rstBurst(packet.FlagsRST, 1, AckEcho, 255)},
		}},
	}
}

// PostHandshakeMultiRST models censors that drop the request and send
// more than one bare RST — ⟨SYN;ACK → RST;RST⟩.
func PostHandshakeMultiRST(match DomainMatcher) Policy {
	return Policy{
		Name:        "post-ack-multi-rst",
		Stage:       StageFirstData,
		MatchDomain: match,
		Actions: []Action{{
			DropTriggering: true, Blackhole: true,
			ToServer: []InjectSpec{rstBurst(packet.FlagsRST, 2, AckEcho, 60)},
			ToClient: []InjectSpec{rstBurst(packet.FlagsRST, 2, AckEcho, 60)},
		}},
	}
}

// TSPUVariant models one deployment of Russia's decentralized TSPU
// boxes (Xue et al.): each ISP's configuration differs, so the variant
// index selects among drop, single-RST, and same-ack double-RST
// behaviours, letting scenarios assign different variants per AS. The
// trigger packet is forwarded by some variants (→ Post-PSH signatures)
// and dropped by others (→ Post-ACK signatures).
func TSPUVariant(match DomainMatcher, variant int) Policy {
	actions := [][]Action{
		{ // variant 0: in-path blackhole after the trigger passes: ⟨PSH+ACK → ∅⟩
			{Blackhole: true},
		},
		{ // variant 1: forward trigger, single bare RST: ⟨PSH+ACK → RST⟩
			{ToServer: []InjectSpec{rstBurst(packet.FlagsRST, 1, AckEcho, 64)},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRST, 1, AckEcho, 64)}},
		},
		{ // variant 2: two identical-ack RSTs: ⟨PSH+ACK → RST=RST⟩
			{ToServer: []InjectSpec{rstBurst(packet.FlagsRST, 2, AckEcho, 64)},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRST, 1, AckEcho, 64)}},
		},
		{ // variant 3: drop + single RST+ACK: ⟨SYN;ACK → RST+ACK⟩
			{DropTriggering: true, Blackhole: true,
				ToServer: []InjectSpec{rstBurst(packet.FlagsRSTACK, 1, AckEcho, 64)},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRSTACK, 1, AckEcho, 64)}},
		},
		{ // variant 4: forward trigger, single RST+ACK: ⟨PSH+ACK → RST+ACK⟩
			{ToServer: []InjectSpec{rstBurst(packet.FlagsRSTACK, 1, AckEcho, 64)},
				ToClient: []InjectSpec{rstBurst(packet.FlagsRSTACK, 1, AckEcho, 64)}},
		},
	}
	return Policy{
		Name:        "tspu",
		Stage:       StageFirstData,
		MatchDomain: match,
		Actions:     actions[variant%len(actions)],
	}
}

// AckGuessingRST models the middleboxes Weaver et al. identified that
// inject several RSTs guessing successive acknowledgment numbers, with
// the South Korean randomized-TTL flavour from §4.3 —
// ⟨PSH+ACK → RST≠RST⟩ with near-uniform TTL deltas.
func AckGuessingRST(match DomainMatcher, randomTTL bool) Policy {
	spec := InjectSpec{
		Flags: packet.FlagsRST, Count: 3, Ack: AckGuess, IPID: IPIDRandom,
		SeqJitter: true,
	}
	if randomTTL {
		spec.TTL = TTLRandom
		spec.TTLMin = 20
		spec.TTLMax = 250
	} else {
		spec.TTL = TTLFixed
		spec.TTLValue = 128
	}
	return Policy{
		Name:        "ack-guess",
		Stage:       StageFirstData,
		MatchDomain: match,
		Actions: []Action{{
			ToServer: []InjectSpec{spec},
			ToClient: []InjectSpec{rstBurst(packet.FlagsRST, 1, AckEcho, 128)},
		}},
	}
}

// EnterpriseFirewall models commercial devices (filtering appliances,
// §4.1/§5.1) that watch whole sessions — often with TLS visibility —
// and reset on keywords that may appear after multiple data packets:
// ⟨PSH+ACK;Data → RST⟩ / ⟨PSH+ACK;Data → RST+ACK⟩.
func EnterpriseFirewall(keyword string, rstack bool) Policy {
	flags := packet.FlagsRST
	if rstack {
		flags = packet.FlagsRSTACK
	}
	return Policy{
		Name:    "enterprise-fw",
		Stage:   StageAnyData,
		Keyword: keyword,
		Actions: []Action{{
			ToServer: []InjectSpec{{Flags: flags, Count: 1, Ack: AckEcho, IPID: IPIDRandom, TTL: TTLFixed, TTLValue: 128}},
			ToClient: []InjectSpec{{Flags: flags, Count: 1, Ack: AckEcho, IPID: IPIDRandom, TTL: TTLFixed, TTLValue: 128}},
		}},
	}
}

// IPBlackhole models in-path IP blocking that lets the first SYN reach
// the server and then drops everything — ⟨SYN → ∅⟩ (the paper's
// single-SYN signature; the SYN+ACK and all retransmissions die).
func IPBlackhole(match IPMatcher) Policy {
	return Policy{
		Name:    "ip-blackhole",
		Stage:   StageSYN,
		MatchIP: match,
		Actions: []Action{{Blackhole: true}},
	}
}

// IPReset models IP blocking by RST injection on the SYN:
// ⟨SYN → RST⟩ or ⟨SYN → RST+ACK⟩ depending on rstack.
func IPReset(match IPMatcher, rstack bool, count int) Policy {
	flags := packet.FlagsRST
	if rstack {
		flags = packet.FlagsRSTACK
	}
	return Policy{
		Name:    "ip-reset",
		Stage:   StageSYN,
		MatchIP: match,
		Actions: []Action{{
			Blackhole: true,
			ToServer:  []InjectSpec{rstBurst(flags, count, AckEcho, 255)},
			ToClient:  []InjectSpec{rstBurst(flags, count, AckEcho, 255)},
		}},
	}
}

// IPIDCopyingCensor models censors that copy the client's IP-ID into
// injected packets (§4.3 cites these as the reason absent IP-ID
// evidence does not disprove tampering).
func IPIDCopyingCensor(match DomainMatcher) Policy {
	return Policy{
		Name:        "ipid-copy",
		Stage:       StageFirstData,
		MatchDomain: match,
		Actions: []Action{{
			ToServer: []InjectSpec{{Flags: packet.FlagsRSTACK, Count: 1, Ack: AckEcho, IPID: IPIDCopy, TTL: TTLFixed, TTLValue: 64}},
			ToClient: []InjectSpec{{Flags: packet.FlagsRSTACK, Count: 1, Ack: AckEcho, IPID: IPIDCopy, TTL: TTLFixed, TTLValue: 64}},
		}},
	}
}

// BlockPageInjector models the footnote-2 middleboxes that serve the
// client a block page: on trigger they inject an HTTP 403 response
// toward the client (so the user sees "blocked") followed by a FIN,
// and tear the server side down with a RST. Server-side this is
// indistinguishable from plain RST injection — ⟨PSH+ACK → RST⟩ — which
// is why the paper folds these middleboxes into the RST signatures.
func BlockPageInjector(match DomainMatcher, blockPage string) Policy {
	if blockPage == "" {
		blockPage = "HTTP/1.1 403 Forbidden\r\nContent-Length: 14\r\n\r\nAccess denied."
	}
	return Policy{
		Name:        "block-page",
		Stage:       StageFirstData,
		MatchDomain: match,
		Actions: []Action{{
			DropTriggering: false,
			Blackhole:      true, // the real response must not reach the client
			ToServer: []InjectSpec{
				rstBurst(packet.FlagsRST, 1, AckEcho, 64),
			},
			ToClient: []InjectSpec{
				{Flags: packet.FlagsPSHACK, Count: 1, Ack: AckEcho, IPID: IPIDRandom,
					TTL: TTLFixed, TTLValue: 64, Payload: []byte(blockPage)},
				{Flags: packet.FlagsFINACK, Count: 1, Ack: AckEcho, IPID: IPIDRandom,
					TTL: TTLFixed, TTLValue: 64, PayloadOffset: len(blockPage)},
			},
		}},
	}
}
