package middlebox

import (
	"math/rand/v2"
	"net/netip"
	"strings"
	"testing"
	"time"

	"tamperdetect/internal/httpwire"
	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/tcpsim"
	"tamperdetect/internal/tlswire"
)

// runConn simulates one client connection through an Engine with the
// given policies and returns the inbound packet summaries at the server.
func runConn(t *testing.T, policies []Policy, seed uint64, segments []tcpsim.Segment, behavior tcpsim.Behavior) []packet.Summary {
	t.Helper()
	sim := netsim.NewSim(0)
	rng := rand.New(rand.NewPCG(seed, seed^0x9e37))
	cprof := tcpsim.NetProfile{
		LocalIP:    netip.MustParseAddr("203.0.113.10"),
		RemoteIP:   netip.MustParseAddr("192.0.2.80"),
		LocalPort:  40000,
		RemotePort: 443,
		InitialTTL: 64,
		IPID:       tcpsim.IPIDCounter,
		IPIDValue:  1000,
		Window:     64240,
		SYNOptions: true,
	}
	sprof := tcpsim.NetProfile{
		LocalIP: cprof.RemoteIP, RemoteIP: cprof.LocalIP,
		LocalPort: 443, RemotePort: 40000,
		InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: 30000,
		Window: 65535, SYNOptions: true,
	}
	cli := tcpsim.NewClient(sim, tcpsim.ClientConfig{Net: cprof, Segments: segments, Behavior: behavior}, rng)
	srv := tcpsim.NewServer(sim, tcpsim.ServerConfig{Net: sprof}, rng)
	eng := NewEngine(policies, rng, sim.Now)
	path := netsim.NewPath(sim, netsim.PathConfig{
		Segments:    []netsim.Segment{{Delay: 15 * time.Millisecond, Hops: 4}, {Delay: 25 * time.Millisecond, Hops: 6}},
		Middleboxes: []netsim.Middlebox{eng},
	}, cli, srv)
	var seen []packet.Summary
	parser := packet.NewSummaryParser()
	path.Tap = func(at netsim.Time, data []byte) {
		var s packet.Summary
		if err := parser.Parse(data, &s); err != nil {
			t.Fatalf("tap parse: %v", err)
		}
		seen = append(seen, s)
	}
	cli.Attach(path.SendFromClient)
	srv.Attach(path.SendFromServer)
	cli.Start()
	sim.Run(100000)
	return seen
}

func flagString(seen []packet.Summary) string {
	var parts []string
	for _, s := range seen {
		parts = append(parts, s.Flags.String())
	}
	return strings.Join(parts, " ")
}

func tlsSegment(domain string) []tcpsim.Segment {
	return []tcpsim.Segment{{Data: tlswire.BuildClientHello(tlswire.ClientHelloSpec{ServerName: domain})}}
}

func httpSegment(domain string) []tcpsim.Segment {
	return []tcpsim.Segment{{Data: httpwire.BuildRequest("GET", domain, "/", nil)}}
}

func matchAll(string) bool  { return true }
func matchNone(string) bool { return false }
func ipAll(netip.Addr) bool { return true }

func TestGFWInjectsBurst(t *testing.T) {
	// Run several seeds; every run must show the PSH followed by RST-type
	// packets, with at least one multi-tear-down variant across seeds.
	sawMulti := false
	for seed := uint64(1); seed <= 10; seed++ {
		seen := runConn(t, []Policy{GFW(matchAll)}, seed, tlsSegment("blocked.cn.example"), tcpsim.BehaviorNormal)
		fs := flagString(seen)
		if !strings.HasPrefix(fs, "SYN ACK PSH+ACK") {
			t.Fatalf("seed %d: prefix = %q", seed, fs)
		}
		rsts := 0
		for _, s := range seen {
			if s.Flags.IsRST() {
				rsts++
			}
		}
		if rsts == 0 {
			t.Fatalf("seed %d: no injected tear-down packets: %q", seed, fs)
		}
		if rsts >= 2 {
			sawMulti = true
		}
		// The triggering data packet must have reached the server (GFW
		// is off-path: it never drops).
		if seen[2].PayloadLen == 0 {
			t.Fatalf("seed %d: trigger packet did not arrive", seed)
		}
	}
	if !sawMulti {
		t.Error("no multi-packet burst in 10 seeds")
	}
}

func TestGFWDoesNotTouchOtherDomains(t *testing.T) {
	match := func(d string) bool { return d == "blocked.example" }
	seen := runConn(t, []Policy{GFW(match)}, 3, tlsSegment("fine.example"), tcpsim.BehaviorNormal)
	for _, s := range seen {
		if s.Flags.IsRST() {
			t.Fatalf("RST on unblocked domain: %q", flagString(seen))
		}
	}
	if !strings.Contains(flagString(seen), "FIN") {
		t.Errorf("unblocked connection did not close gracefully: %q", flagString(seen))
	}
}

func TestIranDPIDropsClientHello(t *testing.T) {
	sawSilent, sawRST := false, false
	for seed := uint64(1); seed <= 20; seed++ {
		seen := runConn(t, []Policy{IranDPI(matchAll)}, seed, tlsSegment("protest.example"), tcpsim.BehaviorNormal)
		fs := flagString(seen)
		if !strings.HasPrefix(fs, "SYN ACK") {
			t.Fatalf("seed %d: prefix = %q", seed, fs)
		}
		// The ClientHello must never arrive.
		for _, s := range seen {
			if s.PayloadLen > 0 {
				t.Fatalf("seed %d: data packet leaked through the drop: %q", seed, fs)
			}
		}
		switch {
		case fs == "SYN ACK":
			sawSilent = true
		case strings.Contains(fs, "RST+ACK"):
			sawRST = true
		}
	}
	if !sawSilent || !sawRST {
		t.Errorf("variants not exercised: silent=%v rst=%v", sawSilent, sawRST)
	}
}

func TestHTTPResetSingleRST(t *testing.T) {
	seen := runConn(t, []Policy{HTTPReset(matchAll)}, 5, httpSegment("blocked.tm.example"), tcpsim.BehaviorNormal)
	fs := flagString(seen)
	if fs != "SYN ACK RST" {
		t.Errorf("sequence = %q, want SYN ACK RST", fs)
	}
}

func TestAckGuessingRSTDifferentAcks(t *testing.T) {
	seen := runConn(t, []Policy{AckGuessingRST(matchAll, true)}, 7, httpSegment("kr.example"), tcpsim.BehaviorNormal)
	var acks []uint32
	var ttls []uint8
	for _, s := range seen {
		if s.Flags.IsRST() {
			acks = append(acks, s.Ack)
			ttls = append(ttls, s.TTL)
		}
	}
	if len(acks) < 2 {
		t.Fatalf("want ≥2 RSTs, got %d: %q", len(acks), flagString(seen))
	}
	same := true
	for _, a := range acks[1:] {
		if a != acks[0] {
			same = false
		}
	}
	if same {
		t.Errorf("ack-guessing RSTs all have the same ack: %v", acks)
	}
}

func TestEnterpriseFirewallKeywordAfterData(t *testing.T) {
	segments := []tcpsim.Segment{
		{Data: httpwire.BuildRequest("GET", "intranet.example", "/ok", nil)},
		{Data: httpwire.BuildRequest("GET", "intranet.example", "/forbidden-keyword", nil), AfterResponse: true},
	}
	seen := runConn(t, []Policy{EnterpriseFirewall("forbidden-keyword", true)}, 9, segments, tcpsim.BehaviorNormal)
	fs := flagString(seen)
	// Two data packets must precede the RST+ACK.
	pshSeen := 0
	rstIdx := -1
	for i, s := range seen {
		if s.Flags.Has(packet.FlagPSH) && s.PayloadLen > 0 {
			pshSeen++
		}
		if s.Flags.IsRST() && rstIdx < 0 {
			rstIdx = i
		}
	}
	if pshSeen != 2 || rstIdx < 0 {
		t.Fatalf("psh=%d rstIdx=%d seq=%q", pshSeen, rstIdx, fs)
	}
	if !seen[rstIdx].Flags.IsRSTACK() {
		t.Errorf("tear-down flags = %v, want RST+ACK", seen[rstIdx].Flags)
	}
}

func TestIPBlackholeSingleSYN(t *testing.T) {
	seen := runConn(t, []Policy{IPBlackhole(ipAll)}, 11, tlsSegment("x.example"), tcpsim.BehaviorNormal)
	if fs := flagString(seen); fs != "SYN" {
		t.Errorf("sequence = %q, want single SYN", fs)
	}
}

func TestIPResetRSTACK(t *testing.T) {
	seen := runConn(t, []Policy{IPReset(ipAll, true, 1)}, 13, tlsSegment("x.example"), tcpsim.BehaviorNormal)
	if fs := flagString(seen); fs != "SYN RST+ACK" {
		t.Errorf("sequence = %q, want SYN RST+ACK", fs)
	}
}

func TestTSPUVariants(t *testing.T) {
	wants := []struct {
		variant int
		check   func(fs string) bool
		desc    string
	}{
		{0, func(fs string) bool { return fs == "SYN ACK PSH+ACK" }, "blackhole after PSH"},
		{1, func(fs string) bool {
			return strings.HasPrefix(fs, "SYN ACK PSH+ACK") && strings.Contains(fs, "RST") && !strings.Contains(fs, "RST+ACK")
		}, "single RST"},
		{2, func(fs string) bool { return strings.Count(fs, "RST")-strings.Count(fs, "RST+ACK") >= 2 }, "double RST"},
		{3, func(fs string) bool { return strings.HasPrefix(fs, "SYN ACK RST+ACK") }, "drop + RST+ACK"},
		{4, func(fs string) bool {
			return strings.HasPrefix(fs, "SYN ACK PSH+ACK") && strings.Contains(fs, "RST+ACK")
		}, "forward + RST+ACK"},
	}
	for _, w := range wants {
		seen := runConn(t, []Policy{TSPUVariant(matchAll, w.variant)}, 17, tlsSegment("ru.example"), tcpsim.BehaviorNormal)
		if fs := flagString(seen); !w.check(fs) {
			t.Errorf("variant %d (%s): sequence = %q", w.variant, w.desc, fs)
		}
	}
}

func TestIPIDCopyingCensor(t *testing.T) {
	seen := runConn(t, []Policy{IPIDCopyingCensor(matchAll)}, 19, tlsSegment("kz.example"), tcpsim.BehaviorNormal)
	var trig, inj *packet.Summary
	for i := range seen {
		if seen[i].PayloadLen > 0 && trig == nil {
			trig = &seen[i]
		}
		if seen[i].Flags.IsRST() && inj == nil {
			inj = &seen[i]
		}
	}
	if trig == nil || inj == nil {
		t.Fatalf("missing trigger or injection: %q", flagString(seen))
	}
	if inj.IPID != trig.IPID {
		t.Errorf("injected IP-ID = %d, trigger = %d; want copied", inj.IPID, trig.IPID)
	}
}

func TestInjectedIPIDRandomDiffersFromClient(t *testing.T) {
	seen := runConn(t, []Policy{GFW(matchAll)}, 23, tlsSegment("cn.example"), tcpsim.BehaviorNormal)
	var clientIDs []uint16
	var injected []uint16
	for _, s := range seen {
		if s.Flags.IsRST() {
			injected = append(injected, s.IPID)
		} else {
			clientIDs = append(clientIDs, s.IPID)
		}
	}
	if len(injected) == 0 {
		t.Fatal("no injections")
	}
	// Client IDs are a tight counter sequence near 1000; random
	// injected IDs should (with overwhelming probability over the
	// fixed seed) fall far away for at least one packet.
	far := false
	for _, id := range injected {
		d := int(id) - int(clientIDs[0])
		if d < 0 {
			d = -d
		}
		if d > 100 {
			far = true
		}
	}
	if !far {
		t.Errorf("injected IP-IDs %v suspiciously close to client's %v", injected, clientIDs)
	}
}

func TestDomainOf(t *testing.T) {
	tls := tlswire.BuildClientHello(tlswire.ClientHelloSpec{ServerName: "sni.example"})
	if got := DomainOf(tls); got != "sni.example" {
		t.Errorf("DomainOf(tls) = %q", got)
	}
	http := httpwire.BuildRequest("GET", "host.example", "/", nil)
	if got := DomainOf(http); got != "host.example" {
		t.Errorf("DomainOf(http) = %q", got)
	}
	if got := DomainOf([]byte("random bytes")); got != "" {
		t.Errorf("DomainOf(garbage) = %q", got)
	}
}

func TestEngineFlowExpiry(t *testing.T) {
	sim := netsim.NewSim(0)
	rng := rand.New(rand.NewPCG(1, 1))
	eng := NewEngine(nil, rng, sim.Now)
	// Feed a packet to create flow state.
	w := newForgeWire(forgeProfile{
		srcIP: netip.MustParseAddr("10.0.0.1"), dstIP: netip.MustParseAddr("10.0.0.2"),
		sport: 1, dport: 2, ttl: 64,
	})
	eng.Process(netsim.ClientToServer, w.build(packet.FlagsSYN, 1, 0, nil), func(netsim.Direction, []byte) {})
	if len(eng.flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(eng.flows))
	}
	sim.Schedule(10*time.Minute, func() {})
	sim.Run(0)
	eng.ExpireFlows(time.Minute)
	if len(eng.flows) != 0 {
		t.Errorf("flows = %d after expiry, want 0", len(eng.flows))
	}
}

func TestEngineForwardsNonIP(t *testing.T) {
	eng := NewEngine(nil, rand.New(rand.NewPCG(1, 1)), nil)
	if !eng.Process(netsim.ClientToServer, []byte("garbage"), func(netsim.Direction, []byte) {}) {
		t.Error("non-IP data dropped")
	}
}

func TestPickActionWeights(t *testing.T) {
	eng := NewEngine(nil, rand.New(rand.NewPCG(42, 42)), nil)
	actions := []Action{{Weight: 0.9}, {Weight: 0.1, Blackhole: true}}
	counts := [2]int{}
	for i := 0; i < 5000; i++ {
		a := eng.pickAction(actions, 0)
		if a.Blackhole {
			counts[1]++
		} else {
			counts[0]++
		}
	}
	ratio := float64(counts[0]) / 5000
	if ratio < 0.85 || ratio > 0.95 {
		t.Errorf("weight-0.9 action picked %.3f of the time", ratio)
	}
}
