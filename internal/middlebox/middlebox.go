// Package middlebox implements tampering middleboxes: deep-packet
// inspection over real wire bytes, trigger matching on destination IPs,
// TLS SNI values, HTTP Host headers, and payload keywords, and the
// tampering actions the paper catalogues — packet dropping and RST/
// RST+ACK injection with configurable packet counts, acknowledgment-
// number strategies, IP-ID strategies, and TTL strategies (§2.1, §4).
//
// An Engine implements netsim.Middlebox. Its policies are generic; the
// named censor profiles from the paper's observations (China's GFW,
// Iran's DPI, Turkmenistan's HTTP blocker, commercial enterprise
// firewalls, …) are provided as constructors in profiles.go.
package middlebox

import (
	"bytes"
	"math/rand/v2"
	"net/netip"
	"time"

	"tamperdetect/internal/httpwire"
	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
	"tamperdetect/internal/tlswire"
)

// TriggerStage says how deep into a connection the policy inspects.
type TriggerStage int

// Trigger stages.
const (
	// StageSYN triggers on the connection's first SYN; only IP-based
	// matching is possible (SYNs carry no domain, §4.1).
	StageSYN TriggerStage = iota
	// StageFirstData triggers on client data packets carrying a
	// parseable TLS SNI or HTTP Host (the dominant censorship trigger).
	StageFirstData
	// StageAnyData triggers on a keyword substring in any client data
	// packet, including beyond the first (cleartext keyword censors
	// and TLS-terminating enterprise firewalls, §4.1).
	StageAnyData
)

// AckMode selects the acknowledgment-number strategy of injected
// tear-down packets — the distinguishing feature of several Post-PSH
// signatures (⟨PSH+ACK → RST=RST⟩, ⟨… RST≠RST⟩, ⟨… RST;RST₀⟩).
type AckMode int

// Ack strategies.
const (
	// AckEcho uses the triggering packet's own acknowledgment number.
	AckEcho AckMode = iota
	// AckZero sets the acknowledgment field to zero.
	AckZero
	// AckGuess advances the acknowledgment by i*1460 on the i-th
	// injected packet — Weaver et al.'s "guess the next segment"
	// middleboxes.
	AckGuess
)

// IPIDMode selects the IP identification strategy of injected packets.
type IPIDMode int

// IP-ID strategies for injectors.
const (
	// IPIDRandom draws a fresh random ID per packet: the common case
	// that makes IP-ID deltas strong injection evidence (§4.3).
	IPIDRandom IPIDMode = iota
	// IPIDZeroMode always sends zero.
	IPIDZeroMode
	// IPIDCopy copies the triggering packet's IP-ID, the evasive
	// behaviour prior work observed in some censors.
	IPIDCopy
)

// TTLMode selects the initial TTL of injected packets.
type TTLMode int

// TTL strategies for injectors.
const (
	// TTLFixed stamps TTLValue on every injected packet.
	TTLFixed TTLMode = iota
	// TTLRandom draws uniformly from [TTLMin, TTLMax] per packet — the
	// South Korean ISP behaviour in §4.3/Figure 3.
	TTLRandom
)

// InjectSpec describes one burst of forged tear-down packets.
type InjectSpec struct {
	Flags packet.TCPFlags // FlagsRST or FlagsRSTACK
	Count int
	Ack   AckMode
	IPID  IPIDMode
	TTL   TTLMode
	// TTLValue is the fixed initial TTL; TTLMin/TTLMax bound TTLRandom.
	TTLValue uint8
	TTLMin   uint8
	TTLMax   uint8
	// SeqJitter advances the sequence number by i*1460 per packet,
	// pairing with AckGuess.
	SeqJitter bool
	// Payload attaches application bytes to the injected packet
	// (block-page injection); PayloadOffset advances the sequence
	// number past previously injected payload bytes.
	Payload       []byte
	PayloadOffset int
}

// Action is one weighted tampering reaction.
type Action struct {
	// Weight is the relative probability of this variant; weights are
	// normalized across the policy's Actions.
	Weight float64
	// DropTriggering drops the packet that matched.
	DropTriggering bool
	// Blackhole drops every subsequent packet of the flow in both
	// directions (in-path censors).
	Blackhole bool
	// ToServer and ToClient are forged packets sent each way.
	ToServer []InjectSpec
	ToClient []InjectSpec
}

// Policy couples a trigger with weighted actions.
type Policy struct {
	Name  string
	Stage TriggerStage
	// MatchIP gates StageSYN triggers; nil matches nothing.
	MatchIP func(dst netip.Addr) bool
	// MatchDomain gates StageFirstData triggers on the SNI/Host value;
	// nil matches nothing.
	MatchDomain func(domain string) bool
	// Keyword gates StageAnyData triggers; empty matches nothing.
	Keyword string
	Actions []Action
	// ActionSeed, when nonzero, makes the weighted-action choice
	// deterministic (hash-based) with a small residual random share —
	// real deployments apply the same behaviour to the same route and
	// destination, which is what makes Appendix B's IP-domain pairs
	// consistent.
	ActionSeed uint64
	// ResidualSeconds enables residual censorship (Appendix B,
	// hypothesis 2; the GFW's well-documented behaviour): once a flow
	// triggers, *new* connections between the same client and server
	// are torn down at the SYN for this long, regardless of content.
	ResidualSeconds int
	// Reverse also applies the policy's blackhole to server->client
	// traffic before the trigger (unused by current profiles; kept for
	// symmetric censors).
	Reverse bool
}

// flowKey identifies a flow by its initiator-side 4-tuple.
type flowKey struct {
	client, server netip.Addr
	cport, sport   uint16
}

// hostPair keys residual-censorship state by client/server addresses.
type hostPair struct {
	client, server netip.Addr
}

// flowState tracks a flow's progress past the middlebox.
type flowState struct {
	synSeen    bool
	ackSeen    bool
	dataCount  int
	triggered  bool
	blackholed bool
	lastSeen   netsim.Time
}

// Engine is a DPI middlebox applying a set of policies. It implements
// netsim.Middlebox. One Engine may serve many flows.
type Engine struct {
	policies []Policy
	rng      *rand.Rand
	parser   *packet.SummaryParser
	flows    map[flowKey]*flowState
	now      func() netsim.Time
	// residualUntil records, per host pair, the virtual time until
	// which new connections are punished (residual censorship).
	residualUntil map[hostPair]netsim.Time

	// Stats for tests and reports.
	Triggered int
	Dropped   int
	Injected  int
}

// NewEngine builds a middlebox engine. now may be nil when flow aging
// is not needed.
func NewEngine(policies []Policy, rng *rand.Rand, now func() netsim.Time) *Engine {
	return &Engine{
		policies:      policies,
		rng:           rng,
		parser:        packet.NewSummaryParser(),
		flows:         make(map[flowKey]*flowState),
		now:           now,
		residualUntil: make(map[hostPair]netsim.Time),
	}
}

// Process implements netsim.Middlebox.
func (e *Engine) Process(dir netsim.Direction, data []byte, inject func(netsim.Direction, []byte)) bool {
	var s packet.Summary
	if err := e.parser.Parse(data, &s); err != nil {
		return true // not IP/TCP: forward untouched
	}
	key, fromClient := e.flowKeyOf(dir, &s)
	st := e.flows[key]
	if st == nil {
		st = &flowState{}
		e.flows[key] = st
	}
	if e.now != nil {
		st.lastSeen = e.now()
	}
	if st.blackholed {
		e.Dropped++
		return false
	}

	// Residual censorship: a punished host pair gets its new SYNs
	// reset immediately, before any content is inspected.
	if fromClient && s.Flags.Has(packet.FlagSYN) && !st.triggered && e.now != nil {
		pair := hostPair{client: key.client, server: key.server}
		if until, ok := e.residualUntil[pair]; ok {
			if e.now() <= until {
				// Off-path style: the SYN still reaches the server,
				// chased by forged RSTs, and the rest of the flow is
				// swallowed — ⟨SYN → RST⟩ at the server.
				st.triggered = true
				st.blackholed = true
				e.Triggered++
				spec := InjectSpec{Flags: packet.FlagsRST, Count: 1, Ack: AckEcho, IPID: IPIDRandom, TTL: TTLFixed, TTLValue: 64}
				inject(netsim.ClientToServer, e.forge(spec, 0, &s, true))
				inject(netsim.ServerToClient, e.forge(spec, 0, &s, false))
				e.Injected += 2
				return true
			}
			delete(e.residualUntil, pair)
		}
	}

	// Track stage progress from the client side.
	if fromClient {
		switch {
		case s.Flags.Has(packet.FlagSYN):
			st.synSeen = true
		case s.PayloadLen > 0:
			st.dataCount++
		case s.Flags.Has(packet.FlagACK):
			st.ackSeen = true
		}
	}

	// Match policies. A flow triggers at most once: real censors act
	// on the first match and their residual state handles the rest —
	// retransmissions of the triggering packet are swallowed by the
	// blackhole or re-trigger identically, which we suppress to avoid
	// double bursts. Blackhole-only policies keep absorbing.
	if fromClient && !st.triggered {
		for i := range e.policies {
			p := &e.policies[i]
			if !e.matches(p, st, &s) {
				continue
			}
			st.triggered = true
			e.Triggered++
			act := e.pickAction(p.Actions, p.ActionSeed)
			if act == nil {
				break
			}
			if act.Blackhole {
				// The blackhole swallows *subsequent* packets; the
				// trigger itself passes unless DropTriggering is set
				// (⟨SYN → ∅⟩ and ⟨PSH+ACK → ∅⟩ both require the
				// trigger to reach the server).
				st.blackholed = true
			}
			if p.ResidualSeconds > 0 && e.now != nil {
				pair := hostPair{client: key.client, server: key.server}
				e.residualUntil[pair] = e.now().Add(time.Duration(p.ResidualSeconds) * time.Second)
			}
			e.injectBursts(act, &s, inject)
			if act.DropTriggering {
				e.Dropped++
				return false
			}
			break
		}
	} else if fromClient && st.triggered {
		// Retransmissions of a dropped trigger stay dropped even
		// without a full blackhole: the DPI re-matches them.
		if st.lastDropRetrigger(e, &s) {
			e.Dropped++
			return false
		}
	}
	return true
}

// lastDropRetrigger reports whether a post-trigger client packet would
// re-match a dropping policy (so trigger retransmissions die the same
// death as the original).
func (st *flowState) lastDropRetrigger(e *Engine, s *packet.Summary) bool {
	if s.PayloadLen == 0 {
		return false
	}
	for i := range e.policies {
		p := &e.policies[i]
		if !triggerContent(p, s) {
			continue
		}
		for _, a := range p.Actions {
			if a.DropTriggering || a.Blackhole {
				return true
			}
		}
	}
	return false
}

// matches evaluates the policy trigger against the current packet and
// flow stage.
func (e *Engine) matches(p *Policy, st *flowState, s *packet.Summary) bool {
	switch p.Stage {
	case StageSYN:
		return s.Flags.Has(packet.FlagSYN) && p.MatchIP != nil && p.MatchIP(s.DstIP)
	case StageFirstData, StageAnyData:
		if s.PayloadLen == 0 {
			return false
		}
		return triggerContent(p, s)
	default:
		return false
	}
}

// triggerContent checks only the packet content against the policy
// (stage progress aside) — used both for first matches and for
// retransmission re-matching.
func triggerContent(p *Policy, s *packet.Summary) bool {
	switch p.Stage {
	case StageFirstData:
		if p.MatchDomain == nil {
			return false
		}
		domain := DomainOf(s.Payload)
		return domain != "" && p.MatchDomain(domain)
	case StageAnyData:
		return p.Keyword != "" && bytes.Contains(s.Payload, []byte(p.Keyword))
	default:
		return false
	}
}

// DomainOf extracts the tampering-relevant domain from a client data
// payload: the TLS SNI if the payload is a ClientHello, else the HTTP
// Host header, else "".
func DomainOf(payload []byte) string {
	if tlswire.LooksLikeClientHello(payload) {
		if sni, err := tlswire.ParseSNI(payload); err == nil {
			return sni
		}
		return ""
	}
	if httpwire.LooksLikeRequest(payload) {
		return httpwire.HostOf(payload)
	}
	return ""
}

// pickAction draws a weighted action variant. A nonzero seed pins the
// choice deterministically for ~85% of triggers, modelling per-route
// consistency; the remainder stays random (packet loss, load-balanced
// boxes) — the Appendix B off-diagonal bleed.
func (e *Engine) pickAction(actions []Action, seed uint64) *Action {
	if len(actions) == 0 {
		return nil
	}
	if len(actions) == 1 {
		return &actions[0]
	}
	total := 0.0
	for i := range actions {
		w := actions[i].Weight
		if w <= 0 {
			w = 1
		}
		total += w
	}
	u := e.rng.Float64()
	if seed != 0 && e.rng.Float64() < 0.85 {
		u = float64(splitmix(seed)>>11) / float64(1<<53)
	}
	r := u * total
	for i := range actions {
		w := actions[i].Weight
		if w <= 0 {
			w = 1
		}
		if r < w {
			return &actions[i]
		}
		r -= w
	}
	return &actions[len(actions)-1]
}

// injectBursts forges and sends the action's packets, derived from the
// triggering packet s.
func (e *Engine) injectBursts(act *Action, s *packet.Summary, inject func(netsim.Direction, []byte)) {
	for _, spec := range act.ToServer {
		for i := 0; i < spec.Count; i++ {
			pkt := e.forge(spec, i, s, true)
			inject(netsim.ClientToServer, pkt)
			e.Injected++
		}
	}
	for _, spec := range act.ToClient {
		for i := 0; i < spec.Count; i++ {
			pkt := e.forge(spec, i, s, false)
			inject(netsim.ServerToClient, pkt)
			e.Injected++
		}
	}
}

// forge builds one injected packet. toServer selects spoofing the
// client (packet travels to the server) versus spoofing the server.
func (e *Engine) forge(spec InjectSpec, i int, s *packet.Summary, toServer bool) []byte {
	// SYN and FIN consume one sequence number beyond the payload.
	trigEnd := s.Seq + uint32(s.PayloadLen)
	if s.Flags.HasAny(packet.FlagSYN | packet.FlagFIN) {
		trigEnd++
	}
	var seq, ack uint32
	if toServer {
		// Land on the server's rcv.nxt so the RST is accepted.
		seq = trigEnd
		ack = s.Ack
	} else {
		seq = s.Ack
		ack = trigEnd
	}
	if spec.SeqJitter {
		seq += uint32(i) * 1460
	}
	seq += uint32(spec.PayloadOffset)
	switch spec.Ack {
	case AckZero:
		ack = 0
	case AckGuess:
		ack += uint32(i) * 1460
	}
	var ttl uint8
	switch spec.TTL {
	case TTLRandom:
		lo, hi := spec.TTLMin, spec.TTLMax
		if hi <= lo {
			hi = lo + 1
		}
		ttl = lo + uint8(e.rng.IntN(int(hi-lo)+1))
	default:
		ttl = spec.TTLValue
		if ttl == 0 {
			ttl = 64
		}
	}
	var ipid uint16
	switch spec.IPID {
	case IPIDZeroMode:
		ipid = 0
	case IPIDCopy:
		ipid = s.IPID
	default:
		ipid = uint16(e.rng.IntN(0x10000))
	}

	prof := tcpWireProfile(s, toServer, ttl, ipid)
	w := newForgeWire(prof)
	return w.build(spec.Flags, seq, ack, spec.Payload)
}

// splitmix is a tiny deterministic hash finalizer (SplitMix64).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// flowKeyOf normalizes a packet to its initiator-side key. The
// simulator always has the client on the ClientToServer side.
func (e *Engine) flowKeyOf(dir netsim.Direction, s *packet.Summary) (flowKey, bool) {
	if dir == netsim.ClientToServer {
		return flowKey{client: s.SrcIP, server: s.DstIP, cport: s.SrcPort, sport: s.DstPort}, true
	}
	return flowKey{client: s.DstIP, server: s.SrcIP, cport: s.DstPort, sport: s.SrcPort}, false
}

// ExpireFlows drops state for flows idle longer than maxIdle; call it
// periodically in long simulations to bound memory.
func (e *Engine) ExpireFlows(maxIdle time.Duration) {
	if e.now == nil {
		return
	}
	cut := e.now().Add(-maxIdle)
	for k, st := range e.flows {
		if st.lastSeen < cut {
			delete(e.flows, k)
		}
	}
}
