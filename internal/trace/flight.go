package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultFlightEvents is the event-ring capacity when NewFlight is
// given n <= 0.
const DefaultFlightEvents = 256

// Attr is one structured key/value on a flight-recorder event. Values
// are pre-rendered to strings: events are rare (warnings, fallbacks,
// panics), so the formatting cost is irrelevant, and the dump path
// must never fail to serialize.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds an Attr.
func A(key string, value any) Attr {
	switch v := value.(type) {
	case string:
		return Attr{Key: key, Value: v}
	case error:
		return Attr{Key: key, Value: v.Error()}
	default:
		return Attr{Key: key, Value: fmt.Sprint(v)}
	}
}

// Event is one structured flight-recorder entry.
type Event struct {
	At    time.Time `json:"at"`
	Level string    `json:"level"`
	Msg   string    `json:"msg"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Flight is the crash/interrupt flight recorder: a fixed ring of the
// last N structured events, plus (through the owning Tracer) the last
// spans each producer ring holds. It turns silent fallbacks — an
// interrupted run, a contained classifier panic, an index distrust
// rescan — into post-mortems: Dump writes everything the ring
// remembers to a writer at the moment of trouble.
//
// Record is safe for concurrent use and allocates; it is for warn-rate
// paths, never the per-record hot path.
type Flight struct {
	mu     sync.Mutex
	events []Event
	pos    int
	filled bool
	tracer *Tracer // set by New when Config.Flight is wired
}

// NewFlight builds a flight recorder holding the last n events
// (DefaultFlightEvents when n <= 0).
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &Flight{events: make([]Event, n)}
}

// Record appends one structured event, overwriting the oldest once
// the ring is full. Safe for concurrent use; nil-receiver safe so
// deep layers can record unconditionally.
func (f *Flight) Record(level, msg string, attrs ...Attr) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.events[f.pos] = Event{At: time.Now(), Level: level, Msg: msg, Attrs: attrs}
	f.pos++
	if f.pos == len(f.events) {
		f.pos, f.filled = 0, true
	}
	f.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (f *Flight) Events() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Event
	if f.filled {
		out = append(out, f.events[f.pos:]...)
	}
	out = append(out, f.events[:f.pos]...)
	return out
}

// flightDump is the JSON-lines header record of a dump.
type flightDump struct {
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
	Trace  string `json:"trace,omitempty"`
	Events int    `json:"events"`
	Spans  int    `json:"spans"`
}

// Dump writes the post-mortem as JSON lines: one header record, then
// every remembered event (oldest first), then the spans currently in
// the tracer's rings (oldest first). reason names the trigger
// ("signal", "panic", "bad-index", ...). Dump never fails the caller:
// write errors are returned but the recorder state is untouched, so
// dumping to both stderr and a file is just two calls.
func (f *Flight) Dump(w io.Writer, reason string) error {
	if f == nil {
		return nil
	}
	events := f.Events()
	var spans []Span
	var traceID string
	if f.tracer != nil {
		spans = f.tracer.Snapshot()
		traceID = fmt.Sprintf("%016x", f.tracer.TraceID())
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(flightDump{
		Kind: "flight_recorder", Reason: reason, Trace: traceID,
		Events: len(events), Spans: len(spans),
	}); err != nil {
		return err
	}
	for _, ev := range events {
		rec := struct {
			Kind string `json:"kind"`
			Event
		}{Kind: "event", Event: ev}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, sp := range spans {
		rec := struct {
			Kind string `json:"kind"`
			Span
		}{Kind: "span", Span: sp}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
