// Package trace is the pipeline's distributed-tracing layer: a
// low-overhead span engine that follows individual records and batches
// through scan → decode → classify → observe → sink and across the
// fleet push/merge hop, complementing internal/telemetry's aggregate
// metrics with per-work evidence.
//
// The engine is built for the same hot-path discipline as telemetry:
//
//   - Spans live in fixed per-producer ring buffers of preallocated
//     slots. Emitting a span is a handful of atomic stores — no
//     allocation, no locks on the single-producer path (Ring.Emit),
//     and a short uncontended mutex on the rare shared path
//     (Tracer.EmitShared: fleet pushes, merges).
//   - Span names are interned to small integer IDs once, outside the
//     hot path, so emission never hashes or retains strings.
//   - Per-record spans are head-sampled by record index: record i is
//     sampled iff i % SampleEvery == 0. The decision depends only on
//     the index, so the sampled set is a pure function of the input —
//     reproducible across runs, worker counts, and shard counts.
//     Batch-level spans are always emitted when a Tracer is attached
//     (they are one span per stage per batch, allocation-free).
//
// Readers never block writers: snapshots (the /debug/tracez handler,
// the flight recorder, the Chrome exporter) read ring slots through a
// seqlock-style sequence check and simply skip a slot caught
// mid-write. A bounded profile collector can additionally retain every
// emitted span for post-run export (-trace-profile).
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultRingSize is the per-ring span capacity when Config.RingSize
// is 0: enough to hold the last few seconds of batch spans per
// producer without measurable memory cost.
const DefaultRingSize = 256

// DefaultSampleEvery is the head-sampling interval tamperscan uses
// when tracing is enabled without an explicit -trace-sample: one
// record in 1024 gets per-record spans.
const DefaultSampleEvery = 1024

// SpanRec is the raw emitted form of a span: the name is an interned
// ID (Tracer.NameID) so emission carries no strings. Snapshot resolves
// records into Spans.
type SpanRec struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64
	NameID  int32
	Start   int64 // ns since the unix epoch
	Dur     int64 // ns
	Worker  int32 // emitting worker index, -1 when not worker-scoped
	Shard   int32 // emitting shard, -1 when not shard-scoped
	Record  int64 // first record index covered, -1 when not record-scoped
	Count   int32 // records covered: batch width, or 1 for record spans
}

// Span is a resolved span as returned by Snapshot and consumed by the
// exporters.
type Span struct {
	TraceID uint64 `json:"trace"`
	SpanID  uint64 `json:"span"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	Start   int64  `json:"start_ns"`
	Dur     int64  `json:"dur_ns"`
	Worker  int32  `json:"worker"`
	Shard   int32  `json:"shard"`
	Record  int64  `json:"record"`
	Count   int32  `json:"count"`
	Ring    int    `json:"ring"` // producer ring the span came from
}

// End reports the span's end time in ns since the unix epoch.
func (s Span) End() int64 { return s.Start + s.Dur }

// Config configures a Tracer.
type Config struct {
	// TraceID is the run's root trace identifier — tamperscan reuses
	// its per-run correlation ID so log lines and spans join on one
	// key. 0 is accepted (an untraced-context trace).
	TraceID uint64
	// Root is the span ID the top-level pipeline spans parent to
	// (the CLI's "run" span); 0 means pipeline spans are roots.
	Root uint64
	// SampleEvery enables per-record spans for records whose index is
	// a multiple of it; <= 0 disables per-record spans entirely
	// (batch-level spans are still emitted).
	SampleEvery int
	// RingSize is the per-producer ring capacity in spans; 0 means
	// DefaultRingSize.
	RingSize int
	// MaxProfile, when > 0, retains up to that many emitted spans in
	// the bounded profile collector for TakeProfile / Chrome export.
	// Spans past the bound are counted (ProfileDropped) and discarded.
	MaxProfile int
	// Flight, when non-nil, is the crash/interrupt flight recorder
	// associated with the run; Tracer.Flight returns it so deep layers
	// (classifier panic containment, index distrust) can record
	// structured events without new plumbing.
	Flight *Flight
}

// Tracer is the per-run span engine. One Tracer serves one logical
// run (or one long-lived service); producers emit through per-producer
// Rings or the shared path, and any goroutine may Snapshot.
type Tracer struct {
	traceID uint64
	root    uint64
	every   int64
	ringSz  int
	profMax int
	flight  *Flight

	spanSeq atomic.Uint64

	mu       sync.Mutex // guards interning, ring growth, shared emit, profile
	nameIdx  map[string]int32
	names    atomic.Pointer[[]string]
	rings    atomic.Pointer[[]*Ring]
	labels   []string
	shared   *Ring
	profile  []profEntry
	profDrop atomic.Int64
}

// profEntry is one collected profile span plus its producer ring
// (-1 for the shared ring).
type profEntry struct {
	rec  SpanRec
	ring int32
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	sz := cfg.RingSize
	if sz <= 0 {
		sz = DefaultRingSize
	}
	t := &Tracer{
		traceID: cfg.TraceID,
		root:    cfg.Root,
		every:   int64(cfg.SampleEvery),
		ringSz:  sz,
		profMax: cfg.MaxProfile,
		flight:  cfg.Flight,
		nameIdx: map[string]int32{},
	}
	names := []string{}
	t.names.Store(&names)
	rings := []*Ring{}
	t.rings.Store(&rings)
	t.shared = newRing(t, sz, -1)
	if cfg.MaxProfile > 0 {
		t.profile = make([]profEntry, 0, min(cfg.MaxProfile, 1<<16))
	}
	if t.flight != nil {
		t.flight.tracer = t
	}
	return t
}

// TraceID returns the run's root trace identifier.
func (t *Tracer) TraceID() uint64 { return t.traceID }

// Root returns the span ID pipeline-level spans parent to (0 = none).
func (t *Tracer) Root() uint64 { return t.root }

// SetRoot records the run-root span ID after the CLI emits it.
func (t *Tracer) SetRoot(id uint64) { t.root = id }

// Flight returns the associated flight recorder, or nil.
func (t *Tracer) Flight() *Flight {
	if t == nil {
		return nil
	}
	return t.flight
}

// SampleEvery returns the per-record head-sampling interval (<= 0
// means per-record spans are off).
func (t *Tracer) SampleEvery() int { return int(t.every) }

// Sampled reports whether the record at index i is head-sampled. The
// decision is a pure function of the index, so the sampled set is
// identical across runs, worker counts, and shard counts.
func (t *Tracer) Sampled(i int64) bool {
	return t.every > 0 && i >= 0 && i%t.every == 0
}

// NewSpanID allocates a process-unique span ID (never 0).
func (t *Tracer) NewSpanID() uint64 { return t.spanSeq.Add(1) }

// NameID interns name, returning its small integer ID. Interning
// takes the tracer mutex; callers intern once at setup and reuse the
// ID on the hot path.
func (t *Tracer) NameID(name string) int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.nameIdx[name]; ok {
		return id
	}
	old := *t.names.Load()
	names := make([]string, len(old)+1)
	copy(names, old)
	names[len(old)] = name
	id := int32(len(old))
	t.nameIdx[name] = id
	t.names.Store(&names)
	return id
}

// name resolves an interned ID ("?" for unknown).
func (t *Tracer) name(id int32) string {
	names := *t.names.Load()
	if id >= 0 && int(id) < len(names) {
		return names[id]
	}
	return "?"
}

// Ring returns producer ring i, growing the ring set on demand. Each
// ring must be written by at most one goroutine at a time; callers
// grab their ring once at goroutine start. Ring identity is stable
// for the life of the tracer.
func (t *Tracer) Ring(i int) *Ring {
	if rs := *t.rings.Load(); i < len(rs) {
		return rs[i]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rs := *t.rings.Load()
	for len(rs) <= i {
		rs = append(rs, newRing(t, t.ringSz, len(rs)))
		t.labels = append(t.labels, "")
	}
	t.rings.Store(&rs)
	return rs[i]
}

// LabelRing names producer ring i for the exporters (thread names in
// the Chrome export, ring column in tracez).
func (t *Tracer) LabelRing(i int, label string) {
	t.Ring(i) // ensure it exists
	t.mu.Lock()
	t.labels[i] = label
	t.mu.Unlock()
}

// RingLabel returns ring i's label ("" when unset; "shared" for the
// shared ring, whose index is -1).
func (t *Tracer) RingLabel(i int) string {
	if i < 0 {
		return "shared"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < len(t.labels) {
		return t.labels[i]
	}
	return ""
}

// EmitShared emits a span from a multi-producer context (fleet
// pushes, merger ingests) under the tracer mutex. Rare-path only.
func (t *Tracer) EmitShared(s SpanRec) {
	t.mu.Lock()
	t.shared.emit(s)
	t.mu.Unlock()
	t.collect(s, -1)
}

// collect funnels every emitted span into the bounded profile
// collector when one is configured.
func (t *Tracer) collect(s SpanRec, ring int) {
	if t.profMax <= 0 {
		return
	}
	t.mu.Lock()
	if len(t.profile) < t.profMax {
		t.profile = append(t.profile, profEntry{rec: s, ring: int32(ring)})
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.profDrop.Add(1)
}

// ProfileDropped reports how many spans overflowed the profile bound.
func (t *Tracer) ProfileDropped() int64 { return t.profDrop.Load() }

// TakeProfile returns (and clears) the collected profile, resolved.
func (t *Tracer) TakeProfile() []Span {
	t.mu.Lock()
	recs := t.profile
	t.profile = nil
	t.mu.Unlock()
	out := make([]Span, len(recs))
	for i, e := range recs {
		out[i] = t.resolve(e.rec, int(e.ring))
	}
	return out
}

func (t *Tracer) resolve(r SpanRec, ring int) Span {
	return Span{
		TraceID: r.TraceID,
		SpanID:  r.SpanID,
		Parent:  r.Parent,
		Name:    t.name(r.NameID),
		Start:   r.Start,
		Dur:     r.Dur,
		Worker:  r.Worker,
		Shard:   r.Shard,
		Record:  r.Record,
		Count:   r.Count,
		Ring:    ring,
	}
}

// Snapshot returns the spans currently held in every producer ring
// plus the shared ring, resolved and sorted by start time. It never
// blocks writers; slots caught mid-write are skipped.
func (t *Tracer) Snapshot() []Span {
	rings := *t.rings.Load()
	var out []Span
	for i, r := range rings {
		for _, rec := range r.snapshot() {
			out = append(out, t.resolve(rec, i))
		}
	}
	for _, rec := range t.shared.snapshot() {
		out = append(out, t.resolve(rec, -1))
	}
	sortSpans(out)
	return out
}

// sortSpans orders spans by (Start, SpanID) — stable for rendering.
func sortSpans(s []Span) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Start != s[j].Start {
			return s[i].Start < s[j].Start
		}
		return s[i].SpanID < s[j].SpanID
	})
}
