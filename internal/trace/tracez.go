package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// The live tracez endpoint: a point-in-time view of the spans still
// held in the producer rings — recent spans, per-stage latency
// percentiles, and the slowest spans — served as plain text by
// default and as JSON with ?format=json. Mounted on the telemetry
// HTTP server at /debug/tracez via telemetry.NewServerWith.

// tracezStage is one stage row of the percentile table.
type tracezStage struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	P50ns int64  `json:"p50_ns"`
	P90ns int64  `json:"p90_ns"`
	P99ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// tracezView is the JSON shape of one scrape.
type tracezView struct {
	TraceID string        `json:"trace_id"`
	Spans   int           `json:"spans"`
	Stages  []tracezStage `json:"stages"`
	Slowest []Span        `json:"slowest"`
	Recent  []Span        `json:"recent"`
}

const (
	tracezRecent  = 64
	tracezSlowest = 10
)

func buildTracezView(t *Tracer) tracezView {
	spans := t.Snapshot()
	view := tracezView{
		TraceID: fmt.Sprintf("%016x", t.TraceID()),
		Spans:   len(spans),
	}

	byStage := map[string][]int64{}
	for _, s := range spans {
		byStage[s.Name] = append(byStage[s.Name], s.Dur)
	}
	for name, durs := range byStage {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		pct := func(p float64) int64 {
			i := int(p * float64(len(durs)-1))
			return durs[i]
		}
		view.Stages = append(view.Stages, tracezStage{
			Name: name, Count: len(durs),
			P50ns: pct(0.50), P90ns: pct(0.90), P99ns: pct(0.99),
			MaxNs: durs[len(durs)-1],
		})
	}
	sort.Slice(view.Stages, func(i, j int) bool { return view.Stages[i].Name < view.Stages[j].Name })

	slowest := append([]Span(nil), spans...)
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].Dur > slowest[j].Dur })
	if len(slowest) > tracezSlowest {
		slowest = slowest[:tracezSlowest]
	}
	view.Slowest = slowest

	recent := spans
	if len(recent) > tracezRecent {
		recent = recent[len(recent)-tracezRecent:]
	}
	// newest first for the operator
	rev := make([]Span, len(recent))
	for i, s := range recent {
		rev[len(recent)-1-i] = s
	}
	view.Recent = rev
	return view
}

// TracezHandler serves the live span view for t.
func TracezHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		view := buildTracezView(t)
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(view)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "tracez — trace %s — %d spans in rings\n\n", view.TraceID, view.Spans)
		fmt.Fprintf(w, "per-stage latency (from ring contents):\n")
		fmt.Fprintf(w, "  %-14s %8s %12s %12s %12s %12s\n", "stage", "count", "p50", "p90", "p99", "max")
		for _, st := range view.Stages {
			fmt.Fprintf(w, "  %-14s %8d %12s %12s %12s %12s\n", st.Name, st.Count,
				time.Duration(st.P50ns), time.Duration(st.P90ns),
				time.Duration(st.P99ns), time.Duration(st.MaxNs))
		}
		fmt.Fprintf(w, "\nslowest spans:\n")
		writeSpanTable(w, t, view.Slowest)
		fmt.Fprintf(w, "\nrecent spans (newest first):\n")
		writeSpanTable(w, t, view.Recent)
	})
}

func writeSpanTable(w http.ResponseWriter, t *Tracer, spans []Span) {
	fmt.Fprintf(w, "  %-14s %12s %10s %7s %6s %-12s %s\n",
		"name", "dur", "record", "count", "shard", "ring", "span")
	for _, s := range spans {
		ring := t.RingLabel(s.Ring)
		if ring == "" {
			ring = fmt.Sprintf("#%d", s.Ring)
		}
		fmt.Fprintf(w, "  %-14s %12s %10d %7d %6d %-12s %x\n",
			s.Name, time.Duration(s.Dur), s.Record, s.Count, s.Shard, ring, s.SpanID)
	}
}
