package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Chrome trace-event export: the collected span profile rendered in
// the Trace Event Format that chrome://tracing and Perfetto load
// directly. Mapping:
//
//   - every producer ring becomes one thread (tid = ring index + 1,
//     named via Tracer.LabelRing); the shared ring is the last tid
//   - complete spans become "X" (duration) events with microsecond
//     timestamps relative to the earliest span
//   - queue-wait spans become async "b"/"e" pairs: their interval
//     (enqueue → worker pickup) overlaps whatever the picking worker
//     was doing before, so they must not participate in the thread's
//     synchronous nesting
//
// Stage spans on one thread nest strictly (a record span sits inside
// its batch span; batch spans never overlap on a thread), which
// ValidateChrome — and the check.sh gate built on it — enforces.

// QueueWaitName is the span name exported as async events instead of
// synchronous duration events.
const QueueWaitName = "queue-wait"

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChrome renders spans (typically Tracer.TakeProfile output) as
// Chrome trace JSON. The tracer supplies ring labels for thread
// names; it may be nil.
func WriteChrome(w io.Writer, t *Tracer, spans []Span) error {
	var base int64 = 0
	for i, s := range spans {
		if i == 0 || s.Start < base {
			base = s.Start
		}
	}
	tids := map[int]bool{}
	out := chromeTrace{DisplayTimeUnit: "ms", OtherData: map[string]any{}}
	if t != nil {
		out.OtherData["trace_id"] = fmt.Sprintf("%016x", t.TraceID())
		if d := t.ProfileDropped(); d > 0 {
			out.OtherData["dropped_spans"] = d
		}
	}
	for _, s := range spans {
		// tid 1 is the shared ring (Ring == -1); producer ring i maps
		// to tid i+2 so every tid is positive.
		tid := s.Ring + 2
		tids[tid] = true
		ts := float64(s.Start-base) / 1e3
		args := map[string]any{
			"trace":  fmt.Sprintf("%016x", s.TraceID),
			"span":   fmt.Sprintf("%x", s.SpanID),
			"record": s.Record,
			"count":  s.Count,
			"shard":  s.Shard,
			"worker": s.Worker,
		}
		if s.Parent != 0 {
			args["parent"] = fmt.Sprintf("%x", s.Parent)
		}
		if s.Name == QueueWaitName {
			end := float64(s.End()-base) / 1e3
			id := fmt.Sprintf("%x", s.SpanID)
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{Name: s.Name, Ph: "b", Ts: ts, Pid: 1, Tid: tid, Cat: "queue", ID: id, Args: args},
				chromeEvent{Name: s.Name, Ph: "e", Ts: end, Pid: 1, Tid: tid, Cat: "queue", ID: id})
			continue
		}
		dur := float64(s.Dur) / 1e3
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: s.Name, Ph: "X", Ts: ts, Dur: &dur, Pid: 1, Tid: tid, Cat: "stage", Args: args})
	}
	if t != nil {
		for tid := range tids {
			label := t.RingLabel(tid - 2)
			if label == "" {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": label},
			})
		}
	}
	// Deterministic output order: metadata first, then by (tid, ts).
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		a, b := out.TraceEvents[i], out.TraceEvents[j]
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Ts < b.Ts
	})
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeFile writes the tracer's collected profile to path.
func WriteChromeFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChrome(f, t, t.TakeProfile()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateChrome parses data as Chrome trace JSON and checks the
// structural contract the exporter promises: every event carries a
// known phase, "X" events have non-negative timestamps/durations, and
// the "X" events on each thread nest strictly — a span either
// contains the next one or ends before it starts; partial overlap is
// a malformed trace. This is the check.sh gate's teeth.
func ValidateChrome(data []byte) error {
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("trace: invalid chrome JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("trace: chrome export has no events")
	}
	// Interval math runs on integer nanoseconds: the exporter divides
	// ns by 1e3 into fractional-µs floats, and summing those can push a
	// span's end a ULP past an adjacent sibling's start, which would
	// read as a phantom overlap.
	type xev struct{ start, end int64 }
	byTid := map[int][]xev{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 || ev.Ts < 0 {
				return fmt.Errorf("trace: X event %q has bad ts/dur", ev.Name)
			}
			start := int64(math.Round(ev.Ts * 1e3))
			dur := int64(math.Round(*ev.Dur * 1e3))
			byTid[ev.Tid] = append(byTid[ev.Tid], xev{start, start + dur})
		case "b", "e", "M":
			// async pair halves and metadata: no nesting constraint
		default:
			return fmt.Errorf("trace: unexpected phase %q", ev.Ph)
		}
	}
	for tid, evs := range byTid {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].start != evs[j].start {
				return evs[i].start < evs[j].start
			}
			return evs[i].end > evs[j].end // widest first: parent before child
		})
		var stack []xev
		for _, e := range evs {
			for len(stack) > 0 && stack[len(stack)-1].end <= e.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && e.end > stack[len(stack)-1].end {
				return fmt.Errorf("trace: tid %d: span [%dns,%dns) partially overlaps enclosing [%dns,%dns)",
					tid, e.start, e.end, stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, e)
		}
	}
	return nil
}
