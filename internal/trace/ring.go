package trace

import "sync/atomic"

// Ring is a fixed-size single-producer span ring. The producer
// (exactly one goroutine at a time) emits with Emit; any number of
// readers snapshot concurrently without blocking the producer.
//
// Each slot is guarded seqlock-style: the producer bumps the slot's
// sequence to odd, stores the span's fields as individual atomics,
// and bumps it back to even. A reader loads the sequence, copies the
// fields, and re-checks the sequence — a mismatch (or an odd value)
// means the slot was caught mid-overwrite and is skipped. Every field
// access is atomic, so the protocol is race-detector-clean, and the
// producer never waits: old spans are simply overwritten in emission
// order, which is exactly the "last N spans" semantic the flight
// recorder and tracez want.
type Ring struct {
	t     *Tracer
	idx   int // ring index within the tracer; -1 for the shared ring
	pos   int // producer-owned write cursor
	slots []ringSlot
}

// ringSlot packs a SpanRec into eight atomically-stored words plus
// the seqlock sequence.
type ringSlot struct {
	seq atomic.Uint64
	f   [8]atomic.Int64
}

func newRing(t *Tracer, size, idx int) *Ring {
	return &Ring{t: t, idx: idx, slots: make([]ringSlot, size)}
}

func packSlot(sl *ringSlot, s SpanRec) {
	sl.f[0].Store(int64(s.TraceID))
	sl.f[1].Store(int64(s.SpanID))
	sl.f[2].Store(int64(s.Parent))
	sl.f[3].Store(s.Start)
	sl.f[4].Store(s.Dur)
	sl.f[5].Store(s.Record)
	sl.f[6].Store(int64(s.Worker)<<32 | int64(uint32(s.Shard)))
	sl.f[7].Store(int64(s.NameID)<<32 | int64(uint32(s.Count)))
}

func unpackSlot(f *[8]int64) SpanRec {
	return SpanRec{
		TraceID: uint64(f[0]),
		SpanID:  uint64(f[1]),
		Parent:  uint64(f[2]),
		Start:   f[3],
		Dur:     f[4],
		Record:  f[5],
		Worker:  int32(f[6] >> 32),
		Shard:   int32(uint32(f[6])),
		NameID:  int32(f[7] >> 32),
		Count:   int32(uint32(f[7])),
	}
}

// Emit records s, overwriting the oldest span once the ring is full,
// and funnels it into the tracer's profile collector when one is
// enabled. Producer-only.
func (r *Ring) Emit(s SpanRec) {
	r.emit(s)
	r.t.collect(s, r.idx)
}

// emit is the ring write alone (EmitShared funnels to the collector
// itself, outside the tracer mutex's critical section ordering).
func (r *Ring) emit(s SpanRec) {
	sl := &r.slots[r.pos%len(r.slots)]
	r.pos++
	sl.seq.Add(1) // odd: slot unstable
	packSlot(sl, s)
	sl.seq.Add(1) // even: slot readable
}

// snapshot copies every stable, written slot. Order is slot order,
// not emission order — callers sort by Start.
func (r *Ring) snapshot() []SpanRec {
	var out []SpanRec
	for i := range r.slots {
		sl := &r.slots[i]
		s1 := sl.seq.Load()
		if s1 == 0 || s1&1 == 1 {
			continue // never written, or mid-write
		}
		var f [8]int64
		for j := range sl.f {
			f[j] = sl.f[j].Load()
		}
		if sl.seq.Load() != s1 {
			continue // overwritten while copying
		}
		out = append(out, unpackSlot(&f))
	}
	return out
}
