package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testSpan(t *Tracer, name string, start, dur int64) SpanRec {
	return SpanRec{
		TraceID: t.TraceID(), SpanID: t.NewSpanID(),
		NameID: t.NameID(name), Start: start, Dur: dur,
		Worker: -1, Shard: -1, Record: -1, Count: 0,
	}
}

func TestNameInterning(t *testing.T) {
	tr := New(Config{TraceID: 1})
	a := tr.NameID("decode")
	b := tr.NameID("classify")
	if a == b {
		t.Fatalf("distinct names interned to same ID %d", a)
	}
	if got := tr.NameID("decode"); got != a {
		t.Fatalf("re-interning changed ID: %d != %d", got, a)
	}
	if tr.name(a) != "decode" || tr.name(b) != "classify" {
		t.Fatalf("resolve mismatch: %q %q", tr.name(a), tr.name(b))
	}
	if tr.name(99) != "?" {
		t.Fatalf("unknown ID resolved to %q", tr.name(99))
	}
}

func TestRingOverwriteKeepsLastN(t *testing.T) {
	tr := New(Config{TraceID: 7, RingSize: 8})
	r := tr.Ring(0)
	for i := 0; i < 20; i++ {
		r.Emit(testSpan(tr, "scan", int64(i), 1))
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("ring of 8 holds %d spans", len(spans))
	}
	// the last 8 emissions (starts 12..19) survive
	for i, s := range spans {
		if want := int64(12 + i); s.Start != want {
			t.Fatalf("span %d start = %d, want %d", i, s.Start, want)
		}
		if s.Name != "scan" {
			t.Fatalf("span name %q", s.Name)
		}
	}
}

func TestSampledDeterministicAndKeyedOnIndex(t *testing.T) {
	tr := New(Config{TraceID: 1, SampleEvery: 64})
	var sampled []int64
	for i := int64(0); i < 1000; i++ {
		if tr.Sampled(i) {
			sampled = append(sampled, i)
		}
	}
	for _, i := range sampled {
		if i%64 != 0 {
			t.Fatalf("sampled index %d not a multiple of 64", i)
		}
	}
	if len(sampled) != 16 {
		t.Fatalf("sampled %d of 1000 at every=64, want 16", len(sampled))
	}
	off := New(Config{TraceID: 1})
	for i := int64(0); i < 100; i++ {
		if off.Sampled(i) {
			t.Fatalf("SampleEvery=0 sampled index %d", i)
		}
	}
}

// TestConcurrentEmitAndSnapshot exercises the seqlock under the race
// detector: many producers on their own rings plus shared emitters,
// with concurrent snapshotters. Snapshot must only ever return spans
// that were actually emitted (no torn reads).
func TestConcurrentEmitAndSnapshot(t *testing.T) {
	tr := New(Config{TraceID: 42, RingSize: 16})
	const producers = 4
	nameID := tr.NameID("decode")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := tr.Ring(p)
			for i := 0; i < 5000; i++ {
				// Start and Dur are coupled (Dur = Start + 1) so a torn
				// read is detectable.
				r.Emit(SpanRec{TraceID: 42, SpanID: tr.NewSpanID(), NameID: nameID,
					Start: int64(i), Dur: int64(i) + 1, Worker: int32(p), Shard: -1, Record: int64(i), Count: 1})
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			tr.EmitShared(testSpan(tr, "push.epoch", int64(i), int64(i)+7))
		}
	}()
	var swg sync.WaitGroup
	for s := 0; s < 2; s++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range tr.Snapshot() {
					switch sp.Name {
					case "decode":
						if sp.Dur != sp.Start+1 {
							t.Errorf("torn span: start=%d dur=%d", sp.Start, sp.Dur)
							return
						}
					case "push.epoch":
						if sp.Dur != sp.Start+7 {
							t.Errorf("torn shared span: start=%d dur=%d", sp.Start, sp.Dur)
							return
						}
					default:
						t.Errorf("unknown span name %q", sp.Name)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swg.Wait()
}

func TestProfileBounded(t *testing.T) {
	tr := New(Config{TraceID: 3, MaxProfile: 10})
	r := tr.Ring(0)
	for i := 0; i < 25; i++ {
		r.Emit(testSpan(tr, "scan", int64(i), 1))
	}
	if got := tr.ProfileDropped(); got != 15 {
		t.Fatalf("ProfileDropped = %d, want 15", got)
	}
	prof := tr.TakeProfile()
	if len(prof) != 10 {
		t.Fatalf("profile holds %d spans, want 10", len(prof))
	}
	for i, s := range prof {
		if s.Start != int64(i) {
			t.Fatalf("profile span %d start %d (head-bounded, want %d)", i, s.Start, i)
		}
	}
	if again := tr.TakeProfile(); len(again) != 0 {
		t.Fatalf("second TakeProfile returned %d spans", len(again))
	}
}

func TestChromeExportValidatesAndNests(t *testing.T) {
	tr := New(Config{TraceID: 5, MaxProfile: 100})
	tr.LabelRing(0, "scan/0")
	tr.LabelRing(1, "worker/0")
	r0, r1 := tr.Ring(0), tr.Ring(1)

	scan := testSpan(tr, "scan", 1000, 500)
	r0.Emit(scan)
	qw := testSpan(tr, QueueWaitName, 1500, 400) // overlaps decode on purpose
	r1.Emit(qw)
	dec := testSpan(tr, "decode", 1700, 300)
	dec.Parent = scan.SpanID
	r1.Emit(dec)
	rec := testSpan(tr, "decode.record", 1800, 100)
	rec.Parent = dec.SpanID
	r1.Emit(rec)
	cls := testSpan(tr, "classify", 2100, 200)
	r1.Emit(cls)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, tr.TakeProfile()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("ValidateChrome rejected exporter output: %v\n%s", err, buf.String())
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	s := buf.String()
	for _, want := range []string{`"scan/0"`, `"worker/0"`, `"ph":"b"`, `"ph":"e"`, `"ph":"X"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("export missing %s:\n%s", want, s)
		}
	}
}

func TestValidateChromeRejectsPartialOverlap(t *testing.T) {
	bad := `{"traceEvents":[
		{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
		{"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}
	],"displayTimeUnit":"ms"}`
	if err := ValidateChrome([]byte(bad)); err == nil {
		t.Fatal("partial overlap on one tid accepted")
	}
	if err := ValidateChrome([]byte("not json")); err == nil {
		t.Fatal("non-JSON accepted")
	}
	if err := ValidateChrome([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("empty export accepted")
	}
	// disjoint + properly nested passes
	good := `{"traceEvents":[
		{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
		{"name":"c","ph":"X","ts":2,"dur":3,"pid":1,"tid":1},
		{"name":"b","ph":"X","ts":20,"dur":10,"pid":1,"tid":1}
	],"displayTimeUnit":"ms"}`
	if err := ValidateChrome([]byte(good)); err != nil {
		t.Fatalf("nested+disjoint rejected: %v", err)
	}
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	fl := NewFlight(4)
	tr := New(Config{TraceID: 0xabcd, Flight: fl})
	if tr.Flight() != fl {
		t.Fatal("tracer did not adopt the flight recorder")
	}
	tr.Ring(0).Emit(testSpan(tr, "scan", 10, 5))
	for i := 0; i < 6; i++ {
		fl.Record("WARN", "push retry", A("attempt", i), A("err", "boom"))
	}
	evs := fl.Events()
	if len(evs) != 4 {
		t.Fatalf("flight ring holds %d events, want 4", len(evs))
	}
	if evs[0].Attrs[0].Value != "2" || evs[3].Attrs[0].Value != "5" {
		t.Fatalf("flight ring kept wrong window: %+v", evs)
	}
	var buf bytes.Buffer
	if err := fl.Dump(&buf, "signal"); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+4+1 {
		t.Fatalf("dump has %d lines, want header + 4 events + 1 span:\n%s", len(lines), buf.String())
	}
	var hdr map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("dump header not JSON: %v", err)
	}
	if hdr["kind"] != "flight_recorder" || hdr["reason"] != "signal" {
		t.Fatalf("bad dump header: %v", hdr)
	}
	if hdr["trace"] != "000000000000abcd" {
		t.Fatalf("dump header trace = %v", hdr["trace"])
	}
	for _, ln := range lines[1:] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("dump line not JSON: %v (%s)", err, ln)
		}
	}
	// nil recorder is inert
	var nilFl *Flight
	nilFl.Record("WARN", "ignored")
	if err := nilFl.Dump(&buf, "x"); err != nil {
		t.Fatalf("nil dump errored: %v", err)
	}
}

func TestTracezHandler(t *testing.T) {
	tr := New(Config{TraceID: 0x77})
	tr.LabelRing(0, "worker/0")
	r := tr.Ring(0)
	for i := 0; i < 100; i++ {
		s := testSpan(tr, "classify", int64(i*1000), int64(100+i))
		s.Record = int64(i)
		r.Emit(s)
	}
	h := TracezHandler(tr)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/tracez", nil))
	body := rr.Body.String()
	for _, want := range []string{"trace 0000000000000077", "classify", "slowest spans", "recent spans", "p99"} {
		if !strings.Contains(body, want) {
			t.Fatalf("tracez text missing %q:\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/tracez?format=json", nil))
	var view tracezView
	if err := json.Unmarshal(rr.Body.Bytes(), &view); err != nil {
		t.Fatalf("tracez json: %v", err)
	}
	if view.TraceID != "0000000000000077" || len(view.Stages) != 1 {
		t.Fatalf("bad view: %+v", view)
	}
	st := view.Stages[0]
	if st.Name != "classify" || st.Count == 0 || st.P50ns > st.P99ns || st.P99ns > st.MaxNs {
		t.Fatalf("bad stage row: %+v", st)
	}
	if len(view.Slowest) != tracezSlowest || view.Slowest[0].Dur < view.Slowest[1].Dur {
		t.Fatalf("bad slowest table: %+v", view.Slowest)
	}
	if len(view.Recent) == 0 || view.Recent[0].Start < view.Recent[1].Start {
		t.Fatalf("recent not newest-first: %+v", view.Recent[:2])
	}
}

func TestEmitNoAllocs(t *testing.T) {
	tr := New(Config{TraceID: 9, RingSize: 64})
	r := tr.Ring(0)
	nameID := tr.NameID("decode")
	s := SpanRec{TraceID: 9, NameID: nameID, Worker: 0, Shard: -1, Count: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		s.SpanID = tr.NewSpanID()
		s.Start = time.Now().UnixNano()
		s.Dur = 1
		r.Emit(s)
	})
	if allocs != 0 {
		t.Fatalf("Ring.Emit allocates %.2f per span, want 0", allocs)
	}
}
