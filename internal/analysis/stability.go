package analysis

import (
	"math"
	"sort"

	"tamperdetect/internal/core"
	"tamperdetect/internal/stats"
)

// This file implements the §6 "are tampering signatures stable?"
// analysis as a measurable experiment: split the observation window in
// half and compare each country's signature distribution across the
// halves. Stable censorship infrastructure (the paper's expectation)
// yields high similarity.

// StabilityRow is one country's cross-window comparison.
type StabilityRow struct {
	Country string
	// FirstTotal and SecondTotal count tampered connections per half.
	FirstTotal, SecondTotal int
	// Cosine is the cosine similarity of the two signature-count
	// vectors (1 = identical mix).
	Cosine float64
	// RateDelta is the absolute change in overall tampering rate.
	RateDelta float64
}

// StabilityReport compares signature mixes between the first and second
// halves of the window for countries with at least minPerHalf tampered
// connections in each half, sorted by ascending similarity (least
// stable first).
func StabilityReport(recs []Record, minPerHalf int) []StabilityRow {
	if len(recs) == 0 {
		return nil
	}
	maxHour := 0
	for i := range recs {
		if recs[i].Hour > maxHour {
			maxHour = recs[i].Hour
		}
	}
	split := maxHour / 2

	type acc struct {
		sig   [2][core.NumSignatures]int
		total [2]int
		all   [2]int
	}
	byCountry := map[string]*acc{}
	for i := range recs {
		r := &recs[i]
		if r.Country == "" {
			continue
		}
		half := 0
		if r.Hour > split {
			half = 1
		}
		a := byCountry[r.Country]
		if a == nil {
			a = &acc{}
			byCountry[r.Country] = a
		}
		a.all[half]++
		if r.Res.Signature.IsTampering() {
			a.sig[half][r.Res.Signature]++
			a.total[half]++
		}
	}

	var out []StabilityRow
	for country, a := range byCountry {
		if a.total[0] < minPerHalf || a.total[1] < minPerHalf {
			continue
		}
		row := StabilityRow{
			Country:     country,
			FirstTotal:  a.total[0],
			SecondTotal: a.total[1],
			Cosine:      cosine(a.sig[0][:], a.sig[1][:]),
		}
		r0 := stats.Ratio(a.total[0], a.all[0])
		r1 := stats.Ratio(a.total[1], a.all[1])
		row.RateDelta = math.Abs(r1 - r0)
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cosine != out[j].Cosine {
			return out[i].Cosine < out[j].Cosine
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// cosine computes the cosine similarity of two count vectors.
func cosine(a, b []int) float64 {
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// MeanStability is the report's headline: mean cosine similarity.
func MeanStability(rows []StabilityRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Cosine
	}
	return sum / float64(len(rows))
}
