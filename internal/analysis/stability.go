package analysis

import "math"

// This file implements the §6 "are tampering signatures stable?"
// analysis as a measurable experiment: split the observation window in
// half and compare each country's signature distribution across the
// halves. Stable censorship infrastructure (the paper's expectation)
// yields high similarity.

// StabilityRow is one country's cross-window comparison.
type StabilityRow struct {
	Country string
	// FirstTotal and SecondTotal count tampered connections per half.
	FirstTotal, SecondTotal int
	// Cosine is the cosine similarity of the two signature-count
	// vectors (1 = identical mix).
	Cosine float64
	// RateDelta is the absolute change in overall tampering rate.
	RateDelta float64
}

// StabilityReport compares signature mixes between the first and second
// halves of the window for countries with at least minPerHalf tampered
// connections in each half, sorted by ascending similarity (least
// stable first).
func StabilityReport(recs []Record, minPerHalf int) []StabilityRow {
	a := NewStabilityAgg(minPerHalf)
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Report()
}

// cosine computes the cosine similarity of two count vectors.
func cosine(a, b []int) float64 {
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// MeanStability is the report's headline: mean cosine similarity.
func MeanStability(rows []StabilityRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Cosine
	}
	return sum / float64(len(rows))
}
