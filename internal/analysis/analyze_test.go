package analysis

import (
	"strings"
	"sync"
	"testing"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/testlists"
	"tamperdetect/internal/workload"
)

// sharedDataset runs one moderate scenario for all analysis tests.
var (
	dsOnce  sync.Once
	dsConns []*capture.Connection
	dsRecs  []Record
	dsScen  *workload.Scenario
)

func dataset(t *testing.T) ([]*capture.Connection, []Record, *workload.Scenario) {
	t.Helper()
	dsOnce.Do(func() {
		s, err := workload.BuildScenario("analysis-test", 24000, 48, 99)
		if err != nil {
			t.Fatalf("BuildScenario: %v", err)
		}
		dsScen = s
		dsConns = s.Run(0)
		dsRecs = Analyze(dsConns, s.Geo, core.NewClassifier(core.DefaultConfig()), 0)
	})
	if dsScen == nil {
		t.Fatal("dataset initialization failed")
	}
	return dsConns, dsRecs, dsScen
}

func TestAnalyzeAttachesGeo(t *testing.T) {
	_, recs, _ := dataset(t)
	withCountry := 0
	for i := range recs {
		if recs[i].Country != "" {
			withCountry++
		}
	}
	if withCountry < len(recs)*99/100 {
		t.Errorf("only %d/%d records geolocated", withCountry, len(recs))
	}
}

func TestStageStatsShape(t *testing.T) {
	_, recs, _ := dataset(t)
	s := ComputeStageStats(recs)
	pt := s.PossiblyTamperedShare()
	if pt < 0.05 || pt > 0.6 {
		t.Errorf("possibly tampered share = %.3f, outside plausible band", pt)
	}
	cov := s.SignatureCoverage()
	if cov < 0.7 || cov > 1.0 {
		t.Errorf("signature coverage = %.3f, want high (paper 86.9%%)", cov)
	}
	// Every canonical stage must be represented.
	for _, st := range []core.Stage{core.StagePostSYN, core.StagePostACK, core.StagePostPSH} {
		if s.StageCounts[st] == 0 {
			t.Errorf("stage %v empty", st)
		}
		if c := s.StageCoverage(st); c < 0.85 {
			t.Errorf("stage %v coverage %.3f, want near-complete", st, c)
		}
	}
	// Post-Data coverage is structurally lower (timeouts uncovered).
	if s.StageCounts[core.StagePostData] > 0 {
		if c := s.StageCoverage(core.StagePostData); c > 0.995 {
			t.Logf("note: Post-Data coverage %.3f (paper 69.2%%)", c)
		}
	}
}

func TestSignatureByCountryOrdering(t *testing.T) {
	_, recs, _ := dataset(t)
	ds := SignatureByCountry(recs)
	if len(ds) < 30 {
		t.Fatalf("only %d countries", len(ds))
	}
	pos := map[string]int{}
	share := map[string]float64{}
	for i, d := range ds {
		pos[d.Country] = i
		share[d.Country] = d.TamperedShare()
	}
	// The paper's extremes: TM at the top, US/DE near the bottom.
	if share["TM"] < 0.5 {
		t.Errorf("TM tampered share = %.3f, want very high (paper 84%%)", share["TM"])
	}
	if pos["TM"] > 3 {
		t.Errorf("TM ranked %d, want top", pos["TM"])
	}
	// US/DE sit near the bottom but are not near zero: benign RST
	// closes and enterprise firewalls give every country a baseline of
	// Post-Data matches (paper §5.1, Figure 4).
	if share["US"] > 0.25 || share["DE"] > 0.25 {
		t.Errorf("US/DE shares = %.3f/%.3f, want low", share["US"], share["DE"])
	}
	if share["TM"] <= share["CN"] || share["CN"] <= share["US"] {
		t.Errorf("ordering TM(%.2f) > CN(%.2f) > US(%.2f) broken",
			share["TM"], share["CN"], share["US"])
	}
	// TM's dominant signature is ⟨SYN;ACK → RST⟩ (paper: 66.4% of its
	// tampered connections).
	var tm *CountryDistribution
	for i := range ds {
		if ds[i].Country == "TM" {
			tm = &ds[i]
		}
	}
	if tm.BySignature[core.SigACKRST] == 0 {
		t.Error("TM has no SYN;ACK→RST matches")
	}
}

func TestCountryBySignatureConcentration(t *testing.T) {
	_, recs, _ := dataset(t)
	comps := CountryBySignature(recs)
	bySig := map[core.Signature]*SignatureComposition{}
	for i := range comps {
		bySig[comps[i].Signature] = &comps[i]
	}
	// GFW burst signatures come overwhelmingly from CN.
	for _, sig := range []core.Signature{core.SigPSHRSTACKRSTACK, core.SigPSHRSTRSTZero} {
		sc := bySig[sig]
		if sc.Total == 0 {
			t.Errorf("%v: no matches", sig)
			continue
		}
		if sc.Share("CN") < 0.5 {
			t.Errorf("%v: CN share %.2f, want dominant", sig, sc.Share("CN"))
		}
	}
	// The KR ack-guesser dominates RST≠RST.
	if sc := bySig[core.SigPSHRSTNeqRST]; sc.Total > 0 && sc.Share("KR") < 0.4 {
		t.Errorf("RST≠RST: KR share %.2f, want dominant", sc.Share("KR"))
	}
	// Enterprise-firewall signatures spread across many countries.
	if sc := bySig[core.SigDataRSTACK]; sc.Total > 0 && len(sc.ByCountry) < 5 {
		t.Errorf("PSH;Data→RST+ACK seen in only %d countries", len(sc.ByCountry))
	}
}

func TestASNViewCentralizedVsDecentralized(t *testing.T) {
	_, recs, _ := dataset(t)
	cn := ASNView(recs, "CN")
	ru := ASNView(recs, "RU")
	if len(cn) == 0 || len(ru) == 0 {
		t.Fatal("empty AS views")
	}
	spreadCN := SpreadOfASNView(cn)
	spreadRU := SpreadOfASNView(ru)
	if spreadRU <= spreadCN {
		t.Errorf("RU spread %.3f ≤ CN spread %.3f; decentralization contrast missing", spreadRU, spreadCN)
	}
	if v := ASNView(recs, "ZZ"); v != nil {
		t.Error("unknown country returned a view")
	}
}

func TestTimeSeriesDiurnal(t *testing.T) {
	_, recs, _ := dataset(t)
	series := TimeSeries(recs, 1,
		func(r *Record) bool { return r.Country == "IR" },
		PostACKPSHMatch)
	if len(series) < 24 {
		t.Fatalf("only %d hourly buckets", len(series))
	}
	// IR local night (TZ+4): aggregate counts across the window rather
	// than per-bucket shares (per-bucket volumes are small at test
	// scale).
	var nightM, nightT, dayM, dayT int
	for _, p := range series {
		local := (p.Hour + 4) % 24
		if local < 8 {
			nightM += p.Matched
			nightT += p.Total
		} else if local >= 10 && local < 22 {
			dayM += p.Matched
			dayT += p.Total
		}
	}
	if nightT == 0 || dayT == 0 {
		t.Fatal("series buckets missing")
	}
	nm := float64(nightM) / float64(nightT)
	dm := float64(dayM) / float64(dayT)
	if nm <= dm {
		t.Errorf("IR night share %.3f ≤ day %.3f; diurnal pattern missing", nm, dm)
	}
}

func TestIPVersionCompare(t *testing.T) {
	_, recs, _ := dataset(t)
	rows, slope := IPVersionCompare(recs, 30)
	if len(rows) < 5 {
		t.Fatalf("only %d countries with dual-stack volume", len(rows))
	}
	// Tampering applies to both families: slope near 1 (paper 0.92).
	if slope < 0.6 || slope > 1.4 {
		t.Errorf("v6-on-v4 slope = %.2f, want ≈1", slope)
	}
}

func TestProtocolCompare(t *testing.T) {
	_, recs, _ := dataset(t)
	rows, slope := ProtocolCompare(recs, 20)
	if len(rows) < 5 {
		t.Fatalf("only %d countries", len(rows))
	}
	// TLS is generally more tampered than HTTP: slope below 1.
	if slope >= 1.0 {
		t.Errorf("HTTP-on-TLS slope = %.2f, want < 1 (paper 0.3)", slope)
	}
	// Turkmenistan is the inversion: HTTP ≫ TLS.
	for _, r := range rows {
		if r.Country == "TM" {
			if r.HTTPShare() <= r.TLSShare() {
				t.Errorf("TM HTTP %.2f ≤ TLS %.2f; Figure 7b outlier missing", r.HTTPShare(), r.TLSShare())
			}
		}
	}
}

func TestEvidenceCDFSeparation(t *testing.T) {
	_, recs, _ := dataset(t)
	cdfs := ComputeEvidenceCDFs(recs, 1000)
	base := cdfs.IPID[core.SigNotTampering]
	if base == nil || base.Len() == 0 {
		t.Fatal("no baseline CDF")
	}
	// Baseline: overwhelmingly small deltas (paper: >95% ≤ 1).
	if p := base.At(2); p < 0.9 {
		t.Errorf("baseline P(ipid delta ≤ 2) = %.2f, want ≥0.9", p)
	}
	// Injection signatures: a large mass beyond 100.
	for _, sig := range []core.Signature{core.SigPSHRST, core.SigPSHRSTACKRSTACK} {
		c := cdfs.IPID[sig]
		if c == nil || c.Len() < 20 {
			t.Errorf("%v: too few IPv4 samples", sig)
			continue
		}
		if big := 1 - c.At(100); big < 0.4 {
			t.Errorf("%v: only %.2f of connections show ipid delta > 100 (paper: 40-100%%)", sig, big)
		}
	}
	// TTL: the KR random-TTL signature shows wide deltas.
	if c := cdfs.TTL[core.SigPSHRSTNeqRST]; c != nil && c.Len() > 10 {
		if 1-c.At(10) < 0.5 {
			t.Errorf("RST≠RST TTL deltas too small for a random-TTL injector")
		}
	}
}

func TestCategoryTableGlobalAndRegions(t *testing.T) {
	_, recs, sc := dataset(t)
	global := ComputeCategoryTable(recs, sc.Universe, "", 2)
	if global.TamperedTotal == 0 || len(global.Rows) < 3 {
		t.Fatalf("global category table empty: %+v", global)
	}
	cn := ComputeCategoryTable(recs, sc.Universe, "CN", 2)
	if len(cn.Rows) == 0 {
		t.Fatal("CN category table empty")
	}
	// CN's top category is Adult Themes with high coverage (Table 2:
	// 17.96% of tampered, 50.99% coverage).
	top := cn.Rows[0]
	if top.Category != domains.AdultThemes {
		t.Errorf("CN top category = %v, want Adult Themes", top.Category)
	}
	if top.Coverage < 0.2 {
		t.Errorf("CN adult coverage = %.2f, want high", top.Coverage)
	}
	// US coverage values are tiny (Table 2: ≤0.6%).
	us := ComputeCategoryTable(recs, sc.Universe, "US", 2)
	for _, row := range us.Top(3) {
		if row.Coverage > 0.2 {
			t.Errorf("US %v coverage %.3f, want ≪1", row.Category, row.Coverage)
		}
	}
	// The separation the paper highlights: CN blocks broad swathes of
	// a category; US tampering is concentrated on few domains.
	if cn.Rows[0].Coverage <= us.Rows[0].Coverage {
		t.Errorf("CN top coverage %.3f ≤ US top coverage %.3f; separation lost",
			cn.Rows[0].Coverage, us.Rows[0].Coverage)
	}
}

func TestListCoverageTable(t *testing.T) {
	_, recs, sc := dataset(t)
	sensitive := func(d *domains.Domain) bool {
		switch d.Category {
		case domains.AdultThemes, domains.News, domains.SocialNetworks, domains.Chat:
			return true
		}
		return false
	}
	suite := testlists.BuildSuite(sc.Universe, sensitive, testlists.DefaultBuildConfig())
	regions := []string{"", "CN", "IN", "RU"}
	rows := ListCoverageTable(recs, suite, regions, 2)
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 12 lists + 4 union/substring", len(rows))
	}
	byName := map[string]ListCoverageRow{}
	for _, r := range rows {
		byName[r.ListName] = r
	}
	// The full Tranco tier covers everything; small tiers and curated
	// lists must not (the paper's central §5.5 finding).
	if got := byName["Tranco_1M"].Exact["CN"]; got < 0.99 {
		t.Errorf("Tranco_1M CN coverage = %.2f, want ≈1", got)
	}
	curated := byName["Union: Citizenlab + Greatfire"]
	if curated.Exact["CN"] > 0.8 {
		t.Errorf("curated lists cover %.2f of CN tampered domains; should miss many", curated.Exact["CN"])
	}
	// Substring matching can only increase coverage.
	sub := byName["Substring: Citizenlab + Greatfire"]
	for _, reg := range regions {
		if sub.Substring[reg]+1e-9 < curated.Exact[reg] {
			t.Errorf("%s: substring %.2f < exact %.2f", reg, sub.Substring[reg], curated.Exact[reg])
		}
	}
	// Bigger Tranco tiers dominate smaller ones.
	if byName["Tranco_1K"].Exact[""] > byName["Tranco_100K"].Exact[""] {
		t.Error("Tranco tier ordering inverted")
	}
}

func TestOverlapMatrixDiagonal(t *testing.T) {
	_, recs, _ := dataset(t)
	m := ComputeOverlapMatrix(recs)
	if m.Pairs < 50 {
		t.Skipf("only %d repeat pairs in dataset", m.Pairs)
	}
	if d := m.DiagonalMass(); d < 0.5 {
		t.Errorf("mean diagonal mass = %.2f, want dominant (Figure 10)", d)
	}
}

func TestScannerStats(t *testing.T) {
	conns, recs, _ := dataset(t)
	s := ComputeScannerStats(recs, conns)
	if s.Total == 0 || s.SYNRSTMatches == 0 {
		t.Fatalf("stats empty: %+v", s)
	}
	zmapShare := float64(s.SYNRSTZMap) / float64(s.SYNRSTMatches)
	if zmapShare <= 0 || zmapShare > 0.6 {
		t.Errorf("ZMap share of SYN→RST = %.2f, want small but nonzero", zmapShare)
	}
	if s.Port80SYNs == 0 || s.SYNPayload80 == 0 {
		t.Error("no SYN-payload traffic on port 80")
	}
	if s.HighTTL == 0 {
		t.Error("no high-TTL scanners")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	conns, recs, sc := dataset(t)
	if out := RenderStageStats(ComputeStageStats(recs)); !strings.Contains(out, "Possibly tampered") {
		t.Error("stage stats render empty")
	}
	if out := RenderCountryDistribution(SignatureByCountry(recs), 10); !strings.Contains(out, "TM") {
		t.Error("country distribution render missing TM")
	}
	if out := RenderSignatureComposition(CountryBySignature(recs)); len(out) < 100 {
		t.Error("signature composition render too short")
	}
	if out := RenderASNView("RU", ASNView(recs, "RU")); !strings.Contains(out, "AS") {
		t.Error("ASN view render empty")
	}
	series := TimeSeries(recs, 4, nil, AnySignatureMatch)
	if out := RenderTimeSeries("global", series); len(out) < 50 {
		t.Error("time series render too short")
	}
	rows, slope := IPVersionCompare(recs, 30)
	if out := RenderVersionComparison(rows, slope); !strings.Contains(out, "slope") {
		t.Error("version comparison render missing slope")
	}
	prows, pslope := ProtocolCompare(recs, 20)
	if out := RenderProtocolComparison(prows, pslope); !strings.Contains(out, "slope") {
		t.Error("protocol comparison render missing slope")
	}
	if out := RenderCategoryTable(ComputeCategoryTable(recs, sc.Universe, "", 2), 3); len(out) < 20 {
		t.Error("category table render too short")
	}
	cdfs := ComputeEvidenceCDFs(recs, 500)
	if out := RenderEvidenceCDF("ipid", cdfs.IPID, []float64{1, 100, 1000}); len(out) < 50 {
		t.Error("evidence CDF render too short")
	}
	if out := RenderOverlapMatrix(ComputeOverlapMatrix(recs)); len(out) < 50 {
		t.Error("overlap matrix render too short")
	}
	if out := RenderScannerStats(ComputeScannerStats(recs, conns)); !strings.Contains(out, "ZMap") {
		t.Error("scanner stats render missing ZMap")
	}
}

func TestStabilityReport(t *testing.T) {
	_, recs, _ := dataset(t)
	rows := StabilityReport(recs, 20)
	if len(rows) < 5 {
		t.Fatalf("only %d countries with enough volume", len(rows))
	}
	// Censor deployments are static within a scenario: signature mixes
	// must be highly consistent across the halves (§6's stability).
	if m := MeanStability(rows); m < 0.85 {
		t.Errorf("mean cross-half cosine similarity = %.3f, want high", m)
	}
	for _, r := range rows {
		if r.Cosine < 0 || r.Cosine > 1.0000001 {
			t.Errorf("%s: cosine %.3f out of range", r.Country, r.Cosine)
		}
	}
}

func TestStabilityEmpty(t *testing.T) {
	if rows := StabilityReport(nil, 1); rows != nil {
		t.Error("empty input produced rows")
	}
	if MeanStability(nil) != 0 {
		t.Error("empty mean != 0")
	}
}

func TestIPVersionDisparities(t *testing.T) {
	// Figure 7a's named disparities: LK tampers IPv4 ≫ IPv6, KE the
	// reverse, while the global slope stays near 1.
	_, recs, _ := dataset(t)
	rows, _ := IPVersionCompare(recs, 10)
	found := map[string]bool{}
	for _, r := range rows {
		switch r.Country {
		case "LK":
			found["LK"] = true
			if r.V4Share() <= r.V6Share() {
				t.Errorf("LK v4 %.3f ≤ v6 %.3f, want v4 ≫ v6", r.V4Share(), r.V6Share())
			}
		case "KE":
			found["KE"] = true
			if r.V6Share() <= r.V4Share() {
				t.Errorf("KE v6 %.3f ≤ v4 %.3f, want v6 ≫ v4", r.V6Share(), r.V4Share())
			}
		}
	}
	if !found["LK"] || !found["KE"] {
		t.Errorf("LK/KE rows missing from comparison: %v", found)
	}
}
