package analysis

import (
	"fmt"
	"sort"
	"strings"

	"tamperdetect/internal/core"
	"tamperdetect/internal/stats"
)

// This file renders the aggregations as the text tables and series the
// cmd/paperbench tool prints — one renderer per paper table/figure.

// RenderStageStats prints the §4.1 narrative numbers.
func RenderStageStats(s StageStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Connections analyzed:              %d\n", s.Total)
	fmt.Fprintf(&b, "Possibly tampered:                 %.1f%% (paper: 25.7%%)\n", stats.Percent(s.PossiblyTamperedShare()))
	fmt.Fprintf(&b, "Signature coverage of those:       %.1f%% (paper: 86.9%%)\n", stats.Percent(s.SignatureCoverage()))
	rows := []struct {
		st    core.Stage
		paper string
	}{
		{core.StagePostSYN, "43.2% share, 99.5% matched"},
		{core.StagePostACK, "16.1% share, 98.7% matched"},
		{core.StagePostPSH, "5.3% share, 97.9% matched"},
		{core.StagePostData, "33.0% share, 69.2% matched"},
		{core.StageOther, "2.3% share"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %6.1f%% of possibly-tampered, %6.1f%% matched   (paper: %s)\n",
			r.st, stats.Percent(s.StageShare(r.st)), stats.Percent(s.StageCoverage(r.st)), r.paper)
	}
	return b.String()
}

// RenderCountryDistribution prints Figure 4 rows.
func RenderCountryDistribution(ds []CountryDistribution, maxCountries int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s  top signatures\n", "country", "conns", "tampered%")
	for i, d := range ds {
		if maxCountries > 0 && i >= maxCountries {
			break
		}
		type kv struct {
			sig core.Signature
			n   int
		}
		var kvs []kv
		for _, sig := range core.AllSignatures() {
			if d.BySignature[sig] > 0 {
				kvs = append(kvs, kv{sig, d.BySignature[sig]})
			}
		}
		sort.Slice(kvs, func(i, j int) bool { return kvs[i].n > kvs[j].n })
		var tops []string
		for j, kv := range kvs {
			if j >= 3 {
				break
			}
			tops = append(tops, fmt.Sprintf("%s %.1f%%", kv.sig, stats.Percent(stats.Ratio(kv.n, d.Total))))
		}
		fmt.Fprintf(&b, "%-8s %10d %9.1f%%  %s\n", d.Country, d.Total,
			stats.Percent(d.TamperedShare()), strings.Join(tops, "; "))
	}
	return b.String()
}

// RenderSignatureComposition prints Figure 1 columns.
func RenderSignatureComposition(scs []SignatureComposition) string {
	var b strings.Builder
	for _, sc := range scs {
		if sc.Total == 0 {
			continue
		}
		var tops []string
		for _, c := range sc.TopCountries(5) {
			tops = append(tops, fmt.Sprintf("%s %.0f%%", c, stats.Percent(sc.Share(c))))
		}
		fmt.Fprintf(&b, "%-28s %8d matches: %s\n", sc.Signature, sc.Total, strings.Join(tops, ", "))
	}
	return b.String()
}

// RenderASNView prints a Figure 5 column for one country.
func RenderASNView(country string, view []ASNStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (top-80%% ASes: %d; match-share spread %.1f pp)\n",
		country, len(view), 100*SpreadOfASNView(view))
	for _, a := range view {
		fmt.Fprintf(&b, "  AS%-6d %5.1f%% of traffic, %5.1f%% matching\n",
			a.ASN, 100*a.CountryShare, 100*a.MatchShare())
	}
	return b.String()
}

// RenderTimeSeries prints a longitudinal series with a coarse sparkline.
func RenderTimeSeries(name string, series []SeriesPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", name)
	for _, p := range series {
		share := p.Share()
		bar := strings.Repeat("#", int(share*60+0.5))
		fmt.Fprintf(&b, "  h%04d %6.1f%% %s\n", p.Hour, stats.Percent(share), bar)
	}
	return b.String()
}

// RenderVersionComparison prints Figure 7a.
func RenderVersionComparison(rows []VersionComparison, slope float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %9s\n", "country", "IPv4%", "IPv6%")
	for _, v := range rows {
		fmt.Fprintf(&b, "%-8s %8.1f%% %8.1f%%\n", v.Country,
			stats.Percent(v.V4Share()), stats.Percent(v.V6Share()))
	}
	fmt.Fprintf(&b, "regression slope (v6 on v4): %.2f (paper: 0.92)\n", slope)
	return b.String()
}

// RenderProtocolComparison prints Figure 7b.
func RenderProtocolComparison(rows []ProtocolComparison, slope float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %9s\n", "country", "TLS%", "HTTP%")
	for _, p := range rows {
		fmt.Fprintf(&b, "%-8s %8.1f%% %8.1f%%\n", p.Country,
			stats.Percent(p.TLSShare()), stats.Percent(p.HTTPShare()))
	}
	fmt.Fprintf(&b, "regression slope (HTTP on TLS): %.2f (paper: 0.3)\n", slope)
	return b.String()
}

// RenderCategoryTable prints Table 2 for one region.
func RenderCategoryTable(t CategoryTable, topN int) string {
	var b strings.Builder
	region := t.Region
	if region == "" {
		region = "Global"
	}
	fmt.Fprintf(&b, "%s (tampered Post-PSH connections with visible domain: %d)\n", region, t.TamperedTotal)
	for _, row := range t.Top(topN) {
		fmt.Fprintf(&b, "  %-20s %6.2f%% of tampered conns, %6.2f%% category coverage\n",
			row.Category, stats.Percent(row.TamperedShare), stats.Percent(row.Coverage))
	}
	return b.String()
}

// RenderListCoverage prints Table 3.
func RenderListCoverage(rows []ListCoverageRow, regions []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %8s", "list", "entries")
	for _, r := range regions {
		name := r
		if name == "" {
			name = "Global"
		}
		fmt.Fprintf(&b, " %8s", name)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%-36s %8d", row.ListName, row.Entries)
		sub := strings.HasPrefix(row.ListName, "Substring")
		for _, r := range regions {
			v := row.Exact[r]
			if sub {
				v = row.Substring[r]
			}
			fmt.Fprintf(&b, " %7.1f%%", stats.Percent(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderEvidenceCDF prints Figure 2 or 3 as quantile rows per signature.
func RenderEvidenceCDF(name string, cdfs map[core.Signature]*stats.CDF, thresholds []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: P(delta ≤ t)\n%-28s", name, "signature")
	for _, t := range thresholds {
		fmt.Fprintf(&b, " t=%-6.0f", t)
	}
	b.WriteByte('\n')
	sigs := make([]core.Signature, 0, len(cdfs))
	for s := range cdfs {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	for _, s := range sigs {
		c := cdfs[s]
		if c.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-28s", s)
		for _, t := range thresholds {
			fmt.Fprintf(&b, " %7.2f ", c.At(t))
		}
		fmt.Fprintf(&b, " (n=%d)\n", c.Len())
	}
	return b.String()
}

// RenderOverlapMatrix prints Figure 10.
func RenderOverlapMatrix(m OverlapMatrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "IP-domain pair consistency (%d transitions; mean diagonal %.2f)\n", m.Pairs, m.DiagonalMass())
	fmt.Fprintf(&b, "%-26s", "first \\ next")
	for _, s := range m.Sigs {
		fmt.Fprintf(&b, " %6.6s", shortSig(s))
	}
	b.WriteByte('\n')
	for i, s := range m.Sigs {
		fmt.Fprintf(&b, "%-26s", s)
		for j := range m.Sigs {
			fmt.Fprintf(&b, " %6.2f", m.Fraction[i][j])
		}
		b.WriteByte('\n')
		_ = s
	}
	return b.String()
}

func shortSig(s core.Signature) string {
	str := s.String()
	str = strings.ReplaceAll(str, "PSH → ", "")
	str = strings.ReplaceAll(str, "Not Tampering", "none")
	return str
}

// RenderScannerStats prints the §4.2 validation numbers.
func RenderScannerStats(s ScannerStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Connections:                     %d\n", s.Total)
	fmt.Fprintf(&b, "SYN TTL ≥ 200:                   %.2f%% (paper: ≈0.05%%)\n", stats.Percent(stats.Ratio(s.HighTTL, s.Total)))
	fmt.Fprintf(&b, "SYN without TCP options:         %.2f%% (paper: ≈0%%)\n", stats.Percent(stats.Ratio(s.NoSYNOptions, s.Total)))
	fmt.Fprintf(&b, "⟨SYN → RST⟩ matches:             %d\n", s.SYNRSTMatches)
	fmt.Fprintf(&b, "  attributable to ZMap:          %.1f%% (paper: ≈1%%)\n", stats.Percent(stats.Ratio(s.SYNRSTZMap, s.SYNRSTMatches)))
	fmt.Fprintf(&b, "port-80 SYNs with payload:       %.1f%% overall; peak day %d at %.1f%% (paper: 38%% on one day)\n",
		stats.Percent(stats.Ratio(s.SYNPayload80, s.Port80SYNs)), s.PeakDay, stats.Percent(s.PeakDayShare))
	fmt.Fprintf(&b, "port-443 SYNs with payload:      %.2f%% (paper: 0.02%%)\n", stats.Percent(stats.Ratio(s.SYNPayload443, s.Port443SYNs)))
	return b.String()
}

// RenderStability prints the §6 stability experiment.
func RenderStability(rows []StabilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-half signature-mix similarity (mean %.3f)\n", MeanStability(rows))
	fmt.Fprintf(&b, "%-8s %10s %10s %8s %10s\n", "country", "half1", "half2", "cosine", "rate-delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10d %10d %8.3f %9.1fpp\n",
			r.Country, r.FirstTotal, r.SecondTotal, r.Cosine, 100*r.RateDelta)
	}
	return b.String()
}
