package analysis

// Codec suite: the snapshot wire format must carry the merge algebra
// exactly — Restore(snapshot(x)) behaves as Merge(x), encoding is
// byte-deterministic regardless of insertion order, and decoding
// rejects truncation, parameter drift, and type confusion without
// ever panicking.

import (
	"bytes"
	"testing"
)

// snapshotOf encodes a or fails the test.
func snapshotOf(t testing.TB, a Aggregator) []byte {
	t.Helper()
	b, err := AppendSnapshot(nil, a)
	if err != nil {
		t.Fatalf("AppendSnapshot: %v", err)
	}
	return b
}

// TestSnapshotRoundTripParity feeds the full dataset into the complete
// paper aggregator surface, ships it through the codec, and requires
// the restored render to be byte-identical — and the re-encoded bytes
// to match, proving the state (not just the render) survived exactly.
func TestSnapshotRoundTripParity(t *testing.T) {
	_, recs, scen := dataset(t)
	src := parityAggs()
	for i := range recs {
		src.Add(&recs[i])
	}
	want := renderAggs(src, scen)
	frame := snapshotOf(t, src)

	restored := parityAggs()
	if err := RestoreSnapshot(frame, restored); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if got := renderAggs(restored, scen); got != want {
		t.Errorf("restored render diverges at %s", firstDiff(got, want))
	}
	if re := snapshotOf(t, restored); !bytes.Equal(re, frame) {
		t.Errorf("re-encoded snapshot differs: %d vs %d bytes", len(re), len(frame))
	}
}

// TestSnapshotRestoreIsMerge checks the codec's defining property:
// restoring a snapshot into a non-empty aggregator folds state in
// exactly as Merge would.
func TestSnapshotRestoreIsMerge(t *testing.T) {
	_, recs, scen := dataset(t)
	half := len(recs) / 2

	all := parityAggs()
	for i := range recs {
		all.Add(&recs[i])
	}
	want := renderAggs(all, scen)

	first, second := parityAggs(), parityAggs()
	for i := range recs[:half] {
		first.Add(&recs[i])
	}
	for i := half; i < len(recs); i++ {
		second.Add(&recs[i])
	}
	if err := RestoreSnapshot(snapshotOf(t, second), first); err != nil {
		t.Fatalf("RestoreSnapshot into non-empty: %v", err)
	}
	if got := renderAggs(first, scen); got != want {
		t.Errorf("restore-as-merge render diverges at %s", firstDiff(got, want))
	}
}

// TestSnapshotEncodingOrderInsensitive builds the same state in
// forward and reverse record order and requires identical bytes —
// sorted-key encoding makes the frame a pure function of the state.
func TestSnapshotEncodingOrderInsensitive(t *testing.T) {
	_, recs, _ := dataset(t)
	fwd, rev := parityAggs(), parityAggs()
	for i := range recs {
		fwd.Add(&recs[i])
	}
	for i := len(recs) - 1; i >= 0; i-- {
		rev.Add(&recs[i])
	}
	if !bytes.Equal(snapshotOf(t, fwd), snapshotOf(t, rev)) {
		t.Error("snapshot bytes depend on insertion order")
	}
}

// TestSnapshotRobustnessAgg round-trips the one aggregator outside the
// parity set, including its grade/loss parameter checks.
func TestSnapshotRobustnessAgg(t *testing.T) {
	_, recs, _ := dataset(t)
	src := NewRobustnessAgg("lossy", 0.02)
	for i := range recs[:500] {
		src.Add(&recs[i])
	}
	frame := snapshotOf(t, src)

	dst := NewRobustnessAgg("lossy", 0.02)
	if err := RestoreSnapshot(frame, dst); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if !bytes.Equal(snapshotOf(t, dst), frame) {
		t.Error("robustness round trip not exact")
	}
	if err := RestoreSnapshot(frame, NewRobustnessAgg("hostile", 0.02)); err == nil {
		t.Error("grade mismatch accepted")
	}
	if err := RestoreSnapshot(frame, NewRobustnessAgg("lossy", 0.5)); err == nil {
		t.Error("effectiveLoss mismatch accepted")
	}
}

// TestSnapshotParameterMismatch: construction parameters are part of
// the Merge compatibility contract and must be enforced on restore.
func TestSnapshotParameterMismatch(t *testing.T) {
	_, recs, _ := dataset(t)
	cases := []struct {
		name     string
		src, dst Aggregator
	}{
		{"bucketHours", NewTimeSeriesAgg(4, nil, AnySignatureMatch), NewTimeSeriesAgg(8, nil, AnySignatureMatch)},
		{"minPerVersion", NewIPVersionAgg(50), NewIPVersionAgg(10)},
		{"minPerProto", NewProtocolAgg(30), NewProtocolAgg(10)},
		{"capPerSig", NewEvidenceAgg(1000), NewEvidenceAgg(100)},
		{"minPerHalf", NewStabilityAgg(30), NewStabilityAgg(10)},
		{"type", NewStageStatsAgg(), NewScannerAgg()},
		{"multiLen", Multi{NewStageStatsAgg(), NewScannerAgg()}, Multi{NewStageStatsAgg()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := range recs[:200] {
				tc.src.Add(&recs[i])
			}
			if err := RestoreSnapshot(snapshotOf(t, tc.src), tc.dst); err == nil {
				t.Errorf("%s mismatch accepted", tc.name)
			}
		})
	}
}

// TestSnapshotTruncation cuts a small frame at every byte boundary; no
// prefix may decode cleanly or panic.
func TestSnapshotTruncation(t *testing.T) {
	_, recs, _ := dataset(t)
	src := Multi{NewStageStatsAgg(), NewSignatureByCountryAgg(), NewScannerAgg()}
	for i := range recs[:50] {
		src.Add(&recs[i])
	}
	frame := snapshotOf(t, src)
	for cut := 0; cut < len(frame); cut++ {
		dst := Multi{NewStageStatsAgg(), NewSignatureByCountryAgg(), NewScannerAgg()}
		if err := RestoreSnapshot(frame[:cut], dst); err == nil {
			t.Fatalf("cut=%d: truncated snapshot decoded cleanly", cut)
		}
	}
	// Trailing garbage after a complete frame is rejected too.
	dst := Multi{NewStageStatsAgg(), NewSignatureByCountryAgg(), NewScannerAgg()}
	if err := RestoreSnapshot(append(append([]byte(nil), frame...), 0xFF), dst); err == nil {
		t.Error("trailing byte accepted")
	}
}

// FuzzSnapshotCodec feeds arbitrary bytes to RestoreSnapshot: decoding
// untrusted input must return an error or a state that re-encodes —
// never panic, hang, or over-allocate. Seeded with a valid frame.
func FuzzSnapshotCodec(f *testing.F) {
	src := parityAggs()
	rec := Record{}
	src.Add(&rec)
	if seed, err := AppendSnapshot(nil, src); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(tagMulti), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		dst := parityAggs()
		if err := RestoreSnapshot(data, dst); err != nil {
			return
		}
		if _, err := AppendSnapshot(nil, dst); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
	})
}
