package analysis

// Snapshot wire codec: every Aggregator serializes its internal state
// to a compact binary form and restores by *folding the decoded state
// into the receiver*, exactly as Merge folds another aggregator in.
// This is what carries the merge algebra over the wire: a PoP encodes
// its per-epoch aggregate, ships the bytes, and the merger restores
// them into the global aggregate — Restore(snapshot(x)) ≡ Merge(x),
// so associativity, commutativity, and multiset determinism transfer
// unchanged to the distributed rollup.
//
// Restoring is strict and bounded for untrusted input (see
// internal/wire): every count is validated against the bytes actually
// remaining, every enum index against its range, and construction
// parameters (bucket widths, thresholds, grade labels) must match the
// receiver's — the same compatibility contract Merge enforces.
// Aggregators carrying function-valued parameters (TimeSeriesAgg's
// predicates) serialize only their counts; the receiver keeps its own
// predicates, which is why restoring always targets an
// identically-constructed prototype.
//
// Encoding visits maps in sorted key order, so the same aggregator
// state always yields the same bytes (handy for tests and content
// hashing); decoding never depends on entry order.

import (
	"fmt"
	"sort"

	"tamperdetect/internal/core"
	"tamperdetect/internal/stats"
	"tamperdetect/internal/wire"
)

// Type tags, one per concrete Aggregator. Part of the wire format:
// never renumber, only append.
const (
	tagStageStats = iota + 1
	tagSignatureByCountry
	tagCountryBySignature
	tagASNView
	tagTimeSeries
	tagIPVersion
	tagProtocol
	tagEvidence
	tagScanner
	tagDomain
	tagOverlap
	tagStability
	tagRobustness
	tagMulti
	tagTimeSpan
)

// Typed enum sizes as plain ints, for array loops and Len bounds.
const (
	numSigs   = int(core.NumSignatures)
	numStages = int(core.NumStages)
)

// Decode-side hard caps. Real limits come from wire.Decoder's
// remaining-input checks; these bound the worst case a maliciously
// large (but well-formed) frame could demand per collection.
const (
	maxSnapshotEntries = 1 << 22
	maxSnapshotString  = 1 << 12
)

// aggTag returns the aggregator's wire tag.
func aggTag(a Aggregator) (byte, error) {
	switch a.(type) {
	case *StageStatsAgg:
		return tagStageStats, nil
	case *SignatureByCountryAgg:
		return tagSignatureByCountry, nil
	case *CountryBySignatureAgg:
		return tagCountryBySignature, nil
	case *ASNViewAgg:
		return tagASNView, nil
	case *TimeSeriesAgg:
		return tagTimeSeries, nil
	case *IPVersionAgg:
		return tagIPVersion, nil
	case *ProtocolAgg:
		return tagProtocol, nil
	case *EvidenceAgg:
		return tagEvidence, nil
	case *ScannerAgg:
		return tagScanner, nil
	case *DomainAgg:
		return tagDomain, nil
	case *OverlapAgg:
		return tagOverlap, nil
	case *StabilityAgg:
		return tagStability, nil
	case *RobustnessAgg:
		return tagRobustness, nil
	case *TimeSpanAgg:
		return tagTimeSpan, nil
	case Multi:
		return tagMulti, nil
	}
	return 0, fmt.Errorf("analysis: no snapshot codec for %T", a)
}

// AppendSnapshot appends a's wire snapshot (tag + state) to b.
func AppendSnapshot(b []byte, a Aggregator) ([]byte, error) {
	tag, err := aggTag(a)
	if err != nil {
		return b, err
	}
	b = append(b, tag)
	switch v := a.(type) {
	case *StageStatsAgg:
		return v.appendSnapshot(b), nil
	case *SignatureByCountryAgg:
		return v.appendSnapshot(b), nil
	case *CountryBySignatureAgg:
		return v.appendSnapshot(b), nil
	case *ASNViewAgg:
		return v.appendSnapshot(b), nil
	case *TimeSeriesAgg:
		return v.appendSnapshot(b), nil
	case *IPVersionAgg:
		return v.appendSnapshot(b), nil
	case *ProtocolAgg:
		return v.appendSnapshot(b), nil
	case *EvidenceAgg:
		return v.appendSnapshot(b), nil
	case *ScannerAgg:
		return v.appendSnapshot(b), nil
	case *DomainAgg:
		return v.appendSnapshot(b), nil
	case *OverlapAgg:
		return v.appendSnapshot(b), nil
	case *StabilityAgg:
		return v.appendSnapshot(b), nil
	case *RobustnessAgg:
		return v.appendSnapshot(b), nil
	case *TimeSpanAgg:
		return v.appendSnapshot(b), nil
	case Multi:
		b = wire.AppendUvarint(b, uint64(len(v)))
		for _, el := range v {
			if b, err = AppendSnapshot(b, el); err != nil {
				return b, err
			}
		}
		return b, nil
	}
	panic("unreachable")
}

// RestoreSnapshot decodes one snapshot produced by AppendSnapshot and
// folds its state into into, which must be an identically-constructed
// aggregator (same concrete type and parameters — the Merge
// compatibility contract). The whole input must be consumed. On error
// into may be partially updated and must be discarded.
func RestoreSnapshot(data []byte, into Aggregator) error {
	d := wire.NewDecoder(data)
	if err := restoreInto(d, into); err != nil {
		return err
	}
	return d.Done()
}

// restoreInto decodes one tagged aggregator from d into into.
func restoreInto(d *wire.Decoder, into Aggregator) error {
	wantTag, err := aggTag(into)
	if err != nil {
		return err
	}
	tag := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if tag != uint64(wantTag) {
		return fmt.Errorf("analysis: snapshot tag %d does not match receiver %T (tag %d)", tag, into, wantTag)
	}
	switch v := into.(type) {
	case *StageStatsAgg:
		return v.restoreSnapshot(d)
	case *SignatureByCountryAgg:
		return v.restoreSnapshot(d)
	case *CountryBySignatureAgg:
		return v.restoreSnapshot(d)
	case *ASNViewAgg:
		return v.restoreSnapshot(d)
	case *TimeSeriesAgg:
		return v.restoreSnapshot(d)
	case *IPVersionAgg:
		return v.restoreSnapshot(d)
	case *ProtocolAgg:
		return v.restoreSnapshot(d)
	case *EvidenceAgg:
		return v.restoreSnapshot(d)
	case *ScannerAgg:
		return v.restoreSnapshot(d)
	case *DomainAgg:
		return v.restoreSnapshot(d)
	case *OverlapAgg:
		return v.restoreSnapshot(d)
	case *StabilityAgg:
		return v.restoreSnapshot(d)
	case *RobustnessAgg:
		return v.restoreSnapshot(d)
	case *TimeSpanAgg:
		return v.restoreSnapshot(d)
	case Multi:
		n := d.Uvarint()
		if err := d.Err(); err != nil {
			return err
		}
		if n != uint64(len(v)) {
			return fmt.Errorf("analysis: snapshot Multi of %d into Multi of %d", n, len(v))
		}
		for i := range v {
			if err := restoreInto(d, v[i]); err != nil {
				return fmt.Errorf("analysis: Multi element %d: %w", i, err)
			}
		}
		return nil
	}
	panic("unreachable")
}

// ---------------------------------------------------------------------
// shared helpers

func sortedStrings[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedInts[T any](m map[int]T) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// decodeSig reads a signature index and validates its range.
func decodeSig(d *wire.Decoder) (core.Signature, error) {
	v := d.Uvarint()
	if err := d.Err(); err != nil {
		return 0, err
	}
	if v >= uint64(numSigs) {
		return 0, fmt.Errorf("analysis: signature index %d out of range", v)
	}
	return core.Signature(v), nil
}

// appendIntMap appends a map[int]int in sorted key order.
func appendIntMap(b []byte, m map[int]int) []byte {
	b = wire.AppendUvarint(b, uint64(len(m)))
	for _, k := range sortedInts(m) {
		b = wire.AppendVarint(b, int64(k))
		b = wire.AppendVarint(b, int64(m[k]))
	}
	return b
}

// restoreIntMap folds an encoded map[int]int into m.
func restoreIntMap(d *wire.Decoder, m map[int]int) error {
	n := d.Len(maxSnapshotEntries, 2)
	for i := 0; i < n; i++ {
		k := d.Int()
		v := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		m[k] += v
	}
	return d.Err()
}

// ---------------------------------------------------------------------
// per-aggregator codecs

func (a *StageStatsAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendVarint(b, int64(a.s.Total))
	b = wire.AppendVarint(b, int64(a.s.PossiblyTampered))
	b = wire.AppendVarint(b, int64(a.s.Matched))
	for st := 0; st < numStages; st++ {
		b = wire.AppendVarint(b, int64(a.s.StageCounts[st]))
		b = wire.AppendVarint(b, int64(a.s.StageMatched[st]))
	}
	return b
}

func (a *StageStatsAgg) restoreSnapshot(d *wire.Decoder) error {
	a.s.Total += d.Int()
	a.s.PossiblyTampered += d.Int()
	a.s.Matched += d.Int()
	for st := 0; st < numStages; st++ {
		a.s.StageCounts[st] += d.Int()
		a.s.StageMatched[st] += d.Int()
	}
	return d.Err()
}

func (a *SignatureByCountryAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(a.byCountry)))
	for _, c := range sortedStrings(a.byCountry) {
		dst := a.byCountry[c]
		b = wire.AppendString(b, c)
		b = wire.AppendVarint(b, int64(dst.Total))
		for sig := 0; sig < numSigs; sig++ {
			b = wire.AppendVarint(b, int64(dst.BySignature[sig]))
		}
	}
	return b
}

func (a *SignatureByCountryAgg) restoreSnapshot(d *wire.Decoder) error {
	n := d.Len(maxSnapshotEntries, 2+numSigs)
	for i := 0; i < n; i++ {
		c := d.String(maxSnapshotString)
		if err := d.Err(); err != nil {
			return err
		}
		dst := a.byCountry[c]
		if dst == nil {
			dst = &CountryDistribution{Country: c}
			a.byCountry[c] = dst
		}
		dst.Total += d.Int()
		for sig := 0; sig < numSigs; sig++ {
			dst.BySignature[sig] += d.Int()
		}
	}
	return d.Err()
}

func (a *CountryBySignatureAgg) appendSnapshot(b []byte) []byte {
	for sig := 0; sig < numSigs; sig++ {
		b = wire.AppendVarint(b, int64(a.total[sig]))
		m := a.byCountry[sig]
		b = wire.AppendUvarint(b, uint64(len(m)))
		for _, c := range sortedStrings(m) {
			b = wire.AppendString(b, c)
			b = wire.AppendVarint(b, int64(m[c]))
		}
	}
	return b
}

func (a *CountryBySignatureAgg) restoreSnapshot(d *wire.Decoder) error {
	for sig := 0; sig < numSigs; sig++ {
		a.total[sig] += d.Int()
		n := d.Len(maxSnapshotEntries, 2)
		for i := 0; i < n; i++ {
			c := d.String(maxSnapshotString)
			v := d.Int()
			if err := d.Err(); err != nil {
				return err
			}
			if a.byCountry[sig] == nil {
				a.byCountry[sig] = map[string]int{}
			}
			a.byCountry[sig][c] += v
		}
	}
	return d.Err()
}

func (a *ASNViewAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(a.total)))
	for _, c := range sortedStrings(a.total) {
		b = wire.AppendString(b, c)
		b = wire.AppendVarint(b, int64(a.total[c]))
		m := a.byASN[c]
		asns := make([]uint32, 0, len(m))
		for asn := range m {
			asns = append(asns, asn)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		b = wire.AppendUvarint(b, uint64(len(asns)))
		for _, asn := range asns {
			acc := m[asn]
			b = wire.AppendUvarint(b, uint64(asn))
			b = wire.AppendVarint(b, int64(acc.total))
			b = wire.AppendVarint(b, int64(acc.matched))
		}
	}
	return b
}

func (a *ASNViewAgg) restoreSnapshot(d *wire.Decoder) error {
	n := d.Len(maxSnapshotEntries, 3)
	for i := 0; i < n; i++ {
		c := d.String(maxSnapshotString)
		total := d.Int()
		nASN := d.Len(maxSnapshotEntries, 3)
		if err := d.Err(); err != nil {
			return err
		}
		a.total[c] += total
		m := a.byASN[c]
		if m == nil {
			m = map[uint32]*asnAcc{}
			a.byASN[c] = m
		}
		for j := 0; j < nASN; j++ {
			asn := d.Uvarint()
			t := d.Int()
			mt := d.Int()
			if err := d.Err(); err != nil {
				return err
			}
			if asn > 1<<32-1 {
				return fmt.Errorf("analysis: ASN %d out of range", asn)
			}
			acc := m[uint32(asn)]
			if acc == nil {
				acc = &asnAcc{}
				m[uint32(asn)] = acc
			}
			acc.total += t
			acc.matched += mt
		}
	}
	return d.Err()
}

func (a *TimeSeriesAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(a.bucketHours))
	b = wire.AppendUvarint(b, uint64(len(a.byBucket)))
	for _, k := range sortedInts(a.byBucket) {
		p := a.byBucket[k]
		b = wire.AppendVarint(b, int64(k))
		b = wire.AppendVarint(b, int64(p.Total))
		b = wire.AppendVarint(b, int64(p.Matched))
	}
	return b
}

func (a *TimeSeriesAgg) restoreSnapshot(d *wire.Decoder) error {
	bh := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if bh != uint64(a.bucketHours) {
		return fmt.Errorf("analysis: snapshot bucketHours=%d into bucketHours=%d", bh, a.bucketHours)
	}
	n := d.Len(maxSnapshotEntries, 3)
	for i := 0; i < n; i++ {
		k := d.Int()
		total := d.Int()
		matched := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		p := a.byBucket[k]
		if p == nil {
			p = &SeriesPoint{Hour: k}
			a.byBucket[k] = p
		}
		p.Total += total
		p.Matched += matched
	}
	return d.Err()
}

func (a *IPVersionAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(a.minPerVersion))
	b = wire.AppendUvarint(b, uint64(len(a.byCountry)))
	for _, c := range sortedStrings(a.byCountry) {
		v := a.byCountry[c]
		b = wire.AppendString(b, c)
		b = wire.AppendVarint(b, int64(v.V4Total))
		b = wire.AppendVarint(b, int64(v.V4M))
		b = wire.AppendVarint(b, int64(v.V6Total))
		b = wire.AppendVarint(b, int64(v.V6M))
	}
	return b
}

func (a *IPVersionAgg) restoreSnapshot(d *wire.Decoder) error {
	min := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if min != uint64(a.minPerVersion) {
		return fmt.Errorf("analysis: snapshot minPerVersion=%d into minPerVersion=%d", min, a.minPerVersion)
	}
	n := d.Len(maxSnapshotEntries, 5)
	for i := 0; i < n; i++ {
		c := d.String(maxSnapshotString)
		if err := d.Err(); err != nil {
			return err
		}
		v := a.byCountry[c]
		if v == nil {
			v = &VersionComparison{Country: c}
			a.byCountry[c] = v
		}
		v.V4Total += d.Int()
		v.V4M += d.Int()
		v.V6Total += d.Int()
		v.V6M += d.Int()
	}
	return d.Err()
}

func (a *ProtocolAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(a.minPerProto))
	b = wire.AppendUvarint(b, uint64(len(a.byCountry)))
	for _, c := range sortedStrings(a.byCountry) {
		p := a.byCountry[c]
		b = wire.AppendString(b, c)
		b = wire.AppendVarint(b, int64(p.TLSTotal))
		b = wire.AppendVarint(b, int64(p.TLSM))
		b = wire.AppendVarint(b, int64(p.HTTPTotal))
		b = wire.AppendVarint(b, int64(p.HTTPM))
	}
	return b
}

func (a *ProtocolAgg) restoreSnapshot(d *wire.Decoder) error {
	min := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if min != uint64(a.minPerProto) {
		return fmt.Errorf("analysis: snapshot minPerProto=%d into minPerProto=%d", min, a.minPerProto)
	}
	n := d.Len(maxSnapshotEntries, 5)
	for i := 0; i < n; i++ {
		c := d.String(maxSnapshotString)
		if err := d.Err(); err != nil {
			return err
		}
		p := a.byCountry[c]
		if p == nil {
			p = &ProtocolComparison{Country: c}
			a.byCountry[c] = p
		}
		p.TLSTotal += d.Int()
		p.TLSM += d.Int()
		p.HTTPTotal += d.Int()
		p.HTTPM += d.Int()
	}
	return d.Err()
}

// appendSketchMap appends a per-signature sketch map in signature
// order, each sketch's entries sorted by (key, value).
func appendSketchMap(b []byte, m map[core.Signature]*stats.Sketch) []byte {
	sigs := make([]core.Signature, 0, len(m))
	for sig := range m {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	b = wire.AppendUvarint(b, uint64(len(sigs)))
	for _, sig := range sigs {
		s := m[sig]
		type kv struct {
			key uint64
			val float64
		}
		entries := make([]kv, 0, s.Len())
		s.Each(func(key uint64, val float64) { entries = append(entries, kv{key, val}) })
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].key != entries[j].key {
				return entries[i].key < entries[j].key
			}
			return entries[i].val < entries[j].val
		})
		b = wire.AppendUvarint(b, uint64(sig))
		b = wire.AppendUvarint(b, uint64(len(entries)))
		for _, e := range entries {
			b = wire.AppendUvarint(b, e.key)
			b = wire.AppendFloat64(b, e.val)
		}
	}
	return b
}

// restoreSketchMap folds an encoded sketch map into m, creating
// sketches with capacity k.
func restoreSketchMap(d *wire.Decoder, m map[core.Signature]*stats.Sketch, k int) error {
	n := d.Len(numSigs, 2)
	for i := 0; i < n; i++ {
		sig, err := decodeSig(d)
		if err != nil {
			return err
		}
		cnt := d.Len(k, 9)
		if err := d.Err(); err != nil {
			return err
		}
		s := m[sig]
		if s == nil {
			s = stats.NewSketch(k)
			m[sig] = s
		}
		for j := 0; j < cnt; j++ {
			key := d.Uvarint()
			val := d.Float64()
			if err := d.Err(); err != nil {
				return err
			}
			s.Add(key, val)
		}
	}
	return d.Err()
}

func (a *EvidenceAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(a.capPerSig))
	b = appendSketchMap(b, a.ipid)
	b = appendSketchMap(b, a.ttl)
	return b
}

func (a *EvidenceAgg) restoreSnapshot(d *wire.Decoder) error {
	cap := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if cap != uint64(a.capPerSig) {
		return fmt.Errorf("analysis: snapshot capPerSig=%d into capPerSig=%d", cap, a.capPerSig)
	}
	if err := restoreSketchMap(d, a.ipid, a.capPerSig); err != nil {
		return err
	}
	return restoreSketchMap(d, a.ttl, a.capPerSig)
}

func (a *ScannerAgg) appendSnapshot(b []byte) []byte {
	for _, v := range []int{
		a.s.Total, a.s.HighTTL, a.s.NoSYNOptions, a.s.SYNRSTMatches,
		a.s.SYNRSTZMap, a.s.SYNPayload80, a.s.Port80SYNs,
		a.s.SYNPayload443, a.s.Port443SYNs,
		a.TamperingMatches, a.PostACKPSHMatches,
	} {
		b = wire.AppendVarint(b, int64(v))
	}
	b = appendIntMap(b, a.dayPayload)
	b = appendIntMap(b, a.daySYNs)
	return b
}

func (a *ScannerAgg) restoreSnapshot(d *wire.Decoder) error {
	for _, p := range []*int{
		&a.s.Total, &a.s.HighTTL, &a.s.NoSYNOptions, &a.s.SYNRSTMatches,
		&a.s.SYNRSTZMap, &a.s.SYNPayload80, &a.s.Port80SYNs,
		&a.s.SYNPayload443, &a.s.Port443SYNs,
		&a.TamperingMatches, &a.PostACKPSHMatches,
	} {
		*p += d.Int()
	}
	if err := restoreIntMap(d, a.dayPayload); err != nil {
		return err
	}
	return restoreIntMap(d, a.daySYNs)
}

func (a *DomainAgg) appendSnapshot(b []byte) []byte {
	keys := make([]domKey, 0, len(a.counts))
	for k := range a.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].country != keys[j].country {
			return keys[i].country < keys[j].country
		}
		return keys[i].domain < keys[j].domain
	})
	b = wire.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		c := a.counts[k]
		b = wire.AppendString(b, k.country)
		b = wire.AppendString(b, k.domain)
		b = wire.AppendVarint(b, int64(c.Sightings))
		b = wire.AppendVarint(b, int64(c.Matches))
	}
	return b
}

func (a *DomainAgg) restoreSnapshot(d *wire.Decoder) error {
	n := d.Len(maxSnapshotEntries, 4)
	for i := 0; i < n; i++ {
		country := d.String(maxSnapshotString)
		domain := d.String(maxSnapshotString)
		sightings := d.Int()
		matches := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		k := domKey{country: country, domain: domain}
		c := a.counts[k]
		if c == nil {
			c = &DomainCount{Country: country, Domain: domain}
			a.counts[k] = c
		}
		c.Sightings += sightings
		c.Matches += matches
	}
	return d.Err()
}

func (a *OverlapAgg) appendSnapshot(b []byte) []byte {
	keys := make([]pairKey, 0, len(a.obs))
	for k := range a.obs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].domain < keys[j].domain
	})
	b = wire.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		// The stored slice keeps Add order; encode the canonical
		// (time, signature) order instead so the frame is a pure
		// function of the observation multiset. Matrix() applies the
		// same ordering at finalize, so this is behavior-preserving.
		obs := append([]pairObs(nil), a.obs[k]...)
		sort.Slice(obs, func(i, j int) bool {
			if obs[i].time != obs[j].time {
				return obs[i].time < obs[j].time
			}
			return obs[i].sig < obs[j].sig
		})
		b = wire.AppendString(b, k.src)
		b = wire.AppendString(b, k.domain)
		b = wire.AppendUvarint(b, uint64(len(obs)))
		for _, o := range obs {
			b = wire.AppendVarint(b, o.time)
			b = wire.AppendUvarint(b, uint64(o.sig))
		}
	}
	return b
}

func (a *OverlapAgg) restoreSnapshot(d *wire.Decoder) error {
	n := d.Len(maxSnapshotEntries, 5)
	for i := 0; i < n; i++ {
		src := d.String(maxSnapshotString)
		domain := d.String(maxSnapshotString)
		cnt := d.Len(maxSnapshotEntries, 2)
		if err := d.Err(); err != nil {
			return err
		}
		k := pairKey{src: src, domain: domain}
		for j := 0; j < cnt; j++ {
			t := d.Varint()
			sig, err := decodeSig(d)
			if err != nil {
				return err
			}
			if _, ok := a.axisIdx[sig]; !ok {
				return fmt.Errorf("analysis: overlap snapshot carries off-axis signature %v", sig)
			}
			a.obs[k] = append(a.obs[k], pairObs{time: t, sig: sig})
		}
	}
	return d.Err()
}

func (a *StabilityAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(a.minPerHalf))
	b = wire.AppendVarint(b, int64(a.maxHour))
	var anyFlag uint64
	if a.any {
		anyFlag = 1
	}
	b = wire.AppendUvarint(b, anyFlag)
	b = wire.AppendUvarint(b, uint64(len(a.byCountry)))
	for _, c := range sortedStrings(a.byCountry) {
		hours := a.byCountry[c]
		b = wire.AppendString(b, c)
		b = wire.AppendUvarint(b, uint64(len(hours)))
		for _, hr := range sortedInts(hours) {
			h := hours[hr]
			b = wire.AppendVarint(b, int64(hr))
			b = wire.AppendVarint(b, int64(h.all))
			b = wire.AppendVarint(b, int64(h.total))
			for sig := 0; sig < numSigs; sig++ {
				b = wire.AppendVarint(b, int64(h.sig[sig]))
			}
		}
	}
	return b
}

func (a *StabilityAgg) restoreSnapshot(d *wire.Decoder) error {
	min := d.Uvarint()
	maxHour := d.Int()
	anyFlag := d.Uvarint()
	if err := d.Err(); err != nil {
		return err
	}
	if min != uint64(a.minPerHalf) {
		return fmt.Errorf("analysis: snapshot minPerHalf=%d into minPerHalf=%d", min, a.minPerHalf)
	}
	if anyFlag > 1 {
		return fmt.Errorf("analysis: stability any flag %d out of range", anyFlag)
	}
	a.any = a.any || anyFlag == 1
	if maxHour > a.maxHour {
		a.maxHour = maxHour
	}
	nC := d.Len(maxSnapshotEntries, 2)
	for i := 0; i < nC; i++ {
		c := d.String(maxSnapshotString)
		nH := d.Len(maxSnapshotEntries, 3+numSigs)
		if err := d.Err(); err != nil {
			return err
		}
		hours := a.byCountry[c]
		if hours == nil {
			hours = map[int]*hourCount{}
			a.byCountry[c] = hours
		}
		for j := 0; j < nH; j++ {
			hr := d.Int()
			all := d.Int()
			total := d.Int()
			if err := d.Err(); err != nil {
				return err
			}
			h := hours[hr]
			if h == nil {
				h = &hourCount{}
				hours[hr] = h
			}
			h.all += all
			h.total += total
			for sig := 0; sig < numSigs; sig++ {
				h.sig[sig] += d.Int()
			}
			if err := d.Err(); err != nil {
				return err
			}
		}
	}
	return d.Err()
}

func (a *RobustnessAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendString(b, a.grade)
	b = wire.AppendFloat64(b, a.effectiveLoss)
	b = wire.AppendVarint(b, int64(a.total))
	b = wire.AppendVarint(b, int64(a.anomalous))
	b = wire.AppendVarint(b, int64(a.notTampering))
	for sig := 0; sig < numSigs; sig++ {
		b = wire.AppendVarint(b, int64(a.fps[sig]))
	}
	return b
}

func (a *TimeSpanAgg) appendSnapshot(b []byte) []byte {
	b = wire.AppendVarint(b, int64(a.total))
	keys := a.sortedTimes()
	b = wire.AppendUvarint(b, uint64(len(keys)))
	prev := int64(0)
	for i, t := range keys {
		// First second absolute (signed), the rest as the gap from the
		// previous one — sorted order makes every gap non-negative.
		if i == 0 {
			b = wire.AppendVarint(b, t)
		} else {
			b = wire.AppendUvarint(b, uint64(t-prev))
		}
		prev = t
		b = wire.AppendVarint(b, int64(a.secs[t]))
	}
	return b
}

// maxTimeDelta bounds the gap between consecutive snapshot seconds;
// anything past ~136 years of virtual time is a corrupt frame, and
// the bound keeps the running sum from overflowing.
const maxTimeDelta = int64(1) << 32

func (a *TimeSpanAgg) restoreSnapshot(d *wire.Decoder) error {
	a.total += d.Int()
	n := d.Len(maxSnapshotEntries, 2)
	prev := int64(0)
	for i := 0; i < n; i++ {
		if i == 0 {
			prev = d.Varint()
		} else {
			gap := d.Uvarint()
			if gap == 0 || int64(gap) > maxTimeDelta {
				return fmt.Errorf("analysis: time-span snapshot gap %d out of range", gap)
			}
			prev += int64(gap)
		}
		cnt := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if cnt <= 0 {
			return fmt.Errorf("analysis: time-span snapshot count %d for second %d", cnt, prev)
		}
		a.secs[prev] += cnt
	}
	return d.Err()
}

func (a *RobustnessAgg) restoreSnapshot(d *wire.Decoder) error {
	grade := d.String(maxSnapshotString)
	loss := d.Float64()
	if err := d.Err(); err != nil {
		return err
	}
	if grade != a.grade {
		return fmt.Errorf("analysis: snapshot grade %q into %q", grade, a.grade)
	}
	if loss != a.effectiveLoss {
		return fmt.Errorf("analysis: snapshot effectiveLoss=%v into %v", loss, a.effectiveLoss)
	}
	a.total += d.Int()
	a.anomalous += d.Int()
	a.notTampering += d.Int()
	for sig := 0; sig < numSigs; sig++ {
		a.fps[sig] += d.Int()
	}
	return d.Err()
}
