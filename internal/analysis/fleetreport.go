package analysis

// The fleet report surface: the aggregator set a PoP pushes over the
// wire and the merger renders globally. It is the full paper surface
// minus the two tables that need scenario-side inputs (the domain
// Universe for Table 2, the test-list Suite for Table 3) — those stay
// with whoever holds the dataset; everything else is a pure function
// of the merged aggregator state, which is what makes the distributed
// render byte-comparable against a single-process run.

import "strings"

// Slots of the fleet aggregator set, in NewFleetAggs order.
const (
	fleetStages = iota
	fleetComposition
	fleetEvidence
	fleetDistribution
	fleetASN
	fleetIPVersion
	fleetProtocol
	fleetDomains
	fleetOverlap
	fleetStability
	fleetScanners
	fleetSeries
	numFleetAggs
)

// NewFleetAggs builds a fresh fleet aggregator set. Every PoP and the
// merger must construct it identically (same parameters), which is
// exactly what sharing this factory guarantees; the snapshot codec
// rejects parameter drift at decode time.
func NewFleetAggs() Multi {
	return Multi{
		NewStageStatsAgg(),
		NewCountryBySignatureAgg(),
		NewEvidenceAgg(1000),
		NewSignatureByCountryAgg(),
		NewASNViewAgg(),
		NewIPVersionAgg(50),
		NewProtocolAgg(30),
		NewDomainAgg(),
		NewOverlapAgg(),
		NewStabilityAgg(30),
		NewScannerAgg(),
		NewTimeSeriesAgg(4, nil, AnySignatureMatch),
	}
}

// RenderFleetReport renders every fleet table from a NewFleetAggs set.
// The output is deterministic in the aggregate state, so two merges of
// the same snapshot multiset — whatever the arrival order or duplicate
// pattern — render byte-identically.
func RenderFleetReport(agg Multi) string {
	var b strings.Builder
	b.WriteString(RenderStageStats(agg[fleetStages].(*StageStatsAgg).Stats()))
	b.WriteString(RenderSignatureComposition(agg[fleetComposition].(*CountryBySignatureAgg).Table()))
	cdfs := agg[fleetEvidence].(*EvidenceAgg).CDFs()
	b.WriteString(RenderEvidenceCDF("ipid", cdfs.IPID, []float64{0, 1, 10, 100, 1000, 10000}))
	b.WriteString(RenderEvidenceCDF("ttl", cdfs.TTL, []float64{0, 1, 5, 20, 60, 150}))
	b.WriteString(RenderCountryDistribution(agg[fleetDistribution].(*SignatureByCountryAgg).Table(), 50))
	asn := agg[fleetASN].(*ASNViewAgg)
	for _, c := range asn.Countries() {
		b.WriteString(RenderASNView(c, asn.View(c)))
	}
	vRows, vSlope := agg[fleetIPVersion].(*IPVersionAgg).Table()
	b.WriteString(RenderVersionComparison(vRows, vSlope))
	pRows, pSlope := agg[fleetProtocol].(*ProtocolAgg).Table()
	b.WriteString(RenderProtocolComparison(pRows, pSlope))
	b.WriteString("== tampered domains (global, >=3 matches) ==\n")
	for _, d := range agg[fleetDomains].(*DomainAgg).TamperedDomains("", 3) {
		b.WriteString("  " + d + "\n")
	}
	b.WriteString(RenderOverlapMatrix(agg[fleetOverlap].(*OverlapAgg).Matrix()))
	b.WriteString(RenderStability(agg[fleetStability].(*StabilityAgg).Report()))
	b.WriteString(RenderScannerStats(agg[fleetScanners].(*ScannerAgg).Stats()))
	b.WriteString(RenderTimeSeries("series", agg[fleetSeries].(*TimeSeriesAgg).Series()))
	return b.String()
}
