package analysis

import (
	"fmt"
	"strings"

	"tamperdetect/internal/core"
	"tamperdetect/internal/stats"
)

// This file aggregates the robustness (false-positive) harness: a
// tamper-free workload is run under increasingly hostile benign link
// impairments, and every tampering-signature match is by construction a
// false positive. The matrix shows, per signature and grade, how many
// benign connections the detector would wrongly flag — the paper's §5.1
// robustness claim is that this stays at zero even on badly degraded
// links, because loss, retransmission, reordering, and duplication
// never produce a Table 1 flag sequence.

// RobustnessGrade is one impairment grade's classification outcome on a
// tamper-free workload.
type RobustnessGrade struct {
	// Grade is the impairment profile name ("clean", "lossy", …).
	Grade string
	// EffectiveLoss is the grade's steady-state per-traversal loss.
	EffectiveLoss float64
	// Total counts classified connections (the sampler can drop
	// connections whose every inbound packet was lost).
	Total int
	// FalsePositives counts, per tampering signature, the benign
	// connections that matched it.
	FalsePositives map[core.Signature]int
	// Anomalous counts SigOtherAnomalous outcomes — flagged as unusual
	// but, correctly, not as tampering.
	Anomalous int
	// NotTampering counts clean classifications.
	NotTampering int
}

// FalsePositiveTotal sums the tampering-signature matches.
func (g *RobustnessGrade) FalsePositiveTotal() int {
	n := 0
	for _, c := range g.FalsePositives {
		n += c
	}
	return n
}

// FalsePositiveRate is the share of classified connections wrongly
// flagged as tampered.
func (g *RobustnessGrade) FalsePositiveRate() float64 {
	return stats.Ratio(g.FalsePositiveTotal(), g.Total)
}

// TallyRobustness folds the classifier verdicts of a tamper-free run
// into a grade cell.
func TallyRobustness(grade string, effectiveLoss float64, sigs []core.Signature) RobustnessGrade {
	a := NewRobustnessAgg(grade, effectiveLoss)
	for _, sig := range sigs {
		a.Add(&Record{Res: core.Result{Signature: sig}})
	}
	return a.Grade()
}

// RenderRobustnessMatrix prints the per-signature false-positive matrix
// across impairment grades.
func RenderRobustnessMatrix(grades []RobustnessGrade) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", "signature \\ grade")
	for _, g := range grades {
		fmt.Fprintf(&b, " %12s", g.Grade)
	}
	b.WriteByte('\n')
	for _, sig := range core.AllSignatures() {
		fmt.Fprintf(&b, "%-28s", sig.String())
		for _, g := range grades {
			fmt.Fprintf(&b, " %12d", g.FalsePositives[sig])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-28s", "— not tampering")
	for _, g := range grades {
		fmt.Fprintf(&b, " %12d", g.NotTampering)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-28s", "— other anomalous")
	for _, g := range grades {
		fmt.Fprintf(&b, " %12d", g.Anomalous)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-28s", "connections classified")
	for _, g := range grades {
		fmt.Fprintf(&b, " %12d", g.Total)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-28s", "effective link loss")
	for _, g := range grades {
		fmt.Fprintf(&b, " %11.2f%%", 100*g.EffectiveLoss)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-28s", "FALSE-POSITIVE RATE")
	for _, g := range grades {
		fmt.Fprintf(&b, " %11.4f%%", stats.Percent(g.FalsePositiveRate()))
	}
	b.WriteByte('\n')
	return b.String()
}
