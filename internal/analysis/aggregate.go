package analysis

// Incremental, mergeable aggregation. Every paper table is computed by
// an Aggregator: records stream in one at a time (Add), independently
// built aggregators combine (Merge — the multi-PoP rollup: each
// simulated PoP aggregates its own traffic and the merged result is
// the global report), and a finalize step renders the table.
//
// The load-bearing invariant, which the parity suite and the merge
// fuzz target enforce, is that every finalized table is a pure
// function of the record *multiset*: insertion order, shard
// partitioning, and merge order must not change a single output byte.
// That is what lets the streaming pipeline shard records across
// workers nondeterministically (pipeline.Config.Observe), lets N PoP
// shards merge in any order, and keeps the legacy batch functions —
// now thin Add-in-a-loop wrappers — byte-identical to both. Merge is
// associative, commutative, and identity-respecting (a fresh
// aggregator is the identity element).
//
// This file holds the interface and the per-connection aggregators;
// the per-domain, overlap, stability, and robustness aggregators live
// in aggregate_domains.go, and the per-worker pipeline adapter in
// sharded.go.

import (
	"fmt"
	"hash/fnv"
	"sort"

	"tamperdetect/internal/core"
	"tamperdetect/internal/stats"
)

// Aggregator is one incrementally computed paper table.
type Aggregator interface {
	// Add folds one classified record into the aggregate. The record
	// is only borrowed for the call.
	Add(r *Record)
	// Merge folds another aggregator of the same concrete type (and
	// same construction parameters) into this one, as if every record
	// added to other had been added here. Merging a mismatched type
	// returns an error and changes nothing.
	Merge(other Aggregator) error
	// Finalize computes the aggregator's table — exactly the value the
	// package-level batch function returns. It does not consume the
	// aggregator: more Adds and Merges may follow, and Finalize may be
	// called again.
	Finalize() any
}

// mismatch is the shared Merge type-check failure.
func mismatch(dst, src Aggregator) error {
	return fmt.Errorf("analysis: cannot merge %T into %T", src, dst)
}

// Multi composes aggregators so one streaming pass fills all of them.
// Merge is element-wise and requires equal length and matching
// element types.
type Multi []Aggregator

func (m Multi) Add(r *Record) {
	for _, a := range m {
		a.Add(r)
	}
}

func (m Multi) Merge(other Aggregator) error {
	o, ok := other.(Multi)
	if !ok {
		return mismatch(m, other)
	}
	if len(o) != len(m) {
		return fmt.Errorf("analysis: cannot merge Multi of %d into Multi of %d", len(o), len(m))
	}
	// Pre-check element types so a type mismatch cannot leave the
	// Multi half-merged (parameter mismatches, e.g. differing bucket
	// widths, still surface from the element Merge itself).
	for i := range m {
		if err := checkMergeable(m[i], o[i]); err != nil {
			return err
		}
	}
	for i := range m {
		if err := m[i].Merge(o[i]); err != nil {
			return err
		}
	}
	return nil
}

func (m Multi) Finalize() any {
	out := make([]any, len(m))
	for i, a := range m {
		out[i] = a.Finalize()
	}
	return out
}

// checkMergeable rejects a type-mismatched element pair without
// merging.
func checkMergeable(dst, src Aggregator) error {
	if fmt.Sprintf("%T", dst) != fmt.Sprintf("%T", src) {
		return mismatch(dst, src)
	}
	return nil
}

// ---------------------------------------------------------------------
// §4.1 stage stats (Table 1 narrative)

// StageStatsAgg incrementally computes ComputeStageStats.
type StageStatsAgg struct {
	s StageStats
}

// NewStageStatsAgg returns an empty §4.1 aggregator.
func NewStageStatsAgg() *StageStatsAgg { return &StageStatsAgg{} }

func (a *StageStatsAgg) Add(rec *Record) {
	a.s.Total++
	r := &rec.Res
	if !r.PossiblyTampered {
		return
	}
	a.s.PossiblyTampered++
	st := r.Signature.Stage()
	if r.Signature == core.SigOtherAnomalous {
		// Attribute to the prefix stage when known (Post-Data
		// timeouts), else Other.
		st = r.Stage
		if st == core.StageNone {
			st = core.StageOther
		}
	}
	a.s.StageCounts[st]++
	if r.Signature.IsTampering() {
		a.s.StageMatched[st]++
		a.s.Matched++
	}
}

func (a *StageStatsAgg) Merge(other Aggregator) error {
	o, ok := other.(*StageStatsAgg)
	if !ok {
		return mismatch(a, other)
	}
	a.s.Total += o.s.Total
	a.s.PossiblyTampered += o.s.PossiblyTampered
	a.s.Matched += o.s.Matched
	for st := range a.s.StageCounts {
		a.s.StageCounts[st] += o.s.StageCounts[st]
		a.s.StageMatched[st] += o.s.StageMatched[st]
	}
	return nil
}

// Stats finalizes the §4.1 breakdown.
func (a *StageStatsAgg) Stats() StageStats { return a.s }

func (a *StageStatsAgg) Finalize() any { return a.Stats() }

// ---------------------------------------------------------------------
// Figure 4: per-country signature distribution

// SignatureByCountryAgg incrementally computes SignatureByCountry.
type SignatureByCountryAgg struct {
	byCountry map[string]*CountryDistribution
}

// NewSignatureByCountryAgg returns an empty Figure 4 aggregator.
func NewSignatureByCountryAgg() *SignatureByCountryAgg {
	return &SignatureByCountryAgg{byCountry: map[string]*CountryDistribution{}}
}

func (a *SignatureByCountryAgg) Add(r *Record) {
	if r.Country == "" {
		return
	}
	d := a.byCountry[r.Country]
	if d == nil {
		d = &CountryDistribution{Country: r.Country}
		a.byCountry[r.Country] = d
	}
	d.Total++
	d.BySignature[r.Res.Signature]++
}

func (a *SignatureByCountryAgg) Merge(other Aggregator) error {
	o, ok := other.(*SignatureByCountryAgg)
	if !ok {
		return mismatch(a, other)
	}
	for c, od := range o.byCountry {
		d := a.byCountry[c]
		if d == nil {
			cp := *od
			a.byCountry[c] = &cp
			continue
		}
		d.Total += od.Total
		for sig := range d.BySignature {
			d.BySignature[sig] += od.BySignature[sig]
		}
	}
	return nil
}

// Table finalizes Figure 4, sorted by descending tampered share.
func (a *SignatureByCountryAgg) Table() []CountryDistribution {
	out := make([]CountryDistribution, 0, len(a.byCountry))
	for _, d := range a.byCountry {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].TamperedShare(), out[j].TamperedShare()
		if ti != tj {
			return ti > tj
		}
		return out[i].Country < out[j].Country
	})
	return out
}

func (a *SignatureByCountryAgg) Finalize() any { return a.Table() }

// ---------------------------------------------------------------------
// Figure 1: per-signature country composition

// CountryBySignatureAgg incrementally computes CountryBySignature.
type CountryBySignatureAgg struct {
	total     [core.NumSignatures]int
	byCountry [core.NumSignatures]map[string]int
}

// NewCountryBySignatureAgg returns an empty Figure 1 aggregator.
func NewCountryBySignatureAgg() *CountryBySignatureAgg {
	a := &CountryBySignatureAgg{}
	for _, sig := range core.AllSignatures() {
		a.byCountry[sig] = map[string]int{}
	}
	return a
}

func (a *CountryBySignatureAgg) Add(r *Record) {
	sig := r.Res.Signature
	if !sig.IsTampering() || r.Country == "" {
		return
	}
	a.total[sig]++
	a.byCountry[sig][r.Country]++
}

func (a *CountryBySignatureAgg) Merge(other Aggregator) error {
	o, ok := other.(*CountryBySignatureAgg)
	if !ok {
		return mismatch(a, other)
	}
	for _, sig := range core.AllSignatures() {
		a.total[sig] += o.total[sig]
		for c, n := range o.byCountry[sig] {
			a.byCountry[sig][c] += n
		}
	}
	return nil
}

// Table finalizes Figure 1 for all 19 signatures.
func (a *CountryBySignatureAgg) Table() []SignatureComposition {
	out := make([]SignatureComposition, 0, len(core.AllSignatures()))
	for _, sig := range core.AllSignatures() {
		sc := SignatureComposition{
			Signature: sig,
			Total:     a.total[sig],
			ByCountry: make(map[string]int, len(a.byCountry[sig])),
		}
		for c, n := range a.byCountry[sig] {
			sc.ByCountry[c] = n
		}
		out = append(out, sc)
	}
	return out
}

func (a *CountryBySignatureAgg) Finalize() any { return a.Table() }

// ---------------------------------------------------------------------
// Figure 5: per-AS view

// ASNViewAgg incrementally computes ASNView for every country at once.
type ASNViewAgg struct {
	total map[string]int
	byASN map[string]map[uint32]*asnAcc
}

type asnAcc struct{ total, matched int }

// NewASNViewAgg returns an empty Figure 5 aggregator.
func NewASNViewAgg() *ASNViewAgg {
	return &ASNViewAgg{total: map[string]int{}, byASN: map[string]map[uint32]*asnAcc{}}
}

func (a *ASNViewAgg) Add(r *Record) {
	if r.Country == "" {
		return
	}
	a.total[r.Country]++
	m := a.byASN[r.Country]
	if m == nil {
		m = map[uint32]*asnAcc{}
		a.byASN[r.Country] = m
	}
	acc := m[r.ASN]
	if acc == nil {
		acc = &asnAcc{}
		m[r.ASN] = acc
	}
	acc.total++
	if r.Res.Signature.IsTampering() {
		acc.matched++
	}
}

func (a *ASNViewAgg) Merge(other Aggregator) error {
	o, ok := other.(*ASNViewAgg)
	if !ok {
		return mismatch(a, other)
	}
	for c, n := range o.total {
		a.total[c] += n
	}
	for c, om := range o.byASN {
		m := a.byASN[c]
		if m == nil {
			m = map[uint32]*asnAcc{}
			a.byASN[c] = m
		}
		for asn, oacc := range om {
			acc := m[asn]
			if acc == nil {
				acc = &asnAcc{}
				m[asn] = acc
			}
			acc.total += oacc.total
			acc.matched += oacc.matched
		}
	}
	return nil
}

// View finalizes Figure 5 for one country: per-AS match proportions
// among the top ASes carrying 80% of the country's connections,
// ordered by traffic share (ties broken by ASN so the cut is a pure
// function of the counts).
func (a *ASNViewAgg) View(country string) []ASNStat {
	total := a.total[country]
	if total == 0 {
		return nil
	}
	m := a.byASN[country]
	all := make([]ASNStat, 0, len(m))
	for asn, acc := range m {
		all = append(all, ASNStat{
			ASN:          asn,
			Total:        acc.total,
			Matched:      acc.matched,
			CountryShare: stats.Ratio(acc.total, total),
		})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Total != all[j].Total {
			return all[i].Total > all[j].Total
		}
		return all[i].ASN < all[j].ASN
	})
	// Keep the top ASes covering 80% of traffic.
	covered := 0.0
	cut := len(all)
	for i := range all {
		covered += all[i].CountryShare
		if covered >= 0.8 {
			cut = i + 1
			break
		}
	}
	return all[:cut]
}

// Countries lists the countries with any records, sorted.
func (a *ASNViewAgg) Countries() []string {
	out := make([]string, 0, len(a.total))
	for c := range a.total {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Finalize returns every country's view, keyed by country code.
func (a *ASNViewAgg) Finalize() any {
	out := make(map[string][]ASNStat, len(a.total))
	for c := range a.total {
		out[c] = a.View(c)
	}
	return out
}

// ---------------------------------------------------------------------
// Figures 6, 8, 9: longitudinal series

// TimeSeriesAgg incrementally computes TimeSeries for one
// (bucketHours, include, matched) parameterisation, fixed at
// construction. Merging aggregators built with different predicates
// is not detectable (functions are not comparable) and is the
// caller's responsibility; mismatched bucket widths are rejected.
type TimeSeriesAgg struct {
	bucketHours int
	include     func(*Record) bool
	matched     func(*Record) bool
	byBucket    map[int]*SeriesPoint
}

// NewTimeSeriesAgg returns an empty longitudinal-series aggregator; a
// nil include admits every record.
func NewTimeSeriesAgg(bucketHours int, include func(*Record) bool, matched func(*Record) bool) *TimeSeriesAgg {
	if bucketHours <= 0 {
		bucketHours = 1
	}
	return &TimeSeriesAgg{
		bucketHours: bucketHours,
		include:     include,
		matched:     matched,
		byBucket:    map[int]*SeriesPoint{},
	}
}

func (a *TimeSeriesAgg) Add(r *Record) {
	if a.include != nil && !a.include(r) {
		return
	}
	b := r.Hour / a.bucketHours * a.bucketHours
	p := a.byBucket[b]
	if p == nil {
		p = &SeriesPoint{Hour: b}
		a.byBucket[b] = p
	}
	p.Total++
	if a.matched(r) {
		p.Matched++
	}
}

func (a *TimeSeriesAgg) Merge(other Aggregator) error {
	o, ok := other.(*TimeSeriesAgg)
	if !ok {
		return mismatch(a, other)
	}
	if o.bucketHours != a.bucketHours {
		return fmt.Errorf("analysis: cannot merge %dh-bucket series into %dh-bucket series",
			o.bucketHours, a.bucketHours)
	}
	for b, op := range o.byBucket {
		p := a.byBucket[b]
		if p == nil {
			cp := *op
			a.byBucket[b] = &cp
			continue
		}
		p.Total += op.Total
		p.Matched += op.Matched
	}
	return nil
}

// Series finalizes the bucketed series in hour order.
func (a *TimeSeriesAgg) Series() []SeriesPoint {
	out := make([]SeriesPoint, 0, len(a.byBucket))
	for _, p := range a.byBucket {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hour < out[j].Hour })
	return out
}

func (a *TimeSeriesAgg) Finalize() any { return a.Series() }

// ---------------------------------------------------------------------
// Figure 7a: IPv4 vs IPv6

// IPVersionAgg incrementally computes IPVersionCompare. The
// minPerVersion row filter is fixed at construction.
type IPVersionAgg struct {
	minPerVersion int
	byCountry     map[string]*VersionComparison
}

// NewIPVersionAgg returns an empty Figure 7a aggregator.
func NewIPVersionAgg(minPerVersion int) *IPVersionAgg {
	return &IPVersionAgg{minPerVersion: minPerVersion, byCountry: map[string]*VersionComparison{}}
}

func (a *IPVersionAgg) Add(r *Record) {
	if r.Country == "" {
		return
	}
	v := a.byCountry[r.Country]
	if v == nil {
		v = &VersionComparison{Country: r.Country}
		a.byCountry[r.Country] = v
	}
	m := PostACKPSHMatch(r)
	if r.IPVersion == 6 {
		v.V6Total++
		if m {
			v.V6M++
		}
	} else {
		v.V4Total++
		if m {
			v.V4M++
		}
	}
}

func (a *IPVersionAgg) Merge(other Aggregator) error {
	o, ok := other.(*IPVersionAgg)
	if !ok {
		return mismatch(a, other)
	}
	if o.minPerVersion != a.minPerVersion {
		return fmt.Errorf("analysis: cannot merge minPerVersion=%d into minPerVersion=%d",
			o.minPerVersion, a.minPerVersion)
	}
	for c, ov := range o.byCountry {
		v := a.byCountry[c]
		if v == nil {
			cp := *ov
			a.byCountry[c] = &cp
			continue
		}
		v.V4Total += ov.V4Total
		v.V4M += ov.V4M
		v.V6Total += ov.V6Total
		v.V6M += ov.V6M
	}
	return nil
}

// Table finalizes Figure 7a: the qualifying rows in country order plus
// the through-origin slope. The slope's inputs accumulate in sorted
// country order so the float sum is reproducible bit for bit.
func (a *IPVersionAgg) Table() ([]VersionComparison, float64) {
	countries := make([]string, 0, len(a.byCountry))
	for c := range a.byCountry {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	var out []VersionComparison
	var xs, ys []float64
	for _, c := range countries {
		v := a.byCountry[c]
		if v.V4Total < a.minPerVersion || v.V6Total < a.minPerVersion {
			continue
		}
		out = append(out, *v)
		xs = append(xs, stats.Percent(v.V4Share()))
		ys = append(ys, stats.Percent(v.V6Share()))
	}
	return out, stats.SlopeThroughOrigin(xs, ys)
}

// VersionTable pairs Table's results for Finalize.
type VersionTable struct {
	Rows  []VersionComparison
	Slope float64
}

func (a *IPVersionAgg) Finalize() any {
	rows, slope := a.Table()
	return VersionTable{Rows: rows, Slope: slope}
}

// ---------------------------------------------------------------------
// Figure 7b: TLS vs HTTP

// ProtocolAgg incrementally computes ProtocolCompare. The minPerProto
// row filter is fixed at construction.
type ProtocolAgg struct {
	minPerProto int
	byCountry   map[string]*ProtocolComparison
}

// NewProtocolAgg returns an empty Figure 7b aggregator.
func NewProtocolAgg(minPerProto int) *ProtocolAgg {
	return &ProtocolAgg{minPerProto: minPerProto, byCountry: map[string]*ProtocolComparison{}}
}

func (a *ProtocolAgg) Add(r *Record) {
	if r.Country == "" || r.Res.Protocol == core.ProtoUnknown {
		return
	}
	p := a.byCountry[r.Country]
	if p == nil {
		p = &ProtocolComparison{Country: r.Country}
		a.byCountry[r.Country] = p
	}
	st := r.Res.Signature.Stage()
	m := st == core.StagePostPSH || st == core.StagePostACK
	if r.Res.Protocol == core.ProtoTLS {
		p.TLSTotal++
		if m {
			p.TLSM++
		}
	} else {
		p.HTTPTotal++
		if m {
			p.HTTPM++
		}
	}
}

func (a *ProtocolAgg) Merge(other Aggregator) error {
	o, ok := other.(*ProtocolAgg)
	if !ok {
		return mismatch(a, other)
	}
	if o.minPerProto != a.minPerProto {
		return fmt.Errorf("analysis: cannot merge minPerProto=%d into minPerProto=%d",
			o.minPerProto, a.minPerProto)
	}
	for c, op := range o.byCountry {
		p := a.byCountry[c]
		if p == nil {
			cp := *op
			a.byCountry[c] = &cp
			continue
		}
		p.TLSTotal += op.TLSTotal
		p.TLSM += op.TLSM
		p.HTTPTotal += op.HTTPTotal
		p.HTTPM += op.HTTPM
	}
	return nil
}

// Table finalizes Figure 7b, with the slope inputs in sorted country
// order (see IPVersionAgg.Table).
func (a *ProtocolAgg) Table() ([]ProtocolComparison, float64) {
	countries := make([]string, 0, len(a.byCountry))
	for c := range a.byCountry {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	var out []ProtocolComparison
	var xs, ys []float64
	for _, c := range countries {
		p := a.byCountry[c]
		if p.TLSTotal < a.minPerProto || p.HTTPTotal < a.minPerProto {
			continue
		}
		out = append(out, *p)
		xs = append(xs, stats.Percent(p.TLSShare()))
		ys = append(ys, stats.Percent(p.HTTPShare()))
	}
	return out, stats.SlopeThroughOrigin(xs, ys)
}

// ProtocolTable pairs Table's results for Finalize.
type ProtocolTable struct {
	Rows  []ProtocolComparison
	Slope float64
}

func (a *ProtocolAgg) Finalize() any {
	rows, slope := a.Table()
	return ProtocolTable{Rows: rows, Slope: slope}
}

// ---------------------------------------------------------------------
// Figures 2, 3: evidence CDFs

// EvidenceAgg incrementally computes ComputeEvidenceCDFs. Where the
// batch path sampled the *first* capPerSig connections per signature —
// an order-dependent choice that would break shard parity — the
// aggregator keeps a deterministic bottom-k-by-hash sample
// (stats.Sketch) keyed by the record's identity, so the retained
// sample is a pure function of the record multiset.
type EvidenceAgg struct {
	capPerSig int
	ipid      map[core.Signature]*stats.Sketch
	ttl       map[core.Signature]*stats.Sketch
}

// NewEvidenceAgg returns an empty Figures 2/3 aggregator sampling up
// to capPerSig connections per signature (the paper uses 1 000).
func NewEvidenceAgg(capPerSig int) *EvidenceAgg {
	if capPerSig < 1 {
		capPerSig = 1
	}
	return &EvidenceAgg{
		capPerSig: capPerSig,
		ipid:      map[core.Signature]*stats.Sketch{},
		ttl:       map[core.Signature]*stats.Sketch{},
	}
}

// evidenceKey hashes the record's identity for the sampling sketch.
// It uses only record-derived fields, never arrival order, so every
// shard computes the same key for the same record.
func evidenceKey(r *Record) uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.SrcKey))
	var b [12]byte
	b[0] = byte(r.SrcPort >> 8)
	b[1] = byte(r.SrcPort)
	b[2] = byte(r.DstPort >> 8)
	b[3] = byte(r.DstPort)
	for i := 0; i < 8; i++ {
		b[4+i] = byte(r.Time >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

func (a *EvidenceAgg) Add(r *Record) {
	sig := r.Res.Signature
	if sig == core.SigOtherAnomalous {
		return
	}
	key := evidenceKey(r)
	t := a.ttl[sig]
	if t == nil {
		t = stats.NewSketch(a.capPerSig)
		a.ttl[sig] = t
	}
	t.Add(key, float64(r.Res.Evidence.MaxTTLDelta))
	if r.Res.Evidence.IPIDValid {
		p := a.ipid[sig]
		if p == nil {
			p = stats.NewSketch(a.capPerSig)
			a.ipid[sig] = p
		}
		p.Add(key, float64(r.Res.Evidence.MaxIPIDDelta))
	}
}

func (a *EvidenceAgg) Merge(other Aggregator) error {
	o, ok := other.(*EvidenceAgg)
	if !ok {
		return mismatch(a, other)
	}
	if o.capPerSig != a.capPerSig {
		return fmt.Errorf("analysis: cannot merge capPerSig=%d into capPerSig=%d",
			o.capPerSig, a.capPerSig)
	}
	for sig, os := range o.ttl {
		s := a.ttl[sig]
		if s == nil {
			s = stats.NewSketch(a.capPerSig)
			a.ttl[sig] = s
		}
		s.Merge(os)
	}
	for sig, os := range o.ipid {
		s := a.ipid[sig]
		if s == nil {
			s = stats.NewSketch(a.capPerSig)
			a.ipid[sig] = s
		}
		s.Merge(os)
	}
	return nil
}

// CDFs finalizes the Figure 2/3 distributions.
func (a *EvidenceAgg) CDFs() EvidenceCDFs {
	out := EvidenceCDFs{
		IPID: make(map[core.Signature]*stats.CDF, len(a.ipid)),
		TTL:  make(map[core.Signature]*stats.CDF, len(a.ttl)),
	}
	for sig, s := range a.ipid {
		out.IPID[sig] = stats.NewCDF(s.Values())
	}
	for sig, s := range a.ttl {
		out.TTL[sig] = stats.NewCDF(s.Values())
	}
	return out
}

func (a *EvidenceAgg) Finalize() any { return a.CDFs() }

// ---------------------------------------------------------------------
// §4.2 scanner fingerprints

// ScannerAgg incrementally computes ComputeScannerStats from records
// alone (Record carries DstPort, so the original connections are no
// longer needed). It additionally tracks the §5.1 companion counters:
// total tampering matches and the Post-ACK/Post-PSH subset.
type ScannerAgg struct {
	s          ScannerStats
	dayPayload map[int]int
	daySYNs    map[int]int
	// TamperingMatches and PostACKPSHMatches serve the §5.1
	// "Post-ACK/Post-PSH share of matches" statistic.
	TamperingMatches  int
	PostACKPSHMatches int
}

// NewScannerAgg returns an empty §4.2 aggregator.
func NewScannerAgg() *ScannerAgg {
	return &ScannerAgg{dayPayload: map[int]int{}, daySYNs: map[int]int{}}
}

func (a *ScannerAgg) Add(r *Record) {
	a.s.Total++
	ev := &r.Res.Evidence
	if ev.HighTTL {
		a.s.HighTTL++
	}
	if ev.NoSYNOptions {
		a.s.NoSYNOptions++
	}
	if r.Res.Signature == core.SigSYNRST {
		a.s.SYNRSTMatches++
		if ev.ZMapFingerprint {
			a.s.SYNRSTZMap++
		}
	}
	if r.Res.Signature.IsTampering() {
		a.TamperingMatches++
		if r.Res.Signature.PostACKOrPSH() {
			a.PostACKPSHMatches++
		}
	}
	switch r.DstPort {
	case 80:
		a.s.Port80SYNs++
		a.daySYNs[r.Hour/24]++
		if ev.SYNPayloadLen > 0 {
			a.s.SYNPayload80++
			a.dayPayload[r.Hour/24]++
		}
	case 443:
		a.s.Port443SYNs++
		if ev.SYNPayloadLen > 0 {
			a.s.SYNPayload443++
		}
	}
}

func (a *ScannerAgg) Merge(other Aggregator) error {
	o, ok := other.(*ScannerAgg)
	if !ok {
		return mismatch(a, other)
	}
	a.s.Total += o.s.Total
	a.s.HighTTL += o.s.HighTTL
	a.s.NoSYNOptions += o.s.NoSYNOptions
	a.s.SYNRSTMatches += o.s.SYNRSTMatches
	a.s.SYNRSTZMap += o.s.SYNRSTZMap
	a.s.SYNPayload80 += o.s.SYNPayload80
	a.s.Port80SYNs += o.s.Port80SYNs
	a.s.SYNPayload443 += o.s.SYNPayload443
	a.s.Port443SYNs += o.s.Port443SYNs
	a.TamperingMatches += o.TamperingMatches
	a.PostACKPSHMatches += o.PostACKPSHMatches
	for d, n := range o.dayPayload {
		a.dayPayload[d] += n
	}
	for d, n := range o.daySYNs {
		a.daySYNs[d] += n
	}
	return nil
}

// Stats finalizes the §4.2 numbers. PeakDay scans days in ascending
// order with a strict comparison, so ties resolve to the earliest day
// regardless of map iteration order.
func (a *ScannerAgg) Stats() ScannerStats {
	s := a.s
	s.PeakDay = -1
	s.PeakDayShare = 0
	days := make([]int, 0, len(a.daySYNs))
	for d := range a.daySYNs {
		days = append(days, d)
	}
	sort.Ints(days)
	for _, day := range days {
		n := a.daySYNs[day]
		if n < 50 {
			continue
		}
		share := float64(a.dayPayload[day]) / float64(n)
		if share > s.PeakDayShare {
			s.PeakDayShare = share
			s.PeakDay = day
		}
	}
	return s
}

func (a *ScannerAgg) Finalize() any { return a.Stats() }
