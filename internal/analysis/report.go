package analysis

import (
	"sort"

	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/stats"
	"tamperdetect/internal/testlists"
)

// CategoryRow is one (region, category) cell of Table 2.
type CategoryRow struct {
	Category domains.Category
	// TamperedShare is the category's proportion of all tampered
	// (Post-PSH) connections from the region.
	TamperedShare float64
	// Coverage is the proportion of the category's domains seen from
	// the region that are tampered (Table 2's last column).
	Coverage float64
	// TamperedConns is the raw count behind TamperedShare.
	TamperedConns int
}

// CategoryTable is Table 2 for one region.
type CategoryTable struct {
	Region string
	// Rows are ordered by descending TamperedShare.
	Rows []CategoryRow
	// TamperedTotal counts the region's Post-PSH tampered connections
	// with a visible domain.
	TamperedTotal int
}

// Top returns the top-n rows.
func (t *CategoryTable) Top(n int) []CategoryRow {
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	return t.Rows[:n]
}

// ComputeCategoryTable builds Table 2 for one region ("" means global).
// A domain counts as tampered when it has at least minMatches Post-PSH
// signature matches from the region (the paper uses 100 per day at CDN
// scale; scale it to the dataset size).
func ComputeCategoryTable(recs []Record, u *domains.Universe, region string, minMatches int) CategoryTable {
	if minMatches < 1 {
		minMatches = 1
	}
	// Count Post-PSH matches and total sightings per domain. Both the
	// tampered set (numerator) and the observed set (denominator) use
	// the same sighting threshold, mirroring the paper's "domains
	// observed to be accessed" at its much larger scale.
	matches := map[string]int{}
	sightings := map[string]int{}
	for i := range recs {
		r := &recs[i]
		if region != "" && r.Country != region {
			continue
		}
		if r.Res.Domain == "" {
			continue
		}
		sightings[r.Res.Domain]++
		st := r.Res.Signature.Stage()
		if r.Res.Signature.IsTampering() && (st == core.StagePostPSH || st == core.StagePostData) {
			matches[r.Res.Domain]++
		}
	}
	seen := map[string]bool{}
	for d, n := range sightings {
		if n >= minMatches {
			seen[d] = true
		}
	}
	// Tampered domains passing the threshold.
	tampered := map[string]bool{}
	for d, n := range matches {
		if n >= minMatches {
			tampered[d] = true
		}
	}
	// Per-category aggregation.
	var tamperedConns [domains.NumCategories]int
	var seenDomains [domains.NumCategories]int
	var tamperedDomains [domains.NumCategories]int
	total := 0
	for d := range seen {
		dom := u.ByName(d)
		if dom == nil {
			continue
		}
		seenDomains[dom.Category]++
		if tampered[d] {
			tamperedDomains[dom.Category]++
		}
	}
	for d, n := range matches {
		if !tampered[d] {
			continue
		}
		dom := u.ByName(d)
		if dom == nil {
			continue
		}
		tamperedConns[dom.Category] += n
		total += n
	}
	t := CategoryTable{Region: region, TamperedTotal: total}
	for _, c := range domains.AllCategories() {
		if tamperedConns[c] == 0 {
			continue
		}
		t.Rows = append(t.Rows, CategoryRow{
			Category:      c,
			TamperedShare: stats.Ratio(tamperedConns[c], total),
			Coverage:      stats.Ratio(tamperedDomains[c], seenDomains[c]),
			TamperedConns: tamperedConns[c],
		})
	}
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i].TamperedShare > t.Rows[j].TamperedShare })
	return t
}

// TamperedDomains lists the domains with at least minMatches Post-PSH
// matches from the region — the §5.5 observation set.
func TamperedDomains(recs []Record, region string, minMatches int) []string {
	if minMatches < 1 {
		minMatches = 1
	}
	matches := map[string]int{}
	for i := range recs {
		r := &recs[i]
		if region != "" && r.Country != region {
			continue
		}
		if r.Res.Domain == "" || !r.Res.Signature.IsTampering() {
			continue
		}
		st := r.Res.Signature.Stage()
		if st != core.StagePostPSH && st != core.StagePostData {
			continue
		}
		matches[r.Res.Domain]++
	}
	var out []string
	for d, n := range matches {
		if n >= minMatches {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// ListCoverageRow is one cell-row of Table 3: a list's coverage of each
// region's tampered domains.
type ListCoverageRow struct {
	ListName string
	Entries  int
	// Exact maps region → eTLD+1 coverage; Substring holds the §5.5
	// best case.
	Exact     map[string]float64
	Substring map[string]float64
}

// ListCoverageTable computes Table 3 over the given regions ("" means
// global).
func ListCoverageTable(recs []Record, suite *testlists.Suite, regions []string, minMatches int) []ListCoverageRow {
	tamperedByRegion := map[string][]string{}
	for _, reg := range regions {
		tamperedByRegion[reg] = TamperedDomains(recs, reg, minMatches)
	}
	lists := suite.Lists()
	// Union rows, as in the table's last four rows.
	curated := testlists.Union("Union: Citizenlab + Greatfire", suite.CitizenLab, suite.CitizenLabGlobal, suite.GreatfireAll, suite.Greatfire30d)
	all := testlists.Union("Union: All lists", append([]*testlists.List{curated}, lists...)...)
	rows := make([]ListCoverageRow, 0, len(lists)+4)
	addRow := func(l *testlists.List, substring bool, nameOverride string) {
		row := ListCoverageRow{
			ListName:  l.Name,
			Entries:   l.Len(),
			Exact:     map[string]float64{},
			Substring: map[string]float64{},
		}
		if nameOverride != "" {
			row.ListName = nameOverride
		}
		for _, reg := range regions {
			td := tamperedByRegion[reg]
			row.Exact[reg] = testlists.Coverage(l, td, false)
			if substring {
				row.Substring[reg] = testlists.Coverage(l, td, true)
			}
		}
		rows = append(rows, row)
	}
	for _, l := range lists {
		addRow(l, false, "")
	}
	addRow(curated, false, "")
	addRow(all, false, "")
	addRow(curated, true, "Substring: Citizenlab + Greatfire")
	addRow(all, true, "Substring: All lists")
	return rows
}

// OverlapMatrix is Figure 10: for (client, domain) pairs observed at
// least twice, the distribution of (first signature, next signature)
// among Post-PSH outcomes.
type OverlapMatrix struct {
	// Sigs lists the matrix axes in order: Not-Tampering then the
	// Post-PSH signatures.
	Sigs []core.Signature
	// Fraction[i][j] is P(next = Sigs[j] | first = Sigs[i]).
	Fraction [][]float64
	// Counts[i][j] holds raw pair counts.
	Counts [][]int
	Pairs  int
}

// postPSHAxes are the Figure 10 axes.
func postPSHAxes() []core.Signature {
	out := []core.Signature{core.SigNotTampering}
	for _, s := range core.AllSignatures() {
		if s.Stage() == core.StagePostPSH {
			out = append(out, s)
		}
	}
	return out
}

// ComputeOverlapMatrix builds Figure 10. Records must be in temporal
// order per pair (Analyze preserves input order; the workload emits
// specs hour by hour).
func ComputeOverlapMatrix(recs []Record) OverlapMatrix {
	axes := postPSHAxes()
	axisIdx := map[core.Signature]int{}
	for i, s := range axes {
		axisIdx[s] = i
	}
	type pairKey struct{ src, domain string }
	firstSig := map[pairKey]core.Signature{}
	n := len(axes)
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	pairs := 0
	for i := range recs {
		r := &recs[i]
		if r.Res.Domain == "" {
			continue
		}
		sig := r.Res.Signature
		if _, ok := axisIdx[sig]; !ok {
			continue
		}
		key := pairKey{src: r.SrcKey, domain: r.Res.Domain}
		if prev, ok := firstSig[key]; ok {
			counts[axisIdx[prev]][axisIdx[sig]]++
			pairs++
			// Slide: the next observation compares against this one.
			firstSig[key] = sig
			continue
		}
		firstSig[key] = sig
	}
	frac := make([][]float64, n)
	for i := range frac {
		frac[i] = make([]float64, n)
		rowTotal := 0
		for j := range counts[i] {
			rowTotal += counts[i][j]
		}
		for j := range counts[i] {
			frac[i][j] = stats.Ratio(counts[i][j], rowTotal)
		}
	}
	return OverlapMatrix{Sigs: axes, Fraction: frac, Counts: counts, Pairs: pairs}
}

// DiagonalMass is Figure 10's headline: the average over rows (with
// any observations) of the same-signature repeat probability.
func (m *OverlapMatrix) DiagonalMass() float64 {
	sum, rows := 0.0, 0
	for i := range m.Fraction {
		rowTotal := 0
		for _, c := range m.Counts[i] {
			rowTotal += c
		}
		if rowTotal == 0 {
			continue
		}
		sum += m.Fraction[i][i]
		rows++
	}
	if rows == 0 {
		return 0
	}
	return sum / float64(rows)
}
