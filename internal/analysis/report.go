package analysis

import (
	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/testlists"
)

// CategoryRow is one (region, category) cell of Table 2.
type CategoryRow struct {
	Category domains.Category
	// TamperedShare is the category's proportion of all tampered
	// (Post-PSH) connections from the region.
	TamperedShare float64
	// Coverage is the proportion of the category's domains seen from
	// the region that are tampered (Table 2's last column).
	Coverage float64
	// TamperedConns is the raw count behind TamperedShare.
	TamperedConns int
}

// CategoryTable is Table 2 for one region.
type CategoryTable struct {
	Region string
	// Rows are ordered by descending TamperedShare.
	Rows []CategoryRow
	// TamperedTotal counts the region's Post-PSH tampered connections
	// with a visible domain.
	TamperedTotal int
}

// Top returns the top-n rows.
func (t *CategoryTable) Top(n int) []CategoryRow {
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	return t.Rows[:n]
}

// ComputeCategoryTable builds Table 2 for one region ("" means global).
// A domain counts as tampered when it has at least minMatches Post-PSH
// signature matches from the region (the paper uses 100 per day at CDN
// scale; scale it to the dataset size).
func ComputeCategoryTable(recs []Record, u *domains.Universe, region string, minMatches int) CategoryTable {
	a := NewDomainAgg()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.CategoryTable(u, region, minMatches)
}

// TamperedDomains lists the domains with at least minMatches Post-PSH
// matches from the region — the §5.5 observation set.
func TamperedDomains(recs []Record, region string, minMatches int) []string {
	a := NewDomainAgg()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.TamperedDomains(region, minMatches)
}

// ListCoverageRow is one cell-row of Table 3: a list's coverage of each
// region's tampered domains.
type ListCoverageRow struct {
	ListName string
	Entries  int
	// Exact maps region → eTLD+1 coverage; Substring holds the §5.5
	// best case.
	Exact     map[string]float64
	Substring map[string]float64
}

// ListCoverageTable computes Table 3 over the given regions ("" means
// global).
func ListCoverageTable(recs []Record, suite *testlists.Suite, regions []string, minMatches int) []ListCoverageRow {
	a := NewDomainAgg()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.ListCoverage(suite, regions, minMatches)
}

// OverlapMatrix is Figure 10: for (client, domain) pairs observed at
// least twice, the distribution of (first signature, next signature)
// among Post-PSH outcomes.
type OverlapMatrix struct {
	// Sigs lists the matrix axes in order: Not-Tampering then the
	// Post-PSH signatures.
	Sigs []core.Signature
	// Fraction[i][j] is P(next = Sigs[j] | first = Sigs[i]).
	Fraction [][]float64
	// Counts[i][j] holds raw pair counts.
	Counts [][]int
	Pairs  int
}

// postPSHAxes are the Figure 10 axes.
func postPSHAxes() []core.Signature {
	out := []core.Signature{core.SigNotTampering}
	for _, s := range core.AllSignatures() {
		if s.Stage() == core.StagePostPSH {
			out = append(out, s)
		}
	}
	return out
}

// ComputeOverlapMatrix builds Figure 10 via OverlapAgg, which orders
// each pair's observations by (time, signature) at finalize — the
// result no longer depends on the input slice's order, so shuffled or
// shard-merged record sets produce the identical matrix.
func ComputeOverlapMatrix(recs []Record) OverlapMatrix {
	a := NewOverlapAgg()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Matrix()
}

// DiagonalMass is Figure 10's headline: the average over rows (with
// any observations) of the same-signature repeat probability.
func (m *OverlapMatrix) DiagonalMass() float64 {
	sum, rows := 0.0, 0
	for i := range m.Fraction {
		rowTotal := 0
		for _, c := range m.Counts[i] {
			rowTotal += c
		}
		if rowTotal == 0 {
			continue
		}
		sum += m.Fraction[i][i]
		rows++
	}
	if rows == 0 {
		return 0
	}
	return sum / float64(rows)
}
