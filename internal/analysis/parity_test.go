package analysis

// The parity suite enforces the subsystem's central invariant: every
// finalized table is a pure function of the record multiset. The same
// scenario rendered through (a) the legacy batch functions, (b) the
// streaming pipeline at several worker counts, and (c) independent
// per-PoP aggregation merged in either order must be byte-identical.

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/testlists"
	"tamperdetect/internal/workload"
)

// Slots of the parity aggregator set, in parityAggs order.
const (
	parStages = iota
	parComposition
	parEvidence
	parDistribution
	parASN
	parIPVersion
	parProtocol
	parDomains
	parOverlap
	parStability
	parScanners
	parSeries
	parSpan
)

var parityRegions = []string{"", "CN", "IR", "RU", "US"}

// parityAggs builds a fresh copy of every aggregator the suite
// renders — the full paper surface.
func parityAggs() Aggregator {
	return Multi{
		NewStageStatsAgg(),
		NewCountryBySignatureAgg(),
		NewEvidenceAgg(1000),
		NewSignatureByCountryAgg(),
		NewASNViewAgg(),
		NewIPVersionAgg(50),
		NewProtocolAgg(30),
		NewDomainAgg(),
		NewOverlapAgg(),
		NewStabilityAgg(30),
		NewScannerAgg(),
		NewTimeSeriesAgg(4, nil, AnySignatureMatch),
		NewTimeSpanAgg(),
	}
}

func paritySuite(scen *workload.Scenario) *testlists.Suite {
	return testlists.BuildSuite(scen.Universe, func(d *domains.Domain) bool {
		switch d.Category {
		case domains.AdultThemes, domains.News, domains.SocialNetworks, domains.Chat:
			return true
		default:
			return false
		}
	}, testlists.DefaultBuildConfig())
}

// renderAggs renders every table from a finalized parity set.
func renderAggs(agg Aggregator, scen *workload.Scenario) string {
	a := agg.(Multi)
	var b strings.Builder
	b.WriteString(RenderStageStats(a[parStages].(*StageStatsAgg).Stats()))
	b.WriteString(RenderSignatureComposition(a[parComposition].(*CountryBySignatureAgg).Table()))
	cdfs := a[parEvidence].(*EvidenceAgg).CDFs()
	b.WriteString(RenderEvidenceCDF("ipid", cdfs.IPID, []float64{0, 1, 10, 100, 1000, 10000}))
	b.WriteString(RenderEvidenceCDF("ttl", cdfs.TTL, []float64{0, 1, 5, 20, 60, 150}))
	b.WriteString(RenderCountryDistribution(a[parDistribution].(*SignatureByCountryAgg).Table(), 50))
	asn := a[parASN].(*ASNViewAgg)
	for _, c := range asn.Countries() {
		b.WriteString(RenderASNView(c, asn.View(c)))
	}
	vRows, vSlope := a[parIPVersion].(*IPVersionAgg).Table()
	b.WriteString(RenderVersionComparison(vRows, vSlope))
	pRows, pSlope := a[parProtocol].(*ProtocolAgg).Table()
	b.WriteString(RenderProtocolComparison(pRows, pSlope))
	dom := a[parDomains].(*DomainAgg)
	for _, region := range parityRegions {
		b.WriteString(RenderCategoryTable(dom.CategoryTable(scen.Universe, region, 3), 3))
	}
	b.WriteString(RenderListCoverage(dom.ListCoverage(paritySuite(scen), parityRegions, 3), parityRegions))
	b.WriteString(RenderOverlapMatrix(a[parOverlap].(*OverlapAgg).Matrix()))
	b.WriteString(RenderStability(a[parStability].(*StabilityAgg).Report()))
	b.WriteString(RenderScannerStats(a[parScanners].(*ScannerAgg).Stats()))
	b.WriteString(RenderTimeSeries("series", a[parSeries].(*TimeSeriesAgg).Series()))
	b.WriteString(RenderTimeSpan(a[parSpan].(*TimeSpanAgg).Span()))
	return b.String()
}

// renderBatch renders the identical surface through the legacy batch
// functions over a record slice.
func renderBatch(recs []Record, conns []*capture.Connection, scen *workload.Scenario) string {
	var b strings.Builder
	b.WriteString(RenderStageStats(ComputeStageStats(recs)))
	b.WriteString(RenderSignatureComposition(CountryBySignature(recs)))
	cdfs := ComputeEvidenceCDFs(recs, 1000)
	b.WriteString(RenderEvidenceCDF("ipid", cdfs.IPID, []float64{0, 1, 10, 100, 1000, 10000}))
	b.WriteString(RenderEvidenceCDF("ttl", cdfs.TTL, []float64{0, 1, 5, 20, 60, 150}))
	b.WriteString(RenderCountryDistribution(SignatureByCountry(recs), 50))
	for _, c := range countriesOf(recs) {
		b.WriteString(RenderASNView(c, ASNView(recs, c)))
	}
	vRows, vSlope := IPVersionCompare(recs, 50)
	b.WriteString(RenderVersionComparison(vRows, vSlope))
	pRows, pSlope := ProtocolCompare(recs, 30)
	b.WriteString(RenderProtocolComparison(pRows, pSlope))
	for _, region := range parityRegions {
		b.WriteString(RenderCategoryTable(ComputeCategoryTable(recs, scen.Universe, region, 3), 3))
	}
	b.WriteString(RenderListCoverage(ListCoverageTable(recs, paritySuite(scen), parityRegions, 3), parityRegions))
	b.WriteString(RenderOverlapMatrix(ComputeOverlapMatrix(recs)))
	b.WriteString(RenderStability(StabilityReport(recs, 30)))
	b.WriteString(RenderScannerStats(ComputeScannerStats(recs, conns)))
	b.WriteString(RenderTimeSeries("series", TimeSeries(recs, 4, nil, AnySignatureMatch)))
	b.WriteString(RenderTimeSpan(ComputeTimeSpan(recs)))
	return b.String()
}

// countriesOf lists the distinct non-empty countries, sorted —
// mirroring ASNViewAgg.Countries for the batch render.
func countriesOf(recs []Record) []string {
	set := map[string]bool{}
	for i := range recs {
		if recs[i].Country != "" {
			set[recs[i].Country] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func encodeConns(t testing.TB, conns []*capture.Connection) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// firstDiff locates the first differing line of two renders.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %q\n  b: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestParityStreamingMatchesBatch renders the whole paper surface from
// the streaming pipeline at 1, 4, and 16 workers and requires each to
// be byte-identical with the batch render.
func TestParityStreamingMatchesBatch(t *testing.T) {
	conns, recs, scen := dataset(t)
	want := renderBatch(recs, conns, scen)
	data := encodeConns(t, conns)
	for _, workers := range []int{1, 4, 16} {
		sharded := NewSharded(scen.Geo, workers, parityAggs)
		counts, err := pipeline.Run(context.Background(),
			pipeline.NewReaderSource(bytes.NewReader(data)),
			pipeline.Config{Workers: workers, Observe: sharded.Observe}, nil)
		if err != nil {
			t.Fatalf("workers=%d: pipeline: %v", workers, err)
		}
		if counts.Classified != int64(len(conns)) {
			t.Fatalf("workers=%d: classified %d of %d", workers, counts.Classified, len(conns))
		}
		merged, err := sharded.Merged()
		if err != nil {
			t.Fatalf("workers=%d: merge: %v", workers, err)
		}
		if got := renderAggs(merged, scen); got != want {
			t.Errorf("workers=%d: streaming render diverges from batch at %s",
				workers, firstDiff(got, want))
		}
	}
}

// TestParityPoPMergeMatchesBatch simulates the paper's deployment
// shape: the scenario's clients are split client-affine across 5 PoPs,
// each PoP classifies and aggregates only its own traffic, and the
// per-PoP aggregates merge into the global tables. The merged render —
// in either merge order — must be byte-identical with the single-PoP
// batch render.
func TestParityPoPMergeMatchesBatch(t *testing.T) {
	conns, recs, scen := dataset(t)
	want := renderBatch(recs, conns, scen)

	const pops = 5
	shards := workload.PoPPartition(scen.Specs(), pops)
	cl := core.NewClassifier(core.DefaultConfig())
	// Two independent aggregate sets per PoP, so forward and reverse
	// merges each get un-merged inputs (Merge folds destructively).
	popA := make([]Aggregator, pops)
	popB := make([]Aggregator, pops)
	seen := 0
	for pop, specs := range shards {
		popA[pop], popB[pop] = parityAggs(), parityAggs()
		for _, c := range scen.RunSpecs(specs, 0) {
			if c == nil {
				continue // unsampled
			}
			rec := NewRecord(c, scen.Geo, cl.Classify(c))
			popA[pop].Add(&rec)
			popB[pop].Add(&rec)
			seen++
		}
	}
	if seen != len(conns) {
		t.Fatalf("PoP shards simulated %d connections, full run %d", seen, len(conns))
	}

	forward := parityAggs()
	for pop := 0; pop < pops; pop++ {
		if err := forward.Merge(popA[pop]); err != nil {
			t.Fatalf("forward merge pop %d: %v", pop, err)
		}
	}
	reversed := parityAggs()
	for pop := pops - 1; pop >= 0; pop-- {
		if err := reversed.Merge(popB[pop]); err != nil {
			t.Fatalf("reverse merge pop %d: %v", pop, err)
		}
	}

	if got := renderAggs(forward, scen); got != want {
		t.Errorf("5-PoP merged render diverges from batch at %s", firstDiff(got, want))
	}
	if got := renderAggs(reversed, scen); got != want {
		t.Errorf("reverse-order merged render diverges from batch at %s", firstDiff(got, want))
	}
}
