package analysis

import (
	"bytes"
	"strings"
	"testing"
)

// spanRecords synthesizes one record per (hour, offset) pair.
func spanRecords(times []int64) []Record {
	recs := make([]Record, len(times))
	for i, t := range times {
		recs[i] = Record{Time: t, Hour: int(t / 3600)}
	}
	return recs
}

func TestTimeSpanBasics(t *testing.T) {
	ts := ComputeTimeSpan(spanRecords([]int64{7200, 30, 30, 3601, 0, 7199}))
	want := TimeSpan{Total: 6, MinTime: 0, MaxTime: 7200, DistinctTimes: 5,
		FirstHour: 0, LastHour: 2, HoursSeen: 3}
	if ts != want {
		t.Errorf("span = %+v, want %+v", ts, want)
	}
	if zero := ComputeTimeSpan(nil); zero != (TimeSpan{}) {
		t.Errorf("empty span = %+v", zero)
	}
	if !strings.Contains(RenderTimeSpan(ts), "6 records") {
		t.Errorf("render: %q", RenderTimeSpan(ts))
	}
}

func TestTimeSpanCoversWindow(t *testing.T) {
	// Every hour of a 3-hour window populated at sub-hour offsets.
	full := []int64{5, 100, 3660, 3720, 7200, 10700}
	if err := ComputeTimeSpan(spanRecords(full)).CoversWindow(3); err != nil {
		t.Errorf("full window rejected: %v", err)
	}
	cases := []struct {
		name  string
		times []int64
		hours int
		want  string
	}{
		{"empty", nil, 3, "no records"},
		{"bad window", full, 0, "window"},
		{"late start", []int64{3700, 7300, 10900}, 3, "earliest"},
		{"early end", []int64{5, 3700, 7300}, 4, "latest"},
		{"hour gap", []int64{5, 10, 7300, 7400, 10700}, 3, "2 of 3"},
		{"hour-quantized", []int64{0, 3600, 7200}, 3, "sub-hour"},
	}
	for _, tc := range cases {
		err := ComputeTimeSpan(spanRecords(tc.times)).CoversWindow(tc.hours)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestTimeSpanMerge(t *testing.T) {
	recs := spanRecords([]int64{0, 50, 3660, 3660, 7300, 10999})
	whole := ComputeTimeSpan(recs)
	a, b := NewTimeSpanAgg(), NewTimeSpanAgg()
	for i := range recs[:3] {
		a.Add(&recs[i])
	}
	for i := 3; i < len(recs); i++ {
		b.Add(&recs[i])
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got := a.Span(); got != whole {
		t.Errorf("merged span = %+v, want %+v", got, whole)
	}
	if err := NewTimeSpanAgg().Merge(NewStageStatsAgg()); err == nil {
		t.Error("cross-type merge accepted")
	}
}

func TestTimeSpanSnapshotRoundTrip(t *testing.T) {
	recs := spanRecords([]int64{10999, 0, 50, 3660, 3660, 7300})
	src := NewTimeSpanAgg()
	for i := range recs {
		src.Add(&recs[i])
	}
	frame := snapshotOf(t, src)

	dst := NewTimeSpanAgg()
	if err := RestoreSnapshot(frame, dst); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if got, want := dst.Span(), src.Span(); got != want {
		t.Errorf("restored span = %+v, want %+v", got, want)
	}
	if re := snapshotOf(t, dst); !bytes.Equal(re, frame) {
		t.Error("re-encoded snapshot differs")
	}

	// Restore into non-empty state folds in, exactly as Merge.
	extra := spanRecords([]int64{99, 3660})
	merged := NewTimeSpanAgg()
	for i := range extra {
		merged.Add(&extra[i])
	}
	if err := RestoreSnapshot(frame, merged); err != nil {
		t.Fatalf("RestoreSnapshot into non-empty: %v", err)
	}
	wantAll := ComputeTimeSpan(append(append([]Record(nil), recs...), extra...))
	if got := merged.Span(); got != wantAll {
		t.Errorf("restore-as-merge span = %+v, want %+v", got, wantAll)
	}

	// Truncations never decode cleanly.
	for cut := 0; cut < len(frame); cut++ {
		if err := RestoreSnapshot(frame[:cut], NewTimeSpanAgg()); err == nil {
			t.Fatalf("cut=%d: truncated snapshot decoded cleanly", cut)
		}
	}
}
