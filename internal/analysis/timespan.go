package analysis

// Temporal-extent aggregation. TimeSpanAgg tracks which first-packet
// seconds a dataset actually covers, so the virtual-time determinism
// gate can assert the paper's longitudinal property end to end: a
// 14-day scenario generated in seconds of wall-clock still carries
// capture timestamps spanning the whole virtual window at 1-second
// resolution. Like every aggregator it is a pure function of the
// record multiset, so the check holds across worker counts and PoP
// merges.

import (
	"fmt"
	"sort"
)

// TimeSpan is TimeSpanAgg's finalized summary.
type TimeSpan struct {
	Total         int   // records observed
	MinTime       int64 // earliest first-packet timestamp, seconds from scenario start
	MaxTime       int64 // latest first-packet timestamp
	DistinctTimes int   // distinct first-packet seconds
	FirstHour     int   // MinTime's scenario hour
	LastHour      int   // MaxTime's scenario hour
	HoursSeen     int   // distinct scenario hours with at least one record
}

// CoversWindow reports whether the span covers an hours-hour virtual
// window end to end at sub-hour resolution: records in every scenario
// hour from 0 through hours-1, and strictly more distinct seconds
// than hours (timestamps quantized to hour boundaries would have
// exactly one distinct second per hour). A nil return is the
// determinism gate's pass condition.
func (ts TimeSpan) CoversWindow(hours int) error {
	if hours <= 0 {
		return fmt.Errorf("analysis: window of %d hours", hours)
	}
	if ts.Total == 0 {
		return fmt.Errorf("analysis: no records in a %d-hour window", hours)
	}
	if ts.FirstHour != 0 {
		return fmt.Errorf("analysis: earliest record at hour %d, want hour 0", ts.FirstHour)
	}
	if ts.LastHour != hours-1 {
		return fmt.Errorf("analysis: latest record at hour %d, want hour %d", ts.LastHour, hours-1)
	}
	if ts.HoursSeen != hours {
		return fmt.Errorf("analysis: records in %d of %d hours", ts.HoursSeen, hours)
	}
	if ts.DistinctTimes <= hours {
		return fmt.Errorf("analysis: %d distinct timestamps over %d hours — no sub-hour resolution", ts.DistinctTimes, hours)
	}
	return nil
}

// TimeSpanAgg incrementally computes TimeSpan. It keeps a count per
// distinct first-packet second, which makes Merge a plain union and
// the snapshot an exact carrier of the temporal profile.
type TimeSpanAgg struct {
	total int
	secs  map[int64]int
}

// NewTimeSpanAgg returns an empty temporal-extent aggregator.
func NewTimeSpanAgg() *TimeSpanAgg {
	return &TimeSpanAgg{secs: map[int64]int{}}
}

func (a *TimeSpanAgg) Add(r *Record) {
	a.total++
	a.secs[r.Time]++
}

func (a *TimeSpanAgg) Merge(other Aggregator) error {
	o, ok := other.(*TimeSpanAgg)
	if !ok {
		return mismatch(a, other)
	}
	a.total += o.total
	for t, n := range o.secs {
		a.secs[t] += n
	}
	return nil
}

// Span finalizes the temporal summary.
func (a *TimeSpanAgg) Span() TimeSpan {
	ts := TimeSpan{Total: a.total, DistinctTimes: len(a.secs)}
	if len(a.secs) == 0 {
		return ts
	}
	first := true
	hours := map[int64]bool{}
	for t := range a.secs {
		if first || t < ts.MinTime {
			ts.MinTime = t
		}
		if first || t > ts.MaxTime {
			ts.MaxTime = t
		}
		first = false
		hours[t/3600] = true
	}
	ts.FirstHour = int(ts.MinTime / 3600)
	ts.LastHour = int(ts.MaxTime / 3600)
	ts.HoursSeen = len(hours)
	return ts
}

func (a *TimeSpanAgg) Finalize() any { return a.Span() }

// sortedTimes lists the distinct seconds in increasing order, for the
// deterministic snapshot encoding.
func (a *TimeSpanAgg) sortedTimes() []int64 {
	keys := make([]int64, 0, len(a.secs))
	for t := range a.secs {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// ComputeTimeSpan is the batch form: the span of a record slice.
func ComputeTimeSpan(recs []Record) TimeSpan {
	a := NewTimeSpanAgg()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Span()
}

// RenderTimeSpan prints the temporal extent summary.
func RenderTimeSpan(ts TimeSpan) string {
	return fmt.Sprintf("time span: %d records over seconds [%d, %d], %d distinct timestamps, hours %d..%d (%d covered)\n",
		ts.Total, ts.MinTime, ts.MaxTime, ts.DistinctTimes, ts.FirstHour, ts.LastHour, ts.HoursSeen)
}
