package analysis

// Property tests for the Merge algebra: every aggregator's Merge must
// be associative and commutative with the empty aggregator as
// identity, because multi-PoP rollup gives no control over how many
// shards exist or the order they arrive. Equality is judged on
// Finalize() — the only state a caller can see.

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"tamperdetect/internal/core"
)

// mergeCase is one aggregator type under algebra test.
type mergeCase struct {
	name  string
	fresh func() Aggregator
}

func mergeCases() []mergeCase {
	return []mergeCase{
		{"stage-stats", func() Aggregator { return NewStageStatsAgg() }},
		{"signature-by-country", func() Aggregator { return NewSignatureByCountryAgg() }},
		{"country-by-signature", func() Aggregator { return NewCountryBySignatureAgg() }},
		{"asn-view", func() Aggregator { return NewASNViewAgg() }},
		{"time-series", func() Aggregator { return NewTimeSeriesAgg(4, nil, AnySignatureMatch) }},
		{"ip-version", func() Aggregator { return NewIPVersionAgg(5) }},
		{"protocol", func() Aggregator { return NewProtocolAgg(5) }},
		{"evidence", func() Aggregator { return NewEvidenceAgg(64) }},
		{"scanner", func() Aggregator { return NewScannerAgg() }},
		{"domains", func() Aggregator { return NewDomainAgg() }},
		{"overlap", func() Aggregator { return NewOverlapAgg() }},
		{"stability", func() Aggregator { return NewStabilityAgg(10) }},
		{"robustness", func() Aggregator { return NewRobustnessAgg("clean", 0.01) }},
		{"time-span", func() Aggregator { return NewTimeSpanAgg() }},
		{"multi", func() Aggregator {
			return Multi{NewStageStatsAgg(), NewOverlapAgg(), NewEvidenceAgg(16)}
		}},
	}
}

// fill adds every record to a fresh aggregator.
func fill(fresh func() Aggregator, recs []Record) Aggregator {
	a := fresh()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a
}

func mustMerge(t testing.TB, dst, src Aggregator) Aggregator {
	t.Helper()
	if err := dst.Merge(src); err != nil {
		t.Fatalf("merge: %v", err)
	}
	return dst
}

// TestMergeAlgebra checks, for every aggregator over a real record
// population split three ways:
//
//	associativity:  (A ⊕ B) ⊕ C == A ⊕ (B ⊕ C)
//	commutativity:  B ⊕ A      == A ⊕ B ⊕ … (same multiset)
//	identity:       A ⊕ empty  == A
func TestMergeAlgebra(t *testing.T) {
	_, all, _ := dataset(t)
	recs := all[:3000]
	cutB, cutC := len(recs)/3, 2*len(recs)/3
	a, b, c := recs[:cutB], recs[cutB:cutC], recs[cutC:]

	for _, tc := range mergeCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			whole := fill(tc.fresh, recs).Finalize()

			// (A ⊕ B) ⊕ C
			left := mustMerge(t, mustMerge(t, fill(tc.fresh, a), fill(tc.fresh, b)), fill(tc.fresh, c))
			if got := left.Finalize(); !reflect.DeepEqual(got, whole) {
				t.Errorf("(A+B)+C != whole")
			}
			// A ⊕ (B ⊕ C)
			right := mustMerge(t, fill(tc.fresh, a), mustMerge(t, fill(tc.fresh, b), fill(tc.fresh, c)))
			if got := right.Finalize(); !reflect.DeepEqual(got, whole) {
				t.Errorf("A+(B+C) != whole")
			}
			// C ⊕ B ⊕ A
			rev := mustMerge(t, mustMerge(t, fill(tc.fresh, c), fill(tc.fresh, b)), fill(tc.fresh, a))
			if got := rev.Finalize(); !reflect.DeepEqual(got, whole) {
				t.Errorf("C+B+A != whole")
			}
			// A ⊕ empty, empty ⊕ A
			if got := mustMerge(t, fill(tc.fresh, a), tc.fresh()).Finalize(); !reflect.DeepEqual(got, fill(tc.fresh, a).Finalize()) {
				t.Errorf("A+empty != A")
			}
			if got := mustMerge(t, tc.fresh(), fill(tc.fresh, a)).Finalize(); !reflect.DeepEqual(got, fill(tc.fresh, a).Finalize()) {
				t.Errorf("empty+A != A")
			}
		})
	}
}

// TestMergeRejectsMismatches checks Merge fails loudly instead of
// silently corrupting state.
func TestMergeRejectsMismatches(t *testing.T) {
	if err := NewStageStatsAgg().Merge(NewOverlapAgg()); err == nil {
		t.Error("cross-type merge accepted")
	}
	if err := NewRobustnessAgg("clean", 0).Merge(NewRobustnessAgg("lossy", 0.1)); err == nil {
		t.Error("cross-grade robustness merge accepted")
	}
	if err := NewTimeSeriesAgg(4, nil, AnySignatureMatch).Merge(NewTimeSeriesAgg(6, nil, AnySignatureMatch)); err == nil {
		t.Error("cross-bucket-width series merge accepted")
	}
	if err := (Multi{NewStageStatsAgg()}).Merge(Multi{NewOverlapAgg()}); err == nil {
		t.Error("element-mismatched Multi merge accepted")
	}
	if err := (Multi{NewStageStatsAgg()}).Merge(Multi{NewStageStatsAgg(), NewOverlapAgg()}); err == nil {
		t.Error("length-mismatched Multi merge accepted")
	}
}

// TestOverlapMatrixOrderIndependence is the regression test for the
// order-dependence bug the aggregator refactor fixed: the overlap
// matrix used to depend on record order (transitions were counted in
// input order); it must now be a pure function of the multiset.
func TestOverlapMatrixOrderIndependence(t *testing.T) {
	_, recs, _ := dataset(t)
	want := ComputeOverlapMatrix(recs)
	rng := rand.New(rand.NewPCG(11, 17))
	shuffled := append([]Record(nil), recs...)
	for pass := 0; pass < 3; pass++ {
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := ComputeOverlapMatrix(shuffled)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: overlap matrix changed under input shuffle", pass)
		}
	}
}

// fuzzRecord deterministically synthesizes one record from three fuzz
// bytes, spreading values across every aggregation key.
func fuzzRecord(b1, b2, b3 byte) Record {
	countries := []string{"", "CN", "IR", "RU", "US", "DE"}
	ports := []uint16{80, 443, 8080}
	sig := core.Signature(int(b1) % int(core.NumSignatures))
	r := Record{
		Res: core.Result{
			Signature:        sig,
			Stage:            sig.Stage(),
			PossiblyTampered: b1&1 == 0,
			Domain:           fmt.Sprintf("d%d.example", b3%8),
			Protocol:         core.Protocol(int(b2) % 3),
		},
		Country:   countries[int(b2)%len(countries)],
		ASN:       uint32(b3 % 7),
		IPVersion: 4 + 2*int(b2&1),
		Hour:      int(b3 % 48),
		Time:      int64(b3%48)*3600 + int64(b2),
		SrcKey:    fmt.Sprintf("10.0.%d.%d", b2%4, b3%4),
		SrcPort:   uint16(b1)<<8 | uint16(b2),
		DstPort:   ports[int(b1)%len(ports)],
	}
	r.Res.Evidence.IPIDValid = r.IPVersion == 4
	r.Res.Evidence.MaxIPIDDelta = int(b1) * int(b2)
	r.Res.Evidence.MaxTTLDelta = int(b3)
	r.Res.Evidence.HighTTL = b3&2 == 0
	r.Res.Evidence.NoSYNOptions = b3&4 == 0
	r.Res.Evidence.ZMapFingerprint = b3&8 == 0
	r.Res.Evidence.SYNPayloadLen = int(b2 & 3)
	return r
}

// FuzzMergeAssociativity fuzzes the Merge algebra: arbitrary record
// populations split at arbitrary points must finalize identically no
// matter how the shards associate.
func FuzzMergeAssociativity(f *testing.F) {
	f.Add([]byte{0x01, 0x80, 0xff, 0x10, 0x33, 0x77, 0x02, 0x40, 0xaa})
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs := make([]Record, 0, len(data)/3)
		for i := 0; i+2 < len(data); i += 3 {
			recs = append(recs, fuzzRecord(data[i], data[i+1], data[i+2]))
		}
		// Split points derived from the data itself.
		cutB, cutC := 0, 0
		if len(recs) > 0 {
			cutB = int(data[0]) % (len(recs) + 1)
			cutC = cutB + int(data[len(data)-1])%(len(recs)-cutB+1)
		}
		a, b, c := recs[:cutB], recs[cutB:cutC], recs[cutC:]
		for _, tc := range mergeCases() {
			whole := fill(tc.fresh, recs).Finalize()
			left := mustMerge(t, mustMerge(t, fill(tc.fresh, a), fill(tc.fresh, b)), fill(tc.fresh, c))
			if got := left.Finalize(); !reflect.DeepEqual(got, whole) {
				t.Fatalf("%s: (A+B)+C != whole", tc.name)
			}
			right := mustMerge(t, fill(tc.fresh, a), mustMerge(t, fill(tc.fresh, b), fill(tc.fresh, c)))
			if got := right.Finalize(); !reflect.DeepEqual(got, whole) {
				t.Fatalf("%s: A+(B+C) != whole", tc.name)
			}
		}
	})
}
