package analysis

// Aggregators over (country, domain) keys — Tables 2 and 3, the §5.5
// observation set, the Figure 10 overlap matrix — plus the §6
// stability report and the robustness false-positive matrix. See
// aggregate.go for the Aggregator contract and the multiset
// determinism invariant.

import (
	"fmt"
	"sort"

	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/stats"
	"tamperdetect/internal/testlists"
)

// ---------------------------------------------------------------------
// Tables 2, 3 and §5.5: per-(country, domain) sighting/match counts

// DomainCount is one (country, domain) row of the DomainAgg table.
type DomainCount struct {
	Country string
	Domain  string
	// Sightings counts records naming the domain; Matches counts the
	// Post-PSH/Post-Data tampering subset.
	Sightings int
	Matches   int
}

type domKey struct{ country, domain string }

// DomainAgg incrementally counts per-(country, domain) sightings and
// Post-PSH tampering matches — the single state behind
// ComputeCategoryTable (Table 2), TamperedDomains (§5.5), and
// ListCoverageTable (Table 3), each a finalize over the same counts.
type DomainAgg struct {
	counts map[domKey]*DomainCount
}

// NewDomainAgg returns an empty per-domain aggregator.
func NewDomainAgg() *DomainAgg {
	return &DomainAgg{counts: map[domKey]*DomainCount{}}
}

func (a *DomainAgg) Add(r *Record) {
	if r.Res.Domain == "" {
		return
	}
	k := domKey{country: r.Country, domain: r.Res.Domain}
	c := a.counts[k]
	if c == nil {
		c = &DomainCount{Country: k.country, Domain: k.domain}
		a.counts[k] = c
	}
	c.Sightings++
	st := r.Res.Signature.Stage()
	if r.Res.Signature.IsTampering() && (st == core.StagePostPSH || st == core.StagePostData) {
		c.Matches++
	}
}

func (a *DomainAgg) Merge(other Aggregator) error {
	o, ok := other.(*DomainAgg)
	if !ok {
		return mismatch(a, other)
	}
	for k, oc := range o.counts {
		c := a.counts[k]
		if c == nil {
			cp := *oc
			a.counts[k] = &cp
			continue
		}
		c.Sightings += oc.Sightings
		c.Matches += oc.Matches
	}
	return nil
}

// Finalize returns the per-(country, domain) counts sorted by
// (country, domain).
func (a *DomainAgg) Finalize() any {
	out := make([]DomainCount, 0, len(a.counts))
	for _, c := range a.counts {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Country != out[j].Country {
			return out[i].Country < out[j].Country
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// regionCounts folds the per-country counts down to per-domain counts
// for one region ("" means global).
func (a *DomainAgg) regionCounts(region string) (matches, sightings map[string]int) {
	matches = map[string]int{}
	sightings = map[string]int{}
	for k, c := range a.counts {
		if region != "" && k.country != region {
			continue
		}
		sightings[k.domain] += c.Sightings
		matches[k.domain] += c.Matches
	}
	return matches, sightings
}

// CategoryTable finalizes Table 2 for one region ("" means global). A
// domain counts as tampered when it has at least minMatches Post-PSH
// signature matches from the region (the paper uses 100 per day at CDN
// scale; scale it to the dataset size).
func (a *DomainAgg) CategoryTable(u *domains.Universe, region string, minMatches int) CategoryTable {
	if minMatches < 1 {
		minMatches = 1
	}
	matches, sightings := a.regionCounts(region)
	// Both the tampered set (numerator) and the observed set
	// (denominator) use the same sighting threshold, mirroring the
	// paper's "domains observed to be accessed" at its larger scale.
	seen := map[string]bool{}
	for d, n := range sightings {
		if n >= minMatches {
			seen[d] = true
		}
	}
	tampered := map[string]bool{}
	for d, n := range matches {
		if n >= minMatches {
			tampered[d] = true
		}
	}
	var tamperedConns [domains.NumCategories]int
	var seenDomains [domains.NumCategories]int
	var tamperedDomains [domains.NumCategories]int
	total := 0
	for d := range seen {
		dom := u.ByName(d)
		if dom == nil {
			continue
		}
		seenDomains[dom.Category]++
		if tampered[d] {
			tamperedDomains[dom.Category]++
		}
	}
	for d, n := range matches {
		if !tampered[d] {
			continue
		}
		dom := u.ByName(d)
		if dom == nil {
			continue
		}
		tamperedConns[dom.Category] += n
		total += n
	}
	t := CategoryTable{Region: region, TamperedTotal: total}
	for _, c := range domains.AllCategories() {
		if tamperedConns[c] == 0 {
			continue
		}
		t.Rows = append(t.Rows, CategoryRow{
			Category:      c,
			TamperedShare: stats.Ratio(tamperedConns[c], total),
			Coverage:      stats.Ratio(tamperedDomains[c], seenDomains[c]),
			TamperedConns: tamperedConns[c],
		})
	}
	sort.Slice(t.Rows, func(i, j int) bool {
		if t.Rows[i].TamperedShare != t.Rows[j].TamperedShare {
			return t.Rows[i].TamperedShare > t.Rows[j].TamperedShare
		}
		return t.Rows[i].Category < t.Rows[j].Category
	})
	return t
}

// TamperedDomains finalizes the §5.5 observation set: domains with at
// least minMatches Post-PSH matches from the region, sorted.
func (a *DomainAgg) TamperedDomains(region string, minMatches int) []string {
	if minMatches < 1 {
		minMatches = 1
	}
	matches, _ := a.regionCounts(region)
	var out []string
	for d, n := range matches {
		if n >= minMatches {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// ListCoverage finalizes Table 3 over the given regions ("" means
// global).
func (a *DomainAgg) ListCoverage(suite *testlists.Suite, regions []string, minMatches int) []ListCoverageRow {
	tamperedByRegion := map[string][]string{}
	for _, reg := range regions {
		tamperedByRegion[reg] = a.TamperedDomains(reg, minMatches)
	}
	lists := suite.Lists()
	// Union rows, as in the table's last four rows.
	curated := testlists.Union("Union: Citizenlab + Greatfire", suite.CitizenLab, suite.CitizenLabGlobal, suite.GreatfireAll, suite.Greatfire30d)
	all := testlists.Union("Union: All lists", append([]*testlists.List{curated}, lists...)...)
	rows := make([]ListCoverageRow, 0, len(lists)+4)
	addRow := func(l *testlists.List, substring bool, nameOverride string) {
		row := ListCoverageRow{
			ListName:  l.Name,
			Entries:   l.Len(),
			Exact:     map[string]float64{},
			Substring: map[string]float64{},
		}
		if nameOverride != "" {
			row.ListName = nameOverride
		}
		for _, reg := range regions {
			td := tamperedByRegion[reg]
			row.Exact[reg] = testlists.Coverage(l, td, false)
			if substring {
				row.Substring[reg] = testlists.Coverage(l, td, true)
			}
		}
		rows = append(rows, row)
	}
	for _, l := range lists {
		addRow(l, false, "")
	}
	addRow(curated, false, "")
	addRow(all, false, "")
	addRow(curated, true, "Substring: Citizenlab + Greatfire")
	addRow(all, true, "Substring: All lists")
	return rows
}

// ---------------------------------------------------------------------
// Figure 10: signature overlap

type pairKey struct{ src, domain string }

type pairObs struct {
	time int64
	sig  core.Signature
}

// OverlapAgg incrementally computes ComputeOverlapMatrix. It retains
// one (time, signature) observation per axis-relevant record of every
// (client, domain) pair and sorts each pair's observations by
// (time, signature) at finalize, so the transition counts are a pure
// function of the record multiset — the batch path's silent dependence
// on per-pair temporal input order is gone, and unordered sinks or
// shuffled inputs produce the identical matrix. State is bounded by
// the number of domain-visible observations on the Figure 10 axes
// (Not-Tampering and Post-PSH signatures), not by capture size.
type OverlapAgg struct {
	axisIdx map[core.Signature]int
	obs     map[pairKey][]pairObs
}

// NewOverlapAgg returns an empty Figure 10 aggregator.
func NewOverlapAgg() *OverlapAgg {
	a := &OverlapAgg{axisIdx: map[core.Signature]int{}, obs: map[pairKey][]pairObs{}}
	for i, s := range postPSHAxes() {
		a.axisIdx[s] = i
	}
	return a
}

func (a *OverlapAgg) Add(r *Record) {
	if r.Res.Domain == "" {
		return
	}
	if _, ok := a.axisIdx[r.Res.Signature]; !ok {
		return
	}
	k := pairKey{src: r.SrcKey, domain: r.Res.Domain}
	a.obs[k] = append(a.obs[k], pairObs{time: r.Time, sig: r.Res.Signature})
}

func (a *OverlapAgg) Merge(other Aggregator) error {
	o, ok := other.(*OverlapAgg)
	if !ok {
		return mismatch(a, other)
	}
	for k, oo := range o.obs {
		a.obs[k] = append(a.obs[k], oo...)
	}
	return nil
}

// Matrix finalizes Figure 10. Each pair's observations are ordered by
// (time, signature) — the canonical temporal order, with the signature
// tie-break covering the 1-second timestamp granularity — and adjacent
// observations contribute one transition.
func (a *OverlapAgg) Matrix() OverlapMatrix {
	axes := postPSHAxes()
	n := len(axes)
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	pairs := 0
	for _, obs := range a.obs {
		sort.Slice(obs, func(i, j int) bool {
			if obs[i].time != obs[j].time {
				return obs[i].time < obs[j].time
			}
			return obs[i].sig < obs[j].sig
		})
		for i := 1; i < len(obs); i++ {
			counts[a.axisIdx[obs[i-1].sig]][a.axisIdx[obs[i].sig]]++
			pairs++
		}
	}
	frac := make([][]float64, n)
	for i := range frac {
		frac[i] = make([]float64, n)
		rowTotal := 0
		for j := range counts[i] {
			rowTotal += counts[i][j]
		}
		for j := range counts[i] {
			frac[i][j] = stats.Ratio(counts[i][j], rowTotal)
		}
	}
	return OverlapMatrix{Sigs: axes, Fraction: frac, Counts: counts, Pairs: pairs}
}

func (a *OverlapAgg) Finalize() any { return a.Matrix() }

// ---------------------------------------------------------------------
// §6 stability

type hourCount struct {
	all   int
	total int
	sig   [core.NumSignatures]int
}

// StabilityAgg incrementally computes StabilityReport. The batch path
// needs two passes (the half-window split depends on the maximum hour
// seen); the aggregator instead keeps per-(country, hour) signature
// counts and folds them into halves at finalize.
type StabilityAgg struct {
	minPerHalf int
	maxHour    int
	any        bool
	byCountry  map[string]map[int]*hourCount
}

// NewStabilityAgg returns an empty §6 aggregator with the given
// per-half inclusion threshold.
func NewStabilityAgg(minPerHalf int) *StabilityAgg {
	return &StabilityAgg{minPerHalf: minPerHalf, byCountry: map[string]map[int]*hourCount{}}
}

func (a *StabilityAgg) Add(r *Record) {
	a.any = true
	if r.Hour > a.maxHour {
		a.maxHour = r.Hour
	}
	if r.Country == "" {
		return
	}
	hours := a.byCountry[r.Country]
	if hours == nil {
		hours = map[int]*hourCount{}
		a.byCountry[r.Country] = hours
	}
	h := hours[r.Hour]
	if h == nil {
		h = &hourCount{}
		hours[r.Hour] = h
	}
	h.all++
	if r.Res.Signature.IsTampering() {
		h.sig[r.Res.Signature]++
		h.total++
	}
}

func (a *StabilityAgg) Merge(other Aggregator) error {
	o, ok := other.(*StabilityAgg)
	if !ok {
		return mismatch(a, other)
	}
	if o.minPerHalf != a.minPerHalf {
		return fmt.Errorf("analysis: cannot merge minPerHalf=%d into minPerHalf=%d",
			o.minPerHalf, a.minPerHalf)
	}
	a.any = a.any || o.any
	if o.maxHour > a.maxHour {
		a.maxHour = o.maxHour
	}
	for c, ohours := range o.byCountry {
		hours := a.byCountry[c]
		if hours == nil {
			hours = map[int]*hourCount{}
			a.byCountry[c] = hours
		}
		for hr, oh := range ohours {
			h := hours[hr]
			if h == nil {
				h = &hourCount{}
				hours[hr] = h
			}
			h.all += oh.all
			h.total += oh.total
			for sig := range h.sig {
				h.sig[sig] += oh.sig[sig]
			}
		}
	}
	return nil
}

// Report finalizes the §6 comparison, sorted by ascending similarity.
func (a *StabilityAgg) Report() []StabilityRow {
	if !a.any {
		return nil
	}
	split := a.maxHour / 2
	var out []StabilityRow
	for country, hours := range a.byCountry {
		var sig [2][core.NumSignatures]int
		var total, all [2]int
		for hr, h := range hours {
			half := 0
			if hr > split {
				half = 1
			}
			all[half] += h.all
			total[half] += h.total
			for s := range h.sig {
				sig[half][s] += h.sig[s]
			}
		}
		if total[0] < a.minPerHalf || total[1] < a.minPerHalf {
			continue
		}
		row := StabilityRow{
			Country:     country,
			FirstTotal:  total[0],
			SecondTotal: total[1],
			Cosine:      cosine(sig[0][:], sig[1][:]),
		}
		r0 := stats.Ratio(total[0], all[0])
		r1 := stats.Ratio(total[1], all[1])
		if r1 > r0 {
			row.RateDelta = r1 - r0
		} else {
			row.RateDelta = r0 - r1
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cosine != out[j].Cosine {
			return out[i].Cosine < out[j].Cosine
		}
		return out[i].Country < out[j].Country
	})
	return out
}

func (a *StabilityAgg) Finalize() any { return a.Report() }

// ---------------------------------------------------------------------
// Robustness false-positive matrix

// RobustnessAgg incrementally computes one impairment grade's cell of
// the robustness matrix (TallyRobustness). Merge models the same grade
// observed at several PoPs, so grade labels must match.
type RobustnessAgg struct {
	grade         string
	effectiveLoss float64
	total         int
	fps           [core.NumSignatures]int
	anomalous     int
	notTampering  int
}

// NewRobustnessAgg returns an empty aggregator for one grade.
func NewRobustnessAgg(grade string, effectiveLoss float64) *RobustnessAgg {
	return &RobustnessAgg{grade: grade, effectiveLoss: effectiveLoss}
}

func (a *RobustnessAgg) Add(r *Record) {
	a.total++
	switch sig := r.Res.Signature; {
	case sig.IsTampering():
		a.fps[sig]++
	case sig == core.SigOtherAnomalous:
		a.anomalous++
	default:
		a.notTampering++
	}
}

func (a *RobustnessAgg) Merge(other Aggregator) error {
	o, ok := other.(*RobustnessAgg)
	if !ok {
		return mismatch(a, other)
	}
	if o.grade != a.grade {
		return fmt.Errorf("analysis: cannot merge robustness grade %q into %q", o.grade, a.grade)
	}
	a.total += o.total
	a.anomalous += o.anomalous
	a.notTampering += o.notTampering
	for sig := range a.fps {
		a.fps[sig] += o.fps[sig]
	}
	return nil
}

// Grade finalizes the cell.
func (a *RobustnessAgg) Grade() RobustnessGrade {
	g := RobustnessGrade{
		Grade:          a.grade,
		EffectiveLoss:  a.effectiveLoss,
		Total:          a.total,
		FalsePositives: make(map[core.Signature]int),
		Anomalous:      a.anomalous,
		NotTampering:   a.notTampering,
	}
	for sig, n := range a.fps {
		if n > 0 {
			g.FalsePositives[core.Signature(sig)] = n
		}
	}
	return g
}

func (a *RobustnessAgg) Finalize() any { return a.Grade() }
