package analysis

// Sharded adapts an Aggregator factory to the pipeline's per-worker
// Observe hook: one shard (and one geo cache) per worker, no locks on
// the hot path, a single Merge pass after the run. This is the
// paper's deployment shape in miniature — each PoP (here: worker)
// aggregates the traffic it happens to see, and the merged result is
// the global report. Because every aggregator is a pure function of
// its record multiset, the nondeterministic record→worker assignment
// cannot change a byte of the merged output.

import (
	"fmt"

	"tamperdetect/internal/geo"
	"tamperdetect/internal/pipeline"
)

// Sharded accumulates pipeline output into per-worker aggregator
// shards.
type Sharded struct {
	shards []Aggregator
	caches []*geo.Cache
	merged bool
}

// NewSharded builds one fresh aggregator and one geo cache per worker.
// workers must equal the pipeline's resolved worker count (Observe
// panics on an out-of-range index otherwise); fresh must return a new
// identically-parameterised Aggregator on every call.
func NewSharded(db *geo.DB, workers int, fresh func() Aggregator) *Sharded {
	if workers < 1 {
		workers = 1
	}
	s := &Sharded{
		shards: make([]Aggregator, workers),
		caches: make([]*geo.Cache, workers),
	}
	for i := range s.shards {
		s.shards[i] = fresh()
		s.caches[i] = geo.NewCache(db)
	}
	return s
}

// Observe is the pipeline.Config.Observe hook: it builds the
// aggregation record with the worker's private geo cache and adds it
// to the worker's shard. Per the Observe contract this runs
// sequentially per worker and concurrently across workers, which is
// exactly the isolation the shards provide. Errored items (classifier
// panics) carry no classification and are skipped.
func (s *Sharded) Observe(worker int, it pipeline.Item) {
	if it.Err != nil {
		return
	}
	rec := NewRecord(it.Conn, s.caches[worker], it.Res)
	s.shards[worker].Add(&rec)
}

// Merged folds every shard into one aggregator and returns it. Call
// it once, after pipeline.Run has returned (never concurrently with
// Observe): the shards merge destructively into shard 0, so a second
// call would double-count and is rejected.
func (s *Sharded) Merged() (Aggregator, error) {
	if s.merged {
		return nil, fmt.Errorf("analysis: Sharded.Merged called twice")
	}
	s.merged = true
	for _, sh := range s.shards[1:] {
		if err := s.shards[0].Merge(sh); err != nil {
			return nil, err
		}
	}
	return s.shards[0], nil
}
