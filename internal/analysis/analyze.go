// Package analysis aggregates classified connections into the paper's
// tables and figures: per-country and per-AS tampering rates (Figures
// 1, 4, 5), longitudinal series (Figures 6, 8, 9), IP-version and
// protocol comparisons (Figure 7), category and test-list tables
// (Tables 2, 3), evidence CDFs (Figures 2, 3), the signature-overlap
// matrix (Figure 10), and the §4.1/§4.2 summary statistics.
package analysis

import (
	"runtime"
	"sort"
	"sync"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/geo"
	"tamperdetect/internal/stats"
)

// Record is one classified connection with its aggregation keys.
type Record struct {
	Res       core.Result
	Country   string
	ASN       uint32
	IPVersion int
	// Hour is the scenario hour of the first packet (capture
	// timestamps are seconds from scenario start).
	Hour int
	// SrcKey identifies the client address for overlap analysis.
	SrcKey string
}

// NewRecord builds one aggregation record from a classified
// connection, attaching country/AS via the geo database — exactly the
// paper's pipeline: aggregation keys come only from the source
// address. It is the single-record form of Analyze, used by streaming
// classification sinks.
func NewRecord(c *capture.Connection, db *geo.DB, res core.Result) Record {
	rec := Record{
		Res:       res,
		IPVersion: c.IPVersion,
		SrcKey:    c.SrcIP.String(),
	}
	if as := db.Lookup(c.SrcIP); as != nil {
		rec.Country = as.Country
		rec.ASN = as.ASN
	}
	if len(c.Packets) > 0 {
		rec.Hour = int(c.Packets[0].Timestamp / 3600)
	}
	return rec
}

// Analyze classifies every connection (in parallel) and attaches
// country/AS via the geo database.
func Analyze(conns []*capture.Connection, db *geo.DB, cl *core.Classifier, workers int) []Record {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]Record, len(conns))
	var wg sync.WaitGroup
	ch := make(chan int, 256)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				c := conns[i]
				out[i] = NewRecord(c, db, cl.Classify(c))
			}
		}()
	}
	for i := range conns {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}

// StageStats is the §4.1 headline breakdown (Table 1's narrative).
type StageStats struct {
	Total            int
	PossiblyTampered int
	// StageCounts counts possibly-tampered connections per stage
	// (StageOther collects the uncovered remainder).
	StageCounts [core.NumStages]int
	// StageMatched counts, per stage, those matching a Table 1
	// signature.
	StageMatched [core.NumStages]int
	// Matched is the total matching any signature.
	Matched int
}

// PossiblyTamperedShare is the §4.1 25.7% statistic.
func (s *StageStats) PossiblyTamperedShare() float64 {
	return stats.Ratio(s.PossiblyTampered, s.Total)
}

// SignatureCoverage is the §4.1 86.9% statistic: the share of possibly
// tampered connections matching one of the 19 signatures.
func (s *StageStats) SignatureCoverage() float64 {
	return stats.Ratio(s.Matched, s.PossiblyTampered)
}

// StageShare is a stage's share of possibly-tampered connections
// (43.2% / 16.1% / 5.3% / 33.0% / 2.3% in the paper).
func (s *StageStats) StageShare(st core.Stage) float64 {
	return stats.Ratio(s.StageCounts[st], s.PossiblyTampered)
}

// StageCoverage is the share of a stage's connections matched by a
// signature (99.5% / 98.7% / 97.9% / 69.2%).
func (s *StageStats) StageCoverage(st core.Stage) float64 {
	return stats.Ratio(s.StageMatched[st], s.StageCounts[st])
}

// ComputeStageStats builds the §4.1 breakdown. The stage of unmatched
// possibly-tampered connections is derived from how far the canonical
// prefix got: the classifier reports StageOther for those, except
// Post-Data timeouts which it attributes to Post-Data with no match —
// here we count by the connection's classified stage.
func ComputeStageStats(recs []Record) StageStats {
	var s StageStats
	s.Total = len(recs)
	for i := range recs {
		r := &recs[i].Res
		if !r.PossiblyTampered {
			continue
		}
		s.PossiblyTampered++
		st := r.Signature.Stage()
		if r.Signature == core.SigOtherAnomalous {
			// Attribute to the prefix stage when known (Post-Data
			// timeouts), else Other.
			st = r.Stage
			if st == core.StageNone {
				st = core.StageOther
			}
		}
		s.StageCounts[st]++
		if r.Signature.IsTampering() {
			s.StageMatched[st]++
			s.Matched++
		}
	}
	return s
}

// CountryDistribution is Figure 4: per country, the share of
// connections per signature (and not tampering).
type CountryDistribution struct {
	Country string
	Total   int
	// BySignature counts connections per signature.
	BySignature [core.NumSignatures]int
}

// TamperedShare is the country's share of connections matching any of
// the 19 signatures.
func (c *CountryDistribution) TamperedShare() float64 {
	matched := 0
	for _, sig := range core.AllSignatures() {
		matched += c.BySignature[sig]
	}
	return stats.Ratio(matched, c.Total)
}

// SignatureShare is the country share matching one signature.
func (c *CountryDistribution) SignatureShare(sig core.Signature) float64 {
	return stats.Ratio(c.BySignature[sig], c.Total)
}

// SignatureByCountry computes Figure 4 for every country present,
// sorted by descending tampered share.
func SignatureByCountry(recs []Record) []CountryDistribution {
	byCountry := map[string]*CountryDistribution{}
	for i := range recs {
		r := &recs[i]
		if r.Country == "" {
			continue
		}
		d := byCountry[r.Country]
		if d == nil {
			d = &CountryDistribution{Country: r.Country}
			byCountry[r.Country] = d
		}
		d.Total++
		d.BySignature[r.Res.Signature]++
	}
	out := make([]CountryDistribution, 0, len(byCountry))
	for _, d := range byCountry {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].TamperedShare(), out[j].TamperedShare()
		if ti != tj {
			return ti > tj
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// SignatureComposition is Figure 1: for one signature, which countries
// its matches come from.
type SignatureComposition struct {
	Signature core.Signature
	Total     int
	// ByCountry maps country → match count.
	ByCountry map[string]int
}

// Share returns the country's share of the signature's matches.
func (s *SignatureComposition) Share(country string) float64 {
	return stats.Ratio(s.ByCountry[country], s.Total)
}

// TopCountries returns up to n countries by descending share.
func (s *SignatureComposition) TopCountries(n int) []string {
	type kv struct {
		c string
		n int
	}
	var kvs []kv
	for c, cnt := range s.ByCountry {
		kvs = append(kvs, kv{c, cnt})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].n != kvs[j].n {
			return kvs[i].n > kvs[j].n
		}
		return kvs[i].c < kvs[j].c
	})
	if len(kvs) > n {
		kvs = kvs[:n]
	}
	out := make([]string, len(kvs))
	for i, kv := range kvs {
		out[i] = kv.c
	}
	return out
}

// CountryBySignature computes Figure 1 for all 19 signatures.
func CountryBySignature(recs []Record) []SignatureComposition {
	out := make([]SignatureComposition, 0, 19)
	idx := map[core.Signature]int{}
	for _, sig := range core.AllSignatures() {
		idx[sig] = len(out)
		out = append(out, SignatureComposition{Signature: sig, ByCountry: map[string]int{}})
	}
	for i := range recs {
		r := &recs[i]
		if !r.Res.Signature.IsTampering() || r.Country == "" {
			continue
		}
		sc := &out[idx[r.Res.Signature]]
		sc.Total++
		sc.ByCountry[r.Country]++
	}
	return out
}

// ASNStat is one AS's row in Figure 5.
type ASNStat struct {
	ASN          uint32
	Total        int
	Matched      int
	CountryShare float64 // share of the country's connections
}

// MatchShare is the AS's tampering match proportion.
func (a *ASNStat) MatchShare() float64 { return stats.Ratio(a.Matched, a.Total) }

// ASNView computes Figure 5 for one country: the per-AS match
// proportions among the top ASes carrying 80% of the country's
// connections, ordered by traffic share.
func ASNView(recs []Record, country string) []ASNStat {
	byASN := map[uint32]*ASNStat{}
	total := 0
	for i := range recs {
		r := &recs[i]
		if r.Country != country {
			continue
		}
		total++
		a := byASN[r.ASN]
		if a == nil {
			a = &ASNStat{ASN: r.ASN}
			byASN[r.ASN] = a
		}
		a.Total++
		if r.Res.Signature.IsTampering() {
			a.Matched++
		}
	}
	if total == 0 {
		return nil
	}
	all := make([]ASNStat, 0, len(byASN))
	for _, a := range byASN {
		a.CountryShare = stats.Ratio(a.Total, total)
		all = append(all, *a)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Total > all[j].Total })
	// Keep the top ASes covering 80% of traffic.
	covered := 0.0
	cut := len(all)
	for i := range all {
		covered += all[i].CountryShare
		if covered >= 0.8 {
			cut = i + 1
			break
		}
	}
	return all[:cut]
}

// SpreadOfASNView measures Figure 5's key contrast: the range (max-min)
// of match shares across a country's major ASes — small for
// centralized censors, large for decentralized ones.
func SpreadOfASNView(view []ASNStat) float64 {
	if len(view) == 0 {
		return 0
	}
	lo, hi := view[0].MatchShare(), view[0].MatchShare()
	for _, a := range view[1:] {
		m := a.MatchShare()
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	return hi - lo
}

// SeriesPoint is one bucket of a longitudinal series.
type SeriesPoint struct {
	Hour    int
	Total   int
	Matched int
}

// Share is the bucket's match proportion.
func (p SeriesPoint) Share() float64 { return stats.Ratio(p.Matched, p.Total) }

// TimeSeries computes a match-share series bucketed by hour, counting
// records that pass the filter as matched (Figures 6, 8, 9 use
// different filters).
func TimeSeries(recs []Record, bucketHours int, include func(*Record) bool, matched func(*Record) bool) []SeriesPoint {
	if bucketHours <= 0 {
		bucketHours = 1
	}
	byBucket := map[int]*SeriesPoint{}
	for i := range recs {
		r := &recs[i]
		if include != nil && !include(r) {
			continue
		}
		b := r.Hour / bucketHours * bucketHours
		p := byBucket[b]
		if p == nil {
			p = &SeriesPoint{Hour: b}
			byBucket[b] = p
		}
		p.Total++
		if matched(r) {
			p.Matched++
		}
	}
	out := make([]SeriesPoint, 0, len(byBucket))
	for _, p := range byBucket {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hour < out[j].Hour })
	return out
}

// PostACKPSHMatch is the Figure 6/7 matched-predicate: Post-ACK or
// Post-PSH signatures only (§4.2 robustness restriction).
func PostACKPSHMatch(r *Record) bool { return r.Res.Signature.PostACKOrPSH() }

// AnySignatureMatch matches all 19 signatures.
func AnySignatureMatch(r *Record) bool { return r.Res.Signature.IsTampering() }

// VersionComparison is Figure 7a: per-country tampering shares over
// IPv4 vs IPv6.
type VersionComparison struct {
	Country      string
	V4Total, V4M int
	V6Total, V6M int
}

// V4Share and V6Share are the per-version match proportions.
func (v *VersionComparison) V4Share() float64 { return stats.Ratio(v.V4M, v.V4Total) }
func (v *VersionComparison) V6Share() float64 { return stats.Ratio(v.V6M, v.V6Total) }

// IPVersionCompare computes Figure 7a, returning rows for countries
// with at least minPerVersion connections in each family, plus the
// through-origin regression slope (paper: 0.92).
func IPVersionCompare(recs []Record, minPerVersion int) ([]VersionComparison, float64) {
	byCountry := map[string]*VersionComparison{}
	for i := range recs {
		r := &recs[i]
		if r.Country == "" {
			continue
		}
		v := byCountry[r.Country]
		if v == nil {
			v = &VersionComparison{Country: r.Country}
			byCountry[r.Country] = v
		}
		m := PostACKPSHMatch(r)
		if r.IPVersion == 6 {
			v.V6Total++
			if m {
				v.V6M++
			}
		} else {
			v.V4Total++
			if m {
				v.V4M++
			}
		}
	}
	var out []VersionComparison
	var xs, ys []float64
	for _, v := range byCountry {
		if v.V4Total < minPerVersion || v.V6Total < minPerVersion {
			continue
		}
		out = append(out, *v)
		xs = append(xs, stats.Percent(v.V4Share()))
		ys = append(ys, stats.Percent(v.V6Share()))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out, stats.SlopeThroughOrigin(xs, ys)
}

// ProtocolComparison is Figure 7b: per-country Post-PSH match shares
// for TLS vs HTTP.
type ProtocolComparison struct {
	Country          string
	TLSTotal, TLSM   int
	HTTPTotal, HTTPM int
}

// TLSShare and HTTPShare are the per-protocol Post-PSH match rates.
func (p *ProtocolComparison) TLSShare() float64  { return stats.Ratio(p.TLSM, p.TLSTotal) }
func (p *ProtocolComparison) HTTPShare() float64 { return stats.Ratio(p.HTTPM, p.HTTPTotal) }

// ProtocolCompare computes Figure 7b over Post-PSH signatures (where
// the trigger is visible), with the through-origin slope of HTTP share
// regressed on TLS share (paper: ≈0.3, i.e. TLS more tampered, with
// Turkmenistan the HTTP-only outlier).
func ProtocolCompare(recs []Record, minPerProto int) ([]ProtocolComparison, float64) {
	byCountry := map[string]*ProtocolComparison{}
	for i := range recs {
		r := &recs[i]
		if r.Country == "" || r.Res.Protocol == core.ProtoUnknown {
			continue
		}
		p := byCountry[r.Country]
		if p == nil {
			p = &ProtocolComparison{Country: r.Country}
			byCountry[r.Country] = p
		}
		m := r.Res.Signature.Stage() == core.StagePostPSH || r.Res.Signature.Stage() == core.StagePostACK
		if r.Res.Protocol == core.ProtoTLS {
			p.TLSTotal++
			if m {
				p.TLSM++
			}
		} else {
			p.HTTPTotal++
			if m {
				p.HTTPM++
			}
		}
	}
	var out []ProtocolComparison
	var xs, ys []float64
	for _, p := range byCountry {
		if p.TLSTotal < minPerProto || p.HTTPTotal < minPerProto {
			continue
		}
		out = append(out, *p)
		xs = append(xs, stats.Percent(p.TLSShare()))
		ys = append(ys, stats.Percent(p.HTTPShare()))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out, stats.SlopeThroughOrigin(xs, ys)
}

// EvidenceCDFs holds the Figure 2 and Figure 3 distributions: per
// signature (plus the Not-Tampering baseline), the CDF of the maximum
// IP-ID delta (IPv4 only) and maximum TTL delta.
type EvidenceCDFs struct {
	// IPID[sig] and TTL[sig] index by signature; SigNotTampering holds
	// the baseline.
	IPID map[core.Signature]*stats.CDF
	TTL  map[core.Signature]*stats.CDF
}

// ComputeEvidenceCDFs samples up to capPerSig connections per
// signature (the paper uses 1 000).
func ComputeEvidenceCDFs(recs []Record, capPerSig int) EvidenceCDFs {
	ipidSamples := map[core.Signature][]float64{}
	ttlSamples := map[core.Signature][]float64{}
	for i := range recs {
		r := &recs[i]
		sig := r.Res.Signature
		if sig == core.SigOtherAnomalous {
			continue
		}
		if len(ttlSamples[sig]) < capPerSig {
			ttlSamples[sig] = append(ttlSamples[sig], float64(r.Res.Evidence.MaxTTLDelta))
		}
		if r.Res.Evidence.IPIDValid && len(ipidSamples[sig]) < capPerSig {
			ipidSamples[sig] = append(ipidSamples[sig], float64(r.Res.Evidence.MaxIPIDDelta))
		}
	}
	out := EvidenceCDFs{
		IPID: make(map[core.Signature]*stats.CDF, len(ipidSamples)),
		TTL:  make(map[core.Signature]*stats.CDF, len(ttlSamples)),
	}
	for sig, s := range ipidSamples {
		out.IPID[sig] = stats.NewCDF(s)
	}
	for sig, s := range ttlSamples {
		out.TTL[sig] = stats.NewCDF(s)
	}
	return out
}

// ScannerStats are the §4.2 threat-to-validity numbers.
type ScannerStats struct {
	Total         int
	HighTTL       int
	NoSYNOptions  int
	SYNRSTMatches int
	SYNRSTZMap    int
	SYNPayload80  int // port-80 SYNs carrying payload
	Port80SYNs    int
	SYNPayload443 int
	Port443SYNs   int
	// PeakDay and PeakDayShare report the day with the highest share
	// of payload-carrying port-80 SYNs (§4.1's surge observation).
	PeakDay      int
	PeakDayShare float64
}

// ComputeScannerStats tallies the scanner fingerprints. It needs the
// original connections for port information.
func ComputeScannerStats(recs []Record, conns []*capture.Connection) ScannerStats {
	var s ScannerStats
	s.Total = len(recs)
	dayPayload := map[int]int{}
	daySYNs := map[int]int{}
	for i := range recs {
		r := &recs[i]
		ev := &r.Res.Evidence
		if ev.HighTTL {
			s.HighTTL++
		}
		if ev.NoSYNOptions {
			s.NoSYNOptions++
		}
		if r.Res.Signature == core.SigSYNRST {
			s.SYNRSTMatches++
			if ev.ZMapFingerprint {
				s.SYNRSTZMap++
			}
		}
		if i < len(conns) {
			switch conns[i].DstPort {
			case 80:
				s.Port80SYNs++
				daySYNs[r.Hour/24]++
				if ev.SYNPayloadLen > 0 {
					s.SYNPayload80++
					dayPayload[r.Hour/24]++
				}
			case 443:
				s.Port443SYNs++
				if ev.SYNPayloadLen > 0 {
					s.SYNPayload443++
				}
			}
		}
	}
	s.PeakDay = -1
	for day, n := range daySYNs {
		if n < 50 {
			continue
		}
		share := float64(dayPayload[day]) / float64(n)
		if share > s.PeakDayShare {
			s.PeakDayShare = share
			s.PeakDay = day
		}
	}
	return s
}
