// Package analysis aggregates classified connections into the paper's
// tables and figures: per-country and per-AS tampering rates (Figures
// 1, 4, 5), longitudinal series (Figures 6, 8, 9), IP-version and
// protocol comparisons (Figure 7), category and test-list tables
// (Tables 2, 3), evidence CDFs (Figures 2, 3), the signature-overlap
// matrix (Figure 10), and the §4.1/§4.2 summary statistics.
package analysis

import (
	"runtime"
	"sort"
	"sync"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/geo"
	"tamperdetect/internal/stats"
)

// Record is one classified connection with its aggregation keys.
type Record struct {
	Res       core.Result
	Country   string
	ASN       uint32
	IPVersion int
	// Hour is the scenario hour of the first packet (capture
	// timestamps are seconds from scenario start).
	Hour int
	// Time is the first packet's timestamp in seconds — the canonical
	// per-pair ordering key of the overlap matrix.
	Time int64
	// SrcKey identifies the client address for overlap analysis.
	SrcKey string
	// SrcPort and DstPort come from the connection's flow key; DstPort
	// drives the scanner port counters without the raw connection.
	SrcPort uint16
	DstPort uint16
}

// NewRecord builds one aggregation record from a classified
// connection, attaching country/AS via the geo resolver — exactly the
// paper's pipeline: aggregation keys come only from the source
// address. It is the single-record form of Analyze, used by streaming
// classification sinks; those pass a per-worker *geo.Cache so the
// per-record resolution skips the binary search.
func NewRecord(c *capture.Connection, db geo.Resolver, res core.Result) Record {
	rec := Record{
		Res:       res,
		IPVersion: c.IPVersion,
		SrcKey:    c.SrcIP.String(),
		SrcPort:   c.SrcPort,
		DstPort:   c.DstPort,
	}
	if as := db.Lookup(c.SrcIP); as != nil {
		rec.Country = as.Country
		rec.ASN = as.ASN
	}
	if len(c.Packets) > 0 {
		rec.Time = c.Packets[0].Timestamp
		rec.Hour = int(rec.Time / 3600)
	}
	return rec
}

// Analyze classifies every connection (in parallel) and attaches
// country/AS via the geo database.
func Analyze(conns []*capture.Connection, db *geo.DB, cl *core.Classifier, workers int) []Record {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]Record, len(conns))
	var wg sync.WaitGroup
	ch := make(chan int, 256)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				c := conns[i]
				out[i] = NewRecord(c, db, cl.Classify(c))
			}
		}()
	}
	for i := range conns {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}

// StageStats is the §4.1 headline breakdown (Table 1's narrative).
type StageStats struct {
	Total            int
	PossiblyTampered int
	// StageCounts counts possibly-tampered connections per stage
	// (StageOther collects the uncovered remainder).
	StageCounts [core.NumStages]int
	// StageMatched counts, per stage, those matching a Table 1
	// signature.
	StageMatched [core.NumStages]int
	// Matched is the total matching any signature.
	Matched int
}

// PossiblyTamperedShare is the §4.1 25.7% statistic.
func (s *StageStats) PossiblyTamperedShare() float64 {
	return stats.Ratio(s.PossiblyTampered, s.Total)
}

// SignatureCoverage is the §4.1 86.9% statistic: the share of possibly
// tampered connections matching one of the 19 signatures.
func (s *StageStats) SignatureCoverage() float64 {
	return stats.Ratio(s.Matched, s.PossiblyTampered)
}

// StageShare is a stage's share of possibly-tampered connections
// (43.2% / 16.1% / 5.3% / 33.0% / 2.3% in the paper).
func (s *StageStats) StageShare(st core.Stage) float64 {
	return stats.Ratio(s.StageCounts[st], s.PossiblyTampered)
}

// StageCoverage is the share of a stage's connections matched by a
// signature (99.5% / 98.7% / 97.9% / 69.2%).
func (s *StageStats) StageCoverage(st core.Stage) float64 {
	return stats.Ratio(s.StageMatched[st], s.StageCounts[st])
}

// ComputeStageStats builds the §4.1 breakdown. The stage of unmatched
// possibly-tampered connections is derived from how far the canonical
// prefix got: the classifier reports StageOther for those, except
// Post-Data timeouts which it attributes to Post-Data with no match —
// the aggregator counts by the connection's classified stage.
func ComputeStageStats(recs []Record) StageStats {
	a := NewStageStatsAgg()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Stats()
}

// CountryDistribution is Figure 4: per country, the share of
// connections per signature (and not tampering).
type CountryDistribution struct {
	Country string
	Total   int
	// BySignature counts connections per signature.
	BySignature [core.NumSignatures]int
}

// TamperedShare is the country's share of connections matching any of
// the 19 signatures.
func (c *CountryDistribution) TamperedShare() float64 {
	matched := 0
	for _, sig := range core.AllSignatures() {
		matched += c.BySignature[sig]
	}
	return stats.Ratio(matched, c.Total)
}

// SignatureShare is the country share matching one signature.
func (c *CountryDistribution) SignatureShare(sig core.Signature) float64 {
	return stats.Ratio(c.BySignature[sig], c.Total)
}

// SignatureByCountry computes Figure 4 for every country present,
// sorted by descending tampered share.
func SignatureByCountry(recs []Record) []CountryDistribution {
	a := NewSignatureByCountryAgg()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Table()
}

// SignatureComposition is Figure 1: for one signature, which countries
// its matches come from.
type SignatureComposition struct {
	Signature core.Signature
	Total     int
	// ByCountry maps country → match count.
	ByCountry map[string]int
}

// Share returns the country's share of the signature's matches.
func (s *SignatureComposition) Share(country string) float64 {
	return stats.Ratio(s.ByCountry[country], s.Total)
}

// TopCountries returns up to n countries by descending share.
func (s *SignatureComposition) TopCountries(n int) []string {
	type kv struct {
		c string
		n int
	}
	var kvs []kv
	for c, cnt := range s.ByCountry {
		kvs = append(kvs, kv{c, cnt})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].n != kvs[j].n {
			return kvs[i].n > kvs[j].n
		}
		return kvs[i].c < kvs[j].c
	})
	if len(kvs) > n {
		kvs = kvs[:n]
	}
	out := make([]string, len(kvs))
	for i, kv := range kvs {
		out[i] = kv.c
	}
	return out
}

// CountryBySignature computes Figure 1 for all 19 signatures.
func CountryBySignature(recs []Record) []SignatureComposition {
	a := NewCountryBySignatureAgg()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Table()
}

// ASNStat is one AS's row in Figure 5.
type ASNStat struct {
	ASN          uint32
	Total        int
	Matched      int
	CountryShare float64 // share of the country's connections
}

// MatchShare is the AS's tampering match proportion.
func (a *ASNStat) MatchShare() float64 { return stats.Ratio(a.Matched, a.Total) }

// ASNView computes Figure 5 for one country: the per-AS match
// proportions among the top ASes carrying 80% of the country's
// connections, ordered by traffic share.
func ASNView(recs []Record, country string) []ASNStat {
	a := NewASNViewAgg()
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.View(country)
}

// SpreadOfASNView measures Figure 5's key contrast: the range (max-min)
// of match shares across a country's major ASes — small for
// centralized censors, large for decentralized ones.
func SpreadOfASNView(view []ASNStat) float64 {
	if len(view) == 0 {
		return 0
	}
	lo, hi := view[0].MatchShare(), view[0].MatchShare()
	for _, a := range view[1:] {
		m := a.MatchShare()
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	return hi - lo
}

// SeriesPoint is one bucket of a longitudinal series.
type SeriesPoint struct {
	Hour    int
	Total   int
	Matched int
}

// Share is the bucket's match proportion.
func (p SeriesPoint) Share() float64 { return stats.Ratio(p.Matched, p.Total) }

// TimeSeries computes a match-share series bucketed by hour, counting
// records that pass the filter as matched (Figures 6, 8, 9 use
// different filters).
func TimeSeries(recs []Record, bucketHours int, include func(*Record) bool, matched func(*Record) bool) []SeriesPoint {
	a := NewTimeSeriesAgg(bucketHours, include, matched)
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Series()
}

// PostACKPSHMatch is the Figure 6/7 matched-predicate: Post-ACK or
// Post-PSH signatures only (§4.2 robustness restriction).
func PostACKPSHMatch(r *Record) bool { return r.Res.Signature.PostACKOrPSH() }

// AnySignatureMatch matches all 19 signatures.
func AnySignatureMatch(r *Record) bool { return r.Res.Signature.IsTampering() }

// VersionComparison is Figure 7a: per-country tampering shares over
// IPv4 vs IPv6.
type VersionComparison struct {
	Country      string
	V4Total, V4M int
	V6Total, V6M int
}

// V4Share and V6Share are the per-version match proportions.
func (v *VersionComparison) V4Share() float64 { return stats.Ratio(v.V4M, v.V4Total) }
func (v *VersionComparison) V6Share() float64 { return stats.Ratio(v.V6M, v.V6Total) }

// IPVersionCompare computes Figure 7a, returning rows for countries
// with at least minPerVersion connections in each family, plus the
// through-origin regression slope (paper: 0.92).
func IPVersionCompare(recs []Record, minPerVersion int) ([]VersionComparison, float64) {
	a := NewIPVersionAgg(minPerVersion)
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Table()
}

// ProtocolComparison is Figure 7b: per-country Post-PSH match shares
// for TLS vs HTTP.
type ProtocolComparison struct {
	Country          string
	TLSTotal, TLSM   int
	HTTPTotal, HTTPM int
}

// TLSShare and HTTPShare are the per-protocol Post-PSH match rates.
func (p *ProtocolComparison) TLSShare() float64  { return stats.Ratio(p.TLSM, p.TLSTotal) }
func (p *ProtocolComparison) HTTPShare() float64 { return stats.Ratio(p.HTTPM, p.HTTPTotal) }

// ProtocolCompare computes Figure 7b over Post-PSH signatures (where
// the trigger is visible), with the through-origin slope of HTTP share
// regressed on TLS share (paper: ≈0.3, i.e. TLS more tampered, with
// Turkmenistan the HTTP-only outlier).
func ProtocolCompare(recs []Record, minPerProto int) ([]ProtocolComparison, float64) {
	a := NewProtocolAgg(minPerProto)
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Table()
}

// EvidenceCDFs holds the Figure 2 and Figure 3 distributions: per
// signature (plus the Not-Tampering baseline), the CDF of the maximum
// IP-ID delta (IPv4 only) and maximum TTL delta.
type EvidenceCDFs struct {
	// IPID[sig] and TTL[sig] index by signature; SigNotTampering holds
	// the baseline.
	IPID map[core.Signature]*stats.CDF
	TTL  map[core.Signature]*stats.CDF
}

// ComputeEvidenceCDFs samples up to capPerSig connections per
// signature (the paper uses 1 000), via EvidenceAgg's deterministic
// bottom-k-by-hash sample — a pure function of the record multiset,
// where earlier versions kept the order-dependent first capPerSig.
func ComputeEvidenceCDFs(recs []Record, capPerSig int) EvidenceCDFs {
	a := NewEvidenceAgg(capPerSig)
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.CDFs()
}

// ScannerStats are the §4.2 threat-to-validity numbers.
type ScannerStats struct {
	Total         int
	HighTTL       int
	NoSYNOptions  int
	SYNRSTMatches int
	SYNRSTZMap    int
	SYNPayload80  int // port-80 SYNs carrying payload
	Port80SYNs    int
	SYNPayload443 int
	Port443SYNs   int
	// PeakDay and PeakDayShare report the day with the highest share
	// of payload-carrying port-80 SYNs (§4.1's surge observation).
	PeakDay      int
	PeakDayShare float64
}

// ComputeScannerStats tallies the scanner fingerprints. Records built
// by NewRecord carry the destination port; conns, when non-empty,
// overrides it positionally for callers with records from older
// sources.
func ComputeScannerStats(recs []Record, conns []*capture.Connection) ScannerStats {
	a := NewScannerAgg()
	for i := range recs {
		r := recs[i]
		if i < len(conns) {
			r.DstPort = conns[i].DstPort
		}
		a.Add(&r)
	}
	return a.Stats()
}
