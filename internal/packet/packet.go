// Package packet implements wire-format encoding and decoding for the
// network and transport layers the tampering detector needs: IPv4, IPv6,
// and TCP, plus an opaque payload layer.
//
// The design follows the gopacket decoding model: each protocol is a
// DecodingLayer that can be decoded in place from a byte slice without
// allocation, and a DecodingLayerParser walks a packet through a fixed
// set of preallocated layers. Serialization mirrors gopacket's
// SerializeBuffer: layers prepend themselves onto a buffer so a packet is
// built innermost-first.
//
// Only the features required by the simulator and classifier are
// implemented, but those features are implemented faithfully: real header
// layouts, real checksums (including the TCP pseudo-header for both IP
// versions), and real TCP options.
package packet

import "errors"

// LayerType identifies a protocol layer understood by this package.
type LayerType uint8

// Layer types known to the parser. LayerTypeZero means "no further layer".
const (
	LayerTypeZero LayerType = iota
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeTCP
	LayerTypePayload
	numLayerTypes
)

// String returns the conventional name of the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeZero:
		return "None"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypePayload:
		return "Payload"
	default:
		return "Unknown"
	}
}

// DecodingLayer is a protocol layer that can decode itself in place from
// a byte slice. Implementations retain references into the input slice,
// so the caller must keep the slice immutable for the lifetime of the
// decoded layer (the gopacket "NoCopy" contract).
type DecodingLayer interface {
	// DecodeFromBytes parses data into the receiver, replacing any
	// previous contents.
	DecodeFromBytes(data []byte) error
	// LayerType reports which layer this is.
	LayerType() LayerType
	// NextLayerType reports the type of the layer carried in the
	// payload, or LayerTypeZero if unknown or none.
	NextLayerType() LayerType
	// LayerPayload returns the bytes carried above this layer.
	LayerPayload() []byte
}

// SerializableLayer is a protocol layer that can write itself to the
// front of a SerializeBuffer.
type SerializableLayer interface {
	// SerializeTo prepends this layer's wire form onto b. The buffer
	// already contains this layer's payload.
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
	LayerType() LayerType
}

// SerializeOptions control checksum and length fix-up during
// serialization.
type SerializeOptions struct {
	// FixLengths recomputes length fields (IPv4 total length, IPv6
	// payload length, TCP data offset) from the buffer contents.
	FixLengths bool
	// ComputeChecksums recomputes checksums. TCP checksums require the
	// layer's network-layer pseudo-header to have been attached with
	// SetNetworkLayerForChecksum.
	ComputeChecksums bool
}

// Errors shared by the layer decoders.
var (
	ErrTruncated = errors.New("packet: truncated data")
	ErrVersion   = errors.New("packet: wrong IP version")
	ErrHeaderLen = errors.New("packet: invalid header length")
)
