package packet

import "encoding/binary"

// DecrementTTL lowers the TTL (IPv4) or hop limit (IPv6) of a raw IP
// packet in place by n, patching the IPv4 header checksum incrementally
// (RFC 1624). It reports false if the packet is not IP, is truncated, or
// the TTL would underflow to zero or below — in which case the packet is
// left unmodified and should be treated as expired.
func DecrementTTL(data []byte, n uint8) bool {
	if n == 0 {
		return len(data) > 0 && IPVersion(data) != 0
	}
	switch IPVersion(data) {
	case 4:
		if len(data) < 20 {
			return false
		}
		if data[8] <= n {
			return false
		}
		// The checksum covers 16-bit words; bytes 8-9 hold TTL and
		// protocol. Apply RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m').
		oldWord := binary.BigEndian.Uint16(data[8:10])
		data[8] -= n
		newWord := binary.BigEndian.Uint16(data[8:10])
		hc := binary.BigEndian.Uint16(data[10:12])
		acc := uint32(^hc) + uint32(^oldWord) + uint32(newWord)
		for acc > 0xffff {
			acc = (acc >> 16) + (acc & 0xffff)
		}
		binary.BigEndian.PutUint16(data[10:12], ^uint16(acc))
		return true
	case 6:
		if len(data) < 40 {
			return false
		}
		if data[7] <= n {
			return false
		}
		data[7] -= n
		return true
	default:
		return false
	}
}
