package packet

import (
	"encoding/binary"
	"net/netip"
)

// IPv4 is the Internet Protocol version 4 header (RFC 791).
type IPv4 struct {
	Version    uint8 // always 4 on decode; filled on serialize
	IHL        uint8 // header length in 32-bit words
	TOS        uint8
	Length     uint16 // total length, header + payload
	ID         uint16 // identification field; key tampering evidence
	Flags      uint8  // 3-bit flags (bit 1 = DF, bit 0 = MF of the 3-bit field)
	FragOffset uint16 // 13-bit fragment offset
	TTL        uint8  // time to live; key tampering evidence
	Protocol   uint8  // payload protocol (6 = TCP)
	Checksum   uint16
	SrcIP      netip.Addr
	DstIP      netip.Addr
	Options    []byte // raw options, if any

	payload []byte
}

// IPv4 flag bits within the 3-bit flags field.
const (
	IPv4DontFragment  = 0b010
	IPv4MoreFragments = 0b001
)

// LayerType implements DecodingLayer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// NextLayerType maps the protocol field to a known layer.
func (ip *IPv4) NextLayerType() LayerType {
	if ip.Protocol == protoTCP {
		return LayerTypeTCP
	}
	return LayerTypePayload
}

// LayerPayload returns the bytes after the IPv4 header, truncated to the
// header's total-length field when the buffer is longer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// DecodeFromBytes parses an IPv4 header. The payload slice references
// data; the caller must keep data immutable.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	ip.Version = data[0] >> 4
	if ip.Version != 4 {
		return ErrVersion
	}
	ip.IHL = data[0] & 0x0f
	hlen := int(ip.IHL) * 4
	if hlen < 20 || hlen > len(data) {
		return ErrHeaderLen
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.SrcIP = netip.AddrFrom4([4]byte(data[12:16]))
	ip.DstIP = netip.AddrFrom4([4]byte(data[16:20]))
	if hlen > 20 {
		ip.Options = data[20:hlen]
	} else {
		ip.Options = nil
	}
	end := len(data)
	if int(ip.Length) >= hlen && int(ip.Length) < end {
		end = int(ip.Length)
	}
	ip.payload = data[hlen:end]
	return nil
}

func (ip *IPv4) serializedSize() int { return 20 + (len(ip.Options)+3)&^3 }

// SerializeTo prepends the IPv4 header onto b. With opts.FixLengths the
// total length and IHL are computed; with opts.ComputeChecksums the
// header checksum is computed.
func (ip *IPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	optLen := (len(ip.Options) + 3) &^ 3 // pad to 32-bit boundary
	hlen := 20 + optLen
	payloadLen := b.Len()
	hdr := b.PrependBytes(hlen)
	if opts.FixLengths {
		ip.IHL = uint8(hlen / 4)
		ip.Length = uint16(hlen + payloadLen)
	}
	ip.Version = 4
	hdr[0] = 4<<4 | ip.IHL
	hdr[1] = ip.TOS
	binary.BigEndian.PutUint16(hdr[2:4], ip.Length)
	binary.BigEndian.PutUint16(hdr[4:6], ip.ID)
	binary.BigEndian.PutUint16(hdr[6:8], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	hdr[8] = ip.TTL
	hdr[9] = ip.Protocol
	hdr[10], hdr[11] = 0, 0
	src, dst := ip.SrcIP.As4(), ip.DstIP.As4()
	copy(hdr[12:16], src[:])
	copy(hdr[16:20], dst[:])
	for i := range hdr[20:] {
		hdr[20+i] = 0
	}
	copy(hdr[20:], ip.Options)
	if opts.ComputeChecksums {
		ip.Checksum = ipv4HeaderChecksum(hdr)
	}
	binary.BigEndian.PutUint16(hdr[10:12], ip.Checksum)
	return nil
}
