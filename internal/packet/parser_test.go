package packet

import (
	"net/netip"
	"testing"
)

// buildV4TCP serializes an IPv4+TCP+payload packet for parser tests.
func buildV4TCP(t *testing.T, flags TCPFlags, payload string) []byte {
	t.Helper()
	ip := IPv4{TTL: 57, ID: 4242, Protocol: protoTCP,
		SrcIP: mustAddr(t, "203.0.113.10"), DstIP: mustAddr(t, "192.0.2.80")}
	tcp := TCP{SrcPort: 50000, DstPort: 443, Seq: 1000, Ack: 2000, Flags: flags, Window: 29200,
		Options: []TCPOption{{Kind: TCPOptionMSS, Data: []byte{0x05, 0xb4}}}}
	tcp.SetNetworkLayerForChecksum(&ip)
	return serialize(t, &ip, &tcp, Payload(payload))
}

func TestSummaryParserIPv4(t *testing.T) {
	wire := buildV4TCP(t, FlagsPSHACK, "\x16\x03\x01")
	p := NewSummaryParser()
	var s Summary
	if err := p.Parse(wire, &s); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.IPVersion != 4 {
		t.Errorf("version = %d, want 4", s.IPVersion)
	}
	if s.IPID != 4242 || s.TTL != 57 {
		t.Errorf("ipid/ttl = %d/%d, want 4242/57", s.IPID, s.TTL)
	}
	if s.SrcPort != 50000 || s.DstPort != 443 {
		t.Errorf("ports = %d->%d", s.SrcPort, s.DstPort)
	}
	if s.Flags != FlagsPSHACK || s.PayloadLen != 3 {
		t.Errorf("flags/paylen = %v/%d", s.Flags, s.PayloadLen)
	}
	if !s.HasOptions {
		t.Error("HasOptions = false, want true (MSS present)")
	}
}

func TestSummaryParserIPv6(t *testing.T) {
	ip := IPv6{NextHeader: protoTCP, HopLimit: 249,
		SrcIP: mustAddr(t, "2001:db8::10"), DstIP: mustAddr(t, "2001:db8::80")}
	tcp := TCP{SrcPort: 40000, DstPort: 80, Seq: 7, Flags: FlagsSYN, Window: 64240}
	tcp.SetNetworkLayerForChecksum(&ip)
	wire := serialize(t, &ip, &tcp)

	p := NewSummaryParser()
	var s Summary
	if err := p.Parse(wire, &s); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.IPVersion != 6 || s.TTL != 249 || s.IPID != 0 {
		t.Errorf("version/ttl/ipid = %d/%d/%d, want 6/249/0", s.IPVersion, s.TTL, s.IPID)
	}
	if s.Flags != FlagsSYN || s.PayloadLen != 0 {
		t.Errorf("flags/paylen = %v/%d", s.Flags, s.PayloadLen)
	}
	if s.HasOptions {
		t.Error("HasOptions = true, want false")
	}
}

func TestSummaryParserRejectsNonIP(t *testing.T) {
	p := NewSummaryParser()
	var s Summary
	if err := p.Parse([]byte{0x00, 0x01, 0x02}, &s); err == nil {
		t.Error("Parse accepted garbage")
	}
	if err := p.Parse(nil, &s); err == nil {
		t.Error("Parse accepted empty input")
	}
}

func TestSummaryParserRejectsNonTCP(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: 17 /* UDP */, SrcIP: mustAddr(t, "10.0.0.1"), DstIP: mustAddr(t, "10.0.0.2")}
	wire := serialize(t, &ip, Payload("udp-ish"))
	p := NewSummaryParser()
	var s Summary
	if err := p.Parse(wire, &s); err == nil {
		t.Error("Parse accepted a UDP packet as TCP")
	}
}

func TestSummaryParserReuse(t *testing.T) {
	p := NewSummaryParser()
	var s Summary
	a := buildV4TCP(t, FlagsSYN, "")
	b := buildV4TCP(t, FlagsRSTACK, "")
	if err := p.Parse(a, &s); err != nil {
		t.Fatal(err)
	}
	if s.Flags != FlagsSYN {
		t.Errorf("first parse flags = %v", s.Flags)
	}
	if err := p.Parse(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Flags != FlagsRSTACK {
		t.Errorf("second parse flags = %v (parser state leaked)", s.Flags)
	}
}

func TestIPVersionSniff(t *testing.T) {
	if v := IPVersion(buildV4TCP(t, FlagsSYN, "")); v != 4 {
		t.Errorf("IPVersion(v4 packet) = %d", v)
	}
	if v := IPVersion([]byte{6 << 4}); v != 6 {
		t.Errorf("IPVersion(v6 byte) = %d", v)
	}
	if v := IPVersion([]byte{0xff}); v != 0 {
		t.Errorf("IPVersion(garbage) = %d", v)
	}
	if v := IPVersion(nil); v != 0 {
		t.Errorf("IPVersion(nil) = %d", v)
	}
}

func TestDecodingLayerParserUnsupported(t *testing.T) {
	// Parser registered without a TCP decoder stops at TCP.
	var ip IPv4
	parser := NewDecodingLayerParser(LayerTypeIPv4, &ip)
	wire := buildV4TCP(t, FlagsSYN, "x")
	var decoded []LayerType
	err := parser.DecodeLayers(wire, &decoded)
	if _, ok := err.(UnsupportedLayerError); !ok {
		t.Fatalf("err = %v, want UnsupportedLayerError", err)
	}
	if len(decoded) != 1 || decoded[0] != LayerTypeIPv4 {
		t.Errorf("decoded = %v, want [IPv4]", decoded)
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBuffer()
	// Prepend more than the initial headroom to force growth.
	big := b.PrependBytes(1000)
	for i := range big {
		big[i] = byte(i)
	}
	small := b.PrependBytes(8)
	for i := range small {
		small[i] = 0xee
	}
	got := b.Bytes()
	if len(got) != 1008 {
		t.Fatalf("len = %d, want 1008", len(got))
	}
	if got[0] != 0xee || got[8] != 0 || got[9] != 1 {
		t.Errorf("buffer contents wrong after growth: % x", got[:12])
	}
}

func TestSerializeBufferAppend(t *testing.T) {
	b := NewSerializeBuffer()
	copy(b.PrependBytes(2), []byte{1, 2})
	ap := b.AppendBytes(3)
	copy(ap, []byte{3, 4, 5})
	got := b.Bytes()
	want := []byte{1, 2, 3, 4, 5}
	if string(got) != string(want) {
		t.Errorf("bytes = %v, want %v", got, want)
	}
}

func BenchmarkDecodeParser(b *testing.B) {
	ip := IPv4{TTL: 64, ID: 1, Protocol: protoTCP,
		SrcIP: mustAddrB(b, "10.0.0.1"), DstIP: mustAddrB(b, "10.0.0.2")}
	tcp := TCP{SrcPort: 1, DstPort: 443, Flags: FlagsPSHACK}
	tcp.SetNetworkLayerForChecksum(&ip)
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&ip, &tcp, Payload(make([]byte, 512))); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	p := NewSummaryParser()
	var s Summary
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Parse(wire, &s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeAlloc is the ablation baseline: allocating fresh layer
// structs per packet, the way a naive decoder would.
func BenchmarkDecodeAlloc(b *testing.B) {
	ip := IPv4{TTL: 64, ID: 1, Protocol: protoTCP,
		SrcIP: mustAddrB(b, "10.0.0.1"), DstIP: mustAddrB(b, "10.0.0.2")}
	tcp := TCP{SrcPort: 1, DstPort: 443, Flags: FlagsPSHACK}
	tcp.SetNetworkLayerForChecksum(&ip)
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&ip, &tcp, Payload(make([]byte, 512))); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outIP := new(IPv4)
		if err := outIP.DecodeFromBytes(wire); err != nil {
			b.Fatal(err)
		}
		outTCP := new(TCP)
		if err := outTCP.DecodeFromBytes(outIP.LayerPayload()); err != nil {
			b.Fatal(err)
		}
		// Keep the layers reachable, as a real per-packet decoder would
		// (gopacket's NewPacket retains them); without this the compiler
		// stack-allocates everything and the comparison is meaningless.
		allocSink = append(allocSink[:0], outIP, outTCP)
	}
}

// allocSink defeats escape analysis in BenchmarkDecodeAlloc.
var allocSink []DecodingLayer

func mustAddrB(tb testing.TB, s string) netip.Addr {
	tb.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		tb.Fatalf("ParseAddr(%q): %v", s, err)
	}
	return a
}
