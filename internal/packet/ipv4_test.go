package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", s, err)
	}
	return a
}

func serialize(t *testing.T, layers ...SerializableLayer) []byte {
	t.Helper()
	buf := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := SerializeLayers(buf, opts, layers...); err != nil {
		t.Fatalf("SerializeLayers: %v", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestIPv4RoundTrip(t *testing.T) {
	in := IPv4{
		TOS:      0x10,
		ID:       54321,
		Flags:    IPv4DontFragment,
		TTL:      64,
		Protocol: protoTCP,
		SrcIP:    mustAddr(t, "192.0.2.7"),
		DstIP:    mustAddr(t, "198.51.100.9"),
	}
	payload := Payload([]byte("hello world"))
	wire := serialize(t, &in, payload)

	var out IPv4
	if err := out.DecodeFromBytes(wire); err != nil {
		t.Fatalf("DecodeFromBytes: %v", err)
	}
	if out.Version != 4 || out.IHL != 5 {
		t.Errorf("version/IHL = %d/%d, want 4/5", out.Version, out.IHL)
	}
	if out.ID != in.ID || out.TTL != in.TTL || out.TOS != in.TOS {
		t.Errorf("ID/TTL/TOS = %d/%d/%#x, want %d/%d/%#x", out.ID, out.TTL, out.TOS, in.ID, in.TTL, in.TOS)
	}
	if out.Flags != IPv4DontFragment || out.FragOffset != 0 {
		t.Errorf("flags/frag = %d/%d, want %d/0", out.Flags, out.FragOffset, IPv4DontFragment)
	}
	if out.SrcIP != in.SrcIP || out.DstIP != in.DstIP {
		t.Errorf("addrs = %v->%v, want %v->%v", out.SrcIP, out.DstIP, in.SrcIP, in.DstIP)
	}
	if int(out.Length) != len(wire) {
		t.Errorf("Length = %d, want %d", out.Length, len(wire))
	}
	if !bytes.Equal(out.LayerPayload(), payload) {
		t.Errorf("payload = %q, want %q", out.LayerPayload(), payload)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	in := IPv4{TTL: 64, Protocol: protoTCP, SrcIP: mustAddr(t, "10.0.0.1"), DstIP: mustAddr(t, "10.0.0.2")}
	wire := serialize(t, &in, Payload("x"))
	// Recomputing the checksum over the header with the stored checksum
	// field zeroed must reproduce the stored value.
	var out IPv4
	if err := out.DecodeFromBytes(wire); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got := ipv4HeaderChecksum(wire[:20]); got != out.Checksum {
		t.Errorf("checksum = %#x, want %#x", out.Checksum, got)
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var ip IPv4
	if err := ip.DecodeFromBytes(make([]byte, 19)); err != ErrTruncated {
		t.Errorf("short buffer: err = %v, want ErrTruncated", err)
	}
	bad := make([]byte, 20)
	bad[0] = 6 << 4
	if err := ip.DecodeFromBytes(bad); err != ErrVersion {
		t.Errorf("wrong version: err = %v, want ErrVersion", err)
	}
	bad[0] = 4<<4 | 3 // IHL 3 words < 20 bytes
	if err := ip.DecodeFromBytes(bad); err != ErrHeaderLen {
		t.Errorf("bad IHL: err = %v, want ErrHeaderLen", err)
	}
	bad[0] = 4<<4 | 15 // IHL 60 bytes > 20-byte buffer
	if err := ip.DecodeFromBytes(bad); err != ErrHeaderLen {
		t.Errorf("IHL beyond buffer: err = %v, want ErrHeaderLen", err)
	}
}

func TestIPv4Options(t *testing.T) {
	in := IPv4{
		TTL:      64,
		Protocol: protoTCP,
		SrcIP:    mustAddr(t, "10.0.0.1"),
		DstIP:    mustAddr(t, "10.0.0.2"),
		Options:  []byte{7, 4, 0, 0}, // record-route stub, already 4-aligned
	}
	wire := serialize(t, &in, Payload("p"))
	var out IPv4
	if err := out.DecodeFromBytes(wire); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.IHL != 6 {
		t.Errorf("IHL = %d, want 6", out.IHL)
	}
	if !bytes.Equal(out.Options, in.Options) {
		t.Errorf("options = %v, want %v", out.Options, in.Options)
	}
	if !bytes.Equal(out.LayerPayload(), []byte("p")) {
		t.Errorf("payload = %q, want %q", out.LayerPayload(), "p")
	}
}

func TestIPv4LengthTruncatesPayload(t *testing.T) {
	in := IPv4{TTL: 64, Protocol: protoTCP, SrcIP: mustAddr(t, "10.0.0.1"), DstIP: mustAddr(t, "10.0.0.2")}
	wire := serialize(t, &in, Payload("abcdef"))
	// Simulate link padding: extra trailing bytes beyond the IP length.
	padded := append(append([]byte{}, wire...), 0, 0, 0, 0)
	var out IPv4
	if err := out.DecodeFromBytes(padded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if string(out.LayerPayload()) != "abcdef" {
		t.Errorf("payload = %q, want %q (padding must be stripped)", out.LayerPayload(), "abcdef")
	}
}

// TestIPv4RoundTripQuick property-tests that every (ID, TTL, TOS, flags)
// combination survives a serialize/decode round trip.
func TestIPv4RoundTripQuick(t *testing.T) {
	src := mustAddr(t, "203.0.113.5")
	dst := mustAddr(t, "192.0.2.99")
	f := func(id uint16, ttl, tos uint8, flags uint8, payload []byte) bool {
		in := IPv4{
			TOS: tos, ID: id, TTL: ttl, Flags: flags & 0x7,
			Protocol: protoTCP, SrcIP: src, DstIP: dst,
		}
		buf := NewSerializeBuffer()
		if err := SerializeLayers(buf, SerializeOptions{FixLengths: true, ComputeChecksums: true}, &in, Payload(payload)); err != nil {
			return false
		}
		var out IPv4
		if err := out.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return out.ID == id && out.TTL == ttl && out.TOS == tos &&
			out.Flags == flags&0x7 && bytes.Equal(out.LayerPayload(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
