package packet

import "sync"

// SerializeBuffer builds packet bytes innermost-layer-first, like
// gopacket's SerializeBuffer: each layer prepends its header in front of
// the payload already in the buffer. The buffer keeps headroom at the
// front so prepends rarely reallocate.
type SerializeBuffer struct {
	data  []byte // full backing array
	start int    // index of first valid byte
}

// NewSerializeBuffer returns an empty buffer. It allocates nothing up
// front: SerializeLayers sizes the backing array exactly from the
// layers being serialized, so the first serialization performs a
// single right-sized allocation (and a pooled buffer, none at all).
func NewSerializeBuffer() *SerializeBuffer {
	return &SerializeBuffer{}
}

// NewSerializeBufferSize returns a buffer with n bytes of headroom
// preallocated, for callers that know their packet size and prepend
// manually rather than through SerializeLayers.
func NewSerializeBufferSize(n int) *SerializeBuffer {
	return &SerializeBuffer{data: make([]byte, n), start: n}
}

// serializePool recycles buffers across packet builds; the simulator
// and middlebox forges serialize one packet at a time on many
// goroutines, so pooling keeps the steady-state hot path free of
// backing-array allocations.
var serializePool = sync.Pool{
	New: func() any { return NewSerializeBufferSize(128) },
}

// maxPooledBuffer caps the backing array a buffer may retain when
// returned to the pool, so one jumbo packet does not pin its memory.
const maxPooledBuffer = 1 << 16

// GetSerializeBuffer returns a cleared buffer from the pool.
func GetSerializeBuffer() *SerializeBuffer {
	b := serializePool.Get().(*SerializeBuffer)
	b.Clear()
	return b
}

// PutSerializeBuffer returns b to the pool. The caller must not use b
// or any slice obtained from it afterwards.
func PutSerializeBuffer(b *SerializeBuffer) {
	if b == nil || len(b.data) > maxPooledBuffer {
		return
	}
	serializePool.Put(b)
}

// Bytes returns the serialized packet so far. The slice is valid until
// the next mutation of the buffer.
func (b *SerializeBuffer) Bytes() []byte { return b.data[b.start:] }

// Len reports the number of serialized bytes.
func (b *SerializeBuffer) Len() int { return len(b.data) - b.start }

// Clear resets the buffer for reuse, retaining the backing array.
func (b *SerializeBuffer) Clear() {
	// Re-centre the start so headroom is restored.
	b.start = len(b.data)
}

// ensureHeadroom guarantees at least n bytes of prepend space. Only the
// used suffix is copied when the backing array grows.
func (b *SerializeBuffer) ensureHeadroom(n int) {
	if n <= b.start {
		return
	}
	used := len(b.data) - b.start
	size := used + n
	if size < 2*len(b.data) {
		size = 2 * len(b.data)
	}
	grown := make([]byte, size)
	copy(grown[size-used:], b.data[b.start:])
	b.data = grown
	b.start = size - used
}

// PrependBytes returns a slice of n fresh bytes at the front of the
// buffer for a layer header to fill in.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	b.ensureHeadroom(n)
	b.start -= n
	return b.data[b.start : b.start+n]
}

// AppendBytes returns a slice of n zeroed bytes at the back of the
// buffer.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	old := len(b.data)
	if cap(b.data) >= old+n {
		b.data = b.data[:old+n]
	} else {
		size := old + n
		if size < 2*old {
			size = 2 * old
		}
		grown := make([]byte, old+n, size)
		// Only the used suffix carries data; the headroom before
		// b.start is dead space and need not be copied.
		copy(grown[b.start:], b.data[b.start:])
		b.data = grown
	}
	s := b.data[old : old+n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// sizedLayer is implemented by layers that can report their serialized
// size up front, letting SerializeLayers size the buffer exactly
// instead of growing it prepend by prepend.
type sizedLayer interface {
	serializedSize() int
}

// SerializeLayers clears the buffer and serializes the given layers
// outermost-first (the conventional call order), so the on-wire bytes
// come out as layers[0] | layers[1] | ... | layers[n-1]. When every
// layer reports its size, the buffer is sized exactly once up front.
func SerializeLayers(b *SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) error {
	b.Clear()
	need := 0
	for _, l := range layers {
		s, ok := l.(sizedLayer)
		if !ok {
			need = 0
			break
		}
		need += s.serializedSize()
	}
	if need > 0 {
		b.ensureHeadroom(need)
	}
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b, opts); err != nil {
			return err
		}
	}
	return nil
}

// AppendLayers serializes the layers as SerializeLayers does and
// appends the resulting bytes to dst, reusing dst's backing array when
// it has capacity. The scratch buffer used for serialization is pooled,
// so a caller that recycles dst allocates nothing in steady state.
func AppendLayers(dst []byte, opts SerializeOptions, layers ...SerializableLayer) ([]byte, error) {
	b := GetSerializeBuffer()
	defer PutSerializeBuffer(b)
	if err := SerializeLayers(b, opts, layers...); err != nil {
		return dst, err
	}
	return append(dst, b.Bytes()...), nil
}

// Payload is a trivial layer wrapping opaque application bytes.
type Payload []byte

// LayerType implements DecodingLayer and SerializableLayer.
func (Payload) LayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes stores data as the payload.
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = data
	return nil
}

// NextLayerType reports that nothing follows a payload.
func (Payload) NextLayerType() LayerType { return LayerTypeZero }

// LayerPayload returns nil; payloads carry no further layers.
func (Payload) LayerPayload() []byte { return nil }

func (p Payload) serializedSize() int { return len(p) }

// SerializeTo prepends the payload bytes.
func (p Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	copy(b.PrependBytes(len(p)), p)
	return nil
}
