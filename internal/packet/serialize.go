package packet

// SerializeBuffer builds packet bytes innermost-layer-first, like
// gopacket's SerializeBuffer: each layer prepends its header in front of
// the payload already in the buffer. The buffer keeps headroom at the
// front so prepends rarely reallocate.
type SerializeBuffer struct {
	data  []byte // full backing array
	start int    // index of first valid byte
}

// NewSerializeBuffer returns a buffer with enough headroom for a typical
// IPv6+TCP+options packet.
func NewSerializeBuffer() *SerializeBuffer {
	return &SerializeBuffer{data: make([]byte, 128), start: 128}
}

// Bytes returns the serialized packet so far. The slice is valid until
// the next mutation of the buffer.
func (b *SerializeBuffer) Bytes() []byte { return b.data[b.start:] }

// Len reports the number of serialized bytes.
func (b *SerializeBuffer) Len() int { return len(b.data) - b.start }

// Clear resets the buffer for reuse, retaining the backing array.
func (b *SerializeBuffer) Clear() {
	// Re-centre the start so headroom is restored.
	b.start = len(b.data)
}

// PrependBytes returns a slice of n fresh bytes at the front of the
// buffer for a layer header to fill in.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n > b.start {
		grown := make([]byte, len(b.data)+n+128)
		shift := n + 128
		copy(grown[b.start+shift:], b.data[b.start:])
		b.data = grown
		b.start += shift
	}
	b.start -= n
	return b.data[b.start : b.start+n]
}

// AppendBytes returns a slice of n fresh bytes at the back of the buffer.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	old := len(b.data)
	if cap(b.data) >= old+n {
		b.data = b.data[:old+n]
	} else {
		grown := make([]byte, old+n, (old+n)*2)
		copy(grown, b.data)
		b.data = grown
	}
	s := b.data[old : old+n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// SerializeLayers clears the buffer and serializes the given layers
// outermost-first (the conventional call order), so the on-wire bytes
// come out as layers[0] | layers[1] | ... | layers[n-1].
func SerializeLayers(b *SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b, opts); err != nil {
			return err
		}
	}
	return nil
}

// Payload is a trivial layer wrapping opaque application bytes.
type Payload []byte

// LayerType implements DecodingLayer and SerializableLayer.
func (Payload) LayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes stores data as the payload.
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = data
	return nil
}

// NextLayerType reports that nothing follows a payload.
func (Payload) NextLayerType() LayerType { return LayerTypeZero }

// LayerPayload returns nil; payloads carry no further layers.
func (Payload) LayerPayload() []byte { return nil }

// SerializeTo prepends the payload bytes.
func (p Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	copy(b.PrependBytes(len(p)), p)
	return nil
}
