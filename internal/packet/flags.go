package packet

import "strings"

// TCPFlags is the 8-bit TCP flag field (plus NS is omitted; the modern
// header reserves it and no tampering signature uses it).
type TCPFlags uint8

// Individual TCP flags in wire order (low bit first).
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// Common flag combinations used throughout the simulator and classifier.
const (
	FlagsSYN    = FlagSYN
	FlagsSYNACK = FlagSYN | FlagACK
	FlagsACK    = FlagACK
	FlagsPSHACK = FlagPSH | FlagACK
	FlagsFINACK = FlagFIN | FlagACK
	FlagsRST    = FlagRST
	FlagsRSTACK = FlagRST | FlagACK
)

// Has reports whether every flag in mask is set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// HasAny reports whether any flag in mask is set.
func (f TCPFlags) HasAny(mask TCPFlags) bool { return f&mask != 0 }

// IsRST reports whether the RST bit is set (with or without ACK).
func (f TCPFlags) IsRST() bool { return f&FlagRST != 0 }

// IsRSTOnly reports whether the packet is a bare RST: RST set, ACK clear.
func (f TCPFlags) IsRSTOnly() bool { return f&FlagRST != 0 && f&FlagACK == 0 }

// IsRSTACK reports whether both RST and ACK are set.
func (f TCPFlags) IsRSTACK() bool { return f.Has(FlagRST | FlagACK) }

// String renders the flags in the conventional "SYN+ACK" notation.
func (f TCPFlags) String() string {
	if f == 0 {
		return "NONE"
	}
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagSYN, "SYN"},
		{FlagRST, "RST"},
		{FlagFIN, "FIN"},
		{FlagPSH, "PSH"},
		{FlagACK, "ACK"},
		{FlagURG, "URG"},
		{FlagECE, "ECE"},
		{FlagCWR, "CWR"},
	}
	var b strings.Builder
	for _, n := range names {
		if f&n.bit != 0 {
			if b.Len() > 0 {
				b.WriteByte('+')
			}
			b.WriteString(n.name)
		}
	}
	return b.String()
}
