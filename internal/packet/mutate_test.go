package packet

import "testing"

func TestDecrementTTLIPv4(t *testing.T) {
	ip := IPv4{TTL: 64, ID: 9, Protocol: protoTCP, SrcIP: mustAddr(t, "10.0.0.1"), DstIP: mustAddr(t, "10.0.0.2")}
	tcp := TCP{SrcPort: 1, DstPort: 2, Flags: FlagsSYN}
	tcp.SetNetworkLayerForChecksum(&ip)
	wire := serialize(t, &ip, &tcp)

	if !DecrementTTL(wire, 13) {
		t.Fatal("DecrementTTL returned false")
	}
	var out IPv4
	if err := out.DecodeFromBytes(wire); err != nil {
		t.Fatalf("decode after patch: %v", err)
	}
	if out.TTL != 51 {
		t.Errorf("TTL = %d, want 51", out.TTL)
	}
	// The patched header checksum must still be internally consistent.
	hdr := append([]byte{}, wire[:20]...)
	if got := ipv4HeaderChecksum(hdr); got != out.Checksum {
		t.Errorf("patched checksum = %#x, recomputed %#x", out.Checksum, got)
	}
}

func TestDecrementTTLIPv4Repeated(t *testing.T) {
	// Many small decrements must equal one big one, checksum included.
	mk := func() []byte {
		ip := IPv4{TTL: 128, ID: 77, Protocol: protoTCP, SrcIP: mustAddr(t, "10.0.0.3"), DstIP: mustAddr(t, "10.0.0.4")}
		tcp := TCP{SrcPort: 5, DstPort: 6, Flags: FlagsACK}
		tcp.SetNetworkLayerForChecksum(&ip)
		return serialize(t, &ip, &tcp)
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		if !DecrementTTL(a, 1) {
			t.Fatal("stepwise decrement failed")
		}
	}
	if !DecrementTTL(b, 10) {
		t.Fatal("bulk decrement failed")
	}
	if string(a) != string(b) {
		t.Error("stepwise and bulk decrements diverge")
	}
}

func TestDecrementTTLIPv6(t *testing.T) {
	ip := IPv6{NextHeader: protoTCP, HopLimit: 64, SrcIP: mustAddr(t, "2001:db8::1"), DstIP: mustAddr(t, "2001:db8::2")}
	tcp := TCP{SrcPort: 1, DstPort: 2, Flags: FlagsSYN}
	tcp.SetNetworkLayerForChecksum(&ip)
	wire := serialize(t, &ip, &tcp)
	if !DecrementTTL(wire, 5) {
		t.Fatal("DecrementTTL returned false")
	}
	var out IPv6
	if err := out.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if out.HopLimit != 59 {
		t.Errorf("hop limit = %d, want 59", out.HopLimit)
	}
}

func TestDecrementTTLUnderflow(t *testing.T) {
	ip := IPv4{TTL: 3, Protocol: protoTCP, SrcIP: mustAddr(t, "10.0.0.1"), DstIP: mustAddr(t, "10.0.0.2")}
	tcp := TCP{Flags: FlagsSYN}
	tcp.SetNetworkLayerForChecksum(&ip)
	wire := serialize(t, &ip, &tcp)
	saved := append([]byte{}, wire...)
	if DecrementTTL(wire, 3) {
		t.Error("decrement to zero should report expiry")
	}
	if string(wire) != string(saved) {
		t.Error("packet mutated despite expiry")
	}
}

func TestDecrementTTLGarbage(t *testing.T) {
	if DecrementTTL(nil, 1) {
		t.Error("nil accepted")
	}
	if DecrementTTL([]byte{0xff, 0x00}, 1) {
		t.Error("garbage accepted")
	}
	if !DecrementTTL([]byte{4 << 4, 0, 0, 0, 0, 0, 0, 0, 9, 6, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 0) {
		t.Error("zero decrement of valid packet rejected")
	}
}
