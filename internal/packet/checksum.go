package packet

import "net/netip"

// onesSum accumulates the 16-bit one's-complement sum over data into acc.
// A trailing odd byte is padded with zero, per RFC 1071.
func onesSum(acc uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		acc += uint32(data[n-1]) << 8
	}
	return acc
}

// foldChecksum folds a 32-bit accumulator into the final 16-bit
// one's-complement checksum.
func foldChecksum(acc uint32) uint16 {
	for acc > 0xffff {
		acc = (acc >> 16) + (acc & 0xffff)
	}
	return ^uint16(acc)
}

// ipv4HeaderChecksum computes the IPv4 header checksum over hdr with the
// checksum field (bytes 10-11) treated as zero.
func ipv4HeaderChecksum(hdr []byte) uint16 {
	acc := onesSum(0, hdr[:10])
	acc = onesSum(acc, hdr[12:])
	return foldChecksum(acc)
}

// pseudoHeaderSum returns the one's-complement sum of the TCP/UDP
// pseudo-header for the given address pair, protocol, and segment length.
// It handles both IPv4 (RFC 793) and IPv6 (RFC 8200) pseudo-headers.
func pseudoHeaderSum(src, dst netip.Addr, protocol uint8, length int) uint32 {
	var acc uint32
	if src.Is4() && dst.Is4() {
		s, d := src.As4(), dst.As4()
		acc = onesSum(acc, s[:])
		acc = onesSum(acc, d[:])
		acc += uint32(protocol)
		acc += uint32(length)
		return acc
	}
	s, d := src.As16(), dst.As16()
	acc = onesSum(acc, s[:])
	acc = onesSum(acc, d[:])
	acc += uint32(length >> 16)
	acc += uint32(length & 0xffff)
	acc += uint32(protocol)
	return acc
}

// tcpChecksum computes the TCP checksum for segment (header+payload with
// the checksum field zeroed) between src and dst.
func tcpChecksum(src, dst netip.Addr, segment []byte) uint16 {
	acc := pseudoHeaderSum(src, dst, protoTCP, len(segment))
	acc = onesSum(acc, segment)
	return foldChecksum(acc)
}

// protoTCP is the IP protocol number for TCP.
const protoTCP = 6
