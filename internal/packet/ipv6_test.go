package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestIPv6RoundTrip(t *testing.T) {
	in := IPv6{
		TrafficClass: 0xb8,
		FlowLabel:    0xabcde,
		NextHeader:   protoTCP,
		HopLimit:     64,
		SrcIP:        mustAddr(t, "2001:db8::1"),
		DstIP:        mustAddr(t, "2001:db8:ffff::2"),
	}
	payload := Payload([]byte("v6 payload"))
	wire := serialize(t, &in, payload)

	var out IPv6
	if err := out.DecodeFromBytes(wire); err != nil {
		t.Fatalf("DecodeFromBytes: %v", err)
	}
	if out.Version != 6 {
		t.Errorf("version = %d, want 6", out.Version)
	}
	if out.TrafficClass != in.TrafficClass {
		t.Errorf("traffic class = %#x, want %#x", out.TrafficClass, in.TrafficClass)
	}
	if out.FlowLabel != in.FlowLabel {
		t.Errorf("flow label = %#x, want %#x", out.FlowLabel, in.FlowLabel)
	}
	if out.HopLimit != 64 || out.NextHeader != protoTCP {
		t.Errorf("hop/next = %d/%d, want 64/%d", out.HopLimit, out.NextHeader, protoTCP)
	}
	if out.SrcIP != in.SrcIP || out.DstIP != in.DstIP {
		t.Errorf("addrs = %v->%v, want %v->%v", out.SrcIP, out.DstIP, in.SrcIP, in.DstIP)
	}
	if int(out.Length) != len(payload) {
		t.Errorf("Length = %d, want %d", out.Length, len(payload))
	}
	if !bytes.Equal(out.LayerPayload(), payload) {
		t.Errorf("payload = %q, want %q", out.LayerPayload(), payload)
	}
}

func TestIPv6DecodeErrors(t *testing.T) {
	var ip IPv6
	if err := ip.DecodeFromBytes(make([]byte, 39)); err != ErrTruncated {
		t.Errorf("short buffer: err = %v, want ErrTruncated", err)
	}
	bad := make([]byte, 40)
	bad[0] = 4 << 4
	if err := ip.DecodeFromBytes(bad); err != ErrVersion {
		t.Errorf("wrong version: err = %v, want ErrVersion", err)
	}
}

func TestIPv6LengthTruncatesPayload(t *testing.T) {
	in := IPv6{NextHeader: protoTCP, HopLimit: 64, SrcIP: mustAddr(t, "2001:db8::1"), DstIP: mustAddr(t, "2001:db8::2")}
	wire := serialize(t, &in, Payload("abc"))
	padded := append(append([]byte{}, wire...), 0xff, 0xff)
	var out IPv6
	if err := out.DecodeFromBytes(padded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if string(out.LayerPayload()) != "abc" {
		t.Errorf("payload = %q, want %q", out.LayerPayload(), "abc")
	}
}

func TestIPv6RoundTripQuick(t *testing.T) {
	src := mustAddr(t, "2001:db8::aa")
	dst := mustAddr(t, "2001:db8::bb")
	f := func(hop, tc uint8, fl uint32, payload []byte) bool {
		in := IPv6{
			TrafficClass: tc, FlowLabel: fl & 0xfffff,
			NextHeader: protoTCP, HopLimit: hop, SrcIP: src, DstIP: dst,
		}
		buf := NewSerializeBuffer()
		if err := SerializeLayers(buf, SerializeOptions{FixLengths: true}, &in, Payload(payload)); err != nil {
			return false
		}
		var out IPv6
		if err := out.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return out.HopLimit == hop && out.TrafficClass == tc &&
			out.FlowLabel == fl&0xfffff && bytes.Equal(out.LayerPayload(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
