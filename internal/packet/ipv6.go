package packet

import (
	"encoding/binary"
	"net/netip"
)

// IPv6 is the Internet Protocol version 6 fixed header (RFC 8200).
// Extension headers other than the payload are not modelled; the
// simulator never emits them and real captures with them decode to a
// Payload next-layer.
type IPv6 struct {
	Version      uint8
	TrafficClass uint8
	FlowLabel    uint32
	Length       uint16 // payload length
	NextHeader   uint8
	HopLimit     uint8 // the IPv6 analogue of TTL; key tampering evidence
	SrcIP        netip.Addr
	DstIP        netip.Addr

	payload []byte
}

// LayerType implements DecodingLayer.
func (*IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// NextLayerType maps the next-header field to a known layer.
func (ip *IPv6) NextLayerType() LayerType {
	if ip.NextHeader == protoTCP {
		return LayerTypeTCP
	}
	return LayerTypePayload
}

// LayerPayload returns the bytes after the fixed header, truncated to
// the payload-length field when the buffer is longer.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// DecodeFromBytes parses an IPv6 fixed header.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < 40 {
		return ErrTruncated
	}
	ip.Version = data[0] >> 4
	if ip.Version != 6 {
		return ErrVersion
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = uint32(data[1]&0x0f)<<16 | uint32(data[2])<<8 | uint32(data[3])
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	ip.SrcIP = netip.AddrFrom16([16]byte(data[8:24]))
	ip.DstIP = netip.AddrFrom16([16]byte(data[24:40]))
	end := len(data)
	if int(ip.Length)+40 < end {
		end = int(ip.Length) + 40
	}
	ip.payload = data[40:end]
	return nil
}

func (ip *IPv6) serializedSize() int { return 40 }

// SerializeTo prepends the IPv6 fixed header onto b.
func (ip *IPv6) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := b.Len()
	hdr := b.PrependBytes(40)
	if opts.FixLengths {
		ip.Length = uint16(payloadLen)
	}
	ip.Version = 6
	hdr[0] = 6<<4 | ip.TrafficClass>>4
	hdr[1] = ip.TrafficClass<<4 | uint8(ip.FlowLabel>>16)&0x0f
	hdr[2] = uint8(ip.FlowLabel >> 8)
	hdr[3] = uint8(ip.FlowLabel)
	binary.BigEndian.PutUint16(hdr[4:6], ip.Length)
	hdr[6] = ip.NextHeader
	hdr[7] = ip.HopLimit
	src, dst := ip.SrcIP.As16(), ip.DstIP.As16()
	copy(hdr[8:24], src[:])
	copy(hdr[24:40], dst[:])
	return nil
}
