package packet

import (
	"bytes"
	"testing"
)

// testLayers builds a representative IPv4+TCP+payload layer stack.
func testLayers(t testing.TB, payload int) (*IPv4, *TCP, Payload) {
	t.Helper()
	ip := &IPv4{TTL: 64, ID: 7, Flags: IPv4DontFragment, Protocol: protoTCP,
		SrcIP: mustAddrB(t, "10.1.2.3"), DstIP: mustAddrB(t, "192.0.2.80")}
	tcp := &TCP{SrcPort: 40000, DstPort: 443, Seq: 100, Ack: 1,
		Flags: FlagsPSHACK, Window: 64240, Options: []TCPOption{
			{Kind: TCPOptionMSS, Data: []byte{0x05, 0xb4}},
		}}
	tcp.SetNetworkLayerForChecksum(ip)
	return ip, tcp, Payload(bytes.Repeat([]byte{0xab}, payload))
}

// TestSerializeLayersExactSizing pins the presize path: serializing a
// sized layer stack into a fresh buffer must produce a backing array of
// exactly the wire size (one allocation, no grow, no slack).
func TestSerializeLayersExactSizing(t *testing.T) {
	ip, tcp, pay := testLayers(t, 100)
	b := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := SerializeLayers(b, opts, ip, tcp, pay); err != nil {
		t.Fatal(err)
	}
	want := 20 + 24 + 100 // IPv4 + TCP(MSS padded) + payload
	if b.Len() != want {
		t.Fatalf("Len = %d, want %d", b.Len(), want)
	}
	if len(b.data) != want {
		t.Errorf("backing array = %d bytes, want exactly %d", len(b.data), want)
	}
	var s Summary
	if err := NewSummaryParser().Parse(b.Bytes(), &s); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if s.PayloadLen != 100 || s.SrcPort != 40000 {
		t.Errorf("round trip decoded %+v", s)
	}
}

// TestSerializeBufferReuseNoGrow verifies that re-serializing into the
// same buffer reuses the backing array.
func TestSerializeBufferReuseNoGrow(t *testing.T) {
	ip, tcp, pay := testLayers(t, 64)
	b := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := SerializeLayers(b, opts, ip, tcp, pay); err != nil {
		t.Fatal(err)
	}
	first := &b.data[0]
	for i := 0; i < 8; i++ {
		if err := SerializeLayers(b, opts, ip, tcp, pay); err != nil {
			t.Fatal(err)
		}
	}
	if &b.data[0] != first {
		t.Error("backing array reallocated on same-size reuse")
	}
}

// TestAppendLayers verifies the append-style encode both into empty and
// into preloaded destination buffers, with capacity reuse.
func TestAppendLayers(t *testing.T) {
	ip, tcp, pay := testLayers(t, 32)
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	ref := NewSerializeBuffer()
	if err := SerializeLayers(ref, opts, ip, tcp, pay); err != nil {
		t.Fatal(err)
	}

	out, err := AppendLayers(nil, opts, ip, tcp, pay)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, ref.Bytes()) {
		t.Error("AppendLayers(nil) diverges from SerializeLayers")
	}

	prefix := []byte("prefix")
	out2, err := AppendLayers(append([]byte(nil), prefix...), opts, ip, tcp, pay)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2[:len(prefix)], prefix) || !bytes.Equal(out2[len(prefix):], ref.Bytes()) {
		t.Error("AppendLayers did not append after existing content")
	}

	// Capacity reuse: appending into a recycled buffer must not grow it.
	scratch := make([]byte, 0, 4096)
	out3, err := AppendLayers(scratch, opts, ip, tcp, pay)
	if err != nil {
		t.Fatal(err)
	}
	if &out3[:1][0] != &scratch[:1][0] {
		t.Error("AppendLayers reallocated a destination with spare capacity")
	}
}

// TestSerializeBufferPool round-trips buffers through the pool and
// checks cleared state plus the retention cap.
func TestSerializeBufferPool(t *testing.T) {
	b := GetSerializeBuffer()
	copy(b.PrependBytes(16), bytes.Repeat([]byte{1}, 16))
	PutSerializeBuffer(b)
	b2 := GetSerializeBuffer()
	if b2.Len() != 0 {
		t.Errorf("pooled buffer not cleared: Len = %d", b2.Len())
	}
	PutSerializeBuffer(b2)

	huge := NewSerializeBufferSize(maxPooledBuffer + 1)
	PutSerializeBuffer(huge) // must be dropped, not pooled
	if got := GetSerializeBuffer(); len(got.data) > maxPooledBuffer {
		t.Error("oversized buffer retained by pool")
	}
	PutSerializeBuffer(nil) // must not panic
}

// TestPrependGrowCopiesSuffix pins the grow fix: after forcing growth,
// previously-written bytes survive and appear at the right offsets.
func TestPrependGrowCopiesSuffix(t *testing.T) {
	b := NewSerializeBufferSize(4)
	copy(b.PrependBytes(4), []byte{9, 9, 9, 9})
	copy(b.PrependBytes(6), []byte{1, 2, 3, 4, 5, 6}) // forces growth
	got := b.Bytes()
	want := []byte{1, 2, 3, 4, 5, 6, 9, 9, 9, 9}
	if !bytes.Equal(got, want) {
		t.Errorf("bytes = %v, want %v", got, want)
	}
}

// TestAppendGrowKeepsData pins the append grow path: growing via
// AppendBytes preserves prepended content and zeroes the new region.
func TestAppendGrowKeepsData(t *testing.T) {
	b := NewSerializeBufferSize(2)
	copy(b.PrependBytes(2), []byte{7, 8})
	s := b.AppendBytes(5) // forces growth
	for _, v := range s {
		if v != 0 {
			t.Fatal("AppendBytes returned non-zeroed memory")
		}
	}
	copy(s, []byte{1, 2, 3, 4, 5})
	if got, want := b.Bytes(), []byte{7, 8, 1, 2, 3, 4, 5}; !bytes.Equal(got, want) {
		t.Errorf("bytes = %v, want %v", got, want)
	}
}

// BenchmarkSerializeReuse measures the steady-state serialize cost with
// a reused buffer — the simulator's per-packet hot path.
func BenchmarkSerializeReuse(b *testing.B) {
	ip, tcp, pay := testLayers(b, 512)
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	buf := NewSerializeBuffer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SerializeLayers(buf, opts, ip, tcp, pay); err != nil {
			b.Fatal(err)
		}
	}
}
