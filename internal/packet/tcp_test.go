package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestTCPRoundTrip(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: protoTCP, SrcIP: mustAddr(t, "192.0.2.1"), DstIP: mustAddr(t, "198.51.100.1")}
	in := TCP{
		SrcPort: 43211, DstPort: 443,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags:  FlagsPSHACK,
		Window: 65535,
		Options: []TCPOption{
			{Kind: TCPOptionMSS, Data: []byte{0x05, 0xb4}},
			{Kind: TCPOptionNOP},
			{Kind: TCPOptionWindowScale, Data: []byte{7}},
		},
	}
	in.SetNetworkLayerForChecksum(&ip)
	wire := serialize(t, &ip, &in, Payload("GET / HTTP/1.1\r\n"))

	var outIP IPv4
	if err := outIP.DecodeFromBytes(wire); err != nil {
		t.Fatalf("decode ip: %v", err)
	}
	var out TCP
	if err := out.DecodeFromBytes(outIP.LayerPayload()); err != nil {
		t.Fatalf("decode tcp: %v", err)
	}
	if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort {
		t.Errorf("ports = %d->%d, want %d->%d", out.SrcPort, out.DstPort, in.SrcPort, in.DstPort)
	}
	if out.Seq != in.Seq || out.Ack != in.Ack {
		t.Errorf("seq/ack = %#x/%#x, want %#x/%#x", out.Seq, out.Ack, in.Seq, in.Ack)
	}
	if out.Flags != FlagsPSHACK {
		t.Errorf("flags = %v, want PSH+ACK", out.Flags)
	}
	if out.Window != 65535 {
		t.Errorf("window = %d, want 65535", out.Window)
	}
	if len(out.Options) != 3 || out.Options[0].Kind != TCPOptionMSS ||
		!bytes.Equal(out.Options[0].Data, []byte{0x05, 0xb4}) {
		t.Errorf("options = %+v", out.Options)
	}
	if string(out.LayerPayload()) != "GET / HTTP/1.1\r\n" {
		t.Errorf("payload = %q", out.LayerPayload())
	}
}

func TestTCPChecksumIPv4(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: protoTCP, SrcIP: mustAddr(t, "10.1.1.1"), DstIP: mustAddr(t, "10.2.2.2")}
	tcp := TCP{SrcPort: 1234, DstPort: 80, Seq: 1, Flags: FlagsSYN, Window: 64240}
	tcp.SetNetworkLayerForChecksum(&ip)
	wire := serialize(t, &ip, &tcp)
	var outIP IPv4
	if err := outIP.DecodeFromBytes(wire); err != nil {
		t.Fatalf("decode ip: %v", err)
	}
	seg := append([]byte{}, outIP.LayerPayload()...)
	if !VerifyChecksum(outIP.SrcIP, outIP.DstIP, seg) {
		t.Error("IPv4 TCP checksum does not verify")
	}
	// Corrupt one byte: checksum must fail.
	seg[4] ^= 0xff
	if VerifyChecksum(outIP.SrcIP, outIP.DstIP, seg) {
		t.Error("corrupted segment still verifies")
	}
}

func TestTCPChecksumIPv6(t *testing.T) {
	ip := IPv6{NextHeader: protoTCP, HopLimit: 64, SrcIP: mustAddr(t, "2001:db8::1"), DstIP: mustAddr(t, "2001:db8::2")}
	tcp := TCP{SrcPort: 1234, DstPort: 443, Seq: 99, Flags: FlagsSYNACK, Window: 65535}
	tcp.SetNetworkLayerForChecksum(&ip)
	wire := serialize(t, &ip, &tcp, Payload("data"))
	var outIP IPv6
	if err := outIP.DecodeFromBytes(wire); err != nil {
		t.Fatalf("decode ip: %v", err)
	}
	seg := append([]byte{}, outIP.LayerPayload()...)
	if !VerifyChecksum(outIP.SrcIP, outIP.DstIP, seg) {
		t.Error("IPv6 TCP checksum does not verify")
	}
}

// TestTCPChecksumKnownVector checks the checksum implementation against a
// hand-computed RFC 1071 vector.
func TestTCPChecksumKnownVector(t *testing.T) {
	// Minimal 20-byte TCP header, all fields zero except the ports,
	// between 0.0.0.1 and 0.0.0.2. Computed by hand:
	// pseudo-header sum = 1 + 2 + 6 + 20 = 29 = 0x001d
	// header sum = 0x0001 (src port) + 0x0002 (dst port)
	// total = 0x0020 -> checksum = ^0x0020 = 0xffdf
	seg := make([]byte, 20)
	binary.BigEndian.PutUint16(seg[0:2], 1)
	binary.BigEndian.PutUint16(seg[2:4], 2)
	src := mustAddr(t, "0.0.0.1")
	dst := mustAddr(t, "0.0.0.2")
	if got := tcpChecksum(src, dst, seg); got != 0xffdf {
		t.Errorf("checksum = %#x, want 0xffdf", got)
	}
}

func TestTCPDecodeErrors(t *testing.T) {
	var tcp TCP
	if err := tcp.DecodeFromBytes(make([]byte, 19)); err != ErrTruncated {
		t.Errorf("short: err = %v, want ErrTruncated", err)
	}
	bad := make([]byte, 20)
	bad[12] = 4 << 4 // data offset 16 bytes < 20
	if err := tcp.DecodeFromBytes(bad); err != ErrHeaderLen {
		t.Errorf("bad offset: err = %v, want ErrHeaderLen", err)
	}
	bad[12] = 10 << 4 // 40 bytes > 20-byte buffer
	if err := tcp.DecodeFromBytes(bad); err != ErrHeaderLen {
		t.Errorf("offset beyond buffer: err = %v, want ErrHeaderLen", err)
	}
}

func TestTCPMalformedOptions(t *testing.T) {
	// Header claims 24 bytes with a 4-byte options area containing an
	// option whose length octet overruns the area.
	seg := make([]byte, 24)
	seg[12] = 6 << 4
	seg[20] = byte(TCPOptionMSS)
	seg[21] = 10 // overruns the 4-byte options area
	var tcp TCP
	if err := tcp.DecodeFromBytes(seg); err != ErrHeaderLen {
		t.Errorf("overrunning option: err = %v, want ErrHeaderLen", err)
	}
	// Zero-length option is also invalid.
	seg[21] = 0
	if err := tcp.DecodeFromBytes(seg); err != ErrHeaderLen {
		t.Errorf("zero-length option: err = %v, want ErrHeaderLen", err)
	}
}

func TestTCPFlagsString(t *testing.T) {
	cases := []struct {
		f    TCPFlags
		want string
	}{
		{FlagsSYN, "SYN"},
		{FlagsSYNACK, "SYN+ACK"},
		{FlagsRSTACK, "RST+ACK"},
		{FlagsPSHACK, "PSH+ACK"},
		{0, "NONE"},
		{FlagFIN | FlagACK, "FIN+ACK"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%08b.String() = %q, want %q", uint8(c.f), got, c.want)
		}
	}
}

func TestTCPFlagPredicates(t *testing.T) {
	if !FlagsRST.IsRSTOnly() || FlagsRST.IsRSTACK() {
		t.Error("bare RST misclassified")
	}
	if FlagsRSTACK.IsRSTOnly() || !FlagsRSTACK.IsRSTACK() {
		t.Error("RST+ACK misclassified")
	}
	if !FlagsRST.IsRST() || !FlagsRSTACK.IsRST() || FlagsSYN.IsRST() {
		t.Error("IsRST wrong")
	}
}

func TestTCPRoundTripQuick(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: protoTCP, SrcIP: mustAddr(t, "10.0.0.1"), DstIP: mustAddr(t, "10.0.0.2")}
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		in := TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: TCPFlags(flags), Window: win}
		in.SetNetworkLayerForChecksum(&ip)
		buf := NewSerializeBuffer()
		if err := SerializeLayers(buf, SerializeOptions{FixLengths: true, ComputeChecksums: true}, &in, Payload(payload)); err != nil {
			return false
		}
		var out TCP
		if err := out.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return out.SrcPort == sp && out.DstPort == dp && out.Seq == seq &&
			out.Ack == ack && out.Flags == TCPFlags(flags) && out.Window == win &&
			bytes.Equal(out.LayerPayload(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
