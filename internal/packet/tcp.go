package packet

import (
	"encoding/binary"
	"net/netip"
)

// TCPOptionKind identifies a TCP option (RFC 793 and successors).
type TCPOptionKind uint8

// TCP option kinds used by the simulator's client profiles.
const (
	TCPOptionEndOfOptions TCPOptionKind = 0
	TCPOptionNOP          TCPOptionKind = 1
	TCPOptionMSS          TCPOptionKind = 2
	TCPOptionWindowScale  TCPOptionKind = 3
	TCPOptionSACKOK       TCPOptionKind = 4
	TCPOptionTimestamps   TCPOptionKind = 8
)

// TCPOption is a single TCP option. For EOL and NOP, Data is empty and
// the length octet is omitted on the wire, per the RFCs.
type TCPOption struct {
	Kind TCPOptionKind
	Data []byte
}

// wireLen returns the option's on-wire size in bytes.
func (o TCPOption) wireLen() int {
	if o.Kind == TCPOptionEndOfOptions || o.Kind == TCPOptionNOP {
		return 1
	}
	return 2 + len(o.Data)
}

// TCP is the Transmission Control Protocol header (RFC 793).
type TCP struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words
	Flags      TCPFlags
	Window     uint16
	Checksum   uint16
	Urgent     uint16
	Options    []TCPOption

	payload []byte

	// checksum pseudo-header context, set via SetNetworkLayerForChecksum
	ckSrc, ckDst netip.Addr
	ckSet        bool
}

// LayerType implements DecodingLayer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// NextLayerType reports that TCP carries opaque payload.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload returns the TCP segment payload.
func (t *TCP) LayerPayload() []byte { return t.payload }

// SetNetworkLayerForChecksum records the pseudo-header addresses used
// when serializing with ComputeChecksums. It accepts either an *IPv4 or
// an *IPv6.
func (t *TCP) SetNetworkLayerForChecksum(network DecodingLayer) {
	switch ip := network.(type) {
	case *IPv4:
		t.ckSrc, t.ckDst, t.ckSet = ip.SrcIP, ip.DstIP, true
	case *IPv6:
		t.ckSrc, t.ckDst, t.ckSet = ip.SrcIP, ip.DstIP, true
	default:
		t.ckSet = false
	}
}

// DecodeFromBytes parses a TCP header and its options.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hlen := int(t.DataOffset) * 4
	if hlen < 20 || hlen > len(data) {
		return ErrHeaderLen
	}
	t.Flags = TCPFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = t.Options[:0]
	opts := data[20:hlen]
	for len(opts) > 0 {
		kind := TCPOptionKind(opts[0])
		switch kind {
		case TCPOptionEndOfOptions:
			opts = nil
		case TCPOptionNOP:
			t.Options = append(t.Options, TCPOption{Kind: kind})
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return ErrTruncated
			}
			olen := int(opts[1])
			if olen < 2 || olen > len(opts) {
				return ErrHeaderLen
			}
			t.Options = append(t.Options, TCPOption{Kind: kind, Data: opts[2:olen]})
			opts = opts[olen:]
		}
	}
	t.payload = data[hlen:]
	return nil
}

func (t *TCP) serializedSize() int {
	optLen := 0
	for _, o := range t.Options {
		optLen += o.wireLen()
	}
	return 20 + (optLen+3)&^3
}

// SerializeTo prepends the TCP header onto b. With opts.FixLengths the
// data offset is computed from the options; with opts.ComputeChecksums
// the checksum is computed using the pseudo-header registered via
// SetNetworkLayerForChecksum.
func (t *TCP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	optLen := 0
	for _, o := range t.Options {
		optLen += o.wireLen()
	}
	padded := (optLen + 3) &^ 3
	hlen := 20 + padded
	hdr := b.PrependBytes(hlen)
	if opts.FixLengths {
		t.DataOffset = uint8(hlen / 4)
	}
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], t.Ack)
	hdr[12] = t.DataOffset << 4
	hdr[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(hdr[14:16], t.Window)
	hdr[16], hdr[17] = 0, 0
	binary.BigEndian.PutUint16(hdr[18:20], t.Urgent)
	at := 20
	for _, o := range t.Options {
		hdr[at] = uint8(o.Kind)
		if o.Kind == TCPOptionEndOfOptions || o.Kind == TCPOptionNOP {
			at++
			continue
		}
		hdr[at+1] = uint8(2 + len(o.Data))
		copy(hdr[at+2:], o.Data)
		at += 2 + len(o.Data)
	}
	for at < hlen {
		hdr[at] = 0 // EOL padding
		at++
	}
	if opts.ComputeChecksums && t.ckSet {
		t.Checksum = tcpChecksum(t.ckSrc, t.ckDst, b.Bytes())
	}
	binary.BigEndian.PutUint16(hdr[16:18], t.Checksum)
	return nil
}

// VerifyChecksum recomputes the checksum over segment (a full TCP header
// plus payload) with the given pseudo-header addresses and reports
// whether it matches the checksum field inside segment.
func VerifyChecksum(src, dst netip.Addr, segment []byte) bool {
	if len(segment) < 20 {
		return false
	}
	want := binary.BigEndian.Uint16(segment[16:18])
	tmp16, tmp17 := segment[16], segment[17]
	segment[16], segment[17] = 0, 0
	got := tcpChecksum(src, dst, segment)
	segment[16], segment[17] = tmp16, tmp17
	return got == want
}
