package packet

import (
	"fmt"
	"net/netip"
)

// DecodingLayerParser decodes a packet through a fixed set of
// preallocated layers without allocating, in the style of gopacket's
// parser of the same name. Register one layer value per LayerType; each
// DecodeLayers call overwrites the registered layers in place.
type DecodingLayerParser struct {
	first  LayerType
	layers [numLayerTypes]DecodingLayer
}

// NewDecodingLayerParser builds a parser that starts decoding at first
// and dispatches into the given layers by their LayerType.
func NewDecodingLayerParser(first LayerType, layers ...DecodingLayer) *DecodingLayerParser {
	p := &DecodingLayerParser{first: first}
	for _, l := range layers {
		p.layers[l.LayerType()] = l
	}
	return p
}

// UnsupportedLayerError reports the layer type at which decoding stopped
// because no decoder was registered for it.
type UnsupportedLayerError struct{ Type LayerType }

// Error implements error.
func (e UnsupportedLayerError) Error() string {
	return fmt.Sprintf("packet: no decoder registered for layer %v", e.Type)
}

// DecodeLayers decodes data starting at the parser's first layer,
// appending each decoded LayerType to *decoded (which it truncates
// first). If a layer type without a registered decoder is reached before
// the data runs out, it returns UnsupportedLayerError; layers decoded up
// to that point remain valid.
func (p *DecodingLayerParser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	typ := p.first
	for typ != LayerTypeZero {
		layer := p.layers[typ]
		if layer == nil {
			return UnsupportedLayerError{Type: typ}
		}
		if err := layer.DecodeFromBytes(data); err != nil {
			return err
		}
		*decoded = append(*decoded, typ)
		data = layer.LayerPayload()
		if len(data) == 0 {
			return nil
		}
		typ = layer.NextLayerType()
	}
	return nil
}

// IPVersion inspects the first byte of a raw IP packet and returns 4, 6,
// or 0 for anything else. Use it to choose the first layer type when the
// link layer is absent (as in our simulator, which carries bare IP).
func IPVersion(data []byte) int {
	if len(data) == 0 {
		return 0
	}
	switch data[0] >> 4 {
	case 4:
		return 4
	case 6:
		return 6
	default:
		return 0
	}
}

// Summary is a flat, decoded view of one IP+TCP packet: everything the
// capture pipeline records about an inbound packet. It is the bridge
// between raw wire bytes and the classifier's connection records.
type Summary struct {
	IPVersion  int
	SrcIP      netip.Addr
	DstIP      netip.Addr
	IPID       uint16 // 0 for IPv6 (field does not exist)
	TTL        uint8  // hop limit for IPv6
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	Flags      TCPFlags
	Window     uint16
	PayloadLen int
	HasOptions bool
	Payload    []byte // references the input buffer
}

// ParseSummary decodes a raw IP packet (v4 or v6) carrying TCP into a
// Summary. The parser and its layers may be reused across calls; the
// returned Summary's Payload references data.
type SummaryParser struct {
	ip4     IPv4
	ip6     IPv6
	tcp     TCP
	parser4 *DecodingLayerParser
	parser6 *DecodingLayerParser
	decoded []LayerType
}

// NewSummaryParser returns a reusable parser for IP+TCP packets.
func NewSummaryParser() *SummaryParser {
	p := &SummaryParser{}
	p.parser4 = NewDecodingLayerParser(LayerTypeIPv4, &p.ip4, &p.tcp)
	p.parser6 = NewDecodingLayerParser(LayerTypeIPv6, &p.ip6, &p.tcp)
	p.decoded = make([]LayerType, 0, 4)
	return p
}

// Parse decodes data into s. It returns an error for non-IP data,
// non-TCP payloads, or truncated headers.
func (p *SummaryParser) Parse(data []byte, s *Summary) error {
	switch IPVersion(data) {
	case 4:
		if err := p.parser4.DecodeLayers(data, &p.decoded); err != nil {
			if _, ok := err.(UnsupportedLayerError); !ok {
				return err
			}
		}
		if len(p.decoded) < 2 {
			return fmt.Errorf("packet: IPv4 payload is not TCP (proto %d)", p.ip4.Protocol)
		}
		s.IPVersion = 4
		s.SrcIP, s.DstIP = p.ip4.SrcIP, p.ip4.DstIP
		s.IPID, s.TTL = p.ip4.ID, p.ip4.TTL
	case 6:
		if err := p.parser6.DecodeLayers(data, &p.decoded); err != nil {
			if _, ok := err.(UnsupportedLayerError); !ok {
				return err
			}
		}
		if len(p.decoded) < 2 {
			return fmt.Errorf("packet: IPv6 payload is not TCP (next header %d)", p.ip6.NextHeader)
		}
		s.IPVersion = 6
		s.SrcIP, s.DstIP = p.ip6.SrcIP, p.ip6.DstIP
		s.IPID, s.TTL = 0, p.ip6.HopLimit
	default:
		return fmt.Errorf("packet: not an IP packet")
	}
	s.SrcPort, s.DstPort = p.tcp.SrcPort, p.tcp.DstPort
	s.Seq, s.Ack = p.tcp.Seq, p.tcp.Ack
	s.Flags = p.tcp.Flags
	s.Window = p.tcp.Window
	s.Payload = p.tcp.LayerPayload()
	s.PayloadLen = len(s.Payload)
	s.HasOptions = len(p.tcp.Options) > 0
	return nil
}
