package packet

import (
	"net/netip"
	"testing"
)

func buildTestPacket(t *testing.T, v6 bool, payload []byte) []byte {
	t.Helper()
	buf := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	tcp := TCP{SrcPort: 40000, DstPort: 443, Seq: 100, Ack: 200, Flags: FlagsPSHACK, Window: 64240}
	var err error
	if v6 {
		ip := IPv6{
			NextHeader: 6, HopLimit: 64,
			SrcIP: netip.MustParseAddr("2001:db8::1"),
			DstIP: netip.MustParseAddr("2001:db8::2"),
		}
		tcp.SetNetworkLayerForChecksum(&ip)
		err = SerializeLayers(buf, opts, &ip, &tcp, Payload(payload))
	} else {
		ip := IPv4{
			TTL: 64, ID: 7, Protocol: 6,
			SrcIP: netip.MustParseAddr("192.0.2.1"),
			DstIP: netip.MustParseAddr("198.51.100.1"),
		}
		tcp.SetNetworkLayerForChecksum(&ip)
		err = SerializeLayers(buf, opts, &ip, &tcp, Payload(payload))
	}
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestChecksumsValidIntact(t *testing.T) {
	for _, v6 := range []bool{false, true} {
		data := buildTestPacket(t, v6, []byte("hello checksum"))
		if !ChecksumsValid(data) {
			t.Errorf("v6=%v: intact packet failed verification", v6)
		}
	}
}

func TestChecksumsValidDetectsBitFlips(t *testing.T) {
	for _, v6 := range []bool{false, true} {
		base := buildTestPacket(t, v6, []byte("hello checksum"))
		// Flip a single bit at every checksummed offset: each flip must
		// be caught (any flipped word breaks the one's-complement sum,
		// and flips in the version nibble break parsing). IPv6 has no
		// header checksum, so its flow-label, next-header, and hop-limit
		// bytes (1-3, 6-7) are legitimately unprotected — as on real
		// networks — and are skipped.
		for off := 0; off < len(base); off++ {
			if v6 && (off == 1 || off == 2 || off == 3 || off == 6 || off == 7) {
				continue
			}
			data := append([]byte(nil), base...)
			data[off] ^= 0x10
			if ChecksumsValid(data) {
				t.Fatalf("v6=%v: bit flip at offset %d went undetected", v6, off)
			}
		}
	}
}

func TestChecksumsValidDetectsTruncation(t *testing.T) {
	for _, v6 := range []bool{false, true} {
		data := buildTestPacket(t, v6, []byte("a longer payload that truncation will cut"))
		for _, cut := range []int{1, 8, len(data) / 2} {
			if ChecksumsValid(data[:len(data)-cut]) {
				t.Errorf("v6=%v: truncation by %d went undetected", v6, cut)
			}
		}
	}
}

func TestChecksumsValidAfterTTLDecrement(t *testing.T) {
	for _, v6 := range []bool{false, true} {
		data := buildTestPacket(t, v6, []byte("payload"))
		if !DecrementTTL(data, 5) {
			t.Fatalf("v6=%v: DecrementTTL failed", v6)
		}
		if !ChecksumsValid(data) {
			t.Errorf("v6=%v: TTL decrement broke checksum verification", v6)
		}
	}
}

func TestChecksumsValidGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {0x45}, make([]byte, 19), make([]byte, 39)} {
		if ChecksumsValid(data) {
			t.Errorf("garbage %d bytes verified", len(data))
		}
	}
}
