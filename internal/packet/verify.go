package packet

import (
	"encoding/binary"
	"net/netip"
)

// ChecksumsValid reports whether a raw IP packet's checksums verify:
// the IPv4 header checksum and, for TCP, the transport checksum over
// the pseudo-header and segment. A receiver (NIC, kernel, or capture
// tap) drops packets that fail these checks, so the simulator uses
// this to make bit corruption and truncation behave like loss rather
// than delivering garbage to the endpoints.
//
// Truncated packets — where the IP header claims more bytes than are
// present — fail verification. Non-TCP payloads are checked only at
// the IP layer (IPv6 has no header checksum at all).
func ChecksumsValid(data []byte) bool {
	switch IPVersion(data) {
	case 4:
		if len(data) < 20 {
			return false
		}
		ihl := int(data[0]&0x0f) * 4
		totalLen := int(binary.BigEndian.Uint16(data[2:4]))
		if ihl < 20 || totalLen < ihl || len(data) < totalLen {
			return false
		}
		// RFC 1071: the one's-complement sum over the header including
		// its checksum field folds to zero on an intact header.
		if foldChecksum(onesSum(0, data[:ihl])) != 0 {
			return false
		}
		if data[9] != protoTCP {
			return true
		}
		seg := data[ihl:totalLen]
		src := netip.AddrFrom4([4]byte(data[12:16]))
		dst := netip.AddrFrom4([4]byte(data[16:20]))
		return segmentChecksumValid(src, dst, seg)
	case 6:
		if len(data) < 40 {
			return false
		}
		plen := int(binary.BigEndian.Uint16(data[4:6]))
		if len(data) < 40+plen {
			return false
		}
		if data[6] != protoTCP {
			return true
		}
		seg := data[40 : 40+plen]
		src := netip.AddrFrom16([16]byte(data[8:24]))
		dst := netip.AddrFrom16([16]byte(data[24:40]))
		return segmentChecksumValid(src, dst, seg)
	default:
		return false
	}
}

// segmentChecksumValid verifies a TCP segment's checksum in place: the
// sum over pseudo-header and segment (checksum field included) folds
// to zero when intact.
func segmentChecksumValid(src, dst netip.Addr, seg []byte) bool {
	if len(seg) < 20 {
		return false
	}
	acc := pseudoHeaderSum(src, dst, protoTCP, len(seg))
	acc = onesSum(acc, seg)
	return foldChecksum(acc) == 0
}
