package packet

import (
	"net/netip"
	"testing"
)

// FuzzSummaryParse exercises the full IP+TCP decode path with
// arbitrary bytes; it must never panic, and accepted packets must have
// coherent lengths.
func FuzzSummaryParse(f *testing.F) {
	// Seed with a valid IPv4+TCP packet.
	buf := NewSerializeBuffer()
	ip := IPv4{TTL: 64, ID: 1, Protocol: 6,
		SrcIP: mustSeedAddr("10.0.0.1"), DstIP: mustSeedAddr("10.0.0.2")}
	tcp := TCP{SrcPort: 1, DstPort: 443, Flags: FlagsPSHACK}
	tcp.SetNetworkLayerForChecksum(&ip)
	if err := SerializeLayers(buf, SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&ip, &tcp, Payload("seed")); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))
	f.Add([]byte{0x45})
	f.Add([]byte{0x60, 0, 0, 0})
	f.Add([]byte{})

	p := NewSummaryParser()
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Summary
		if err := p.Parse(data, &s); err != nil {
			return
		}
		if s.PayloadLen != len(s.Payload) {
			t.Fatalf("payload length mismatch: %d vs %d", s.PayloadLen, len(s.Payload))
		}
		if s.IPVersion != 4 && s.IPVersion != 6 {
			t.Fatalf("accepted packet with version %d", s.IPVersion)
		}
	})
}

// FuzzDecrementTTL checks the incremental checksum patch stays
// consistent on arbitrary inputs.
func FuzzDecrementTTL(f *testing.F) {
	buf := NewSerializeBuffer()
	ip := IPv4{TTL: 64, ID: 2, Protocol: 6,
		SrcIP: mustSeedAddr("10.0.0.3"), DstIP: mustSeedAddr("10.0.0.4")}
	tcp := TCP{SrcPort: 9, DstPort: 99, Flags: FlagsSYN}
	tcp.SetNetworkLayerForChecksum(&ip)
	if err := SerializeLayers(buf, SerializeOptions{FixLengths: true, ComputeChecksums: true}, &ip, &tcp); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, n uint8) {
		cp := append([]byte(nil), data...)
		ok := DecrementTTL(cp, n)
		if !ok {
			return
		}
		if IPVersion(cp) == 4 && len(cp) >= 20 {
			// The patched header checksum must be internally consistent
			// whenever the original was.
			var orig IPv4
			if err := orig.DecodeFromBytes(data); err == nil &&
				ipv4HeaderChecksum(data[:int(orig.IHL)*4]) == orig.Checksum {
				var out IPv4
				if err := out.DecodeFromBytes(cp); err != nil {
					t.Fatalf("patched packet undecodable: %v", err)
				}
				if got := ipv4HeaderChecksum(cp[:int(out.IHL)*4]); got != out.Checksum {
					t.Fatalf("patched checksum inconsistent: %#x vs %#x", out.Checksum, got)
				}
			}
		}
	})
}

func mustSeedAddr(s string) netip.Addr {
	return netip.MustParseAddr(s)
}
