package stats

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// sketchSample is one (key, value) test sample.
type sketchSample struct {
	key uint64
	val float64
}

func randomSamples(rng *rand.Rand, n int) []sketchSample {
	out := make([]sketchSample, n)
	for i := range out {
		out[i] = sketchSample{key: rng.Uint64() >> 4, val: float64(rng.IntN(1000))}
	}
	// Inject duplicates and collisions.
	for i := 0; i+7 < n; i += 7 {
		out[i+1].key = out[i].key
	}
	return out
}

func sketchOf(k int, samples []sketchSample) *Sketch {
	s := NewSketch(k)
	for _, e := range samples {
		s.Add(e.key, e.val)
	}
	return s
}

func sortedValues(s *Sketch) []float64 {
	v := s.Values()
	sort.Float64s(v)
	return v
}

func equalValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSketchOrderIndependence: any insertion order retains the same
// multiset of values.
func TestSketchOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	samples := randomSamples(rng, 500)
	want := sortedValues(sketchOf(64, samples))
	if len(want) != 64 {
		t.Fatalf("retained %d of cap 64", len(want))
	}
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]sketchSample(nil), samples...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := sortedValues(sketchOf(64, shuffled)); !equalValues(got, want) {
			t.Fatalf("trial %d: shuffled insertion changed the retained set", trial)
		}
	}
}

// TestSketchMergeEqualsUnion: merging shards equals sketching the
// concatenation, for any split and merge order.
func TestSketchMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	samples := randomSamples(rng, 400)
	want := sortedValues(sketchOf(32, samples))
	for _, cut := range []int{0, 1, 133, 399, 400} {
		a, b := sketchOf(32, samples[:cut]), sketchOf(32, samples[cut:])
		a.Merge(b)
		if got := sortedValues(a); !equalValues(got, want) {
			t.Errorf("cut %d: a.Merge(b) diverges from union", cut)
		}
		a2, b2 := sketchOf(32, samples[:cut]), sketchOf(32, samples[cut:])
		b2.Merge(a2)
		if got := sortedValues(b2); !equalValues(got, want) {
			t.Errorf("cut %d: b.Merge(a) diverges from union", cut)
		}
	}
}

// TestSketchBelowCap: fewer samples than k retains everything.
func TestSketchBelowCap(t *testing.T) {
	s := NewSketch(100)
	for i := 0; i < 10; i++ {
		s.Add(uint64(i), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	got := sortedValues(s)
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("values %v missing sample %d", got, i)
		}
	}
	if NewSketch(0).K() != 1 {
		t.Error("k<1 not clamped")
	}
}

// TestSketchKeepsSmallestKeys: retention is exactly the k smallest
// (key, value) pairs.
func TestSketchKeepsSmallestKeys(t *testing.T) {
	s := NewSketch(3)
	for k := uint64(10); k > 0; k-- {
		s.Add(k, float64(k))
	}
	got := sortedValues(s)
	if !equalValues(got, []float64{1, 2, 3}) {
		t.Fatalf("retained %v, want the 3 smallest keys", got)
	}
}
