package stats

// Sketch is a deterministic bottom-k sample: it retains the k samples
// with the smallest (key, value) pairs, where the key is a caller-
// supplied hash of the sample's identity. Because "the k smallest" is
// a pure function of the sample multiset, a Sketch is insensitive to
// insertion order and mergeable — adding records one by one, adding
// them shuffled, or merging independently built shards all yield the
// same retained set. The streaming analysis aggregators use it
// wherever the paper caps a per-signature sample (Figures 2 and 3's
// 1 000-connection evidence CDFs): a deterministic pseudo-random
// sample replaces the batch path's order-dependent "first k".
type Sketch struct {
	k int
	// entries is a binary max-heap ordered by (key, value), so the
	// largest retained pair sits at index 0 and is evicted first.
	entries []sketchEntry
}

type sketchEntry struct {
	key uint64
	val float64
}

// less orders entries by (key, value); the value tie-break makes the
// retained multiset deterministic even under hash collisions.
func (e sketchEntry) less(o sketchEntry) bool {
	if e.key != o.key {
		return e.key < o.key
	}
	return e.val < o.val
}

// NewSketch returns a sketch retaining at most k samples (k ≥ 1).
func NewSketch(k int) *Sketch {
	if k < 1 {
		k = 1
	}
	return &Sketch{k: k}
}

// K reports the retention cap.
func (s *Sketch) K() int { return s.k }

// Len reports the retained sample count.
func (s *Sketch) Len() int { return len(s.entries) }

// Add offers one sample under the given identity key. Identical
// (key, value) pairs may be retained more than once; the sketch keeps
// the k smallest pairs of the offered multiset.
func (s *Sketch) Add(key uint64, val float64) {
	e := sketchEntry{key: key, val: val}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, e)
		s.siftUp(len(s.entries) - 1)
		return
	}
	// Full: only a pair smaller than the current maximum displaces it.
	if !e.less(s.entries[0]) {
		return
	}
	s.entries[0] = e
	s.siftDown(0)
}

// Merge folds another sketch's retained samples into this one. Both
// sketches must share the same k for merge results to be a pure
// function of the combined multiset; Merge keeps this sketch's k.
func (s *Sketch) Merge(o *Sketch) {
	for _, e := range o.entries {
		s.Add(e.key, e.val)
	}
}

// Each visits every retained (key, value) pair in unspecified order.
// The fleet snapshot codec serializes a sketch through it and rebuilds
// the sketch by re-Adding the pairs; because the retained set is a
// pure function of the offered multiset, the round trip is exact.
func (s *Sketch) Each(f func(key uint64, val float64)) {
	for _, e := range s.entries {
		f(e.key, e.val)
	}
}

// Values returns the retained sample values in unspecified order
// (NewCDF sorts); the returned slice is fresh.
func (s *Sketch) Values() []float64 {
	out := make([]float64, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.val
	}
	return out
}

func (s *Sketch) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.entries[p].less(s.entries[i]) {
			return
		}
		s.entries[p], s.entries[i] = s.entries[i], s.entries[p]
		i = p
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.entries)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s.entries[big].less(s.entries[l]) {
			big = l
		}
		if r < n && s.entries[big].less(s.entries[r]) {
			big = r
		}
		if big == i {
			return
		}
		s.entries[i], s.entries[big] = s.entries[big], s.entries[i]
		i = big
	}
}
