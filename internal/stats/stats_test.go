package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 {
		t.Error("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF quantile not NaN")
	}
}

func TestCDFQuantile(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	c := NewCDF(samples)
	if q := c.Quantile(0.5); q != 50 {
		t.Errorf("median = %v, want 50", q)
	}
	if q := c.Quantile(0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := c.Quantile(1); q != 99 {
		t.Errorf("q1 = %v", q)
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		pts := c.Points(20, -100, 100)
		for i := 1; i < len(pts); i++ {
			if pts[i][1] < pts[i-1][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinregPerfectLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	a, b, r := Linreg(xs, ys)
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r-1) > 1e-9 {
		t.Errorf("a=%v b=%v r=%v, want 1,2,1", a, b, r)
	}
}

func TestLinregDegenerate(t *testing.T) {
	if a, b, r := Linreg([]float64{1}, []float64{2}); a != 0 || b != 0 || r != 0 {
		t.Error("single point should degenerate to zeros")
	}
	if _, b, _ := Linreg([]float64{2, 2, 2}, []float64{1, 2, 3}); b != 0 {
		t.Error("zero x-variance should degenerate")
	}
}

func TestSlopeThroughOrigin(t *testing.T) {
	xs := []float64{1, 2, 4}
	ys := []float64{0.9, 1.8, 3.6}
	if b := SlopeThroughOrigin(xs, ys); math.Abs(b-0.9) > 1e-9 {
		t.Errorf("slope = %v, want 0.9", b)
	}
	if b := SlopeThroughOrigin(nil, nil); b != 0 {
		t.Error("empty slope != 0")
	}
	if b := SlopeThroughOrigin([]float64{0, 0}, []float64{1, 2}); b != 0 {
		t.Error("zero denominator slope != 0")
	}
}

func TestMeanAndRatio(t *testing.T) {
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Errorf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
	if r := Ratio(3, 4); r != 0.75 {
		t.Errorf("Ratio = %v", r)
	}
	if r := Ratio(3, 0); r != 0 {
		t.Errorf("Ratio/0 = %v", r)
	}
	if p := Percent(0.5); p != 50 {
		t.Errorf("Percent = %v", p)
	}
}
