// Package stats provides the small numeric utilities the analysis
// pipeline uses: empirical CDFs, quantiles, linear regression, and
// histogram helpers.
package stats

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len reports the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Points samples the CDF at n evenly spaced values between min and max
// for plotting, returning (x, P(X≤x)) pairs.
func (c *CDF) Points(n int, min, max float64) [][2]float64 {
	if n < 2 {
		n = 2
	}
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		x := min + (max-min)*float64(i)/float64(n-1)
		out[i] = [2]float64{x, c.At(x)}
	}
	return out
}

// Linreg fits y = a + b·x by ordinary least squares and returns the
// intercept a, slope b, and Pearson correlation r. Degenerate inputs
// (fewer than two points, zero variance) return zeros.
func Linreg(xs, ys []float64) (a, b, r float64) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0, 0, 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return 0, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 0
	}
	r = sxy / math.Sqrt(sxx*syy)
	return a, b, r
}

// SlopeThroughOrigin fits y = b·x (no intercept), the slope statistic
// the paper reports for the IPv4-vs-IPv6 and TLS-vs-HTTP comparisons.
func SlopeThroughOrigin(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	var num, den float64
	for i := range xs {
		num += xs[i] * ys[i]
		den += xs[i] * xs[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percent formats a ratio as a percentage value (0.153 → 15.3).
func Percent(ratio float64) float64 { return ratio * 100 }

// Ratio divides safely, returning 0 for a zero denominator.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
