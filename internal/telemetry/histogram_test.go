package telemetry

import (
	"math/rand"
	"testing"
)

// TestBucketBoundaries pins the power-of-two bucket layout: each
// boundary value lands in the bucket whose inclusive upper bound it
// is, and the next value up moves one bucket over.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, // negative clamps to bucket 0
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1<<40 - 1, 40},           // largest finite-bucket value
		{1 << 40, NumBuckets - 1}, // first overflow value
		{1 << 62, NumBuckets - 1}, // deep overflow stays clamped
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Upper bounds: bucket i's bound is (1<<i)-1, and bucketIndex maps
	// every bound back to its own bucket.
	for i := 1; i < NumBuckets-1; i++ {
		up := BucketUpper(i)
		if want := int64(1)<<i - 1; up != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", i, up, want)
		}
		if got := bucketIndex(up); got != i {
			t.Errorf("bucketIndex(BucketUpper(%d)) = %d, want %d", i, got, i)
		}
		if got := bucketIndex(up + 1); got != i+1 {
			t.Errorf("bucketIndex(BucketUpper(%d)+1) = %d, want %d", i, got, i+1)
		}
	}
}

// TestHistogramObserveAndSnapshot checks count/sum/bucket accounting.
func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram()
	vals := []int64{0, 1, 3, 4, 100, 100, 1 << 50}
	var sum int64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(vals))
	}
	if s.Sum != sum {
		t.Fatalf("Sum = %d, want %d", s.Sum, sum)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[NumBuckets-1])
	}
}

// TestQuantileErrorBound verifies the documented estimator guarantee:
// for positive values in finite buckets, the estimated quantile e and
// the true quantile v satisfy v <= e < 2v.
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	vals := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform spread across the useful latency range.
		v := int64(1) << uint(rng.Intn(30))
		v += rng.Int63n(v)
		h.Observe(v)
		vals = append(vals, v)
	}
	// True quantile by sorting.
	sorted := append([]int64(nil), vals...)
	for i := 1; i < len(sorted); i++ { // insertion sort keeps deps stdlib-free in tests
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		rank := int(q * float64(len(sorted)))
		if float64(rank) < q*float64(len(sorted)) {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		truth := sorted[rank-1]
		est := s.Quantile(q)
		if est < truth {
			t.Errorf("q=%v: estimate %d below true value %d", q, est, truth)
		}
		if est >= 2*truth {
			t.Errorf("q=%v: estimate %d >= 2x true value %d", q, est, truth)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	h := NewHistogram()
	h.Observe(5)
	s := h.Snapshot()
	// One observation: every quantile is its bucket's upper bound.
	for _, q := range []float64{-1, 0, 0.001, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %d, want 7", q, got)
		}
	}
	if m := s.Mean(); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
}

// TestHistogramMergeMatchesCombinedObserve: merging shards equals
// observing everything into one histogram.
func TestHistogramMergeMatchesCombinedObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	combined := NewHistogram()
	shards := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	for i := 0; i < 3000; i++ {
		v := rng.Int63n(1 << 35)
		combined.Observe(v)
		shards[i%3].Observe(v)
	}
	merged := NewHistogram()
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if got, want := merged.Snapshot(), combined.Snapshot(); got != want {
		t.Fatalf("merged snapshot differs from combined:\n got %+v\nwant %+v", got, want)
	}
	merged.Merge(nil) // nil merge is a no-op
	if got, want := merged.Snapshot(), combined.Snapshot(); got != want {
		t.Fatalf("nil Merge changed snapshot")
	}
}

// FuzzHistogramMergeAssociativity: (a merge b) merge c must equal
// a merge (b merge c) for arbitrary observation sets — the invariant
// that makes per-worker shard merging order-independent, mirroring
// the internal/analysis aggregator algebra.
func FuzzHistogramMergeAssociativity(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5}, []byte{6})
	f.Add([]byte{}, []byte{0xFF, 0xFF}, []byte{0})
	f.Add([]byte{8, 0, 8}, []byte{}, []byte{255, 1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, ba, bb, bc []byte) {
		fill := func(data []byte) *Histogram {
			h := NewHistogram()
			for i := 0; i+7 < len(data); i += 8 {
				var v int64
				for j := 0; j < 8; j++ {
					v = v<<8 | int64(data[i+j])
				}
				h.Observe(v)
			}
			for _, b := range data { // small values exercise low buckets
				h.Observe(int64(b))
			}
			return h
		}
		left := fill(ba)
		left.Merge(func() *Histogram { m := fill(bb); m.Merge(fill(bc)); return m }())
		right := fill(ba)
		right.Merge(fill(bb))
		right.Merge(fill(bc))
		if l, r := left.Snapshot(), right.Snapshot(); l != r {
			t.Fatalf("merge not associative:\n left %+v\nright %+v", l, r)
		}
	})
}
