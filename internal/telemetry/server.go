package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the lightweight introspection HTTP server behind the
// -metrics-addr flag. Endpoints:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  JSON snapshot of the registry
//	/healthz       {"status":"ok","uptime_seconds":N} while serving
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  CPU, heap, goroutine, block, mutex profiles
//
// NewServer binds immediately (so ":0" callers can read the real
// Addr) and serves on a background goroutine; Close shuts the server
// down gracefully and waits for that goroutine to exit, so a
// Close-and-return caller leaks nothing.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	done  chan struct{}
	start time.Time
}

// NewServer listens on addr (host:port; ":0" picks a free port) and
// starts serving reg.
func NewServer(addr string, reg *Registry) (*Server, error) {
	return NewServerWith(addr, reg, nil)
}

// NewServerWith is NewServer plus service-specific routes: each extra
// pattern is mounted on the same mux as the introspection endpoints,
// so a service like popmerge serves its API, /metrics, and /healthz
// from one listener. Extra patterns must not collide with the built-in
// ones (the mux panics on duplicates, surfaced here as an error).
func NewServerWith(addr string, reg *Registry, extra map[string]http.Handler) (_ *Server, err error) {
	ln, lnErr := net.Listen("tcp", addr)
	if lnErr != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, lnErr)
	}
	defer func() {
		if err != nil {
			ln.Close()
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("telemetry: route registration: %v", p)
		}
	}()
	s := &Server{ln: ln, done: make(chan struct{}), start: time.Now()}

	mux := http.NewServeMux()
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(s.start).Seconds(),
		})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed after Close
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL for local scraping.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close gracefully shuts the server down and waits for the serve
// goroutine to exit. In-flight scrapes get a short grace period.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Shutdown timed out with hung handlers: force-close so the
		// serve goroutine still exits and the caller does not block.
		s.srv.Close()
	}
	<-s.done
	return err
}
