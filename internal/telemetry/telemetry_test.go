package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "help")
	b := r.Counter("x_total", "", "other help ignored")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x_total", Label("k", "v"), "")
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	g1 := r.Gauge("g", "", "")
	g2 := r.Gauge("g", "", "")
	if g1 != g2 {
		t.Fatal("gauge registration not idempotent")
	}
	h1 := r.Histogram("h", "", "")
	h2 := r.Histogram("h", "", "")
	if h1 != h2 {
		t.Fatal("histogram registration not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "", "") // counter re-registered as gauge
}

func TestCounterFuncRebinds(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("f_total", "", "", func() int64 { return 1 })
	r.CounterFunc("f_total", "", "", func() int64 { return 42 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "f_total 42") {
		t.Fatalf("func did not re-bind:\n%s", buf.String())
	}
}

func TestShardedCounter(t *testing.T) {
	s := NewShardedCounter(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ { // worker index beyond shard count wraps
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
	if s := NewShardedCounter(0); len(s.shards) != 1 {
		t.Fatal("zero shard count not clamped to 1")
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("sig", "SYN \u2192 \"RST\"\nx\\y")
	want := `sig="SYN \u2192 \"RST\"\nx\\y"`
	want = strings.ReplaceAll(want, `\u2192`, "\u2192") // arrow passes through unescaped
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
	pairs, err := parseLabelPairs(got)
	if err != nil {
		t.Fatal(err)
	}
	if pairs[0][1] != "SYN \u2192 \"RST\"\nx\\y" {
		t.Fatalf("round-trip = %q", pairs[0][1])
	}
}

func TestLabelsSorted(t *testing.T) {
	got := Labels(Label("b", "2"), Label("a", "1"))
	if got != `a="1",b="2"` {
		t.Fatalf("Labels = %q", got)
	}
}

// TestPrometheusExpositionValidates renders a populated registry and
// runs it back through the strict parser the CI gate uses.
func TestPrometheusExpositionValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_records_total", "", "records processed").Add(12)
	r.Counter("demo_sig_total", Label("signature", "SYN \u2192 \u2205"), "per-signature").Add(3)
	r.Counter("demo_sig_total", Label("signature", `quote " back \ slash`), "").Add(1)
	r.Gauge("demo_queue_depth", Label("queue", "decoded"), "queue depth").Set(17)
	r.GaugeFunc("demo_live", "", "func gauge", func() int64 { return -4 })
	sc := r.ShardedCounter("demo_sharded_total", "", "sharded", 4)
	sc.Add(0, 5)
	sc.Add(3, 7)
	h := r.Histogram("demo_latency_ns", Label("stage", "classify"), "latency")
	for _, v := range []int64{1, 3, 900, 900, 1 << 20, 1 << 50} {
		h.Observe(v)
	}
	r.Histogram("demo_empty_ns", "", "never observed")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("self-exposition failed validation: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE demo_records_total counter",
		"demo_records_total 12",
		"# TYPE demo_latency_ns histogram",
		`demo_latency_ns_bucket{stage="classify",le="+Inf"} 6`,
		"demo_latency_ns_count{stage=\"classify\"} 6",
		"demo_sharded_total 12",
		"demo_queue_depth{queue=\"decoded\"} 17",
		"demo_live -4",
		"demo_empty_ns_count 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":            "foo 1\n",
		"bad value":          "# TYPE foo counter\nfoo abc\n",
		"nan value":          "# TYPE foo gauge\nfoo NaN\n",
		"bad name":           "# TYPE 9foo counter\n9foo 1\n",
		"unbalanced braces":  "# TYPE foo counter\nfoo{a=\"1\" 1\n",
		"unquoted label":     "# TYPE foo counter\nfoo{a=1} 1\n",
		"decreasing buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"inf count mismatch": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
		"bucket without le":  "# TYPE h histogram\nh_bucket{x=\"1\"} 5\n",
		"empty exposition":   "\n\n",
		"unknown TYPE":       "# TYPE foo widget\nfoo 1\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
	// A counter that merely ends in _count is not histogram shrapnel.
	ok := "# TYPE record_count counter\nrecord_count 5\n"
	if err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("suffix false positive: %v", err)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "").Add(9)
	h := r.Histogram("h_ns", Label("stage", "decode"), "")
	h.Observe(100)
	h.Observe(200)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		TimestampUnixNs int64 `json:"timestamp_unix_ns"`
		Metrics         []struct {
			Name  string  `json:"name"`
			Type  string  `json:"type"`
			Value *int64  `json:"value"`
			Count *uint64 `json:"count"`
			P99Ns int64   `json:"p99_ns"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if snap.TimestampUnixNs == 0 || len(snap.Metrics) != 2 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if *snap.Metrics[0].Value != 9 {
		t.Errorf("counter value = %d", *snap.Metrics[0].Value)
	}
	if *snap.Metrics[1].Count != 2 || snap.Metrics[1].P99Ns != 255 {
		t.Errorf("histogram = %+v", snap.Metrics[1])
	}
}
