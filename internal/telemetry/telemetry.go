// Package telemetry is the repo's lock-free metrics layer: counters,
// gauges, and fixed-bucket latency histograms registered in a Registry
// that can render itself as Prometheus text or a JSON snapshot, plus a
// small introspection HTTP server (see server.go) and a periodic
// stderr progress reporter (see reporter.go).
//
// The design constraints come from the pipeline hot path (PR 3's
// zero-allocation batch loop): every mutation is a single atomic
// add/store on a pre-registered handle, never a map lookup or an
// allocation, so instruments can sit inside the per-record classify
// loop. Hot counters that many workers touch concurrently are sharded
// per worker with cache-line padding (ShardedCounter) and summed only
// at exposition time — the same shard-then-merge algebra the
// internal/analysis aggregators use for paper tables.
//
// Registration is idempotent: registering the same (name, labels) pair
// twice returns the first handle, so independent subsystems can share
// a metric without coordination. Exposition walks instruments in first
// registration order, grouped by metric name.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n should be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that may go up or down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// shardPad keeps adjacent shards on separate cache lines so concurrent
// workers incrementing neighbouring shards don't false-share.
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a counter split across per-worker shards: each
// worker adds to its own cache line and the shards are summed only at
// read time. Use it for counters mutated from the classify hot path,
// where a single shared atomic would bounce between cores.
type ShardedCounter struct {
	shards []shard
}

// NewShardedCounter returns a counter with n shards (minimum 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{shards: make([]shard, n)}
}

// Add increments the counter by n on the given worker's shard. Any
// worker index is accepted; it is reduced modulo the shard count.
func (s *ShardedCounter) Add(worker int, n int64) {
	s.shards[worker%len(s.shards)].v.Add(n)
}

// Value sums every shard. The sum is not a point-in-time snapshot
// while writers are active, but each shard's contribution is exact.
func (s *ShardedCounter) Value() int64 {
	var t int64
	for i := range s.shards {
		t += s.shards[i].v.Load()
	}
	return t
}

// Label renders one key="value" pair for the labels argument of the
// Registry registration methods, escaping the value per the Prometheus
// text exposition rules (backslash, double quote, newline).
func Label(key, value string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(value) + `"`
}

// Labels joins rendered pairs into one label string, sorted by key so
// the same label set always produces the same registry key.
func Labels(pairs ...string) string {
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered instrument. Exactly one of counter, gauge,
// sharded, fn, or hist is set; fn entries report kind counter or gauge
// depending on how they were registered.
type entry struct {
	name   string
	labels string // pre-rendered `k="v",k2="v2"`, empty for none
	help   string
	kind   kind

	counter *Counter
	gauge   *Gauge
	sharded *ShardedCounter
	fn      func() int64
	hist    *Histogram
}

// value returns the entry's current scalar (histograms excluded).
func (e *entry) value() int64 {
	switch {
	case e.counter != nil:
		return e.counter.Value()
	case e.gauge != nil:
		return e.gauge.Value()
	case e.sharded != nil:
		return e.sharded.Value()
	case e.fn != nil:
		return e.fn()
	}
	return 0
}

// Registry holds registered instruments and renders them (expose.go).
// Registration takes a lock; reads and writes of the instruments
// themselves are lock-free.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byKey   map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// register adds e unless its (name, labels) key already exists, in
// which case the existing entry is returned. Re-registering a key with
// a different instrument kind is a programming error and panics.
func (r *Registry) register(e *entry) *entry {
	key := e.name + "{" + e.labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[key]; ok {
		if prev.kind != e.kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", key, e.kind, prev.kind))
		}
		// Func instruments re-bind so a new run can take over an
		// existing series; value instruments keep the first handle.
		if e.fn != nil && prev.fn != nil {
			prev.fn = e.fn
		}
		return prev
	}
	r.byKey[key] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter registers (or finds) a counter. labels is a pre-rendered
// label string built with Label/Labels, or "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	e := r.register(&entry{name: name, labels: labels, help: help, kind: kindCounter, counter: &Counter{}})
	if e.counter == nil {
		panic(fmt.Sprintf("telemetry: %s{%s} re-registered as plain counter (was sharded or func)", name, labels))
	}
	return e.counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	e := r.register(&entry{name: name, labels: labels, help: help, kind: kindGauge, gauge: &Gauge{}})
	if e.gauge == nil {
		panic(fmt.Sprintf("telemetry: %s{%s} re-registered as plain gauge (was func)", name, labels))
	}
	return e.gauge
}

// ShardedCounter registers (or finds) a per-worker sharded counter
// with the given shard count.
func (r *Registry) ShardedCounter(name, labels, help string, shards int) *ShardedCounter {
	e := r.register(&entry{name: name, labels: labels, help: help, kind: kindCounter, sharded: NewShardedCounter(shards)})
	if e.sharded == nil {
		panic(fmt.Sprintf("telemetry: %s{%s} re-registered as sharded counter (was plain)", name, labels))
	}
	return e.sharded
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time. Re-registering the same key re-binds fn.
func (r *Registry) CounterFunc(name, labels, help string, fn func() int64) {
	r.register(&entry{name: name, labels: labels, help: help, kind: kindCounter, fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time. Re-registering the same key re-binds fn.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() int64) {
	r.register(&entry{name: name, labels: labels, help: help, kind: kindGauge, fn: fn})
}

// Histogram registers (or finds) a latency histogram.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	e := r.register(&entry{name: name, labels: labels, help: help, kind: kindHistogram, hist: NewHistogram()})
	return e.hist
}

// snapshotEntries copies the entry list under the lock so exposition
// can walk it without holding the lock across fn calls.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*entry(nil), r.entries...)
}
