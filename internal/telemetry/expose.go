package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format (version 0.0.4): one HELP/TYPE
// header per metric name, then one sample per series, with histograms
// expanded into cumulative _bucket{le=...} samples plus _sum and
// _count. Series appear in first registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	seen := map[string]bool{}
	for _, e := range r.snapshotEntries() {
		if !seen[e.name] {
			seen[e.name] = true
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", e.name, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(e.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		}
		if e.hist != nil {
			writePromHistogram(bw, e)
			continue
		}
		fmt.Fprintf(bw, "%s%s %d\n", e.name, promLabels(e.labels), e.value())
	}
	return bw.Flush()
}

// promLabels wraps a pre-rendered label string in braces, or returns
// "" for the empty label set.
func promLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// promLabelsExtra appends one more rendered pair to a label string.
func promLabelsExtra(labels, pair string) string {
	if labels == "" {
		return "{" + pair + "}"
	}
	return "{" + labels + "," + pair + "}"
}

func writePromHistogram(w io.Writer, e *entry) {
	s := e.hist.Snapshot()
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		// Skip interior empty buckets to keep the exposition compact;
		// cumulative semantics make them redundant. Always emit +Inf.
		if b == 0 && i < NumBuckets-1 {
			continue
		}
		le := "+Inf"
		if i < NumBuckets-1 {
			le = strconv.FormatInt(BucketUpper(i), 10)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, promLabelsExtra(e.labels, `le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", e.name, promLabels(e.labels), s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", e.name, promLabels(e.labels), s.Count)
}

// jsonMetric is one series in the JSON snapshot.
type jsonMetric struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Type   string `json:"type"`

	// Scalar instruments.
	Value *int64 `json:"value,omitempty"`

	// Histograms.
	Count   *uint64      `json:"count,omitempty"`
	Sum     *int64       `json:"sum,omitempty"`
	MeanNs  float64      `json:"mean_ns,omitempty"`
	P50Ns   int64        `json:"p50_ns,omitempty"`
	P90Ns   int64        `json:"p90_ns,omitempty"`
	P99Ns   int64        `json:"p99_ns,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LeNs       int64  `json:"le_ns"` // -1 encodes +Inf
	Cumulative uint64 `json:"cumulative"`
}

// jsonSnapshot is the top-level /metrics.json document.
type jsonSnapshot struct {
	TimestampUnixNs int64        `json:"timestamp_unix_ns"`
	Metrics         []jsonMetric `json:"metrics"`
}

// WriteJSON renders the registry as one JSON document: scalars as
// {name, labels, type, value}, histograms with count/sum/mean and
// p50/p90/p99 quantile estimates plus the non-empty cumulative
// buckets. This is the /metrics.json endpoint's payload.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := jsonSnapshot{TimestampUnixNs: time.Now().UnixNano()}
	for _, e := range r.snapshotEntries() {
		m := jsonMetric{Name: e.name, Labels: e.labels, Type: e.kind.String()}
		if e.hist != nil {
			s := e.hist.Snapshot()
			count, sum := s.Count, s.Sum
			m.Count, m.Sum = &count, &sum
			m.MeanNs = s.Mean()
			m.P50Ns = s.Quantile(0.50)
			m.P90Ns = s.Quantile(0.90)
			m.P99Ns = s.Quantile(0.99)
			var cum uint64
			for i, b := range s.Buckets {
				cum += b
				if b == 0 {
					continue
				}
				le := BucketUpper(i)
				if i == NumBuckets-1 {
					le = -1
				}
				m.Buckets = append(m.Buckets, jsonBucket{LeNs: le, Cumulative: cum})
			}
		} else {
			v := e.value()
			m.Value = &v
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// ValidateExposition parses a Prometheus text exposition and returns
// an error describing the first malformed construct: an unparsable
// sample line, a sample with no preceding TYPE declaration, a
// non-finite value, a histogram whose cumulative buckets decrease, or
// a histogram whose +Inf bucket disagrees with its _count. The
// scripts/check.sh metrics gate scrapes /metrics through this.
func ValidateExposition(r io.Reader) error {
	types := map[string]string{}
	// histState tracks per-series cumulative bucket sanity, keyed by
	// base name + labels-without-le.
	type histState struct {
		last    uint64
		inf     uint64
		infSeen bool
	}
	hists := map[string]*histState{}
	counts := map[string]uint64{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					types[fields[2]] = fields[3]
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if math.IsNaN(value) || math.IsInf(value, 0) {
			return fmt.Errorf("line %d: non-finite value for %s", lineNo, name)
		}
		base, suffix := splitHistName(name, types)
		if _, ok := types[base]; !ok {
			return fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		switch suffix {
		case "_bucket":
			le, rest, err := extractLe(labels)
			if err != nil {
				return fmt.Errorf("line %d: %s: %w", lineNo, name, err)
			}
			key := base + "{" + rest + "}"
			h := hists[key]
			if h == nil {
				h = &histState{}
				hists[key] = h
			}
			cum := uint64(value)
			if cum < h.last {
				return fmt.Errorf("line %d: %s cumulative bucket decreased (%d < %d)", lineNo, key, cum, h.last)
			}
			h.last = cum
			if le == "+Inf" {
				h.inf = cum
				h.infSeen = true
			}
		case "_count":
			counts[base+"{"+labels+"}"] = uint64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(types) == 0 {
		return fmt.Errorf("no TYPE declarations found")
	}
	for key, h := range hists {
		if !h.infSeen {
			return fmt.Errorf("%s: histogram missing +Inf bucket", key)
		}
		if c, ok := counts[key]; ok && c != h.inf {
			return fmt.Errorf("%s: +Inf bucket %d != _count %d", key, h.inf, c)
		}
	}
	return nil
}

// splitHistName maps histogram sample suffixes back to the declared
// base name: foo_bucket/foo_sum/foo_count belong to TYPE foo when foo
// is declared a histogram. A name with its own TYPE declaration is
// never split, so counters that merely end in _count stay themselves.
func splitHistName(name string, types map[string]string) (base, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, s); ok && types[b] == "histogram" {
			return b, s
		}
	}
	return name, ""
}

// parseSample splits `name{labels} value` (labels optional) and
// validates the label syntax.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		if _, err := parseLabelPairs(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = fields[1]
	}
	if name == "" || !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name in %q", line)
	}
	// A timestamp may follow the value; take the first field.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", 0, fmt.Errorf("missing value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	return name, labels, value, nil
}

func validMetricName(name string) bool {
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseLabelPairs parses `k="v",k2="v2"` with Prometheus escaping and
// returns the pairs in order.
func parseLabelPairs(s string) ([][2]string, error) {
	var pairs [][2]string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", key)
		}
		s = s[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", key)
		}
		pairs = append(pairs, [2]string{key, b.String()})
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("unexpected %q after label %s", s[0], key)
			}
			s = s[1:]
		}
	}
	return pairs, nil
}

// extractLe pulls the le label out of a bucket sample's label string,
// returning the remaining labels re-rendered in original order.
func extractLe(labels string) (le, rest string, err error) {
	pairs, err := parseLabelPairs(labels)
	if err != nil {
		return "", "", err
	}
	var kept []string
	for _, p := range pairs {
		if p[0] == "le" {
			le = p[1]
			continue
		}
		kept = append(kept, Label(p[0], p[1]))
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket sample missing le label")
	}
	return le, strings.Join(kept, ","), nil
}
