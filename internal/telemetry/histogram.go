package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket i
// holds observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i - 1] (bucket 0 holds v <= 0); the last bucket is the
// overflow (+Inf) bucket. 41 buckets cover 0 ns up to ~18 minutes,
// far beyond any per-batch pipeline stage latency.
const NumBuckets = 41

// Histogram is a fixed-bucket latency histogram with power-of-two
// nanosecond buckets. Observe is a few atomic adds with no allocation
// or locking, so it can sit on the pipeline hot path; Merge folds one
// histogram into another with the same Add/Merge algebra as the
// internal/analysis aggregators, so per-worker histograms can be
// sharded and merged after a run.
//
// Because buckets are powers of two, any quantile estimated from a
// snapshot (the bucket's inclusive upper bound) overestimates the true
// value by strictly less than 2x — see Snapshot.Quantile.
// The observation count is derived from the bucket sums rather than
// kept as a separate atomic: that saves one atomic add per Observe
// and, more importantly, keeps a concurrent Snapshot internally
// consistent — the +Inf cumulative bucket always equals the count, an
// invariant ValidateExposition checks on live scrapes.
type Histogram struct {
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps an observation to its bucket: 0 for v <= 0, else
// bits.Len64(v) clamped to the overflow bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketUpper returns bucket i's inclusive upper bound in ns. The last
// bucket's bound is conventionally +Inf; this returns its finite lower
// edge's doubling, which exposition renders as "+Inf".
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return int64(1)<<(NumBuckets-1) - 1
	}
	return int64(1)<<i - 1
}

// Observe records one value (nanoseconds for latency histograms).
// Negative values are clamped into bucket 0 but still contribute to
// the sum, so Sum/Count stays an honest mean.
func (h *Histogram) Observe(v int64) {
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Merge adds other's observations into h. Merge is associative and
// commutative (each bucket, the count, and the sum are independent
// sums), so shard merge order never changes the result — the same
// contract internal/analysis relies on for PoP merges.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.sum.Add(other.sum.Load())
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
}

// Snapshot returns a point-in-time copy. Count is the sum of the
// bucket counters, so a snapshot is always internally consistent
// (buckets total to Count) even while writers are active; only Sum —
// and therefore Mean — can be slightly torn relative to the buckets
// mid-run. After writers stop every field is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		b := h.buckets[i].Load()
		s.Buckets[i] = b
		s.Count += b
	}
	return s
}

// HistogramSnapshot is a plain copy of a histogram's state.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [NumBuckets]uint64
}

// Quantile estimates the q-quantile (0 < q <= 1) as the inclusive
// upper bound of the bucket containing the ceil(q*Count)-th smallest
// observation. For positive observations in a finite bucket the
// estimate e satisfies v <= e < 2v for the true value v, because each
// bucket spans exactly one power-of-two octave. Returns 0 for an
// empty snapshot.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Mean returns the arithmetic mean of all observations, 0 if empty.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
