package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_records_total", "", "records").Add(5)
	h := reg.Histogram("t_lat_ns", Label("stage", "decode"), "latency")
	h.Observe(123)

	s, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	status, body := get(t, s.URL()+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz status = %d", status)
	}
	var health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Status != "ok" {
		t.Fatalf("/healthz body = %q (err %v)", body, err)
	}

	status, body = get(t, s.URL()+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics invalid: %v\n%s", err, body)
	}
	if !strings.Contains(body, "t_records_total 5") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	status, body = get(t, s.URL()+"/metrics.json")
	if status != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("/metrics.json status=%d valid=%v", status, json.Valid([]byte(body)))
	}

	status, body = get(t, s.URL()+"/debug/vars")
	if status != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars status=%d", status)
	}

	status, _ = get(t, s.URL()+"/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", status)
	}
}

// TestServerShutdownNoGoroutineLeak is the gate's goroutine-leak
// check: after Close returns, the serve goroutine and any handler
// goroutines must be gone.
func TestServerShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		reg := NewRegistry()
		reg.Counter("leak_total", "", "").Inc()
		s, err := NewServer("127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		if status, _ := get(t, s.URL()+"/metrics"); status != http.StatusOK {
			t.Fatalf("scrape %d failed", i)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	// net/http keeps idle client/transport goroutines briefly; allow
	// them to settle rather than asserting an instant exact count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerAddrAndBadAddr(t *testing.T) {
	reg := NewRegistry()
	s, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.Addr(), "127.0.0.1:") || strings.HasSuffix(s.Addr(), ":0") {
		t.Fatalf("Addr = %q, want a concrete port", s.Addr())
	}
	if _, err := NewServer("256.0.0.1:99999", reg); err == nil {
		t.Fatal("bad addr did not error")
	}
}
