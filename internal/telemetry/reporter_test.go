package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncBuffer serialises writes so the reporter goroutine and the test
// can share it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestReporterEmitsFinalLineOnStop(t *testing.T) {
	var out syncBuffer
	var n atomic.Int64
	r := StartReporter(&out, time.Hour, func() string {
		return "progress " + string(rune('0'+n.Add(1)))
	})
	// Stop before the first tick: the final line must still appear.
	r.Stop()
	r.Stop() // idempotent
	if got := out.String(); !strings.HasPrefix(got, "progress 1\n") {
		t.Fatalf("final line missing, got %q", got)
	}
}

func TestReporterTicks(t *testing.T) {
	var out syncBuffer
	var n atomic.Int64
	r := StartReporter(&out, 5*time.Millisecond, func() string {
		n.Add(1)
		return "tick"
	})
	deadline := time.Now().Add(5 * time.Second)
	for n.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	if n.Load() < 3 {
		t.Fatalf("reporter ticked %d times, want >= 3", n.Load())
	}
	if lines := strings.Count(out.String(), "tick\n"); lines < 3 {
		t.Fatalf("output has %d lines, want >= 3", lines)
	}
}
