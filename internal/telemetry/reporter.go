package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter emits one structured progress line to w on a fixed
// interval, so long tamperscan/paperbench runs are observable from a
// terminal without the HTTP server. The line content comes from the
// caller's line func, invoked once per tick on the reporter's own
// goroutine (the func must be safe to call concurrently with the
// workload — read atomics, not plain fields).
type Reporter struct {
	emitFn func()

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartReporter begins ticking every interval. A final line is always
// emitted at Stop, so even runs shorter than one interval report once.
func StartReporter(w io.Writer, every time.Duration, line func() string) *Reporter {
	return StartReporterFunc(every, func() { fmt.Fprintln(w, line()) })
}

// StartReporterFunc is StartReporter with the emission itself under
// the caller's control: emit runs once per tick (and once at Stop)
// instead of a line being written to a writer. The CLIs route
// -progress through their structured logger this way, so progress
// stays machine-parseable under -log-format json.
func StartReporterFunc(every time.Duration, emit func()) *Reporter {
	if every <= 0 {
		every = time.Second
	}
	r := &Reporter{emitFn: emit, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.emit()
			case <-r.stop:
				r.emit()
				return
			}
		}
	}()
	return r
}

func (r *Reporter) emit() { r.emitFn() }

// Stop emits a final line and waits for the reporter goroutine to
// exit. Stop is idempotent.
func (r *Reporter) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}
