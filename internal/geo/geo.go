// Package geo provides the IP-to-(country, ASN) mapping the analysis
// pipeline aggregates by. The paper geolocates source addresses with a
// commercial GeoIP feed and a BGP view; that data gate is substituted
// with a deterministic synthetic address plan: every country owns a set
// of autonomous systems, every AS owns IPv4 and IPv6 prefixes, and
// Lookup resolves by binary search exactly as a real longest-prefix
// matcher would for disjoint prefixes.
package geo

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"
)

// AS is one synthetic autonomous system.
type AS struct {
	ASN     uint32
	Country string
	// Weight is the AS's share of its country's client population.
	Weight float64
	// V4 and V6 hold the address blocks (disjoint across all ASes).
	V4 []netip.Prefix
	V6 []netip.Prefix
}

// CountrySpec describes how to allocate a country's address space.
type CountrySpec struct {
	// Code is the ISO 3166 alpha-2 code.
	Code string
	// ASCount is how many ASes to allocate (≥1).
	ASCount int
	// Skew shapes AS weights: 0 gives uniform weights, larger values
	// concentrate clients into the first ASes (decreasing geometric
	// with ratio 1/(1+Skew)).
	Skew float64
}

// DB is the queryable address plan.
type DB struct {
	ases      []*AS
	byCountry map[string][]*AS
	v4        []rangeEntry
	v6        []rangeEntry
}

type rangeEntry struct {
	start, end netip.Addr // inclusive range
	as         *AS
}

// Build allocates address space for the given countries. Allocation is
// deterministic given the spec order and seed.
func Build(specs []CountrySpec, seed uint64) (*DB, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xda7aba5e))
	db := &DB{byCountry: make(map[string][]*AS)}
	nextASN := uint32(64512)
	v4Block := 0 // index of next /16 inside 20.0.0.0/6-ish space
	v6Block := 0
	for _, spec := range specs {
		if spec.ASCount < 1 {
			return nil, fmt.Errorf("geo: country %q needs at least one AS", spec.Code)
		}
		weights := asWeights(spec.ASCount, spec.Skew)
		for i := 0; i < spec.ASCount; i++ {
			as := &AS{ASN: nextASN, Country: spec.Code, Weight: weights[i]}
			nextASN++
			// One or two /16s per AS, plus one /32 for IPv6.
			nBlocks := 1
			if rng.IntN(3) == 0 {
				nBlocks = 2
			}
			for b := 0; b < nBlocks; b++ {
				p, err := v4PrefixFor(v4Block)
				if err != nil {
					return nil, err
				}
				v4Block++
				as.V4 = append(as.V4, p)
				db.v4 = append(db.v4, rangeOf(p, as))
			}
			p6 := v6PrefixFor(v6Block)
			v6Block++
			as.V6 = append(as.V6, p6)
			db.v6 = append(db.v6, rangeOf(p6, as))
			db.ases = append(db.ases, as)
			db.byCountry[spec.Code] = append(db.byCountry[spec.Code], as)
		}
	}
	sort.Slice(db.v4, func(i, j int) bool { return db.v4[i].start.Less(db.v4[j].start) })
	sort.Slice(db.v6, func(i, j int) bool { return db.v6[i].start.Less(db.v6[j].start) })
	return db, nil
}

// asWeights computes normalized decreasing-geometric weights.
func asWeights(n int, skew float64) []float64 {
	w := make([]float64, n)
	ratio := 1.0
	if skew > 0 {
		ratio = 1.0 / (1.0 + skew)
	}
	cur, total := 1.0, 0.0
	for i := range w {
		w[i] = cur
		total += cur
		cur *= ratio
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// v4PrefixFor maps a block index to a /16 under 20.0.0.0, spanning
// 20.0.0.0–27.255.0.0 (2048 blocks).
func v4PrefixFor(i int) (netip.Prefix, error) {
	if i >= 8*256 {
		return netip.Prefix{}, fmt.Errorf("geo: IPv4 plan exhausted (%d blocks)", i)
	}
	a := byte(20 + i/256)
	b := byte(i % 256)
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, 0, 0}), 16), nil
}

// v6PrefixFor maps a block index to a /32 under 2600::/16.
func v6PrefixFor(i int) netip.Prefix {
	var bytes [16]byte
	bytes[0] = 0x26
	bytes[1] = 0x00
	binary.BigEndian.PutUint16(bytes[2:4], uint16(i))
	return netip.PrefixFrom(netip.AddrFrom16(bytes), 32)
}

// rangeOf converts a prefix to an inclusive range entry.
func rangeOf(p netip.Prefix, as *AS) rangeEntry {
	start := p.Masked().Addr()
	// Compute the last address by setting all host bits.
	var end netip.Addr
	if start.Is4() {
		s := start.As4()
		hostBits := 32 - p.Bits()
		v := binary.BigEndian.Uint32(s[:])
		v |= (1 << hostBits) - 1
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], v)
		end = netip.AddrFrom4(e)
	} else {
		s := start.As16()
		bits := p.Bits()
		for i := 0; i < 16; i++ {
			lo := i * 8
			for b := 0; b < 8; b++ {
				if lo+b >= bits {
					s[i] |= 1 << (7 - b)
				}
			}
		}
		end = netip.AddrFrom16(s)
	}
	return rangeEntry{start: start, end: end, as: as}
}

// Lookup resolves an address to its AS, or nil if outside the plan.
func (db *DB) Lookup(ip netip.Addr) *AS {
	v6 := ip.Is6() && !ip.Is4In6()
	if !v6 {
		ip = ip.Unmap()
	}
	if e, ok := db.lookupRange(ip, v6); ok {
		return e.as
	}
	return nil
}

// lookupRange binary-searches the family table for the range containing
// ip (already unmapped). Returning the whole entry lets Cache memoize
// the matched range, not just the AS.
func (db *DB) lookupRange(ip netip.Addr, v6 bool) (rangeEntry, bool) {
	table := db.v4
	if v6 {
		table = db.v6
	}
	i := sort.Search(len(table), func(i int) bool { return ip.Less(table[i].start) })
	if i == 0 {
		return rangeEntry{}, false
	}
	e := table[i-1]
	if ip.Compare(e.end) <= 0 {
		return e, true
	}
	return rangeEntry{}, false
}

// Country resolves an address to its country code, or "" if unknown.
func (db *DB) Country(ip netip.Addr) string {
	if as := db.Lookup(ip); as != nil {
		return as.Country
	}
	return ""
}

// ASes returns the country's ASes (nil for unknown countries).
func (db *DB) ASes(country string) []*AS { return db.byCountry[country] }

// AllASes returns every AS in the plan.
func (db *DB) AllASes() []*AS { return db.ases }

// PickAS draws an AS from the country by weight.
func (db *DB) PickAS(rng *rand.Rand, country string) *AS {
	ases := db.byCountry[country]
	if len(ases) == 0 {
		return nil
	}
	r := rng.Float64()
	for _, as := range ases {
		if r < as.Weight {
			return as
		}
		r -= as.Weight
	}
	return ases[len(ases)-1]
}

// HostAddr returns the deterministic address of host idx within the
// AS — the same idx always maps to the same address, so scenarios can
// model repeat clients (Appendix B's IP-domain pairs).
func (as *AS) HostAddr(idx int, v6 bool) netip.Addr {
	rng := rand.New(rand.NewPCG(uint64(as.ASN)*0x9e3779b9+uint64(idx), uint64(idx)+0x5ca1ab1e))
	return as.RandomAddr(rng, v6)
}

// RandomAddr draws a host address from the AS's space; v6 selects the
// address family.
func (as *AS) RandomAddr(rng *rand.Rand, v6 bool) netip.Addr {
	if v6 {
		p := as.V6[rng.IntN(len(as.V6))]
		b := p.Addr().As16()
		// Randomize the low 64 bits plus some subnet bits.
		binary.BigEndian.PutUint32(b[4:8], rng.Uint32())
		binary.BigEndian.PutUint64(b[8:16], rng.Uint64())
		return netip.AddrFrom16(b)
	}
	p := as.V4[rng.IntN(len(as.V4))]
	b := p.Addr().As4()
	// Hosts under the /16: avoid .0 and .255 in the last octet.
	b[2] = byte(rng.IntN(256))
	b[3] = byte(1 + rng.IntN(254))
	return netip.AddrFrom4(b)
}
