package geo

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"testing/quick"
)

func buildTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Build([]CountrySpec{
		{Code: "CN", ASCount: 6, Skew: 0.5},
		{Code: "IR", ASCount: 4, Skew: 0.8},
		{Code: "US", ASCount: 10, Skew: 0.1},
	}, 42)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return db
}

func TestBuildAllocatesASes(t *testing.T) {
	db := buildTestDB(t)
	if got := len(db.ASes("CN")); got != 6 {
		t.Errorf("CN ASes = %d, want 6", got)
	}
	if got := len(db.ASes("XX")); got != 0 {
		t.Errorf("unknown country ASes = %d, want 0", got)
	}
	if got := len(db.AllASes()); got != 20 {
		t.Errorf("total ASes = %d, want 20", got)
	}
	// ASNs must be unique.
	seen := map[uint32]bool{}
	for _, as := range db.AllASes() {
		if seen[as.ASN] {
			t.Errorf("duplicate ASN %d", as.ASN)
		}
		seen[as.ASN] = true
	}
}

func TestWeightsNormalized(t *testing.T) {
	db := buildTestDB(t)
	for _, country := range []string{"CN", "IR", "US"} {
		total := 0.0
		for _, as := range db.ASes(country) {
			total += as.Weight
		}
		if total < 0.999 || total > 1.001 {
			t.Errorf("%s weights sum to %f", country, total)
		}
	}
	// Skewed countries concentrate weight in the first AS.
	ir := db.ASes("IR")
	if ir[0].Weight <= ir[len(ir)-1].Weight {
		t.Error("IR weights not decreasing despite skew")
	}
}

func TestLookupRoundTrip(t *testing.T) {
	db := buildTestDB(t)
	rng := rand.New(rand.NewPCG(7, 7))
	for _, as := range db.AllASes() {
		for i := 0; i < 20; i++ {
			ip4 := as.RandomAddr(rng, false)
			if got := db.Lookup(ip4); got != as {
				t.Fatalf("Lookup(%v) = %v, want AS%d", ip4, got, as.ASN)
			}
			ip6 := as.RandomAddr(rng, true)
			if got := db.Lookup(ip6); got != as {
				t.Fatalf("Lookup(%v) = %v, want AS%d", ip6, got, as.ASN)
			}
		}
	}
}

func TestLookupOutsidePlan(t *testing.T) {
	db := buildTestDB(t)
	for _, s := range []string{"8.8.8.8", "192.0.2.1", "2001:db8::1", "19.255.255.255", "255.0.0.1"} {
		if got := db.Lookup(netip.MustParseAddr(s)); got != nil {
			t.Errorf("Lookup(%s) = AS%d, want nil", s, got.ASN)
		}
	}
	if db.Country(netip.MustParseAddr("8.8.8.8")) != "" {
		t.Error("Country(outside) != \"\"")
	}
}

func TestCountryLookup(t *testing.T) {
	db := buildTestDB(t)
	rng := rand.New(rand.NewPCG(9, 9))
	as := db.ASes("IR")[0]
	ip := as.RandomAddr(rng, false)
	if got := db.Country(ip); got != "IR" {
		t.Errorf("Country = %q, want IR", got)
	}
}

func TestPickASWeighted(t *testing.T) {
	db := buildTestDB(t)
	rng := rand.New(rand.NewPCG(11, 11))
	counts := map[uint32]int{}
	for i := 0; i < 20000; i++ {
		as := db.PickAS(rng, "IR")
		counts[as.ASN]++
	}
	ir := db.ASes("IR")
	// Observed frequency must track weight within a loose tolerance.
	for _, as := range ir {
		freq := float64(counts[as.ASN]) / 20000
		if freq < as.Weight-0.03 || freq > as.Weight+0.03 {
			t.Errorf("AS%d freq %.3f vs weight %.3f", as.ASN, freq, as.Weight)
		}
	}
	if db.PickAS(rng, "ZZ") != nil {
		t.Error("PickAS on unknown country != nil")
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := []CountrySpec{{Code: "AA", ASCount: 3, Skew: 0.4}, {Code: "BB", ASCount: 2}}
	a, err := Build(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.AllASes() {
		x, y := a.AllASes()[i], b.AllASes()[i]
		if x.ASN != y.ASN || len(x.V4) != len(y.V4) || x.V4[0] != y.V4[0] {
			t.Fatalf("builds diverge at AS index %d", i)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]CountrySpec{{Code: "AA", ASCount: 0}}, 1); err == nil {
		t.Error("zero ASCount accepted")
	}
	// Exhausting the v4 plan must error, not wrap around.
	huge := []CountrySpec{{Code: "AA", ASCount: 3000}}
	if _, err := Build(huge, 1); err == nil {
		t.Error("plan exhaustion not detected")
	}
}

// TestLookupNeverMisattributes property-tests that random addresses
// inside any allocated prefix resolve to that prefix's AS.
func TestLookupNeverMisattributes(t *testing.T) {
	db := buildTestDB(t)
	f := func(pick uint16, host uint16) bool {
		ases := db.AllASes()
		as := ases[int(pick)%len(ases)]
		p := as.V4[0]
		b := p.Addr().As4()
		b[2] = byte(host >> 8)
		b[3] = byte(host)
		return db.Lookup(netip.AddrFrom4(b)) == as
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomAddrStaysInside(t *testing.T) {
	db := buildTestDB(t)
	rng := rand.New(rand.NewPCG(3, 3))
	for _, as := range db.AllASes()[:5] {
		for i := 0; i < 50; i++ {
			ip := as.RandomAddr(rng, false)
			in := false
			for _, p := range as.V4 {
				if p.Contains(ip) {
					in = true
				}
			}
			if !in {
				t.Fatalf("v4 addr %v outside AS%d prefixes", ip, as.ASN)
			}
			ip6 := as.RandomAddr(rng, true)
			in = false
			for _, p := range as.V6 {
				if p.Contains(ip6) {
					in = true
				}
			}
			if !in {
				t.Fatalf("v6 addr %v outside AS%d prefixes", ip6, as.ASN)
			}
		}
	}
}
