package geo

import "net/netip"

// Resolver resolves a source address to its AS. Both *DB and *Cache
// implement it, so the analysis layer can accept either the raw
// binary-search lookup or a memoized front.
type Resolver interface {
	Lookup(ip netip.Addr) *AS
}

// cacheSlots sizes the per-family direct-mapped range tables (power of
// two). The plan allocates at most ~2k blocks and typical scenarios
// use a few hundred, so 512 slots keep the hit rate high at ~28 KiB
// per family table.
const cacheSlots = 512

// Cache memoizes DB.Lookup for the per-record country/AS resolution in
// the streaming sink hot path. Instead of caching per address, it
// caches the *matched range* in a direct-mapped table keyed by the
// address's prefix bytes: every subsequent address under the same
// block (a client burst, a repeat client, a scanner sweep) hits the
// cached range and skips the binary search. A hit is verified with an
// inclusive range check, so a hash collision can never return a wrong
// answer — it only falls through to the search and replaces the slot.
//
// The slot hash assumes the plan's granularity (≥ /16 IPv4, /32 IPv6)
// only for hit *rate*; correctness holds for any range layout.
// Addresses outside the plan are not cached (they are absent from
// generated traffic). A Cache is NOT safe for concurrent use; give
// each pipeline worker its own.
type Cache struct {
	db     *DB
	v4, v6 [cacheSlots]rangeEntry
}

// NewCache returns a cache in front of db. A nil db is tolerated:
// every lookup resolves to nil, for callers that run without an
// address plan.
func NewCache(db *DB) *Cache { return &Cache{db: db} }

// Lookup resolves an address to its AS, or nil if outside the plan.
// Results are identical to DB.Lookup for every address.
func (c *Cache) Lookup(ip netip.Addr) *AS {
	if c.db == nil || !ip.IsValid() {
		return nil
	}
	v6 := ip.Is6() && !ip.Is4In6()
	if !v6 {
		ip = ip.Unmap()
	}
	table := &c.v4
	if v6 {
		table = &c.v6
	}
	slot := &table[rangeSlot(ip, v6)]
	if slot.as != nil && inRange(*slot, ip) {
		return slot.as
	}
	e, ok := c.db.lookupRange(ip, v6)
	if !ok {
		return nil
	}
	*slot = e
	return e.as
}

func inRange(e rangeEntry, ip netip.Addr) bool {
	return !ip.Less(e.start) && ip.Compare(e.end) <= 0
}

// rangeSlot indexes the direct-mapped table by the bytes that are
// stable across a plan block: the /16 prefix for IPv4 (As16 bytes
// 12–13 after unmapping), the /32 prefix for IPv6 (bytes 0–3, mixed
// because the leading bytes are shared across the whole plan).
func rangeSlot(ip netip.Addr, v6 bool) int {
	b := ip.As16()
	var h uint32
	if v6 {
		h = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		h *= 0x9e3779b1
		h >>= 16
	} else {
		h = uint32(b[12])<<8 | uint32(b[13])
	}
	return int(h & (cacheSlots - 1))
}
