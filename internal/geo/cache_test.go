package geo

import (
	"math/rand/v2"
	"net/netip"
	"testing"
)

func testPlan(t *testing.T) *DB {
	t.Helper()
	db, err := Build([]CountrySpec{
		{Code: "CN", ASCount: 6, Skew: 1.5},
		{Code: "IR", ASCount: 3, Skew: 1},
		{Code: "US", ASCount: 8},
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCacheMatchesDB: the cache must be answer-identical to DB.Lookup
// for in-plan, out-of-plan, 4-in-6-mapped, and IPv6 addresses, on
// first and repeated queries.
func TestCacheMatchesDB(t *testing.T) {
	db := testPlan(t)
	cache := NewCache(db)
	rng := rand.New(rand.NewPCG(7, 8))

	var probes []netip.Addr
	for _, as := range db.AllASes() {
		probes = append(probes,
			as.RandomAddr(rng, false),
			as.RandomAddr(rng, true),
			as.V4[0].Addr(),           // range start
			rangeOf(as.V4[0], as).end, // range end
		)
	}
	// Outside the plan.
	probes = append(probes,
		netip.MustParseAddr("1.2.3.4"),
		netip.MustParseAddr("19.255.255.255"),
		netip.MustParseAddr("200.0.0.1"),
		netip.MustParseAddr("2001:db8::1"),
		netip.MustParseAddr("::ffff:8.8.8.8"), // 4-in-6 mapped, out of plan
	)
	// 4-in-6 mapped variants of in-plan v4 addresses.
	for _, as := range db.AllASes()[:4] {
		a4 := as.RandomAddr(rng, false).As4()
		probes = append(probes, netip.AddrFrom16([16]byte{
			10: 0xff, 11: 0xff, 12: a4[0], 13: a4[1], 14: a4[2], 15: a4[3]}))
	}

	for pass := 0; pass < 3; pass++ {
		rng.Shuffle(len(probes), func(i, j int) { probes[i], probes[j] = probes[j], probes[i] })
		for _, ip := range probes {
			want, got := db.Lookup(ip), cache.Lookup(ip)
			if want != got {
				t.Fatalf("pass %d: Lookup(%s): cache=%v db=%v", pass, ip, got, want)
			}
		}
	}
}

// TestCacheSequentialBurst: the last-range fast path must stay correct
// across a burst from one prefix followed by a family switch.
func TestCacheSequentialBurst(t *testing.T) {
	db := testPlan(t)
	cache := NewCache(db)
	rng := rand.New(rand.NewPCG(9, 10))
	as := db.AllASes()[0]
	for i := 0; i < 200; i++ {
		ip := as.RandomAddr(rng, false)
		if got := cache.Lookup(ip); got != as {
			t.Fatalf("burst lookup %s: got %v, want AS%d", ip, got, as.ASN)
		}
	}
	other := db.AllASes()[5]
	if got := cache.Lookup(other.RandomAddr(rng, true)); got != other {
		t.Fatalf("v6 switch resolved to %v, want AS%d", got, other.ASN)
	}
	if got := cache.Lookup(netip.MustParseAddr("1.1.1.1")); got != nil {
		t.Fatalf("out-of-plan resolved to %v", got)
	}
}

// TestCacheNilDB: a cache over a nil plan resolves everything to nil.
func TestCacheNilDB(t *testing.T) {
	cache := NewCache(nil)
	if got := cache.Lookup(netip.MustParseAddr("20.0.0.1")); got != nil {
		t.Fatalf("nil-db lookup returned %v", got)
	}
	if got := cache.Lookup(netip.Addr{}); got != nil {
		t.Fatalf("invalid-addr lookup returned %v", got)
	}
}

// BenchmarkGeoCache compares the raw binary search against the cached
// front on a repeat-client access pattern (the sink's actual shape).
func BenchmarkGeoCache(b *testing.B) {
	db, err := Build([]CountrySpec{
		{Code: "CN", ASCount: 12, Skew: 1.5},
		{Code: "US", ASCount: 20},
		{Code: "DE", ASCount: 10},
	}, 42)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	ases := db.AllASes()
	addrs := make([]netip.Addr, 4096)
	for i := range addrs {
		addrs[i] = ases[rng.IntN(len(ases))].RandomAddr(rng, rng.IntN(4) == 0)
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.Lookup(addrs[i&(len(addrs)-1)])
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := NewCache(db)
		for i := 0; i < b.N; i++ {
			cache.Lookup(addrs[i&(len(addrs)-1)])
		}
	})
}
