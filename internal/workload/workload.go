// Package workload generates the synthetic global traffic that stands
// in for the paper's two-week sample of real CDN connections (see
// DESIGN.md §2). A Scenario describes per-country client populations,
// request mixes, censorship deployments, and temporal patterns; Run
// simulates every connection through real TCP endpoints and DPI
// middleboxes and returns the capture records the classifier consumes.
//
// Scale note: the paper samples 1 in 10 000 connections out of ~45M
// req/s; we generate the sampled population directly (the capture
// sampler still runs, at rate 1) and size it in the tens or hundreds of
// thousands, which preserves every per-country and per-signature
// proportion the analyses measure.
package workload

import (
	"hash/fnv"
	"math/rand/v2"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/faults"
	"tamperdetect/internal/geo"
	"tamperdetect/internal/httpwire"
	"tamperdetect/internal/middlebox"
	"tamperdetect/internal/netsim"
	"tamperdetect/internal/tcpsim"
	"tamperdetect/internal/tlswire"
)

// CensorStyle identifies how a country (or one of its ASes) tampers.
type CensorStyle int

// Censor styles, each mapping to a middlebox profile.
const (
	StyleNone CensorStyle = iota
	StyleGFW
	StyleGFWIPBlock
	StyleIranDPI
	StyleHTTPReset
	StyleTSPU // per-AS variant selection
	StyleAckGuessRandomTTL
	StyleAckGuessFixedTTL
	StylePostACKMultiRST
	StyleEnterpriseRST
	StyleEnterpriseRSTACK
	StyleIPBlackhole
	StyleIPResetRST
	StyleIPResetRSTACK
	StyleIPIDCopy
	// Fixed TSPU variants for countries with one known behaviour.
	StyleDropRSTACK      // drop trigger + single RST+ACK: ⟨SYN;ACK → RST+ACK⟩
	StylePSHBlackhole    // forward trigger, blackhole: ⟨PSH+ACK → ∅⟩
	StylePSHSingleRST    // ⟨PSH+ACK → RST⟩
	StylePSHDoubleRST    // ⟨PSH+ACK → RST=RST⟩
	StylePSHSingleRSTACK // ⟨PSH+ACK → RST+ACK⟩
)

// WeightedStyle pairs a style with its share of the country's censored
// connections.
type WeightedStyle struct {
	Style  CensorStyle
	Weight float64
}

// CountryConfig describes one country's clients and censorship.
type CountryConfig struct {
	Code string
	// Share is the country's fraction of global connections.
	Share float64
	// ASCount/ASSkew shape the geo address plan.
	ASCount int
	ASSkew  float64
	// IPv6Share is the fraction of connections over IPv6.
	IPv6Share float64
	// V6SeekFactor scales blocked-seeking for IPv6 connections
	// (Figure 7a's per-country disparities: Sri Lanka tampers IPv4
	// far more than IPv6, Kenya the reverse). 0 means 1 (no bias).
	V6SeekFactor float64
	// TZOffset shifts the local diurnal curves (hours east of UTC).
	TZOffset int
	// Profile is the request category mix.
	Profile domains.CategoryProfile
	// BlockCoverage is the probability that a given domain of a
	// category is on the country's blocklist (Table 2's "coverage").
	BlockCoverage map[domains.Category]float64
	// BlockedSeekBase is the base probability a connection seeks
	// blocked content; with incidental hits it sets the tampering rate.
	BlockedSeekBase float64
	// NightBoost raises blocked-seeking during local night (Figure 6).
	NightBoost float64
	// WeekendFactor scales blocked-seeking on weekends (<1 lowers it).
	WeekendFactor float64
	// Styles is the censor-style mix.
	Styles []WeightedStyle
	// Decentralized varies intensity and style per AS (Figure 5);
	// MinASIntensity is the weakest AS's intensity multiplier.
	Decentralized  bool
	MinASIntensity float64
	// HTTPOnlyCensor limits content censorship to cleartext HTTP
	// (Turkmenistan's TLS blind spot, Figure 7b).
	HTTPOnlyCensor bool
	// HTTPLeniency is the probability that a censor lets a cleartext
	// HTTP request through where it would have blocked the TLS
	// equivalent — SNI-focused deployments make TLS handshakes more
	// tampered than HTTP overall (Figure 7b's slope 0.3).
	HTTPLeniency float64
	// ForceHTTPShare forces plain HTTP regardless of the domain's
	// HTTPS share (legacy-heavy client populations).
	ForceHTTPShare float64
	// Client quirk shares (§4.2 threats to validity), plus the benign
	// behaviours behind the large uncovered stage masses of §4.1:
	// AbandonShare (no-FIN idle after data → Post-Data timeouts) and
	// StallShare (silence after the handshake → Post-ACK lookalikes).
	ScannerShare    float64
	HEResetShare    float64
	HEDropShare     float64
	WeirdShare      float64
	AbandonShare    float64
	ResetCloseShare float64
	StallShare      float64
	SYNPayloadShare float64
	// HourlySeek, if set, overrides blocked-seeking probability per
	// scenario hour (the Iran 2022 case study).
	HourlySeek func(hour int) float64
	// HourlyStyles, if set, overrides the style mix per scenario hour.
	HourlyStyles func(hour int) []WeightedStyle
}

// Scenario is a full experiment description.
type Scenario struct {
	Name      string
	Seed      uint64
	Hours     int
	Total     int // total connections across the scenario
	Countries []CountryConfig
	Universe  *domains.Universe
	Geo       *geo.DB
	// StartWeekday is the weekday of hour 0 (0=Monday … 6=Sunday).
	StartWeekday int
	// SYNPayloadSurgeDay, when ≥0, marks a day where a burst of
	// request-on-SYN traffic targets a handful of domains — the
	// anomaly behind §4.1's "38% of port-80 SYNs carried an HTTP
	// payload, 93% of them to the same four domains". -1 disables.
	SYNPayloadSurgeDay int
	// CaptureConfig lets ablations change sampling; zero value means
	// capture.DefaultConfig().
	CaptureConfig capture.Config
	// Impairments applies benign link pathologies (burst loss,
	// reordering, duplication, jitter, corruption, truncation) to every
	// connection's path; the zero value is a clean network. See
	// internal/faults for the named grades.
	Impairments faults.Config
}

// ConnSpec is everything needed to simulate one connection
// deterministically.
type ConnSpec struct {
	Index int
	Seed  uint64
	// Start is the connection's virtual arrival time — the instant its
	// arrival event fired on the scenario's simtime engine. The
	// per-connection simulation clock starts here, so every capture
	// timestamp derives from it at nanosecond resolution (quantized to
	// the paper's 1-second granularity by the sampler).
	Start   netsim.Time
	Country *CountryConfig
	AS      *geo.AS
	V6      bool
	// HostIdx pins the client to a deterministic address within the AS
	// (repeat clients, Appendix B); -1 draws a random host.
	HostIdx  int
	Domain   *domains.Domain
	UseTLS   bool
	Behavior tcpsim.Behavior
	// Blocked marks the domain as on the country's blocklist.
	Blocked bool
	// Style is the censor style applied (StyleNone if not censored).
	Style   CensorStyle
	Variant int // per-AS TSPU variant, ack-guess flavour, …
	// SYNPayload carries the request on the SYN (§4.1 clients).
	SYNPayload bool
	// Intensity scales whether the censor actually fires (per-AS
	// decentralization); the censor is installed iff a per-connection
	// draw passed, which the generator encodes here.
	CensorActive bool
	// KeywordTrigger marks enterprise-firewall connections whose
	// *second* request carries the keyword.
	KeywordTrigger bool
	// TTLInit and IPIDZero pick the client OS conventions.
	TTLInit  uint8
	IPIDZero bool
}

// Hour returns the scenario hour the spec's arrival falls in.
func (spec *ConnSpec) Hour() int { return int(spec.Start / netsim.Time(time.Hour)) }

// Day returns the scenario day the spec's arrival falls in.
func (spec *ConnSpec) Day() int { return int(spec.Start / netsim.Time(24*time.Hour)) }

// blockKeyword is the keyword enterprise firewalls match on.
const blockKeyword = "forbidden-topic"

// hashUnit hashes strings to [0,1) deterministically (independent of
// any RNG stream), used for per-(country,domain) and per-AS decisions
// that must be consistent across connections.
func hashUnit(parts ...string) float64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// splitmixStr hashes a string to 64 bits for deterministic seeds.
func splitmixStr(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// specDomainName is the spec's domain name or "" for scanners.
func specDomainName(spec *ConnSpec) string {
	if spec.Domain == nil {
		return ""
	}
	return spec.Domain.Name
}

// resetProne marks the popular domains whose clients habitually close
// with RSTs (a fixed ~15% of each category's top-100).
func resetProne(d *domains.Domain) bool {
	return d.CatRank <= 60 && hashUnit("rstclose", d.Name) < 0.09
}

// IsBlocked reports whether the country blocks the domain, consistent
// across all connections of a scenario.
func IsBlocked(c *CountryConfig, d *domains.Domain) bool {
	cov := c.BlockCoverage[d.Category]
	if cov <= 0 {
		return false
	}
	return hashUnit("blk", c.Code, d.Name) < cov
}

// asIntensity returns the AS's censorship intensity in
// [MinASIntensity, 1] for decentralized countries, 1 otherwise.
func asIntensity(c *CountryConfig, as *geo.AS) float64 {
	if !c.Decentralized {
		return 1
	}
	lo := c.MinASIntensity
	if lo < 0 {
		lo = 0
	}
	return lo + (1-lo)*hashUnit("asint", c.Code, itoa(int(as.ASN)))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// localHour converts a scenario hour to the country's local hour.
func localHour(c *CountryConfig, hour int) int {
	h := (hour + c.TZOffset) % 24
	if h < 0 {
		h += 24
	}
	return h
}

// nightFactor implements the Figure 6 pattern: blocked-seeking is
// boosted between local midnight and 8 AM, with soft shoulders.
func nightFactor(local int) float64 {
	switch {
	case local < 8:
		return 1
	case local < 10, local >= 22:
		return 0.3
	default:
		return 0
	}
}

// volumeFactor is the raw traffic diurnal curve: daytime peak.
func volumeFactor(local int) float64 {
	switch {
	case local >= 9 && local < 22:
		return 1.0
	case local >= 7 && local < 9:
		return 0.7
	default:
		return 0.45
	}
}

// isWeekend reports whether the scenario hour falls on Sat/Sun.
func (s *Scenario) isWeekend(hour int) bool {
	day := (s.StartWeekday + hour/24) % 7
	return day >= 5
}

// seekProbability computes the blocked-seeking probability for a
// country at a scenario hour.
func (s *Scenario) seekProbability(c *CountryConfig, hour int) float64 {
	base := c.BlockedSeekBase
	if c.HourlySeek != nil {
		base = c.HourlySeek(hour)
	}
	p := base * (1 + c.NightBoost*nightFactor(localHour(c, hour)))
	if s.isWeekend(hour) && c.WeekendFactor > 0 {
		p *= c.WeekendFactor
	}
	if p > 0.97 {
		p = 0.97
	}
	return p
}

// pickStyle draws a censor style from the country's (possibly hourly)
// mix.
func pickStyle(c *CountryConfig, hour int, rng *rand.Rand) CensorStyle {
	styles := c.Styles
	if c.HourlyStyles != nil {
		styles = c.HourlyStyles(hour)
	}
	if len(styles) == 0 {
		return StyleNone
	}
	total := 0.0
	for _, w := range styles {
		total += w.Weight
	}
	r := rng.Float64() * total
	for _, w := range styles {
		if r < w.Weight {
			return w.Style
		}
		r -= w.Weight
	}
	return styles[len(styles)-1].Style
}

// buildSpec draws one connection's parameters. The arrival instant is
// not drawn here: it comes from the bucket's arrival process and is
// stamped by the simtime engine merge (see arrivals.go).
func (s *Scenario) buildSpec(idx int, c *CountryConfig, hour int, rng *rand.Rand) ConnSpec {
	spec := ConnSpec{
		Index:   idx,
		Seed:    s.Seed ^ (uint64(idx)*0x9e3779b97f4a7c15 + 0x123456789),
		Country: c,
		HostIdx: -1,
	}
	spec.AS = s.Geo.PickAS(rng, c.Code)
	// A quarter of connections come from repeat clients: a small pool
	// of per-AS hosts that return to the same domains, producing the
	// IP-domain pairs Appendix B measures for consistency.
	repeat := rng.Float64() < 0.25
	if repeat {
		spec.HostIdx = rng.IntN(120)
	}
	spec.V6 = rng.Float64() < c.IPv6Share
	spec.TTLInit = 64
	if rng.Float64() < 0.3 {
		spec.TTLInit = 128
	}
	spec.IPIDZero = rng.Float64() < 0.25

	// Client quirks preempt normal requests.
	q := rng.Float64()
	cum := c.ScannerShare
	switch {
	case q < cum:
		spec.Behavior = tcpsim.BehaviorScanner
		return spec
	case q < cum+c.HEResetShare:
		spec.Behavior = tcpsim.BehaviorHappyEyeballsReset
		return spec
	case q < cum+c.HEResetShare+c.HEDropShare:
		spec.Behavior = tcpsim.BehaviorHappyEyeballsDrop
		return spec
	case q < cum+c.HEResetShare+c.HEDropShare+c.StallShare:
		spec.Behavior = tcpsim.BehaviorStallHandshake
		return spec
	case q < cum+c.HEResetShare+c.HEDropShare+c.StallShare+c.WeirdShare:
		if rng.IntN(2) == 0 {
			spec.Behavior = tcpsim.BehaviorRedundantACK
			return spec
		}
		spec.Behavior = tcpsim.BehaviorDoubleSYN
		// DoubleSYN still requests content.
	case q < cum+c.HEResetShare+c.HEDropShare+c.StallShare+c.WeirdShare+c.AbandonShare:
		spec.Behavior = tcpsim.BehaviorAbandon
		// Abandoners request content too; they just never close.
	}

	// Domain selection: blocked-seeking vs organic. Repeat clients use
	// a per-client RNG so the same host returns to the same domains.
	domRNG := rng
	if repeat {
		hseed := uint64(spec.AS.ASN)<<20 ^ uint64(spec.HostIdx)*0x2545f491
		domRNG = rand.New(rand.NewPCG(hseed, hseed^0xface))
	}
	seek := s.seekProbability(c, hour)
	if spec.V6 && c.V6SeekFactor > 0 {
		seek *= c.V6SeekFactor
		if seek > 0.97 {
			seek = 0.97
		}
	}
	if rng.Float64() < seek {
		for try := 0; try < 60; try++ {
			d := s.Universe.Sample(domRNG, &c.Profile)
			if IsBlocked(c, d) {
				spec.Domain = d
				spec.Blocked = true
				break
			}
		}
	}
	if spec.Domain == nil {
		spec.Domain = s.Universe.Sample(domRNG, &c.Profile)
		spec.Blocked = IsBlocked(c, spec.Domain)
	}
	spec.UseTLS = rng.Float64() < spec.Domain.HTTPSShare
	if rng.Float64() < c.ForceHTTPShare {
		spec.UseTLS = false
	}
	// RST-close clients concentrate on specific popular services (apps
	// that tear down keep-alive connections with RSTs), which is what
	// keeps Table 2's per-category coverage low in lightly-censored
	// countries while ⟨PSH+ACK;Data → RST⟩ matches appear everywhere.
	if spec.Behavior == tcpsim.BehaviorNormal && resetProne(spec.Domain) &&
		rng.Float64() < min(0.9, c.ResetCloseShare*16) {
		spec.Behavior = tcpsim.BehaviorResetClose
	}
	synShare := c.SYNPayloadShare
	if s.SYNPayloadSurgeDay >= 0 && hour/24 == s.SYNPayloadSurgeDay {
		synShare = 0.38
	}
	spec.SYNPayload = !spec.UseTLS && rng.Float64() < synShare
	if spec.SYNPayload && rng.Float64() < 0.93 {
		// The surge concentrates on four hot content-server domains.
		hot := s.Universe.Categories(domains.ContentServers)
		if len(hot) >= 4 {
			spec.Domain = hot[rng.IntN(4)]
			spec.Blocked = IsBlocked(c, spec.Domain)
		}
	}

	// Censor installation.
	if spec.Blocked {
		style := pickStyle(c, hour, rng)
		if style != StyleNone && rng.Float64() < asIntensity(c, spec.AS) {
			switch {
			case c.HTTPOnlyCensor && spec.UseTLS:
				// TLS is invisible to this censor (TM, Figure 7b).
			case !spec.UseTLS && !c.HTTPOnlyCensor && rng.Float64() < c.HTTPLeniency:
				// SNI-focused censor passes the cleartext request.
			default:
				spec.Style = style
				spec.CensorActive = true
				spec.Variant = int(hashUnit("variant", c.Code, itoa(int(spec.AS.ASN)))*5) % 5
				if style == StyleEnterpriseRST || style == StyleEnterpriseRSTACK {
					spec.KeywordTrigger = true
				}
			}
		}
	}
	return spec
}

// serverIP4 and serverIP6 are the CDN edge addresses clients connect to.
var (
	serverIP4 = netip.MustParseAddr("192.0.2.80")
	serverIP6 = netip.MustParseAddr("2001:db8:edce::80")
)

// policiesFor builds the middlebox policies of a spec. The domain
// matcher consults the country's blocklist over the whole universe, so
// the middlebox behaves like a real deployment (retransmissions and
// unrelated domains are judged the same way).
func policiesFor(spec *ConnSpec, u *domains.Universe) []middlebox.Policy {
	if !spec.CensorActive {
		return nil
	}
	c := spec.Country
	match := func(d string) bool {
		if dom := u.ByName(d); dom != nil {
			return IsBlocked(c, dom)
		}
		return spec.Domain != nil && spec.Domain.Name == d
	}
	ipAll := func(netip.Addr) bool { return true }
	seed := uint64(spec.AS.ASN)<<32 ^ uint64(splitmixStr(c.Code+"|"+specDomainName(spec)))
	withSeed := func(p middlebox.Policy) []middlebox.Policy {
		p.ActionSeed = seed
		return []middlebox.Policy{p}
	}
	switch spec.Style {
	case StyleGFW:
		return withSeed(middlebox.GFW(match))
	case StyleGFWIPBlock:
		return withSeed(middlebox.GFWIPBlock(ipAll))
	case StyleIranDPI:
		return withSeed(middlebox.IranDPI(match))
	case StyleHTTPReset:
		return withSeed(middlebox.HTTPReset(match))
	case StyleTSPU:
		return withSeed(middlebox.TSPUVariant(match, spec.Variant))
	case StyleAckGuessRandomTTL:
		return withSeed(middlebox.AckGuessingRST(match, true))
	case StyleAckGuessFixedTTL:
		return withSeed(middlebox.AckGuessingRST(match, false))
	case StylePostACKMultiRST:
		return withSeed(middlebox.PostHandshakeMultiRST(match))
	case StyleEnterpriseRST:
		return withSeed(middlebox.EnterpriseFirewall(blockKeyword, false))
	case StyleEnterpriseRSTACK:
		return withSeed(middlebox.EnterpriseFirewall(blockKeyword, true))
	case StyleIPBlackhole:
		return withSeed(middlebox.IPBlackhole(ipAll))
	case StyleIPResetRST:
		return withSeed(middlebox.IPReset(ipAll, false, 1))
	case StyleIPResetRSTACK:
		return withSeed(middlebox.IPReset(ipAll, true, 1))
	case StyleIPIDCopy:
		return withSeed(middlebox.IPIDCopyingCensor(match))
	case StyleDropRSTACK:
		return withSeed(middlebox.TSPUVariant(match, 3))
	case StylePSHBlackhole:
		return withSeed(middlebox.TSPUVariant(match, 0))
	case StylePSHSingleRST:
		return withSeed(middlebox.TSPUVariant(match, 1))
	case StylePSHDoubleRST:
		return withSeed(middlebox.TSPUVariant(match, 2))
	case StylePSHSingleRSTACK:
		return withSeed(middlebox.TSPUVariant(match, 4))
	default:
		return nil
	}
}

// Run simulates all specs with the given parallelism (0 = GOMAXPROCS)
// and returns the capture records in spec order, dropping unsampled
// connections.
func (s *Scenario) Run(workers int) []*capture.Connection {
	out := s.RunSpecs(s.Specs(), workers)
	compact := out[:0]
	for _, c := range out {
		if c != nil {
			compact = append(compact, c)
		}
	}
	return compact
}

// runSpecsChunk bounds the work-distribution granularity of RunSpecs:
// workers claim contiguous ranges of this many specs, amortising the
// channel synchronisation without skewing load balance (a chunk is
// milliseconds of simulation).
const runSpecsChunk = 64

// RunSpecs simulates a prepared spec list. The result is positional:
// element i belongs to specs[i] and is nil when the sampler did not
// select that connection. Simulation order never affects the output —
// each spec carries its own seed — so chunked distribution is safe.
func (s *Scenario) RunSpecs(specs []ConnSpec, workers int) []*capture.Connection {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]*capture.Connection, len(specs))
	var wg sync.WaitGroup
	ch := make(chan [2]int, 256)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range ch {
				for i := r[0]; i < r[1]; i++ {
					out[i] = SimulateConn(&specs[i], s.Universe, s.CaptureConfig, s.Impairments)
				}
			}
		}()
	}
	for i := 0; i < len(specs); i += runSpecsChunk {
		end := i + runSpecsChunk
		if end > len(specs) {
			end = len(specs)
		}
		ch <- [2]int{i, end}
	}
	close(ch)
	wg.Wait()
	return out
}

// SimulateConn runs one connection through the full stack and returns
// its capture record (nil if the sampler did not select it). A non-zero
// imp applies benign link impairments to the path; endpoints get extra
// retransmission budget so an impaired-but-untampered connection still
// completes, and the capture tap verifies checksums (corrupted packets
// behave as loss, never as records).
func SimulateConn(spec *ConnSpec, u *domains.Universe, capCfg capture.Config, imp faults.Config) *capture.Connection {
	rng := rand.New(rand.NewPCG(spec.Seed, spec.Seed^0xabcdef))
	sim := netsim.NewSim(spec.Start)

	clientIP := spec.AS.RandomAddr(rng, spec.V6)
	if spec.HostIdx >= 0 {
		clientIP = spec.AS.HostAddr(spec.HostIdx, spec.V6)
	}
	serverIP := serverIP4
	if spec.V6 {
		serverIP = serverIP6
	}
	dstPort := uint16(443)
	if !spec.UseTLS {
		dstPort = 80
	}
	srcPort := uint16(32768 + rng.IntN(28000))

	cprof := tcpsim.NetProfile{
		LocalIP: clientIP, RemoteIP: serverIP,
		LocalPort: srcPort, RemotePort: dstPort,
		InitialTTL: spec.TTLInit,
		IPID:       tcpsim.IPIDCounter,
		IPIDValue:  uint16(rng.IntN(60000)),
		Window:     64240,
		SYNOptions: true,
	}
	if spec.IPIDZero {
		cprof.IPID = tcpsim.IPIDZero
	}
	if spec.Behavior == tcpsim.BehaviorScanner {
		cprof.IPID = tcpsim.IPIDFixed
		cprof.IPIDValue = 54321
		cprof.SYNOptions = false
		cprof.InitialTTL = 255
	}
	sprof := tcpsim.NetProfile{
		LocalIP: serverIP, RemoteIP: clientIP,
		LocalPort: dstPort, RemotePort: srcPort,
		InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: uint16(rng.IntN(60000)),
		Window: 65535, SYNOptions: true,
	}

	ccfg := tcpsim.ClientConfig{Net: cprof, Behavior: spec.Behavior}
	if imp.Enabled() {
		// Real stacks retry far more than our clean-path defaults; give
		// impaired connections the budget to survive burst loss.
		ccfg.SYNRetries = 6
		ccfg.DataRetries = 5
	}
	needsRequest := spec.Behavior == tcpsim.BehaviorNormal ||
		spec.Behavior == tcpsim.BehaviorDoubleSYN ||
		spec.Behavior == tcpsim.BehaviorAbandon ||
		spec.Behavior == tcpsim.BehaviorResetClose
	if spec.Domain != nil && needsRequest {
		ccfg.Segments = requestSegments(spec, rng)
		if spec.SYNPayload {
			// The request rides the SYN; no separate data segment.
			ccfg.SYNPayload = ccfg.Segments[0].Data
			ccfg.Segments = ccfg.Segments[1:]
		}
	}

	cli := tcpsim.NewClient(sim, ccfg, rng)
	srv := tcpsim.NewServer(sim, tcpsim.ServerConfig{Net: sprof}, rng)

	var mbs []netsim.Middlebox
	if pols := policiesFor(spec, u); len(pols) > 0 {
		mbs = append(mbs, middlebox.NewEngine(pols, rng, sim.Now))
	}
	segs := make([]netsim.Segment, len(mbs)+1)
	for i := range segs {
		segs[i] = netsim.Segment{
			Delay: time.Duration(5+rng.IntN(40)) * time.Millisecond,
			Hops:  uint8(3 + rng.IntN(7)),
		}
	}
	pathCfg := netsim.PathConfig{Segments: segs, Middleboxes: mbs}
	if imp.Enabled() {
		// Per-connection impairment chain, deterministically seeded from
		// the spec and the grade so sweeps across grades decorrelate.
		iseed := spec.Seed ^ 0xfa0175
		pathCfg.Hook = faults.NewChain(imp, rand.New(rand.NewPCG(iseed, iseed^splitmixStr(imp.Grade)))).Hook
	}
	path := netsim.NewPath(sim, pathCfg, cli, srv)

	if capCfg.Rate == 0 {
		capCfg = capture.DefaultConfig()
	}
	if capCfg.ShuffleWithinSecond == nil {
		capCfg.ShuffleWithinSecond = rand.New(rand.NewPCG(spec.Seed^0x5417, spec.Seed))
	}
	// The deployment's tap never surfaces checksum-broken packets.
	capCfg.VerifyChecksums = true
	sampler := capture.NewSampler(capCfg)
	path.Tap = sampler.Inbound
	cli.Attach(path.SendFromClient)
	srv.Attach(path.SendFromServer)
	cli.Start()
	sim.Run(500000)
	conns := sampler.Drain(sim.Now().Add(45 * time.Second))
	if len(conns) == 0 {
		return nil
	}
	return conns[0]
}

// requestSegments builds the client's data script.
func requestSegments(spec *ConnSpec, rng *rand.Rand) []tcpsim.Segment {
	d := spec.Domain
	if spec.UseTLS {
		var random [32]byte
		for i := 0; i < len(random); i += 8 {
			v := rng.Uint64()
			for j := 0; j < 8; j++ {
				random[i+j] = byte(v >> (8 * j))
			}
		}
		hello := tlswire.BuildClientHello(tlswire.ClientHelloSpec{ServerName: d.Name, Random: random})
		segs := []tcpsim.Segment{{Data: hello}}
		if spec.KeywordTrigger {
			// Enterprise firewalls see inside TLS (trusted-cert MitM,
			// §4.1); we model the visible keyword as a follow-up
			// cleartext-equivalent record after the response.
			segs = append(segs, tcpsim.Segment{
				Data:          []byte("\x17\x03\x03 app-data " + blockKeyword),
				AfterResponse: true,
			})
		}
		return segs
	}
	req := httpwire.BuildRequest("GET", d.Name, "/", map[string]string{"User-Agent": "Mozilla/5.0"})
	segs := []tcpsim.Segment{{Data: req}}
	if spec.KeywordTrigger {
		segs = append(segs, tcpsim.Segment{
			Data:          httpwire.BuildRequest("GET", d.Name, "/"+blockKeyword, map[string]string{"User-Agent": "Mozilla/5.0"}),
			AfterResponse: true,
		})
	} else if rng.Float64() < 0.25 {
		// Some keep-alive second requests, so Post-Data prefixes exist
		// organically.
		segs = append(segs, tcpsim.Segment{
			Data:          httpwire.BuildRequest("GET", d.Name, "/page2", nil),
			AfterResponse: true,
		})
	}
	return segs
}

// SimulateEvasive runs a connection against the §6 "ideal censor"
// (middlebox.EvasiveCensor) instead of the spec's configured policy,
// for the evasion blind-spot experiment.
func SimulateEvasive(spec *ConnSpec, u *domains.Universe) *capture.Connection {
	c := spec.Country
	ev := middlebox.NewEvasiveCensor(func(d string) bool {
		if dom := u.ByName(d); dom != nil {
			return IsBlocked(c, dom)
		}
		return false
	})
	return simulateWith(spec, ev)
}

// simulateWith is SimulateConn with an explicit middlebox chain.
func simulateWith(spec *ConnSpec, mb netsim.Middlebox) *capture.Connection {
	rng := rand.New(rand.NewPCG(spec.Seed, spec.Seed^0xabcdef))
	sim := netsim.NewSim(spec.Start)
	clientIP := spec.AS.RandomAddr(rng, spec.V6)
	serverIP := serverIP4
	if spec.V6 {
		serverIP = serverIP6
	}
	dstPort := uint16(443)
	if !spec.UseTLS {
		dstPort = 80
	}
	srcPort := uint16(32768 + rng.IntN(28000))
	cprof := tcpsim.NetProfile{
		LocalIP: clientIP, RemoteIP: serverIP,
		LocalPort: srcPort, RemotePort: dstPort,
		InitialTTL: spec.TTLInit, IPID: tcpsim.IPIDCounter,
		IPIDValue: uint16(rng.IntN(60000)), Window: 64240, SYNOptions: true,
	}
	sprof := tcpsim.NetProfile{
		LocalIP: serverIP, RemoteIP: clientIP,
		LocalPort: dstPort, RemotePort: srcPort,
		InitialTTL: 64, IPID: tcpsim.IPIDCounter, IPIDValue: uint16(rng.IntN(60000)),
		Window: 65535, SYNOptions: true,
	}
	ccfg := tcpsim.ClientConfig{Net: cprof, Behavior: spec.Behavior}
	if spec.Domain != nil {
		ccfg.Segments = requestSegments(spec, rng)
	}
	cli := tcpsim.NewClient(sim, ccfg, rng)
	srv := tcpsim.NewServer(sim, tcpsim.ServerConfig{Net: sprof}, rng)
	path := netsim.NewPath(sim, netsim.PathConfig{
		Segments: []netsim.Segment{
			{Delay: time.Duration(5+rng.IntN(40)) * time.Millisecond, Hops: uint8(3 + rng.IntN(7))},
			{Delay: time.Duration(5+rng.IntN(40)) * time.Millisecond, Hops: uint8(3 + rng.IntN(7))},
		},
		Middleboxes: []netsim.Middlebox{mb},
	}, cli, srv)
	capCfg := capture.DefaultConfig()
	capCfg.ShuffleWithinSecond = rand.New(rand.NewPCG(spec.Seed^0x5417, spec.Seed))
	sampler := capture.NewSampler(capCfg)
	path.Tap = sampler.Inbound
	cli.Attach(path.SendFromClient)
	srv.Attach(path.SendFromServer)
	cli.Start()
	sim.Run(500000)
	conns := sampler.Drain(sim.Now().Add(45 * time.Second))
	if len(conns) == 0 {
		return nil
	}
	return conns[0]
}
