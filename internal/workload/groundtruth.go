package workload

import (
	"fmt"
	"sort"
	"strings"

	"tamperdetect/internal/core"
)

// This file implements the ground-truth validation experiment — an
// extension the paper could not run: in the wild there is no oracle
// for which connections were actually censored, but the simulator
// knows. We measure the classifier's precision and recall against the
// generator's intent, per censor style, quantifying §4.2's qualitative
// claims about false-positive sources.

// GroundTruth summarizes classifier accuracy against generator intent.
type GroundTruth struct {
	// Censored/NotCensored count evaluated connections by intent.
	Censored    int
	NotCensored int
	// TruePos: censored and matched a signature. FalseNeg: censored but
	// classified clean. FalsePos: not censored yet matched a signature.
	TruePos, FalseNeg, FalsePos int
	// Invisible counts censored connections whose every packet was
	// dropped before the server — in-path censorship of the first SYN,
	// which passive detection cannot even enumerate (§3.4).
	Invisible int
	// FalsePosBenign counts false positives from intentionally
	// anomalous clients (scanners, Happy Eyeballs, reset-closers) —
	// the §4.2 threat-to-validity sources, as opposed to unexplained
	// ones.
	FalsePosBenign int
	// PerStyle is recall per censor style.
	PerStyle map[CensorStyle]*StyleRecall
}

// StyleRecall is one style's detection rate.
type StyleRecall struct {
	Total    int
	Detected int
	// TopSignature is the most frequent signature the style produced.
	TopSignature core.Signature
	sigCounts    map[core.Signature]int
}

// Recall is detected/total.
func (s *StyleRecall) Recall() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Detected) / float64(s.Total)
}

// Precision is TP/(TP+FP).
func (g *GroundTruth) Precision() float64 {
	if g.TruePos+g.FalsePos == 0 {
		return 0
	}
	return float64(g.TruePos) / float64(g.TruePos+g.FalsePos)
}

// Recall is TP/(TP+FN).
func (g *GroundTruth) Recall() float64 {
	if g.TruePos+g.FalseNeg == 0 {
		return 0
	}
	return float64(g.TruePos) / float64(g.TruePos+g.FalseNeg)
}

// benignAnomaly reports whether the spec is one of the §4.2 sources
// that legitimately mimic tampering signatures.
func benignAnomaly(spec *ConnSpec) bool {
	switch spec.Behavior {
	case 0: // BehaviorNormal
		return false
	default:
		return true
	}
}

// ValidateGroundTruth simulates up to maxConns of the scenario's specs
// and scores the classifier against the generator's intent.
func ValidateGroundTruth(s *Scenario, maxConns int, workers int) GroundTruth {
	specs := s.Specs()
	if maxConns > 0 && len(specs) > maxConns {
		specs = specs[:maxConns]
	}
	conns := s.RunSpecs(specs, workers)
	cl := core.NewClassifier(core.DefaultConfig())
	g := GroundTruth{PerStyle: map[CensorStyle]*StyleRecall{}}
	for i := range conns {
		spec := &specs[i]
		if conns[i] == nil {
			// Nothing reached the server: the connection is invisible
			// to a passive observer.
			if spec.CensorActive {
				g.Censored++
				g.FalseNeg++
				g.Invisible++
			}
			continue
		}
		res := cl.Classify(conns[i])
		matched := res.Signature.IsTampering()
		if spec.CensorActive {
			g.Censored++
			sr := g.PerStyle[spec.Style]
			if sr == nil {
				sr = &StyleRecall{sigCounts: map[core.Signature]int{}}
				g.PerStyle[spec.Style] = sr
			}
			sr.Total++
			if matched {
				g.TruePos++
				sr.Detected++
				sr.sigCounts[res.Signature]++
				if sr.sigCounts[res.Signature] > sr.sigCounts[sr.TopSignature] || sr.TopSignature == 0 {
					sr.TopSignature = res.Signature
				}
			} else {
				g.FalseNeg++
			}
			continue
		}
		g.NotCensored++
		if matched {
			g.FalsePos++
			if benignAnomaly(spec) {
				g.FalsePosBenign++
			}
		}
	}
	return g
}

// styleDisplayNames maps styles back to their JSON names for reports.
func styleDisplayName(s CensorStyle) string {
	for name, v := range styleNames {
		if v == s {
			return name
		}
	}
	return fmt.Sprintf("style-%d", int(s))
}

// RenderGroundTruth formats the validation report.
func RenderGroundTruth(g GroundTruth) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ground-truth validation (the oracle the paper lacked):\n")
	fmt.Fprintf(&b, "  censored connections:      %d\n", g.Censored)
	fmt.Fprintf(&b, "  uncensored connections:    %d\n", g.NotCensored)
	fmt.Fprintf(&b, "  recall    (censored detected):         %.3f\n", g.Recall())
	if g.Invisible > 0 {
		fmt.Fprintf(&b, "  invisible (all packets dropped in-path): %d\n", g.Invisible)
	}
	fmt.Fprintf(&b, "  precision (matches truly censored):    %.3f\n", g.Precision())
	benignShare := 0.0
	if g.FalsePos > 0 {
		benignShare = float64(g.FalsePosBenign) / float64(g.FalsePos)
	}
	fmt.Fprintf(&b, "  false positives: %d (%.0f%% from the §4.2 benign sources: scanners,\n"+
		"    Happy Eyeballs, RST-closing apps; the rest are stalls/drops)\n",
		g.FalsePos, 100*benignShare)
	fmt.Fprintf(&b, "  per-style recall:\n")
	type row struct {
		style CensorStyle
		sr    *StyleRecall
	}
	var rows []row
	for st, sr := range g.PerStyle {
		rows = append(rows, row{st, sr})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].style < rows[j].style })
	for _, r := range rows {
		fmt.Fprintf(&b, "    %-22s %5.1f%% of %4d   top signature: %s\n",
			styleDisplayName(r.style), 100*r.sr.Recall(), r.sr.Total, r.sr.TopSignature)
	}
	return b.String()
}
