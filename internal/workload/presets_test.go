package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestPresetNamesListsEmbedded(t *testing.T) {
	names := PresetNames()
	want := map[string]bool{"iran2022": false, "default-diurnal": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("preset %q missing from %v", n, names)
		}
	}
}

// TestPresetsValid keeps every embedded preset honest: each must pass
// the strict parser and assemble into a runnable scenario.
func TestPresetsValid(t *testing.T) {
	for _, name := range PresetNames() {
		sf, err := PresetFile(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if sf.Name != name {
			t.Errorf("%s: name field %q does not match file name", name, sf.Name)
		}
		if sf.Total <= 0 || sf.Hours <= 0 {
			t.Errorf("%s: preset needs positive total/hours defaults", name)
		}
		if _, err := sf.Assemble(); err != nil {
			t.Errorf("%s: assemble: %v", name, err)
		}
	}
}

// TestPresetRoundTrip re-encodes each parsed preset and checks the
// reparsed copy expands to the identical spec stream: the JSON codec
// loses nothing the generator depends on.
func TestPresetRoundTrip(t *testing.T) {
	for _, name := range PresetNames() {
		sf, err := PresetFile(name)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := json.Marshal(sf)
		if err != nil {
			t.Fatal(err)
		}
		sf2, err := ParseScenarioFile(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: reparse of round-tripped preset: %v", name, err)
		}
		sf.Total, sf2.Total = 1500, 1500
		sf.Hours, sf2.Hours = 48, 48
		a, err := sf.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		b, err := sf2.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		sa, sb := a.Specs(), b.Specs()
		if len(sa) != len(sb) {
			t.Fatalf("%s: round-trip spec counts differ: %d vs %d", name, len(sa), len(sb))
		}
		domName := func(sp *ConnSpec) string {
			if sp.Domain == nil {
				return ""
			}
			return sp.Domain.Name
		}
		for i := range sa {
			if sa[i].Seed != sb[i].Seed || sa[i].Start != sb[i].Start ||
				sa[i].Style != sb[i].Style || sa[i].Country.Code != sb[i].Country.Code ||
				domName(&sa[i]) != domName(&sb[i]) {
				t.Fatalf("%s: spec %d differs after JSON round trip", name, i)
			}
		}
	}
}

// TestPresetSpecsDeterministic pins the styleMix ordering fix: a
// JSON-loaded scenario's expansion must not depend on Go map iteration
// order, so two loads in the same process expand identically.
func TestPresetSpecsDeterministic(t *testing.T) {
	load := func() []ConnSpec {
		s, err := PresetScenario("iran2022", 2000, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s.Specs()
	}
	a, b := load(), load()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Style != b[i].Style || a[i].Seed != b[i].Seed || a[i].Start != b[i].Start {
			t.Fatalf("spec %d differs between identical preset loads", i)
		}
	}
}

func TestPresetOverrides(t *testing.T) {
	s, err := PresetScenario("iran2022", 777, 48, 99)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 777 || s.Hours != 48 || s.Seed != 99 {
		t.Errorf("overrides not applied: total=%d hours=%d seed=%d", s.Total, s.Hours, s.Seed)
	}
	// Zero total/hours keep the preset defaults.
	s, err = PresetScenario("iran2022", 0, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 50000 || s.Hours != 408 {
		t.Errorf("defaults not kept: total=%d hours=%d", s.Total, s.Hours)
	}
}

func TestPresetUnknownName(t *testing.T) {
	_, err := PresetScenario("nope", 10, 0, 1)
	if err == nil || !strings.Contains(err.Error(), "iran2022") {
		t.Errorf("want unknown-preset error listing names, got %v", err)
	}
}

// TestScenarioFileRejections exercises the range validation added with
// the phase tables: a typo'd preset must fail loudly at parse time.
func TestScenarioFileRejections(t *testing.T) {
	country := func(extra string) string {
		return `{"total":10,"countries":[{"code":"AA","share":1` + extra + `}]}`
	}
	cases := map[string]string{
		"seek too high":        country(`,"blocked_seek_base":0.99`),
		"negative seek":        country(`,"blocked_seek_base":-0.1`),
		"ipv6 over 1":          country(`,"ipv6_share":1.5`),
		"night boost over 4":   country(`,"night_boost":9`),
		"weekend over 2":       country(`,"weekend_factor":3`),
		"coverage over 1":      country(`,"block_coverage":{"*":1.2}`),
		"negative style":       country(`,"styles":{"gfw":-1}`),
		"zero style mass":      country(`,"styles":{"gfw":0}`),
		"phase seek range":     country(`,"seek_phases":[{"seek":1.2}]`),
		"phase not increasing": country(`,"seek_phases":[{"until_hour":24,"seek":0.1},{"until_hour":24,"seek":0.2}]`),
		"open phase not last":  country(`,"seek_phases":[{"seek":0.1},{"until_hour":24,"seek":0.2}]`),
		"style phase unknown":  country(`,"style_phases":[{"styles":{"nope":1}}]`),
		"style phase order":    country(`,"style_phases":[{"until_hour":10,"styles":{"gfw":1}},{"until_hour":5,"styles":{"gfw":1}}]`),
		"bad weekday":          `{"total":10,"start_weekday":7,"countries":[{"code":"AA","share":1}]}`,
		"unknown country key":  country(`,"zzz":1`),
		"trailing document":    country("") + `{}`,
	}
	for name, in := range cases {
		if _, err := ParseScenarioFile(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestPhaseCurvesApplied checks the piecewise tables drive the same
// hourly hooks the hardcoded Go curves used to.
func TestPhaseCurvesApplied(t *testing.T) {
	in := `{"total":10,"hours":72,"countries":[{"code":"AA","share":1,
	  "seek_phases":[{"until_hour":24,"seek":0.1},{"seek":0.5}],
	  "style_phases":[{"until_hour":24,"styles":{"gfw":1}},{"styles":{"tspu":1}}]}]}`
	s, err := LoadScenario(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	c := &s.Countries[0]
	if c.HourlySeek == nil || c.HourlyStyles == nil {
		t.Fatal("phase hooks not installed")
	}
	if got := c.HourlySeek(0); got != 0.1 {
		t.Errorf("HourlySeek(0) = %v", got)
	}
	if got := c.HourlySeek(23); got != 0.1 {
		t.Errorf("HourlySeek(23) = %v", got)
	}
	if got := c.HourlySeek(24); got != 0.5 {
		t.Errorf("HourlySeek(24) = %v", got)
	}
	if got := c.HourlySeek(71); got != 0.5 {
		t.Errorf("HourlySeek(71) = %v", got)
	}
	early, late := c.HourlyStyles(0), c.HourlyStyles(24)
	if len(early) != 1 || early[0].Style != StyleGFW {
		t.Errorf("early styles = %v", early)
	}
	if len(late) != 1 || late[0].Style != StyleTSPU {
		t.Errorf("late styles = %v", late)
	}
}
