package workload

import (
	"io"
	"runtime"
	"testing"
	"time"
)

func TestStreamSpecsMatchesRun(t *testing.T) {
	s, err := BuildScenario("stream-test", 1500, 24, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Run(1)
	for _, workers := range []int{1, 4} {
		sr := s.Stream(workers)
		i := 0
		for {
			c, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("workers=%d: Next: %v", workers, err)
			}
			if i >= len(want) {
				t.Fatalf("workers=%d: stream yielded more than %d connections", workers, len(want))
			}
			w := want[i]
			if c.SrcIP != w.SrcIP || c.SrcPort != w.SrcPort || c.TotalPackets != w.TotalPackets ||
				len(c.Packets) != len(w.Packets) {
				t.Fatalf("workers=%d: connection %d differs from Run's output", workers, i)
			}
			i++
		}
		if i != len(want) {
			t.Errorf("workers=%d: streamed %d connections, Run produced %d", workers, i, len(want))
		}
	}
}

func TestStreamRunClose(t *testing.T) {
	s, err := BuildScenario("stream-close", 2000, 24, 13)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	sr := s.Stream(4)
	// Consume a few, then abandon.
	for i := 0; i < 5; i++ {
		if _, err := sr.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	sr.Close()
	sr.Close() // idempotent
	// After Close, Next drains to EOF rather than hanging.
	for {
		_, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next after Close: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked after Close: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

// TestStreamCloseDuringNext pins the cancelled-pipeline hand-off: a
// cancelled run returns to its caller — who Closes the source — while
// the pipeline's source goroutine may still be inside Next. Close and
// Next must be safe under that overlap (this is a -race test; the
// regression it guards was a data race on the drained flag, not a
// wrong result).
func TestStreamCloseDuringNext(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		s, err := BuildScenario("stream-overlap", 300, 24, uint64(21+iter))
		if err != nil {
			t.Fatal(err)
		}
		sr := s.Stream(2)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				if _, err := sr.Next(); err == io.EOF {
					return
				} else if err != nil {
					t.Errorf("Next: %v", err)
					return
				}
			}
		}()
		time.Sleep(time.Duration(iter%5) * time.Millisecond)
		sr.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Next did not drain to EOF after a concurrent Close")
		}
	}
}

// TestStreamBoundedReadAhead checks that an unconsumed stream parks
// after its bounded read-ahead instead of simulating every spec: the
// goroutine population during the stall stays at producer + worker
// pool, not one goroutine per remaining spec.
func TestStreamBoundedReadAhead(t *testing.T) {
	s, err := BuildScenario("stream-bound", 1200, 24, 17)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	workers := 2
	sr := s.Stream(workers)
	time.Sleep(300 * time.Millisecond)
	if g := runtime.NumGoroutine(); g > before+workers+2 {
		t.Errorf("stalled stream is running %d goroutines over baseline (want ≤ %d)",
			g-before, workers+2)
	}
	n := 0
	for {
		_, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("stream yielded nothing")
	}
}
