package workload

import (
	"bytes"
	"testing"

	"tamperdetect/internal/capture"
)

// captureBytes serializes a spec stream's simulated captures, the same
// way trafficgen writes them.
func captureBytes(t *testing.T, s *Scenario, specs []ConnSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range s.RunSpecs(specs, 4) {
		if c == nil {
			continue
		}
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceRoundTrip records a preset scenario's spec stream and
// replays it: every spec field must survive, and the simulated TDCAP
// bytes must be identical to the directly-generated ones.
func TestTraceRoundTrip(t *testing.T) {
	s, err := PresetScenario("iran2022", 1200, 48, 11)
	if err != nil {
		t.Fatal(err)
	}
	specs := s.Specs()
	var trace bytes.Buffer
	if err := WriteTrace(&trace, s, specs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(trace.Bytes()), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("replayed %d specs, recorded %d", len(got), len(specs))
	}
	for i := range specs {
		a, b := &specs[i], &got[i]
		if a.Seed != b.Seed || a.Start != b.Start || a.Country != b.Country ||
			a.AS != b.AS || a.V6 != b.V6 || a.HostIdx != b.HostIdx ||
			a.Domain != b.Domain || a.UseTLS != b.UseTLS || a.Behavior != b.Behavior ||
			a.Blocked != b.Blocked || a.Style != b.Style || a.Variant != b.Variant ||
			a.SYNPayload != b.SYNPayload || a.CensorActive != b.CensorActive ||
			a.KeywordTrigger != b.KeywordTrigger || a.TTLInit != b.TTLInit ||
			a.IPIDZero != b.IPIDZero {
			t.Fatalf("spec %d differs after trace round trip:\nrec: %+v\ngot: %+v", i, *a, *b)
		}
	}
	direct := captureBytes(t, s, specs)
	replayed := captureBytes(t, s, got)
	if !bytes.Equal(direct, replayed) {
		t.Error("replayed trace produced different TDCAP bytes than direct generation")
	}
}

// TestTraceRejectsMismatchedScenario: a trace must only replay against
// the scenario it was recorded from.
func TestTraceRejectsMismatchedScenario(t *testing.T) {
	s, err := PresetScenario("iran2022", 300, 24, 11)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := WriteTrace(&trace, s, s.Specs()); err != nil {
		t.Fatal(err)
	}
	otherSeed, err := PresetScenario("iran2022", 300, 24, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(bytes.NewReader(trace.Bytes()), otherSeed); err == nil {
		t.Error("trace accepted against a different seed")
	}
	otherPreset, err := PresetScenario("default-diurnal", 300, 24, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(bytes.NewReader(trace.Bytes()), otherPreset); err == nil {
		t.Error("trace accepted against a different scenario")
	}
}

// TestTraceRejectsCorruption: bit flips and truncation must fail the
// CRC, not silently alter the replay.
func TestTraceRejectsCorruption(t *testing.T) {
	s, err := PresetScenario("iran2022", 200, 24, 11)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := WriteTrace(&trace, s, s.Specs()); err != nil {
		t.Fatal(err)
	}
	data := trace.Bytes()
	flipped := append([]byte{}, data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := ReadTrace(bytes.NewReader(flipped), s); err == nil {
		t.Error("bit-flipped trace accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(data[:len(data)-9]), s); err == nil {
		t.Error("truncated trace accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace")), s); err == nil {
		t.Error("garbage accepted")
	}
}
