package workload

import (
	"fmt"

	"tamperdetect/internal/core"
	"tamperdetect/internal/faults"
)

// This file implements the robustness (false-positive) harness: run a
// tamper-free workload under benign link impairments and verify that no
// tampering signature fires. Under a benign scenario every connection's
// ground truth is NoTampering, so any Table 1 match is a false
// positive attributable to loss, reordering, duplication, corruption,
// or truncation — exactly the confusions §5.1 argues the signature
// design avoids.

// BenignScenario builds the default global scenario with every source
// of tampering and tampering-lookalike behaviour removed: no censors,
// no blocklists, and none of the §4.2 client quirks (scanners,
// Happy-Eyeballs aborts, RST-closers, abandoners) whose flag sequences
// legitimately resemble tampering. What remains is plain well-behaved
// request/response traffic, so ground truth is NoTampering for every
// connection.
func BenignScenario(name string, total, hours int, seed uint64) (*Scenario, error) {
	s, err := BuildScenario(name, total, hours, seed)
	if err != nil {
		return nil, err
	}
	s.SYNPayloadSurgeDay = -1
	for i := range s.Countries {
		c := &s.Countries[i]
		c.Styles = nil
		c.BlockCoverage = nil
		c.BlockedSeekBase = 0
		c.HourlySeek = nil
		c.HourlyStyles = nil
		c.ScannerShare = 0
		c.HEResetShare = 0
		c.HEDropShare = 0
		c.WeirdShare = 0
		c.AbandonShare = 0
		c.ResetCloseShare = 0
		c.StallShare = 0
		c.SYNPayloadShare = 0
	}
	return s, nil
}

// GradeOutcome is one impairment grade's raw classification outcome on
// a tamper-free workload: the verdict signature of every connection
// that survived capture. internal/analysis folds these into the
// false-positive matrix (TallyRobustness/RenderRobustnessMatrix); the
// split keeps workload free of analysis imports.
type GradeOutcome struct {
	// Grade is the impairment profile name ("clean", "lossy", …).
	Grade string
	// EffectiveLoss is the grade's steady-state per-traversal loss.
	EffectiveLoss float64
	// Signatures holds one classifier verdict per captured connection.
	Signatures []core.Signature
}

// RobustnessSweep runs the benign scenario once per impairment grade
// and classifies every captured connection. The scenario's specs are
// expanded once and reused, so every grade classifies the same
// population; only the link pathology differs.
func RobustnessSweep(s *Scenario, grades []string, workers int) ([]GradeOutcome, error) {
	specs := s.Specs()
	cl := core.NewClassifier(core.DefaultConfig())
	out := make([]GradeOutcome, 0, len(grades))
	for _, name := range grades {
		imp, err := faults.Grade(name)
		if err != nil {
			return nil, err
		}
		run := *s
		run.Impairments = imp
		conns := run.RunSpecs(specs, workers)
		g := GradeOutcome{Grade: name, EffectiveLoss: imp.EffectiveLoss()}
		for _, c := range conns {
			if c == nil {
				continue
			}
			g.Signatures = append(g.Signatures, cl.Classify(c).Signature)
		}
		if len(g.Signatures) == 0 {
			return nil, fmt.Errorf("workload: grade %q produced no classified connections", name)
		}
		out = append(out, g)
	}
	return out, nil
}
