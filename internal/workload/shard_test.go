package workload

// Shard-determinism gates for the parallel spec expansion: the exact
// same specs — and therefore the byte-identical TDCAP capture — must
// come out at every worker count.

import (
	"bytes"
	"crypto/sha256"
	"reflect"
	"testing"

	"tamperdetect/internal/capture"
)

func shardScenario(t *testing.T, total int) *Scenario {
	t.Helper()
	s, err := BuildScenario("shard-determinism", total, 48, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSpecsShardedIdentical pins spec-level determinism across worker
// counts, including the sequential base case.
func TestSpecsShardedIdentical(t *testing.T) {
	s := shardScenario(t, 4000)
	base := s.SpecsSharded(1)
	if len(base) == 0 {
		t.Fatal("no specs generated")
	}
	for _, shards := range []int{2, 8} {
		got := s.SpecsSharded(shards)
		if !reflect.DeepEqual(got, base) {
			for i := range base {
				if !reflect.DeepEqual(got[i], base[i]) {
					t.Fatalf("shards=%d: first divergence at spec %d:\n got: %+v\nwant: %+v",
						shards, i, got[i], base[i])
				}
			}
			t.Fatalf("shards=%d: specs diverge in length: %d vs %d", shards, len(got), len(base))
		}
	}
}

// tdcapDigest simulates the scenario at the given parallelism for both
// spec expansion and simulation and hashes the encoded capture.
func tdcapDigest(t *testing.T, s *Scenario, shards int) [32]byte {
	t.Helper()
	specs := s.SpecsSharded(shards)
	conns := s.RunSpecs(specs, shards)
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range conns {
		if c == nil {
			continue
		}
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// TestShardedTDCAPDigestIdentical is the end-to-end gate: same seed ⇒
// identical capture bytes at shards 1 and 8.
func TestShardedTDCAPDigestIdentical(t *testing.T) {
	total := 3000
	if testing.Short() {
		total = 600
	}
	s := shardScenario(t, total)
	d1 := tdcapDigest(t, s, 1)
	d8 := tdcapDigest(t, s, 8)
	if d1 != d8 {
		t.Fatalf("TDCAP digest differs between shards=1 (%x) and shards=8 (%x)", d1, d8)
	}
}
