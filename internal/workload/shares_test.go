package workload

import (
	"testing"

	"tamperdetect/internal/core"
	"tamperdetect/internal/tcpsim"
)

// countrySpecs collects specs for one country from a scenario.
func countrySpecs(s *Scenario, code string) []ConnSpec {
	var out []ConnSpec
	for _, spec := range s.Specs() {
		if spec.Country.Code == code {
			out = append(out, spec)
		}
	}
	return out
}

func TestIPv6ShareApproximatesConfig(t *testing.T) {
	s := smallScenario(t, 20000, 24)
	for _, code := range []string{"CN", "IN", "TM"} {
		specs := countrySpecs(s, code)
		if len(specs) < 100 {
			continue
		}
		v6 := 0
		for _, sp := range specs {
			if sp.V6 {
				v6++
			}
		}
		var want float64
		for i := range s.Countries {
			if s.Countries[i].Code == code {
				want = s.Countries[i].IPv6Share
			}
		}
		got := float64(v6) / float64(len(specs))
		if got < want-0.08 || got > want+0.08 {
			t.Errorf("%s IPv6 share = %.3f, configured %.3f", code, got, want)
		}
	}
}

func TestForceHTTPShare(t *testing.T) {
	s := smallScenario(t, 20000, 24)
	tm := countrySpecs(s, "TM")
	if len(tm) < 20 {
		t.Skip("too few TM specs at this scale")
	}
	http := 0
	withDomain := 0
	for _, sp := range tm {
		if sp.Domain == nil {
			continue
		}
		withDomain++
		if !sp.UseTLS {
			http++
		}
	}
	if withDomain == 0 {
		t.Fatal("no TM request specs")
	}
	if share := float64(http) / float64(withDomain); share < 0.7 {
		t.Errorf("TM HTTP share = %.2f, want ≫ baseline (ForceHTTPShare 0.8)", share)
	}
}

func TestTMCensorSkipsTLS(t *testing.T) {
	s := smallScenario(t, 30000, 24)
	for _, sp := range countrySpecs(s, "TM") {
		if sp.CensorActive && sp.UseTLS && sp.Style == StyleHTTPReset {
			t.Fatalf("HTTP-only censor active on a TLS connection")
		}
	}
}

func TestSYNPayloadSurgeDay(t *testing.T) {
	s := smallScenario(t, 30000, 7*24)
	if s.SYNPayloadSurgeDay < 0 {
		t.Fatal("long scenario has no surge day")
	}
	surge, surgeTotal := 0, 0
	normal, normalTotal := 0, 0
	for _, sp := range s.Specs() {
		if sp.Domain == nil || sp.UseTLS {
			continue
		}
		day := sp.Day()
		if day == s.SYNPayloadSurgeDay {
			surgeTotal++
			if sp.SYNPayload {
				surge++
			}
		} else {
			normalTotal++
			if sp.SYNPayload {
				normal++
			}
		}
	}
	if surgeTotal == 0 || normalTotal == 0 {
		t.Fatal("insufficient HTTP specs")
	}
	sShare := float64(surge) / float64(surgeTotal)
	nShare := float64(normal) / float64(normalTotal)
	if sShare < 5*nShare {
		t.Errorf("surge day share %.3f vs normal %.3f; surge missing", sShare, nShare)
	}
}

func TestSurgeTrafficConcentratedOnHotDomains(t *testing.T) {
	s := smallScenario(t, 30000, 7*24)
	hot := map[string]bool{}
	for _, sp := range s.Specs() {
		if !sp.SYNPayload || sp.Domain == nil {
			continue
		}
		hot[sp.Domain.Name] = true
	}
	// 93% go to four domains, plus a 7% tail: the distinct-domain count
	// must be far below what uniform sampling would give.
	if len(hot) > 60 {
		t.Errorf("SYN-payload traffic spread over %d domains; want concentration", len(hot))
	}
}

func TestSimulateEvasiveBlindSpot(t *testing.T) {
	s := smallScenario(t, 6000, 12)
	cl := core.NewClassifier(core.DefaultConfig())
	checked := 0
	for _, sp := range s.Specs() {
		if checked >= 25 {
			break
		}
		if !sp.Blocked || sp.Domain == nil || sp.Behavior != tcpsim.BehaviorNormal {
			continue
		}
		sp := sp
		conn := SimulateEvasive(&sp, s.Universe)
		if conn == nil {
			t.Fatal("no capture from evasive simulation")
		}
		r := cl.Classify(conn)
		if r.Signature.IsTampering() || r.PossiblyTampered {
			t.Errorf("evasive censorship detected: %v", r.Signature)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no blocked specs found")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := smallScenario(t, 800, 6).Run(4)
	b := smallScenario(t, 800, 6).Run(2)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SrcIP != b[i].SrcIP || a[i].TotalPackets != b[i].TotalPackets ||
			len(a[i].Packets) != len(b[i].Packets) {
			t.Fatalf("connection %d differs across runs with different parallelism", i)
		}
		for j := range a[i].Packets {
			if a[i].Packets[j].Seq != b[i].Packets[j].Seq || a[i].Packets[j].Flags != b[i].Packets[j].Flags {
				t.Fatalf("connection %d packet %d differs", i, j)
			}
		}
	}
}

func TestRepeatClientsShareAddresses(t *testing.T) {
	s := smallScenario(t, 20000, 24)
	specs := s.Specs()
	seen := map[string]int{}
	for i := range specs {
		if specs[i].HostIdx < 0 {
			continue
		}
		conn := SimulateConn(&specs[i], s.Universe, s.CaptureConfig, s.Impairments)
		if conn == nil {
			continue
		}
		seen[conn.SrcIP.String()]++
		if len(seen) > 400 {
			break
		}
	}
	repeats := 0
	for _, n := range seen {
		if n > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Error("no repeat client addresses observed")
	}
}

func TestGroundTruthValidation(t *testing.T) {
	s := smallScenario(t, 8000, 24)
	g := ValidateGroundTruth(s, 0, 0)
	if g.Censored < 300 {
		t.Fatalf("only %d censored connections", g.Censored)
	}
	// Every censor style the generator deploys must be detected with
	// high recall — the classifier's core promise.
	if r := g.Recall(); r < 0.9 {
		t.Errorf("overall recall = %.3f, want ≥0.9", r)
	}
	for st, sr := range g.PerStyle {
		if sr.Total >= 20 && sr.Recall() < 0.8 {
			t.Errorf("style %s recall = %.3f over %d conns", styleDisplayName(st), sr.Recall(), sr.Total)
		}
	}
	// Precision is bounded by the benign RST-close/scanner population:
	// those ARE signature matches by design. It must still be the case
	// that most false positives are the documented benign sources.
	if g.FalsePos > 0 {
		benignShare := float64(g.FalsePosBenign) / float64(g.FalsePos)
		if benignShare < 0.5 {
			t.Errorf("only %.2f of false positives from documented benign sources", benignShare)
		}
	}
	if out := RenderGroundTruth(g); len(out) < 100 {
		t.Error("render too short")
	}
}
