package workload

import (
	"fmt"

	"tamperdetect/internal/domains"
	"tamperdetect/internal/geo"
)

// This file encodes the per-country scenario table behind the global
// experiments: the ~46 countries on the x-axis of Figure 4 plus their
// censorship character as the paper reports or cites it. Parameters
// are calibrated to the paper's qualitative shape (who tampers most,
// with which signatures, on which categories) — see EXPERIMENTS.md for
// the paper-vs-measured comparison.

// defaultProfile is the generic request category mix.
func defaultProfile() domains.CategoryProfile {
	var p domains.CategoryProfile
	p[domains.ContentServers] = 0.18
	p[domains.Technology] = 0.14
	p[domains.Business] = 0.12
	p[domains.Advertisements] = 0.10
	p[domains.AdultThemes] = 0.08
	p[domains.HobbiesInterests] = 0.08
	p[domains.News] = 0.07
	p[domains.SocialNetworks] = 0.07
	p[domains.Chat] = 0.05
	p[domains.Education] = 0.04
	p[domains.Gaming] = 0.04
	p[domains.LoginScreens] = 0.03
	p.Normalize()
	return p
}

// cov builds a BlockCoverage map with a small default floor so every
// category can occasionally be blocked (as Table 2 shows for DE/GB/US).
func cov(floor float64, overrides map[domains.Category]float64) map[domains.Category]float64 {
	m := make(map[domains.Category]float64, int(domains.NumCategories))
	for _, c := range domains.AllCategories() {
		m[c] = floor
	}
	for c, v := range overrides {
		m[c] = v
	}
	return m
}

// quirks applies the global client-quirk defaults (§4.2 rates are
// small) onto a config.
func quirks(c CountryConfig) CountryConfig {
	if c.ScannerShare == 0 {
		// Scanners cause ≈1% of ⟨SYN → RST⟩ matches (§4.2).
		c.ScannerShare = 0.0008
	}
	if c.HEResetShare == 0 {
		c.HEResetShare = 0.002
	}
	if c.HEDropShare == 0 {
		// Abandoned SYNs (Happy Eyeballs losers, flaky mobile clients,
		// SYN-flood residue past the DDoS scrubbers) are the largest
		// benign contributor to the Post-SYN stage (§4.1: 43.2%).
		c.HEDropShare = 0.095
	}
	if c.StallShare == 0 {
		c.StallShare = 0.02
	}
	if c.AbandonShare == 0 {
		// Idle-without-FIN clients are the uncovered ~31% of the
		// Post-Data stage (§4.1).
		c.AbandonShare = 0.028
	}
	if c.ResetCloseShare == 0 {
		// RST-instead-of-FIN closers are the matched ~69% of the
		// Post-Data stage, appearing from every country (§4.1).
		c.ResetCloseShare = 0.048
	}
	if c.WeirdShare == 0 {
		c.WeirdShare = 0.007
	}
	if c.SYNPayloadShare == 0 {
		c.SYNPayloadShare = 0.02
	}
	if c.WeekendFactor == 0 {
		c.WeekendFactor = 0.75
	}
	if c.HTTPLeniency == 0 && !c.HTTPOnlyCensor {
		c.HTTPLeniency = 0.72
	}
	if c.NightBoost == 0 {
		c.NightBoost = 0.5
	}
	if c.IPv6Share == 0 {
		c.IPv6Share = 0.25
	}
	if c.ASCount == 0 {
		c.ASCount = 6
	}
	if c.ASSkew == 0 {
		c.ASSkew = 0.4
	}
	if c.Profile == (domains.CategoryProfile{}) {
		c.Profile = defaultProfile()
	}
	return c
}

// genericCensored builds a mid-table censored country.
func genericCensored(code string, share, seek float64, tz int, styles []WeightedStyle) CountryConfig {
	return quirks(CountryConfig{
		Code: code, Share: share, TZOffset: tz,
		BlockedSeekBase: seek,
		BlockCoverage: cov(0.004, map[domains.Category]float64{
			domains.AdultThemes:    0.25,
			domains.News:           0.12,
			domains.SocialNetworks: 0.10,
			domains.Chat:           0.08,
		}),
		Styles: styles,
	})
}

// DefaultCountries returns the full country table of the global
// scenario (Figure 4's x-axis).
func DefaultCountries() []CountryConfig {
	var cs []CountryConfig
	add := func(c CountryConfig) { cs = append(cs, quirks(c)) }

	// Turkmenistan: blanket HTTP blocking, one state ISP, TLS-blind
	// (⟨SYN;ACK → RST⟩ dominant; Figure 7b outlier).
	add(CountryConfig{
		Code: "TM", Share: 0.004, TZOffset: 5, ASCount: 2, ASSkew: 2.5,
		BlockedSeekBase: 0.72, ForceHTTPShare: 0.80, HTTPOnlyCensor: true,
		IPv6Share: 0.02,
		BlockCoverage: cov(0.35, map[domains.Category]float64{
			domains.AdultThemes: 0.9, domains.News: 0.85, domains.SocialNetworks: 0.9,
			domains.Chat: 0.8, domains.ContentServers: 0.6,
		}),
		Styles: []WeightedStyle{{StyleHTTPReset, 0.85}, {StyleIPBlackhole, 0.15}},
	})
	// Peru: advertising/ISP-level blocking, AS-heterogeneous.
	add(CountryConfig{
		Code: "PE", Share: 0.012, TZOffset: -5, ASCount: 8, Decentralized: true, MinASIntensity: 0.45,
		BlockedSeekBase: 0.50,
		Profile: func() domains.CategoryProfile {
			p := defaultProfile()
			p[domains.Advertisements] = 0.30
			p.Normalize()
			return p
		}(),
		BlockCoverage: cov(0.02, map[domains.Category]float64{
			domains.Advertisements: 0.62, domains.Business: 0.06, domains.Technology: 0.085,
		}),
		Styles: []WeightedStyle{{StyleIPBlackhole, 0.45}, {StyleEnterpriseRSTACK, 0.3}, {StyleIPResetRST, 0.25}},
	})
	// Uzbekistan: drop + single RST+ACK after handshake.
	add(genericCensored("UZ", 0.005, 0.45, 5,
		[]WeightedStyle{{StyleDropRSTACK, 0.75}, {StyleIranDPI, 0.25}}))
	// Cuba: IP blackholes plus handshake drops.
	add(genericCensored("CU", 0.003, 0.42, -5,
		[]WeightedStyle{{StyleIPBlackhole, 0.5}, {StyleIranDPI, 0.35}, {StyleIPResetRSTACK, 0.15}}))
	// Saudi Arabia: content resets after the first data packet.
	add(genericCensored("SA", 0.012, 0.40, 3,
		[]WeightedStyle{{StylePSHSingleRST, 0.45}, {StylePSHSingleRSTACK, 0.35}, {StyleIranDPI, 0.2}}))
	// Kazakhstan: RST+ACK after handshake; known IP-ID-copying MitM.
	add(genericCensored("KZ", 0.005, 0.37, 6,
		[]WeightedStyle{{StyleDropRSTACK, 0.6}, {StyleIPIDCopy, 0.25}, {StyleIPBlackhole, 0.15}}))
	// Russia: decentralized TSPU, many ASes, very mixed signatures.
	add(CountryConfig{
		Code: "RU", Share: 0.035, TZOffset: 3, ASCount: 16, ASSkew: 0.25,
		Decentralized: true, MinASIntensity: 0.3,
		BlockedSeekBase: 0.35,
		Profile: func() domains.CategoryProfile {
			p := defaultProfile()
			p[domains.HobbiesInterests] = 0.2
			p.Normalize()
			return p
		}(),
		BlockCoverage: cov(0.01, map[domains.Category]float64{
			domains.HobbiesInterests: 0.28, domains.News: 0.2, domains.SocialNetworks: 0.18,
			domains.Business: 0.03, domains.Advertisements: 0.074,
		}),
		Styles: []WeightedStyle{{StyleTSPU, 0.9}, {StyleIPBlackhole, 0.1}},
	})
	// Pakistan: decentralized mixed dropping/resets.
	add(CountryConfig{
		Code: "PK", Share: 0.012, TZOffset: 5, ASCount: 9, Decentralized: true, MinASIntensity: 0.35,
		BlockedSeekBase: 0.33,
		BlockCoverage: cov(0.008, map[domains.Category]float64{
			domains.AdultThemes: 0.5, domains.News: 0.15, domains.SocialNetworks: 0.2,
		}),
		Styles: []WeightedStyle{{StyleIranDPI, 0.4}, {StyleIPBlackhole, 0.3}, {StylePSHSingleRST, 0.3}},
	})
	add(genericCensored("NI", 0.002, 0.31, -6,
		[]WeightedStyle{{StyleIPBlackhole, 0.6}, {StylePSHBlackhole, 0.4}}))
	// Ukraine: commercial firewall RST+ACK after data (§5.1).
	add(CountryConfig{
		Code: "UA", Share: 0.008, TZOffset: 2, ASCount: 10, Decentralized: true, MinASIntensity: 0.25,
		BlockedSeekBase: 0.29,
		BlockCoverage: cov(0.015, map[domains.Category]float64{
			domains.SocialNetworks: 0.3, domains.News: 0.2, domains.Business: 0.05,
		}),
		Styles: []WeightedStyle{{StyleEnterpriseRSTACK, 0.65}, {StyleTSPU, 0.35}},
	})
	add(genericCensored("BD", 0.006, 0.28, 6,
		[]WeightedStyle{{StyleIranDPI, 0.5}, {StylePSHSingleRST, 0.5}}))
	// Mexico: decentralized, not previously well studied.
	add(CountryConfig{
		Code: "MX", Share: 0.018, TZOffset: -6, ASCount: 10, Decentralized: true, MinASIntensity: 0.2,
		BlockedSeekBase: 0.27,
		Profile: func() domains.CategoryProfile {
			p := defaultProfile()
			p[domains.Advertisements] = 0.22
			p.Normalize()
			return p
		}(),
		BlockCoverage: cov(0.01, map[domains.Category]float64{
			domains.Advertisements: 0.126, domains.Technology: 0.034, domains.Business: 0.029,
		}),
		Styles: []WeightedStyle{{StyleEnterpriseRST, 0.4}, {StyleIPBlackhole, 0.3}, {StylePSHSingleRSTACK, 0.3}},
	})
	// Iran: ClientHello drops, strong night pattern, protest-reactive.
	add(CountryConfig{
		Code: "IR", Share: 0.015, TZOffset: 4, ASCount: 6, ASSkew: 0.9,
		BlockedSeekBase: 0.26, NightBoost: 1.3, WeekendFactor: 0.55,
		Profile: func() domains.CategoryProfile {
			p := defaultProfile()
			p[domains.ContentServers] = 0.28
			p[domains.Technology] = 0.22
			p.Normalize()
			return p
		}(),
		BlockCoverage: cov(0.012, map[domains.Category]float64{
			domains.ContentServers: 0.30, domains.Technology: 0.022, domains.Business: 0.014,
			domains.SocialNetworks: 0.5, domains.News: 0.4,
		}),
		Styles: []WeightedStyle{{StyleIranDPI, 0.85}, {StyleIPBlackhole, 0.15}},
	})
	add(genericCensored("OM", 0.002, 0.24, 4,
		[]WeightedStyle{{StylePSHSingleRSTACK, 0.6}, {StyleIranDPI, 0.4}}))
	add(genericCensored("DJ", 0.001, 0.23, 3,
		[]WeightedStyle{{StyleIPBlackhole, 0.7}, {StylePSHSingleRST, 0.3}}))
	add(genericCensored("AZ", 0.002, 0.22, 4,
		[]WeightedStyle{{StyleTSPU, 0.7}, {StyleIPResetRST, 0.3}}))
	add(genericCensored("AE", 0.006, 0.21, 4,
		[]WeightedStyle{{StylePSHSingleRSTACK, 0.5}, {StyleIranDPI, 0.5}}))
	add(genericCensored("SD", 0.002, 0.20, 2,
		[]WeightedStyle{{StyleIPBlackhole, 0.6}, {StyleIranDPI, 0.4}}))
	// China: the GFW. TLS more tampered than HTTP (Figure 7b).
	add(CountryConfig{
		Code: "CN", Share: 0.10, TZOffset: 8, ASCount: 9, ASSkew: 0.5,
		BlockedSeekBase: 0.17, NightBoost: 0.6,
		IPv6Share: 0.35,
		Profile: func() domains.CategoryProfile {
			p := defaultProfile()
			p[domains.AdultThemes] = 0.14
			p[domains.Education] = 0.07
			p.Normalize()
			return p
		}(),
		BlockCoverage: cov(0.008, map[domains.Category]float64{
			domains.AdultThemes: 0.51, domains.ContentServers: 0.031, domains.Education: 0.213,
			domains.SocialNetworks: 0.35, domains.News: 0.3,
		}),
		Styles: []WeightedStyle{{StyleGFW, 0.8}, {StyleGFWIPBlock, 0.12}, {StylePSHBlackhole, 0.08}},
	})
	add(genericCensored("BY", 0.003, 0.18, 3,
		[]WeightedStyle{{StyleTSPU, 0.8}, {StyleIPBlackhole, 0.2}}))
	add(genericCensored("RW", 0.001, 0.17, 2,
		[]WeightedStyle{{StyleIranDPI, 0.6}, {StyleIPResetRST, 0.4}}))
	add(genericCensored("EG", 0.008, 0.16, 2,
		[]WeightedStyle{{StylePSHBlackhole, 0.5}, {StyleIranDPI, 0.5}}))
	add(genericCensored("YE", 0.001, 0.155, 3,
		[]WeightedStyle{{StyleIPBlackhole, 0.5}, {StyleIranDPI, 0.5}}))
	add(genericCensored("AF", 0.001, 0.15, 4,
		[]WeightedStyle{{StyleIPBlackhole, 0.6}, {StylePSHSingleRST, 0.4}}))
	add(genericCensored("LA", 0.001, 0.145, 7,
		[]WeightedStyle{{StylePSHSingleRST, 0.6}, {StyleIPBlackhole, 0.4}}))
	add(genericCensored("MM", 0.002, 0.14, 6,
		[]WeightedStyle{{StyleIPBlackhole, 0.5}, {StyleIranDPI, 0.5}}))
	add(genericCensored("IQ", 0.003, 0.135, 3,
		[]WeightedStyle{{StyleIranDPI, 0.5}, {StylePSHSingleRSTACK, 0.5}}))
	add(genericCensored("KW", 0.002, 0.13, 3,
		[]WeightedStyle{{StylePSHSingleRSTACK, 0.6}, {StyleIranDPI, 0.4}}))
	add(genericCensored("TR", 0.015, 0.115, 3,
		[]WeightedStyle{{StyleTSPU, 0.6}, {StylePSHSingleRST, 0.4}}))
	add(genericCensored("BH", 0.001, 0.11, 3,
		[]WeightedStyle{{StylePSHSingleRSTACK, 0.6}, {StyleIranDPI, 0.4}}))
	add(genericCensored("ET", 0.001, 0.105, 3,
		[]WeightedStyle{{StyleIPBlackhole, 0.6}, {StyleIranDPI, 0.4}}))
	// India: Adult-heavy blocking via ISP resets and drops.
	add(CountryConfig{
		Code: "IN", Share: 0.08, TZOffset: 5, ASCount: 12, Decentralized: true, MinASIntensity: 0.4,
		BlockedSeekBase: 0.10, IPv6Share: 0.45,
		Profile: func() domains.CategoryProfile {
			p := defaultProfile()
			p[domains.AdultThemes] = 0.2
			p[domains.Chat] = 0.09
			p.Normalize()
			return p
		}(),
		BlockCoverage: cov(0.006, map[domains.Category]float64{
			domains.AdultThemes: 0.183, domains.Chat: 0.034, domains.ContentServers: 0.024,
		}),
		Styles: []WeightedStyle{{StylePSHSingleRST, 0.45}, {StylePSHBlackhole, 0.3}, {StyleIranDPI, 0.25}},
	})
	add(genericCensored("HN", 0.001, 0.095, -6,
		[]WeightedStyle{{StyleIPBlackhole, 0.6}, {StyleEnterpriseRST, 0.4}}))
	add(genericCensored("ER", 0.0005, 0.09, 3,
		[]WeightedStyle{{StyleIPBlackhole, 0.7}, {StyleIranDPI, 0.3}}))
	add(genericCensored("PS", 0.001, 0.085, 2,
		[]WeightedStyle{{StyleIranDPI, 0.5}, {StylePSHSingleRST, 0.5}}))
	add(genericCensored("MY", 0.006, 0.08, 8,
		[]WeightedStyle{{StyleIranDPI, 0.5}, {StylePSHSingleRSTACK, 0.5}}))
	add(genericCensored("TH", 0.007, 0.075, 7,
		[]WeightedStyle{{StylePSHSingleRST, 0.5}, {StyleIranDPI, 0.5}}))
	// South Korea: ack-guessing injectors with randomized TTLs.
	add(CountryConfig{
		Code: "KR", Share: 0.022, TZOffset: 9, ASCount: 5, ASSkew: 1.2,
		BlockedSeekBase: 0.07, IPv6Share: 0.2,
		Profile: func() domains.CategoryProfile {
			p := defaultProfile()
			p[domains.AdultThemes] = 0.18
			p[domains.Gaming] = 0.1
			p.Normalize()
			return p
		}(),
		BlockCoverage: cov(0.004, map[domains.Category]float64{
			domains.AdultThemes: 0.376, domains.Gaming: 0.015, domains.LoginScreens: 0.305,
		}),
		Styles: []WeightedStyle{{StyleAckGuessRandomTTL, 0.75}, {StylePSHDoubleRST, 0.25}},
	})
	add(genericCensored("VN", 0.009, 0.065, 7,
		[]WeightedStyle{{StyleIranDPI, 0.5}, {StyleIPBlackhole, 0.5}}))
	add(genericCensored("VE", 0.003, 0.06, -4,
		[]WeightedStyle{{StyleTSPU, 0.6}, {StyleIPBlackhole, 0.4}}))
	add(genericCensored("SY", 0.001, 0.05, 3,
		[]WeightedStyle{{StyleIranDPI, 0.6}, {StyleIPBlackhole, 0.4}}))
	// Sri Lanka: post-handshake drops, much heavier on IPv4 than IPv6
	// (Figure 7a: >40% v4 vs <25% v6).
	lk := genericCensored("LK", 0.007, 0.35, 5,
		[]WeightedStyle{{StyleIranDPI, 0.7}, {StyleDropRSTACK, 0.3}})
	lk.IPv6Share = 0.3
	lk.V6SeekFactor = 0.3
	add(lk)
	// Kenya: the Figure 7a counterexample — IPv6 tampering roughly
	// double the IPv4 rate.
	ke := genericCensored("KE", 0.007, 0.12, 3,
		[]WeightedStyle{{StylePSHSingleRST, 0.6}, {StyleIPBlackhole, 0.4}})
	ke.IPv6Share = 0.35
	ke.V6SeekFactor = 2.4
	add(ke)
	// Lightly-tampered large economies: enterprise firewalls dominate.
	western := func(code string, share float64, tz int, seek float64) CountryConfig {
		return CountryConfig{
			Code: code, Share: share, TZOffset: tz, ASCount: 14, ASSkew: 0.15,
			Decentralized: true, MinASIntensity: 0.0,
			BlockedSeekBase: seek, IPv6Share: 0.45,
			BlockCoverage: cov(0.0012, map[domains.Category]float64{
				domains.ContentServers: 0.005, domains.Technology: 0.0032,
				domains.Business: 0.0028, domains.AdultThemes: 0.004,
			}),
			Styles: []WeightedStyle{{StyleEnterpriseRST, 0.5}, {StyleEnterpriseRSTACK, 0.5}},
		}
	}
	add(western("GB", 0.05, 0, 0.045))
	add(western("US", 0.19, -5, 0.035))
	add(western("DE", 0.05, 1, 0.03))
	// North Korea: negligible traffic.
	add(CountryConfig{
		Code: "KP", Share: 0.0002, TZOffset: 9, ASCount: 1, IPv6Share: 0.01,
		BlockedSeekBase: 0.02,
		BlockCoverage:   cov(0.002, nil),
		Styles:          []WeightedStyle{{StyleIPBlackhole, 1}},
	})
	// The rest of the world, lightly touched by enterprise firewalls.
	rest := western("FR", 0.04, 1, 0.03)
	add(rest)
	for _, r := range []struct {
		code  string
		share float64
		tz    int
	}{
		{"BR", 0.05, -3}, {"JP", 0.05, 9}, {"CA", 0.03, -5}, {"AU", 0.02, 10},
		{"NL", 0.02, 1}, {"IT", 0.025, 1}, {"ES", 0.025, 1}, {"PL", 0.015, 1},
		{"ID", 0.03, 7}, {"NG", 0.012, 1}, {"ZA", 0.012, 2}, {"AR", 0.015, -3},
	} {
		w := western(r.code, r.share, r.tz, 0.02)
		add(w)
	}
	return cs
}

// BuildScenario assembles the default global scenario: the country
// table, a generated domain universe, and a geo address plan.
func BuildScenario(name string, total, hours int, seed uint64) (*Scenario, error) {
	countries := DefaultCountries()
	return AssembleScenario(name, total, hours, seed, countries)
}

// AssembleScenario builds a scenario from an explicit country table.
func AssembleScenario(name string, total, hours int, seed uint64, countries []CountryConfig) (*Scenario, error) {
	var specs []geo.CountrySpec
	for _, c := range countries {
		asCount := c.ASCount
		if asCount == 0 {
			asCount = 6
		}
		specs = append(specs, geo.CountrySpec{Code: c.Code, ASCount: asCount, Skew: c.ASSkew})
	}
	db, err := geo.Build(specs, seed^0x9e0)
	if err != nil {
		return nil, fmt.Errorf("workload: building geo plan: %w", err)
	}
	ucfg := domains.DefaultConfig()
	ucfg.Seed = seed ^ 0xd0
	s := &Scenario{
		Name:               name,
		Seed:               seed,
		Hours:              hours,
		Total:              total,
		Countries:          countries,
		Universe:           domains.Generate(ucfg),
		Geo:                db,
		SYNPayloadSurgeDay: -1,
	}
	if hours >= 6*24 {
		// Long scenarios include one §4.1-style SYN-payload surge day.
		s.SYNPayloadSurgeDay = 5
	}
	return s, nil
}
