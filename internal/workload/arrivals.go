package workload

// Virtual-time arrival scheduling. A scenario's connections used to be
// stamped with an ad-hoc per-hour StartSec; now they are *arrival
// events* on a shared internal/simtime engine. Each (country, hour)
// bucket is an arrival source: its connection count comes from the
// same largest-remainder intensity allocation as before (share ×
// diurnal volume curve — the nonhomogeneous Poisson intensity), and
// its arrival instants are the order statistics of that intensity
// within the hour, i.e. a nonhomogeneous Poisson process conditioned
// on the bucket's count. The engine merges every source into one
// globally time-ordered spec stream, so the TDCAP a generator writes
// is ordered by virtual arrival time and its 1-second capture
// timestamps fall out of the clock naturally.
//
// Determinism contract (pinned by TestSpecsShardedIdentical and the
// trafficgen determinism gate): bucket boundaries, per-bucket spec
// content, and per-bucket arrival instants each come from their own
// position-derived RNG stream, and the merge is a single-threaded
// discrete-event run — so the result is byte-identical at every
// worker count and across runs.

import (
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"time"

	"tamperdetect/internal/simtime"
)

// arrivalBucket is one (country, hour) cell of the scenario expansion.
type arrivalBucket struct {
	country int
	hour    int
	start   int // first spec index of the bucket (bucket-major order)
	n       int // connection count of the bucket
}

// arrivalBuckets allocates the scenario's Total connections over
// (country, hour) cells by largest remainder on the intensity weights
// share × volumeFactor(local hour). It runs sequentially so bucket
// boundaries never depend on the worker count. The returned total is
// the sum of bucket counts (≤ Total by at most rounding).
func (s *Scenario) arrivalBuckets() ([]arrivalBucket, int) {
	var buckets []arrivalBucket
	var weights []float64
	totalW := 0.0
	for ci := range s.Countries {
		c := &s.Countries[ci]
		for h := 0; h < s.Hours; h++ {
			w := c.Share * volumeFactor(localHour(c, h))
			buckets = append(buckets, arrivalBucket{country: ci, hour: h})
			weights = append(weights, w)
			totalW += w
		}
	}
	carry := 0.0
	idx := 0
	for bi := range buckets {
		exact := float64(s.Total) * weights[bi] / totalW
		n := int(exact + carry)
		carry += exact - float64(n)
		buckets[bi].start = idx
		buckets[bi].n = n
		idx += n
	}
	return buckets, idx
}

// bucketSeed derives the RNG seed of one bucket's stream; kind
// decorrelates the spec-content stream from the arrival-time stream.
func (s *Scenario) bucketSeed(bi int, kind uint64) uint64 {
	return s.Seed ^ (uint64(bi)*0x9e3779b97f4a7c15 + kind)
}

// bucketArrivals draws one bucket's arrival instants: n points of a
// Poisson process over the bucket's hour, conditioned on the count —
// the order statistics of n uniforms under the hour's (constant)
// intensity. Instants carry full nanosecond resolution; the capture
// pipeline later quantizes to the paper's 1-second granularity.
func (s *Scenario) bucketArrivals(bi int, b *arrivalBucket) []simtime.Time {
	seed := s.bucketSeed(bi, 0xa1217e5)
	rng := rand.New(rand.NewPCG(seed, seed^0x7153))
	hourStart := simtime.Time(b.hour) * simtime.Time(time.Hour)
	offs := make([]simtime.Time, b.n)
	for k := range offs {
		offs[k] = hourStart + simtime.Time(rng.Int64N(int64(time.Hour)))
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}

// mergeArrivals runs the shared discrete-event engine over every
// bucket's arrival source and returns the globally time-ordered spec
// stream. Each source schedules its next arrival when the current one
// fires, so the engine's queue holds one live event per bucket and the
// merge costs O(N log B). Spec Seeds keep their bucket-major
// derivation (they never depend on merge order); Index and Start are
// assigned at fire time, in arrival order, from the engine clock.
func (s *Scenario) mergeArrivals(buckets []arrivalBucket, built [][]ConnSpec, offs [][]simtime.Time) []ConnSpec {
	total := 0
	for bi := range buckets {
		total += buckets[bi].n
	}
	out := make([]ConnSpec, 0, total)
	eng := simtime.New(0)
	var schedule func(bi, k int)
	schedule = func(bi, k int) {
		eng.ScheduleAt(offs[bi][k], func() {
			sp := built[bi][k]
			sp.Start = eng.Now()
			sp.Index = len(out)
			out = append(out, sp)
			if k+1 < len(offs[bi]) {
				schedule(bi, k+1)
			}
		})
	}
	for bi := range buckets {
		if buckets[bi].n > 0 {
			schedule(bi, 0)
		}
	}
	eng.Run(0)
	return out
}

// Specs deterministically expands the scenario into per-connection
// specs in global virtual-time order: connection arrivals are
// scheduled events on a shared simtime engine, drawn from the
// intensity-driven per-(country, hour) arrival processes. Specs uses
// GOMAXPROCS workers for spec content; SpecsSharded selects the count.
func (s *Scenario) Specs() []ConnSpec { return s.SpecsSharded(0) }

// SpecsSharded is Specs with an explicit worker count (0 = GOMAXPROCS).
// The output is byte-identical for every worker count: shard
// boundaries, per-bucket RNG streams, and the single-threaded event
// merge depend only on the scenario.
func (s *Scenario) SpecsSharded(workers int) []ConnSpec {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	buckets, _ := s.arrivalBuckets()
	built := make([][]ConnSpec, len(buckets))
	offs := make([][]simtime.Time, len(buckets))
	if workers > len(buckets) {
		workers = len(buckets)
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(buckets))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range ch {
				b := &buckets[bi]
				c := &s.Countries[b.country]
				// Each bucket owns independent, position-derived RNG
				// streams — one for spec content, one for arrival
				// instants — so its output is the same no matter which
				// worker builds it or in what order.
				seed := s.bucketSeed(bi, 0xb0c4e75)
				rng := rand.New(rand.NewPCG(seed, seed^0x5eed))
				specs := make([]ConnSpec, b.n)
				for k := 0; k < b.n; k++ {
					specs[k] = s.buildSpec(b.start+k, c, b.hour, rng)
				}
				built[bi] = specs
				offs[bi] = s.bucketArrivals(bi, b)
			}
		}()
	}
	for bi := range buckets {
		ch <- bi
	}
	close(ch)
	wg.Wait()
	return s.mergeArrivals(buckets, built, offs)
}
