package workload

import (
	"testing"

	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
)

func smallScenario(t *testing.T, total, hours int) *Scenario {
	t.Helper()
	s, err := BuildScenario("test", total, hours, 11)
	if err != nil {
		t.Fatalf("BuildScenario: %v", err)
	}
	return s
}

func TestSpecsCountAndDistribution(t *testing.T) {
	s := smallScenario(t, 5000, 24)
	specs := s.Specs()
	if len(specs) < 4900 || len(specs) > 5100 {
		t.Fatalf("specs = %d, want ≈5000", len(specs))
	}
	byCountry := map[string]int{}
	for i := range specs {
		byCountry[specs[i].Country.Code]++
	}
	// US has the largest share; TM a tiny one.
	if byCountry["US"] <= byCountry["TM"] {
		t.Errorf("US=%d TM=%d; share ordering broken", byCountry["US"], byCountry["TM"])
	}
	if byCountry["CN"] == 0 || byCountry["IR"] == 0 {
		t.Error("major countries missing from specs")
	}
}

func TestSpecsDeterministic(t *testing.T) {
	a := smallScenario(t, 800, 12).Specs()
	b := smallScenario(t, 800, 12).Specs()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].Country.Code != b[i].Country.Code ||
			a[i].Start != b[i].Start || a[i].Style != b[i].Style {
			t.Fatalf("spec %d differs between identical scenarios", i)
		}
	}
}

func TestIsBlockedConsistent(t *testing.T) {
	s := smallScenario(t, 10, 1)
	c := &s.Countries[0]
	d := s.Universe.All()[0]
	first := IsBlocked(c, &d)
	for i := 0; i < 10; i++ {
		if IsBlocked(c, &d) != first {
			t.Fatal("IsBlocked not consistent")
		}
	}
}

func TestBlockCoverageApproximatesConfig(t *testing.T) {
	s := smallScenario(t, 10, 1)
	var cn *CountryConfig
	for i := range s.Countries {
		if s.Countries[i].Code == "CN" {
			cn = &s.Countries[i]
		}
	}
	if cn == nil {
		t.Fatal("CN missing")
	}
	adult := s.Universe.Categories(domains.AdultThemes)
	blocked := 0
	for _, d := range adult {
		if IsBlocked(cn, d) {
			blocked++
		}
	}
	got := float64(blocked) / float64(len(adult))
	want := cn.BlockCoverage[domains.AdultThemes]
	if got < want-0.06 || got > want+0.06 {
		t.Errorf("CN adult coverage = %.3f, configured %.3f", got, want)
	}
}

func TestNightAndWeekendModulation(t *testing.T) {
	s := smallScenario(t, 10, 24*7)
	var ir *CountryConfig
	for i := range s.Countries {
		if s.Countries[i].Code == "IR" {
			ir = &s.Countries[i]
		}
	}
	// Local night (IR TZ=4): scenario hour 0 → local 4 (night) vs hour
	// 10 → local 14 (day).
	night := s.seekProbability(ir, 0)
	day := s.seekProbability(ir, 10)
	if night <= day {
		t.Errorf("night seek %.3f ≤ day %.3f", night, day)
	}
	// Weekend: StartWeekday=0 (Monday), hour 5*24+12 is Saturday noon.
	weekday := s.seekProbability(ir, 10)
	weekend := s.seekProbability(ir, 5*24+10)
	if weekend >= weekday {
		t.Errorf("weekend seek %.3f ≥ weekday %.3f", weekend, weekday)
	}
}

func TestSimulateConnTamperedAndClean(t *testing.T) {
	s := smallScenario(t, 4000, 6)
	specs := s.Specs()
	cl := core.NewClassifier(core.DefaultConfig())
	var censoredTampered, censoredTotal int
	var cleanTampered, cleanTotal int
	for i := range specs {
		if censoredTotal >= 80 && cleanTotal >= 80 {
			break
		}
		spec := &specs[i]
		if spec.Behavior != 0 { // only normal clients
			continue
		}
		if spec.CensorActive {
			if censoredTotal >= 80 {
				continue
			}
		} else if cleanTotal >= 80 {
			continue
		}
		conn := SimulateConn(spec, s.Universe, s.CaptureConfig, s.Impairments)
		if conn == nil {
			t.Fatal("sampler dropped a rate-1 connection")
		}
		r := cl.Classify(conn)
		if spec.CensorActive {
			censoredTotal++
			if r.Signature.IsTampering() {
				censoredTampered++
			}
		} else {
			cleanTotal++
			if r.Signature.IsTampering() {
				cleanTampered++
			}
		}
	}
	if censoredTotal < 30 {
		t.Fatalf("only %d censored specs found", censoredTotal)
	}
	if float64(censoredTampered) < 0.9*float64(censoredTotal) {
		t.Errorf("censored connections matched a signature %d/%d times", censoredTampered, censoredTotal)
	}
	if float64(cleanTampered) > 0.1*float64(cleanTotal) {
		t.Errorf("clean connections matched a signature %d/%d times", cleanTampered, cleanTotal)
	}
}

func TestRunParallelMatchesSpecCount(t *testing.T) {
	s := smallScenario(t, 600, 4)
	conns := s.Run(4)
	if len(conns) < 550 {
		t.Fatalf("Run returned %d connections for ≈600 specs", len(conns))
	}
}

func TestIran2022ScenarioShape(t *testing.T) {
	s, err := Iran2022Scenario(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Hours != 17*24 {
		t.Errorf("hours = %d", s.Hours)
	}
	specs := s.Specs()
	// Protest days must have a higher censored share than day 0.
	day0, day0Censored, late, lateCensored := 0, 0, 0, 0
	for i := range specs {
		day := specs[i].Day()
		switch {
		case day == 0:
			day0++
			if specs[i].CensorActive {
				day0Censored++
			}
		case day >= 10:
			late++
			if specs[i].CensorActive {
				lateCensored++
			}
		}
	}
	if day0 == 0 || late == 0 {
		t.Fatal("scenario hours not covered")
	}
	r0 := float64(day0Censored) / float64(day0)
	r1 := float64(lateCensored) / float64(late)
	if r1 <= r0 {
		t.Errorf("censored share day0=%.3f late=%.3f; protest escalation missing", r0, r1)
	}
}

func TestCountryTableSane(t *testing.T) {
	cs := DefaultCountries()
	if len(cs) < 40 {
		t.Fatalf("only %d countries", len(cs))
	}
	seen := map[string]bool{}
	total := 0.0
	for _, c := range cs {
		if seen[c.Code] {
			t.Errorf("duplicate country %s", c.Code)
		}
		seen[c.Code] = true
		total += c.Share
		if c.Share <= 0 || c.ASCount < 1 {
			t.Errorf("%s: bad share/ASCount", c.Code)
		}
		if c.BlockedSeekBase < 0 || c.BlockedSeekBase > 0.97 {
			t.Errorf("%s: seek base %f", c.Code, c.BlockedSeekBase)
		}
	}
	if total < 0.8 || total > 1.2 {
		t.Errorf("shares sum to %.3f, want ≈1", total)
	}
	for _, code := range []string{"TM", "CN", "IR", "RU", "KR", "US", "DE", "GB", "IN", "MX", "PE", "UA"} {
		if !seen[code] {
			t.Errorf("paper country %s missing", code)
		}
	}
}
