package workload

import "testing"

func TestPoPPartition(t *testing.T) {
	s, err := BuildScenario("pop-partition", 8000, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	specs := s.Specs()
	shards := PoPPartition(specs, 4)

	// Exactly-one-shard: counts add up and every index appears once.
	seen := make(map[int]int, len(specs))
	total := 0
	for pop, shard := range shards {
		total += len(shard)
		last := -1
		for _, spec := range shard {
			if _, dup := seen[spec.Index]; dup {
				t.Fatalf("spec %d in two shards", spec.Index)
			}
			seen[spec.Index] = pop
			if spec.Index <= last {
				t.Fatalf("pop %d: spec order not preserved (%d after %d)", pop, spec.Index, last)
			}
			last = spec.Index
		}
	}
	if total != len(specs) {
		t.Fatalf("shards hold %d specs, want %d", total, len(specs))
	}

	// Client affinity: every pinned (AS, HostIdx) client stays on one PoP.
	clientPop := map[[2]int64]int{}
	for pop, shard := range shards {
		for _, spec := range shard {
			if spec.HostIdx < 0 {
				continue
			}
			key := [2]int64{int64(spec.AS.ASN), int64(spec.HostIdx)}
			if prev, ok := clientPop[key]; ok && prev != pop {
				t.Fatalf("client AS%d/host%d on PoPs %d and %d", spec.AS.ASN, spec.HostIdx, prev, pop)
			}
			clientPop[key] = pop
		}
	}
	if len(clientPop) == 0 {
		t.Fatal("scenario produced no pinned repeat clients")
	}

	// Determinism and balance: same input, same partition; no empty PoP
	// at this scale.
	again := PoPPartition(specs, 4)
	for pop := range shards {
		if len(shards[pop]) == 0 {
			t.Errorf("pop %d is empty", pop)
		}
		if len(again[pop]) != len(shards[pop]) {
			t.Errorf("pop %d: repartition changed size %d -> %d", pop, len(shards[pop]), len(again[pop]))
		}
	}
}
