package workload

import "tamperdetect/internal/domains"

// Iran2022Scenario reproduces the §5.6 case study: a 17-day window
// around the September 13, 2022 protests. Blocking intensity ramps up
// sharply after the protest onset, the style mix shifts toward
// SYN-stage resets and post-handshake drops (⟨SYN → RST⟩,
// ⟨SYN;ACK → ∅⟩, ⟨SYN;ACK → RST+ACK⟩), evening hours peak, and two
// mobile ISPs carry most of the affected traffic.
//
// Hour 0 is 2022-09-12 00:00 local; the protest begins at hour 24
// (September 13) and escalates over the following days.
func Iran2022Scenario(total int, seed uint64) (*Scenario, error) {
	const days = 17
	ir := CountryConfig{
		Code: "IR", Share: 1.0, TZOffset: 0, // single-country scenario, local time
		ASCount: 6, ASSkew: 1.6, // two mobile ISPs dominate the weight
		IPv6Share:       0.1,
		BlockedSeekBase: 0.2,
		NightBoost:      0.8,
		WeekendFactor:   0.9,
		Profile: func() domains.CategoryProfile {
			p := defaultProfile()
			p[domains.SocialNetworks] = 0.22
			p[domains.Chat] = 0.14
			p[domains.News] = 0.12
			p.Normalize()
			return p
		}(),
		BlockCoverage: cov(0.005, map[domains.Category]float64{
			domains.SocialNetworks: 0.5, domains.Chat: 0.45, domains.News: 0.35,
			domains.ContentServers: 0.08, domains.Technology: 0.05,
		}),
		HourlySeek:   iranSeek,
		HourlyStyles: iranStyles,
	}
	return AssembleScenario("iran2022", total, days*24, seed, []CountryConfig{quirks(ir)})
}

// iranSeek ramps blocked-seeking from a calm baseline to protest-time
// intensity, with evening peaks layered on by NightBoost.
func iranSeek(hour int) float64 {
	day := hour / 24
	switch {
	case day < 1: // pre-protest
		return 0.12
	case day < 3: // onset
		return 0.28
	case day < 10: // escalation
		return 0.42
	default: // sustained aggressive blocking
		return 0.5
	}
}

// iranStyles shifts from ordinary SNI filtering toward the aggressive
// mix the case study observes.
func iranStyles(hour int) []WeightedStyle {
	day := hour / 24
	if day < 1 {
		return []WeightedStyle{{StyleIranDPI, 0.85}, {StyleIPBlackhole, 0.15}}
	}
	// Protest response: widespread handshake-level interference.
	return []WeightedStyle{
		{StyleIranDPI, 0.45},    // ⟨SYN;ACK → ∅⟩ / ⟨SYN;ACK → RST+ACK⟩
		{StyleIPResetRST, 0.25}, // ⟨SYN → RST⟩
		{StyleIPBlackhole, 0.2}, // ⟨SYN → ∅⟩
		{StyleDropRSTACK, 0.1},  // ⟨SYN;ACK → RST+ACK⟩
	}
}
