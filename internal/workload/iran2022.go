package workload

// Iran2022Scenario reproduces the §5.6 case study: a 17-day window
// around the September 13, 2022 protests. Blocking intensity ramps up
// sharply after the protest onset, the style mix shifts toward
// SYN-stage resets and post-handshake drops (⟨SYN → RST⟩,
// ⟨SYN;ACK → ∅⟩, ⟨SYN;ACK → RST+ACK⟩), evening hours peak, and two
// mobile ISPs carry most of the affected traffic.
//
// Hour 0 is 2022-09-12 00:00 local; the protest begins at hour 24
// (September 13) and escalates over the following days. The curves —
// the four-phase seek ramp and the pre/post-protest style mixes —
// live in presets/iran2022.json; this function is a thin wrapper over
// the preset so callers keep a typed entry point.
func Iran2022Scenario(total int, seed uint64) (*Scenario, error) {
	return PresetScenario("iran2022", total, 0, seed)
}
