package workload

// Multi-PoP sharding: the paper's detector runs at ~285 points of
// presence, each seeing only the clients that anycast routing happens
// to send it, and the global report is the merge of per-PoP
// aggregates. PoPPartition models that: it splits a scenario's specs
// into N client-affine shards — every connection from one client lands
// on one PoP, as anycast keeps a client on its nearest site — so each
// shard can be simulated, classified, and aggregated independently and
// the merged aggregate compared against the single-PoP run.

import "fmt"

// PoPPartition splits specs into pops client-affine shards. The
// assignment is a pure function of the spec's client identity (AS plus
// pinned host index, or AS plus spec index for one-shot random-host
// clients), so repeat clients — the overlap matrix's subject — stay on
// one PoP and the partition is reproducible across runs. Every spec
// appears in exactly one shard; relative order within a shard is
// preserved.
func PoPPartition(specs []ConnSpec, pops int) [][]ConnSpec {
	if pops < 1 {
		pops = 1
	}
	shards := make([][]ConnSpec, pops)
	for _, spec := range specs {
		shards[popOf(&spec, pops)] = append(shards[popOf(&spec, pops)], spec)
	}
	return shards
}

// popOf maps one spec to its PoP.
func popOf(spec *ConnSpec, pops int) int {
	var client string
	if spec.HostIdx >= 0 {
		// Pinned host: all of this client's connections share the key.
		client = fmt.Sprintf("pop|%d|%d", spec.AS.ASN, spec.HostIdx)
	} else {
		// Random host: the client exists for one connection only.
		client = fmt.Sprintf("pop|%d|idx%d", spec.AS.ASN, spec.Index)
	}
	return int(splitmixStr(client) % uint64(pops))
}
