package workload

import (
	"bytes"
	"embed"
	"fmt"
	"sort"
	"strings"
)

// Named scenario presets. Each preset is a JSON scenario file (the
// same schema LoadScenario reads) compiled into the binary, so
// `trafficgen -scenario iran2022` and `paperbench -scenario <name>`
// work without shipping files around, and the curves that used to be
// hardcoded Go functions (iranSeek/iranStyles, the compact global
// table) live in reviewable, schema-validated data.

//go:embed presets/*.json
var presetFS embed.FS

// PresetNames lists the embedded presets, sorted.
func PresetNames() []string {
	entries, err := presetFS.ReadDir("presets")
	if err != nil {
		panic("workload: embedded presets missing: " + err.Error())
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// PresetFile parses one embedded preset. Every preset must pass the
// same strict validation as user-supplied files (TestPresetsValid
// keeps them honest).
func PresetFile(name string) (*ScenarioFile, error) {
	data, err := presetFS.ReadFile("presets/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("workload: unknown preset %q (have: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	sf, err := ParseScenarioFile(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("workload: preset %q: %w", name, err)
	}
	return sf, nil
}

// PresetScenario assembles a named preset. total and hours override
// the preset's own values when positive; seed always comes from the
// caller so distinct runs of the same preset are reproducible but
// independent.
func PresetScenario(name string, total, hours int, seed uint64) (*Scenario, error) {
	sf, err := PresetFile(name)
	if err != nil {
		return nil, err
	}
	if total > 0 {
		sf.Total = total
	}
	if hours > 0 {
		sf.Hours = hours
	}
	sf.Seed = seed
	return sf.Assemble()
}
