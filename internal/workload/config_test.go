package workload

import (
	"strings"
	"testing"

	"tamperdetect/internal/domains"
)

const sampleScenarioJSON = `{
  "name": "custom",
  "seed": 9,
  "hours": 48,
  "total": 1000,
  "countries": [
    {
      "code": "AA",
      "share": 0.7,
      "tz_offset": 8,
      "blocked_seek_base": 0.3,
      "profile": {"Adult Themes": 0.5, "News": 0.5},
      "block_coverage": {"*": 0.01, "Adult Themes": 0.6},
      "styles": {"gfw": 0.8, "ip-blackhole": 0.2}
    },
    {
      "code": "BB",
      "share": 0.3,
      "http_only_censor": true,
      "force_http_share": 0.9,
      "blocked_seek_base": 0.5,
      "styles": {"http-reset": 1}
    }
  ]
}`

func TestLoadScenario(t *testing.T) {
	s, err := LoadScenario(strings.NewReader(sampleScenarioJSON))
	if err != nil {
		t.Fatalf("LoadScenario: %v", err)
	}
	if s.Name != "custom" || s.Hours != 48 || s.Total != 1000 {
		t.Errorf("scenario header = %q/%d/%d", s.Name, s.Hours, s.Total)
	}
	if len(s.Countries) != 2 {
		t.Fatalf("countries = %d", len(s.Countries))
	}
	aa := s.Countries[0]
	if aa.Code != "AA" || aa.BlockCoverage[domains.AdultThemes] != 0.6 {
		t.Errorf("AA config: %+v", aa.BlockCoverage)
	}
	if aa.BlockCoverage[domains.Technology] != 0.01 {
		t.Errorf("AA floor = %v, want 0.01", aa.BlockCoverage[domains.Technology])
	}
	if aa.Profile[domains.AdultThemes] != 0.5 {
		t.Errorf("AA profile = %v", aa.Profile[domains.AdultThemes])
	}
	if len(aa.Styles) != 2 {
		t.Errorf("AA styles = %v", aa.Styles)
	}
	bb := s.Countries[1]
	if !bb.HTTPOnlyCensor || bb.ForceHTTPShare != 0.9 {
		t.Errorf("BB config: %+v", bb)
	}
	// Defaults applied by quirks.
	if aa.ScannerShare == 0 || aa.ASCount == 0 {
		t.Error("quirk defaults not applied")
	}
	// The scenario must actually run.
	conns := s.Run(0)
	if len(conns) < 900 {
		t.Errorf("run produced %d connections", len(conns))
	}
}

func TestLoadScenarioErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"no countries":  `{"total": 10, "countries": []}`,
		"no total":      `{"countries": [{"code":"AA","share":1}]}`,
		"unknown style": `{"total":10,"countries":[{"code":"AA","share":1,"styles":{"nope":1}}]}`,
		"unknown cat":   `{"total":10,"countries":[{"code":"AA","share":1,"profile":{"Nope":1}}]}`,
		"missing code":  `{"total":10,"countries":[{"share":1}]}`,
		"zero share":    `{"total":10,"countries":[{"code":"AA"}]}`,
		"unknown field": `{"total":10,"zzz":1,"countries":[{"code":"AA","share":1}]}`,
	}
	for name, in := range cases {
		if _, err := LoadScenario(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestStyleNamesComplete(t *testing.T) {
	// Every style constant except StyleNone must be reachable by name.
	byValue := map[CensorStyle]bool{}
	for _, v := range styleNames {
		byValue[v] = true
	}
	for s := StyleGFW; s <= StylePSHSingleRSTACK; s++ {
		if !byValue[s] {
			t.Errorf("style %d has no JSON name", s)
		}
	}
}

func TestSurgeDayOverride(t *testing.T) {
	in := `{"total":10,"hours":200,"syn_payload_surge_day":-1,"countries":[{"code":"AA","share":1}]}`
	s, err := LoadScenario(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.SYNPayloadSurgeDay != -1 {
		t.Errorf("surge day = %d, want disabled", s.SYNPayloadSurgeDay)
	}
}
