package workload

// Clock-extraction parity gate: the discrete-event core moved from
// internal/netsim into internal/simtime (PR 9) with the contract that
// every per-connection simulation stays byte-identical. This test pins
// that contract to golden digests computed on the pre-refactor tree: a
// seeded corpus of hand-built specs — every censor style, the client
// quirk behaviours, v4/v6, TLS/plain, SYN payloads, keyword triggers —
// is simulated under the clean and lossy impairment grades and the
// serialized captures are hashed. The digests below were recorded
// before the extraction; any drift in the event queue, timer
// semantics, or tie-breaking shows up here as a hash mismatch.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/faults"
	"tamperdetect/internal/netsim"
	"tamperdetect/internal/tcpsim"
)

// simCorpusGolden holds the pre-refactor digests per impairment grade.
var simCorpusGolden = map[string]string{
	"clean": "f37f9f905eb87dad4b3c3f2be6a8ecd8f9af58d6ca691e6267f154f58fa74641",
	"lossy": "aac8bf1f8cc2de4d3d5b765db38353afb1faa616d5471430ec41d68409bb975a",
}

// buildGoldenCorpus hand-assembles a deterministic spec set that does
// not depend on the scenario's arrival process (whose representation
// the virtual-time refactor is allowed to change).
func buildGoldenCorpus(t *testing.T) (*Scenario, []ConnSpec) {
	t.Helper()
	s, err := BuildScenario("simgolden", 10, 24, 42)
	if err != nil {
		t.Fatal(err)
	}
	countryByCode := map[string]*CountryConfig{}
	for i := range s.Countries {
		countryByCode[s.Countries[i].Code] = &s.Countries[i]
	}
	// A blocked domain per country so censor policies actually trigger.
	blockedDomain := func(c *CountryConfig) int {
		all := s.Universe.All()
		for i := range all {
			if IsBlocked(c, &all[i]) {
				return i
			}
		}
		t.Fatalf("no blocked domain for %s", c.Code)
		return -1
	}

	var specs []ConnSpec
	add := func(code string, style CensorStyle, behavior tcpsim.Behavior, v6, tls, synPayload bool) {
		c := countryByCode[code]
		if c == nil {
			t.Fatalf("country %s missing", code)
		}
		i := len(specs)
		all := s.Universe.All()
		dom := &all[blockedDomain(c)]
		spec := ConnSpec{
			Index:    i,
			Seed:     0xdead ^ uint64(i)*0x9e3779b97f4a7c15,
			Start:    netsim.Time(int64(i)*37+3) * netsim.Time(time.Second),
			Country:  c,
			AS:       s.Geo.ASes(code)[i%len(s.Geo.ASes(code))],
			V6:       v6,
			HostIdx:  -1,
			Domain:   dom,
			UseTLS:   tls,
			Behavior: behavior,
			Blocked:  true,
			Style:    style,
			Variant:  i % 5,
			TTLInit:  64,
		}
		if i%3 == 0 {
			spec.TTLInit = 128
		}
		if i%4 == 0 {
			spec.IPIDZero = true
		}
		if i%5 == 0 {
			spec.HostIdx = i % 120
		}
		spec.SYNPayload = synPayload && !tls
		spec.CensorActive = style != StyleNone
		if style == StyleEnterpriseRST || style == StyleEnterpriseRSTACK {
			spec.KeywordTrigger = true
		}
		specs = append(specs, spec)
	}

	styles := []CensorStyle{
		StyleNone, StyleGFW, StyleGFWIPBlock, StyleIranDPI, StyleHTTPReset,
		StyleTSPU, StyleAckGuessRandomTTL, StyleAckGuessFixedTTL,
		StylePostACKMultiRST, StyleEnterpriseRST, StyleEnterpriseRSTACK,
		StyleIPBlackhole, StyleIPResetRST, StyleIPResetRSTACK, StyleIPIDCopy,
		StyleDropRSTACK, StylePSHBlackhole, StylePSHSingleRST,
		StylePSHDoubleRST, StylePSHSingleRSTACK,
	}
	codes := []string{"CN", "IR", "RU", "US"}
	for si, style := range styles {
		code := codes[si%len(codes)]
		add(code, style, tcpsim.BehaviorNormal, si%2 == 1, si%3 != 0, si%4 == 2)
	}
	behaviors := []tcpsim.Behavior{
		tcpsim.BehaviorScanner, tcpsim.BehaviorHappyEyeballsReset,
		tcpsim.BehaviorHappyEyeballsDrop, tcpsim.BehaviorStallHandshake,
		tcpsim.BehaviorRedundantACK, tcpsim.BehaviorDoubleSYN,
		tcpsim.BehaviorAbandon, tcpsim.BehaviorResetClose,
	}
	for bi, b := range behaviors {
		add(codes[bi%len(codes)], StyleNone, b, bi%2 == 0, bi%3 == 0, false)
	}
	return s, specs
}

// corpusDigest simulates the corpus under one impairment grade and
// hashes the resulting serialized captures.
func corpusDigest(t *testing.T, s *Scenario, specs []ConnSpec, grade string) string {
	t.Helper()
	imp := faults.Config{}
	if grade != "clean" {
		var err error
		imp, err = faults.Grade(grade)
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for i := range specs {
		conn := SimulateConn(&specs[i], s.Universe, s.CaptureConfig, imp)
		if conn == nil {
			// Record absence positionally so a sampler change cannot
			// silently cancel out a simulation change.
			fmt.Fprintf(&buf, "nil:%d\n", i)
			continue
		}
		if err := w.Write(conn); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

func TestSimCorpusGolden(t *testing.T) {
	s, specs := buildGoldenCorpus(t)
	if len(specs) < 25 {
		t.Fatalf("corpus too small: %d specs", len(specs))
	}
	for grade, want := range simCorpusGolden {
		got := corpusDigest(t, s, specs, grade)
		if want == "" {
			t.Errorf("golden for %q unset; computed %s", grade, got)
			continue
		}
		if got != want {
			t.Errorf("grade %s: corpus digest %s, want %s (per-connection simulation no longer byte-identical)", grade, got, want)
		}
	}
}
