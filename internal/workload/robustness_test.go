package workload

import (
	"testing"

	"tamperdetect/internal/analysis"
)

// TestLossyGradeZeroFalsePositives is the acceptance gate for the
// fault-injection layer: a ≥10k-connection tamper-free workload run
// under the "lossy" impairment grade must classify with a
// per-signature false-positive count of exactly zero — burst loss,
// retransmission, reordering, duplication, corruption, and truncation
// must never be mistaken for tampering. (-short runs a reduced
// population; scripts/check.sh runs the full gate.)
func TestLossyGradeZeroFalsePositives(t *testing.T) {
	total := 10000
	if testing.Short() {
		total = 2000
	}
	s, err := BenignScenario("robustness", total, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RobustnessSweep(s, []string{"clean", "lossy"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	grades := make([]analysis.RobustnessGrade, len(outs))
	byName := map[string]*analysis.RobustnessGrade{}
	for i, o := range outs {
		grades[i] = analysis.TallyRobustness(o.Grade, o.EffectiveLoss, o.Signatures)
		byName[grades[i].Grade] = &grades[i]
	}
	clean, lossy := byName["clean"], byName["lossy"]
	if clean == nil || lossy == nil {
		t.Fatalf("sweep missing grades: %v", byName)
	}
	for _, g := range []*analysis.RobustnessGrade{clean, lossy} {
		for sig, n := range g.FalsePositives {
			if n != 0 {
				t.Errorf("grade %s: signature %q fired on %d benign connections",
					g.Grade, sig, n)
			}
		}
	}
	// The impaired population must actually survive and classify: the
	// zero-FP result would be vacuous if loss suppressed the captures.
	if clean.Total < total*95/100 {
		t.Errorf("clean grade classified %d of %d connections", clean.Total, total)
	}
	if lossy.Total < clean.Total*95/100 {
		t.Errorf("lossy grade classified %d connections vs %d clean — too many lost captures",
			lossy.Total, clean.Total)
	}
	if t.Failed() {
		t.Logf("matrix:\n%s", analysis.RenderRobustnessMatrix(grades))
	}
}
