package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tamperdetect/internal/domains"
	"tamperdetect/internal/faults"
)

// This file loads scenario definitions from JSON so operators can
// describe custom country tables without recompiling (used by
// `trafficgen -config`). The JSON schema mirrors CountryConfig with
// string names for styles and categories.

// ScenarioFile is the JSON root.
type ScenarioFile struct {
	Name  string `json:"name"`
	Seed  uint64 `json:"seed"`
	Hours int    `json:"hours"`
	Total int    `json:"total"`
	// SYNPayloadSurgeDay < 0 disables the surge (default -1).
	SYNPayloadSurgeDay *int `json:"syn_payload_surge_day,omitempty"`
	// Impairment names a faults grade ("clean", "lossy", "hostile")
	// applied to every connection's path; empty means clean.
	Impairment string        `json:"impairment,omitempty"`
	Countries  []CountryFile `json:"countries"`
}

// CountryFile is the JSON form of CountryConfig.
type CountryFile struct {
	Code            string  `json:"code"`
	Share           float64 `json:"share"`
	ASCount         int     `json:"as_count,omitempty"`
	ASSkew          float64 `json:"as_skew,omitempty"`
	IPv6Share       float64 `json:"ipv6_share,omitempty"`
	V6SeekFactor    float64 `json:"v6_seek_factor,omitempty"`
	TZOffset        int     `json:"tz_offset,omitempty"`
	BlockedSeekBase float64 `json:"blocked_seek_base,omitempty"`
	NightBoost      float64 `json:"night_boost,omitempty"`
	WeekendFactor   float64 `json:"weekend_factor,omitempty"`
	Decentralized   bool    `json:"decentralized,omitempty"`
	MinASIntensity  float64 `json:"min_as_intensity,omitempty"`
	HTTPOnlyCensor  bool    `json:"http_only_censor,omitempty"`
	HTTPLeniency    float64 `json:"http_leniency,omitempty"`
	ForceHTTPShare  float64 `json:"force_http_share,omitempty"`
	// Profile maps category names to request-mix weights.
	Profile map[string]float64 `json:"profile,omitempty"`
	// BlockCoverage maps category names to blocklist coverage, with an
	// optional "*" key as the floor for unlisted categories.
	BlockCoverage map[string]float64 `json:"block_coverage,omitempty"`
	// Styles maps style names to weights.
	Styles map[string]float64 `json:"styles,omitempty"`
}

// styleNames maps JSON style names to CensorStyle values.
var styleNames = map[string]CensorStyle{
	"gfw":                  StyleGFW,
	"gfw-ip-block":         StyleGFWIPBlock,
	"iran-dpi":             StyleIranDPI,
	"http-reset":           StyleHTTPReset,
	"tspu":                 StyleTSPU,
	"ack-guess-random-ttl": StyleAckGuessRandomTTL,
	"ack-guess-fixed-ttl":  StyleAckGuessFixedTTL,
	"post-ack-multi-rst":   StylePostACKMultiRST,
	"enterprise-rst":       StyleEnterpriseRST,
	"enterprise-rstack":    StyleEnterpriseRSTACK,
	"ip-blackhole":         StyleIPBlackhole,
	"ip-reset-rst":         StyleIPResetRST,
	"ip-reset-rstack":      StyleIPResetRSTACK,
	"ipid-copy":            StyleIPIDCopy,
	"drop-rstack":          StyleDropRSTACK,
	"psh-blackhole":        StylePSHBlackhole,
	"psh-single-rst":       StylePSHSingleRST,
	"psh-double-rst":       StylePSHDoubleRST,
	"psh-single-rstack":    StylePSHSingleRSTACK,
}

// StyleNames returns the accepted style names, for error messages and
// documentation.
func StyleNames() []string {
	out := make([]string, 0, len(styleNames))
	for n := range styleNames {
		out = append(out, n)
	}
	return out
}

// categoryByName resolves a Table 2 category display name or slug.
func categoryByName(name string) (domains.Category, bool) {
	for _, c := range domains.AllCategories() {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

// LoadScenario reads a JSON scenario description and assembles it.
func LoadScenario(r io.Reader) (*Scenario, error) {
	var sf ScenarioFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sf); err != nil {
		return nil, fmt.Errorf("workload: parsing scenario: %w", err)
	}
	if sf.Total <= 0 {
		return nil, fmt.Errorf("workload: scenario needs total > 0")
	}
	if sf.Hours <= 0 {
		sf.Hours = 24
	}
	if len(sf.Countries) == 0 {
		return nil, fmt.Errorf("workload: scenario needs at least one country")
	}
	countries := make([]CountryConfig, 0, len(sf.Countries))
	for i, cf := range sf.Countries {
		c, err := cf.toConfig()
		if err != nil {
			return nil, fmt.Errorf("workload: country %d (%s): %w", i, cf.Code, err)
		}
		countries = append(countries, c)
	}
	s, err := AssembleScenario(sf.Name, sf.Total, sf.Hours, sf.Seed, countries)
	if err != nil {
		return nil, err
	}
	if sf.SYNPayloadSurgeDay != nil {
		s.SYNPayloadSurgeDay = *sf.SYNPayloadSurgeDay
	}
	if sf.Impairment != "" {
		imp, err := faults.Grade(sf.Impairment)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		s.Impairments = imp
	}
	return s, nil
}

// LoadScenarioFile reads a scenario from a JSON file.
func LoadScenarioFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	return LoadScenario(f)
}

// toConfig converts the JSON form to a CountryConfig with defaults.
func (cf *CountryFile) toConfig() (CountryConfig, error) {
	if cf.Code == "" {
		return CountryConfig{}, fmt.Errorf("missing code")
	}
	if cf.Share <= 0 {
		return CountryConfig{}, fmt.Errorf("share must be > 0")
	}
	c := CountryConfig{
		Code:            cf.Code,
		Share:           cf.Share,
		ASCount:         cf.ASCount,
		ASSkew:          cf.ASSkew,
		IPv6Share:       cf.IPv6Share,
		V6SeekFactor:    cf.V6SeekFactor,
		TZOffset:        cf.TZOffset,
		BlockedSeekBase: cf.BlockedSeekBase,
		NightBoost:      cf.NightBoost,
		WeekendFactor:   cf.WeekendFactor,
		Decentralized:   cf.Decentralized,
		MinASIntensity:  cf.MinASIntensity,
		HTTPOnlyCensor:  cf.HTTPOnlyCensor,
		HTTPLeniency:    cf.HTTPLeniency,
		ForceHTTPShare:  cf.ForceHTTPShare,
	}
	if len(cf.Profile) > 0 {
		var p domains.CategoryProfile
		for name, w := range cf.Profile {
			cat, ok := categoryByName(name)
			if !ok {
				return c, fmt.Errorf("unknown profile category %q", name)
			}
			p[cat] = w
		}
		p.Normalize()
		c.Profile = p
	}
	if len(cf.BlockCoverage) > 0 {
		floor := cf.BlockCoverage["*"]
		overrides := map[domains.Category]float64{}
		for name, v := range cf.BlockCoverage {
			if name == "*" {
				continue
			}
			cat, ok := categoryByName(name)
			if !ok {
				return c, fmt.Errorf("unknown coverage category %q", name)
			}
			overrides[cat] = v
		}
		c.BlockCoverage = cov(floor, overrides)
	} else {
		c.BlockCoverage = cov(0.004, nil)
	}
	for name, w := range cf.Styles {
		style, ok := styleNames[name]
		if !ok {
			return c, fmt.Errorf("unknown style %q (known: %v)", name, StyleNames())
		}
		c.Styles = append(c.Styles, WeightedStyle{Style: style, Weight: w})
	}
	return quirks(c), nil
}
