package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"tamperdetect/internal/domains"
	"tamperdetect/internal/faults"
)

// This file loads scenario definitions from JSON so operators can
// describe custom country tables without recompiling (used by
// `trafficgen -scenario`/`-config` and `paperbench -scenario`; the
// named presets under presets/ use the same schema — see presets.go).
// The JSON schema mirrors CountryConfig with string names for styles
// and categories, plus phase tables for the hourly seek/style curves
// that used to be expressible only as Go functions. Unknown fields are
// rejected, and every intensity is range-checked at load time so a
// typo'd preset fails loudly instead of skewing a 14-day run.

// ScenarioFile is the JSON root.
type ScenarioFile struct {
	Name  string `json:"name"`
	Seed  uint64 `json:"seed"`
	Hours int    `json:"hours"`
	Total int    `json:"total"`
	// StartWeekday is the weekday of hour 0 (0=Monday … 6=Sunday).
	StartWeekday int `json:"start_weekday,omitempty"`
	// SYNPayloadSurgeDay < 0 disables the surge (default -1).
	SYNPayloadSurgeDay *int `json:"syn_payload_surge_day,omitempty"`
	// Impairment names a faults grade ("clean", "lossy", "hostile")
	// applied to every connection's path; empty means clean.
	Impairment string        `json:"impairment,omitempty"`
	Countries  []CountryFile `json:"countries"`
}

// SeekPhase is one piece of a piecewise-constant blocked-seeking
// curve: Seek applies to scenario hours below UntilHour. The final
// phase of a table leaves UntilHour at 0 (open-ended).
type SeekPhase struct {
	UntilHour int     `json:"until_hour,omitempty"`
	Seek      float64 `json:"seek"`
}

// StylePhase is one piece of a piecewise-constant censor-style mix.
type StylePhase struct {
	UntilHour int                `json:"until_hour,omitempty"`
	Styles    map[string]float64 `json:"styles"`
}

// CountryFile is the JSON form of CountryConfig.
type CountryFile struct {
	Code            string  `json:"code"`
	Share           float64 `json:"share"`
	ASCount         int     `json:"as_count,omitempty"`
	ASSkew          float64 `json:"as_skew,omitempty"`
	IPv6Share       float64 `json:"ipv6_share,omitempty"`
	V6SeekFactor    float64 `json:"v6_seek_factor,omitempty"`
	TZOffset        int     `json:"tz_offset,omitempty"`
	BlockedSeekBase float64 `json:"blocked_seek_base,omitempty"`
	NightBoost      float64 `json:"night_boost,omitempty"`
	WeekendFactor   float64 `json:"weekend_factor,omitempty"`
	Decentralized   bool    `json:"decentralized,omitempty"`
	MinASIntensity  float64 `json:"min_as_intensity,omitempty"`
	HTTPOnlyCensor  bool    `json:"http_only_censor,omitempty"`
	HTTPLeniency    float64 `json:"http_leniency,omitempty"`
	ForceHTTPShare  float64 `json:"force_http_share,omitempty"`
	// Profile maps category names to request-mix weights.
	Profile map[string]float64 `json:"profile,omitempty"`
	// BlockCoverage maps category names to blocklist coverage, with an
	// optional "*" key as the floor for unlisted categories.
	BlockCoverage map[string]float64 `json:"block_coverage,omitempty"`
	// Styles maps style names to weights.
	Styles map[string]float64 `json:"styles,omitempty"`
	// SeekPhases overrides BlockedSeekBase per scenario hour (the Iran
	// 2022 protest ramp); phases must be in increasing UntilHour order
	// with only the last open-ended.
	SeekPhases []SeekPhase `json:"seek_phases,omitempty"`
	// StylePhases overrides Styles per scenario hour.
	StylePhases []StylePhase `json:"style_phases,omitempty"`
}

// styleNames maps JSON style names to CensorStyle values.
var styleNames = map[string]CensorStyle{
	"gfw":                  StyleGFW,
	"gfw-ip-block":         StyleGFWIPBlock,
	"iran-dpi":             StyleIranDPI,
	"http-reset":           StyleHTTPReset,
	"tspu":                 StyleTSPU,
	"ack-guess-random-ttl": StyleAckGuessRandomTTL,
	"ack-guess-fixed-ttl":  StyleAckGuessFixedTTL,
	"post-ack-multi-rst":   StylePostACKMultiRST,
	"enterprise-rst":       StyleEnterpriseRST,
	"enterprise-rstack":    StyleEnterpriseRSTACK,
	"ip-blackhole":         StyleIPBlackhole,
	"ip-reset-rst":         StyleIPResetRST,
	"ip-reset-rstack":      StyleIPResetRSTACK,
	"ipid-copy":            StyleIPIDCopy,
	"drop-rstack":          StyleDropRSTACK,
	"psh-blackhole":        StylePSHBlackhole,
	"psh-single-rst":       StylePSHSingleRST,
	"psh-double-rst":       StylePSHDoubleRST,
	"psh-single-rstack":    StylePSHSingleRSTACK,
}

// StyleNames returns the accepted style names, for error messages and
// documentation.
func StyleNames() []string {
	out := make([]string, 0, len(styleNames))
	for n := range styleNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// categoryByName resolves a Table 2 category display name or slug.
func categoryByName(name string) (domains.Category, bool) {
	for _, c := range domains.AllCategories() {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

// ParseScenarioFile strictly decodes one scenario description: unknown
// fields, trailing garbage, and out-of-range intensities are all
// errors. The result has not been assembled yet, so callers (the
// preset loader, the CLIs) may override Total/Hours/Seed first.
func ParseScenarioFile(r io.Reader) (*ScenarioFile, error) {
	var sf ScenarioFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sf); err != nil {
		return nil, fmt.Errorf("workload: parsing scenario: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("workload: trailing data after scenario document")
	}
	if err := sf.validate(); err != nil {
		return nil, err
	}
	return &sf, nil
}

// unitRange checks a [0,1] intensity.
func unitRange(what string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%s %v out of range [0,1]", what, v)
	}
	return nil
}

// maxSeek caps every blocked-seeking probability (seekProbability
// clamps at runtime too; the preset validator rejects rather than
// silently clamping).
const maxSeek = 0.97

// validate range-checks the file without assembling it.
func (sf *ScenarioFile) validate() error {
	if sf.Total < 0 {
		return fmt.Errorf("workload: total %d must be >= 0", sf.Total)
	}
	if sf.Hours < 0 {
		return fmt.Errorf("workload: hours %d must be >= 0", sf.Hours)
	}
	if sf.StartWeekday < 0 || sf.StartWeekday > 6 {
		return fmt.Errorf("workload: start_weekday %d out of range [0,6]", sf.StartWeekday)
	}
	if len(sf.Countries) == 0 {
		return fmt.Errorf("workload: scenario needs at least one country")
	}
	for i, cf := range sf.Countries {
		if err := cf.validate(); err != nil {
			return fmt.Errorf("workload: country %d (%s): %w", i, cf.Code, err)
		}
	}
	return nil
}

// validate range-checks one country entry.
func (cf *CountryFile) validate() error {
	if cf.Code == "" {
		return fmt.Errorf("missing code")
	}
	if cf.Share <= 0 {
		return fmt.Errorf("share must be > 0")
	}
	if cf.ASCount < 0 {
		return fmt.Errorf("as_count %d must be >= 0", cf.ASCount)
	}
	for what, v := range map[string]float64{
		"ipv6_share":       cf.IPv6Share,
		"min_as_intensity": cf.MinASIntensity,
		"http_leniency":    cf.HTTPLeniency,
		"force_http_share": cf.ForceHTTPShare,
	} {
		if err := unitRange(what, v); err != nil {
			return err
		}
	}
	if cf.BlockedSeekBase < 0 || cf.BlockedSeekBase > maxSeek {
		return fmt.Errorf("blocked_seek_base %v out of range [0,%v]", cf.BlockedSeekBase, maxSeek)
	}
	if cf.NightBoost < 0 || cf.NightBoost > 4 {
		return fmt.Errorf("night_boost %v out of range [0,4]", cf.NightBoost)
	}
	if cf.WeekendFactor < 0 || cf.WeekendFactor > 2 {
		return fmt.Errorf("weekend_factor %v out of range [0,2]", cf.WeekendFactor)
	}
	if cf.V6SeekFactor < 0 {
		return fmt.Errorf("v6_seek_factor %v must be >= 0", cf.V6SeekFactor)
	}
	for name, w := range cf.Profile {
		if _, ok := categoryByName(name); !ok {
			return fmt.Errorf("unknown profile category %q", name)
		}
		if w < 0 {
			return fmt.Errorf("profile weight %v for %q must be >= 0", w, name)
		}
	}
	for name, v := range cf.BlockCoverage {
		if name != "*" {
			if _, ok := categoryByName(name); !ok {
				return fmt.Errorf("unknown coverage category %q", name)
			}
		}
		if err := unitRange("block_coverage["+name+"]", v); err != nil {
			return err
		}
	}
	if err := validateStyleMix("styles", cf.Styles, len(cf.Styles) > 0); err != nil {
		return err
	}
	prev := 0
	for i, ph := range cf.SeekPhases {
		open := ph.UntilHour == 0
		if open && i != len(cf.SeekPhases)-1 {
			return fmt.Errorf("seek_phases[%d]: only the last phase may omit until_hour", i)
		}
		if !open && ph.UntilHour <= prev {
			return fmt.Errorf("seek_phases[%d]: until_hour %d not increasing", i, ph.UntilHour)
		}
		if ph.Seek < 0 || ph.Seek > maxSeek {
			return fmt.Errorf("seek_phases[%d]: seek %v out of range [0,%v]", i, ph.Seek, maxSeek)
		}
		prev = ph.UntilHour
	}
	prev = 0
	for i, ph := range cf.StylePhases {
		open := ph.UntilHour == 0
		if open && i != len(cf.StylePhases)-1 {
			return fmt.Errorf("style_phases[%d]: only the last phase may omit until_hour", i)
		}
		if !open && ph.UntilHour <= prev {
			return fmt.Errorf("style_phases[%d]: until_hour %d not increasing", i, ph.UntilHour)
		}
		if err := validateStyleMix(fmt.Sprintf("style_phases[%d]", i), ph.Styles, true); err != nil {
			return err
		}
		prev = ph.UntilHour
	}
	return nil
}

// validateStyleMix checks style names and weights; requireSome also
// demands a positive total weight.
func validateStyleMix(what string, styles map[string]float64, requireSome bool) error {
	total := 0.0
	for name, w := range styles {
		if _, ok := styleNames[name]; !ok {
			return fmt.Errorf("%s: unknown style %q (known: %v)", what, name, StyleNames())
		}
		if w < 0 {
			return fmt.Errorf("%s: weight %v for %q must be >= 0", what, w, name)
		}
		total += w
	}
	if requireSome && len(styles) > 0 && total <= 0 {
		return fmt.Errorf("%s: style weights sum to %v, want > 0", what, total)
	}
	return nil
}

// Assemble turns a parsed (and validated) scenario file into a
// runnable Scenario.
func (sf *ScenarioFile) Assemble() (*Scenario, error) {
	if sf.Total <= 0 {
		return nil, fmt.Errorf("workload: scenario needs total > 0")
	}
	hours := sf.Hours
	if hours <= 0 {
		hours = 24
	}
	countries := make([]CountryConfig, 0, len(sf.Countries))
	for i, cf := range sf.Countries {
		c, err := cf.toConfig()
		if err != nil {
			return nil, fmt.Errorf("workload: country %d (%s): %w", i, cf.Code, err)
		}
		countries = append(countries, c)
	}
	s, err := AssembleScenario(sf.Name, sf.Total, hours, sf.Seed, countries)
	if err != nil {
		return nil, err
	}
	s.StartWeekday = sf.StartWeekday
	if sf.SYNPayloadSurgeDay != nil {
		s.SYNPayloadSurgeDay = *sf.SYNPayloadSurgeDay
	}
	if sf.Impairment != "" {
		imp, err := faults.Grade(sf.Impairment)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		s.Impairments = imp
	}
	return s, nil
}

// LoadScenario reads a JSON scenario description and assembles it.
func LoadScenario(r io.Reader) (*Scenario, error) {
	sf, err := ParseScenarioFile(r)
	if err != nil {
		return nil, err
	}
	return sf.Assemble()
}

// LoadScenarioFile reads a scenario from a JSON file.
func LoadScenarioFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	return LoadScenario(f)
}

// styleMix converts a validated name→weight map into the ordered
// WeightedStyle slice pickStyle consumes. The order is sorted by name:
// pickStyle walks the slice when mapping a random draw to a style, so
// a map-iteration order here would make JSON-loaded scenarios differ
// between runs of the same binary — the determinism gate forbids that.
func styleMix(styles map[string]float64) []WeightedStyle {
	names := make([]string, 0, len(styles))
	for n := range styles {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]WeightedStyle, 0, len(names))
	for _, n := range names {
		out = append(out, WeightedStyle{Style: styleNames[n], Weight: styles[n]})
	}
	return out
}

// phaseIndex finds the phase covering a scenario hour.
func phaseIndex(until []int, hour int) int {
	for i, u := range until {
		if u == 0 || hour < u { // 0 = open-ended final phase
			return i
		}
	}
	return len(until) - 1
}

// toConfig converts the JSON form to a CountryConfig with defaults.
// The file must already have passed validate.
func (cf *CountryFile) toConfig() (CountryConfig, error) {
	c := CountryConfig{
		Code:            cf.Code,
		Share:           cf.Share,
		ASCount:         cf.ASCount,
		ASSkew:          cf.ASSkew,
		IPv6Share:       cf.IPv6Share,
		V6SeekFactor:    cf.V6SeekFactor,
		TZOffset:        cf.TZOffset,
		BlockedSeekBase: cf.BlockedSeekBase,
		NightBoost:      cf.NightBoost,
		WeekendFactor:   cf.WeekendFactor,
		Decentralized:   cf.Decentralized,
		MinASIntensity:  cf.MinASIntensity,
		HTTPOnlyCensor:  cf.HTTPOnlyCensor,
		HTTPLeniency:    cf.HTTPLeniency,
		ForceHTTPShare:  cf.ForceHTTPShare,
	}
	if len(cf.Profile) > 0 {
		var p domains.CategoryProfile
		for name, w := range cf.Profile {
			cat, ok := categoryByName(name)
			if !ok {
				return c, fmt.Errorf("unknown profile category %q", name)
			}
			p[cat] = w
		}
		p.Normalize()
		c.Profile = p
	}
	if len(cf.BlockCoverage) > 0 {
		floor := cf.BlockCoverage["*"]
		overrides := map[domains.Category]float64{}
		for name, v := range cf.BlockCoverage {
			if name == "*" {
				continue
			}
			cat, ok := categoryByName(name)
			if !ok {
				return c, fmt.Errorf("unknown coverage category %q", name)
			}
			overrides[cat] = v
		}
		c.BlockCoverage = cov(floor, overrides)
	} else {
		c.BlockCoverage = cov(0.004, nil)
	}
	c.Styles = styleMix(cf.Styles)
	if len(cf.SeekPhases) > 0 {
		until := make([]int, len(cf.SeekPhases))
		seek := make([]float64, len(cf.SeekPhases))
		for i, ph := range cf.SeekPhases {
			until[i], seek[i] = ph.UntilHour, ph.Seek
		}
		c.HourlySeek = func(hour int) float64 { return seek[phaseIndex(until, hour)] }
	}
	if len(cf.StylePhases) > 0 {
		until := make([]int, len(cf.StylePhases))
		mixes := make([][]WeightedStyle, len(cf.StylePhases))
		for i, ph := range cf.StylePhases {
			until[i], mixes[i] = ph.UntilHour, styleMix(ph.Styles)
		}
		c.HourlyStyles = func(hour int) []WeightedStyle { return mixes[phaseIndex(until, hour)] }
	}
	return quirks(c), nil
}
